#!/bin/sh
# ci.sh — the repo's check suite: vet (plus the shadow analyzer when it is
# installed), race-test the concurrency-sensitive packages (sched runs the
# worker pool; exp/core/ilp/lp — including the sparse basis-factorization
# kernels in lp/factor.go and lp/ftran.go — execute inside it; obs is updated
# from solver goroutines; xchg is the lock-free portfolio exchange both race
# engines hammer concurrently), the full test suite in short mode, and a parallel
# end-to-end smoke run of both CLIs at -j 4.
set -eu

cd "$(dirname "$0")"

echo "== go vet"
go vet ./...
if shadow_bin=$(command -v shadow 2>/dev/null); then
	echo "== go vet -vettool=shadow"
	go vet -vettool="$shadow_bin" ./...
else
	echo "== shadow check skipped (analyzer not installed)"
fi

echo "== go test -race (sched, exp, core, ilp, lp, obs, report, xchg)"
go test -race -short -timeout 20m \
	./internal/sched/... \
	./internal/exp/... \
	./internal/core/... \
	./internal/ilp/... \
	./internal/lp/... \
	./internal/obs/... \
	./internal/report/... \
	./internal/xchg/...

echo "== go test -short ./..."
go test -short ./...

smoke_tmp=$(mktemp -d)
bench_tmp=$(mktemp -d)
trap 'rm -rf "$smoke_tmp" "$bench_tmp"' EXIT

echo "== smoke: optroute -rule all -j 4 (traced, flight-recorded)"
go run ./cmd/optroute -synth 5x6x3 -nets 3 -seed 7 -rule all -j 4 -timeout 20s \
	-trace "$smoke_tmp/optroute.jsonl" -flight >/dev/null

echo "== smoke: beoleval -fig10 -j 4 (traced)"
go run ./cmd/beoleval -tech N28-12T -fig10 -j 4 -timeout 5s \
	-trace "$smoke_tmp/beoleval.jsonl" >/dev/null

echo "== traceview: smoke traces well-formed"
go run ./cmd/traceview -validate "$smoke_tmp/optroute.jsonl"
go run ./cmd/traceview -validate "$smoke_tmp/beoleval.jsonl"
go run ./cmd/traceview -top 5 "$smoke_tmp/optroute.jsonl" >/dev/null

echo "== bench: short corpus + schema validation + phase-aware regression gate"
# The short corpus is a subset of the full trajectory corpus, so the freshly
# run cases gate against the latest committed trajectory point: identical
# answers required, and at most a 20% geomean wall-time regression. The
# comparison prints a per-phase attribution table (node_lp, steiner, drc,
# lp.* simplex internals, ...) so a tripped gate names the phase that moved.
bench_latest=$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)
go run ./cmd/benchrun -short -timeout 30s -o "$bench_tmp/BENCH_ci.json" \
	-baseline "$bench_latest" -max-regress 1.2
go run ./cmd/benchrun -check "$bench_tmp/BENCH_ci.json"
for doc in BENCH_*.json; do
	[ -e "$doc" ] || continue
	go run ./cmd/benchrun -check "$doc"
done

echo "ci: OK"
