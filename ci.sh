#!/bin/sh
# ci.sh — the repo's check suite: vet (plus the shadow analyzer when it is
# installed), race-test the concurrency-sensitive packages (sched runs the
# worker pool; exp/core/ilp/lp — including the sparse basis-factorization
# kernels in lp/factor.go, lp/ft.go and lp/ftran.go, and the differential
# fuzz matrix (pricing Dantzig/devex/steepest × presolve on/off × algorithm
# primal/dual × basis update FT/PFI) that gates the whole configurable LP
# engine against the dense reference — execute inside it; obs is updated
# from solver goroutines and hosts the sampling profiler's ticker goroutine;
# calib's probes must stay race-clean because they run inside instrumented
# bench sessions; xchg is the lock-free portfolio exchange both race engines
# hammer concurrently), the full test suite in short mode, and a parallel
# end-to-end smoke run of both CLIs at -j 4.
set -eu

cd "$(dirname "$0")"

echo "== go vet"
go vet ./...
if shadow_bin=$(command -v shadow 2>/dev/null); then
	echo "== go vet -vettool=shadow"
	go vet -vettool="$shadow_bin" ./...
else
	echo "== shadow check skipped (analyzer not installed)"
fi

echo "== go test -race (sched, exp, core, ilp, lp, obs, calib, report, xchg)"
go test -race -short -timeout 20m \
	./internal/sched/... \
	./internal/exp/... \
	./internal/core/... \
	./internal/ilp/... \
	./internal/lp/... \
	./internal/obs/... \
	./internal/calib/... \
	./internal/report/... \
	./internal/xchg/...

echo "== go test -short ./..."
go test -short ./...

smoke_tmp=$(mktemp -d)
bench_tmp=$(mktemp -d)
trap 'rm -rf "$smoke_tmp" "$bench_tmp"' EXIT

echo "== smoke: optroute -rule all -j 4 (traced, flight-recorded)"
go run ./cmd/optroute -synth 5x6x3 -nets 3 -seed 7 -rule all -j 4 -timeout 20s \
	-trace "$smoke_tmp/optroute.jsonl" -flight >/dev/null

echo "== smoke: beoleval -fig10 -j 4 (traced)"
go run ./cmd/beoleval -tech N28-12T -fig10 -j 4 -timeout 5s \
	-trace "$smoke_tmp/beoleval.jsonl" >/dev/null

echo "== traceview: smoke traces well-formed"
go run ./cmd/traceview -validate "$smoke_tmp/optroute.jsonl"
go run ./cmd/traceview -validate "$smoke_tmp/beoleval.jsonl"
go run ./cmd/traceview -top 5 "$smoke_tmp/optroute.jsonl" >/dev/null

echo "== calib: machine-calibration probe smoke"
go run ./cmd/benchrun -calib

echo "== bench: short corpus + schema validation + two-tier regression gate"
# The short corpus is a subset of the full trajectory corpus, so the freshly
# run cases gate against the latest committed trajectory point. The primary
# signal is the deterministic work ratio (nodes, simplex iterations, FTRAN/
# BTRAN nnz, ...) at a tight 1.02 — those counters carry no timing jitter, so
# any movement is a code change. Wall time is the secondary signal at a loose
# 1.2, corrected by the calibration probes; exit code 5 means the wall moved
# but the evidence points at the machine (the BENCH_2->BENCH_3 false alarm,
# automated), which CI reports as a warning instead of a failure. The sampled
# run also exercises the in-process profiler end to end, and traceview
# validates the emitted profile stream.
bench_latest=$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)
# Built (not `go run`) because go run collapses every nonzero child exit to 1,
# which would make the drift warning indistinguishable from a hard failure.
go build -o "$bench_tmp/benchrun" ./cmd/benchrun
set +e
"$bench_tmp/benchrun" -short -timeout 30s -o "$bench_tmp/BENCH_ci.json" \
	-sample "$bench_tmp/profile.jsonl" \
	-baseline "$bench_latest" -max-regress 1.2 -max-work-regress 1.02
bench_rc=$?
set -e
case "$bench_rc" in
0) ;;
5) echo "ci: WARNING wall-time drift suspected (machine, not code) — not failing" ;;
*)
	echo "ci: bench gate failed (exit $bench_rc)" >&2
	exit "$bench_rc"
	;;
esac
go run ./cmd/benchrun -check "$bench_tmp/BENCH_ci.json"
for doc in BENCH_*.json; do
	[ -e "$doc" ] || continue
	go run ./cmd/benchrun -check "$doc"
done

echo "== traceview: sampled profile stream well-formed"
go run ./cmd/traceview -validate -profile "$bench_tmp/profile.jsonl"

echo "ci: OK"
