#!/bin/sh
# ci.sh — the repo's check suite: vet, race-test the concurrency-sensitive
# packages (obs is updated from solver goroutines; ilp drives it hardest),
# then the full test suite in short mode.
set -eu

cd "$(dirname "$0")"

echo "== go vet"
go vet ./...

echo "== go test -race (obs, ilp)"
go test -race ./internal/obs/... ./internal/ilp/...

echo "== go test -short ./..."
go test -short ./...

echo "ci: OK"
