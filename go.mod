module optrouter

go 1.22
