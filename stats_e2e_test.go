package optrouter

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"optrouter/internal/obs"
)

// buildCmds compiles the named commands into one temp dir and returns it.
func buildCmds(t *testing.T, names ...string) string {
	t.Helper()
	bin := t.TempDir()
	for _, name := range names {
		build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		build.Dir = "."
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}
	return bin
}

// TestStatsEndToEnd is the observability golden test: beoleval -stats on a
// tiny multi-clip run must emit a metrics JSON document with the documented
// schema keys populated, and -trace -flight must produce a well-formed
// JSON-lines span trace that cmd/traceview validates and summarizes.
func TestStatsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmds(t, "beoleval", "traceview")

	outDir := t.TempDir()
	tracePath := filepath.Join(outDir, "trace.jsonl")
	cmd := exec.Command(filepath.Join(bin, "beoleval"),
		"-tech", "N28-12T", "-fig10", "-stats",
		"-trace", tracePath, "-flight", "-csv", outDir,
		"-insts", "120", "-topk", "1", "-maxnets", "3", "-timeout", "3s")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("beoleval: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(filepath.Join(outDir, "metrics.json"))
	if err != nil {
		t.Fatalf("metrics.json not written: %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics.json does not parse: %v\n%s", err, raw)
	}
	for _, key := range []string{
		"nodes", "lp_solves", "wall_ms", "solves",
		"steiner_solves", "drc_checks", "incumbents", "run_wall_ms",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("metrics.json missing key %q", key)
		}
	}
	if v, _ := doc["nodes"].(float64); v <= 0 {
		t.Errorf("nodes = %v, want > 0", doc["nodes"])
	}
	if v, _ := doc["solves"].(float64); v <= 0 {
		t.Errorf("solves = %v, want > 0", doc["solves"])
	}
	if hist, ok := doc["solve_ms"].(map[string]interface{}); !ok {
		t.Errorf("solve_ms histogram missing or malformed: %v", doc["solve_ms"])
	} else if c, _ := hist["count"].(float64); c != doc["solves"].(float64) {
		t.Errorf("solve_ms count = %v, want %v", hist["count"], doc["solves"])
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	defer tf.Close()
	recs, err := obs.ReadTrace(tf)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	solves := 0
	nodeEvents := 0
	for _, r := range recs {
		if r.Name == "bnb.solve" {
			solves++
			if _, ok := r.Attrs["termination"]; !ok {
				t.Errorf("bnb.solve span missing termination attr: %+v", r)
			}
			if _, ok := r.Attrs["phases_ms"]; !ok {
				t.Errorf("bnb.solve span missing phases_ms attr: %+v", r)
			}
		}
		if r.Event && r.Name == "node" {
			nodeEvents++
		}
	}
	if solves == 0 {
		t.Fatalf("no bnb.solve spans among %d trace records", len(recs))
	}
	if nodeEvents == 0 {
		t.Fatal("-flight produced no node events")
	}
	if probs := obs.ValidateTrace(recs); len(probs) > 0 {
		t.Fatalf("trace not well-formed: %v", probs)
	}

	// The shipped analyzer must agree: -validate passes, and the default
	// summary reports every solve.
	tv := exec.Command(filepath.Join(bin, "traceview"), "-validate", tracePath)
	if out, err := tv.CombinedOutput(); err != nil {
		t.Fatalf("traceview -validate: %v\n%s", err, out)
	}
	tv = exec.Command(filepath.Join(bin, "traceview"), tracePath)
	out, err := tv.CombinedOutput()
	if err != nil {
		t.Fatalf("traceview: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "solve 0: bnb") || !strings.Contains(string(out), "flight:") {
		t.Errorf("traceview summary missing solve/flight lines:\n%s", out)
	}
}

// interruptWhenTracing starts cmd, waits until the trace file has grown past
// a few records (so the interrupt lands mid-sweep, not during setup), sends
// SIGINT and waits for exit (any status — a cancelled sweep exits non-zero
// by design). Flight events flush the tracer's buffer continuously, so file
// growth means solves are in flight.
func interruptWhenTracing(t *testing.T, cmd *exec.Cmd, tracePath string) {
	t.Helper()
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(tracePath); err == nil && fi.Size() > 4096 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil && !strings.Contains(err.Error(), "finished") {
		t.Fatalf("signal: %v", err)
	}
	cmd.Wait()
}

// TestTraceSIGINT: an interrupted sweep must still flush a parseable trace —
// the teardown defers run on the cancellation path in both CLIs.
func TestTraceSIGINT(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmds(t, "beoleval", "optroute")

	t.Run("beoleval", func(t *testing.T) {
		tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
		cmd := exec.Command(filepath.Join(bin, "beoleval"),
			"-tech", "N28-12T", "-fig10", "-quiet",
			"-trace", tracePath, "-flight",
			"-insts", "200", "-topk", "2", "-maxnets", "4", "-timeout", "10s")
		interruptWhenTracing(t, cmd, tracePath)
		assertParseableTrace(t, tracePath)
	})

	t.Run("optroute", func(t *testing.T) {
		tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
		cmd := exec.Command(filepath.Join(bin, "optroute"),
			"-synth", "7x10x4", "-seed", "3", "-nets", "4", "-rule", "all",
			"-quiet", "-trace", tracePath, "-flight", "-timeout", "10s")
		interruptWhenTracing(t, cmd, tracePath)
		assertParseableTrace(t, tracePath)
	})
}

// assertParseableTrace requires the file to exist and parse as JSONL with no
// duplicate span IDs. (Spans still open at cancellation are legitimately
// absent; full nesting checks belong to the uninterrupted golden test.)
func assertParseableTrace(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatalf("interrupted trace does not parse: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("interrupted trace is empty — the interrupt landed before any solve")
	}
	seen := map[int64]bool{}
	for _, r := range recs {
		if !r.Event && seen[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		if !r.Event {
			seen[r.ID] = true
		}
	}
	t.Logf("interrupted trace: %d records", len(recs))
}
