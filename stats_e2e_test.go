package optrouter

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"optrouter/internal/obs"
)

// TestStatsEndToEnd is the observability golden test: beoleval -stats on a
// tiny multi-clip run must emit a metrics JSON document with the documented
// schema keys populated, and -trace must produce a parseable JSON-lines span
// trace containing the solver spans.
func TestStatsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/beoleval")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	outDir := t.TempDir()
	tracePath := filepath.Join(outDir, "trace.jsonl")
	cmd := exec.Command(filepath.Join(bin, "beoleval"),
		"-tech", "N28-12T", "-fig10", "-stats",
		"-trace", tracePath, "-csv", outDir,
		"-insts", "120", "-topk", "1", "-maxnets", "3", "-timeout", "3s")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("beoleval: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(filepath.Join(outDir, "metrics.json"))
	if err != nil {
		t.Fatalf("metrics.json not written: %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics.json does not parse: %v\n%s", err, raw)
	}
	for _, key := range []string{
		"nodes", "lp_solves", "wall_ms", "solves",
		"steiner_solves", "drc_checks", "incumbents", "run_wall_ms",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("metrics.json missing key %q", key)
		}
	}
	if v, _ := doc["nodes"].(float64); v <= 0 {
		t.Errorf("nodes = %v, want > 0", doc["nodes"])
	}
	if v, _ := doc["solves"].(float64); v <= 0 {
		t.Errorf("solves = %v, want > 0", doc["solves"])
	}
	if hist, ok := doc["solve_ms"].(map[string]interface{}); !ok {
		t.Errorf("solve_ms histogram missing or malformed: %v", doc["solve_ms"])
	} else if c, _ := hist["count"].(float64); c != doc["solves"].(float64) {
		t.Errorf("solve_ms count = %v, want %v", hist["count"], doc["solves"])
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	defer tf.Close()
	recs, err := obs.ReadTrace(tf)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	solves := 0
	for _, r := range recs {
		if r.Name == "bnb.solve" {
			solves++
			if _, ok := r.Attrs["termination"]; !ok {
				t.Errorf("bnb.solve span missing termination attr: %+v", r)
			}
		}
	}
	if solves == 0 {
		t.Fatalf("no bnb.solve spans among %d trace records", len(recs))
	}
}
