package optrouter

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds every command and exercises the documented flows:
// rules table, clip extraction to JSON, optimal routing of an extracted
// clip, the standalone MILP solver, and the local-improvement assessment.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Table 3 via beoleval.
	if out := run("beoleval", "-rules"); !strings.Contains(out, "RULE11") {
		t.Fatalf("beoleval -rules missing RULE11:\n%s", out)
	}

	// Clip extraction to JSON.
	clips := t.TempDir()
	out := run("clipextract", "-design", "M0", "-size", "150", "-top", "3", "-out", clips)
	if !strings.Contains(out, "extracted") {
		t.Fatalf("clipextract output:\n%s", out)
	}
	entries, err := os.ReadDir(clips)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no clips written: %v", err)
	}

	// Route the first extracted clip optimally under RULE6.
	clipPath := filepath.Join(clips, entries[0].Name())
	out = run("optroute", "-clip", clipPath, "-rule", "RULE6", "-render")
	if !strings.Contains(out, "optimal") {
		t.Fatalf("optroute did not prove optimality:\n%s", out)
	}
	if !strings.Contains(out, "M2") {
		t.Fatalf("optroute -render missing layers:\n%s", out)
	}

	// Standalone MILP solver from stdin.
	cmd := exec.Command(filepath.Join(bin, "ilpsolve"))
	cmd.Stdin = strings.NewReader("min\n 3 x + 2 y\nst\n x + y >= 4\nint\n x y\n")
	solved, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ilpsolve: %v\n%s", err, solved)
	}
	if !strings.Contains(string(solved), "objective: 8") {
		t.Fatalf("ilpsolve objective:\n%s", solved)
	}

	// Local improvement assessment.
	out = run("improve", "-size", "120", "-windows", "3", "-timeout", "5s")
	if !strings.Contains(out, "windows:") {
		t.Fatalf("improve output:\n%s", out)
	}
}
