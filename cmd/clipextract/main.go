// Command clipextract builds a benchmark design (synthesize, place, route),
// extracts its routing clips, ranks them by pin cost, and writes the top
// clips as JSON files — the front half of the paper's Fig. 6 flow. With
// -render it also prints an ASCII view of the highest-cost clip (Fig. 7).
//
// Usage:
//
//	clipextract [-tech N28-12T] [-design AES|M0] [-size 400] [-util 0.92]
//	            [-top 10] [-out dir] [-render] [-def design.def]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"optrouter/internal/cells"
	"optrouter/internal/core"
	"optrouter/internal/extract"
	"optrouter/internal/lefdef"
	"optrouter/internal/netlist"
	"optrouter/internal/pincost"
	"optrouter/internal/place"
	"optrouter/internal/rgraph"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

func main() {
	var (
		techName = flag.String("tech", "N28-12T", "technology name")
		design   = flag.String("design", "AES", "design profile: AES or M0")
		size     = flag.Int("size", 400, "instance count")
		util     = flag.Float64("util", 0.92, "target utilization")
		seed     = flag.Int64("seed", 1, "generation seed")
		top      = flag.Int("top", 10, "number of top-pin-cost clips to keep")
		outDir   = flag.String("out", "", "write top clips as JSON into this directory")
		render   = flag.Bool("render", false, "render the top clip as ASCII (Fig. 7)")
		defPath  = flag.String("def", "", "also write the routed design as DEF")
		maxNets  = flag.Int("maxnets", 6, "skip clips with more nets than this (0 = no cap)")
	)
	flag.Parse()

	var tt *tech.Technology
	for _, t := range tech.AllTechnologies() {
		if t.Name == *techName {
			tt = t
		}
	}
	if tt == nil {
		fatal(fmt.Errorf("unknown technology %q", *techName))
	}

	lib := cells.Generate(tt)
	var prof netlist.Profile
	switch *design {
	case "AES":
		prof = netlist.AESClass(*size, *seed)
	case "M0":
		prof = netlist.M0Class(*size, *seed)
	default:
		fatal(fmt.Errorf("unknown design %q", *design))
	}
	nl, err := netlist.Generate(lib, prof)
	if err != nil {
		fatal(err)
	}
	pl, err := place.Place(lib, nl, place.Options{TargetUtil: *util})
	if err != nil {
		fatal(err)
	}
	res, err := route.Route(pl, route.Options{})
	if err != nil {
		fatal(err)
	}
	wl, vias := res.WirelengthVias()
	fmt.Printf("%s/%s: %d insts, %d nets, util %.1f%%, routed wl=%d vias=%d (conflicts %d)\n",
		tt.Name, *design, len(nl.Instances), len(nl.Nets), pl.Utilization*100, wl, vias, res.Conflicts)

	if *defPath != "" {
		f, err := os.Create(*defPath)
		if err != nil {
			fatal(err)
		}
		if err := lefdef.WriteDEF(f, res); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *defPath)
	}

	clips := extract.All(res, extract.Options{MaxNets: *maxNets})
	fmt.Printf("extracted %d clips\n", len(clips))
	ranked := pincost.RankTopK(clips, *top)
	for i, c := range ranked {
		fmt.Printf("  #%d %-28s pincost=%.1f nets=%d pins=%d\n",
			i+1, c.Name, c.PinCost, len(c.Nets), c.NumPins())
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for i, c := range ranked {
			path := filepath.Join(*outDir, fmt.Sprintf("clip%03d.json", i))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := c.WriteJSON(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
		fmt.Printf("wrote %d clips to %s\n", len(ranked), *outDir)
	}

	if *render && len(ranked) > 0 {
		g, err := rgraph.Build(ranked[0], rgraph.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nFig. 7 style rendering of %s (pins only, unrouted):\n\n", ranked[0].Name)
		fmt.Print(core.RenderASCII(g, nil))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clipextract: %v\n", err)
	os.Exit(1)
}
