// Command traceview analyses the JSONL span traces emitted by the solver
// CLIs (-trace, optionally -flight). It reconstructs the span tree and
// prints, per solve: the solver's own phase attribution (the flame summary),
// search-tree statistics from the flight recorder's node events — depth
// histogram, fathom-reason mix, bound-gap convergence — and the flight
// sampling accounting. A pprof-style top-N table of hot span names (by self
// time) covers everything outside the solvers.
//
// Usage:
//
//	traceview [-top N] [-csv file] trace.jsonl [trace.jsonl.1 ...]
//	traceview -validate trace.jsonl
//
// Multiple files concatenate before reconstruction, so a rotated trace
// (trace.jsonl plus its .1/.2 archives) can be analysed whole. With no file
// arguments the trace is read from stdin. -validate only checks
// well-formedness (every parent resolves, spans nest inside their parents)
// and exits non-zero on problems — ci.sh pipes smoke traces through it.
// -csv exports one row per recorded node event ("-" = stdout), a feature
// table for offline analysis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"optrouter/internal/obs"
	"optrouter/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		validate = flag.Bool("validate", false, "check trace well-formedness and exit")
		topN     = flag.Int("top", 10, "hot-span table size (0 = skip, -1 = all)")
		csvOut   = flag.String("csv", "", "write per-node-event CSV to this file (\"-\" = stdout)")
	)
	flag.Parse()

	recs, err := readTraces(flag.Args())
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace holds no records")
	}

	if *validate {
		if probs := obs.ValidateTrace(recs); len(probs) > 0 {
			for _, p := range probs {
				fmt.Fprintf(os.Stderr, "traceview: %s\n", p)
			}
			return fmt.Errorf("%d well-formedness problems in %d records", len(probs), len(recs))
		}
		fmt.Printf("%d records: well-formed\n", len(recs))
		return nil
	}

	tree, err := obs.BuildTree(recs)
	if err != nil {
		return err
	}
	solves := report.ExtractSolves(tree)

	if *csvOut != "" {
		if err := writeCSV(*csvOut, solves); err != nil {
			return err
		}
		if *csvOut != "-" {
			n := 0
			for i := range solves {
				n += len(solves[i].Events)
			}
			fmt.Fprintf(os.Stderr, "traceview: wrote %d node events to %s\n", n, *csvOut)
		}
		return nil
	}

	fmt.Printf("trace: %d spans, %d events, %d solves\n", tree.Spans, tree.Events, len(solves))
	for i := range solves {
		printSolve(i, &solves[i])
	}
	if *topN != 0 {
		printTopSpans(tree, *topN)
	}
	return nil
}

// readTraces concatenates the records of every named file (stdin when none).
// Rotated archives share one ID space with the live file, so the combined
// record set reconstructs as a single tree.
func readTraces(paths []string) ([]obs.SpanRecord, error) {
	if len(paths) == 0 {
		return obs.ReadTrace(os.Stdin)
	}
	var all []obs.SpanRecord
	for _, path := range paths {
		var r io.ReadCloser
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			r = f
		}
		recs, err := obs.ReadTrace(r)
		if path != "-" {
			r.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, recs...)
	}
	return all, nil
}

func printSolve(i int, s *report.SolveTrace) {
	name := s.Clip
	if name == "" {
		name = "(unnamed clip)"
	}
	fmt.Printf("\nsolve %d: %s %s, %.1fms wall\n", i, s.Solver, name, s.WallMS())
	if len(s.PhasesMS) > 0 {
		fmt.Printf("  phases: %s (%.1fms attributed)\n", s.PhaseLine(), s.PhaseTotal())
	}
	if s.Par > 0 {
		fmt.Printf("  par:    %d workers, %d steals, %d incumbent exchanges\n",
			s.Par, s.Steals, s.IncumbentExchanges)
	}
	if s.Winner != "" {
		fmt.Printf("  race:   winner=%s, %d incumbent exchanges\n", s.Winner, s.IncumbentExchanges)
	}
	if s.FlightSeen == 0 {
		fmt.Printf("  flight: off (rerun with -flight for search-tree statistics)\n")
		return
	}
	fmt.Printf("  flight: %d node events seen, %d kept, %d dropped by sampling\n",
		s.FlightSeen, s.FlightKept, s.FlightDropped)
	if len(s.Events) == 0 {
		return
	}
	fmt.Printf("  depth:  %s\n", histLine(s.DepthHistogram()))
	fmt.Printf("  acts:   %s\n", actLine(s.ActCounts()))
	if wc := s.WorkerCounts(); len(wc) > 0 {
		ids := make([]int, 0, len(wc))
		for id := range wc {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		line := ""
		for _, id := range ids {
			if line != "" {
				line += " "
			}
			line += fmt.Sprintf("%d:%d", id, wc[id])
		}
		fmt.Printf("  workers:%s\n", " "+line)
	}
	if gap := s.GapCurve(); len(gap) > 0 {
		first, last := gap[0], gap[len(gap)-1]
		fmt.Printf("  gap:    %d samples; bound %g / inc %g @ node %d -> bound %g / inc %g @ node %d\n",
			len(gap), first.Bound, first.Inc, first.N, last.Bound, last.Inc, last.N)
	}
}

// histLine renders a depth histogram as "0:12 1:40 2:7 ...".
func histLine(h []int) string {
	out := ""
	for d, n := range h {
		if n == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", d, n)
	}
	return out
}

// actLine renders action counts sorted by frequency, largest first.
func actLine(m map[string]int) string {
	type kv struct {
		k string
		v int
	}
	pairs := make([]kv, 0, len(m))
	for k, v := range m {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].k < pairs[j].k
	})
	out := ""
	for _, p := range pairs {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", p.k, p.v)
	}
	return out
}

func printTopSpans(tree *obs.TraceTree, n int) {
	tops := report.TopSpans(tree, n)
	if len(tops) == 0 {
		return
	}
	fmt.Printf("\n%-24s %8s %12s %12s\n", "span", "count", "self_ms", "total_ms")
	for _, a := range tops {
		fmt.Printf("%-24s %8d %12.1f %12.1f\n",
			a.Name, a.Count, float64(a.SelfUS)/1000, float64(a.TotalUS)/1000)
	}
}

func writeCSV(path string, solves []report.SolveTrace) error {
	if path == "-" {
		return report.WriteNodeCSV(os.Stdout, solves)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteNodeCSV(f, solves); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
