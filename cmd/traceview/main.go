// Command traceview analyses the JSONL span traces emitted by the solver
// CLIs (-trace, optionally -flight). It reconstructs the span tree and
// prints, per solve: the solver's own phase attribution (the flame summary),
// search-tree statistics from the flight recorder's node events — depth
// histogram, fathom-reason mix, bound-gap convergence — and the flight
// sampling accounting. A pprof-style top-N table of hot span names (by self
// time) covers everything outside the solvers.
//
// Usage:
//
//	traceview [-top N] [-csv file] trace.jsonl [trace.jsonl.1 ...]
//	traceview -validate trace.jsonl
//	traceview -profile samples.jsonl
//	traceview -bench BENCH_4.json [-baseline BENCH_3.json]
//
// Multiple files concatenate before reconstruction, so a rotated trace
// (trace.jsonl plus its .1/.2 archives) can be analysed whole. With no file
// arguments the trace is read from stdin. -validate only checks
// well-formedness (every parent resolves, spans nest inside their parents)
// and exits non-zero on problems — ci.sh pipes smoke traces through it
// (profile JSONL streams are validated too when given via -profile).
// -csv exports one row per recorded node event ("-" = stdout), a feature
// table for offline analysis.
//
// -profile renders the per-case sampling profiles emitted by
// benchrun -sample: one top-function table per case. -bench renders a
// benchmark document's calibration block, per-case work vectors and LP
// pricing/presolve telemetry (candidate-hit ratio, dual bound flips,
// presolve reductions, plus a corpus-wide pricing summary line); with
// -baseline it additionally prints the full comparison — calibrated wall
// ratios, per-counter work movement, profile share shifts and the drift
// verdict of the two-tier regression gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"optrouter/internal/obs"
	"optrouter/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		validate = flag.Bool("validate", false, "check trace (or -profile stream) well-formedness and exit")
		topN     = flag.Int("top", 10, "hot-span table size (0 = skip, -1 = all)")
		csvOut   = flag.String("csv", "", "write per-node-event CSV to this file (\"-\" = stdout)")
		profile  = flag.String("profile", "", "render a sampling-profile JSONL stream (benchrun -sample) instead of a trace")
		bench    = flag.String("bench", "", "render a benchmark document's calibration and work vectors instead of a trace")
		baseline = flag.String("baseline", "", "with -bench: compare against this baseline document (drift verdict)")
	)
	flag.Parse()

	if *profile != "" {
		return runProfile(*profile, *validate, *topN)
	}
	if *bench != "" {
		return runBench(*bench, *baseline)
	}

	recs, err := readTraces(flag.Args())
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace holds no records")
	}

	if *validate {
		if probs := obs.ValidateTrace(recs); len(probs) > 0 {
			for _, p := range probs {
				fmt.Fprintf(os.Stderr, "traceview: %s\n", p)
			}
			return fmt.Errorf("%d well-formedness problems in %d records", len(probs), len(recs))
		}
		fmt.Printf("%d records: well-formed\n", len(recs))
		return nil
	}

	tree, err := obs.BuildTree(recs)
	if err != nil {
		return err
	}
	solves := report.ExtractSolves(tree)

	if *csvOut != "" {
		if err := writeCSV(*csvOut, solves); err != nil {
			return err
		}
		if *csvOut != "-" {
			n := 0
			for i := range solves {
				n += len(solves[i].Events)
			}
			fmt.Fprintf(os.Stderr, "traceview: wrote %d node events to %s\n", n, *csvOut)
		}
		return nil
	}

	fmt.Printf("trace: %d spans, %d events, %d solves\n", tree.Spans, tree.Events, len(solves))
	for i := range solves {
		printSolve(i, &solves[i])
	}
	if *topN != 0 {
		printTopSpans(tree, *topN)
	}
	return nil
}

// readTraces concatenates the records of every named file (stdin when none).
// Rotated archives share one ID space with the live file, so the combined
// record set reconstructs as a single tree.
func readTraces(paths []string) ([]obs.SpanRecord, error) {
	if len(paths) == 0 {
		return obs.ReadTrace(os.Stdin)
	}
	var all []obs.SpanRecord
	for _, path := range paths {
		var r io.ReadCloser
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			r = f
		}
		recs, err := obs.ReadTrace(r)
		if path != "-" {
			r.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, recs...)
	}
	return all, nil
}

func printSolve(i int, s *report.SolveTrace) {
	name := s.Clip
	if name == "" {
		name = "(unnamed clip)"
	}
	fmt.Printf("\nsolve %d: %s %s, %.1fms wall\n", i, s.Solver, name, s.WallMS())
	if len(s.PhasesMS) > 0 {
		fmt.Printf("  phases: %s (%.1fms attributed)\n", s.PhaseLine(), s.PhaseTotal())
	}
	if s.Par > 0 {
		fmt.Printf("  par:    %d workers, %d steals, %d incumbent exchanges\n",
			s.Par, s.Steals, s.IncumbentExchanges)
	}
	if s.Winner != "" {
		fmt.Printf("  race:   winner=%s, %d incumbent exchanges\n", s.Winner, s.IncumbentExchanges)
	}
	if s.HasLPStats() {
		fmt.Printf("  lp:     %s\n", s.PricingLine())
	}
	if s.FlightSeen == 0 {
		fmt.Printf("  flight: off (rerun with -flight for search-tree statistics)\n")
		return
	}
	fmt.Printf("  flight: %d node events seen, %d kept, %d dropped by sampling\n",
		s.FlightSeen, s.FlightKept, s.FlightDropped)
	if len(s.Events) == 0 {
		return
	}
	fmt.Printf("  depth:  %s\n", histLine(s.DepthHistogram()))
	fmt.Printf("  acts:   %s\n", actLine(s.ActCounts()))
	if wc := s.WorkerCounts(); len(wc) > 0 {
		ids := make([]int, 0, len(wc))
		for id := range wc {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		line := ""
		for _, id := range ids {
			if line != "" {
				line += " "
			}
			line += fmt.Sprintf("%d:%d", id, wc[id])
		}
		fmt.Printf("  workers:%s\n", " "+line)
	}
	if gap := s.GapCurve(); len(gap) > 0 {
		first, last := gap[0], gap[len(gap)-1]
		fmt.Printf("  gap:    %d samples; bound %g / inc %g @ node %d -> bound %g / inc %g @ node %d\n",
			len(gap), first.Bound, first.Inc, first.N, last.Bound, last.Inc, last.N)
	}
}

// histLine renders a depth histogram as "0:12 1:40 2:7 ...".
func histLine(h []int) string {
	out := ""
	for d, n := range h {
		if n == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", d, n)
	}
	return out
}

// actLine renders action counts sorted by frequency, largest first.
func actLine(m map[string]int) string {
	type kv struct {
		k string
		v int
	}
	pairs := make([]kv, 0, len(m))
	for k, v := range m {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].k < pairs[j].k
	})
	out := ""
	for _, p := range pairs {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", p.k, p.v)
	}
	return out
}

func printTopSpans(tree *obs.TraceTree, n int) {
	tops := report.TopSpans(tree, n)
	if len(tops) == 0 {
		return
	}
	fmt.Printf("\n%-24s %8s %12s %12s\n", "span", "count", "self_ms", "total_ms")
	for _, a := range tops {
		fmt.Printf("%-24s %8d %12.1f %12.1f\n",
			a.Name, a.Count, float64(a.SelfUS)/1000, float64(a.TotalUS)/1000)
	}
}

// runProfile validates and renders a sampling-profile JSONL stream.
func runProfile(path string, validateOnly bool, topN int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	recs, err := report.ReadProfiles(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no profile records", path)
	}
	if validateOnly {
		fmt.Printf("%d profile records: well-formed\n", len(recs))
		return nil
	}
	for _, rec := range recs {
		fmt.Printf("\n%s (%s, %s): %d samples at %d Hz, %.1fms wall\n",
			rec.Clip, rec.Solver, rec.Rule, rec.Samples, rec.Hz, rec.WallMS)
		n := len(rec.Funcs)
		if topN > 0 && n > topN {
			n = topN
		}
		if n > 0 {
			fmt.Printf("  %6s %6s  %s\n", "self", "cum", "function")
		}
		for _, f := range rec.Funcs[:n] {
			fmt.Printf("  %6d %6d  %s\n", f.Self, f.Cum, f.Fn)
		}
	}
	return nil
}

// runBench renders a benchmark document's measurement-trust evidence —
// calibration block and per-case work vectors — and, with a baseline, the
// full comparison including the drift verdict.
func runBench(path, basePath string) error {
	doc, err := readBench(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: schema %d, %s corpus, %d cases (%d failed)\n",
		path, doc.SchemaVersion, doc.Corpus, doc.Totals.Cases, doc.Totals.Failed)
	if cal := doc.Calibration; cal != nil {
		fmt.Printf("calibration: score %.3f ns (suite %.0fms)\n", cal.ScoreNs, cal.WallMS)
		names := make([]string, 0, len(cal.ProbesNs))
		for name := range cal.ProbesNs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-10s %12.3f ns/op\n", name, cal.ProbesNs[name])
		}
	} else {
		fmt.Printf("calibration: none (schema v%d document)\n", doc.SchemaVersion)
	}
	var lpHits, lpResets, lpFlips, psRows, psCols, lpIters int64
	var rfEta, rfFill, rfPivot, rfRej int64
	lpCases := 0
	for _, c := range doc.Cases {
		if l := c.LP; l != nil {
			lpCases++
			lpHits += int64(l.CandidateHits)
			lpResets += int64(l.RefResets)
			lpFlips += int64(l.DualBoundFlips)
			psRows += int64(l.PresolveRows)
			psCols += int64(l.PresolveCols)
			rfEta += int64(l.RefactorEtaLen)
			rfFill += int64(l.RefactorFill)
			rfPivot += int64(l.RefactorPivotQuality)
			rfRej += int64(l.RefactorUpdateRejected)
			lpIters += c.Work["simplex_iters"]
		}
		if len(c.Work) == 0 && c.Profile == nil && c.LP == nil {
			continue
		}
		fmt.Printf("\n%s/%s: %.1fms wall\n", c.Name, c.Solver, c.WallMS)
		if len(c.Work) > 0 {
			keys := make([]string, 0, len(c.Work))
			for k := range c.Work {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			line := ""
			for _, k := range keys {
				if line != "" {
					line += " "
				}
				line += fmt.Sprintf("%s:%d", k, c.Work[k])
			}
			fmt.Printf("  work:    %s\n", line)
		}
		if l := c.LP; l != nil {
			hits := fmt.Sprintf("candidate_hits=%d", l.CandidateHits)
			if it := c.Work["simplex_iters"]; it > 0 {
				hits += fmt.Sprintf(" (%.0f%% of %d iters)",
					100*float64(l.CandidateHits)/float64(it), it)
			}
			fmt.Printf("  lp:      %s, ref_resets=%d, dual_flips=%d; presolve rows=%d cols=%d\n",
				hits, l.RefResets, l.DualBoundFlips, l.PresolveRows, l.PresolveCols)
			if l.RefactorEtaLen+l.RefactorFill+l.RefactorPivotQuality+l.RefactorUpdateRejected > 0 {
				fmt.Printf("  refact:  eta_len=%d fill=%d pivot_quality=%d update_rejected=%d\n",
					l.RefactorEtaLen, l.RefactorFill, l.RefactorPivotQuality, l.RefactorUpdateRejected)
			}
		}
		if p := c.Profile; p != nil {
			fmt.Printf("  profile: %d samples at %d Hz", p.Samples, p.Hz)
			if len(p.Funcs) > 0 {
				fmt.Printf("; top %s (self %d)", p.Funcs[0].Fn, p.Funcs[0].Self)
			}
			fmt.Println()
		}
	}
	if lpCases > 0 {
		hits := fmt.Sprintf("candidate_hits=%d", lpHits)
		if lpIters > 0 {
			hits += fmt.Sprintf(" (%.0f%% of %d iters)",
				100*float64(lpHits)/float64(lpIters), lpIters)
		}
		fmt.Printf("\npricing summary (%d lp cases): %s, ref_resets=%d, dual_flips=%d; presolve rows=%d cols=%d\n",
			lpCases, hits, lpResets, lpFlips, psRows, psCols)
		if rfEta+rfFill+rfPivot+rfRej > 0 {
			fmt.Printf("refactor summary: eta_len=%d fill=%d pivot_quality=%d update_rejected=%d\n",
				rfEta, rfFill, rfPivot, rfRej)
		}
	}
	if basePath == "" {
		return nil
	}
	base, err := readBench(basePath)
	if err != nil {
		return err
	}
	cmp := report.CompareBench(base, doc)
	fmt.Printf("\nvs %s: %d matched, %d mismatched, %d only-base, %d only-cur\n",
		basePath, cmp.Matched, len(cmp.Mismatches), len(cmp.OnlyBase), len(cmp.OnlyCur))
	fmt.Printf("wall ratio %.3f raw, %.3f calibrated (machine ratio %.3f, calib %v)\n",
		cmp.WallRatio, cmp.CalibratedWallRatio, cmp.CalibRatio, cmp.HasCalib)
	fmt.Printf("work ratio %.3f over %d cases (worst %.3f at %s)\n",
		cmp.WorkRatio, cmp.WorkCases, cmp.WorkMax, cmp.WorkMaxCase)
	for _, d := range cmp.WorkDeltas {
		fmt.Printf("  work %-18s %14d -> %14d  (%.3f)\n", d.Counter, d.Base, d.Cur, d.Ratio)
	}
	for i, d := range cmp.ProfileDeltas {
		if i >= 10 {
			break
		}
		fmt.Printf("  profile %-40s self share %5.1f%% -> %5.1f%%\n",
			d.Fn, d.BaseFrac*100, d.CurFrac*100)
	}
	// The standard CI thresholds (ci.sh): work 1.02 primary, wall 1.2
	// secondary — rendering the same verdict the gate would produce.
	outcome, verdict := cmp.Gate(1.02, 1.2)
	fmt.Printf("verdict [%s]: %s\n", outcome, verdict)
	return nil
}

func readBench(path string) (*report.BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := report.ValidateBench(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func writeCSV(path string, solves []report.SolveTrace) error {
	if path == "-" {
		return report.WriteNodeCSV(os.Stdout, solves)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteNodeCSV(f, solves); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
