// Command improve measures the suboptimality of the reference router by
// optimally re-routing every clip window of a routed design — the "local
// improvement of detailed routing solutions" the paper's Section 5 proposes.
//
// Usage:
//
//	improve [-tech N28-12T] [-design AES|M0] [-size 300] [-util 0.92]
//	        [-windows 20] [-timeout 10s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optrouter/internal/cells"
	"optrouter/internal/extract"
	"optrouter/internal/improve"
	"optrouter/internal/netlist"
	"optrouter/internal/place"
	"optrouter/internal/report"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

func main() {
	var (
		techName = flag.String("tech", "N28-12T", "technology name")
		design   = flag.String("design", "M0", "design profile: AES or M0")
		size     = flag.Int("size", 300, "instance count")
		util     = flag.Float64("util", 0.92, "target utilization")
		seed     = flag.Int64("seed", 1, "generation seed")
		windows  = flag.Int("windows", 20, "maximum clip windows to assess (0 = all)")
		maxNets  = flag.Int("maxnets", 5, "skip windows with more nets")
		layers   = flag.Int("nz", 4, "routing stack depth")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-window solve budget")
	)
	flag.Parse()

	var tt *tech.Technology
	for _, t := range tech.AllTechnologies() {
		if t.Name == *techName {
			tt = t
		}
	}
	if tt == nil {
		fatal(fmt.Errorf("unknown technology %q", *techName))
	}
	lib := cells.Generate(tt)
	var prof netlist.Profile
	switch *design {
	case "AES":
		prof = netlist.AESClass(*size, *seed)
	case "M0":
		prof = netlist.M0Class(*size, *seed)
	default:
		fatal(fmt.Errorf("unknown design %q", *design))
	}
	nl, err := netlist.Generate(lib, prof)
	if err != nil {
		fatal(err)
	}
	pl, err := place.Place(lib, nl, place.Options{TargetUtil: *util})
	if err != nil {
		fatal(err)
	}
	res, err := route.Route(pl, route.Options{Layers: *layers})
	if err != nil {
		fatal(err)
	}
	wl, vias := res.WirelengthVias()
	fmt.Printf("%s/%s: routed wl=%d vias=%d (cost %d)\n", tt.Name, *design, wl, vias, wl+4*vias)

	r, err := improve.Design(res, improve.Options{
		Extract:        extract.Options{MaxNets: *maxNets},
		PerClipTimeout: *timeout,
		MaxWindows:     *windows,
	})
	if err != nil {
		fatal(err)
	}

	t := report.NewTable("Per-window local improvement (optimal vs reference route)",
		"Window", "Baseline", "Optimal", "Delta", "Proven")
	for _, w := range r.Windows {
		t.AddRow(w.Clip, w.BaselineCost, w.OptimalCost, w.Delta, w.Proven)
	}
	t.Write(os.Stdout)
	fmt.Printf("\nwindows: %d assessed, %d improvable, %d skipped\n", r.Tried, r.Improved, r.Skipped)
	if r.TotalBase > 0 {
		fmt.Printf("aggregate in-window cost: %d -> %d (%.1f%% recoverable; avg delta %.1f)\n",
			r.TotalBase, r.TotalOptimal,
			100*float64(r.TotalBase-r.TotalOptimal)/float64(r.TotalBase), r.AvgDelta())
	}
	fmt.Println("(paper footnote 6: average delta -10..-15 against ~380 per clip)")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "improve: %v\n", err)
	os.Exit(1)
}
