// Command benchrun runs the pinned benchmark corpus — synthesized clips
// crossed with representative rule configurations, solved by both exact
// engines — and emits one schema-versioned benchmark-trajectory document
// (BENCH_<n>.json) recording wall time, branch-and-bound nodes, simplex
// iterations and the per-phase wall-time breakdown of every case. Committing
// one document per repository revision builds the performance trajectory
// that makes solver regressions visible in review.
//
// Usage:
//
//	benchrun [-short] [-timeout 30s] [-j N] [-o file | -dir dir] [-baseline file [-max-regress R]]
//	benchrun [-par N] [-portfolio]
//	benchrun [-trace file [-flight] [-flight-every N] [-trace-max-mb MB] [-trace-keep K]] ...
//	benchrun -check file.json
//
// -short runs the CI corpus (seconds); the default full corpus takes on the
// order of a minute. -o writes to the named file ("-" = stdout); -dir picks
// the first free BENCH_<n>.json in the directory (default "."). -check only
// validates an existing document against the schema and exits. -baseline
// compares the run against a committed trajectory point (failing on any
// answer mismatch) and -max-regress additionally fails the run when the
// geomean wall-time ratio exceeds the given factor.
//
// -par N runs every serial bnb and portfolio case with N in-solve workers
// (the parallel engine is deterministic, so answers — and hence the -baseline
// answer gate — are unaffected; pinned par twins keep their own worker
// count); -portfolio additionally solves every bnb
// case in portfolio mode under a "-portfolio" name suffix. Both are scaling
// experiment knobs (the EXPERIMENTS.md 1/2/4/8-worker curve); committed
// trajectory points use the pinned corpus unmodified.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"time"

	"optrouter/internal/exp"
	"optrouter/internal/obs"
	"optrouter/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		short   = flag.Bool("short", false, "run the reduced CI corpus")
		timeout = flag.Duration("timeout", 30*time.Second, "per-case solve budget")
		jobs    = flag.Int("j", runtime.NumCPU(), "parallel solve workers")
		out     = flag.String("o", "", "output file (\"-\" = stdout; default: first free BENCH_<n>.json in -dir)")
		dir     = flag.String("dir", ".", "directory for auto-numbered BENCH_<n>.json output")
		check   = flag.String("check", "", "validate an existing benchmark document and exit")

		par       = flag.Int("par", 0, "run serial bnb/portfolio cases with this many in-solve workers (0 = as pinned; pinned par twins keep their worker count)")
		portfolio = flag.Bool("portfolio", false, "also solve every bnb case in portfolio mode (\"-portfolio\" name suffix)")

		baseline   = flag.String("baseline", "", "baseline benchmark document to compare the run against")
		maxRegress = flag.Float64("max-regress", 0,
			"fail when the geomean wall ratio vs -baseline exceeds this (0 = report only)")

		trace      = flag.String("trace", "", "write a JSONL span trace of every solve to this file")
		traceMaxMB = flag.Int("trace-max-mb", 64, "rotate the trace when a file exceeds this size")
		traceKeep  = flag.Int("trace-keep", 4, "trace files retained across rotation (live + archives)")
		flight     = flag.Bool("flight", false,
			"record per-node search events onto the trace (requires -trace; costs solve wall time)")
		flightEvery = flag.Int("flight-every", 1, "sample 1 in N node events after the burst")
	)
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		doc, err := report.ValidateBench(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *check, err)
		}
		fmt.Printf("%s: valid (schema %d, %s corpus, %d cases, %d failed)\n",
			*check, doc.SchemaVersion, doc.Corpus, doc.Totals.Cases, doc.Totals.Failed)
		return nil
	}

	corpus := "full"
	if *short {
		corpus = "short"
	}
	specs := exp.BenchCorpus(*short)
	if *par > 0 {
		for i := range specs {
			if specs[i].Solver != "ilp" && specs[i].Par == 0 {
				specs[i].Par = *par
			}
		}
	}
	if *portfolio {
		for _, s := range exp.BenchCorpus(*short) {
			if s.Solver != "bnb" {
				continue
			}
			s.Name += "-portfolio"
			s.Solver = "portfolio"
			if *par > 0 {
				s.Par = *par
			}
			specs = append(specs, s)
		}
	}
	fmt.Fprintf(os.Stderr, "benchrun: %s corpus, %d cases, %d workers\n", corpus, len(specs), *jobs)

	runOpt := exp.BenchRunOptions{Timeout: *timeout, Workers: *jobs, Corpus: corpus}
	if *flight && *trace == "" {
		return fmt.Errorf("-flight needs -trace (node events have nowhere to go)")
	}
	if *trace != "" {
		tr, err := obs.NewRotatingTracer(*trace, int64(*traceMaxMB)<<20, *traceKeep)
		if err != nil {
			return err
		}
		// Close (not just flush) so SIGINT-shortened runs still leave a
		// parseable trace behind; Close is idempotent.
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchrun: trace: %v\n", err)
			}
			if n := tr.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "benchrun: trace dropped %d records (rotation)\n", n)
			}
		}()
		runOpt.Tracer = tr
		runOpt.Flight = obs.FlightOptions{Enabled: *flight, Every: *flightEvery}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	doc, err := exp.RunBenchCorpus(ctx, specs, runOpt)
	if err != nil {
		return err
	}

	// Self-validate before writing: an emitted document that fails its own
	// schema is a bug worth failing loudly on, not committing.
	data, err := report.MarshalBench(doc)
	if err != nil {
		return err
	}
	if _, err := report.ValidateBench(data); err != nil {
		return fmt.Errorf("emitted document fails validation: %w", err)
	}

	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		path := *out
		if path == "" {
			path, err = nextBenchPath(*dir)
			if err != nil {
				return err
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchrun: wrote %s (%d cases, %d failed, %.0fms total solve wall)\n",
			path, doc.Totals.Cases, doc.Totals.Failed, doc.Totals.WallMS)
	}
	if doc.Totals.Failed > 0 {
		return fmt.Errorf("%d of %d cases failed", doc.Totals.Failed, doc.Totals.Cases)
	}
	if *baseline != "" {
		return compareBaseline(doc, *baseline, *maxRegress)
	}
	return nil
}

// compareBaseline gates the freshly run document against a committed
// trajectory point: identical answers on every shared case, and (when
// maxRegress > 0) a geomean wall-time ratio within the budget.
func compareBaseline(doc *report.BenchDoc, path string, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	base, err := report.ValidateBench(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	cmp := report.CompareBench(base, doc)
	fmt.Fprintf(os.Stderr, "benchrun: vs %s: %d cases matched, geomean wall ratio %.3f\n",
		path, cmp.Matched, cmp.WallRatio)
	for _, m := range cmp.Mismatches {
		fmt.Fprintf(os.Stderr, "benchrun: answer mismatch: %s\n", m)
	}
	for _, k := range cmp.OnlyCur {
		fmt.Fprintf(os.Stderr, "benchrun: case %s not in baseline\n", k)
	}
	for _, k := range cmp.OnlyBase {
		fmt.Fprintf(os.Stderr, "benchrun: case %s only in baseline (not run)\n", k)
	}
	if len(cmp.PhaseDeltas) > 0 {
		fmt.Fprintf(os.Stderr, "benchrun: %-16s %10s %10s %8s\n", "phase", "base_ms", "cur_ms", "delta")
		for _, d := range cmp.PhaseDeltas {
			fmt.Fprintf(os.Stderr, "benchrun: %-16s %10.1f %10.1f %+7.0f%%\n",
				d.Phase, d.BaseMS, d.CurMS, (d.Ratio-1)*100)
		}
	}
	if len(cmp.Mismatches) > 0 {
		return fmt.Errorf("%d answer mismatches vs %s", len(cmp.Mismatches), path)
	}
	if cmp.Matched == 0 {
		return fmt.Errorf("no comparable cases vs %s", path)
	}
	if maxRegress > 0 && cmp.WallRatio > maxRegress {
		msg := fmt.Sprintf("geomean wall ratio %.3f vs %s exceeds -max-regress %.2f",
			cmp.WallRatio, path, maxRegress)
		if s := cmp.PhaseSummary(3); s != "" {
			msg += " (largest phase movements: " + s + ")"
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// nextBenchPath returns the first BENCH_<n>.json not yet present in dir.
func nextBenchPath(dir string) (string, error) {
	for n := 0; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}
