// Command benchrun runs the pinned benchmark corpus — synthesized clips
// crossed with representative rule configurations, solved by both exact
// engines — and emits one schema-versioned benchmark-trajectory document
// (BENCH_<n>.json) recording wall time, branch-and-bound nodes, simplex
// iterations and the per-phase wall-time breakdown of every case. Committing
// one document per repository revision builds the performance trajectory
// that makes solver regressions visible in review.
//
// Usage:
//
//	benchrun [-short] [-timeout 30s] [-j N] [-o file | -dir dir]
//	benchrun [-baseline file [-max-regress R] [-max-work-regress R]]
//	benchrun [-par N] [-portfolio] [-sample file [-sample-hz N]]
//	benchrun [-pricing R] [-presolve M] [-algorithm A] [-update U]
//	benchrun [-trace file [-flight] [-flight-every N] [-trace-max-mb MB] [-trace-keep K]] ...
//	benchrun -check file.json
//	benchrun -calib
//
// -short runs the CI corpus (seconds); the default full corpus takes on the
// order of a minute. -o writes to the named file ("-" = stdout); -dir picks
// the first free BENCH_<n>.json in the directory (default "."). -check only
// validates an existing document against the schema and exits. -calib runs
// the machine-calibration probe suite alone, prints it, and exits — the
// same suite every corpus run stamps into its document's calibration block.
//
// -baseline compares the run against a committed trajectory point under the
// two-tier regression policy: -max-work-regress gates the deterministic
// per-case work ratio (the primary signal — tight, jitter-free), and
// -max-regress gates the geomean wall ratio (secondary — loose, corrected by
// the calibration blocks when both documents carry them). The process exit
// code classifies the outcome for CI:
//
//	0  answers match, work flat, wall within bounds
//	1  operational error (bad flags, I/O, failed cases, no comparable cases)
//	2  answer mismatch — the solvers disagree
//	3  work regression — a deterministic counter regressed; always code
//	4  wall regression — slower even after machine drift is divided out
//	5  wall regression with machine drift suspected — warn, don't fail
//
// -sample profiles every case with the in-process sampling profiler
// (obs.Sampler), attaching per-case top-function summaries to the document
// and streaming one JSONL record per case to the named file ("-" = stderr
// summary only); -sample-hz tunes the rate (default 100).
//
// -par N runs every serial bnb and portfolio case with N in-solve workers
// (the parallel engine is deterministic, so answers — and hence the -baseline
// answer gate — are unaffected; pinned par twins keep their own worker
// count); -portfolio additionally solves every bnb
// case in portfolio mode under a "-portfolio" name suffix. Both are scaling
// experiment knobs (the EXPERIMENTS.md 1/2/4/8-worker curve); committed
// trajectory points use the pinned corpus unmodified.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"time"

	"optrouter/internal/calib"
	"optrouter/internal/exp"
	"optrouter/internal/lp"
	"optrouter/internal/obs"
	"optrouter/internal/report"
)

// CI exit codes of the -baseline gate (see the package comment).
const (
	exitAnswerMismatch = 2
	exitWorkRegression = 3
	exitWallRegression = 4
	exitWallDrift      = 5
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		short   = flag.Bool("short", false, "run the reduced CI corpus")
		timeout = flag.Duration("timeout", 30*time.Second, "per-case solve budget")
		jobs    = flag.Int("j", runtime.NumCPU(), "parallel solve workers")
		out     = flag.String("o", "", "output file (\"-\" = stdout; default: first free BENCH_<n>.json in -dir)")
		dir     = flag.String("dir", ".", "directory for auto-numbered BENCH_<n>.json output")
		check   = flag.String("check", "", "validate an existing benchmark document and exit")
		calOnly = flag.Bool("calib", false, "run the machine-calibration probe suite, print it, and exit")

		par       = flag.Int("par", 0, "run serial bnb/portfolio cases with this many in-solve workers (0 = as pinned; pinned par twins keep their worker count)")
		portfolio = flag.Bool("portfolio", false, "also solve every bnb case in portfolio mode (\"-portfolio\" name suffix)")

		baseline   = flag.String("baseline", "", "baseline benchmark document to compare the run against")
		maxRegress = flag.Float64("max-regress", 0,
			"fail (exit 4/5) when the wall ratio vs -baseline exceeds this, calibrated when possible (0 = report only)")
		maxWorkRegress = flag.Float64("max-work-regress", 0,
			"fail (exit 3) when any case's deterministic work ratio vs -baseline exceeds this (0 = report only)")

		sample   = flag.String("sample", "", "profile each case with the sampling profiler, writing JSONL records here (\"-\" = no file, document only)")
		sampleHz = flag.Int("sample-hz", 100, "sampling-profiler rate in stacks/second")

		trace      = flag.String("trace", "", "write a JSONL span trace of every solve to this file")
		traceMaxMB = flag.Int("trace-max-mb", 64, "rotate the trace when a file exceeds this size")
		traceKeep  = flag.Int("trace-keep", 4, "trace files retained across rotation (live + archives)")
		flight     = flag.Bool("flight", false,
			"record per-node search events onto the trace (requires -trace; costs solve wall time)")
		flightEvery = flag.Int("flight-every", 1, "sample 1 in N node events after the burst")

		pricing   = flag.String("pricing", "auto", "LP pricing rule for ilp/portfolio cases: auto, dantzig, devex or steepest")
		presolve  = flag.String("presolve", "auto", "structural LP presolve for ilp/portfolio cases: auto or off")
		algorithm = flag.String("algorithm", "auto", "simplex algorithm for ilp/portfolio cases: auto, primal or dual")
		update    = flag.String("update", "auto", "sparse-engine basis-update scheme: auto, ft or pfi")
	)
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			return 1, err
		}
		doc, err := report.ValidateBench(data)
		if err != nil {
			return 1, fmt.Errorf("%s: %w", *check, err)
		}
		fmt.Printf("%s: valid (schema %d, %s corpus, %d cases, %d failed)\n",
			*check, doc.SchemaVersion, doc.Corpus, doc.Totals.Cases, doc.Totals.Failed)
		return 0, nil
	}

	if *calOnly {
		res := calib.Run(calib.Options{})
		for _, p := range res.Probes {
			fmt.Printf("%-10s %12.3f ns/op  (%d ops)\n", p.Name, p.NsPerOp, p.Ops)
		}
		fmt.Printf("%-10s %12.3f ns     (machine probes geomean; %.0fms suite wall)\n",
			"score", res.ScoreNs, res.WallMS)
		return 0, nil
	}

	corpus := "full"
	if *short {
		corpus = "short"
	}
	specs := exp.BenchCorpus(*short)
	if *par > 0 {
		for i := range specs {
			if specs[i].Solver != "ilp" && specs[i].Par == 0 {
				specs[i].Par = *par
			}
		}
	}
	if *portfolio {
		for _, s := range exp.BenchCorpus(*short) {
			if s.Solver != "bnb" {
				continue
			}
			s.Name += "-portfolio"
			s.Solver = "portfolio"
			if *par > 0 {
				s.Par = *par
			}
			specs = append(specs, s)
		}
	}
	fmt.Fprintf(os.Stderr, "benchrun: %s corpus, %d cases, %d workers\n", corpus, len(specs), *jobs)

	// Calibrate before solving anything: the document must say what machine
	// state produced it, and the operator should see the score up front.
	calRes := calib.Run(calib.Options{})
	fmt.Fprintf(os.Stderr, "benchrun: calibration score %.3f ns (suite %.0fms)\n",
		calRes.ScoreNs, calRes.WallMS)

	runOpt := exp.BenchRunOptions{
		Timeout: *timeout, Workers: *jobs, Corpus: corpus,
		Calibration: &report.BenchCalibration{
			ProbesNs: calRes.ProbesNs(), ScoreNs: calRes.ScoreNs, WallMS: calRes.WallMS,
		},
	}
	if pr, err := lp.ParsePricing(*pricing); err != nil {
		return 1, err
	} else {
		runOpt.LP.Pricing = pr
	}
	if ps, err := lp.ParsePresolveMode(*presolve); err != nil {
		return 1, err
	} else {
		runOpt.LP.Presolve = ps
	}
	if alg, err := lp.ParseAlgorithm(*algorithm); err != nil {
		return 1, err
	} else {
		runOpt.LP.Algorithm = alg
	}
	if up, err := lp.ParseUpdate(*update); err != nil {
		return 1, err
	} else {
		runOpt.LP.Update = up
	}
	if *flight && *trace == "" {
		return 1, fmt.Errorf("-flight needs -trace (node events have nowhere to go)")
	}
	if *sample != "" {
		sampler := obs.StartSampler(obs.SamplerOptions{Hz: *sampleHz})
		defer sampler.Stop()
		runOpt.Sampler = sampler
		if *sample != "-" {
			f, err := os.Create(*sample)
			if err != nil {
				return 1, err
			}
			pw := report.NewProfileWriter(f)
			defer func() {
				if err := pw.Flush(); err != nil {
					fmt.Fprintf(os.Stderr, "benchrun: sample: %v\n", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "benchrun: sample: %v\n", err)
				}
			}()
			runOpt.ProfileW = pw
		}
		defer func() {
			fmt.Fprintf(os.Stderr, "benchrun: sampler captured %d stacks at %d Hz\n",
				sampler.Samples(), sampler.Hz())
		}()
	}
	if *trace != "" {
		tr, err := obs.NewRotatingTracer(*trace, int64(*traceMaxMB)<<20, *traceKeep)
		if err != nil {
			return 1, err
		}
		// Close (not just flush) so SIGINT-shortened runs still leave a
		// parseable trace behind; Close is idempotent.
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchrun: trace: %v\n", err)
			}
			if n := tr.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "benchrun: trace dropped %d records (rotation)\n", n)
			}
		}()
		runOpt.Tracer = tr
		runOpt.Flight = obs.FlightOptions{Enabled: *flight, Every: *flightEvery}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	doc, err := exp.RunBenchCorpus(ctx, specs, runOpt)
	if err != nil {
		return 1, err
	}

	// Self-validate before writing: an emitted document that fails its own
	// schema is a bug worth failing loudly on, not committing.
	data, err := report.MarshalBench(doc)
	if err != nil {
		return 1, err
	}
	if _, err := report.ValidateBench(data); err != nil {
		return 1, fmt.Errorf("emitted document fails validation: %w", err)
	}

	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return 1, err
		}
	} else {
		path := *out
		if path == "" {
			path, err = nextBenchPath(*dir)
			if err != nil {
				return 1, err
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return 1, err
		}
		fmt.Fprintf(os.Stderr, "benchrun: wrote %s (%d cases, %d failed, %.0fms total solve wall)\n",
			path, doc.Totals.Cases, doc.Totals.Failed, doc.Totals.WallMS)
	}
	if doc.Totals.Failed > 0 {
		return 1, fmt.Errorf("%d of %d cases failed", doc.Totals.Failed, doc.Totals.Cases)
	}
	if *baseline != "" {
		return compareBaseline(doc, *baseline, *maxRegress, *maxWorkRegress)
	}
	return 0, nil
}

// compareBaseline gates the freshly run document against a committed
// trajectory point under the two-tier policy: identical answers on every
// shared case, deterministic work within maxWorkRegress (primary), wall time
// within maxRegress (secondary, machine-corrected when both documents carry
// calibration). The returned code is the process exit code.
func compareBaseline(doc *report.BenchDoc, path string, maxRegress, maxWorkRegress float64) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 1, err
	}
	base, err := report.ValidateBench(data)
	if err != nil {
		return 1, fmt.Errorf("%s: %w", path, err)
	}
	cmp := report.CompareBench(base, doc)
	fmt.Fprintf(os.Stderr, "benchrun: vs %s: %d cases matched, geomean wall ratio %.3f (calibrated %.3f, calib %.3f)\n",
		path, cmp.Matched, cmp.WallRatio, cmp.CalibratedWallRatio, cmp.CalibRatio)
	fmt.Fprintf(os.Stderr, "benchrun: work ratio %.3f over %d cases (worst %.3f at %s)\n",
		cmp.WorkRatio, cmp.WorkCases, cmp.WorkMax, cmp.WorkMaxCase)
	for _, m := range cmp.Mismatches {
		fmt.Fprintf(os.Stderr, "benchrun: answer mismatch: %s\n", m)
	}
	for _, k := range cmp.OnlyCur {
		fmt.Fprintf(os.Stderr, "benchrun: case %s not in baseline\n", k)
	}
	for _, k := range cmp.OnlyBase {
		fmt.Fprintf(os.Stderr, "benchrun: case %s only in baseline (not run)\n", k)
	}
	if len(cmp.WorkDeltas) > 0 {
		fmt.Fprintf(os.Stderr, "benchrun: %-18s %14s %14s %8s\n", "work counter", "base", "cur", "ratio")
		for _, d := range cmp.WorkDeltas {
			fmt.Fprintf(os.Stderr, "benchrun: %-18s %14d %14d %8.3f\n", d.Counter, d.Base, d.Cur, d.Ratio)
		}
	}
	if len(cmp.PhaseDeltas) > 0 {
		fmt.Fprintf(os.Stderr, "benchrun: %-16s %10s %10s %8s\n", "phase", "base_ms", "cur_ms", "delta")
		for _, d := range cmp.PhaseDeltas {
			fmt.Fprintf(os.Stderr, "benchrun: %-16s %10.1f %10.1f %+7.0f%%\n",
				d.Phase, d.BaseMS, d.CurMS, (d.Ratio-1)*100)
		}
	}
	for i, d := range cmp.ProfileDeltas {
		if i >= 5 {
			break
		}
		fmt.Fprintf(os.Stderr, "benchrun: profile %s: self share %.1f%% -> %.1f%%\n",
			d.Fn, d.BaseFrac*100, d.CurFrac*100)
	}
	if cmp.Matched == 0 && len(cmp.Mismatches) == 0 {
		return 1, fmt.Errorf("no comparable cases vs %s", path)
	}
	// 0 means "report only" for each tier; Gate sees an infinite threshold.
	gateWork, gateWall := maxWorkRegress, maxRegress
	if gateWork <= 0 {
		gateWork = math.Inf(1)
	}
	if gateWall <= 0 {
		gateWall = math.Inf(1)
	}
	outcome, verdict := cmp.Gate(gateWork, gateWall)
	fmt.Fprintf(os.Stderr, "benchrun: gate %s: %s\n", outcome, verdict)
	switch outcome {
	case report.GateAnswerMismatch:
		return exitAnswerMismatch, fmt.Errorf("answer mismatch vs %s: %s", path, verdict)
	case report.GateWorkRegression:
		return exitWorkRegression, fmt.Errorf("%s vs %s", verdict, path)
	case report.GateWallRegression:
		msg := verdict
		if s := cmp.PhaseSummary(3); s != "" {
			msg += " (largest phase movements: " + s + ")"
		}
		return exitWallRegression, fmt.Errorf("%s vs %s", msg, path)
	case report.GateWallDrift:
		// Warn-only outcome: distinct exit code, no error (ci.sh decides).
		fmt.Fprintf(os.Stderr, "benchrun: WARNING: %s\n", verdict)
		return exitWallDrift, nil
	}
	return 0, nil
}

// nextBenchPath returns the first BENCH_<n>.json not yet present in dir.
func nextBenchPath(dir string) (string, error) {
	for n := 0; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}
