// Command benchrun runs the pinned benchmark corpus — synthesized clips
// crossed with representative rule configurations, solved by both exact
// engines — and emits one schema-versioned benchmark-trajectory document
// (BENCH_<n>.json) recording wall time, branch-and-bound nodes, simplex
// iterations and the per-phase wall-time breakdown of every case. Committing
// one document per repository revision builds the performance trajectory
// that makes solver regressions visible in review.
//
// Usage:
//
//	benchrun [-short] [-timeout 30s] [-j N] [-o file | -dir dir]
//	benchrun -check file.json
//
// -short runs the CI corpus (seconds); the default full corpus takes on the
// order of a minute. -o writes to the named file ("-" = stdout); -dir picks
// the first free BENCH_<n>.json in the directory (default "."). -check only
// validates an existing document against the schema and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"time"

	"optrouter/internal/exp"
	"optrouter/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		short   = flag.Bool("short", false, "run the reduced CI corpus")
		timeout = flag.Duration("timeout", 30*time.Second, "per-case solve budget")
		jobs    = flag.Int("j", runtime.NumCPU(), "parallel solve workers")
		out     = flag.String("o", "", "output file (\"-\" = stdout; default: first free BENCH_<n>.json in -dir)")
		dir     = flag.String("dir", ".", "directory for auto-numbered BENCH_<n>.json output")
		check   = flag.String("check", "", "validate an existing benchmark document and exit")
	)
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		doc, err := report.ValidateBench(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *check, err)
		}
		fmt.Printf("%s: valid (schema %d, %s corpus, %d cases, %d failed)\n",
			*check, doc.SchemaVersion, doc.Corpus, doc.Totals.Cases, doc.Totals.Failed)
		return nil
	}

	corpus := "full"
	if *short {
		corpus = "short"
	}
	specs := exp.BenchCorpus(*short)
	fmt.Fprintf(os.Stderr, "benchrun: %s corpus, %d cases, %d workers\n", corpus, len(specs), *jobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	doc, err := exp.RunBenchCorpus(ctx, specs, exp.BenchRunOptions{
		Timeout: *timeout, Workers: *jobs, Corpus: corpus,
	})
	if err != nil {
		return err
	}

	// Self-validate before writing: an emitted document that fails its own
	// schema is a bug worth failing loudly on, not committing.
	data, err := report.MarshalBench(doc)
	if err != nil {
		return err
	}
	if _, err := report.ValidateBench(data); err != nil {
		return fmt.Errorf("emitted document fails validation: %w", err)
	}

	if *out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	path := *out
	if path == "" {
		path, err = nextBenchPath(*dir)
		if err != nil {
			return err
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchrun: wrote %s (%d cases, %d failed, %.0fms total solve wall)\n",
		path, doc.Totals.Cases, doc.Totals.Failed, doc.Totals.WallMS)
	if doc.Totals.Failed > 0 {
		return fmt.Errorf("%d of %d cases failed", doc.Totals.Failed, doc.Totals.Cases)
	}
	return nil
}

// nextBenchPath returns the first BENCH_<n>.json not yet present in dir.
func nextBenchPath(dir string) (string, error) {
	for n := 0; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}
