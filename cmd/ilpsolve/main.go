// Command ilpsolve is a standalone mixed-integer linear program solver over
// a small LP-like text format (see internal/lpformat), exposing the pure-Go
// MILP engine that replaces CPLEX in this reproduction.
//
// Usage:
//
//	ilpsolve model.lp     (or reads stdin with no argument)
//
// Exit status: 0 solved, 2 infeasible, 1 error.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"optrouter/internal/ilp"
	"optrouter/internal/lpformat"
)

func main() {
	var r io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	model, names, err := lpformat.Parse(r)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res := model.Solve(ilp.Options{})
	fmt.Printf("status: %s (%d nodes, %d LP iterations, %v)\n",
		res.Status, res.Nodes, res.LPIters, time.Since(start).Round(time.Millisecond))
	if res.Status == ilp.Optimal || res.Status == ilp.Feasible {
		fmt.Printf("objective: %g\n", res.Obj)
		var sorted []string
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			fmt.Printf("  %s = %g\n", n, res.X[names[n]])
		}
	}
	if res.Status == ilp.Infeasible {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ilpsolve: %v\n", err)
	os.Exit(1)
}
