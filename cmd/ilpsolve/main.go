// Command ilpsolve is a standalone mixed-integer linear program solver over
// a small LP-like text format (see internal/lpformat), exposing the pure-Go
// MILP engine that replaces CPLEX in this reproduction.
//
// Usage:
//
//	ilpsolve [flags] model.lp     (or reads stdin with no argument)
//
// Flags select the LP subsolver configuration:
//
//	-engine sparse|dense    basis representation (dense is the slow
//	                        differential reference)
//	-pricing auto|dantzig|devex|steepest
//	                        simplex pricing rule (auto = devex; dantzig is
//	                        the legacy full-sweep reference)
//	-presolve auto|off      structural LP presolve in front of the search
//	-algorithm auto|primal|dual
//	                        cold-solve simplex algorithm (auto = dual for
//	                        the root LP, primal elsewhere)
//	-update auto|ft|pfi     sparse-engine basis-update scheme (auto = ft;
//	                        pfi is the product-form reference)
//	-time-limit d           stop the branch-and-bound after duration d
//	-stats                  print LP engine statistics after the solve
//
// Exit status: 0 solved, 2 infeasible, 1 error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"optrouter/internal/ilp"
	"optrouter/internal/lp"
	"optrouter/internal/lpformat"
)

func main() {
	engineFlag := flag.String("engine", "sparse", "LP basis engine: sparse or dense (differential reference)")
	pricingFlag := flag.String("pricing", "auto", "simplex pricing rule: auto, dantzig, devex or steepest")
	presolveFlag := flag.String("presolve", "auto", "structural LP presolve: auto or off")
	algorithmFlag := flag.String("algorithm", "auto", "simplex algorithm: auto, primal or dual")
	updateFlag := flag.String("update", "auto", "sparse-engine basis-update scheme: auto, ft or pfi")
	timeLimit := flag.Duration("time-limit", 0, "stop the search after this wall time (0 = none)")
	stats := flag.Bool("stats", false, "print LP engine statistics after the solve")
	flag.Parse()

	engine, err := lp.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	pricing, err := lp.ParsePricing(*pricingFlag)
	if err != nil {
		fatal(err)
	}
	presolve, err := lp.ParsePresolveMode(*presolveFlag)
	if err != nil {
		fatal(err)
	}
	algorithm, err := lp.ParseAlgorithm(*algorithmFlag)
	if err != nil {
		fatal(err)
	}
	update, err := lp.ParseUpdate(*updateFlag)
	if err != nil {
		fatal(err)
	}

	var r io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	model, names, err := lpformat.Parse(r)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res := model.Solve(ilp.Options{
		TimeLimit: *timeLimit,
		LP: lp.Options{Engine: engine, Pricing: pricing, Presolve: presolve,
			Algorithm: algorithm, Update: update},
	})
	fmt.Printf("status: %s (%d nodes, %d LP iterations, %v)\n",
		res.Status, res.Nodes, res.LPIters, time.Since(start).Round(time.Millisecond))
	if *stats {
		st := res.Stats
		fmt.Printf("lp: %d solves, %d warm starts, %d refactorizations\n",
			st.LPSolves, st.LPWarmStarts, st.LPRefactors)
		fmt.Printf("pricing: %s, %d candidate hits, %d reference resets, %d dual bound flips\n",
			pricing.String(), st.LPCandidateHits, st.LPRefResets, st.LPDualBoundFlips)
		fmt.Printf("presolve: %s, %d rows and %d cols removed\n",
			presolve.String(), st.PresolveRows, st.PresolveCols)
		fmt.Printf("refactor: %d eta_len, %d fill, %d pivot_quality, %d update_rejected\n",
			st.LPRefactorEtaLen, st.LPRefactorFill,
			st.LPRefactorPivotQuality, st.LPRefactorUpdateRejected)
	}
	if res.Status == ilp.Optimal || res.Status == ilp.Feasible {
		fmt.Printf("objective: %g\n", res.Obj)
		var sorted []string
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, n := range sorted {
			fmt.Printf("  %s = %g\n", n, res.X[names[n]])
		}
	}
	if res.Status == ilp.Infeasible {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ilpsolve: %v\n", err)
	os.Exit(1)
}
