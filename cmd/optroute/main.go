// Command optroute routes a single switchbox clip under one design-rule
// configuration and prints the optimal solution.
//
// Usage:
//
//	optroute -clip clip.json [-rule RULE1|all] [-solver bnb|ilp|heur|portfolio]
//	         [-par N] [-timeout 30s] [-j N] [-render] [-viashapes]
//	         [-lp-engine sparse|dense] [-pricing auto|dantzig|devex|steepest]
//	         [-presolve auto|off] [-algorithm auto|primal|dual] [-update auto|ft|pfi]
//	         [-stats] [-quiet] [-converge out.jsonl] [-pprof addr]
//	         [-trace out.jsonl [-flight] [-flight-every N] [-trace-max-mb MB] [-trace-keep K]]
//	optroute -synth 7x10x4 -nets 5 -seed 3   (generate an instance instead)
//
// -solver portfolio races the exact engines (CDC-BnB vs MILP) through a
// shared incumbent/bound exchange; the first optimality proof wins and
// cancels the loser. -par N runs the CDC-BnB's deterministic round-parallel
// tree search on N workers (answers and routes are identical for every N;
// see README "Parallel search & portfolio").
//
// -rule all sweeps the clip through every Table 3 rule configuration,
// dispatching the independent solves to -j parallel workers (default: all
// CPUs) with a merged done/in-flight/total progress line on stderr (throttled
// to 10 redraws/s; -quiet suppresses it); the summary table is printed in
// rule order regardless of worker count. -stats prints the solver's per-solve
// telemetry (nodes, LP solves, DRC checks, phase breakdown, termination
// reason); -trace writes a JSON-lines span trace (size-capped and rotated by
// -trace-max-mb/-trace-keep), and -flight additionally records per-node
// search events onto it for cmd/traceview; -converge dumps each
// solve's incumbent/bound convergence trace as JSON lines; -pprof serves
// net/http/pprof plus /metrics and /statusz on the given address.
//
// -calib runs the machine-calibration probe suite before solving and reports
// its score (also exposed as calib_score_ns/calib_ns_<probe> gauges on
// /metrics and a calibration block on /statusz); -sample runs the in-process
// sampling profiler (obs.Sampler, rate via -sample-hz) across the run and
// prints the top self-time functions at exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"time"

	"optrouter/internal/calib"
	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/ilp"
	"optrouter/internal/lp"
	"optrouter/internal/obs"
	"optrouter/internal/report"
	"optrouter/internal/rgraph"
	"optrouter/internal/sched"
	"optrouter/internal/tech"
)

func main() {
	// run owns all teardown in defers (trace close, converge flush), so a
	// proven-infeasible exit (code 2) or an error still leaves complete
	// JSONL files behind — os.Exit lives only here, after run returns.
	code, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "optroute: %v\n", err)
		os.Exit(1)
	}
	if code != 0 {
		os.Exit(code)
	}
}

func run() (int, error) {
	var (
		clipPath   = flag.String("clip", "", "clip JSON file (see internal/clip)")
		synth      = flag.String("synth", "", "synthesize a clip instead: WxHxL, e.g. 7x10x4")
		nets       = flag.Int("nets", 4, "net count for -synth")
		seed       = flag.Int64("seed", 1, "seed for -synth")
		ruleName   = flag.String("rule", "RULE1", "rule configuration (Table 3 name), or \"all\" to sweep every rule")
		solver     = flag.String("solver", "bnb", "solver: bnb (exact), ilp (exact via MILP), portfolio (race both), heur")
		par        = flag.Int("par", 0, "parallel tree-search workers inside each bnb/portfolio solve (0 = serial)")
		timeout    = flag.Duration("timeout", 30*time.Second, "solve budget (per rule with -rule all)")
		jobsN      = flag.Int("j", runtime.NumCPU(), "parallel workers for -rule all")
		render     = flag.Bool("render", false, "print an ASCII layer-by-layer rendering")
		shapes     = flag.Bool("viashapes", false, "also allow bar and square via shapes")
		bidir      = flag.Bool("bidir", false, "bidirectional (classic LELE) routing layers")
		viaCost    = flag.Int("viacost", 0, "override via weight in the routing cost (0 = default 4)")
		stats      = flag.Bool("stats", false, "print per-solve telemetry after the result")
		quiet      = flag.Bool("quiet", false, "suppress the live progress line")
		traceOut   = flag.String("trace", "", "write a JSON-lines span trace to this file")
		traceMaxMB = flag.Int("trace-max-mb", 64, "rotate the trace when a file exceeds this size")
		traceKeep  = flag.Int("trace-keep", 4, "trace files retained across rotation (live + archives)")
		flight     = flag.Bool("flight", false,
			"record per-node search events onto the trace (requires -trace; costs solve wall time)")
		flightEvery = flag.Int("flight-every", 1, "sample 1 in N node events after the burst")
		convOut     = flag.String("converge", "", "write per-solve convergence traces (JSON lines) to this file")
		pprofA      = flag.String("pprof", "", "serve net/http/pprof, /metrics and /statusz on this address (e.g. localhost:6060)")
		calibrate   = flag.Bool("calib", false, "run the machine-calibration probe suite before solving and report its score")
		sampleOn    = flag.Bool("sample", false, "run the sampling profiler across the run; print top functions at exit")
		sampleHz    = flag.Int("sample-hz", 100, "sampling-profiler rate in stacks/second (with -sample)")
		lpEngine    = flag.String("lp-engine", "sparse", "LP basis engine for -solver ilp/portfolio: sparse or dense (differential reference)")
		pricing     = flag.String("pricing", "auto", "LP pricing rule for -solver ilp/portfolio: auto, dantzig, devex or steepest")
		presolve    = flag.String("presolve", "auto", "structural LP presolve for -solver ilp/portfolio: auto or off")
		algorithm   = flag.String("algorithm", "auto", "simplex algorithm for -solver ilp/portfolio: auto, primal or dual")
		update      = flag.String("update", "auto", "sparse-engine basis-update scheme: auto, ft or pfi")
	)
	flag.Parse()

	lpOpt, lpCfg, err := parseLPFlags(*lpEngine, *pricing, *presolve, *algorithm, *update)
	if err != nil {
		return 0, err
	}

	var metrics *obs.Registry
	var status *obs.Status
	if *pprofA != "" {
		metrics = obs.NewRegistry()
		status = obs.NewStatus()
		http.Handle("/metrics", obs.MetricsHandler(metrics))
		http.Handle("/statusz", obs.StatusHandler(status))
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintf(os.Stderr, "optroute: pprof: %v\n", err)
			}
		}()
	}
	if *calibrate {
		res := calib.Run(calib.Options{})
		fmt.Fprintf(os.Stderr, "optroute: calibration score %.3f ns (suite %.0fms)\n",
			res.ScoreNs, res.WallMS)
		status.SetCalibration(res.ScoreNs, res.ProbesNs())
		if metrics != nil {
			metrics.Gauge("calib_score_ns").Set(res.ScoreNs)
			for name, ns := range res.ProbesNs() {
				metrics.Gauge("calib_ns_" + name).Set(ns)
			}
		}
	}
	if *sampleOn {
		sampler := obs.StartSampler(obs.SamplerOptions{Hz: *sampleHz, Registry: metrics})
		status.SetSampler(sampler)
		defer func() {
			sampler.Stop()
			p := sampler.Profile(10)
			fmt.Fprintf(os.Stderr, "optroute: sampler: %d stacks at %d Hz\n", p.Samples, p.Hz)
			for _, f := range p.Funcs {
				fmt.Fprintf(os.Stderr, "optroute:   self %5d  cum %5d  %s\n", f.Self, f.Cum, f.Fn)
			}
		}()
	}
	if *flight && *traceOut == "" {
		return 0, fmt.Errorf("-flight needs -trace (node events have nowhere to go)")
	}
	var tracer *obs.Tracer
	var flightOpt obs.FlightOptions
	if *traceOut != "" {
		var err error
		tracer, err = obs.NewRotatingTracer(*traceOut, int64(*traceMaxMB)<<20, *traceKeep)
		if err != nil {
			return 0, err
		}
		// Close flushes buffered spans and closes the file on every exit path,
		// including the infeasible exit and Ctrl-C cancellation.
		defer func() {
			tracer.Close()
			if n := tracer.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "optroute: trace dropped %d records (rotation)\n", n)
			}
		}()
		if metrics != nil {
			tracer.SetDropCounter(metrics.Counter("trace_dropped_total"))
		}
		flightOpt = obs.FlightOptions{Enabled: *flight, Every: *flightEvery}
	}
	var conv *report.ConvergenceWriter
	if *convOut != "" {
		f, err := os.Create(*convOut)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		conv = report.NewConvergenceWriter(f)
		defer conv.Flush()
	}

	var c *clip.Clip
	switch {
	case *clipPath != "":
		f, err := os.Open(*clipPath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		c, err = clip.ReadJSON(f)
		if err != nil {
			return 0, err
		}
	case *synth != "":
		var w, h, l int
		if _, err := fmt.Sscanf(*synth, "%dx%dx%d", &w, &h, &l); err != nil {
			return 0, fmt.Errorf("bad -synth %q: %v", *synth, err)
		}
		opt := clip.DefaultSynth(*seed)
		opt.NX, opt.NY, opt.NZ = w, h, l
		opt.NumNets = *nets
		c = clip.Synthesize(opt)
	default:
		return 0, fmt.Errorf("need -clip or -synth; see -h")
	}

	if *solver == "ilp" || *solver == "portfolio" {
		status.SetLPConfig(lpCfg)
	}
	sw := sweepEnv{
		solver: *solver, par: *par, timeout: *timeout, workers: *jobsN,
		shapes: *shapes, bidir: *bidir, viaCost: *viaCost,
		stats: *stats, quiet: *quiet, lp: lpOpt,
		tracer: tracer, flight: flightOpt, conv: conv, metrics: metrics, status: status,
	}
	if *ruleName == "all" {
		return 0, sw.runAllRules(c)
	}

	rule, ok := tech.RuleByName(*ruleName)
	if !ok {
		return 0, fmt.Errorf("unknown rule %q", *ruleName)
	}
	status.SetLabel(rule.Name + " " + c.Name)
	status.SetTotal(1)
	gOpt := rgraph.Options{Rule: rule, Bidirectional: *bidir, ViaCost: *viaCost}
	if *shapes {
		gOpt.ViaShapes = []tech.ViaShape{tech.SingleVia, tech.HBarVia, tech.VBarVia, tech.SquareVia}
	}
	g, err := rgraph.Build(c, gOpt)
	if err != nil {
		return 0, err
	}
	st := g.Stats()
	fmt.Printf("clip %s: %d nets, graph |V|=%d |A|=%d, %d via sites, rule %s\n",
		c.Name, len(c.Nets), st.Verts, st.Arcs, st.ViaSites, rule)

	status.JobStart(0, rule.Name+" "+c.Name)
	var sol *core.Solution
	switch *solver {
	case "bnb":
		sol, err = core.SolveBnB(g, core.BnBOptions{TimeLimit: *timeout, Par: *par, Tracer: tracer, Flight: flightOpt})
	case "ilp":
		sol, err = core.SolveILP(g, ilp.Options{TimeLimit: *timeout, LP: lpOpt, Tracer: tracer, Flight: flightOpt})
	case "portfolio":
		sol, err = core.SolvePortfolio(g, core.BnBOptions{TimeLimit: *timeout, Par: *par, LP: lpOpt, Tracer: tracer, Flight: flightOpt})
	case "heur":
		sol = core.SolveHeuristic(g, core.HeuristicOptions{})
	default:
		err = fmt.Errorf("unknown solver %q", *solver)
	}
	if err != nil {
		return 0, err
	}
	status.JobDone(0, false)
	status.AddLPStats(obs.LPStatDelta{
		CandidateHits:          sol.Stats.LPCandidateHits,
		RefResets:              sol.Stats.LPRefResets,
		DualBoundFlips:         sol.Stats.LPDualBoundFlips,
		PresolveRows:           sol.Stats.PresolveRows,
		PresolveCols:           sol.Stats.PresolveCols,
		RefactorEtaLen:         sol.Stats.LPRefactorEtaLen,
		RefactorFill:           sol.Stats.LPRefactorFill,
		RefactorPivotQuality:   sol.Stats.LPRefactorPivotQuality,
		RefactorUpdateRejected: sol.Stats.LPRefactorUpdateRejected,
	})
	writeConvergence(conv, c.Name, rule.Name, *solver, sol)

	if !sol.Feasible {
		verdict := "infeasible (proven)"
		if !sol.Proven {
			verdict = "no solution found within budget"
		}
		fmt.Println(verdict)
		if *stats {
			printStats(sol)
		}
		return 2, nil
	}
	proof := "optimal"
	if !sol.Proven {
		proof = "feasible (optimality not proven)"
	}
	fmt.Printf("%s: %s\n", proof, sol)
	for k, arcs := range sol.NetArcs {
		wl, vias := 0, map[int32]bool{}
		for _, aid := range arcs {
			a := g.Arcs[aid]
			if a.Kind == rgraph.Wire {
				wl++
			}
			if s := a.Site; s >= 0 {
				vias[s] = true
			}
		}
		fmt.Printf("  net %-8s wl=%-3d vias=%d\n", c.Nets[k].Name, wl, len(vias))
	}
	if *stats {
		printStats(sol)
	}
	if *render {
		fmt.Println()
		fmt.Print(core.RenderASCII(g, sol))
	}
	return 0, nil
}

// sweepEnv bundles the flags and sinks the -rule all sweep threads through
// its worker jobs.
type sweepEnv struct {
	solver        string
	par           int
	timeout       time.Duration
	workers       int
	shapes, bidir bool
	viaCost       int
	stats, quiet  bool
	lp            lp.Options
	tracer        *obs.Tracer
	flight        obs.FlightOptions
	conv          *report.ConvergenceWriter
	metrics       *obs.Registry
	status        *obs.Status
}

// runAllRules solves the clip under every Table 3 rule configuration on a
// -j worker pool and prints one summary row per rule, in rule order. The
// merged stderr progress line shows jobs done/in-flight/total; Ctrl-C
// cancels in-flight solves cleanly.
func (e sweepEnv) runAllRules(c *clip.Clip) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rules := tech.StandardRules()
	e.status.SetLabel("rule sweep " + c.Name)
	e.status.SetTotal(len(rules))

	type row struct {
		rule tech.RuleConfig
		sol  *core.Solution
	}
	jobs := make([]sched.Job[row], len(rules))
	for i := range rules {
		rule := rules[i]
		jobs[i] = func(jctx context.Context) (row, error) {
			gOpt := rgraph.Options{Rule: rule, Bidirectional: e.bidir, ViaCost: e.viaCost}
			if e.shapes {
				gOpt.ViaShapes = []tech.ViaShape{tech.SingleVia, tech.HBarVia, tech.VBarVia, tech.SquareVia}
			}
			g, err := rgraph.Build(c, gOpt)
			if err != nil {
				return row{}, err
			}
			var sol *core.Solution
			switch e.solver {
			case "bnb":
				sol, err = core.SolveBnB(g, core.BnBOptions{
					TimeLimit: e.timeout, Par: e.par, Tracer: e.tracer, Flight: e.flight, Ctx: jctx})
			case "ilp":
				sol, err = core.SolveILP(g, ilp.Options{
					TimeLimit: e.timeout, LP: e.lp, Tracer: e.tracer, Flight: e.flight, Ctx: jctx})
			case "portfolio":
				sol, err = core.SolvePortfolio(g, core.BnBOptions{
					TimeLimit: e.timeout, Par: e.par, LP: e.lp, Tracer: e.tracer, Flight: e.flight, Ctx: jctx})
			case "heur":
				sol = core.SolveHeuristic(g, core.HeuristicOptions{})
			default:
				err = fmt.Errorf("unknown solver %q", e.solver)
			}
			if err != nil {
				return row{}, err
			}
			writeConvergence(e.conv, c.Name, rule.Name, e.solver, sol)
			return row{rule: rule, sol: sol}, nil
		}
	}

	redraw := obs.NewThrottle(100 * time.Millisecond)
	results := sched.Run(ctx, jobs, sched.Options{
		Workers: e.workers,
		Metrics: e.metrics,
		OnUpdate: func(u sched.Update) {
			switch u.Phase {
			case "start":
				e.status.JobStart(u.Worker, rules[u.Job].Name)
			case "done":
				e.status.JobDone(u.Worker, u.Err != nil)
			}
			if e.quiet {
				return
			}
			// Serialized by the scheduler: one coherent line, never garbled.
			// Redraws are throttled; the final completion always prints.
			if u.Done != u.Total && !redraw.Allow() {
				return
			}
			fmt.Fprintf(os.Stderr, "\r\x1b[K[%d/%d in-flight=%d] %s",
				u.Done, u.Total, u.InFlight, rules[u.Job].Name)
			if u.Done == u.Total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})

	t := report.NewTable(
		fmt.Sprintf("clip %s under all rules (%s, %d workers)", c.Name, e.solver, e.workers),
		"Rule", "Feasible", "Proven", "Cost", "WL", "Vias", "Nodes", "Runtime")
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", rules[i].Name, r.Err)
		}
		sol := r.Value.sol
		t.AddRow(r.Value.rule.Name, sol.Feasible, sol.Proven, sol.Cost,
			sol.Wirelength, sol.Vias, sol.Nodes, sol.Runtime.Round(time.Millisecond))
	}
	t.Write(os.Stdout)
	if e.stats {
		for i, r := range results {
			fmt.Printf("%s ", rules[i].Name)
			printStats(r.Value.sol)
		}
	}
	return nil
}

// writeConvergence dumps one solve's convergence trace (nil-safe on every
// argument; heuristic solves have no trace and are skipped).
func writeConvergence(conv *report.ConvergenceWriter, clipName, ruleName, solver string, sol *core.Solution) {
	if conv == nil || sol == nil || len(sol.Stats.BoundTrace) == 0 {
		return
	}
	if err := conv.Write(report.ConvergenceRecord{
		Clip: clipName, Rule: ruleName, Solver: solver,
		Termination: sol.Stats.Termination,
		Feasible:    sol.Feasible, Cost: sol.Cost,
		Nodes: sol.Stats.Nodes, MaxDepth: sol.Stats.MaxDepth,
		WallMS: float64(sol.Stats.Elapsed.Microseconds()) / 1000,
		Trace:  sol.Stats.BoundTrace,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "optroute: converge: %v\n", err)
	}
}

func printStats(sol *core.Solution) {
	st := sol.Stats
	fmt.Printf("stats: nodes=%d max_depth=%d incumbents=%d termination=%s elapsed=%s\n",
		st.Nodes, st.MaxDepth, st.Incumbents, st.Termination, st.Elapsed.Round(time.Millisecond))
	if st.LPSolves > 0 {
		fmt.Printf("       lp_solves=%d lp_iters=%d lp_time=%s\n",
			st.LPSolves, st.LPIters, st.LPTime.Round(time.Millisecond))
	}
	if st.SteinerSolves > 0 || st.DRCChecks > 0 {
		fmt.Printf("       steiner_solves=%d steiner_cache_hits=%d drc_checks=%d drc_time=%s\n",
			st.SteinerSolves, st.SteinerCacheHits, st.DRCChecks, st.DRCTime.Round(time.Millisecond))
		fmt.Printf("       bans=%d lagrangian_rounds=%d dives=%d\n",
			st.BansGenerated, st.LagrangianRounds, st.Dives)
	}
	if st.Par > 0 {
		fmt.Printf("       par=%d nodes_per_worker=%v steals=%d\n",
			st.Par, st.NodesPerWorker, st.Steals)
	}
	if st.Winner != "" {
		fmt.Printf("       portfolio: winner=%s incumbent_exchanges=%d\n",
			st.Winner, st.IncumbentExchanges)
	}
	if st.LPCandidateHits > 0 || st.LPRefResets > 0 || st.LPDualBoundFlips > 0 {
		fmt.Printf("       pricing: candidate_hits=%d ref_resets=%d dual_bound_flips=%d\n",
			st.LPCandidateHits, st.LPRefResets, st.LPDualBoundFlips)
	}
	if st.PresolveRows > 0 || st.PresolveCols > 0 {
		fmt.Printf("       presolve: rows_removed=%d cols_removed=%d\n",
			st.PresolveRows, st.PresolveCols)
	}
	if st.LPRefactorEtaLen > 0 || st.LPRefactorFill > 0 ||
		st.LPRefactorPivotQuality > 0 || st.LPRefactorUpdateRejected > 0 {
		fmt.Printf("       refactor: eta_len=%d fill=%d pivot_quality=%d update_rejected=%d\n",
			st.LPRefactorEtaLen, st.LPRefactorFill,
			st.LPRefactorPivotQuality, st.LPRefactorUpdateRejected)
	}
	printPhases("phases", st.Phases)
	printPhases("lp_phases", st.LPPhases)
}

// parseLPFlags validates the LP subsolver flag set and returns the
// resulting options plus the short config string shown on /statusz.
func parseLPFlags(engine, pricing, presolve, algorithm, update string) (lp.Options, string, error) {
	var o lp.Options
	e, err := lp.ParseEngine(engine)
	if err != nil {
		return o, "", err
	}
	pr, err := lp.ParsePricing(pricing)
	if err != nil {
		return o, "", err
	}
	ps, err := lp.ParsePresolveMode(presolve)
	if err != nil {
		return o, "", err
	}
	alg, err := lp.ParseAlgorithm(algorithm)
	if err != nil {
		return o, "", err
	}
	up, err := lp.ParseUpdate(update)
	if err != nil {
		return o, "", err
	}
	o.Engine, o.Pricing, o.Presolve = e, pr, ps
	o.Algorithm, o.Update = alg, up
	cfg := fmt.Sprintf("%s/%s/presolve=%s/alg=%s/update=%s", engine, pr, ps, alg, up)
	return o, cfg, nil
}

// printPhases renders a wall-time breakdown as "name=12.3ms" pairs in sorted
// phase order.
func printPhases(label string, b obs.Breakdown) {
	if len(b) == 0 {
		return
	}
	fmt.Printf("       %s:", label)
	ms := b.MS()
	for _, name := range b.Names() {
		fmt.Printf(" %s=%.1fms", name, ms[name])
	}
	fmt.Println()
}
