// Command optroute routes a single switchbox clip under one design-rule
// configuration and prints the optimal solution.
//
// Usage:
//
//	optroute -clip clip.json [-rule RULE1|all] [-solver bnb|ilp|heur]
//	         [-timeout 30s] [-j N] [-render] [-viashapes]
//	         [-stats] [-trace out.jsonl] [-pprof addr]
//	optroute -synth 7x10x4 -nets 5 -seed 3   (generate an instance instead)
//
// -rule all sweeps the clip through every Table 3 rule configuration,
// dispatching the independent solves to -j parallel workers (default: all
// CPUs) with a merged done/in-flight/total progress line on stderr; the
// summary table is printed in rule order regardless of worker count.
// -stats prints the solver's per-solve telemetry (nodes, LP solves, DRC
// checks, termination reason); -trace writes a JSON-lines span trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/ilp"
	"optrouter/internal/obs"
	"optrouter/internal/report"
	"optrouter/internal/rgraph"
	"optrouter/internal/sched"
	"optrouter/internal/tech"
)

func main() {
	var (
		clipPath = flag.String("clip", "", "clip JSON file (see internal/clip)")
		synth    = flag.String("synth", "", "synthesize a clip instead: WxHxL, e.g. 7x10x4")
		nets     = flag.Int("nets", 4, "net count for -synth")
		seed     = flag.Int64("seed", 1, "seed for -synth")
		ruleName = flag.String("rule", "RULE1", "rule configuration (Table 3 name), or \"all\" to sweep every rule")
		solver   = flag.String("solver", "bnb", "solver: bnb (exact), ilp (exact via MILP), heur")
		timeout  = flag.Duration("timeout", 30*time.Second, "solve budget (per rule with -rule all)")
		jobsN    = flag.Int("j", runtime.NumCPU(), "parallel workers for -rule all")
		render   = flag.Bool("render", false, "print an ASCII layer-by-layer rendering")
		shapes   = flag.Bool("viashapes", false, "also allow bar and square via shapes")
		bidir    = flag.Bool("bidir", false, "bidirectional (classic LELE) routing layers")
		viaCost  = flag.Int("viacost", 0, "override via weight in the routing cost (0 = default 4)")
		stats    = flag.Bool("stats", false, "print per-solve telemetry after the result")
		traceOut = flag.String("trace", "", "write a JSON-lines span trace to this file")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofA != "" {
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintf(os.Stderr, "optroute: pprof: %v\n", err)
			}
		}()
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tracer = obs.NewTracer(f)
		defer tracer.Flush()
	}

	var c *clip.Clip
	switch {
	case *clipPath != "":
		f, err := os.Open(*clipPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		c, err = clip.ReadJSON(f)
		if err != nil {
			fatal(err)
		}
	case *synth != "":
		var w, h, l int
		if _, err := fmt.Sscanf(*synth, "%dx%dx%d", &w, &h, &l); err != nil {
			fatal(fmt.Errorf("bad -synth %q: %v", *synth, err))
		}
		opt := clip.DefaultSynth(*seed)
		opt.NX, opt.NY, opt.NZ = w, h, l
		opt.NumNets = *nets
		c = clip.Synthesize(opt)
	default:
		fatal(fmt.Errorf("need -clip or -synth; see -h"))
	}

	if *ruleName == "all" {
		if err := runAllRules(c, *solver, *timeout, *jobsN, *shapes, *bidir, *viaCost, *stats, tracer); err != nil {
			fatal(err)
		}
		return
	}

	rule, ok := tech.RuleByName(*ruleName)
	if !ok {
		fatal(fmt.Errorf("unknown rule %q", *ruleName))
	}
	gOpt := rgraph.Options{Rule: rule, Bidirectional: *bidir, ViaCost: *viaCost}
	if *shapes {
		gOpt.ViaShapes = []tech.ViaShape{tech.SingleVia, tech.HBarVia, tech.VBarVia, tech.SquareVia}
	}
	g, err := rgraph.Build(c, gOpt)
	if err != nil {
		fatal(err)
	}
	st := g.Stats()
	fmt.Printf("clip %s: %d nets, graph |V|=%d |A|=%d, %d via sites, rule %s\n",
		c.Name, len(c.Nets), st.Verts, st.Arcs, st.ViaSites, rule)

	var sol *core.Solution
	switch *solver {
	case "bnb":
		sol, err = core.SolveBnB(g, core.BnBOptions{TimeLimit: *timeout, Tracer: tracer})
	case "ilp":
		sol, err = core.SolveILP(g, ilp.Options{TimeLimit: *timeout, Tracer: tracer})
	case "heur":
		sol = core.SolveHeuristic(g, core.HeuristicOptions{})
	default:
		err = fmt.Errorf("unknown solver %q", *solver)
	}
	if err != nil {
		fatal(err)
	}

	if !sol.Feasible {
		verdict := "infeasible (proven)"
		if !sol.Proven {
			verdict = "no solution found within budget"
		}
		fmt.Println(verdict)
		if *stats {
			printStats(sol)
		}
		tracer.Flush() // os.Exit skips the deferred flush
		os.Exit(2)
	}
	proof := "optimal"
	if !sol.Proven {
		proof = "feasible (optimality not proven)"
	}
	fmt.Printf("%s: %s\n", proof, sol)
	for k, arcs := range sol.NetArcs {
		wl, vias := 0, map[int32]bool{}
		for _, aid := range arcs {
			a := g.Arcs[aid]
			if a.Kind == rgraph.Wire {
				wl++
			}
			if s := a.Site; s >= 0 {
				vias[s] = true
			}
		}
		fmt.Printf("  net %-8s wl=%-3d vias=%d\n", c.Nets[k].Name, wl, len(vias))
	}
	if *stats {
		printStats(sol)
	}
	if *render {
		fmt.Println()
		fmt.Print(core.RenderASCII(g, sol))
	}
}

// runAllRules solves the clip under every Table 3 rule configuration on a
// -j worker pool and prints one summary row per rule, in rule order. The
// merged stderr progress line shows jobs done/in-flight/total; Ctrl-C
// cancels in-flight solves cleanly.
func runAllRules(c *clip.Clip, solver string, timeout time.Duration, workers int, shapes, bidir bool, viaCost int, stats bool, tracer *obs.Tracer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rules := tech.StandardRules()

	type row struct {
		rule tech.RuleConfig
		sol  *core.Solution
	}
	jobs := make([]sched.Job[row], len(rules))
	for i := range rules {
		rule := rules[i]
		jobs[i] = func(jctx context.Context) (row, error) {
			gOpt := rgraph.Options{Rule: rule, Bidirectional: bidir, ViaCost: viaCost}
			if shapes {
				gOpt.ViaShapes = []tech.ViaShape{tech.SingleVia, tech.HBarVia, tech.VBarVia, tech.SquareVia}
			}
			g, err := rgraph.Build(c, gOpt)
			if err != nil {
				return row{}, err
			}
			var sol *core.Solution
			switch solver {
			case "bnb":
				sol, err = core.SolveBnB(g, core.BnBOptions{TimeLimit: timeout, Tracer: tracer, Ctx: jctx})
			case "ilp":
				sol, err = core.SolveILP(g, ilp.Options{TimeLimit: timeout, Tracer: tracer, Ctx: jctx})
			case "heur":
				sol = core.SolveHeuristic(g, core.HeuristicOptions{})
			default:
				err = fmt.Errorf("unknown solver %q", solver)
			}
			if err != nil {
				return row{}, err
			}
			return row{rule: rule, sol: sol}, nil
		}
	}

	results := sched.Run(ctx, jobs, sched.Options{
		Workers: workers,
		OnUpdate: func(u sched.Update) {
			// Serialized by the scheduler: one coherent line, never garbled.
			fmt.Fprintf(os.Stderr, "\r\x1b[K[%d/%d in-flight=%d] %s",
				u.Done, u.Total, u.InFlight, rules[u.Job].Name)
			if u.Done == u.Total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})

	t := report.NewTable(
		fmt.Sprintf("clip %s under all rules (%s, %d workers)", c.Name, solver, workers),
		"Rule", "Feasible", "Proven", "Cost", "WL", "Vias", "Nodes", "Runtime")
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", rules[i].Name, r.Err)
		}
		sol := r.Value.sol
		t.AddRow(r.Value.rule.Name, sol.Feasible, sol.Proven, sol.Cost,
			sol.Wirelength, sol.Vias, sol.Nodes, sol.Runtime.Round(time.Millisecond))
	}
	t.Write(os.Stdout)
	if stats {
		for i, r := range results {
			fmt.Printf("%s ", rules[i].Name)
			printStats(r.Value.sol)
		}
	}
	return nil
}

func printStats(sol *core.Solution) {
	st := sol.Stats
	fmt.Printf("stats: nodes=%d incumbents=%d termination=%s elapsed=%s\n",
		st.Nodes, st.Incumbents, st.Termination, st.Elapsed.Round(time.Millisecond))
	if st.LPSolves > 0 {
		fmt.Printf("       lp_solves=%d lp_iters=%d lp_time=%s\n",
			st.LPSolves, st.LPIters, st.LPTime.Round(time.Millisecond))
	}
	if st.SteinerSolves > 0 || st.DRCChecks > 0 {
		fmt.Printf("       steiner_solves=%d steiner_cache_hits=%d drc_checks=%d drc_time=%s\n",
			st.SteinerSolves, st.SteinerCacheHits, st.DRCChecks, st.DRCTime.Round(time.Millisecond))
		fmt.Printf("       bans=%d lagrangian_rounds=%d dives=%d\n",
			st.BansGenerated, st.LagrangianRounds, st.Dives)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "optroute: %v\n", err)
	os.Exit(1)
}
