// Command beoleval runs the paper's end-to-end BEOL design-rule evaluation
// flow (Fig. 6): synthesize benchmark designs, place and route them, extract
// and rank routing clips, solve each top clip optimally under RULE1..RULE11,
// and report Table 2, Fig. 8 and Fig. 10 data.
//
// Usage:
//
//	beoleval [-tech N28-12T|N28-8T|N7-9T|all] [-full] [-timeout 10s] [-j N]
//	         [-par N] [-portfolio]
//	         [-rules] [-table2] [-fig8] [-fig10] [-validate] [-csv dir]
//	         [-stats] [-quiet] [-converge out.jsonl]
//	         [-trace out.jsonl [-flight] [-flight-every N] [-trace-max-mb MB] [-trace-keep K]]
//	         [-pprof addr]
//
// With no selection flags, everything runs. -j dispatches the independent
// (clip, rule) solves to N parallel workers (default: all CPUs); outputs are
// assembled in study order, so CSVs and tables are byte-identical for any N.
// -par N additionally parallelizes each solve's branch-and-bound tree over N
// workers (the engine is deterministic: outputs are identical for any N),
// and -portfolio races the CDC-BnB against the MILP engine per solve.
// -stats emits end-of-run metrics JSON (to <csvdir>/metrics.json when -csv
// is set, stdout otherwise) and a live merged progress line on stderr
// (done/in-flight/total across all workers; -quiet suppresses the line);
// -trace records a JSON-lines span trace of every solve (size-capped and
// rotated by -trace-max-mb/-trace-keep; -flight adds per-node search events
// for cmd/traceview); -converge dumps one
// JSON line per solve with its incumbent/bound convergence trace; -pprof
// serves net/http/pprof plus /metrics (Prometheus text exposition) and
// /statusz (live sweep state) on the given address. -calib runs the
// machine-calibration probe suite before the sweep (score on stderr, gauges
// on /metrics, block on /statusz); -sample profiles the sweep with the
// in-process sampling profiler (-sample-hz rate) and prints the top
// self-time functions at exit. Interrupt (Ctrl-C)
// cancels in-flight solves, drains cleanly and still flushes every sink.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"time"

	"optrouter/internal/calib"
	"optrouter/internal/exp"
	"optrouter/internal/lp"
	"optrouter/internal/obs"
	"optrouter/internal/report"
	"optrouter/internal/tech"
)

func main() {
	// All teardown (trace flush/close, converge flush) is deferred inside
	// run, so every exit path — including a SIGINT-cancelled sweep — leaves
	// complete, newline-terminated JSONL files behind.
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "beoleval: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		techName   = flag.String("tech", "all", "technology: N28-12T, N28-8T, N7-9T or all")
		full       = flag.Bool("full", false, "use the large testbed (paper-scale clip geometry; slower)")
		insts      = flag.Int("insts", 0, "override design instance count (0 = preset)")
		layers     = flag.Int("nz", 0, "override clip stack depth (0 = preset)")
		topK       = flag.Int("topk", 0, "override top-K clip selection (0 = preset)")
		maxNets    = flag.Int("maxnets", 0, "override per-clip net cap (0 = preset)")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-clip solve budget")
		jobs       = flag.Int("j", runtime.NumCPU(), "parallel solve workers (1 = serial; output is identical for any value)")
		par        = flag.Int("par", 0, "parallel tree-search workers inside each solve (0 = serial engine; output is identical for any value)")
		portfolio  = flag.Bool("portfolio", false, "race the CDC-BnB and MILP engines on every solve (first proof wins)")
		rules      = flag.Bool("rules", false, "print Table 3 rule configurations")
		table2     = flag.Bool("table2", false, "print Table 2 benchmark matrix")
		fig8       = flag.Bool("fig8", false, "print Fig. 8 pin-cost distributions")
		fig10      = flag.Bool("fig10", false, "print Fig. 10 delta-cost study")
		fig9       = flag.Bool("fig9", false, "print Fig. 9 pin-access analysis")
		runtimeF   = flag.Bool("runtime", false, "print the Sec. 5 runtime study")
		validate   = flag.Bool("validate", false, "run the Sec. 4.2 validation vs the heuristic router")
		csvDir     = flag.String("csv", "", "also write figure data as CSV into this directory")
		stats      = flag.Bool("stats", false, "collect per-solve metrics; emit metrics JSON and a live progress line")
		quiet      = flag.Bool("quiet", false, "suppress the live progress line (metrics are still collected)")
		traceOut   = flag.String("trace", "", "write a JSON-lines span trace of every solve to this file")
		traceMaxMB = flag.Int("trace-max-mb", 64, "rotate the trace when a file exceeds this size")
		traceKeep  = flag.Int("trace-keep", 4, "trace files retained across rotation (live + archives)")
		flight     = flag.Bool("flight", false,
			"record per-node search events onto the trace (requires -trace; costs solve wall time)")
		flightEvery = flag.Int("flight-every", 1, "sample 1 in N node events after the burst")
		convOut     = flag.String("converge", "", "write per-solve convergence traces (JSON lines) to this file")
		pprofA      = flag.String("pprof", "", "serve net/http/pprof, /metrics and /statusz on this address (e.g. localhost:6060)")
		calibrate   = flag.Bool("calib", false, "run the machine-calibration probe suite before the sweep and report its score")
		sampleOn    = flag.Bool("sample", false, "run the sampling profiler across the sweep; print top functions at exit")
		sampleHz    = flag.Int("sample-hz", 100, "sampling-profiler rate in stacks/second (with -sample)")
		lpEngine    = flag.String("lp-engine", "sparse", "LP basis engine for -portfolio solves: sparse or dense (differential reference)")
		pricing     = flag.String("pricing", "auto", "LP pricing rule for -portfolio solves: auto, dantzig, devex or steepest")
		presolve    = flag.String("presolve", "auto", "structural LP presolve for -portfolio solves: auto or off")
		algorithm   = flag.String("algorithm", "auto", "simplex algorithm for -portfolio solves: auto, primal or dual")
		update      = flag.String("update", "auto", "sparse-engine basis-update scheme: auto, ft or pfi")
	)
	flag.Parse()

	solve := exp.SolveOptions{PerClipTimeout: *timeout, Workers: *jobs, Par: *par, Portfolio: *portfolio}
	{
		e, err := lp.ParseEngine(*lpEngine)
		if err != nil {
			return err
		}
		pr, err := lp.ParsePricing(*pricing)
		if err != nil {
			return err
		}
		ps, err := lp.ParsePresolveMode(*presolve)
		if err != nil {
			return err
		}
		alg, err := lp.ParseAlgorithm(*algorithm)
		if err != nil {
			return err
		}
		up, err := lp.ParseUpdate(*update)
		if err != nil {
			return err
		}
		solve.LP.Engine, solve.LP.Pricing, solve.LP.Presolve = e, pr, ps
		solve.LP.Algorithm, solve.LP.Update = alg, up
	}
	var metrics *obs.Registry
	if *stats || *pprofA != "" {
		// /metrics needs a registry even without -stats; the end-of-run
		// metrics document stays opt-in.
		metrics = obs.NewRegistry()
		solve.Metrics = metrics
	}
	var status *obs.Status
	if *pprofA != "" {
		status = obs.NewStatus()
		if *portfolio {
			status.SetLPConfig(fmt.Sprintf("%s/%s/presolve=%s/alg=%s/update=%s",
				*lpEngine, solve.LP.Pricing, solve.LP.Presolve,
				solve.LP.Algorithm, solve.LP.Update))
		}
		http.Handle("/metrics", obs.MetricsHandler(metrics))
		http.Handle("/statusz", obs.StatusHandler(status))
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintf(os.Stderr, "beoleval: pprof: %v\n", err)
			}
		}()
	}
	if *calibrate {
		res := calib.Run(calib.Options{})
		fmt.Fprintf(os.Stderr, "beoleval: calibration score %.3f ns (suite %.0fms)\n",
			res.ScoreNs, res.WallMS)
		status.SetCalibration(res.ScoreNs, res.ProbesNs())
		if metrics != nil {
			metrics.Gauge("calib_score_ns").Set(res.ScoreNs)
			for name, ns := range res.ProbesNs() {
				metrics.Gauge("calib_ns_" + name).Set(ns)
			}
		}
	}
	if *sampleOn {
		sampler := obs.StartSampler(obs.SamplerOptions{Hz: *sampleHz, Registry: metrics})
		status.SetSampler(sampler)
		defer func() {
			sampler.Stop()
			p := sampler.Profile(10)
			fmt.Fprintf(os.Stderr, "beoleval: sampler: %d stacks at %d Hz\n", p.Samples, p.Hz)
			for _, f := range p.Funcs {
				fmt.Fprintf(os.Stderr, "beoleval:   self %5d  cum %5d  %s\n", f.Self, f.Cum, f.Fn)
			}
		}()
	}

	all := !*rules && !*table2 && !*fig8 && !*fig10 && !*fig9 && !*runtimeF && !*validate
	if *rules || all {
		printRules()
	}
	if *runtimeF || all {
		if err := printRuntime(); err != nil {
			return err
		}
	}

	var techs []*tech.Technology
	switch *techName {
	case "all":
		techs = tech.AllTechnologies()
	default:
		for _, t := range tech.AllTechnologies() {
			if t.Name == *techName {
				techs = []*tech.Technology{t}
			}
		}
		if len(techs) == 0 {
			return fmt.Errorf("unknown technology %q", *techName)
		}
	}

	perTech := all || *table2 || *fig8 || *fig10 || *fig9 || *validate
	if !perTech {
		return nil
	}

	opt := exp.QuickTestbed()
	if *full {
		opt = exp.FullTestbed()
	}
	if *insts > 0 {
		for i := range opt.Designs {
			opt.Designs[i].Size = *insts
		}
	}
	if *layers > 0 {
		opt.ClipNZ = *layers
	}
	if *topK > 0 {
		opt.TopK = *topK
	}
	if *maxNets > 0 {
		opt.MaxNets = *maxNets
	}
	// Ctrl-C cancels the sweep: in-flight solves stop at their next node,
	// queued jobs drain, and the run exits with the context error (through
	// run's deferred teardown, so trace/converge files are still flushed).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *flight && *traceOut == "" {
		return fmt.Errorf("-flight needs -trace (node events have nowhere to go)")
	}
	if *traceOut != "" {
		tr, err := obs.NewRotatingTracer(*traceOut, int64(*traceMaxMB)<<20, *traceKeep)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		// Close flushes buffered spans and closes the file on every exit path.
		defer func() {
			tr.Close()
			if n := tr.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "beoleval: trace dropped %d records (rotation)\n", n)
			}
		}()
		if metrics != nil {
			tr.SetDropCounter(metrics.Counter("trace_dropped_total"))
		}
		solve.Tracer = tr
		solve.Flight = obs.FlightOptions{Enabled: *flight, Every: *flightEvery}
	}
	var conv *report.ConvergenceWriter
	if *convOut != "" {
		f, err := os.Create(*convOut)
		if err != nil {
			return fmt.Errorf("converge: %w", err)
		}
		defer f.Close()
		conv = report.NewConvergenceWriter(f)
		defer conv.Flush()
	}

	// Progress fan-out: the throttled live line (unless -quiet), the /statusz
	// tracker and the convergence dump all feed off the same serialized
	// per-clip events.
	var sinks []func(exp.ClipProgress)
	if *stats && !*quiet {
		sinks = append(sinks, progressLine(os.Stderr))
	}
	if status != nil {
		sinks = append(sinks, statusSink(status))
	}
	if conv != nil {
		sinks = append(sinks, convergeSink(conv))
	}
	if len(sinks) > 0 {
		solve.Progress = func(p exp.ClipProgress) {
			for _, s := range sinks {
				s(p)
			}
		}
	}
	runStart := time.Now()

	needTB := all || *table2 || *fig8 || *fig10 || *validate
	for _, t := range techs {
		fmt.Printf("=== %s ===\n", t.Name)
		status.SetLabel(t.Name)
		var tb *exp.Testbed
		if needTB {
			var err error
			tb, err = exp.BuildTestbed(t, opt)
			if err != nil {
				return err
			}
		}
		if *table2 || all {
			printTable2(tb)
		}
		if *fig8 || all {
			printFig8(tb, *csvDir)
		}
		if *fig10 || all {
			if err := printFig10(ctx, tb, solve, *csvDir); err != nil {
				return err
			}
		}
		if *fig9 || all {
			if err := printFig9(t, solve); err != nil {
				return err
			}
		}
		if *validate || all {
			if err := printValidation(tb, solve); err != nil {
				return err
			}
		}
	}

	if *stats {
		if err := writeMetrics(metrics, *csvDir, time.Since(runStart)); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	return nil
}

// statusSink feeds the /statusz tracker from per-clip lifecycle events.
func statusSink(s *obs.Status) func(exp.ClipProgress) {
	return func(p exp.ClipProgress) {
		switch p.Phase {
		case "start":
			s.SetTotal(p.Total)
			s.JobStart(p.Worker, p.Rule+" "+p.Clip)
		case "done":
			s.JobDone(p.Worker, p.Result != nil && p.Result.Err != "")
			if r := p.Result; r != nil {
				s.AddLPStats(obs.LPStatDelta{
					CandidateHits:          r.Stats.LPCandidateHits,
					RefResets:              r.Stats.LPRefResets,
					DualBoundFlips:         r.Stats.LPDualBoundFlips,
					PresolveRows:           r.Stats.PresolveRows,
					PresolveCols:           r.Stats.PresolveCols,
					RefactorEtaLen:         r.Stats.LPRefactorEtaLen,
					RefactorFill:           r.Stats.LPRefactorFill,
					RefactorPivotQuality:   r.Stats.LPRefactorPivotQuality,
					RefactorUpdateRejected: r.Stats.LPRefactorUpdateRejected,
				})
			}
		}
	}
}

// convergeSink appends one convergence record per finished solve.
func convergeSink(c *report.ConvergenceWriter) func(exp.ClipProgress) {
	return func(p exp.ClipProgress) {
		if p.Phase != "done" || p.Result == nil || p.Result.Err != "" {
			return
		}
		r := p.Result
		if err := c.Write(report.ConvergenceRecord{
			Clip: r.Clip, Rule: r.Rule, Solver: "bnb",
			Termination: r.Stats.Termination,
			Feasible:    r.Feasible, Cost: r.Cost,
			Nodes: r.Stats.Nodes, MaxDepth: r.Stats.MaxDepth,
			WallMS: float64(r.Runtime.Microseconds()) / 1000,
			Trace:  r.Stats.BoundTrace,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "beoleval: converge: %v\n", err)
		}
	}
}

// progressLine returns a ClipProgress sink that keeps one live merged
// status line on w. With parallel workers many solves are in flight at
// once, so the line leads with the study-wide "done/total in-flight=k"
// aggregate, then shows the reporting solve's study position and state.
// Each finished solve is flushed as a newline-terminated summary. The study
// serializes the callback, so concurrent workers cannot garble the line;
// in-place redraws are throttled to at most 10 per second so fast parallel
// sweeps don't saturate the terminal ("done" summaries always print).
func progressLine(w *os.File) func(exp.ClipProgress) {
	redraw := obs.NewThrottle(100 * time.Millisecond)
	return func(p exp.ClipProgress) {
		if p.Phase != "done" && !redraw.Allow() {
			return
		}
		ib := func(v int64) string {
			if v < 0 {
				return "-"
			}
			return fmt.Sprintf("%d", v)
		}
		agg := fmt.Sprintf("%d/%d", p.Done, p.Total)
		if p.InFlight > 1 {
			agg += fmt.Sprintf(" ~%d", p.InFlight)
		}
		switch p.Phase {
		case "start":
			fmt.Fprintf(w, "\r\x1b[K[%s] #%d %s %s ...", agg, p.Index, p.Rule, p.Clip)
		case "progress":
			fmt.Fprintf(w, "\r\x1b[K[%s] #%d %s %s %6.1fs nodes=%d inc=%s bnd=%s",
				agg, p.Index, p.Rule, p.Clip, p.Elapsed.Seconds(),
				p.Nodes, ib(p.Incumbent), ib(p.Bound))
		case "done":
			verdict := "infeasible"
			if p.Result != nil && p.Result.Feasible {
				verdict = fmt.Sprintf("cost=%d", p.Result.Cost)
				if !p.Result.Proven {
					verdict += " (unproven)"
				}
			} else if p.Result != nil && !p.Result.Proven {
				verdict = "unresolved"
			}
			fmt.Fprintf(w, "\r\x1b[K[%s] #%d %s %s %6.1fs nodes=%d %s\n",
				agg, p.Index, p.Rule, p.Clip, p.Elapsed.Seconds(), p.Nodes, verdict)
		}
	}
}

// writeMetrics emits the run-wide metrics JSON: next to the result CSVs when
// -csv is set, to stdout otherwise.
func writeMetrics(m *obs.Registry, csvDir string, wall time.Duration) error {
	doc := report.NewMetrics(m.Snapshot())
	doc.Set("run_wall_ms", wall.Milliseconds())
	if csvDir == "" {
		return report.WriteMetrics(os.Stdout, doc)
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, "metrics.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(os.Stderr, "metrics: %s\n", f.Name())
	return report.WriteMetrics(f, doc)
}

func printRuntime() error {
	recs, err := exp.RuntimeStudy(exp.RuntimeStudyOptions{})
	if err != nil {
		return err
	}
	t := report.NewTable("Sec 5 runtime study (reduced depth; paper: 842->1047s, 925->1340s on CPLEX)",
		"Switchbox", "Rules", "Feasible", "Proven", "Cost", "Nodes", "Runtime")
	for _, r := range recs {
		rules := "none"
		if r.WithRules {
			rules = "SADP+via"
		}
		t.AddRow(r.Switchbox, rules, r.Feasible, r.Proven, r.Cost, r.Nodes,
			r.Runtime.Round(time.Millisecond))
	}
	t.Write(os.Stdout)
	fmt.Println()
	return nil
}

func printFig9(tt *tech.Technology, solve exp.SolveOptions) error {
	results, err := exp.PinAccessStudy(tt, "NAND2X1", solve)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Fig. 9: NAND2X1 pin escape (%s)", tt.Name),
		"Rule", "Feasible", "Cost", "Vias")
	for _, r := range results {
		t.AddRow(r.Rule, r.Feasible, r.Cost, r.Vias)
	}
	t.Write(os.Stdout)
	fmt.Println()
	return nil
}

func printRules() {
	t := report.NewTable("Table 3: BEOL design rule configurations",
		"Name", "SADP rules", "Blocked via sites")
	for _, r := range tech.StandardRules() {
		sadp := "No SADP"
		if r.SADPMinLayer > 0 {
			sadp = fmt.Sprintf("SADP >= M%d", r.SADPMinLayer)
		}
		t.AddRow(r.Name, sadp, fmt.Sprintf("%d neighbors blocked", r.BlockedVias))
	}
	t.Write(os.Stdout)
	fmt.Println()
}

func printTable2(tb *exp.Testbed) {
	t := report.NewTable(fmt.Sprintf("Table 2: benchmark designs (%s)", tb.Tech.Name),
		"Design", "Period(ns)", "TargetUtil", "#inst", "#nets", "AchUtil", "RouteWL", "Vias", "Clips")
	for _, r := range tb.Records {
		t.AddRow(r.Design, fmt.Sprintf("%.2f", r.PeriodNS), fmt.Sprintf("%.0f%%", r.Util*100),
			r.Insts, r.Nets, fmt.Sprintf("%.1f%%", r.AchUtil*100), r.RouteWL, r.RouteVias, r.Clips)
	}
	t.Write(os.Stdout)
	fmt.Println()
}

func printFig8(tb *exp.Testbed, csvDir string) {
	t := report.NewTable(fmt.Sprintf("Fig. 8: top pin-cost ranges (%s)", tb.Tech.Name),
		"Design", "#clips", "Top1", "Top10", "Top50", "Min(top100)")
	var series []report.Series
	for key, costs := range tb.PinCosts {
		pick := func(i int) string {
			if i < len(costs) {
				return fmt.Sprintf("%.1f", costs[i])
			}
			return "-"
		}
		last := len(costs) - 1
		if last > 99 {
			last = 99
		}
		lastS := "-"
		if last >= 0 {
			lastS = fmt.Sprintf("%.1f", costs[last])
		}
		t.AddRow(key, len(costs), pick(0), pick(9), pick(49), lastS)
		top := costs
		if len(top) > 100 {
			top = top[:100]
		}
		series = append(series, report.Series{Name: key, Values: top})
	}
	t.Write(os.Stdout)
	fmt.Println()
	writeCSVSeries(csvDir, fmt.Sprintf("fig8-%s.csv", tb.Tech.Name), series)
}

func printFig10(ctx context.Context, tb *exp.Testbed, solve exp.SolveOptions, csvDir string) error {
	curves, _, err := exp.DeltaCostStudyCtx(ctx, tb.Tech, tb.Top, solve)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Fig. 10: sorted delta-cost over %d clips (%s); infeasible plotted at %.0f",
			len(tb.Top), tb.Tech.Name, exp.InfeasibleDelta),
		"Rule", "Median", "P90", "Max", "Infeasible", "Unproven")
	var series []report.Series
	for _, cu := range curves {
		n := len(cu.Deltas)
		stat := func(q float64) string {
			if n == 0 {
				return "-"
			}
			i := int(q * float64(n-1))
			return fmt.Sprintf("%.0f", cu.Deltas[i])
		}
		t.AddRow(cu.Rule, stat(0.5), stat(0.9), stat(1.0), cu.Infeasible, cu.Unproven)
		series = append(series, report.Series{Name: cu.Rule, Values: cu.Deltas})
	}
	t.Write(os.Stdout)
	fmt.Println()
	writeCSVSeries(csvDir, fmt.Sprintf("fig10-%s.csv", tb.Tech.Name), series)
	return nil
}

func printValidation(tb *exp.Testbed, solve exp.SolveOptions) error {
	vals, err := exp.ValidationStudy(tb.Top, solve)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Sec 4.2 validation: OptRouter vs heuristic router (%s)", tb.Tech.Name),
		"Clip", "Heuristic", "Optimal", "Delta")
	sum, worst := 0, 0
	for _, v := range vals {
		t.AddRow(v.Clip, v.HeuristicCost, v.OptimalCost, v.Delta)
		sum += v.Delta
		if v.Delta > worst {
			worst = v.Delta
		}
	}
	t.Write(os.Stdout)
	if len(vals) > 0 {
		fmt.Printf("avg delta = %.1f over %d clips (paper: -10..-15; must never be > 0; worst = %d)\n\n",
			float64(sum)/float64(len(vals)), len(vals), worst)
	}
	return nil
}

func writeCSVSeries(dir, name string, series []report.Series) {
	if dir == "" || len(series) == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "beoleval: csv: %v\n", err)
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "beoleval: csv: %v\n", err)
		return
	}
	defer f.Close()
	if err := report.WriteSeriesCSV(f, series); err != nil {
		fmt.Fprintf(os.Stderr, "beoleval: csv: %v\n", err)
	}
}
