// Pin-cost example: a miniature of the paper's Fig. 8.
//
// A small design is synthesized, placed and routed; clips are extracted and
// scored with the Taghavi pin-cost metric (PEC + PAC + PRC, theta = 500).
// The example prints the top-cost clips and the distribution shape across
// two utilizations — the paper's observation is that the distributions move
// little with utilization and are not design-specific.
//
// Run: go run ./examples/pincost
package main

import (
	"fmt"
	"log"
	"os"

	"optrouter/internal/cells"
	"optrouter/internal/extract"
	"optrouter/internal/netlist"
	"optrouter/internal/pincost"
	"optrouter/internal/place"
	"optrouter/internal/report"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

func main() {
	tt := tech.N7T9() // Fig. 8 uses the N7-9T testbed
	lib := cells.Generate(tt)

	t := report.NewTable("Fig. 8 (mini): pin-cost distribution by design/utilization",
		"Design", "Util", "Clips", "Max", "Top10", "Median")
	for _, util := range []float64{0.90, 0.95} {
		for _, profile := range []string{"AES", "M0"} {
			var prof netlist.Profile
			if profile == "AES" {
				prof = netlist.AESClass(300, 7)
			} else {
				prof = netlist.M0Class(250, 7)
			}
			nl, err := netlist.Generate(lib, prof)
			if err != nil {
				log.Fatal(err)
			}
			pl, err := place.Place(lib, nl, place.Options{TargetUtil: util})
			if err != nil {
				log.Fatal(err)
			}
			res, err := route.Route(pl, route.Options{Layers: 4})
			if err != nil {
				log.Fatal(err)
			}
			clips := extract.All(res, extract.Options{NZ: 4})
			ranked := pincost.RankTopK(clips, len(clips))
			if len(ranked) == 0 {
				continue
			}
			pick := func(i int) string {
				if i < len(ranked) {
					return fmt.Sprintf("%.1f", ranked[i].PinCost)
				}
				return "-"
			}
			t.AddRow(profile, fmt.Sprintf("%.0f%%", util*100), len(ranked),
				pick(0), pick(9), pick(len(ranked)/2))
		}
	}
	t.Write(os.Stdout)
	fmt.Println("\nAs in the paper, the ranges barely move with utilization and the")
	fmt.Println("two designs overlap: pin cost is a property of local pin geometry.")
}
