// Rule evaluation example: a miniature of the paper's Fig. 10 study.
//
// One switchbox clip is routed optimally under every applicable rule
// configuration of Table 3; the cost delta versus RULE1 quantifies what each
// rule "costs" in wirelength and vias on this clip.
//
// Run: go run ./examples/ruleeval
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/report"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

func main() {
	opt := clip.DefaultSynth(11)
	opt.NX, opt.NY, opt.NZ = 6, 7, 4
	opt.NumNets = 4
	opt.MaxSinks = 2
	c := clip.Synthesize(opt)
	fmt.Printf("clip %s: %d nets over a %dx%dx%d grid\n\n", c.Name, len(c.Nets), c.NX, c.NY, c.NZ)

	t := report.NewTable("Delta-cost per rule (vs RULE1)",
		"Rule", "Config", "Cost", "WL", "Vias", "dCost", "Time")
	base := -1
	for _, rule := range tech.StandardRules() {
		g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
		if err != nil {
			log.Fatal(err)
		}
		sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: 20 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		cfg := fmt.Sprintf("SADP>=M%d", rule.SADPMinLayer)
		if rule.SADPMinLayer == 0 {
			cfg = "no SADP"
		}
		cfg += fmt.Sprintf(", %d blocked", rule.BlockedVias)
		if !sol.Feasible {
			t.AddRow(rule.Name, cfg, "-", "-", "-", "unroutable", sol.Runtime.Round(time.Millisecond))
			continue
		}
		if base < 0 {
			base = sol.Cost
		}
		t.AddRow(rule.Name, cfg, sol.Cost, sol.Wirelength, sol.Vias,
			sol.Cost-base, sol.Runtime.Round(time.Millisecond))
	}
	t.Write(os.Stdout)
}
