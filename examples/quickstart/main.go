// Quickstart: route a small switchbox clip optimally and print the result.
//
// This is the minimal end-to-end use of the public pieces: describe a clip
// (nets, pins, obstacles), build the routing graph under a design-rule
// configuration, solve to proven optimality, verify with the independent
// DRC, and render the layers.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/drc"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

func main() {
	// A 5x6 track switchbox over M2..M4 with three nets. Net "n2" is a
	// three-pin (Steiner) net; "n0" has a two-access-point source pin.
	c := &clip.Clip{
		Name: "quickstart", Tech: "N28-12T",
		NX: 5, NY: 6, NZ: 4, MinLayer: 1,
		Obstacles: []clip.AccessPoint{{X: 2, Y: 2, Z: 1}},
		Nets: []clip.Net{
			{Name: "n0", Pins: []clip.Pin{
				{Name: "src", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}, {X: 0, Y: 1, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 4, Y: 5, Z: 1}}},
			}},
			{Name: "n1", Pins: []clip.Pin{
				{Name: "src", APs: []clip.AccessPoint{{X: 4, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 0, Y: 5, Z: 1}}},
			}},
			{Name: "n2", Pins: []clip.Pin{
				{Name: "src", APs: []clip.AccessPoint{{X: 2, Y: 0, Z: 1}}},
				{Name: "t1", APs: []clip.AccessPoint{{X: 2, Y: 5, Z: 1}}},
				{Name: "t2", APs: []clip.AccessPoint{{X: 3, Y: 3, Z: 1}}},
			}},
		},
	}
	if err := c.Validate(); err != nil {
		log.Fatal(err)
	}

	// RULE6: no SADP, vias block their four orthogonal neighbors.
	rule, _ := tech.RuleByName("RULE6")
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		log.Fatal(err)
	}

	sol, err := core.SolveBnB(g, core.BnBOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !sol.Feasible {
		log.Fatal("clip is unroutable under RULE6")
	}
	fmt.Printf("optimal routing: %s (cost = wirelength + 4 x vias)\n", sol)

	if v := drc.Check(g, sol.NetArcs); len(v) != 0 {
		log.Fatalf("DRC violations: %v", v)
	}
	fmt.Println("DRC clean.")
	fmt.Println()
	fmt.Print(core.RenderASCII(g, sol))
}
