// SADP end-of-line rules demo.
//
// Two nets each end a horizontal M3 wire with a via, tip to tip on the same
// track. Under LELE patterning (RULE1) the optimal routing places the two
// line ends one track apart. When M3 becomes an SADP layer (RULE3), the
// facing end-of-line pair violates the spacer rules (paper Fig. 5), so the
// optimal router must spend extra wirelength or vias to separate the tips —
// exactly the cost this example quantifies.
//
// Run: go run ./examples/sadp
package main

import (
	"fmt"
	"log"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/drc"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

func main() {
	// A deliberately tight 4x2 switchbox: each net must switch columns via
	// a one-step horizontal hop, and with only two M3 tracks every pair of
	// M3 hop line-ends lands inside the SADP forbidden neighborhood. Under
	// RULE3 the optimum sends one net up to M5 for its hop instead, paying
	// four extra vias (+16 cost) that RULE1 does not need. (Shrink NZ to 3
	// and RULE3 becomes provably unroutable.)
	c := &clip.Clip{
		Name: "sadp-demo", Tech: "N28-12T",
		NX: 4, NY: 2, NZ: 5, MinLayer: 1,
		Nets: []clip.Net{
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 1, Y: 1, Z: 1}}},
			}},
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 3, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 2, Y: 1, Z: 1}}},
			}},
		},
	}

	for _, ruleName := range []string{"RULE1", "RULE3"} {
		rule, _ := tech.RuleByName(ruleName)
		g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
		if err != nil {
			log.Fatal(err)
		}
		sol, err := core.SolveBnB(g, core.BnBOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (%s) ===\n", ruleName, rule)
		if !sol.Feasible {
			fmt.Println("unroutable")
			continue
		}
		fmt.Printf("optimal: %s\n", sol)
		eols := drc.EOLs(g, sol.NetArcs)
		fmt.Printf("end-of-line features on SADP-checked layers: %d\n", len(eols))
		for _, e := range eols {
			x, y, z := g.XYZ(e.V)
			side := "lo(west)"
			if e.Side == 1 {
				side = "hi(east)"
			}
			fmt.Printf("  net %s: EOL at (%d,%d) M%d, wire on %s side\n",
				c.Nets[e.Net].Name, x, y, z+1, side)
		}
		if v := drc.Check(g, sol.NetArcs); len(v) != 0 {
			log.Fatalf("solver returned a DRC-dirty solution: %v", v)
		}
		fmt.Println("DRC clean.")
		fmt.Println()
	}
	fmt.Println("The RULE3 optimum costs at least as much as RULE1: the SADP")
	fmt.Println("EOL rules forbid the tight tip-to-tip line ends RULE1 allows.")
}
