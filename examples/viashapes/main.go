// Via shapes demo: the paper's Fig. 2 trade-off between manufacturability
// and routability.
//
// The same clip is routed three times: with single-cut vias only, with bar
// vias (2x1 / 1x2) also allowed, and with square 2x2 vias as well. Larger
// vias carry lower routing cost (the paper biases the optimizer toward
// manufacturable vias), but their footprints block neighboring tracks for
// other nets — the optimal solutions show how the mix shifts.
//
// Run: go run ./examples/viashapes
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/report"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

func main() {
	opt := clip.DefaultSynth(21)
	opt.NX, opt.NY, opt.NZ = 6, 6, 3
	opt.NumNets = 3
	opt.MaxSinks = 1
	opt.ObstacleFrac = 0
	c := clip.Synthesize(opt)
	fmt.Printf("clip %s: %d nets on a %dx%dx%d grid\n\n", c.Name, len(c.Nets), c.NX, c.NY, c.NZ)

	cases := []struct {
		name   string
		shapes []tech.ViaShape
	}{
		{"single 1x1 only", []tech.ViaShape{tech.SingleVia}},
		{"+ bar vias", []tech.ViaShape{tech.SingleVia, tech.HBarVia, tech.VBarVia}},
		{"+ square vias", []tech.ViaShape{tech.SingleVia, tech.HBarVia, tech.VBarVia, tech.SquareVia}},
	}

	t := report.NewTable("Optimal routing by allowed via shapes",
		"Shapes", "Cost", "WL", "Vias", "ByShape", "Time")
	for _, cs := range cases {
		g, err := rgraph.Build(c, rgraph.Options{ViaShapes: cs.shapes})
		if err != nil {
			log.Fatal(err)
		}
		sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: 60 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		if !sol.Feasible {
			t.AddRow(cs.name, "-", "-", "-", "unroutable", sol.Runtime.Round(time.Millisecond))
			continue
		}
		byShape := map[string]int{}
		for s := range sol.UsedSites(g) {
			byShape[g.Sites[s].Shape.Name]++
		}
		t.AddRow(cs.name, sol.Cost, sol.Wirelength, sol.Vias,
			fmt.Sprintf("%v", byShape), sol.Runtime.Round(time.Millisecond))
	}
	t.Write(os.Stdout)
	fmt.Println("\nLarger vias cost less per cut, so the optimum adopts them when")
	fmt.Println("their footprints don't crowd out the other nets.")
}
