// Pin-access example: the paper's Fig. 9 analysis as an experiment.
//
// A NAND2X1's signal pins sit on M1 and must each escape through a V12
// pin-access via. Via-adjacency rules restrict which access points can host
// vias simultaneously: the generous N28-12T pins (four access points each)
// always escape, while the scaled N7-9T pins (two close access points) pay
// or die under aggressive blocking — the reason the paper does not evaluate
// RULE2/7/9/10/11 for N7-9T.
//
// Run: go run ./examples/pinaccess
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"optrouter/internal/exp"
	"optrouter/internal/report"
	"optrouter/internal/tech"
)

func main() {
	opt := exp.SolveOptions{PerClipTimeout: 20 * time.Second}
	t := report.NewTable("Fig. 9: NAND2X1 pin escape under via restrictions",
		"Tech", "Rule", "Blocked", "Feasible", "Cost", "Vias")
	for _, tt := range []*tech.Technology{tech.N28T12(), tech.N28T8(), tech.N7T9()} {
		results, err := exp.PinAccessStudy(tt, "NAND2X1", opt)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			rule, _ := tech.RuleByName(r.Rule)
			if rule.SADPMinLayer != 0 {
				continue // via restrictions are the Fig. 9 subject
			}
			feas := "yes"
			if !r.Feasible {
				feas = "NO"
				if !r.Proven {
					feas = "no (budget)"
				}
			}
			cost := "-"
			if r.Feasible {
				cost = fmt.Sprintf("%d", r.Cost)
			}
			vias := "-"
			if r.Feasible {
				vias = fmt.Sprintf("%d", r.Vias)
			}
			t.AddRow(tt.Name, r.Rule, rule.BlockedVias, feas, cost, vias)
		}
	}
	t.Write(os.Stdout)
	fmt.Println("\nThe escape cost (extra wirelength/vias) rises with blocking and pin")
	fmt.Println("tightness; in the paper's denser in-context clips the N7 cell becomes")
	fmt.Println("unpinnable, so those rules are excluded from the N7-9T study.")
}
