// Package route is a full-design track router standing in for the
// commercial detailed router that produced the paper's routed layouts. It
// routes every net of a placed design on the 3-D track grid (unidirectional
// layers, wire cost 1, via cost 4) with PathFinder-style negotiated
// congestion: per-net sequential Steiner growth by multi-source Dijkstra,
// then rip-up-and-reroute of conflicted nets under growing history costs
// until the solution is vertex-disjoint.
//
// The output is the substrate for clip extraction (package clip/extract):
// what matters is realistic local congestion and boundary-crossing patterns,
// not sign-off DRC cleanliness.
package route

import (
	"container/heap"
	"fmt"
	"sort"

	"optrouter/internal/geom"
	"optrouter/internal/place"
	"optrouter/internal/tech"
)

// Step is one routing-graph move: a unit wire step or a via between
// adjacent layers, in track coordinates.
type Step struct {
	FromX, FromY, FromZ int
	ToX, ToY, ToZ       int
}

// IsVia reports whether the step changes layers.
func (s Step) IsVia() bool { return s.FromZ != s.ToZ }

// RoutedNet is one net's realized route.
type RoutedNet struct {
	NetIdx int
	Steps  []Step
}

// Wirelength counts wire steps.
func (r *RoutedNet) Wirelength() int {
	n := 0
	for _, s := range r.Steps {
		if !s.IsVia() {
			n++
		}
	}
	return n
}

// Vias counts via steps.
func (r *RoutedNet) Vias() int { return len(r.Steps) - r.Wirelength() }

// Result is a routed design.
type Result struct {
	P          *place.Placement
	NX, NY, NZ int
	MinLayer   int
	Nets       []RoutedNet
	// Conflicts counts vertices still shared by multiple nets after the
	// iteration budget (0 = fully legal).
	Conflicts int
	Iters     int
}

// Options configures the router.
type Options struct {
	// Layers is the metal stack depth (default 8).
	Layers int
	// MinLayer is the lowest routing layer, 0-based (default 1 = M2; the
	// paper does not route on M1).
	MinLayer int
	// MaxIters bounds rip-up passes (default 12).
	MaxIters int
	// ViaCost is the via cost (default 4, the paper's weighting).
	ViaCost int
	// Margin is the search-window margin around a net's bounding box in
	// tracks (default 14).
	Margin int
}

func (o Options) withDefaults() Options {
	if o.Layers == 0 {
		o.Layers = 8
	}
	if o.MinLayer == 0 {
		o.MinLayer = 1
	}
	if o.MaxIters == 0 {
		o.MaxIters = 12
	}
	if o.ViaCost == 0 {
		o.ViaCost = 4
	}
	if o.Margin == 0 {
		o.Margin = 14
	}
	return o
}

type router struct {
	nx, ny, nz int
	minLayer   int
	viaCost    int64
	margin     int

	owner    []int32 // vertex -> net or -1
	pinOwner []int32 // vertex -> owning net's pin metal, or -1
	hist     []int32 // history congestion

	dist []int64
	ver  []int32
	prev []int32 // packed predecessor vertex (+1), 0 = none
	cur  int32
}

func (r *router) id(x, y, z int) int32 { return int32((z*r.ny+y)*r.nx + x) }
func (r *router) xyz(v int32) (int, int, int) {
	x := int(v) % r.nx
	y := (int(v) / r.nx) % r.ny
	z := int(v) / (r.nx * r.ny)
	return x, y, z
}

type rpq []rpqItem

type rpqItem struct {
	v int32
	d int64
}

func (p rpq) Len() int            { return len(p) }
func (p rpq) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p rpq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *rpq) Push(x interface{}) { *p = append(*p, x.(rpqItem)) }
func (p *rpq) Pop() interface{} {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// Route routes all nets of the placement.
func Route(p *place.Placement, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	nx, ny := p.DieTracks()
	nz := opt.Layers
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("route: empty die")
	}
	r := &router{
		nx: nx, ny: ny, nz: nz,
		minLayer: opt.MinLayer,
		viaCost:  int64(opt.ViaCost),
		margin:   opt.Margin,
		owner:    make([]int32, nx*ny*nz),
		pinOwner: make([]int32, nx*ny*nz),
		hist:     make([]int32, nx*ny*nz),
		dist:     make([]int64, nx*ny*nz),
		ver:      make([]int32, nx*ny*nz),
		prev:     make([]int32, nx*ny*nz),
	}
	for i := range r.owner {
		r.owner[i] = -1
		r.pinOwner[i] = -1
	}

	nl := p.NL
	res := &Result{P: p, NX: nx, NY: ny, NZ: nz, MinLayer: opt.MinLayer}
	res.Nets = make([]RoutedNet, len(nl.Nets))

	// Terminal vertices per net (on MinLayer).
	terms := make([][][]int32, len(nl.Nets)) // [net][pin][]vertex
	for i := range nl.Nets {
		n := &nl.Nets[i]
		var pins [][]int32
		addPin := func(aps []geom.Point) {
			var vs []int32
			for _, ap := range aps {
				if ap.X >= 0 && ap.X < nx && ap.Y >= 0 && ap.Y < ny {
					vs = append(vs, r.id(ap.X, ap.Y, opt.MinLayer))
				}
			}
			pins = append(pins, vs)
		}
		addPin(p.PinAPs(n.Driver))
		for _, s := range n.Sinks {
			addPin(p.PinAPs(s))
		}
		terms[i] = pins
		// Pin metal blocks the fabric for every other net, matching the
		// switchbox formulation's access-point ownership (and real
		// routers' pin avoidance).
		for _, pv := range pins {
			for _, v := range pv {
				r.pinOwner[v] = int32(i)
			}
		}
	}

	needRoute := make([]bool, len(nl.Nets))
	for i := range needRoute {
		needRoute[i] = true
	}

	for iter := 0; iter < opt.MaxIters; iter++ {
		res.Iters = iter + 1
		present := int64(30 + 25*iter)
		for i := range nl.Nets {
			if !needRoute[i] {
				continue
			}
			r.clearNet(int32(i), &res.Nets[i])
			steps, ok := r.routeNet(int32(i), terms[i], present)
			if ok {
				res.Nets[i] = RoutedNet{NetIdx: i, Steps: steps}
				r.claim(int32(i), steps)
			} else {
				res.Nets[i] = RoutedNet{NetIdx: i}
			}
		}
		// Conflict scan.
		conflictNets := r.findConflicts(res.Nets)
		if len(conflictNets) == 0 {
			res.Conflicts = 0
			return res, nil
		}
		for i := range needRoute {
			needRoute[i] = conflictNets[i]
		}
	}
	// Count remaining conflicted vertices.
	res.Conflicts = r.countConflictVerts(res.Nets)
	return res, nil
}

// clearNet removes a net's prior claims.
func (r *router) clearNet(net int32, old *RoutedNet) {
	for _, s := range old.Steps {
		for _, v := range []int32{r.id(s.FromX, s.FromY, s.FromZ), r.id(s.ToX, s.ToY, s.ToZ)} {
			if r.owner[v] == net {
				r.owner[v] = -1
			}
		}
	}
	old.Steps = nil
}

// claim marks route vertices as owned (first-come; conflicts are detected in
// the scan phase).
func (r *router) claim(net int32, steps []Step) {
	for _, s := range steps {
		for _, v := range []int32{r.id(s.FromX, s.FromY, s.FromZ), r.id(s.ToX, s.ToY, s.ToZ)} {
			if r.owner[v] == -1 {
				r.owner[v] = net
			}
		}
	}
}

// routeNet grows a Steiner tree: multi-source Dijkstra from the current tree
// to each remaining pin, nearest-first.
func (r *router) routeNet(net int32, pins [][]int32, present int64) ([]Step, bool) {
	if len(pins) < 2 {
		return nil, true
	}
	// Search window: bbox of all terminals plus margin.
	x1, y1 := r.nx, r.ny
	x2, y2 := 0, 0
	for _, pv := range pins {
		for _, v := range pv {
			x, y, _ := r.xyz(v)
			x1, y1 = geom.Min(x1, x), geom.Min(y1, y)
			x2, y2 = geom.Max(x2, x), geom.Max(y2, y)
		}
	}
	x1 = geom.Max(0, x1-r.margin)
	y1 = geom.Max(0, y1-r.margin)
	x2 = geom.Min(r.nx-1, x2+r.margin)
	y2 = geom.Min(r.ny-1, y2+r.margin)

	tree := map[int32]bool{}
	for _, v := range pins[0] {
		tree[v] = true
	}
	// Copy: the nearest-first removal below must not disturb the caller's
	// pin lists (nets are rerouted across rip-up iterations).
	remaining := append([][]int32{}, pins[1:]...)
	var steps []Step

	for len(remaining) > 0 {
		// Dijkstra from tree to the nearest remaining pin. Seed in sorted
		// vertex order so tie-breaking (and thus the whole route) is
		// deterministic.
		r.cur++
		seeds := make([]int32, 0, len(tree))
		for v := range tree {
			seeds = append(seeds, v)
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		var q rpq
		for _, v := range seeds {
			r.dist[v] = 0
			r.ver[v] = r.cur
			r.prev[v] = 0
			q = append(q, rpqItem{v, 0})
		}
		heap.Init(&q)

		targetOf := map[int32]int{}
		for pi, pv := range remaining {
			for _, v := range pv {
				targetOf[v] = pi
			}
		}

		foundPin := -1
		var foundV int32
		for q.Len() > 0 {
			it := heap.Pop(&q).(rpqItem)
			if r.ver[it.v] == r.cur && it.d > r.dist[it.v] {
				continue
			}
			if pi, ok := targetOf[it.v]; ok {
				foundPin, foundV = pi, it.v
				break
			}
			x, y, z := r.xyz(it.v)
			r.expand(net, it.v, x, y, z, it.d, present, x1, y1, x2, y2, &q)
		}
		if foundPin < 0 {
			return nil, false
		}
		// Trace back to tree, claiming vertices into the tree.
		v := foundV
		for r.prev[v] != 0 {
			u := r.prev[v] - 1
			ux, uy, uz := r.xyz(u)
			vx, vy, vz := r.xyz(v)
			steps = append(steps, Step{ux, uy, uz, vx, vy, vz})
			tree[v] = true
			v = u
		}
		tree[v] = true
		// Also add the whole traced path... (vertices added above). Remove
		// the satisfied pin.
		remaining = append(remaining[:foundPin], remaining[foundPin+1:]...)
	}
	return steps, true
}

// expand relaxes neighbors of vertex v.
func (r *router) expand(net, v int32, x, y, z int, d, present int64, x1, y1, x2, y2 int, q *rpq) {
	relax := func(nv int32, base int64) {
		if po := r.pinOwner[nv]; po != -1 && po != net {
			return // another net's pin metal is a hard block
		}
		cost := d + base + int64(r.hist[nv])
		if o := r.owner[nv]; o != -1 && o != net {
			cost += present
		}
		if r.ver[nv] != r.cur || cost < r.dist[nv] {
			r.ver[nv] = r.cur
			r.dist[nv] = cost
			r.prev[nv] = v + 1
			heap.Push(q, rpqItem{nv, cost})
		}
	}
	dir := tech.Horizontal
	if z%2 == 1 {
		dir = tech.Vertical
	}
	if dir == tech.Horizontal {
		if x > x1 {
			relax(r.id(x-1, y, z), 1)
		}
		if x < x2 {
			relax(r.id(x+1, y, z), 1)
		}
	} else {
		if y > y1 {
			relax(r.id(x, y-1, z), 1)
		}
		if y < y2 {
			relax(r.id(x, y+1, z), 1)
		}
	}
	if z > r.minLayer {
		relax(r.id(x, y, z-1), r.viaCost)
	}
	if z < r.nz-1 {
		relax(r.id(x, y, z+1), r.viaCost)
	}
}

// findConflicts returns per-net flags for nets sharing vertices.
func (r *router) findConflicts(nets []RoutedNet) map[int]bool {
	users := map[int32]int32{} // vertex -> first net
	conflicted := map[int]bool{}
	for i := range nets {
		seen := map[int32]bool{}
		for _, s := range nets[i].Steps {
			for _, v := range []int32{r.id(s.FromX, s.FromY, s.FromZ), r.id(s.ToX, s.ToY, s.ToZ)} {
				if seen[v] {
					continue
				}
				seen[v] = true
				if first, ok := users[v]; ok && first != int32(i) {
					conflicted[int(first)] = true
					conflicted[i] = true
					r.hist[v] += 6
				} else {
					users[v] = int32(i)
				}
			}
		}
		if len(nets[i].Steps) == 0 && i < len(nets) {
			// Unrouted net: force retry.
			conflicted[i] = true
		}
	}
	return conflicted
}

func (r *router) countConflictVerts(nets []RoutedNet) int {
	users := map[int32]int32{}
	n := 0
	for i := range nets {
		seen := map[int32]bool{}
		for _, s := range nets[i].Steps {
			for _, v := range []int32{r.id(s.FromX, s.FromY, s.FromZ), r.id(s.ToX, s.ToY, s.ToZ)} {
				if seen[v] {
					continue
				}
				seen[v] = true
				if first, ok := users[v]; ok && first != int32(i) {
					n++
				} else {
					users[v] = int32(i)
				}
			}
		}
	}
	return n
}

// WirelengthVias sums metrics over all nets.
func (res *Result) WirelengthVias() (wl, vias int) {
	for i := range res.Nets {
		wl += res.Nets[i].Wirelength()
		vias += res.Nets[i].Vias()
	}
	return
}
