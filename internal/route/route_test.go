package route

import (
	"testing"

	"optrouter/internal/cells"
	"optrouter/internal/netlist"
	"optrouter/internal/place"
	"optrouter/internal/tech"
)

func routed(t *testing.T, tt *tech.Technology, n int, util float64, seed int64) *Result {
	t.Helper()
	lib := cells.Generate(tt)
	nl, err := netlist.Generate(lib, netlist.M0Class(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(lib, nl, util)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Place is a tiny wrapper so the helper reads clearly.
func Place(lib *cells.Library, nl *netlist.Netlist, util float64) (*place.Placement, error) {
	return place.Place(lib, nl, place.Options{TargetUtil: util})
}

func TestRouteSmallDesign(t *testing.T) {
	res := routed(t, tech.N28T12(), 150, 0.85, 1)
	if res.Conflicts != 0 {
		t.Fatalf("router left %d conflicts", res.Conflicts)
	}
	wl, vias := res.WirelengthVias()
	if wl == 0 || vias == 0 {
		t.Fatalf("implausible totals wl=%d vias=%d", wl, vias)
	}
}

func TestAllNetsConnected(t *testing.T) {
	res := routed(t, tech.N28T12(), 120, 0.8, 2)
	p := res.P
	for i := range p.NL.Nets {
		n := &p.NL.Nets[i]
		rn := &res.Nets[i]
		if len(n.Sinks) > 0 && len(rn.Steps) == 0 {
			t.Fatalf("net %s unrouted", n.Name)
		}
		// Connectivity: union-find over step endpoints + terminals.
		parent := map[[3]int][3]int{}
		var find func(v [3]int) [3]int
		find = func(v [3]int) [3]int {
			if p, ok := parent[v]; ok && p != v {
				root := find(p)
				parent[v] = root
				return root
			}
			if _, ok := parent[v]; !ok {
				parent[v] = v
			}
			return parent[v]
		}
		union := func(a, b [3]int) {
			ra, rb := find(a), find(b)
			if ra != rb {
				parent[ra] = rb
			}
		}
		for _, s := range rn.Steps {
			union([3]int{s.FromX, s.FromY, s.FromZ}, [3]int{s.ToX, s.ToY, s.ToZ})
		}
		// A pin's access points are electrically common (the pin shape is
		// one conductor), so union them before checking connectivity.
		unionPin := func(ref netlist.PinRef) {
			aps := p.PinAPs(ref)
			for k := 1; k < len(aps); k++ {
				union([3]int{aps[0].X, aps[0].Y, res.MinLayer}, [3]int{aps[k].X, aps[k].Y, res.MinLayer})
			}
		}
		unionPin(n.Driver)
		for _, s := range n.Sinks {
			unionPin(s)
		}
		// All terminals must be in one component (any AP of each pin).
		var roots [][3]int
		check := func(aps [][3]int) {
			for _, ap := range aps {
				if _, ok := parent[ap]; ok {
					roots = append(roots, find(ap))
					return
				}
			}
			t.Fatalf("net %s: no access point of a pin touched by route", n.Name)
		}
		terminalAPs := func(ref netlist.PinRef) [][3]int {
			var out [][3]int
			for _, ap := range p.PinAPs(ref) {
				out = append(out, [3]int{ap.X, ap.Y, res.MinLayer})
			}
			return out
		}
		check(terminalAPs(n.Driver))
		for _, s := range n.Sinks {
			check(terminalAPs(s))
		}
		for _, r := range roots[1:] {
			if r != roots[0] {
				t.Fatalf("net %s: terminals in different components", n.Name)
			}
		}
	}
}

func TestUnidirectionalSteps(t *testing.T) {
	res := routed(t, tech.N28T8(), 100, 0.8, 3)
	for i := range res.Nets {
		for _, s := range res.Nets[i].Steps {
			if s.IsVia() {
				if s.FromX != s.ToX || s.FromY != s.ToY || geomAbs(s.FromZ-s.ToZ) != 1 {
					t.Fatalf("malformed via step %+v", s)
				}
				continue
			}
			if s.FromZ%2 == 0 { // horizontal layer
				if s.FromY != s.ToY || geomAbs(s.FromX-s.ToX) != 1 {
					t.Fatalf("horizontal layer step %+v not horizontal", s)
				}
			} else {
				if s.FromX != s.ToX || geomAbs(s.FromY-s.ToY) != 1 {
					t.Fatalf("vertical layer step %+v not vertical", s)
				}
			}
		}
	}
}

func geomAbs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestNoM1Routing(t *testing.T) {
	res := routed(t, tech.N28T12(), 80, 0.8, 4)
	for i := range res.Nets {
		for _, s := range res.Nets[i].Steps {
			if s.FromZ < res.MinLayer || s.ToZ < res.MinLayer {
				t.Fatalf("step %+v uses a layer below MinLayer %d", s, res.MinLayer)
			}
		}
	}
}

func TestVertexDisjoint(t *testing.T) {
	res := routed(t, tech.N28T12(), 150, 0.9, 5)
	if res.Conflicts != 0 {
		t.Skipf("router did not fully converge (%d conflicts); disjointness vacuous", res.Conflicts)
	}
	users := map[[3]int]int{}
	for i := range res.Nets {
		seen := map[[3]int]bool{}
		for _, s := range res.Nets[i].Steps {
			for _, v := range [][3]int{{s.FromX, s.FromY, s.FromZ}, {s.ToX, s.ToY, s.ToZ}} {
				if seen[v] {
					continue
				}
				seen[v] = true
				if prev, ok := users[v]; ok && prev != i {
					t.Fatalf("vertex %v shared by nets %d and %d", v, prev, i)
				}
				users[v] = i
			}
		}
	}
}

func TestHigherUtilMoreCongestion(t *testing.T) {
	// Not a strict law at small sizes, but wirelength per net should be
	// finite and the router should converge at both utilizations.
	for _, util := range []float64{0.7, 0.95} {
		res := routed(t, tech.N7T9(), 200, util, 6)
		if res.Conflicts != 0 {
			t.Fatalf("util %.2f: %d conflicts", util, res.Conflicts)
		}
	}
}
