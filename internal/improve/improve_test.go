package improve

import (
	"testing"
	"time"

	"optrouter/internal/cells"
	"optrouter/internal/extract"
	"optrouter/internal/netlist"
	"optrouter/internal/place"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

func routedDesign(t *testing.T, n int, seed int64) *route.Result {
	t.Helper()
	lib := cells.Generate(tech.N28T12())
	nl, err := netlist.Generate(lib, netlist.M0Class(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(lib, nl, place.Options{TargetUtil: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(pl, route.Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDesignAssessment(t *testing.T) {
	res := routedDesign(t, 200, 1)
	r, err := Design(res, Options{
		Extract:        extract.Options{MaxNets: 5},
		PerClipTimeout: 5 * time.Second,
		MaxWindows:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tried == 0 {
		t.Fatal("no windows assessed")
	}
	for _, w := range r.Windows {
		// The key paper invariant (footnote 6): OptRouter never does worse
		// than the reference route, because the reference's in-window
		// routing is a feasible solution of the same switchbox problem.
		if w.Proven && w.Delta > 0 {
			t.Fatalf("window %s: optimal %d worse than baseline %d",
				w.Clip, w.OptimalCost, w.BaselineCost)
		}
		if w.BaselineCost < 0 || w.OptimalCost < 0 {
			t.Fatalf("negative costs: %+v", w)
		}
	}
	if r.TotalOptimal > r.TotalBase {
		t.Fatalf("aggregate optimal %d exceeds baseline %d", r.TotalOptimal, r.TotalBase)
	}
	if r.AvgDelta() > 0 {
		t.Fatalf("average delta %v positive", r.AvgDelta())
	}
}

func TestMaxWindowsCap(t *testing.T) {
	res := routedDesign(t, 200, 2)
	r, err := Design(res, Options{
		Extract:        extract.Options{MaxNets: 5},
		PerClipTimeout: 5 * time.Second,
		MaxWindows:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tried > 2 {
		t.Fatalf("cap ignored: tried %d", r.Tried)
	}
}

func TestSuffixFrom(t *testing.T) {
	if got := suffixFrom("M0-x14-y70", "-x"); got != "x14-y70" {
		t.Fatalf("suffixFrom = %q", got)
	}
	if got := suffixFrom("AES-0.93/AES-x0-y10", "-x"); got != "x0-y10" {
		t.Fatalf("suffixFrom = %q", got)
	}
	if suffixFrom("nodash", "-x") != "" {
		t.Fatal("missing separator should yield empty")
	}
}
