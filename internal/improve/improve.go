// Package improve implements the paper's closing observation as a tool: the
// gap between OptRouter's per-clip optima and the reference router's
// realized in-window routing measures "the degree of suboptimality in
// current routing tools, and open[s] up the possibility of (massively
// distributed) local improvement of detailed routing solutions" (Section 5).
//
// For each extracted clip window, the reference route restricted to the
// window is — by construction of the extractor — a feasible solution of the
// clip's switchbox problem (same terminals: in-window pins plus boundary
// crossings). Solving the clip to proven optimality therefore yields a
// per-window improvement delta that is guaranteed nonpositive, exactly as
// the paper reports for its commercial-router comparison (footnote 6).
package improve

import (
	"fmt"
	"time"

	"optrouter/internal/core"
	"optrouter/internal/extract"
	"optrouter/internal/rgraph"
	"optrouter/internal/route"
)

// WindowResult is one clip window's comparison.
type WindowResult struct {
	Clip         string
	BaselineCost int // reference route's in-window cost (WL + 4*vias)
	BaselineWL   int
	BaselineVias int
	OptimalCost  int
	Delta        int // OptimalCost - BaselineCost (<= 0 when proven)
	Proven       bool
}

// Result aggregates a whole-design improvement assessment.
type Result struct {
	Windows      []WindowResult
	Tried        int
	Improved     int
	TotalBase    int
	TotalOptimal int
	Skipped      int // windows without a proven optimum within budget
}

// AvgDelta returns the mean per-window delta over proven windows.
func (r *Result) AvgDelta() float64 {
	n, sum := 0, 0
	for _, w := range r.Windows {
		if w.Proven {
			n++
			sum += w.Delta
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Options tunes the assessment.
type Options struct {
	// Extract parameterizes the window sweep (window size, net caps).
	Extract extract.Options
	// ViaCost is the via weight of the cost metric (default 4).
	ViaCost int
	// PerClipTimeout bounds each optimal solve (default 10s).
	PerClipTimeout time.Duration
	// MaxWindows caps the number of windows assessed (0 = all).
	MaxWindows int
}

func (o Options) withDefaults() Options {
	if o.ViaCost == 0 {
		o.ViaCost = 4
	}
	if o.PerClipTimeout == 0 {
		o.PerClipTimeout = 10 * time.Second
	}
	return o
}

// Design assesses the reference route of a whole design window by window.
func Design(res *route.Result, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	ext := opt.Extract
	ext.NZ = res.NZ // windows must see the full routed stack for fairness
	// Component-wise extraction guarantees the reference route restricted
	// to the window is a feasible solution of the clip, making every
	// proven delta nonpositive.
	ext.BaselineConsistent = true
	clips := extract.All(res, ext)
	out := &Result{}
	for _, c := range clips {
		if opt.MaxWindows > 0 && out.Tried >= opt.MaxWindows {
			break
		}
		// Window origin back from the clip name is fragile; recompute by
		// re-walking extraction origins.
		wr, ok, err := assessWindow(res, c.Name, opt)
		if err != nil {
			return nil, err
		}
		if !ok {
			out.Skipped++
			continue
		}
		out.Tried++
		out.Windows = append(out.Windows, wr)
		out.TotalBase += wr.BaselineCost
		out.TotalOptimal += wr.OptimalCost
		if wr.Delta < 0 {
			out.Improved++
		}
	}
	return out, nil
}

// assessWindow re-extracts the named window and compares baseline vs
// optimal. The clip name encodes the origin as "...-x<ox>-y<oy>".
func assessWindow(res *route.Result, name string, opt Options) (WindowResult, bool, error) {
	var ox, oy int
	if _, err := fmt.Sscanf(suffixFrom(name, "-x"), "x%d-y%d", &ox, &oy); err != nil {
		return WindowResult{}, false, fmt.Errorf("improve: cannot parse window origin from %q", name)
	}
	ext := opt.Extract
	ext.NZ = res.NZ
	ext.BaselineConsistent = true
	ext = ext.WithDefaults(res)
	c := extract.Window(res, ox, oy, ext)
	if c == nil {
		return WindowResult{}, false, nil
	}

	baseWL, baseVias := extract.BaselineCost(res, ox, oy, ext)
	baseCost := baseWL + opt.ViaCost*baseVias

	g, err := rgraph.Build(c, rgraph.Options{ViaCost: opt.ViaCost})
	if err != nil {
		return WindowResult{}, false, err
	}
	sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: opt.PerClipTimeout})
	if err != nil {
		return WindowResult{}, false, err
	}
	if !sol.Feasible {
		// The baseline itself is a feasible witness; an infeasible verdict
		// can only mean the solve budget expired.
		return WindowResult{}, false, nil
	}
	return WindowResult{
		Clip:         c.Name,
		BaselineCost: baseCost,
		BaselineWL:   baseWL,
		BaselineVias: baseVias,
		OptimalCost:  sol.Cost,
		Delta:        sol.Cost - baseCost,
		Proven:       sol.Proven,
	}, true, nil
}

// suffixFrom returns the substring of s starting at the last occurrence of
// sep (without the leading dash), or "" when absent.
func suffixFrom(s, sep string) string {
	idx := -1
	for i := 0; i+len(sep) <= len(s); i++ {
		if s[i:i+len(sep)] == sep {
			idx = i
		}
	}
	if idx < 0 {
		return ""
	}
	return s[idx+1:]
}
