// Package sta is a lightweight static timing analyzer over routed designs,
// reproducing the paper's Section 4 BEOL-RC methodology: per-unit wire
// resistance and capacitance are taken from the 28nm stack, and the 7nm
// values are derived exactly as the paper derives them — R scaled up 15x for
// resistivity, C unchanged, then both scaled by the 2.5x geometry factor of
// the scaled-cell flow, giving R_N7 = 6 x R_N28 and C_N7 = C_N28 / 2.5 per
// unit length.
//
// Net delays use the Elmore model over the routed topology; gate delays use
// a fixed intrinsic delay plus load-dependent term per cell class. The
// critical path over the (cycle-free view of the) netlist gives the
// achievable clock period reported in Table 2.
package sta

import (
	"fmt"
	"math"

	"optrouter/internal/route"
	"optrouter/internal/tech"
)

// RC holds per-unit-length wire parasitics.
type RC struct {
	ROhmPerUM float64 // resistance per micron
	CfFPerUM  float64 // capacitance (fF) per micron
}

// N28RC is the reference 28nm-class wire parasitics (representative values
// for an intermediate metal layer).
var N28RC = RC{ROhmPerUM: 2.0, CfFPerUM: 0.20}

// RCFor returns the wire RC for a technology following the paper's scaling:
// R_N7 = 6 x R_N28 and C_N7 = C_N28 / 2.5 (per unit length, in the scaled
// geometry); 28nm technologies use N28RC directly.
func RCFor(t *tech.Technology) RC {
	if t.Node == "N7" {
		return RC{ROhmPerUM: 6 * N28RC.ROhmPerUM, CfFPerUM: N28RC.CfFPerUM / 2.5}
	}
	return N28RC
}

// GateDelay models a cell's intrinsic delay and drive resistance.
type GateDelay struct {
	IntrinsicPS float64 // fixed delay, picoseconds
	DrivePS     float64 // additional ps per fF of load
	InputCfF    float64 // input pin capacitance, fF
}

// delayFor returns a gate-delay model by cell archetype (coarse classes).
func delayFor(cellName string) GateDelay {
	switch {
	case len(cellName) >= 3 && cellName[:3] == "DFF":
		return GateDelay{IntrinsicPS: 60, DrivePS: 10, InputCfF: 1.2}
	case len(cellName) >= 3 && cellName[:3] == "INV":
		return GateDelay{IntrinsicPS: 12, DrivePS: 6, InputCfF: 0.8}
	case len(cellName) >= 3 && cellName[:3] == "BUF":
		return GateDelay{IntrinsicPS: 18, DrivePS: 5, InputCfF: 0.9}
	case len(cellName) >= 3 && cellName[:3] == "XOR":
		return GateDelay{IntrinsicPS: 35, DrivePS: 9, InputCfF: 1.4}
	case len(cellName) >= 3 && cellName[:3] == "MUX":
		return GateDelay{IntrinsicPS: 30, DrivePS: 9, InputCfF: 1.3}
	default: // NAND/NOR/AOI/OAI and friends
		return GateDelay{IntrinsicPS: 20, DrivePS: 8, InputCfF: 1.0}
	}
}

// Result summarizes the timing of a routed design.
type Result struct {
	// CriticalPathPS is the longest register-to-register (or input-to-
	// register) combinational path delay in picoseconds.
	CriticalPathPS float64
	// PeriodNS is the achievable clock period in nanoseconds (critical
	// path plus a fixed setup margin).
	PeriodNS float64
	// MaxDepth is the critical path's logic depth.
	MaxDepth int
}

const setupMarginPS = 40

// Analyze computes the critical path of a routed design.
func Analyze(res *route.Result) (Result, error) {
	p := res.P
	lib := p.Lib
	rc := RCFor(lib.Tech)
	vp := float64(lib.Tech.VPitchNM()) / 1000 // um per x-track step
	hp := float64(lib.Tech.HPitchNM()) / 1000 // um per y-track step

	nl := p.NL
	// Net delay: Elmore approximation collapsed to lumped RC (the routed
	// trees in clips are short): delay = 0.69 * Rw * (Cw/2 + Cload) with
	// Rw, Cw from total length and Cload from sink input pins.
	netDelay := make([]float64, len(nl.Nets))
	netLoad := make([]float64, len(nl.Nets))
	for i := range nl.Nets {
		rn := &res.Nets[i]
		lenUM := 0.0
		for _, s := range rn.Steps {
			if s.IsVia() {
				lenUM += 0.05 // via resistance modeled as extra length
				continue
			}
			if s.FromX != s.ToX {
				lenUM += vp
			} else {
				lenUM += hp
			}
		}
		load := 0.0
		for _, snk := range nl.Nets[i].Sinks {
			load += delayFor(nl.Instances[snk.Inst].Cell).InputCfF
		}
		rw := rc.ROhmPerUM * lenUM
		cw := rc.CfFPerUM * lenUM
		// ps = 0.69 * ohm * fF / 1000
		netDelay[i] = 0.69 * rw * (cw/2 + load) / 1000
		netLoad[i] = cw + load
	}

	// Arrival-time propagation in topological order over the combinational
	// graph; registers (DFF*) are both endpoints and sources.
	driverNet := make([]int, len(nl.Instances)) // net driven by instance, -1
	for i := range driverNet {
		driverNet[i] = -1
	}
	fanin := make([][]int, len(nl.Instances)) // nets feeding each instance
	for ni := range nl.Nets {
		n := &nl.Nets[ni]
		driverNet[n.Driver.Inst] = ni
		for _, s := range n.Sinks {
			fanin[s.Inst] = append(fanin[s.Inst], ni)
		}
	}
	isReg := func(i int) bool {
		c := nl.Instances[i].Cell
		return len(c) >= 3 && c[:3] == "DFF"
	}

	// Longest path via memoized DFS over instances; combinational cycles
	// (possible in synthetic netlists) are cut by the visiting mark.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, len(nl.Instances))
	arrive := make([]float64, len(nl.Instances)) // output arrival time
	depth := make([]int, len(nl.Instances))

	var visit func(i int) (float64, int)
	visit = func(i int) (float64, int) {
		if state[i] == done {
			return arrive[i], depth[i]
		}
		if state[i] == visiting {
			return 0, 0 // cycle cut
		}
		state[i] = visiting
		gd := delayFor(nl.Instances[i].Cell)
		in := 0.0
		d := 0
		if !isReg(i) {
			for _, ni := range fanin[i] {
				src := nl.Nets[ni].Driver.Inst
				a, dep := visit(src)
				a += netDelay[ni]
				if a > in {
					in = a
				}
				if dep > d {
					d = dep
				}
			}
		}
		out := in + gd.IntrinsicPS
		if dn := driverNet[i]; dn >= 0 {
			out += gd.DrivePS * netLoad[dn]
		}
		state[i] = done
		arrive[i] = out
		depth[i] = d + 1
		return out, depth[i]
	}

	worst := 0.0
	maxDepth := 0
	for i := range nl.Instances {
		// Path endpoints: register inputs.
		if !isReg(i) {
			continue
		}
		for _, ni := range fanin[i] {
			src := nl.Nets[ni].Driver.Inst
			a, dep := visit(src)
			a += netDelay[ni]
			if a > worst {
				worst = a
			}
			if dep > maxDepth {
				maxDepth = dep
			}
		}
	}
	if worst == 0 {
		// Purely combinational design: take the worst output arrival.
		for i := range nl.Instances {
			a, dep := visit(i)
			if a > worst {
				worst = a
			}
			if dep > maxDepth {
				maxDepth = dep
			}
		}
	}
	if math.IsNaN(worst) || math.IsInf(worst, 0) {
		return Result{}, fmt.Errorf("sta: degenerate critical path")
	}
	return Result{
		CriticalPathPS: worst,
		PeriodNS:       (worst + setupMarginPS) / 1000,
		MaxDepth:       maxDepth,
	}, nil
}
