package sta

import (
	"testing"

	"optrouter/internal/cells"
	"optrouter/internal/netlist"
	"optrouter/internal/place"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

func TestRCScalingMatchesPaper(t *testing.T) {
	n28 := RCFor(tech.N28T12())
	if n28 != N28RC {
		t.Fatal("28nm tech must use reference RC")
	}
	if RCFor(tech.N28T8()) != N28RC {
		t.Fatal("8T library shares the 28nm BEOL")
	}
	n7 := RCFor(tech.N7T9())
	// Paper: R_N7 = 6 x R_N28 and C_N7 = C_N28 / 2.5.
	if n7.ROhmPerUM != 6*n28.ROhmPerUM {
		t.Errorf("R_N7 = %v, want 6x%v", n7.ROhmPerUM, n28.ROhmPerUM)
	}
	if n7.CfFPerUM != n28.CfFPerUM/2.5 {
		t.Errorf("C_N7 = %v, want %v/2.5", n7.CfFPerUM, n28.CfFPerUM)
	}
}

func analyzed(t *testing.T, tt *tech.Technology, n int, seed int64) Result {
	t.Helper()
	lib := cells.Generate(tt)
	nl, err := netlist.Generate(lib, netlist.M0Class(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(lib, nl, place.Options{TargetUtil: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(pl, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(res)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyzeProducesPlausiblePeriod(t *testing.T) {
	r := analyzed(t, tech.N28T12(), 200, 1)
	if r.CriticalPathPS <= 0 {
		t.Fatalf("critical path %v", r.CriticalPathPS)
	}
	if r.PeriodNS <= 0 || r.PeriodNS > 100 {
		t.Fatalf("period %v ns implausible", r.PeriodNS)
	}
	if r.MaxDepth < 1 {
		t.Fatalf("depth %d", r.MaxDepth)
	}
}

func TestDeterministic(t *testing.T) {
	a := analyzed(t, tech.N28T12(), 150, 2)
	b := analyzed(t, tech.N28T12(), 150, 2)
	if a != b {
		t.Fatalf("STA not deterministic: %+v vs %+v", a, b)
	}
}

func TestGateDelayClasses(t *testing.T) {
	dff := delayFor("DFFX1")
	inv := delayFor("INVX1")
	nand := delayFor("NAND2X1")
	if dff.IntrinsicPS <= nand.IntrinsicPS {
		t.Error("register should be slower than a NAND")
	}
	if inv.IntrinsicPS >= nand.IntrinsicPS {
		t.Error("inverter should be faster than a NAND")
	}
}
