package netlist

import (
	"testing"

	"optrouter/internal/cells"
	"optrouter/internal/tech"
)

func lib() *cells.Library { return cells.Generate(tech.N28T12()) }

func TestGenerateAES(t *testing.T) {
	nl, err := Generate(lib(), AESClass(500, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Instances) != 500 {
		t.Fatalf("instances = %d", len(nl.Instances))
	}
	s := nl.Stats()
	if s.Nets == 0 || s.Pins == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.AvgFanout < 1 || s.AvgFanout > 10 {
		t.Fatalf("implausible average fanout %.2f", s.AvgFanout)
	}
	if s.MaxFanout > AESClass(500, 1).MaxFanout {
		t.Fatalf("fanout cap violated: %d", s.MaxFanout)
	}
}

func TestEveryInputConnected(t *testing.T) {
	l := lib()
	nl, err := Generate(l, M0Class(300, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Count input pins per instance and sink references per instance.
	wantPins := 0
	for _, inst := range nl.Instances {
		c, _ := l.Cell(inst.Cell)
		wantPins += len(c.InputPins())
	}
	gotPins := 0
	for i := range nl.Nets {
		gotPins += nl.Nets[i].Fanout()
	}
	if gotPins != wantPins {
		t.Fatalf("connected sinks %d != input pins %d", gotPins, wantPins)
	}
}

func TestNoSelfLoops(t *testing.T) {
	nl, err := Generate(lib(), AESClass(400, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		for _, s := range n.Sinks {
			if s.Inst == n.Driver.Inst {
				t.Fatalf("net %s: self loop on instance %d", n.Name, s.Inst)
			}
		}
	}
}

func TestDriversAreOutputs(t *testing.T) {
	l := lib()
	nl, err := Generate(l, M0Class(200, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		c, _ := l.Cell(nl.Instances[n.Driver.Inst].Cell)
		out, ok := c.OutputPin()
		if !ok || out.Name != n.Driver.Pin {
			t.Fatalf("net %s driven by non-output pin %s", n.Name, n.Driver.Pin)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate(lib(), AESClass(300, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(lib(), AESClass(300, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatal("generation is not deterministic")
	}
	c, err := Generate(lib(), AESClass(300, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() == c.Stats() {
		t.Fatal("different seeds produced identical netlists (suspicious)")
	}
}

func TestLocalityBias(t *testing.T) {
	// With small locality, sink instances should be close to their drivers
	// in index space on average.
	nl, err := Generate(lib(), M0Class(2000, 5))
	if err != nil {
		t.Fatal(err)
	}
	sum, cnt := 0, 0
	for i := range nl.Nets {
		n := &nl.Nets[i]
		for _, s := range n.Sinks {
			d := n.Driver.Inst - s.Inst
			if d < 0 {
				d = -d
			}
			sum += d
			cnt++
		}
	}
	avg := float64(sum) / float64(cnt)
	if avg > 400 {
		t.Fatalf("average driver-sink index distance %.0f too large for locality profile", avg)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Generate(lib(), Profile{Name: "x", NumInstances: 1}); err == nil {
		t.Error("too-small design accepted")
	}
	if _, err := Generate(lib(), Profile{Name: "x", NumInstances: 10, CellMix: map[string]float64{"NOPE": 1}}); err == nil {
		t.Error("empty effective cell mix accepted")
	}
}

func TestProfilesDiffer(t *testing.T) {
	aes := AESClass(100, 1)
	m0 := M0Class(100, 1)
	if aes.CellMix["XOR2X1"] <= m0.CellMix["XOR2X1"] {
		t.Error("AES should be XOR-richer than M0")
	}
	if m0.CellMix["DFFX1"] <= aes.CellMix["DFFX1"] {
		t.Error("M0 should be register-richer than AES")
	}
}
