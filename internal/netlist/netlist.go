// Package netlist synthesizes gate-level netlists that statistically
// resemble the paper's two benchmark designs: the OpenCores AES core
// (~13-15K instances, datapath-heavy, wide fanout spread) and an ARM
// Cortex-M0 (~9-11K instances, control-heavy). Generation is seeded and
// deterministic; instance counts are parameters so tests can scale down
// while the Table 2 benchmarks run at representative sizes.
package netlist

import (
	"fmt"
	"math/rand"

	"optrouter/internal/cells"
)

// PinRef addresses one pin of one instance.
type PinRef struct {
	Inst int    // instance index
	Pin  string // pin name on the master
}

// Net is a logical net: one driver and one or more sinks.
type Net struct {
	Name   string
	Driver PinRef
	Sinks  []PinRef
}

// Fanout returns the sink count.
func (n *Net) Fanout() int { return len(n.Sinks) }

// Instance is a placed-cell reference.
type Instance struct {
	Name string
	Cell string
}

// Netlist is a flat gate-level design.
type Netlist struct {
	Name      string
	Instances []Instance
	Nets      []Net
}

// Stats summarizes a netlist for Table 2 style reporting.
type Stats struct {
	Instances int
	Nets      int
	Pins      int
	AvgFanout float64
	MaxFanout int
}

// Stats computes summary statistics.
func (nl *Netlist) Stats() Stats {
	s := Stats{Instances: len(nl.Instances), Nets: len(nl.Nets)}
	for i := range nl.Nets {
		f := nl.Nets[i].Fanout()
		s.Pins += f + 1
		s.AvgFanout += float64(f)
		if f > s.MaxFanout {
			s.MaxFanout = f
		}
	}
	if s.Nets > 0 {
		s.AvgFanout /= float64(s.Nets)
	}
	return s
}

// Profile parameterizes synthesis.
type Profile struct {
	Name         string
	NumInstances int
	// CellMix weights masters by name; unlisted masters are unused.
	CellMix map[string]float64
	// Locality in (0,1]: fraction of the design "window" a net's sinks are
	// drawn from around the driver (smaller = more local wiring).
	Locality float64
	// MaxFanout caps net fanout.
	MaxFanout int
	Seed      int64
}

// AESClass resembles the AES core: datapath-heavy (XOR-rich), moderate
// locality, some high-fanout control nets.
func AESClass(n int, seed int64) Profile {
	return Profile{
		Name:         "AES",
		NumInstances: n,
		CellMix: map[string]float64{
			"XOR2X1": 0.18, "XNOR2X1": 0.06, "NAND2X1": 0.13, "NAND2X2": 0.03,
			"NOR2X1": 0.08, "NOR2X2": 0.02, "INVX1": 0.09, "INVX2": 0.02,
			"INVX4": 0.01, "AOI21X1": 0.06, "OAI21X1": 0.05, "AOI22X1": 0.02,
			"MUX2X1": 0.08, "NAND3X1": 0.05, "BUFX2": 0.03, "BUFX4": 0.01,
			"DFFX1": 0.06, "DFFX2": 0.02,
		},
		Locality:  0.08,
		MaxFanout: 24,
		Seed:      seed,
	}
}

// M0Class resembles a Cortex-M0: control-heavy (NAND/NOR/AOI-rich), tighter
// locality, higher sequential fraction.
func M0Class(n int, seed int64) Profile {
	return Profile{
		Name:         "M0",
		NumInstances: n,
		CellMix: map[string]float64{
			"NAND2X1": 0.18, "NAND2X2": 0.04, "NOR2X1": 0.11, "NOR2X2": 0.03,
			"INVX1": 0.11, "INVX2": 0.03, "AOI21X1": 0.08, "OAI21X1": 0.06,
			"AOI22X1": 0.03, "OAI22X1": 0.02, "MUX2X1": 0.07, "NAND3X1": 0.05,
			"NOR3X1": 0.02, "XOR2X1": 0.04, "BUFX2": 0.03, "BUFX4": 0.01,
			"DFFX1": 0.08, "DFFX2": 0.03,
		},
		Locality:  0.05,
		MaxFanout: 20,
		Seed:      seed,
	}
}

// Generate builds a netlist against the library. Every input pin of every
// instance is connected to exactly one net; drivers are chosen with a
// locality bias in instance-index space (the placer preserves index order,
// so index distance approximates physical distance).
func Generate(lib *cells.Library, p Profile) (*Netlist, error) {
	if p.NumInstances < 2 {
		return nil, fmt.Errorf("netlist: need at least 2 instances, got %d", p.NumInstances)
	}
	if p.MaxFanout < 1 {
		p.MaxFanout = 16
	}
	if p.Locality <= 0 || p.Locality > 1 {
		p.Locality = 0.1
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Weighted master pick.
	var names []string
	var weights []float64
	total := 0.0
	for _, n := range lib.CellNames() {
		if w := p.CellMix[n]; w > 0 {
			names = append(names, n)
			weights = append(weights, w)
			total += w
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("netlist: profile %q selects no masters", p.Name)
	}
	pick := func() string {
		r := rng.Float64() * total
		for i, w := range weights {
			if r < w {
				return names[i]
			}
			r -= w
		}
		return names[len(names)-1]
	}

	nl := &Netlist{Name: p.Name}
	for i := 0; i < p.NumInstances; i++ {
		master := pick()
		nl.Instances = append(nl.Instances, Instance{
			Name: fmt.Sprintf("u%d", i),
			Cell: master,
		})
	}

	// One net per driving output pin; collect drivers first.
	type driver struct {
		ref    PinRef
		net    int // net index once created, else -1
		fanout int
	}
	var drivers []driver
	for i, inst := range nl.Instances {
		c, ok := lib.Cell(inst.Cell)
		if !ok {
			return nil, fmt.Errorf("netlist: unknown master %q", inst.Cell)
		}
		if out, ok := c.OutputPin(); ok {
			drivers = append(drivers, driver{ref: PinRef{Inst: i, Pin: out.Name}, net: -1})
		}
	}
	if len(drivers) == 0 {
		return nil, fmt.Errorf("netlist: no driving pins in profile %q", p.Name)
	}

	window := int(p.Locality * float64(len(drivers)))
	if window < 4 {
		window = 4
	}

	// Map instance index -> nearest driver index (ordered identically).
	// drivers are ordered by instance index already.
	nearestDriver := func(inst int) int {
		// Binary search over drivers (sorted by Inst).
		lo, hi := 0, len(drivers)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if drivers[mid].ref.Inst < inst {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	for i, inst := range nl.Instances {
		c, _ := lib.Cell(inst.Cell)
		for _, in := range c.InputPins() {
			// Choose a driver near this instance.
			center := nearestDriver(i)
			var d *driver
			for attempt := 0; attempt < 24; attempt++ {
				off := rng.Intn(2*window+1) - window
				di := center + off
				if di < 0 || di >= len(drivers) {
					continue
				}
				cand := &drivers[di]
				if cand.ref.Inst == i {
					continue // no self loops
				}
				if cand.fanout >= p.MaxFanout {
					continue
				}
				d = cand
				break
			}
			if d == nil {
				// Fallback: global scan for any capacity.
				for di := range drivers {
					if drivers[di].ref.Inst != i && drivers[di].fanout < p.MaxFanout {
						d = &drivers[di]
						break
					}
				}
			}
			if d == nil {
				return nil, fmt.Errorf("netlist: fanout capacity exhausted")
			}
			if d.net < 0 {
				d.net = len(nl.Nets)
				nl.Nets = append(nl.Nets, Net{
					Name:   fmt.Sprintf("n%d", d.net),
					Driver: d.ref,
				})
			}
			nl.Nets[d.net].Sinks = append(nl.Nets[d.net].Sinks, PinRef{Inst: i, Pin: in.Name})
			d.fanout++
		}
	}
	return nl, nil
}
