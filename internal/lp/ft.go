package lp

import "math"

// This file implements Forrest-Tomlin basis updates (Options.Update ==
// UpdateFT, the default) for the sparse LU engine in factor.go. Where the
// product-form eta file leaves L and U frozen and pays one extra eta gather
// per FTRAN/BTRAN for every exchange since the last refactorization, the
// Forrest-Tomlin scheme edits U itself: the FTRAN-transformed entering
// column becomes a spike replacing the leaving column of U, the spiked
// row/column pair is cyclically permuted to the end of the elimination
// order, and the resulting last-row spike is eliminated with one sparse row
// eta (recorded between L and U in the factor product, B = L R1..Rk U).
// U stays triangular in the permuted order and near factorization density,
// so the solves do not degrade as updates accumulate — which is what lets
// the refactorization interval stretch (ftUpdateCap) past the eta file's.
//
// The mutable U lives in per-slot growable row arrays plus per-column
// scatter lists with generation-stamped lazy invalidation: clearing a row
// bumps its generation, orphaning its column-list entries in place instead
// of searching them out. A "slot" is an elimination step of the underlying
// factorization; its pivot row (prow) and basis position (pcol) never
// change, only its position in the elimination order (ftSeq/ftPosOf) does.

const (
	// ftUpdateCap bounds the updates absorbed between refactorizations.
	// Deliberately looser than the eta file's 96: FT solves pay only for the
	// short row etas, not one gather per exchange, so longer intervals are
	// where the scheme wins.
	ftUpdateCap = 192
)

// ftState is the Forrest-Tomlin representation of the updated U factor and
// its row-eta file, embedded in luFactor and rebuilt by ftInit at every
// refactorization.
type ftState struct {
	on      bool // FT mode: ftInit ran for the current factorization
	updates int  // exchanges absorbed since the last refactorization

	piv    []float64 // per-slot pivot value (replaces upiv)
	rowInd [][]int32 // per-slot off-pivot row entries: basis positions...
	rowVal [][]float64
	rowGen []int32 // per-slot generation; bumped when the row is cleared

	// Column scatter lists (per basis position): (slot, value, generation)
	// triples, live while the generation matches rowGen[slot].
	colSlot [][]int32
	colVal  [][]float64
	colGen  [][]int32

	seq   []int32 // slot visit order (U is upper triangular in this order)
	posOf []int32 // slot -> position in seq

	// Row-eta file (the R factors): record e zeroes row etaR[e] using rows
	// etaRow with multipliers etaMul, span etaPtr[e]..etaPtr[e+1].
	etaR   []int32
	etaPtr []int32
	etaRow []int32
	etaMul []float64

	nnz int // current off-pivot nonzeros of the dynamic U

	// Arenas backing the per-slot row arrays and per-column scatter lists:
	// each slot/column is carved out with a little spare capacity, so a fresh
	// factorization costs a handful of allocations instead of O(m), and only
	// rows that outgrow their spare fall back to individual heap slices.
	rowIndArena  []int32
	rowValArena  []float64
	colSlotArena []int32
	colValArena  []float64
	colGenArena  []int32
	colCnt       []int32 // scratch: per-column entry counts for arena carving

	spike  spVec   // update scratch: spike in slot space
	acc    spVec   // update scratch: row-spike residual in column space
	muSlot []int32 // update scratch: provisional eliminations
	muVal  []float64
}

// ftInit converts the freshly built static factorization into the dynamic
// Forrest-Tomlin form, resetting all update state. Backing arrays are reused
// across refactorizations.
func (f *luFactor) ftInit(m int) {
	ft := &f.ft
	ft.on = true
	ft.updates = 0
	if cap(ft.piv) < m {
		ft.piv = make([]float64, m)
		ft.rowGen = make([]int32, m)
		ft.seq = make([]int32, m)
		ft.posOf = make([]int32, m)
	}
	ft.piv = ft.piv[:m]
	ft.rowGen = ft.rowGen[:m]
	ft.seq = ft.seq[:m]
	ft.posOf = ft.posOf[:m]
	if cap(ft.rowInd) < m {
		ft.rowInd = make([][]int32, m)
		ft.rowVal = make([][]float64, m)
		ft.colSlot = make([][]int32, m)
		ft.colVal = make([][]float64, m)
		ft.colGen = make([][]int32, m)
	}
	ft.rowInd = ft.rowInd[:m]
	ft.rowVal = ft.rowVal[:m]
	ft.colSlot = ft.colSlot[:m]
	ft.colVal = ft.colVal[:m]
	ft.colGen = ft.colGen[:m]

	for k := 0; k < m; k++ {
		ft.piv[k] = f.upiv[k]
		ft.rowGen[k] = 0
		ft.seq[k] = int32(k)
		ft.posOf[k] = int32(k)
		f.stepOf[f.pcol[k]] = int32(k)
	}

	// Carve the per-slot rows and per-column lists out of the shared arenas,
	// each with a little spare capacity so the common few-entry growth during
	// updates stays in place. Only a slot that outgrows its spare reallocates
	// (individually, via append's normal growth).
	const spare = 4
	nnz := len(f.urInd)
	need := nnz + spare*m
	if cap(ft.rowIndArena) < need {
		ft.rowIndArena = make([]int32, need)
		ft.rowValArena = make([]float64, need)
		ft.colSlotArena = make([]int32, need)
		ft.colValArena = make([]float64, need)
		ft.colGenArena = make([]int32, need)
	}
	if cap(ft.colCnt) < m {
		ft.colCnt = make([]int32, m)
	}
	ft.colCnt = ft.colCnt[:m]
	for i := range ft.colCnt {
		ft.colCnt[i] = 0
	}
	for _, c := range f.urInd {
		ft.colCnt[c]++
	}
	off := 0
	for k := 0; k < m; k++ {
		lo, hi := f.urPtr[k], f.urPtr[k+1]
		ln := int(hi - lo)
		capEnd := off + ln + spare
		ft.rowInd[k] = ft.rowIndArena[off : off+ln : capEnd]
		ft.rowVal[k] = ft.rowValArena[off : off+ln : capEnd]
		copy(ft.rowInd[k], f.urInd[lo:hi])
		copy(ft.rowVal[k], f.urVal[lo:hi])
		off = capEnd
	}
	off = 0
	for c := 0; c < m; c++ {
		capEnd := off + int(ft.colCnt[c]) + spare
		ft.colSlot[c] = ft.colSlotArena[off:off:capEnd]
		ft.colVal[c] = ft.colValArena[off:off:capEnd]
		ft.colGen[c] = ft.colGenArena[off:off:capEnd]
		off = capEnd
	}
	for k := 0; k < m; k++ {
		lo, hi := f.urPtr[k], f.urPtr[k+1]
		for e := lo; e < hi; e++ {
			c := f.urInd[e]
			ft.colSlot[c] = append(ft.colSlot[c], int32(k))
			ft.colVal[c] = append(ft.colVal[c], f.urVal[e])
			ft.colGen[c] = append(ft.colGen[c], 0)
		}
	}
	ft.etaR = ft.etaR[:0]
	ft.etaPtr = append(ft.etaPtr[:0], 0)
	ft.etaRow = ft.etaRow[:0]
	ft.etaMul = ft.etaMul[:0]
	ft.nnz = len(f.urInd)
	ft.spike.grow(m)
	ft.acc.grow(m)
}

// ftUpdate folds one basis exchange into the dynamic factorization: w is the
// FTRAN-transformed entering column (indexed by basis position) and leave the
// basis position it replaces. Returns false — leaving the representation
// untouched — when the new pivot of the spiked slot is too small relative to
// the spike, in which case the caller must refactorize.
func (f *luFactor) ftUpdate(leave int32, w *spVec) bool {
	ft := &f.ft
	m := f.m
	t := f.stepOf[leave] // the leaving position's slot keeps its identity
	pt := int(ft.posOf[t])

	// Spike v = U w in slot space, column-driven over w's support so near-unit
	// columns stay cheap. U is the *current* dynamic factor: by induction
	// B = L R1..Rk U, so the spike computed here is exactly the column that
	// must replace column `leave` of U for the exchanged basis.
	sp := &ft.spike
	sp.reset()
	for _, ci := range w.ind {
		wc := w.val[ci]
		if wc == 0 {
			continue
		}
		sc := f.stepOf[ci]
		sp.add(sc, ft.piv[sc]*wc)
		slots := ft.colSlot[ci]
		gens := ft.colGen[ci]
		vals := ft.colVal[ci]
		for q := 0; q < len(slots); q++ {
			s2 := slots[q]
			if gens[q] != ft.rowGen[s2] {
				continue
			}
			sp.add(s2, vals[q]*wc)
		}
	}
	vmax := 0.0
	for _, k := range sp.ind {
		if a := math.Abs(sp.val[k]); a > vmax {
			vmax = a
		}
	}

	// Eliminate the row spike: the old row t, moved to the end of the order,
	// has entries in columns of the slots after position pt. Cascade through
	// those slots in order, recording the multipliers; the surviving entry in
	// the spike column is the new pivot delta.
	acc := &ft.acc
	acc.reset()
	maxPos := pt
	{
		idx := ft.rowInd[t]
		vals := ft.rowVal[t]
		for q := range idx {
			acc.set(idx[q], vals[q])
			if p := int(ft.posOf[f.stepOf[idx[q]]]); p > maxPos {
				maxPos = p
			}
		}
	}
	delta := sp.val[t]
	ft.muSlot = ft.muSlot[:0]
	ft.muVal = ft.muVal[:0]
	for p := pt + 1; p <= maxPos; p++ {
		s := ft.seq[p]
		r := acc.val[f.pcol[s]]
		if math.Abs(r) <= dropTol {
			continue
		}
		mu := r / ft.piv[s]
		ft.muSlot = append(ft.muSlot, s)
		ft.muVal = append(ft.muVal, mu)
		delta -= mu * sp.val[s]
		idx := ft.rowInd[s]
		vals := ft.rowVal[s]
		for q := range idx {
			acc.add(idx[q], -mu*vals[q])
			if p2 := int(ft.posOf[f.stepOf[idx[q]]]); p2 > maxPos {
				maxPos = p2
			}
		}
	}
	if math.Abs(delta) < etaPivotRel*vmax || delta == 0 {
		return false
	}

	// Commit. Old entries of column `leave` (all in rows ordered before pt)
	// are removed from their rows; the column is rebuilt from the spike.
	{
		slots := ft.colSlot[leave]
		gens := ft.colGen[leave]
		for q := 0; q < len(slots); q++ {
			s2 := slots[q]
			if gens[q] != ft.rowGen[s2] || s2 == t {
				continue
			}
			idx := ft.rowInd[s2]
			vals := ft.rowVal[s2]
			for k := range idx {
				if idx[k] == leave {
					last := len(idx) - 1
					idx[k] = idx[last]
					vals[k] = vals[last]
					ft.rowInd[s2] = idx[:last]
					ft.rowVal[s2] = vals[:last]
					ft.nnz--
					break
				}
			}
		}
		ft.colSlot[leave] = ft.colSlot[leave][:0]
		ft.colVal[leave] = ft.colVal[leave][:0]
		ft.colGen[leave] = ft.colGen[leave][:0]
	}
	// Row t collapses to the single pivot entry delta; bumping its generation
	// lazily invalidates its old column-list entries.
	ft.nnz -= len(ft.rowInd[t])
	ft.rowInd[t] = ft.rowInd[t][:0]
	ft.rowVal[t] = ft.rowVal[t][:0]
	ft.rowGen[t]++
	ft.piv[t] = delta
	// Spike entries land as column-`leave` entries of their rows (always the
	// last column in the new order, so triangularity holds for every row).
	for _, k := range sp.ind {
		if k == t {
			continue
		}
		v := sp.val[k]
		if math.Abs(v) <= dropTol {
			continue
		}
		ft.rowInd[k] = append(ft.rowInd[k], leave)
		ft.rowVal[k] = append(ft.rowVal[k], v)
		ft.colSlot[leave] = append(ft.colSlot[leave], k)
		ft.colVal[leave] = append(ft.colVal[leave], v)
		ft.colGen[leave] = append(ft.colGen[leave], ft.rowGen[k])
		ft.nnz++
	}
	// Record the row eta (in row space: it acts between L and U).
	if len(ft.muSlot) > 0 {
		ft.etaR = append(ft.etaR, f.prow[t])
		for q, s := range ft.muSlot {
			ft.etaRow = append(ft.etaRow, f.prow[s])
			ft.etaMul = append(ft.etaMul, ft.muVal[q])
		}
		ft.etaPtr = append(ft.etaPtr, int32(len(ft.etaRow)))
	}
	// Cyclic permutation: slot t moves to the end of the order.
	copy(ft.seq[pt:], ft.seq[pt+1:])
	ft.seq[m-1] = t
	for p := pt; p < m; p++ {
		ft.posOf[ft.seq[p]] = int32(p)
	}
	ft.updates++
	return true
}

// ftApplyEtas applies the row-eta file to a row-space vector between the L
// forward pass and the U solve of an FTRAN.
func (f *luFactor) ftApplyEtas(a *spVec) {
	ft := &f.ft
	for e := 0; e < len(ft.etaR); e++ {
		s := 0.0
		for q := ft.etaPtr[e]; q < ft.etaPtr[e+1]; q++ {
			s += ft.etaMul[q] * a.val[ft.etaRow[q]]
		}
		if s != 0 {
			a.add(ft.etaR[e], -s)
		}
	}
}

// ftranFT is the FTRAN U stage over the dynamic factor: back substitution in
// reverse elimination order, scattering each solved component through its
// column list. Input a is in row space (L pass and row etas already applied);
// the result is indexed by basis position.
func (f *luFactor) ftranFT(a, out *spVec) {
	ft := &f.ft
	out.reset()
	for p := f.m - 1; p >= 0; p-- {
		s := ft.seq[p]
		t := a.val[f.prow[s]]
		if t == 0 {
			continue
		}
		t /= ft.piv[s]
		c := f.pcol[s]
		out.set(c, t)
		slots := ft.colSlot[c]
		gens := ft.colGen[c]
		vals := ft.colVal[c]
		for q := 0; q < len(slots); q++ {
			s2 := slots[q]
			if gens[q] != ft.rowGen[s2] {
				continue
			}
			a.add(f.prow[s2], -vals[q]*t)
		}
	}
}

// btranFT is the BTRAN U stage plus transposed row etas: solve z U = c in
// elimination order through the dynamic rows, then apply the eta file
// transposed in reverse. Input c is indexed by basis position; the result
// (in row space) still needs the transposed L pass.
func (f *luFactor) btranFT(c, out *spVec) {
	ft := &f.ft
	out.reset()
	for p := 0; p < f.m; p++ {
		s := ft.seq[p]
		t := c.val[f.pcol[s]]
		if t == 0 {
			continue
		}
		t /= ft.piv[s]
		out.set(f.prow[s], t)
		idx := ft.rowInd[s]
		vals := ft.rowVal[s]
		for q := range idx {
			c.add(idx[q], -vals[q]*t)
		}
	}
	for e := len(ft.etaR) - 1; e >= 0; e-- {
		t := out.val[ft.etaR[e]]
		if t == 0 {
			continue
		}
		for q := ft.etaPtr[e]; q < ft.etaPtr[e+1]; q++ {
			out.add(ft.etaRow[q], -ft.etaMul[q]*t)
		}
	}
}

// ftranDenseFT mirrors ftranFT for a dense right-hand side (the periodic
// basic-value refresh).
func (f *luFactor) ftranDenseFT(a, out []float64) {
	ft := &f.ft
	for e := 0; e < len(ft.etaR); e++ {
		s := 0.0
		for q := ft.etaPtr[e]; q < ft.etaPtr[e+1]; q++ {
			s += ft.etaMul[q] * a[ft.etaRow[q]]
		}
		a[ft.etaR[e]] -= s
	}
	for i := range out[:f.m] {
		out[i] = 0
	}
	for p := f.m - 1; p >= 0; p-- {
		s := ft.seq[p]
		t := a[f.prow[s]]
		if t == 0 {
			continue
		}
		t /= ft.piv[s]
		c := f.pcol[s]
		out[c] = t
		slots := ft.colSlot[c]
		gens := ft.colGen[c]
		vals := ft.colVal[c]
		for q := 0; q < len(slots); q++ {
			s2 := slots[q]
			if gens[q] != ft.rowGen[s2] {
				continue
			}
			a[f.prow[s2]] -= vals[q] * t
		}
	}
}
