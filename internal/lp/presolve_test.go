package lp

import (
	"math"
	"math/rand"
	"testing"
)

// presolve_test.go unit-tests the structural presolve: each reduction kind
// in isolation, the Postsolve primal roundtrip, infeasibility detection,
// integer bound tightening, and — the subtle part — exact dual recovery
// through PostsolveDuals, checked against the KKT conditions of the
// original (unreduced) problem.

// TestPresolveSingletonRow: a singleton row must fold into a variable bound
// and vanish from the reduced problem, with the solve answer unchanged.
func TestPresolveSingletonRow(t *testing.T) {
	p := NewProblem()
	p.AddVariable(0, 10, -1) // max x via min -x
	p.AddVariable(0, 10, -1)
	p.AddConstraint([]Coef{{Var: 0, Val: 2}}, LE, 6) // x0 <= 3, singleton
	p.AddConstraint([]Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, LE, 7)
	ps := PresolveProblem(p, PresolveOptions{})
	if ps == nil {
		t.Fatal("presolve found no reduction")
	}
	if ps.RowsRemoved < 1 {
		t.Fatalf("RowsRemoved = %d, want >= 1", ps.RowsRemoved)
	}
	res := p.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj-(-7)) > 1e-9 {
		t.Fatalf("got %v obj %g, want optimal -7", res.Status, res.Obj)
	}
	if math.Abs(res.X[0]-3) > 1e-9 {
		t.Fatalf("x0 = %g, want 3 (singleton bound active)", res.X[0])
	}
}

// TestPresolveFixedColumn: a fixed column folds into the right-hand sides
// and the objective offset.
func TestPresolveFixedColumn(t *testing.T) {
	p := NewProblem()
	p.AddVariable(4, 4, 3) // fixed: contributes 12 to the objective
	p.AddVariable(0, 10, 1)
	p.AddConstraint([]Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, GE, 9) // => x1 >= 5
	ps := PresolveProblem(p, PresolveOptions{})
	if ps == nil || ps.ColsRemoved < 1 {
		t.Fatalf("presolve did not remove the fixed column: %+v", ps)
	}
	// 12 from the fixed column, plus 5 more when duality fixing finishes the
	// job: the singleton row dies imposing x1 >= 5, leaving x1 column-empty
	// with positive cost, so it is fixed at its lower bound too.
	if math.Abs(ps.ObjOffset-17) > 1e-9 {
		t.Fatalf("ObjOffset = %g, want 17", ps.ObjOffset)
	}
	res := p.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj-17) > 1e-9 {
		t.Fatalf("got %v obj %g, want optimal 17", res.Status, res.Obj)
	}
	if math.Abs(res.X[0]-4) > 1e-9 || math.Abs(res.X[1]-5) > 1e-9 {
		t.Fatalf("x = %v, want [4 5]", res.X)
	}
}

// TestPresolveForcedRow: a row whose activity bounds meet its rhs exactly
// fixes every variable it touches at the forcing extreme.
func TestPresolveForcedRow(t *testing.T) {
	p := NewProblem()
	p.AddVariable(0, 2, 1)
	p.AddVariable(0, 3, 1)
	p.AddVariable(0, 5, -1)
	// x0 + x1 >= 5 forces x0=2, x1=3 (max activity equals rhs).
	p.AddConstraint([]Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, GE, 5)
	p.AddConstraint([]Coef{{Var: 2, Val: 1}, {Var: 0, Val: 1}}, LE, 6)
	ps := PresolveProblem(p, PresolveOptions{})
	if ps == nil || ps.ColsRemoved < 2 {
		t.Fatalf("forced row not detected: %+v", ps)
	}
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	want := []float64{2, 3, 4} // x2 <= 6 - x0 = 4, cost -1 drives it there
	for j, w := range want {
		if math.Abs(res.X[j]-w) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", j, res.X[j], w)
		}
	}
}

// TestPresolveInfeasible: contradictory singleton rows must be caught by
// presolve alone, and Solve must report Infeasible either way.
func TestPresolveInfeasible(t *testing.T) {
	p := NewProblem()
	p.AddVariable(0, 10, 1)
	p.AddConstraint([]Coef{{Var: 0, Val: 1}}, GE, 5)
	p.AddConstraint([]Coef{{Var: 0, Val: 1}}, LE, 3)
	ps := PresolveProblem(p, PresolveOptions{})
	if ps == nil || !ps.Infeasible {
		t.Fatalf("presolve missed the contradiction: %+v", ps)
	}
	if res := p.Solve(Options{}); res.Status != Infeasible {
		t.Fatalf("status %v, want Infeasible", res.Status)
	}
}

// TestPresolveIntegerTightening: with integrality marks, activity-based
// bound tightening must round inward; without them continuous bounds stay
// untouched (tightening would break exact dual postsolve).
func TestPresolveIntegerTightening(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		p.AddVariable(0, 10, -1)
		p.AddVariable(0, 10, -1)
		p.AddConstraint([]Coef{{Var: 0, Val: 2}, {Var: 1, Val: 2}}, LE, 7)
		return p
	}
	ps := PresolveProblem(build(), PresolveOptions{Integer: []bool{true, true}})
	if ps == nil {
		t.Fatal("integer presolve found no reduction")
	}
	lo, hi := ps.Reduced.VarBounds(0)
	// 2x0 <= 7 - min(2x1) = 7 => x0 <= 3.5, integer-rounded to 3.
	if lo != 0 || hi != 3 {
		t.Fatalf("integer bounds [%g,%g], want [0,3]", lo, hi)
	}
	// Continuous variant with non-proportional costs (so the parallel-column
	// merge does not apply): activity tightening must leave continuous
	// bounds alone, so no reduction remains at all.
	pc := NewProblem()
	pc.AddVariable(0, 10, -1)
	pc.AddVariable(0, 10, -2)
	pc.AddConstraint([]Coef{{Var: 0, Val: 2}, {Var: 1, Val: 2}}, LE, 7)
	if psc := PresolveProblem(pc, PresolveOptions{}); psc != nil {
		if _, hic := psc.Reduced.VarBounds(0); hic != 10 {
			t.Fatalf("continuous bound tightened to %g — breaks dual postsolve", hic)
		}
	}
}

// TestPresolvePostsolveRoundtrip fuzzes: the presolved solve and a direct
// presolve-off solve must agree on status and objective, and the postsolved
// primal must be feasible for the original problem.
func TestPresolvePostsolveRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	applied := 0
	for trial := 0; trial < 300; trial++ {
		p := randomLP(rng)
		on := cloneProblem(p).Solve(Options{Presolve: PresolveAuto})
		off := cloneProblem(p).Solve(Options{Presolve: PresolveOff})
		if on.Status != off.Status {
			t.Fatalf("trial %d: status presolve=%v direct=%v", trial, on.Status, off.Status)
		}
		if on.Stats.PresolveRows > 0 || on.Stats.PresolveCols > 0 {
			applied++
		}
		if on.Status != Optimal {
			continue
		}
		if math.Abs(on.Obj-off.Obj) > 1e-6*(1+math.Abs(off.Obj)) {
			t.Fatalf("trial %d: obj presolve=%.12g direct=%.12g", trial, on.Obj, off.Obj)
		}
		checkFeasible(t, trial, p, on.X)
	}
	if applied < 30 {
		t.Errorf("presolve reduced only %d/300 instances — corpus too clean", applied)
	}
}

// checkKKT verifies x, y against the KKT conditions of the ORIGINAL problem
// (minimization, duals defined by d = c - A'y):
//   - primal feasibility (delegated to feasViolation),
//   - dual sign: LE rows need y <= 0, GE rows y >= 0,
//   - row complementarity: y != 0 only on active rows,
//   - column duals: interior columns need d ~ 0, at-lower d >= 0, at-upper
//     d <= 0 (fixed columns are unconstrained),
//   - strong duality: c'x equals y'b plus the bound contributions of d.
func checkKKT(t *testing.T, trial int, p *Problem, x, y []float64, obj float64) {
	t.Helper()
	const tol = 1e-6
	if v := feasViolation(p, x); v != "" {
		t.Fatalf("trial %d: primal: %s", trial, v)
	}
	d := make([]float64, p.NumVars())
	for j := range d {
		d[j] = p.Cost(j)
	}
	dualObj := 0.0
	for i := 0; i < p.NumRows(); i++ {
		coeffs, sense, rhs := p.Row(i)
		ax := 0.0
		for _, c := range coeffs {
			ax += c.Val * x[c.Var]
			d[c.Var] -= y[i] * c.Val
		}
		switch sense {
		case LE:
			if y[i] > tol {
				t.Fatalf("trial %d: LE row %d has y=%g > 0", trial, i, y[i])
			}
		case GE:
			if y[i] < -tol {
				t.Fatalf("trial %d: GE row %d has y=%g < 0", trial, i, y[i])
			}
		}
		if math.Abs(y[i]) > tol && math.Abs(ax-rhs) > tol*(1+math.Abs(rhs)) {
			t.Fatalf("trial %d: row %d inactive (%g vs %g) but y=%g",
				trial, i, ax, rhs, y[i])
		}
		dualObj += y[i] * rhs
	}
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.VarBounds(j)
		if lo == hi {
			dualObj += d[j] * lo
			continue
		}
		atLo := x[j] < lo+tol
		atHi := x[j] > hi-tol
		switch {
		case !atLo && !atHi:
			if math.Abs(d[j]) > tol {
				t.Fatalf("trial %d: interior x[%d]=%g has d=%g", trial, j, x[j], d[j])
			}
		case atLo && !atHi:
			if d[j] < -tol {
				t.Fatalf("trial %d: x[%d] at lower bound has d=%g < 0", trial, j, d[j])
			}
		case atHi && !atLo:
			if d[j] > tol {
				t.Fatalf("trial %d: x[%d] at upper bound has d=%g > 0", trial, j, d[j])
			}
		}
		if d[j] > tol {
			dualObj += d[j] * lo
		} else if d[j] < -tol {
			dualObj += d[j] * hi
		}
	}
	if math.Abs(dualObj-obj) > 1e-5*(1+math.Abs(obj)) {
		t.Fatalf("trial %d: strong duality gap: dual %g, primal %g", trial, dualObj, obj)
	}
}

// TestPresolveDualRecovery fuzzes dual recovery through the full presolve
// stack: solves routed through presolve with WantDuals must return duals
// that satisfy the KKT conditions of the ORIGINAL problem — sign,
// complementarity and strong duality — exactly as if no reduction had
// happened. This exercises every PostsolveDuals stack rule (dropped,
// singleton, forced and substituted rows).
func TestPresolveDualRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	checked, reduced := 0, 0
	for trial := 0; trial < 800; trial++ {
		p := randomLP(rng)
		res := cloneProblem(p).Solve(Options{Presolve: PresolveAuto, WantDuals: true})
		if res.Status != Optimal {
			continue
		}
		if len(res.Duals) != p.NumRows() {
			t.Fatalf("trial %d: %d duals for %d rows", trial, len(res.Duals), p.NumRows())
		}
		checkKKT(t, trial, p, res.X, res.Duals, res.Obj)
		checked++
		if res.Stats.PresolveRows > 0 || res.Stats.PresolveCols > 0 {
			reduced++
		}
	}
	if checked < 60 {
		t.Fatalf("only %d optimal instances — corpus drifted", checked)
	}
	if reduced < 25 {
		t.Errorf("only %d/%d dual recoveries went through a reduction", reduced, checked)
	}
}
