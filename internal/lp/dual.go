package lp

import (
	"math"

	"optrouter/internal/obs"
)

// This file implements warm-started reoptimization. A branch-and-bound child
// differs from its parent only in variable bounds, so the parent's optimal
// basis is structurally valid for the child: after refactorizing it, basic
// variables may sit outside their (tightened) bounds, and bounded
// dual-simplex pivots restore primal feasibility far faster than the cold
// two-phase method (no artificials, no phase 1). The warm path is strictly
// best-effort: every exit that cannot be certified — stale shape, singular
// basis, pivot-cap exhaustion, numerically gray infeasibility — falls back
// to the cold solve, so warm starts can never change an answer.

// reSolve reoptimizes a cached engine in place after bound changes on its
// problem: bounds are reloaded, invalidated rest sides re-derived, basic
// values refreshed under the retained (already factorized) basis inverse, and
// primal feasibility restored by dual pivots. This is the fast warm path —
// unlike the snapshot path below it pays no column rebuild and no O(m^3)
// refactorization, which otherwise dominates small branch-and-bound node LPs.
// The engine's current basis need not match Options.WarmStart: any basis of
// the same problem shape is a valid starting point, and the final primal
// phase-2 pass certifies optimality regardless of where the solve started.
func (s *simplex) reSolve(opt Options) (Result, bool) {
	s.opt = opt.withDefaults(s.m, s.n)
	s.iters = 0
	s.stats = Stats{WarmStarted: true}
	if s.lu != nil {
		s.noteFactorization() // carry the retained factorization's size stats
	}
	s.bland = false
	s.stall = 0
	s.clock = nil
	if s.opt.CollectPhases {
		s.clock = obs.NewPhaseClock()
	}
	s.clock.Enter(PhaseBuild)

	// Reload the (possibly changed) structural bounds; slack and frozen
	// artificial bounds are untouched by the caller.
	copy(s.lo[:s.n], s.p.lo)
	copy(s.hi[:s.n], s.p.hi)
	for j := 0; j < s.n; j++ {
		switch s.state[j] {
		case stAtLower:
			if math.IsInf(s.lo[j], -1) {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		case stAtUpper:
			if math.IsInf(s.hi[j], 1) {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		case stFreeZero:
			if s.lo[j] > 0 || s.hi[j] < 0 {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		}
	}
	s.clock.Enter(PhaseRefactorize)
	s.refresh()

	st, ok := s.dualRestore()
	if !ok {
		s.clock.Stop()
		return Result{}, false
	}
	if st != Optimal {
		return s.result(st), true
	}
	pst := s.iterate(s.cost[:s.ncols])
	if pst == IterLimit {
		s.clock.Stop()
		return Result{}, false
	}
	return s.primalResult(pst), true
}

// warmSolve attempts a warm-started solve from a basis snapshot, building a
// fresh simplex around it. done=false means the caller must run the cold
// path.
func warmSolve(p *Problem, opt Options) (Result, bool) {
	m, n := len(p.rows), len(p.cost)
	bs := opt.WarmStart
	if bs == nil || bs.n != n || bs.m != m {
		return Result{}, false
	}
	s := &simplex{p: p, opt: opt.withDefaults(m, n), m: m, n: n, mutGen: p.mutGen}
	if s.opt.CollectPhases {
		s.clock = obs.NewPhaseClock()
	}
	s.clock.Enter(PhaseBuild)
	s.buildColumns()
	if !s.loadBasis(bs) {
		s.clock.Stop()
		return Result{}, false
	}
	s.stats.WarmStarted = true

	st, ok := s.dualRestore()
	if !ok {
		s.clock.Stop()
		return Result{}, false
	}
	if st != Optimal {
		// Infeasibility proven by a tableau-row certificate (see dualRestore).
		return s.result(st), true
	}

	// Primal feasible: certify optimality with ordinary phase-2 iterations.
	// (Correctness rests entirely on this final primal pass — the dual pivots
	// above only steer the basis, they prove nothing about optimality.)
	pst := s.iterate(s.cost[:s.ncols])
	if pst == IterLimit {
		// The warm attempt consumed budget the cold solve would still have.
		s.clock.Stop()
		return Result{}, false
	}
	res := s.primalResult(pst)
	if opt.SnapshotBasis && res.Status == Optimal {
		p.engine = s // later warm solves reoptimize this engine in place
	}
	return res, true
}

// loadBasis installs a snapshot basis over freshly built columns: nonbasic
// rest sides are re-derived where the new bounds invalidate them, the basis
// is checked for duplicates, and the basis inverse is rebuilt from scratch.
// Returns false if the snapshot is stale or the basis matrix is singular.
func (s *simplex) loadBasis(bs *Basis) bool {
	nm := s.ncols
	s.state = make([]varState, nm, nm+s.m)
	copy(s.state, bs.state)
	for j := 0; j < nm; j++ {
		switch s.state[j] {
		case stAtLower:
			if math.IsInf(s.lo[j], -1) {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		case stAtUpper:
			if math.IsInf(s.hi[j], 1) {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		}
	}
	s.basis = make([]int, s.m)
	seen := make([]bool, nm)
	for i := 0; i < s.m; i++ {
		j := int(bs.basis[i])
		if j < 0 || j >= nm || seen[j] {
			return false
		}
		seen[j] = true
		s.basis[i] = j
		s.state[j] = stBasic
	}
	for j := 0; j < nm; j++ {
		if s.state[j] == stBasic && !seen[j] {
			s.state[j] = restState(s.lo[j], s.hi[j])
		}
	}
	s.xB = make([]float64, s.m)
	s.growWorkspaces()
	if s.opt.Engine == EngineDense {
		s.binv = make([]float64, s.m*s.m)
	} else {
		s.lu = &luFactor{}
	}
	return s.refactorize()
}

// dualRestore pivots until every basic variable is within its bounds.
// Returns (Optimal, true) when primal feasibility is reached, (Infeasible,
// true) when a tableau row certifies that no solution exists — the row's
// basic variable violates a bound and no nonbasic movement can reduce the
// violation, a Farkas-style certificate that needs no dual feasibility —
// and ok=false when the path must fall back (pivot cap, singular basis,
// or an infeasibility verdict resting on borderline pivot magnitudes).
func (s *simplex) dualRestore() (Status, bool) {
	m := s.m
	tol := s.opt.Tol
	cost := s.cost[:s.ncols]
	maxIters := 40*m + 400
	for it := 0; ; it++ {
		if it >= maxIters || s.iters >= s.opt.MaxIters {
			return 0, false
		}
		s.clock.Enter(PhasePricing)

		// Leaving row: the largest bound violation among basic variables.
		r := -1
		worst := tol
		above := false
		for i := 0; i < m; i++ {
			bj := s.basis[i]
			if v := s.xB[i] - s.hi[bj]; v > worst {
				worst, r, above = v, i, true
			}
			if v := s.lo[bj] - s.xB[i]; v > worst {
				worst, r, above = v, i, false
			}
		}
		if r == -1 {
			return Optimal, true // primal feasible
		}
		s.iters++
		s.stats.DualIters++

		// Duals y = cB' B^{-1}, for entering-column reduced costs, and the
		// tableau row rho = e_r' B^{-1} for the ratio-test alphas (both BTRANs
		// under the sparse engine).
		s.computeDuals(cost)
		rho := s.binvRow(r)
		s.clock.Enter(PhaseRatioTest)

		// Dual ratio test: among nonbasic columns whose movement off their
		// rest side reduces the violation, pick the smallest |d|/|alpha|
		// (the first reduced cost driven to zero), breaking ties toward the
		// larger pivot for stability, then the lower index for determinism.
		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		shaky := false
		for j := 0; j < s.ncols; j++ {
			st := s.state[j]
			if st == stBasic {
				continue
			}
			if s.hi[j]-s.lo[j] < 1e-13 && st != stFreeZero {
				continue // fixed variable cannot move
			}
			alpha := 0.0
			for k, i := range s.colIdx[j] {
				alpha += rho[i] * s.colVal[j][k]
			}
			var eligible, wouldHelp bool
			switch {
			case st == stFreeZero:
				eligible = math.Abs(alpha) > tol
				wouldHelp = math.Abs(alpha) > 1e-12
			case above: // basic above its upper bound: must decrease
				eligible = (st == stAtLower && alpha > tol) || (st == stAtUpper && alpha < -tol)
				wouldHelp = (st == stAtLower && alpha > 1e-12) || (st == stAtUpper && alpha < -1e-12)
			default: // basic below its lower bound: must increase
				eligible = (st == stAtLower && alpha < -tol) || (st == stAtUpper && alpha > tol)
				wouldHelp = (st == stAtLower && alpha < -1e-12) || (st == stAtUpper && alpha > 1e-12)
			}
			if !eligible {
				if wouldHelp {
					shaky = true // certificate would rest on a borderline alpha
				}
				continue
			}
			d := cost[j]
			for k, i := range s.colIdx[j] {
				d -= s.y[i] * s.colVal[j][k]
			}
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && math.Abs(alpha) > math.Abs(bestAlpha)) {
				bestRatio, enter, bestAlpha = ratio, j, alpha
			}
		}
		if enter == -1 {
			if shaky {
				return 0, false // let the cold solve decide
			}
			return Infeasible, true
		}
		s.clock.Enter(PhasePivot)

		// Full pivot column w = B^{-1} A_enter (an FTRAN).
		s.computePivotColumn(enter)
		piv := s.w[r]
		if math.Abs(piv) < 1e-11 {
			// The sparse alpha and the dense recomputation disagree badly:
			// rebuild the inverse and retry the row.
			if !s.refactorize() {
				return 0, false
			}
			continue
		}

		// The leaving variable lands exactly on its violated bound.
		bj := s.basis[r]
		beta := s.lo[bj]
		if above {
			beta = s.hi[bj]
		}
		dx := (s.xB[r] - beta) / piv
		enterVal := s.nbValue(enter) + dx
		for _, i := range s.wv.ind {
			s.xB[i] -= s.w[i] * dx
		}
		s.stats.Pivots++
		if above {
			s.state[bj] = stAtUpper
		} else {
			s.state[bj] = stAtLower
		}
		s.basis[r] = enter
		s.state[enter] = stBasic
		s.xB[r] = enterVal
		if !s.updateBasisRep(r) {
			return 0, false
		}
		if s.iters%256 == 0 {
			s.refresh()
		}
	}
}
