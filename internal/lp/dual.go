package lp

import (
	"math"

	"optrouter/internal/obs"
)

// This file implements warm-started reoptimization. A branch-and-bound child
// differs from its parent only in variable bounds, so the parent's optimal
// basis is structurally valid for the child: after refactorizing it, basic
// variables may sit outside their (tightened) bounds, and bounded
// dual-simplex pivots restore primal feasibility far faster than the cold
// two-phase method (no artificials, no phase 1). The warm path is strictly
// best-effort: every exit that cannot be certified — stale shape, singular
// basis, pivot-cap exhaustion, numerically gray infeasibility — falls back
// to the cold solve, so warm starts can never change an answer.

// reSolve reoptimizes a cached engine in place after bound changes on its
// problem: bounds are reloaded, invalidated rest sides re-derived, basic
// values refreshed under the retained (already factorized) basis inverse, and
// primal feasibility restored by dual pivots. This is the fast warm path —
// unlike the snapshot path below it pays no column rebuild and no O(m^3)
// refactorization, which otherwise dominates small branch-and-bound node LPs.
// The engine's current basis need not match Options.WarmStart: any basis of
// the same problem shape is a valid starting point, and the final primal
// phase-2 pass certifies optimality regardless of where the solve started.
func (s *simplex) reSolve(opt Options) (Result, bool) {
	s.opt = opt.withDefaults(s.m, s.n)
	s.setPricing(opt.Pricing) // invalidates maintained state on rule change
	s.iters = 0
	s.stats = Stats{WarmStarted: true}
	if s.lu != nil {
		s.noteFactorization() // carry the retained factorization's size stats
	}
	s.bland = false
	s.stall = 0
	s.clock = nil
	if s.opt.CollectPhases {
		s.clock = obs.NewPhaseClock()
	}
	s.clock.Enter(PhaseBuild)

	// Reload the (possibly changed) structural bounds; slack and frozen
	// artificial bounds are untouched by the caller.
	copy(s.lo[:s.n], s.p.lo)
	copy(s.hi[:s.n], s.p.hi)
	for j := 0; j < s.n; j++ {
		switch s.state[j] {
		case stAtLower:
			if math.IsInf(s.lo[j], -1) {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		case stAtUpper:
			if math.IsInf(s.hi[j], 1) {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		case stFreeZero:
			if s.lo[j] > 0 || s.hi[j] < 0 {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		}
	}
	s.clock.Enter(PhaseRefactorize)
	s.refresh()

	st, ok := s.dualRestore()
	if !ok {
		s.clock.Stop()
		return Result{}, false
	}
	if st != Optimal {
		return s.result(st), true
	}
	pst := s.iterate(s.cost[:s.ncols])
	if pst == IterLimit {
		s.clock.Stop()
		return Result{}, false
	}
	return s.primalResult(pst), true
}

// warmSolve attempts a warm-started solve from a basis snapshot, building a
// fresh simplex around it. done=false means the caller must run the cold
// path.
func warmSolve(p *Problem, opt Options) (Result, bool) {
	m, n := len(p.rows), len(p.cost)
	bs := opt.WarmStart
	if bs == nil || bs.n != n || bs.m != m {
		return Result{}, false
	}
	s := &simplex{p: p, opt: opt.withDefaults(m, n), m: m, n: n, mutGen: p.mutGen}
	if s.opt.CollectPhases {
		s.clock = obs.NewPhaseClock()
	}
	s.setPricing(opt.Pricing)
	s.clock.Enter(PhaseBuild)
	s.buildColumns()
	if !s.loadBasis(bs) {
		s.clock.Stop()
		return Result{}, false
	}
	s.stats.WarmStarted = true

	st, ok := s.dualRestore()
	if !ok {
		s.clock.Stop()
		return Result{}, false
	}
	if st != Optimal {
		// Infeasibility proven by a tableau-row certificate (see dualRestore).
		return s.result(st), true
	}

	// Primal feasible: certify optimality with ordinary phase-2 iterations.
	// (Correctness rests entirely on this final primal pass — the dual pivots
	// above only steer the basis, they prove nothing about optimality.)
	pst := s.iterate(s.cost[:s.ncols])
	if pst == IterLimit {
		// The warm attempt consumed budget the cold solve would still have.
		s.clock.Stop()
		return Result{}, false
	}
	res := s.primalResult(pst)
	if opt.SnapshotBasis && res.Status == Optimal {
		p.engine = s // later warm solves reoptimize this engine in place
	}
	return res, true
}

// loadBasis installs a snapshot basis over freshly built columns: nonbasic
// rest sides are re-derived where the new bounds invalidate them, the basis
// is checked for duplicates, and the basis inverse is rebuilt from scratch.
// Returns false if the snapshot is stale or the basis matrix is singular.
func (s *simplex) loadBasis(bs *Basis) bool {
	nm := s.ncols
	s.state = make([]varState, nm, nm+s.m)
	copy(s.state, bs.state)
	for j := 0; j < nm; j++ {
		switch s.state[j] {
		case stAtLower:
			if math.IsInf(s.lo[j], -1) {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		case stAtUpper:
			if math.IsInf(s.hi[j], 1) {
				s.state[j] = restState(s.lo[j], s.hi[j])
			}
		}
	}
	s.basis = make([]int, s.m)
	seen := make([]bool, nm)
	for i := 0; i < s.m; i++ {
		j := int(bs.basis[i])
		if j < 0 || j >= nm || seen[j] {
			return false
		}
		seen[j] = true
		s.basis[i] = j
		s.state[j] = stBasic
	}
	for j := 0; j < nm; j++ {
		if s.state[j] == stBasic && !seen[j] {
			s.state[j] = restState(s.lo[j], s.hi[j])
		}
	}
	s.xB = make([]float64, s.m)
	s.growWorkspaces()
	if s.opt.Engine == EngineDense {
		s.binv = make([]float64, s.m*s.m)
	} else {
		s.lu = &luFactor{ftMode: s.opt.Update.resolve() == UpdateFT}
	}
	return s.refactorize()
}

// dualRestore pivots until every basic variable is within its bounds.
// Returns (Optimal, true) when primal feasibility is reached, (Infeasible,
// true) when a tableau row certifies that no solution exists — the row's
// basic variable violates a bound and no nonbasic movement can reduce the
// violation, a Farkas-style certificate that needs no dual feasibility —
// and ok=false when the path must fall back (pivot cap, singular basis,
// or an infeasibility verdict resting on borderline pivot magnitudes).
//
// Like the primal loop, the restore is rule-dispatched: PricingDantzig keeps
// the legacy restore (full duals + a per-column dot-product sweep every
// pivot) as the differential reference; the other rules run the fast restore
// below — incremental reduced costs, ratio-test alphas accumulated
// row-driven over the pivot row's nonzero pattern, weighted row selection,
// and a bound-flipping ratio test. Both restores are only basis steering:
// the final primal pass in reSolve/warmSolve certifies every answer.
func (s *simplex) dualRestore() (Status, bool) {
	if s.pr.rule == PricingDantzig {
		return s.dualRestoreClassic()
	}
	return s.dualRestoreFast()
}

func (s *simplex) dualRestoreClassic() (Status, bool) {
	s.pr.valid = false // classic pivots do not maintain reduced costs
	m := s.m
	tol := s.opt.Tol
	cost := s.cost[:s.ncols]
	maxIters := s.dualIterCap()
	for it := 0; ; it++ {
		if it >= maxIters || s.iters >= s.opt.MaxIters {
			return 0, false
		}
		s.clock.Enter(PhasePricing)

		// Leaving row: the largest bound violation among basic variables.
		r := -1
		worst := tol
		above := false
		for i := 0; i < m; i++ {
			bj := s.basis[i]
			if v := s.xB[i] - s.hi[bj]; v > worst {
				worst, r, above = v, i, true
			}
			if v := s.lo[bj] - s.xB[i]; v > worst {
				worst, r, above = v, i, false
			}
		}
		if r == -1 {
			return Optimal, true // primal feasible
		}
		s.iters++
		s.stats.DualIters++

		// Duals y = cB' B^{-1}, for entering-column reduced costs, and the
		// tableau row rho = e_r' B^{-1} for the ratio-test alphas (both BTRANs
		// under the sparse engine).
		s.computeDuals(cost)
		rho := s.binvRow(r)
		s.clock.Enter(PhaseRatioTest)

		// Dual ratio test: among nonbasic columns whose movement off their
		// rest side reduces the violation, pick the smallest |d|/|alpha|
		// (the first reduced cost driven to zero), breaking ties toward the
		// larger pivot for stability, then the lower index for determinism.
		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		shaky := false
		for j := 0; j < s.ncols; j++ {
			st := s.state[j]
			if st == stBasic {
				continue
			}
			if s.hi[j]-s.lo[j] < 1e-13 && st != stFreeZero {
				continue // fixed variable cannot move
			}
			alpha := 0.0
			for k, i := range s.colIdx[j] {
				alpha += rho[i] * s.colVal[j][k]
			}
			var eligible, wouldHelp bool
			switch {
			case st == stFreeZero:
				eligible = math.Abs(alpha) > tol
				wouldHelp = math.Abs(alpha) > 1e-12
			case above: // basic above its upper bound: must decrease
				eligible = (st == stAtLower && alpha > tol) || (st == stAtUpper && alpha < -tol)
				wouldHelp = (st == stAtLower && alpha > 1e-12) || (st == stAtUpper && alpha < -1e-12)
			default: // basic below its lower bound: must increase
				eligible = (st == stAtLower && alpha < -tol) || (st == stAtUpper && alpha > tol)
				wouldHelp = (st == stAtLower && alpha < -1e-12) || (st == stAtUpper && alpha > 1e-12)
			}
			if !eligible {
				if wouldHelp {
					shaky = true // certificate would rest on a borderline alpha
				}
				continue
			}
			d := cost[j]
			for k, i := range s.colIdx[j] {
				d -= s.y[i] * s.colVal[j][k]
			}
			ratio := math.Abs(d) / math.Abs(alpha)
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && math.Abs(alpha) > math.Abs(bestAlpha)) {
				bestRatio, enter, bestAlpha = ratio, j, alpha
			}
		}
		if enter == -1 {
			if shaky {
				return 0, false // let the cold solve decide
			}
			return Infeasible, true
		}
		s.clock.Enter(PhasePivot)

		// Full pivot column w = B^{-1} A_enter (an FTRAN).
		s.computePivotColumn(enter)
		piv := s.w[r]
		if math.Abs(piv) < 1e-11 {
			// The sparse alpha and the dense recomputation disagree badly:
			// rebuild the inverse and retry the row.
			s.stats.RefactorPivotQuality++
			if !s.refactorize() {
				return 0, false
			}
			continue
		}

		// The leaving variable lands exactly on its violated bound.
		bj := s.basis[r]
		beta := s.lo[bj]
		if above {
			beta = s.hi[bj]
		}
		dx := (s.xB[r] - beta) / piv
		enterVal := s.nbValue(enter) + dx
		for _, i := range s.wv.ind {
			s.xB[i] -= s.w[i] * dx
		}
		s.stats.Pivots++
		if above {
			s.state[bj] = stAtUpper
		} else {
			s.state[bj] = stAtLower
		}
		s.basis[r] = enter
		s.state[enter] = stBasic
		s.xB[r] = enterVal
		if !s.updateBasisRep(r) {
			return 0, false
		}
		if s.iters%256 == 0 {
			s.refresh()
		}
	}
}

// dualRestoreFast is the fast dual restore used by the incremental pricing
// rules. Three differences from the classic restore, none of which affect
// correctness (the primal certify pass does):
//
//   - Reduced costs are maintained incrementally (pricing.go) instead of
//     being recomputed via a BTRAN of the basic costs every pivot — the
//     pivot-row BTRAN that the ratio test needs anyway is the only one left.
//   - The ratio-test alphas come from one row-driven accumulation over the
//     pivot row's nonzero pattern (rowTimesA), so the sweep visits only
//     columns that intersect the row instead of dotting every column.
//   - The leaving row is chosen by weighted violation (dual devex weights,
//     or exact dual steepest-edge row norms under PricingSteepest), and a
//     bound-flipping ratio test lets one pivot step through a run of boxed
//     breakpoints — the flips are applied with a single combined FTRAN and
//     counted in Stats.DualBoundFlips.
func (s *simplex) dualRestoreFast() (Status, bool) {
	m := s.m
	tol := s.opt.Tol
	cost := s.cost[:s.ncols]
	pr := &s.pr

	// Fresh dual reference framework for this restore.
	dw := s.dw[:m]
	for i := range dw {
		dw[i] = 1
	}
	if s.ncols > 0 && (!pr.valid || pr.costPtr != &cost[0]) {
		s.resyncPricing(cost)
	}

	maxIters := s.dualIterCap()
	for it := 0; ; it++ {
		if it >= maxIters || s.iters >= s.opt.MaxIters {
			return 0, false
		}
		s.clock.Enter(PhasePricing)

		// Leaving row: the largest weighted bound violation.
		r := -1
		worst := 0.0
		above := false
		viol := 0.0
		for i := 0; i < m; i++ {
			bj := s.basis[i]
			if v := s.xB[i] - s.hi[bj]; v > tol {
				if sc := v * v / dw[i]; sc > worst {
					worst, r, above, viol = sc, i, true, v
				}
			}
			if v := s.lo[bj] - s.xB[i]; v > tol {
				if sc := v * v / dw[i]; sc > worst {
					worst, r, above, viol = sc, i, false, v
				}
			}
		}
		if r == -1 {
			return Optimal, true // primal feasible
		}
		s.iters++
		s.stats.DualIters++

		// Pivot row rho = e_r' B^{-1} (one BTRAN), then every ratio-test
		// alpha in one row-driven accumulation over rho's pattern. Columns
		// outside the pattern have alpha = 0 and can be neither eligible nor
		// shaky, so the sweep below visits only the touched columns.
		s.binvRow(r)
		s.rowTimesA(&s.rhov, &pr.alphaAcc)
		s.clock.Enter(PhaseRatioTest)

		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		shaky := false
		s.bfJ = s.bfJ[:0]
		s.bfRatio = s.bfRatio[:0]
		s.bfAlpha = s.bfAlpha[:0]
		for _, j32 := range pr.alphaAcc.ind {
			j := int(j32)
			st := s.state[j]
			if st == stBasic {
				continue
			}
			if s.hi[j]-s.lo[j] < 1e-13 && st != stFreeZero {
				continue // fixed variable cannot move
			}
			alpha := pr.alphaAcc.val[j32]
			var eligible, wouldHelp bool
			switch {
			case st == stFreeZero:
				eligible = math.Abs(alpha) > tol
				wouldHelp = math.Abs(alpha) > 1e-12
			case above: // basic above its upper bound: must decrease
				eligible = (st == stAtLower && alpha > tol) || (st == stAtUpper && alpha < -tol)
				wouldHelp = (st == stAtLower && alpha > 1e-12) || (st == stAtUpper && alpha < -1e-12)
			default: // basic below its lower bound: must increase
				eligible = (st == stAtLower && alpha < -tol) || (st == stAtUpper && alpha > tol)
				wouldHelp = (st == stAtLower && alpha < -1e-12) || (st == stAtUpper && alpha > 1e-12)
			}
			if !eligible {
				if wouldHelp {
					shaky = true // certificate would rest on a borderline alpha
				}
				continue
			}
			ratio := math.Abs(pr.d[j]) / math.Abs(alpha)
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && math.Abs(alpha) > math.Abs(bestAlpha)) {
				bestRatio, enter, bestAlpha = ratio, j, alpha
			}
			s.bfJ = append(s.bfJ, j32)
			s.bfRatio = append(s.bfRatio, ratio)
			s.bfAlpha = append(s.bfAlpha, alpha)
		}
		if enter == -1 {
			if shaky {
				return 0, false // let the cold solve decide
			}
			return Infeasible, true
		}

		// Bound-flipping ratio test (long-step dual simplex): walk the
		// breakpoints in ratio order; while the blocking variable is boxed
		// and flipping it to its other bound leaves the row still violated
		// (slope stays positive), flip it and move to the next breakpoint.
		// The breakpoint where the slope would die — or the first non-boxed
		// one — enters the basis instead.
		nflip := 0
		if len(s.bfJ) >= 2 {
			slope := viol
			remaining := len(s.bfJ)
			for nflip < 64 && remaining > 1 {
				k := -1
				br := math.Inf(1)
				ba := 0.0
				for q, rt := range s.bfRatio {
					if rt < br-1e-12 ||
						(rt < br+1e-12 && math.Abs(s.bfAlpha[q]) > math.Abs(ba)) {
						br, ba, k = rt, s.bfAlpha[q], q
					}
				}
				if k < 0 {
					break
				}
				j := int(s.bfJ[k])
				rng := s.hi[j] - s.lo[j]
				boxed := s.state[j] != stFreeZero &&
					!math.IsInf(s.lo[j], -1) && !math.IsInf(s.hi[j], 1)
				if !boxed || slope-math.Abs(ba)*rng <= tol {
					enter, bestAlpha = j, ba
					break
				}
				// Flip j through: consume its breakpoint and keep walking.
				s.bfRatio[k] = math.Inf(1)
				s.bfJ[k] = -s.bfJ[k] - 1 // mark flipped (bit-complement)
				slope -= math.Abs(ba) * rng
				remaining--
				nflip++
			}
			if nflip > 0 && remaining <= 1 {
				// Walked off the end: enter the last unconsumed breakpoint.
				for q, j32 := range s.bfJ {
					if j32 >= 0 && !math.IsInf(s.bfRatio[q], 1) {
						enter, bestAlpha = int(j32), s.bfAlpha[q]
					}
				}
			}
		}
		s.clock.Enter(PhasePivot)

		// Full pivot column w = B^{-1} A_enter (an FTRAN).
		s.computePivotColumn(enter)
		piv := s.w[r]
		if math.Abs(piv) < 1e-11 {
			// The sparse alpha and the dense recomputation disagree badly:
			// rebuild the inverse and retry the row (no flips applied yet).
			s.stats.RefactorPivotQuality++
			if !s.refactorize() {
				return 0, false
			}
			continue
		}

		// Verify the maintained reduced cost of the entering column against
		// its exact value (free given the FTRAN result); drift forces a
		// resync and a retry of the whole row.
		dq := cost[enter]
		for _, i := range s.wv.ind {
			dq -= cost[s.basis[i]] * s.w[i]
		}
		if math.Abs(dq-pr.d[enter]) > priceDriftTol*(1+math.Abs(dq)) {
			s.resyncPricing(cost)
			continue
		}
		pr.d[enter] = dq

		// Apply the accumulated bound flips with one combined FTRAN: the
		// basic values absorb B^{-1} * sum(a_j * delta_j). Reduced costs and
		// pricing weights are untouched — flips change no basis column.
		if nflip > 0 {
			s.applyBoundFlips()
		}

		// Fold the exchange into the maintained reduced costs (alphas are
		// already in the accumulator) and the dual row weights, both against
		// the old basis representation.
		bj := s.basis[r]
		s.pricingUpdate(cost, enter, r, bj, piv, dq, &s.rhov, true)
		s.dualWeightUpdate(r, piv)

		// The leaving variable lands exactly on its violated bound.
		beta := s.lo[bj]
		if above {
			beta = s.hi[bj]
		}
		dx := (s.xB[r] - beta) / piv
		enterVal := s.nbValue(enter) + dx
		for _, i := range s.wv.ind {
			s.xB[i] -= s.w[i] * dx
		}
		s.stats.Pivots++
		if above {
			s.state[bj] = stAtUpper
		} else {
			s.state[bj] = stAtLower
		}
		s.basis[r] = enter
		s.state[enter] = stBasic
		s.xB[r] = enterVal
		if !s.updateBasisRep(r) {
			return 0, false
		}
		if s.iters%256 == 0 {
			s.refresh()
			pr.valid = false // periodic resync curbs reduced-cost drift
		}
	}
}

// applyBoundFlips toggles every breakpoint marked flipped in s.bfJ to its
// opposite bound and folds the combined column movement into the basic
// values: xB -= B^{-1} * sum(a_j * delta_j), one FTRAN for the whole run.
func (s *simplex) applyBoundFlips() {
	s.av.reset()
	n := 0
	for _, j32 := range s.bfJ {
		if j32 >= 0 {
			continue
		}
		j := int(-j32 - 1)
		var delta float64
		if s.state[j] == stAtLower {
			delta = s.hi[j] - s.lo[j]
			s.state[j] = stAtUpper
		} else {
			delta = s.lo[j] - s.hi[j]
			s.state[j] = stAtLower
		}
		for k, i := range s.colIdx[j] {
			s.av.add(i, s.colVal[j][k]*delta)
		}
		n++
	}
	if n == 0 {
		return
	}
	s.stats.DualBoundFlips += n
	if s.lu != nil {
		prev := s.clockSub(PhaseFTRAN)
		s.lu.ftran(&s.av, &s.fv)
		s.stats.FTRANNnz += len(s.fv.ind)
		s.clockBack(prev)
		for _, i := range s.fv.ind {
			s.xB[i] -= s.fv.val[i]
		}
		return
	}
	m := s.m
	for _, k32 := range s.av.ind {
		v := s.av.val[k32]
		if v == 0 {
			continue
		}
		k := int(k32)
		for i := 0; i < m; i++ {
			s.xB[i] -= s.binv[i*m+k] * v
		}
	}
}

// dualWeightUpdate maintains the dual pricing weights across the exchange on
// row r. Under PricingSteepest the weights are exact dual steepest-edge row
// norms |B^{-1}_i|^2, updated with the extra FTRAN tau = B^{-1} rho the
// Forrest-Goldfarb recurrence needs; otherwise a devex-style reference
// update keeps them cheap approximations. Must run before updateBasisRep
// (rho, w and tau all live under the old representation).
func (s *simplex) dualWeightUpdate(r int, piv float64) {
	m := s.m
	dw := s.dw[:m]

	// Exact weight of the pivot row, free from rho itself.
	brExact := 0.0
	if s.lu != nil {
		for _, i := range s.rhov.ind {
			v := s.rhov.val[i]
			brExact += v * v
		}
	} else {
		for i := 0; i < m; i++ {
			v := s.rhov.val[i]
			brExact += v * v
		}
	}

	if (s.pr.rule == PricingSteepest && !s.pr.fellBack) || s.dualDSE {
		// tau = B^{-1} rho^T: the correction term of the exact update.
		var tau []float64
		if s.lu != nil {
			prev := s.clockSub(PhaseFTRAN)
			s.av.reset()
			for _, i := range s.rhov.ind {
				if v := s.rhov.val[i]; v != 0 {
					s.av.set(i, v)
				}
			}
			s.lu.ftran(&s.av, &s.tauv)
			s.stats.FTRANNnz += len(s.tauv.ind)
			s.clockBack(prev)
			tau = s.tauv.val
		} else {
			s.tauv.grow(m)
			tau = s.tauv.val
			for i := 0; i < m; i++ {
				sum := 0.0
				row := s.binv[i*m : i*m+m]
				for k := 0; k < m; k++ {
					sum += row[k] * s.rhov.val[k]
				}
				tau[i] = sum
			}
		}
		for _, i32 := range s.wv.ind {
			i := int(i32)
			if i == r {
				continue
			}
			eta := s.w[i] / piv
			b := dw[i] - 2*eta*tau[i] + eta*eta*brExact
			if b < 1e-10 {
				b = 1e-10
			}
			dw[i] = b
		}
	} else {
		for _, i32 := range s.wv.ind {
			i := int(i32)
			if i == r {
				continue
			}
			eta := s.w[i] / piv
			if b := eta * eta * brExact; b > dw[i] {
				dw[i] = b
			}
		}
	}
	b := brExact / (piv * piv)
	if b < 1e-10 {
		b = 1e-10
	}
	dw[r] = b
}
