package lp

// pricing.go is the pluggable pricing layer of the simplex engine
// (Options.Pricing). The legacy Dantzig rule — duals recomputed from scratch
// every iteration, full most-negative-reduced-cost sweep — is kept verbatim
// in simplex.go as the differential reference. The rules here share three
// mechanisms that between them remove the per-iteration BTRAN of the basic
// cost vector, the engine's dominant work item on the routing LPs:
//
//   - Incremental reduced costs: d_j = c_j - y·a_j is maintained across
//     pivots with the textbook update d'_j = d_j - (d_q/alpha_rq)·alpha_rj,
//     where the pivot-row alphas come from one hyper-sparse BTRAN of e_r —
//     usually far sparser than the basic-cost BTRAN it replaces. The
//     maintained value of the entering column is verified against the exact
//     FTRAN result before every pivot; drift forces a resync (one BTRAN) and
//     a re-price, and an "optimal" verdict is only ever issued on freshly
//     recomputed duals, so the maintenance is a pure work optimization.
//   - Weighted pricing: devex reference weights (PricingDevex, the
//     PricingAuto default) or projected steepest-edge gammas
//     (PricingSteepest) scale the entering score to |d_j|^2/w_j, cutting the
//     iteration count on degenerate warm-started node LPs. Steepest-edge
//     pays one extra BTRAN per pivot for exact updates and falls back to
//     devex — counted as a reference reset — when its maintained gamma for
//     the entering column disagrees with the exact one.
//   - Candidate-list partial pricing: each iteration first prices a small
//     retained list of attractive columns; only when the list yields no
//     eligible column does a full sweep over the maintained reduced costs
//     run (rebuilding the list). Iterations served by the list alone are
//     counted in Stats.CandidateHits.
//
// All of this is selection heuristics: any eligible entering column keeps
// the simplex exact, Bland's anti-cycling rule still takes over on stalls
// (routing through the legacy full sweep), and optimality/infeasibility
// verdicts never rest on maintained state.

const (
	// candListCap bounds the candidate list. Small enough that list pricing
	// is O(1) per iteration, large enough that rebuild sweeps are rare.
	candListCap = 48
	// devexWeightMax triggers a reference-framework reset: weights measured
	// against a framework this far in the past approximate nothing.
	devexWeightMax = 1e12
	// priceDriftTol is the relative disagreement between a maintained
	// reduced cost and its exact recomputation that forces a resync.
	priceDriftTol = 1e-7
	// steepestDriftFactor is the maintained-vs-exact gamma ratio that counts
	// as a steepest-edge breakdown (a reference reset).
	steepestDriftFactor = 16.0
	// steepestFallbackAfter is how many breakdowns a solve tolerates before
	// abandoning steepest-edge updates for devex ones.
	steepestFallbackAfter = 2
)

// colAccum is a stamped dense accumulator over columns: constant-time
// add/at/reset regardless of how many columns the previous use touched.
// Same idea as spVec in ftran.go, over the column space instead of rows.
type colAccum struct {
	val   []float64
	stamp []uint32
	epoch uint32
	ind   []int32
}

func (a *colAccum) grow(n int) {
	if len(a.val) >= n {
		return
	}
	a.val = make([]float64, n)
	a.stamp = make([]uint32, n)
	a.ind = make([]int32, 0, n)
	a.epoch = 0
}

func (a *colAccum) begin() {
	a.epoch++
	if a.epoch == 0 { // wrapped: stamps are ambiguous, clear them
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.epoch = 1
	}
	a.ind = a.ind[:0]
}

func (a *colAccum) add(j int32, v float64) {
	if a.stamp[j] != a.epoch {
		a.stamp[j] = a.epoch
		a.val[j] = 0
		a.ind = append(a.ind, j)
	}
	a.val[j] += v
}

func (a *colAccum) at(j int32) float64 {
	if a.stamp[j] == a.epoch {
		return a.val[j]
	}
	return 0
}

// pricer holds the maintained pricing state of one simplex engine. It lives
// on the engine (pooled, zero steady-state allocations) and survives warm
// reoptimizations: reduced costs depend only on the cost vector and the
// basis, both of which a bound-change warm start preserves.
type pricer struct {
	rule     Pricing // resolved concrete rule (never PricingAuto)
	fellBack bool    // steepest-edge weights broke down; devex updates from here on
	resets   int     // reference resets this engine (drives the fallback)

	// Maintained reduced costs, valid while costPtr identifies the cost
	// vector they were computed against (phase transitions switch vectors).
	d       []float64
	valid   bool
	costPtr *float64

	// Pricing weights per column: devex reference weights or steepest-edge
	// gammas, initialized to 1 (the devex reference framework).
	weight []float64

	alphaAcc colAccum // pivot-row alphas alpha_rj = rho·a_j
	tdotAcc  colAccum // steepest-edge tau·a_j accumulator

	cand      []int32   // candidate list (column indices)
	candScore []float64 // scores at insertion time (replacement policy only)
}

func (pr *pricer) grow(ncols int) {
	if len(pr.d) >= ncols {
		return
	}
	old := len(pr.weight)
	pr.d = append(pr.d, make([]float64, ncols-len(pr.d))...)
	pr.weight = append(pr.weight, make([]float64, ncols-old)...)
	for j := old; j < ncols; j++ {
		pr.weight[j] = 1
	}
	pr.alphaAcc.grow(ncols)
	pr.tdotAcc.grow(ncols)
	if cap(pr.cand) < candListCap {
		pr.cand = make([]int32, 0, candListCap)
		pr.candScore = make([]float64, 0, candListCap)
	}
}

// resetWeights starts a fresh reference framework (all weights 1) and
// records the reset.
func (s *simplex) resetWeights() {
	pr := &s.pr
	for j := range pr.weight {
		pr.weight[j] = 1
	}
	pr.resets++
	s.stats.ReferenceResets++
	if pr.rule == PricingSteepest && pr.resets > steepestFallbackAfter {
		pr.fellBack = true
	}
}

// setPricing installs the solve's pricing rule on the engine, invalidating
// maintained state when the rule changed between solves.
func (s *simplex) setPricing(rule Pricing) {
	r := rule.resolve()
	if s.pr.rule != r {
		s.pr.rule = r
		s.pr.valid = false
		s.pr.fellBack = false
		s.pr.resets = 0
		for j := range s.pr.weight {
			s.pr.weight[j] = 1
		}
		s.pr.cand = s.pr.cand[:0]
		s.pr.candScore = s.pr.candScore[:0]
	}
}

// eligibleDir returns the movement direction of a profitable entering
// column (+1 off its lower bound, -1 off its upper) or 0 when the reduced
// cost d does not make column state st eligible.
func eligibleDir(st varState, d, tol float64) float64 {
	switch st {
	case stAtLower:
		if d < -tol {
			return 1
		}
	case stAtUpper:
		if d > tol {
			return -1
		}
	case stFreeZero:
		if d < -tol {
			return 1
		}
		if d > tol {
			return -1
		}
	}
	return 0
}

// resyncPricing recomputes the duals (one BTRAN of the basic costs) and all
// reduced costs from scratch, re-validating the maintained state.
func (s *simplex) resyncPricing(cost []float64) {
	pr := &s.pr
	if s.ncols == 0 {
		pr.valid = false
		return
	}
	pr.grow(s.ncols)
	s.computeDuals(cost)
	y := s.y
	for j := 0; j < s.ncols; j++ {
		if s.state[j] == stBasic {
			pr.d[j] = 0
			continue
		}
		d := cost[j]
		for k, i := range s.colIdx[j] {
			d -= y[i] * s.colVal[j][k]
		}
		pr.d[j] = d
	}
	pr.valid = true
	pr.costPtr = &cost[0]
}

// rowTimesA accumulates vec·A over all engine columns (structural, slack,
// artificial) into acc, driven by the nonzeros of vec — a row vector in
// basis-row space (the pivot row rho, or the steepest-edge tau). Row-driven
// access means only columns actually intersecting vec's pattern are touched,
// which is what makes incremental pricing cheaper than a full sweep.
func (s *simplex) rowTimesA(vec *spVec, acc *colAccum) {
	acc.grow(s.ncols)
	acc.begin()
	val := vec.val
	n32 := int32(s.n)
	if s.lu != nil {
		for _, i := range vec.ind {
			v := val[i]
			if v == 0 {
				continue
			}
			r := &s.p.rows[i]
			for k, j := range r.idx {
				acc.add(j, v*r.val[k])
			}
			acc.add(n32+i, v) // slack column of row i
		}
	} else {
		// The dense engine tracks no nonzero list; sweep all rows.
		for i := 0; i < s.m; i++ {
			v := val[i]
			if v == 0 {
				continue
			}
			r := &s.p.rows[i]
			for k, j := range r.idx {
				acc.add(j, v*r.val[k])
			}
			acc.add(n32+int32(i), v)
		}
	}
	// Artificial columns are ±e_row; entries of val outside the tracked
	// nonzeros are guaranteed zero (see computeDuals), so this is exact.
	for j := s.n + s.m; j < s.ncols; j++ {
		i := s.colIdx[j][0]
		if v := val[i]; v != 0 {
			acc.add(int32(j), v*s.colVal[j][0])
		}
	}
}

// priceIncremental returns the entering column and direction under the
// maintained reduced costs: candidate list first, full sweep on a miss,
// resync-and-retry before ever declaring optimality. enter == -1 therefore
// always rests on freshly recomputed duals.
func (s *simplex) priceIncremental(cost []float64) (int, float64) {
	if s.ncols == 0 {
		return -1, 0 // empty problem (possible after heavy presolve)
	}
	pr := &s.pr
	tol := s.opt.Tol
	synced := false
	if !pr.valid || pr.costPtr != &cost[0] {
		s.resyncPricing(cost)
		synced = true
	}
	for {
		if e, dir := s.priceCandidates(tol); e >= 0 {
			s.stats.CandidateHits++
			return e, dir
		}
		if e, dir := s.priceSweep(tol); e >= 0 {
			return e, dir
		}
		if synced {
			return -1, 0
		}
		s.resyncPricing(cost)
		synced = true
	}
}

// priceCandidates prices only the retained candidate list, compacting dead
// entries (basic or fixed columns) in place. Returns -1 on a miss.
func (s *simplex) priceCandidates(tol float64) (int, float64) {
	pr := &s.pr
	live := pr.cand[:0]
	best := -1
	var bestDir, bestScore float64
	for _, j32 := range pr.cand {
		j := int(j32)
		st := s.state[j]
		if st == stBasic || (s.hi[j]-s.lo[j] < 1e-13 && st != stFreeZero) {
			continue
		}
		live = append(live, j32)
		d := pr.d[j]
		dir := eligibleDir(st, d, tol)
		if dir == 0 {
			continue
		}
		if score := d * d / pr.weight[j]; score > bestScore {
			best, bestDir, bestScore = j, dir, score
		}
	}
	pr.cand = live
	pr.candScore = pr.candScore[:len(live)]
	return best, bestDir
}

// priceSweep scans every column's maintained reduced cost — no per-column
// dot products, the sweep is O(ncols) flat — returning the best weighted
// score and rebuilding the candidate list with the runners-up.
func (s *simplex) priceSweep(tol float64) (int, float64) {
	pr := &s.pr
	pr.cand = pr.cand[:0]
	pr.candScore = pr.candScore[:0]
	best := -1
	var bestDir, bestScore float64
	minIdx := 0 // index of the weakest retained candidate
	for j := 0; j < s.ncols; j++ {
		st := s.state[j]
		if st == stBasic || (s.hi[j]-s.lo[j] < 1e-13 && st != stFreeZero) {
			continue
		}
		d := pr.d[j]
		dir := eligibleDir(st, d, tol)
		if dir == 0 {
			continue
		}
		score := d * d / pr.weight[j]
		if score > bestScore {
			best, bestDir, bestScore = j, dir, score
		}
		if len(pr.cand) < candListCap {
			pr.cand = append(pr.cand, int32(j))
			pr.candScore = append(pr.candScore, score)
			if score < pr.candScore[minIdx] {
				minIdx = len(pr.cand) - 1
			}
		} else if score > pr.candScore[minIdx] {
			pr.cand[minIdx] = int32(j)
			pr.candScore[minIdx] = score
			for k, sc := range pr.candScore {
				if sc < pr.candScore[minIdx] {
					minIdx = k
				}
			}
		}
	}
	return best, bestDir
}

// pricingUpdate folds a basis exchange — entering column enter with pivot
// column w/wv, leaving row r whose basic variable is out — into the
// maintained reduced costs and pricing weights. It must run against the OLD
// basis representation (before updateBasisRep) and before the basis/state
// arrays are mutated: the pivot row rho and the steepest-edge BTRAN are
// taken under the pre-exchange basis. dq is the exact reduced cost of the
// entering column; dual marks exchanges performed by the dual-simplex
// restore, which reuses its already-computed pivot row and skips the extra
// steepest-edge solve (weights degrade to devex-style updates there).
//
// rho non-nil means the caller (the dual path) already materialized the
// pivot row AND accumulated its alphas into alphaAcc; nil makes this
// function compute both (one hyper-sparse BTRAN of e_r).
func (s *simplex) pricingUpdate(cost []float64, enter, r, out int, piv, dq float64, rho *spVec, dual bool) {
	pr := &s.pr
	if !pr.valid || pr.costPtr != &cost[0] {
		return // maintained state is stale; the next price resyncs anyway
	}
	if rho == nil {
		s.binvRow(r)
		s.rowTimesA(&s.rhov, &pr.alphaAcc)
	}
	ratio := dq / piv

	// Steepest-edge exact update: gq is the exact gamma of the entering
	// column (1 + |w|^2, free from the FTRAN result), tau = B^-T w.
	steep := pr.rule == PricingSteepest && !pr.fellBack && !dual
	var gq float64
	if steep {
		gq = 1
		for _, i := range s.wv.ind {
			gq += s.w[i] * s.w[i]
		}
		if g := pr.weight[enter]; g > steepestDriftFactor*gq || gq > steepestDriftFactor*g {
			// The maintained gamma no longer resembles the exact one: the
			// reference information is gone. Reset (and eventually fall back
			// to devex — see resetWeights).
			s.resetWeights()
			steep = pr.rule == PricingSteepest && !pr.fellBack
		}
	}
	if steep {
		s.steepestTau()
		s.rowTimesA(&s.tauv, &pr.tdotAcc)
	}
	gqDev := pr.weight[enter]
	if gqDev < 1 {
		gqDev = 1
	}

	overflow := false
	for _, j32 := range pr.alphaAcc.ind {
		j := int(j32)
		a := pr.alphaAcc.val[j32]
		if j == enter {
			continue
		}
		if s.state[j] == stBasic {
			if j != out {
				continue // other basic columns keep d = 0
			}
			pr.d[j] -= ratio * a // out: alpha = 1, so d becomes -d_q/piv
			continue
		}
		pr.d[j] -= ratio * a
		eta := a / piv
		if steep {
			g := pr.weight[j] - 2*eta*pr.tdotAcc.at(j32) + eta*eta*gq
			if fl := 1 + eta*eta; g < fl {
				g = fl
			}
			pr.weight[j] = g
		} else {
			if g := eta * eta * gqDev; g > pr.weight[j] {
				pr.weight[j] = g
				if g > devexWeightMax {
					overflow = true
				}
			}
		}
	}
	pr.d[enter] = 0
	// The leaving variable's weight, from the exact transformed column of
	// out under the new basis: (e_r - w/w_r scaled) — see Forrest-Goldfarb.
	if steep {
		g := 1 + (gq-piv*piv)/(piv*piv)
		if fl := 1 + 1/(piv*piv); g < fl {
			g = fl
		}
		pr.weight[out] = g
	} else {
		g := gqDev / (piv * piv)
		if g < 1 {
			g = 1
		}
		pr.weight[out] = g
		if g > devexWeightMax {
			overflow = true
		}
	}
	if overflow {
		s.resetWeights()
	}
}

// steepestTau computes tau = B^-T w into s.tauv (sparse engine: a BTRAN of
// the pivot column; dense engine: an explicit transpose multiply).
func (s *simplex) steepestTau() {
	if s.lu != nil {
		prev := s.clockSub(PhaseBTRAN)
		s.av.reset()
		for _, i := range s.wv.ind {
			if v := s.w[i]; v != 0 {
				s.av.set(i, v)
			}
		}
		s.lu.btran(&s.av, &s.tauv)
		s.stats.BTRANNnz += len(s.tauv.ind)
		s.clockBack(prev)
		return
	}
	m := s.m
	s.tauv.grow(m)
	tau := s.tauv.val
	for k := 0; k < m; k++ {
		tau[k] = 0
	}
	for _, i32 := range s.wv.ind {
		i := int(i32)
		v := s.w[i]
		if v == 0 {
			continue
		}
		row := s.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			tau[k] += v * row[k]
		}
	}
	s.tauv.ind = s.tauv.ind[:0]
	for k := 0; k < m; k++ {
		if tau[k] != 0 {
			s.tauv.ind = append(s.tauv.ind, int32(k))
		}
	}
}
