package lp

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// pricing_test.go covers the pluggable pricing layer and its interaction
// with presolve: a differential fuzz over the full pricing-rule × presolve
// matrix against the dense Dantzig reference (with a JSON reproducer dump on
// any mismatch), a steady-state allocation pin for the incremental pricing
// path, and benchmarks for the pricing rules, the bound-flipping dual ratio
// test and the presolve pass itself.

// lpRepro is the JSON shape of a dumped fuzz reproducer: the full problem
// plus the configuration that disagreed with the reference. Bounds are
// strings so infinities survive encoding/json.
type lpRepro struct {
	Pricing   string     `json:"pricing"`
	Presolve  string     `json:"presolve"`
	Algorithm string     `json:"algorithm,omitempty"`
	Update    string     `json:"update,omitempty"`
	Detail    string     `json:"detail"`
	Vars      []reproVar `json:"vars"`
	Rows      []reproRow `json:"rows"`
}

type reproVar struct {
	Lo   string  `json:"lo"`
	Hi   string  `json:"hi"`
	Cost float64 `json:"cost"`
}

type reproRow struct {
	Coeffs []Coef  `json:"coeffs"`
	Sense  string  `json:"sense"`
	RHS    float64 `json:"rhs"`
}

func ffield(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// dumpReproducer writes the failing problem + config as JSON to a temp file
// and logs its path, so a fuzz failure is replayable without re-deriving the
// RNG state.
func dumpReproducer(t *testing.T, p *Problem, o Options, detail string) {
	t.Helper()
	repro := lpRepro{Pricing: o.Pricing.String(), Presolve: o.Presolve.String(),
		Algorithm: o.Algorithm.String(), Update: o.Update.String(), Detail: detail}
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.VarBounds(j)
		repro.Vars = append(repro.Vars, reproVar{Lo: ffield(lo), Hi: ffield(hi), Cost: p.Cost(j)})
	}
	for i := 0; i < p.NumRows(); i++ {
		coeffs, sense, rhs := p.Row(i)
		repro.Rows = append(repro.Rows, reproRow{Coeffs: coeffs, Sense: sense.String(), RHS: rhs})
	}
	data, err := json.MarshalIndent(&repro, "", " ")
	if err != nil {
		t.Logf("reproducer marshal failed: %v", err)
		return
	}
	f, err := os.CreateTemp("", "lp-pricing-repro-*.json")
	if err != nil {
		t.Logf("reproducer dump failed: %v", err)
		return
	}
	f.Write(data)
	f.Close()
	t.Logf("reproducer written to %s", f.Name())
}

// feasViolation reports the first primal feasibility violation of x, or ""
// — the non-fatal sibling of checkFeasible so the matrix fuzz can dump a
// reproducer before failing.
func feasViolation(p *Problem, x []float64) string {
	const tol = 1e-6
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.VarBounds(j)
		if x[j] < lo-tol || x[j] > hi+tol {
			return fmt.Sprintf("x[%d]=%g outside [%g,%g]", j, x[j], lo, hi)
		}
	}
	for i := 0; i < p.NumRows(); i++ {
		coeffs, sense, rhs := p.Row(i)
		ax := 0.0
		for _, c := range coeffs {
			ax += c.Val * x[c.Var]
		}
		switch sense {
		case LE:
			if ax > rhs+tol {
				return fmt.Sprintf("row %d: %g > %g", i, ax, rhs)
			}
		case GE:
			if ax < rhs-tol {
				return fmt.Sprintf("row %d: %g < %g", i, ax, rhs)
			}
		case EQ:
			if math.Abs(ax-rhs) > tol {
				return fmt.Sprintf("row %d: %g != %g", i, ax, rhs)
			}
		}
	}
	return ""
}

// TestPricingPresolveDifferential fuzzes random LPs through the full
// pricing rule × presolve mode × algorithm (primal/dual) × basis-update
// scheme (FT/PFI) matrix on the sparse engine and requires agreement with
// the dense Dantzig no-presolve reference on status, objective and primal
// feasibility. Any mismatch dumps a standalone JSON reproducer. This is the
// answer-preservation gate for the whole configurable LP engine: pricing,
// the update scheme and the dual algorithm only change the pivot sequence,
// never the optimum.
func TestPricingPresolveDifferential(t *testing.T) {
	var configs []Options
	for _, pr := range []Pricing{PricingDantzig, PricingDevex, PricingSteepest} {
		for _, ps := range []PresolveMode{PresolveOff, PresolveAuto} {
			for _, alg := range []Algorithm{AlgorithmPrimal, AlgorithmDual} {
				for _, up := range []Update{UpdateFT, UpdatePFI} {
					configs = append(configs, Options{Engine: EngineSparse,
						Pricing: pr, Presolve: ps, Algorithm: alg, Update: up})
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(20150608))
	trials := 250
	if testing.Short() {
		trials = 60
	}
	counts := map[Status]int{}
	for trial := 0; trial < trials; trial++ {
		p := randomLP(rng)
		ref := cloneProblem(p).Solve(Options{
			Engine: EngineDense, Pricing: PricingDantzig, Presolve: PresolveOff})
		counts[ref.Status]++
		for _, cfg := range configs {
			q := cloneProblem(p)
			r := q.Solve(cfg)
			fail := func(format string, args ...interface{}) {
				detail := fmt.Sprintf(format, args...)
				dumpReproducer(t, p, cfg, detail)
				t.Fatalf("trial %d [%v/%v/%v/%v]: %s", trial,
					cfg.Pricing, cfg.Presolve, cfg.Algorithm, cfg.Update, detail)
			}
			if r.Status != ref.Status {
				fail("status %v, reference %v", r.Status, ref.Status)
			}
			if r.Status != Optimal {
				continue
			}
			if math.Abs(r.Obj-ref.Obj) > 1e-6*(1+math.Abs(ref.Obj)) {
				fail("obj %.12g, reference %.12g", r.Obj, ref.Obj)
			}
			if v := feasViolation(p, r.X); v != "" {
				fail("infeasible primal: %s", v)
			}
		}
	}
	for _, st := range []Status{Optimal, Infeasible, Unbounded} {
		if counts[st] == 0 {
			t.Errorf("fuzz corpus never produced status %v — generator drifted", st)
		}
	}
}

// TestPricingWarmDive runs the warm-started branch-and-bound-style dive of
// TestEngineDifferentialWarm under every pricing rule and requires identical
// statuses and objectives — the dual restore path (including BFRT) must be
// answer-preserving too.
func TestPricingWarmDive(t *testing.T) {
	const n = 6
	run := func(pr Pricing) ([]Status, []float64) {
		p := assignmentLP(n)
		res := p.Solve(Options{SnapshotBasis: true, Pricing: pr})
		if res.Status != Optimal {
			t.Fatalf("pricing %v: root status %v", pr, res.Status)
		}
		basis := res.Basis
		var sts []Status
		var objs []float64
		for step := 0; step < 3*n; step++ {
			j := (step * 7) % (n * n)
			v := float64(step % 2)
			p.SetVarBounds(j, v, v)
			r := p.Solve(Options{WarmStart: basis, SnapshotBasis: true, Pricing: pr})
			sts = append(sts, r.Status)
			objs = append(objs, r.Obj)
			if r.Status != Optimal {
				break
			}
			if r.Basis != nil {
				basis = r.Basis
			}
		}
		return sts, objs
	}
	refSt, refObj := run(PricingDantzig)
	for _, pr := range []Pricing{PricingDevex, PricingSteepest} {
		sts, objs := run(pr)
		if len(sts) != len(refSt) {
			t.Fatalf("pricing %v: dive length %d, dantzig %d", pr, len(sts), len(refSt))
		}
		for k := range sts {
			if sts[k] != refSt[k] {
				t.Fatalf("pricing %v node %d: status %v, dantzig %v", pr, k, sts[k], refSt[k])
			}
			if sts[k] == Optimal && math.Abs(objs[k]-refObj[k]) > 1e-6 {
				t.Fatalf("pricing %v node %d: obj %g, dantzig %g", pr, k, objs[k], refObj[k])
			}
		}
	}
}

// TestPricingSteadyStateAllocs pins the warm-reoptimization allocation count
// under each pricing rule: the incremental pricing update, candidate list
// and devex/steepest weight recurrences must all run on pooled buffers, so
// steady-state node solves stay allocation-free per iteration.
func TestPricingSteadyStateAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	for _, pr := range []Pricing{PricingDantzig, PricingDevex, PricingSteepest} {
		p := assignmentLP(6)
		res := p.Solve(Options{SnapshotBasis: true, Pricing: pr})
		if res.Status != Optimal {
			t.Fatalf("pricing %v: root status %v", pr, res.Status)
		}
		basis := res.Basis
		step := 0
		avg := testing.AllocsPerRun(50, func() {
			j := (step * 7) % p.NumVars()
			v := float64(step % 2)
			p.SetVarBounds(j, v, v)
			r := p.Solve(Options{WarmStart: basis, SnapshotBasis: true, Pricing: pr})
			if r.Status == Optimal && r.Basis != nil {
				basis = r.Basis
			}
			step++
		})
		// The fixed per-solve overhead (basis snapshot, result assembly) is
		// ~a dozen allocations; anything scaling with iterations would land
		// far above this pin.
		if avg > 20 {
			t.Errorf("pricing %v: %.1f allocs per warm solve, want <= 20", pr, avg)
		}
	}
}

// pricingBenchLP builds a dense-ish transportation-style LP big enough that
// pricing dominates: n supply rows, n demand rows, n*n arcs with boxed
// capacities.
func pricingBenchLP(n int) *Problem {
	p := NewProblem()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.AddVariable(0, 2, float64(1+rng.Intn(20)))
		}
	}
	for i := 0; i < n; i++ {
		coeffs := make([]Coef, n)
		for j := 0; j < n; j++ {
			coeffs[j] = Coef{Var: i*n + j, Val: 1}
		}
		p.AddConstraint(coeffs, LE, float64(n)/2)
	}
	for j := 0; j < n; j++ {
		coeffs := make([]Coef, n)
		for i := 0; i < n; i++ {
			coeffs[i] = Coef{Var: i*n + j, Val: 1}
		}
		p.AddConstraint(coeffs, GE, 1)
	}
	return p
}

// BenchmarkPricing times a cold solve of the same LP under each pricing
// rule (presolve off, so the comparison isolates the pricing loop), and
// reports the iteration count the rule needed.
func BenchmarkPricing(b *testing.B) {
	for _, pr := range []Pricing{PricingDantzig, PricingDevex, PricingSteepest} {
		b.Run(pr.String(), func(b *testing.B) {
			iters := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pricingBenchLP(16)
				r := p.Solve(Options{Pricing: pr, Presolve: PresolveOff})
				if r.Status != Optimal {
					b.Fatalf("status %v", r.Status)
				}
				iters = r.Iters
			}
			b.ReportMetric(float64(iters), "simplex-iters")
		})
	}
}

// BenchmarkDualBoundFlip times the warm-started dual restore on a heavily
// boxed LP — the path where the bound-flipping ratio test pays — and
// reports how many flips the long-step test performed per reoptimization.
func BenchmarkDualBoundFlip(b *testing.B) {
	p := pricingBenchLP(12)
	res := p.Solve(Options{SnapshotBasis: true})
	if res.Status != Optimal {
		b.Fatalf("root status %v", res.Status)
	}
	basis := res.Basis
	flips := 0
	const block = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Tighten a sliding block of boxed arcs at once: the warm restore
		// then crosses many dual ratio-test breakpoints in one pass, which
		// is exactly the regime BFRT accelerates.
		at := (i * 7) % (p.NumVars() - block)
		for j := at; j < at+block; j++ {
			p.SetVarBounds(j, 1, 1)
		}
		r := p.Solve(Options{WarmStart: basis, SnapshotBasis: true})
		if r.Status == Optimal && r.Basis != nil {
			basis = r.Basis
		}
		flips += r.Stats.DualBoundFlips
		for j := at; j < at+block; j++ {
			p.SetVarBounds(j, 0, 2)
		}
	}
	b.ReportMetric(float64(flips)/float64(b.N), "flips/op")
}

// BenchmarkPresolve times a full presolve pass (reduction + stack build) on
// a problem with substantial reducible structure, reporting the reductions
// found.
func BenchmarkPresolve(b *testing.B) {
	p := pricingBenchLP(12)
	// Singleton rows, a fixed column and duplicate (redundant) rows give the
	// pass real work beyond scanning.
	for j := 0; j < 24; j++ {
		p.AddConstraint([]Coef{{Var: j, Val: 1}}, LE, 1)
	}
	p.SetVarBounds(5, 1, 1)
	rows, cols := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := PresolveProblem(p, PresolveOptions{})
		if ps == nil || ps.Infeasible {
			b.Fatal("presolve found no reduction")
		}
		rows, cols = ps.RowsRemoved, ps.ColsRemoved
	}
	b.ReportMetric(float64(rows), "rows-removed")
	b.ReportMetric(float64(cols), "cols-removed")
}
