// Package lp implements sparse linear programming with a bounded-variable,
// two-phase revised primal simplex method.
//
// Problems are stated in the form
//
//	minimize    c'x
//	subject to  row_i: a_i'x {<=,=,>=} b_i
//	            l <= x <= u
//
// where bounds may be infinite. The solver is artificial-based two-phase
// (big-M free) and uses Dantzig pricing with a Bland's-rule fallback for
// anti-cycling. It is the LP engine underneath the MILP branch-and-bound in
// package ilp, which in turn is this repository's stand-in for CPLEX in the
// OptRouter reproduction.
package lp

import (
	"fmt"
	"math"

	"optrouter/internal/obs"
)

// Inf is positive infinity, for unbounded variable bounds.
var Inf = math.Inf(1)

// Sense is the relational sense of a linear constraint.
type Sense int

const (
	LE Sense = iota // a'x <= b
	GE              // a'x >= b
	EQ              // a'x == b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Coef is one nonzero coefficient of a constraint row.
type Coef struct {
	Var int     // variable index
	Val float64 // coefficient
}

// Status is the outcome of an LP solve.
type Status int

const (
	// Optimal means a proven-optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system admits no solution.
	Infeasible
	// Unbounded means the objective is unbounded below over the feasible set.
	Unbounded
	// IterLimit means the iteration limit was exhausted before convergence.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "?"
}

// Problem is a mutable LP model. Variables and constraints are added
// incrementally; bounds may be changed between solves (as branch-and-bound
// does).
type Problem struct {
	cost  []float64
	lo    []float64
	hi    []float64
	names []string

	rows   []row
	senses []Sense
	rhs    []float64

	// engine caches the simplex state of the last snapshot-enabled solve so a
	// following warm-started solve can reoptimize in place — no column
	// rebuild, no basis refactorization. mutGen invalidates it on structural
	// mutations (new variables/rows, cost changes); bound changes keep it,
	// which is exactly the branch-and-bound access pattern. Solves using
	// SnapshotBasis/WarmStart are therefore not safe concurrently on a
	// shared Problem (plain Solve remains read-only).
	engine *simplex
	mutGen uint64
}

type row struct {
	idx []int32
	val []float64
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVariable adds a variable with bounds [lo, hi] and objective coefficient
// cost, returning its index.
func (p *Problem) AddVariable(lo, hi, cost float64) int {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds inverted: [%g, %g]", lo, hi))
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.names = append(p.names, "")
	p.mutGen++
	return len(p.cost) - 1
}

// SetName attaches a diagnostic name to variable j.
func (p *Problem) SetName(j int, name string) { p.names[j] = name }

// Name returns the diagnostic name of variable j (may be empty).
func (p *Problem) Name(j int) string {
	if p.names[j] != "" {
		return p.names[j]
	}
	return fmt.Sprintf("x%d", j)
}

// SetVarBounds replaces the bounds of variable j.
func (p *Problem) SetVarBounds(j int, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds inverted: [%g, %g]", lo, hi))
	}
	p.lo[j] = lo
	p.hi[j] = hi
}

// VarBounds returns the current bounds of variable j.
func (p *Problem) VarBounds(j int) (lo, hi float64) { return p.lo[j], p.hi[j] }

// SetCost replaces the objective coefficient of variable j.
func (p *Problem) SetCost(j int, c float64) {
	p.cost[j] = c
	p.mutGen++
}

// Cost returns the objective coefficient of variable j.
func (p *Problem) Cost(j int) float64 { return p.cost[j] }

// AddConstraint adds the row sum(coeffs) sense rhs and returns its index.
// Coefficients referencing the same variable twice are summed.
func (p *Problem) AddConstraint(coeffs []Coef, sense Sense, rhs float64) int {
	merged := map[int]float64{}
	for _, c := range coeffs {
		if c.Var < 0 || c.Var >= len(p.cost) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", c.Var))
		}
		merged[c.Var] += c.Val
	}
	var r row
	for _, c := range coeffs {
		v, seen := merged[c.Var]
		if !seen {
			continue // already emitted
		}
		delete(merged, c.Var)
		if v == 0 {
			continue
		}
		r.idx = append(r.idx, int32(c.Var))
		r.val = append(r.val, v)
	}
	p.rows = append(p.rows, r)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
	p.mutGen++
	return len(p.rows) - 1
}

// NumNonzeros returns the number of structural nonzero coefficients across
// all constraint rows (the model's matrix density, reported in benchmarks).
func (p *Problem) NumNonzeros() int {
	n := 0
	for i := range p.rows {
		n += len(p.rows[i].idx)
	}
	return n
}

// Row returns the coefficients, sense and rhs of constraint i.
func (p *Problem) Row(i int) (coeffs []Coef, sense Sense, rhs float64) {
	r := p.rows[i]
	coeffs = make([]Coef, len(r.idx))
	for k := range r.idx {
		coeffs[k] = Coef{Var: int(r.idx[k]), Val: r.val[k]}
	}
	return coeffs, p.senses[i], p.rhs[i]
}

// Engine selects the linear-algebra kernel behind the simplex iterations.
type Engine int

const (
	// EngineSparse (the default) represents the basis as a sparse LU
	// factorization with Markowitz pivot selection, updated by product-form
	// etas on each basis exchange, with FTRAN/BTRAN solves that exploit
	// right-hand-side hyper-sparsity. See factor.go / ftran.go.
	EngineSparse Engine = iota
	// EngineDense maintains an explicit dense basis inverse with O(m^2)
	// rank-1 pivot updates and O(m^3) refactorization. It is retained as the
	// differential-testing reference for EngineSparse; both engines are
	// answer-equivalent on every status and objective.
	EngineDense
)

func (e Engine) String() string {
	switch e {
	case EngineSparse:
		return "sparse"
	case EngineDense:
		return "dense"
	}
	return "?"
}

// ParseEngine parses a CLI engine name ("sparse", "dense").
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "sparse":
		return EngineSparse, nil
	case "dense":
		return EngineDense, nil
	}
	return 0, fmt.Errorf("lp: unknown engine %q (want sparse or dense)", s)
}

// Pricing selects the entering-variable rule of the primal simplex and the
// leaving-row/ratio-test variants of the warm-start dual pivots. See
// pricing.go for the machinery.
type Pricing int

const (
	// PricingAuto (the zero value, the default) resolves to PricingDevex:
	// devex reference weights with incrementally maintained reduced costs and
	// candidate-list partial pricing, plus dual devex row weights and the
	// bound-flipping ratio test on warm-start reoptimizations.
	PricingAuto Pricing = iota
	// PricingDantzig is the legacy rule kept as the differential-testing
	// reference: duals recomputed every iteration, full most-negative-
	// reduced-cost sweep, single-breakpoint dual ratio test.
	PricingDantzig
	// PricingDevex selects devex pricing explicitly (what PricingAuto does).
	PricingDevex
	// PricingSteepest is projected steepest-edge pricing with exact weight
	// updates (one extra BTRAN per primal pivot, one extra FTRAN per dual
	// pivot) and dual steepest-edge row weights. When the maintained weights
	// break down numerically the solve counts a reference reset and falls
	// back to devex updates for the rest of the solve.
	PricingSteepest
)

func (pr Pricing) String() string {
	switch pr {
	case PricingAuto:
		return "auto"
	case PricingDantzig:
		return "dantzig"
	case PricingDevex:
		return "devex"
	case PricingSteepest:
		return "steepest"
	}
	return "?"
}

// resolve maps PricingAuto to the concrete default rule.
func (pr Pricing) resolve() Pricing {
	if pr == PricingAuto {
		return PricingDevex
	}
	return pr
}

// ParsePricing parses a CLI pricing-rule name.
func ParsePricing(s string) (Pricing, error) {
	switch s {
	case "", "auto":
		return PricingAuto, nil
	case "dantzig":
		return PricingDantzig, nil
	case "devex":
		return PricingDevex, nil
	case "steepest":
		return PricingSteepest, nil
	}
	return 0, fmt.Errorf("lp: unknown pricing rule %q (want auto, dantzig, devex or steepest)", s)
}

// Update selects the basis-update scheme of the sparse engine: how a basis
// exchange is folded into the LU factorization without refactorizing.
type Update int

const (
	// UpdateAuto (the zero value) resolves to UpdateFT.
	UpdateAuto Update = iota
	// UpdateFT is the Forrest-Tomlin update: the spike column replaces the
	// leaving column inside U itself (with row/column permutation bookkeeping
	// and one sparse row-elimination eta per exchange), keeping U triangular
	// and compact. FTRAN/BTRAN stay near factorization density, which is what
	// lets the refactorization interval stretch without the solves paying for
	// it. See ft.go.
	UpdateFT
	// UpdatePFI is the product-form eta file: one dense-ish eta vector per
	// exchange applied after the LU solves. Kept as the differential-testing
	// reference for UpdateFT; both schemes are answer-equivalent.
	UpdatePFI
)

func (u Update) String() string {
	switch u {
	case UpdateAuto:
		return "auto"
	case UpdateFT:
		return "ft"
	case UpdatePFI:
		return "pfi"
	}
	return "?"
}

// resolve maps UpdateAuto to the concrete default scheme.
func (u Update) resolve() Update {
	if u == UpdateAuto {
		return UpdateFT
	}
	return u
}

// ParseUpdate parses a CLI basis-update scheme name.
func ParseUpdate(s string) (Update, error) {
	switch s {
	case "", "auto":
		return UpdateAuto, nil
	case "ft", "forrest-tomlin":
		return UpdateFT, nil
	case "pfi", "eta":
		return UpdatePFI, nil
	}
	return 0, fmt.Errorf("lp: unknown update scheme %q (want auto, ft or pfi)", s)
}

// Algorithm selects the simplex variant of a cold solve.
type Algorithm int

const (
	// AlgorithmAuto (the zero value) resolves to AlgorithmPrimal for plain
	// solves. The MILP layer (package ilp) resolves it to AlgorithmDual for
	// the root LP, where the all-slack dual start skips phase 1 entirely.
	AlgorithmAuto Algorithm = iota
	// AlgorithmPrimal is the bounded-variable two-phase primal simplex
	// (artificial-based phase 1), the engine's original algorithm.
	AlgorithmPrimal
	// AlgorithmDual runs the dual simplex as the primary algorithm: an
	// all-slack basis made dual feasible by resting each column on its
	// reduced-cost-signed bound (imposing temporary artificial bounds on
	// dual-infeasible free directions — the dual phase 1), then the
	// bound-flipping dual ratio test with exact dual steepest-edge row
	// weights until primal feasibility, and a final primal pass that
	// certifies optimality. Every uncertifiable exit falls back to the
	// primal algorithm, so the selection never changes an answer.
	AlgorithmDual
)

func (a Algorithm) String() string {
	switch a {
	case AlgorithmAuto:
		return "auto"
	case AlgorithmPrimal:
		return "primal"
	case AlgorithmDual:
		return "dual"
	}
	return "?"
}

// ParseAlgorithm parses a CLI algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "auto":
		return AlgorithmAuto, nil
	case "primal":
		return AlgorithmPrimal, nil
	case "dual":
		return AlgorithmDual, nil
	}
	return 0, fmt.Errorf("lp: unknown algorithm %q (want auto, primal or dual)", s)
}

// PresolveMode gates the LP presolve layer (presolve.go).
type PresolveMode int

const (
	// PresolveAuto (the zero value) applies presolve where it is transparent:
	// a cold solve without a basis-snapshot request reduces the model, solves
	// the reduction and postsolves the answer. Warm-started and snapshot
	// solves skip it, because a basis snapshot must match the caller's
	// problem shape. The MILP layer (package ilp) instead presolves once in
	// front of the root LP and searches the reduced space directly.
	PresolveAuto PresolveMode = iota
	// PresolveOff solves the model exactly as stated — the differential-
	// testing reference for the presolve layer.
	PresolveOff
)

func (pm PresolveMode) String() string {
	switch pm {
	case PresolveAuto:
		return "auto"
	case PresolveOff:
		return "off"
	}
	return "?"
}

// ParsePresolveMode parses a CLI presolve-mode name.
func ParsePresolveMode(s string) (PresolveMode, error) {
	switch s {
	case "", "auto", "on":
		return PresolveAuto, nil
	case "off", "none":
		return PresolveOff, nil
	}
	return 0, fmt.Errorf("lp: unknown presolve mode %q (want auto or off)", s)
}

// Result holds the outcome of a Solve.
type Result struct {
	Status Status
	Obj    float64 // objective value (valid when Status == Optimal)
	// X holds the primal values of the structural variables. The slice is
	// pooled on the solve engine: a later Solve of the same Problem (warm
	// reoptimization of the cached engine) overwrites it in place, so copy it
	// if it must outlive the next Solve call.
	X     []float64
	Iters int   // simplex iterations used (both phases)
	Stats Stats // detailed per-solve statistics
	// Duals holds the row dual values y (one per constraint, such that
	// c - A'y is the reduced-cost vector), populated on optimal solves when
	// Options.WantDuals is set. Solves routed through presolve recover the
	// duals of removed rows during postsolve. Like X, the slice may be pooled
	// on the solve engine; copy it if it must outlive the next Solve.
	Duals []float64
	// Basis is the final basis snapshot, populated on optimal solves when
	// Options.SnapshotBasis is set. It can seed a later warm-started solve
	// of the same problem shape via Options.WarmStart.
	Basis *Basis
}

// Basis is an opaque snapshot of a simplex basis: which column is basic in
// each row and where every nonbasic column rests. It is valid as a warm start
// for any problem with the same variables and constraints, regardless of
// bound changes — exactly the relationship between a branch-and-bound node
// and its children.
type Basis struct {
	n, m  int
	basis []int32
	state []varState
}

// Stats are per-solve simplex statistics, the LP layer's contribution to
// the solver observability stack (package obs).
type Stats struct {
	Iters            int  // total simplex iterations (both phases)
	Phase1Iters      int  // iterations spent driving artificials out
	Pivots           int  // basis exchanges performed
	BoundFlips       int  // nonbasic bound-to-bound moves (no basis change)
	Refactorizations int  // basis-inverse rebuilds (numerical recovery)
	DegeneratePivots int  // zero-step iterations (stalling indicator)
	WarmStarted      bool // solve reused a parent basis (no phase 1 ran)
	DualIters        int  // dual-simplex iterations restoring primal feasibility

	// Sparse-engine factorization statistics (zero under EngineDense).
	FactorNNZ int     // nonzeros of L+U at the last refactorization
	FillRatio float64 // FactorNNZ / basis-matrix nonzeros (fill-in factor)
	EtaPivots int     // basis exchanges absorbed by FT/PFI updates (no refactorization)
	FTRANNnz  int     // result nonzeros across all sparse FTRANs (deterministic work)
	BTRANNnz  int     // result nonzeros across all sparse BTRANs (deterministic work)

	// Refactorization attribution: why refactorizations beyond the initial
	// factorization fired. The four reasons partition the recovery paths of
	// both update schemes; initial/structural factorizations carry no reason,
	// so the sum can be below Refactorizations.
	RefactorEtaLen         int // update-count budget exhausted ("eta_len")
	RefactorFill           int // update-storage fill budget exhausted ("fill")
	RefactorPivotQuality   int // tiny pivot hit mid-iteration ("pivot_quality")
	RefactorUpdateRejected int // FT/PFI update rejected on spike-pivot quality ("update_rejected")

	// Pricing-layer statistics (pricing.go; zero under PricingDantzig).
	CandidateHits   int // pricing iterations served by the candidate list alone
	ReferenceResets int // pricing-weight reference resets (incl. steepest→devex fallbacks)
	DualBoundFlips  int // long-step dual ratio-test bound flips (BFRT)

	// Presolve statistics (presolve.go; populated when the solve was routed
	// through the presolve layer).
	PresolveRows int // constraint rows removed by presolve
	PresolveCols int // variable columns removed by presolve

	// Phases attributes the solve's wall time to the simplex internals —
	// PhaseBuild, PhasePricing, PhaseRatioTest, PhasePivot, PhaseRefactorize
	// — and is populated only when Options.CollectPhases is set (the
	// per-iteration clock reads are not free on tiny LPs).
	Phases obs.Breakdown
}

// Simplex phase names used in Stats.Phases.
const (
	PhaseBuild       = "build"       // column/basis assembly before iterating
	PhasePricing     = "pricing"     // dual computation + entering-column scan
	PhaseRatioTest   = "ratio_test"  // bounded ratio test for the leaving row
	PhasePivot       = "pivot"       // step application + basis-representation update
	PhaseRefactorize = "refactorize" // basis-representation rebuilds and refreshes
	PhaseFTRAN       = "ftran"       // sparse forward solves (pivot-column transforms)
	PhaseBTRAN       = "btran"       // sparse backward solves (duals, tableau rows)
)

// Options tunes the simplex solver.
type Options struct {
	// MaxIters bounds total simplex iterations; 0 means a generous default
	// derived from the problem size.
	MaxIters int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-9.
	Tol float64
	// CollectPhases enables per-phase wall-time attribution (Stats.Phases).
	// It costs a few clock reads per iteration, so it is opt-in.
	CollectPhases bool
	// WarmStart, if non-nil, seeds the solve from a basis snapshot taken on
	// a previous solve of the same problem shape (same variable and row
	// counts). The snapshot basis is refactorized and primal feasibility is
	// restored by bounded dual-simplex pivots, skipping phase 1 entirely; a
	// stale, singular or non-converging basis silently falls back to the
	// cold two-phase solve, so a warm start never changes the answer.
	WarmStart *Basis
	// SnapshotBasis records the final basis of an optimal solve in
	// Result.Basis for use as a later WarmStart.
	SnapshotBasis bool
	// Engine selects the basis linear-algebra kernel; the zero value is
	// EngineSparse. EngineDense is the slower reference implementation kept
	// for differential testing.
	Engine Engine
	// Pricing selects the entering-variable pricing rule; the zero value
	// (PricingAuto) is devex with candidate-list partial pricing and the
	// bound-flipping dual ratio test. PricingDantzig is the legacy reference
	// kept for differential testing.
	Pricing Pricing
	// Presolve gates the LP presolve layer; the zero value (PresolveAuto)
	// presolves cold solves transparently, PresolveOff solves the model as
	// stated (the differential reference).
	Presolve PresolveMode
	// Algorithm selects the simplex variant for cold solves; the zero value
	// (AlgorithmAuto) is the two-phase primal. AlgorithmDual starts from an
	// all-slack dual-feasible basis and drives it primal feasible with the
	// bound-flipping dual ratio test before a final primal certification
	// pass. Warm-started solves ignore it (the warm path is already a dual
	// reoptimization).
	Algorithm Algorithm
	// Update selects the sparse engine's basis-update scheme; the zero value
	// (UpdateAuto) is Forrest-Tomlin. UpdatePFI is the product-form eta file
	// kept as the differential reference. EngineDense ignores it.
	Update Update
	// WantDuals populates Result.Duals on optimal solves (one extra BTRAN).
	WantDuals bool
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 200*(m+n) + 20000
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// Solve optimizes the problem with the bounded-variable two-phase primal
// simplex method. With Options.WarmStart it first attempts a dual-simplex
// reoptimization from a previous basis — preferring the live engine cached on
// the problem (in-place reoptimization, no refactorization), then the
// snapshot in Options.WarmStart — falling back to the cold solve whenever the
// warm path cannot finish cleanly.
func (p *Problem) Solve(opt Options) Result {
	if opt.WarmStart != nil {
		// The cached engine is reusable only if it was built by the same
		// linear-algebra engine the caller is asking for now.
		if s := p.engine; s != nil && s.mutGen == p.mutGen && s.opt.Engine == opt.Engine {
			if res, done := s.reSolve(opt); done {
				return res
			}
		} else if res, done := warmSolve(p, opt); done {
			return res
		}
	}
	// Cold solves without a snapshot request route through the presolve
	// layer (transparent: the answer is postsolved back to this problem's
	// shape). Snapshot solves skip it — Result.Basis must match the full
	// problem so a later WarmStart can load it.
	if opt.Presolve == PresolveAuto && !opt.SnapshotBasis {
		if res, done := presolvedSolve(p, opt); done {
			return res
		}
	}
	if opt.Algorithm == AlgorithmDual {
		// Primary dual simplex; any exit it cannot certify against the
		// original bounds falls through to the primal algorithm below.
		if res, s, done := dualSolve(p, opt); done {
			if opt.SnapshotBasis && res.Status == Optimal {
				p.engine = s
			}
			return res
		}
	}
	s := newSimplex(p, opt)
	res := s.solve()
	if opt.SnapshotBasis && res.Status == Optimal {
		p.engine = s
	}
	return res
}
