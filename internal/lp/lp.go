// Package lp implements sparse linear programming with a bounded-variable,
// two-phase revised primal simplex method.
//
// Problems are stated in the form
//
//	minimize    c'x
//	subject to  row_i: a_i'x {<=,=,>=} b_i
//	            l <= x <= u
//
// where bounds may be infinite. The solver is artificial-based two-phase
// (big-M free) and uses Dantzig pricing with a Bland's-rule fallback for
// anti-cycling. It is the LP engine underneath the MILP branch-and-bound in
// package ilp, which in turn is this repository's stand-in for CPLEX in the
// OptRouter reproduction.
package lp

import (
	"fmt"
	"math"

	"optrouter/internal/obs"
)

// Inf is positive infinity, for unbounded variable bounds.
var Inf = math.Inf(1)

// Sense is the relational sense of a linear constraint.
type Sense int

const (
	LE Sense = iota // a'x <= b
	GE              // a'x >= b
	EQ              // a'x == b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Coef is one nonzero coefficient of a constraint row.
type Coef struct {
	Var int     // variable index
	Val float64 // coefficient
}

// Status is the outcome of an LP solve.
type Status int

const (
	// Optimal means a proven-optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system admits no solution.
	Infeasible
	// Unbounded means the objective is unbounded below over the feasible set.
	Unbounded
	// IterLimit means the iteration limit was exhausted before convergence.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "?"
}

// Problem is a mutable LP model. Variables and constraints are added
// incrementally; bounds may be changed between solves (as branch-and-bound
// does).
type Problem struct {
	cost  []float64
	lo    []float64
	hi    []float64
	names []string

	rows   []row
	senses []Sense
	rhs    []float64
}

type row struct {
	idx []int32
	val []float64
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVariable adds a variable with bounds [lo, hi] and objective coefficient
// cost, returning its index.
func (p *Problem) AddVariable(lo, hi, cost float64) int {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds inverted: [%g, %g]", lo, hi))
	}
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.names = append(p.names, "")
	return len(p.cost) - 1
}

// SetName attaches a diagnostic name to variable j.
func (p *Problem) SetName(j int, name string) { p.names[j] = name }

// Name returns the diagnostic name of variable j (may be empty).
func (p *Problem) Name(j int) string {
	if p.names[j] != "" {
		return p.names[j]
	}
	return fmt.Sprintf("x%d", j)
}

// SetVarBounds replaces the bounds of variable j.
func (p *Problem) SetVarBounds(j int, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable bounds inverted: [%g, %g]", lo, hi))
	}
	p.lo[j] = lo
	p.hi[j] = hi
}

// VarBounds returns the current bounds of variable j.
func (p *Problem) VarBounds(j int) (lo, hi float64) { return p.lo[j], p.hi[j] }

// SetCost replaces the objective coefficient of variable j.
func (p *Problem) SetCost(j int, c float64) { p.cost[j] = c }

// Cost returns the objective coefficient of variable j.
func (p *Problem) Cost(j int) float64 { return p.cost[j] }

// AddConstraint adds the row sum(coeffs) sense rhs and returns its index.
// Coefficients referencing the same variable twice are summed.
func (p *Problem) AddConstraint(coeffs []Coef, sense Sense, rhs float64) int {
	merged := map[int]float64{}
	for _, c := range coeffs {
		if c.Var < 0 || c.Var >= len(p.cost) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", c.Var))
		}
		merged[c.Var] += c.Val
	}
	var r row
	for _, c := range coeffs {
		v, seen := merged[c.Var]
		if !seen {
			continue // already emitted
		}
		delete(merged, c.Var)
		if v == 0 {
			continue
		}
		r.idx = append(r.idx, int32(c.Var))
		r.val = append(r.val, v)
	}
	p.rows = append(p.rows, r)
	p.senses = append(p.senses, sense)
	p.rhs = append(p.rhs, rhs)
	return len(p.rows) - 1
}

// Row returns the coefficients, sense and rhs of constraint i.
func (p *Problem) Row(i int) (coeffs []Coef, sense Sense, rhs float64) {
	r := p.rows[i]
	coeffs = make([]Coef, len(r.idx))
	for k := range r.idx {
		coeffs[k] = Coef{Var: int(r.idx[k]), Val: r.val[k]}
	}
	return coeffs, p.senses[i], p.rhs[i]
}

// Result holds the outcome of a Solve.
type Result struct {
	Status Status
	Obj    float64   // objective value (valid when Status == Optimal)
	X      []float64 // primal values for structural variables
	Iters  int       // simplex iterations used (both phases)
	Stats  Stats     // detailed per-solve statistics
}

// Stats are per-solve simplex statistics, the LP layer's contribution to
// the solver observability stack (package obs).
type Stats struct {
	Iters            int // total simplex iterations (both phases)
	Phase1Iters      int // iterations spent driving artificials out
	Pivots           int // basis exchanges performed
	BoundFlips       int // nonbasic bound-to-bound moves (no basis change)
	Refactorizations int // basis-inverse rebuilds (numerical recovery)
	DegeneratePivots int // zero-step iterations (stalling indicator)

	// Phases attributes the solve's wall time to the simplex internals —
	// PhaseBuild, PhasePricing, PhaseRatioTest, PhasePivot, PhaseRefactorize
	// — and is populated only when Options.CollectPhases is set (the
	// per-iteration clock reads are not free on tiny LPs).
	Phases obs.Breakdown
}

// Simplex phase names used in Stats.Phases.
const (
	PhaseBuild       = "build"       // column/basis assembly before iterating
	PhasePricing     = "pricing"     // dual computation + entering-column scan
	PhaseRatioTest   = "ratio_test"  // bounded ratio test for the leaving row
	PhasePivot       = "pivot"       // step application + basis-inverse update
	PhaseRefactorize = "refactorize" // basis-inverse rebuilds and refreshes
)

// Options tunes the simplex solver.
type Options struct {
	// MaxIters bounds total simplex iterations; 0 means a generous default
	// derived from the problem size.
	MaxIters int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-9.
	Tol float64
	// CollectPhases enables per-phase wall-time attribution (Stats.Phases).
	// It costs a few clock reads per iteration, so it is opt-in.
	CollectPhases bool
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 200*(m+n) + 20000
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// Solve optimizes the problem with the bounded-variable two-phase primal
// simplex method.
func (p *Problem) Solve(opt Options) Result {
	s := newSimplex(p, opt)
	return s.solve()
}
