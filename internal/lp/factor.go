package lp

import "math"

// This file implements the sparse LU factorization behind the simplex
// engine's default linear algebra (Options.Engine == EngineSparse). The
// basis matrix B — flow-conservation rows, via-adjacency rows, EOL rows,
// each with a handful of nonzeros — is factorized by Gaussian elimination
// with Markowitz pivot selection (minimizing predicted fill-in subject to a
// relative stability threshold), storing the elimination multipliers (L) and
// the reduced pivot rows (U) as index/value triangles. Basis exchanges do
// not refactorize: each pivot appends one product-form eta vector, and the
// factorization is rebuilt only when the eta file grows past its budget or a
// pivot is numerically unacceptable. FTRAN/BTRAN over this representation
// live in ftran.go.

const (
	// markowitzThreshold rejects pivot candidates smaller than this fraction
	// of the largest entry in their row (stability vs fill-in trade-off).
	markowitzThreshold = 0.05
	// pivotFloor is the absolute magnitude below which an entry can never
	// pivot; a step with no candidate above it declares the basis singular.
	pivotFloor = 1e-11
	// dropTol discards entries this small during elimination (cancellation
	// noise that would otherwise accumulate as structural fill).
	dropTol = 1e-14
	// etaPivotRel rejects a product-form update whose pivot entry is this
	// much smaller than the largest entry of the transformed column; the
	// caller refactorizes instead of compounding the error.
	etaPivotRel = 1e-8
)

// luFactor is a sparse LU factorization of one simplex basis plus the
// product-form eta file accumulated since. Rebuilt in place by factorize;
// all backing slices are reused across refactorizations.
type luFactor struct {
	m int

	// Pivot sequence: step k eliminated row prow[k] against basis position
	// (column) pcol[k].
	prow []int32
	pcol []int32

	// L: per-step elimination multipliers. The forward solve applies
	// x[lInd] -= lVal * x[prow[k]] for each entry of step k.
	lPtr []int32
	lInd []int32
	lVal []float64

	// U: pivot values per step plus the off-pivot entries of each pivot row,
	// stored row-wise (urInd = basis position) for BTRAN and column-wise
	// (ucInd = step index of the row holding the entry) for FTRAN.
	upiv  []float64
	urPtr []int32
	urInd []int32
	urVal []float64
	ucPtr []int32
	ucInd []int32
	ucVal []float64

	// Product-form eta file, one eta per basis exchange since the last
	// factorization, stored in applied form: the transformed column r gets
	// value etaDiag*t and each (etaInd, etaVal) entry accumulates etaVal*t.
	etaPtr  []int32
	etaR    []int32
	etaDiag []float64
	etaInd  []int32
	etaVal  []float64

	basisNNZ  int // nonzeros of the basis matrix at the last factorization
	factorNNZ int // nonzeros of L + U (incl. pivots) at the last factorization

	// Forrest-Tomlin update state (ft.go). ftMode requests the scheme for the
	// next factorize; the zero value keeps the product-form eta file, so a
	// bare luFactor behaves exactly as before.
	ftMode bool
	ft     ftState

	// Test hooks (ft_test.go): force every update to be rejected, and make
	// the next factorize report the basis singular, exercising the recovery
	// ladder (update -> refactorize -> cold solve) deterministically.
	testRejectUpdates bool
	testFailFactorize bool

	// Factorization scratch, reused across calls.
	rwIdx   [][]int32
	rwVal   [][]float64
	colCnt  []int32
	colRows [][]int32
	rowDone []bool
	stepOf  []int32 // basis position -> elimination step
	acc     []float64
	accMark []int32
	oldMark []int32
	accList []int32
	epoch   int32
}

// reset prepares the factor for a basis of m rows, clearing prior state.
func (f *luFactor) reset(m int) {
	f.m = m
	f.prow = f.prow[:0]
	f.pcol = f.pcol[:0]
	f.lPtr = append(f.lPtr[:0], 0)
	f.lInd = f.lInd[:0]
	f.lVal = f.lVal[:0]
	f.upiv = f.upiv[:0]
	f.urPtr = append(f.urPtr[:0], 0)
	f.urInd = f.urInd[:0]
	f.urVal = f.urVal[:0]
	f.clearEtas()
}

func (f *luFactor) clearEtas() {
	f.etaPtr = append(f.etaPtr[:0], 0)
	f.etaR = f.etaR[:0]
	f.etaDiag = f.etaDiag[:0]
	f.etaInd = f.etaInd[:0]
	f.etaVal = f.etaVal[:0]
}

// etaCount returns the number of updates accumulated since the last
// factorization (product-form etas or Forrest-Tomlin exchanges).
func (f *luFactor) etaCount() int {
	if f.ft.on {
		return f.ft.updates
	}
	return len(f.etaR)
}

// refactorReason attributes a refactorization trigger (Stats.Refactor*).
type refactorReason uint8

const (
	refactorNone           refactorReason = iota
	refactorEtaLen                        // update-count budget exhausted
	refactorFill                          // update-storage fill budget exhausted
	refactorPivotQuality                  // tiny pivot mid-iteration
	refactorUpdateRejected                // update rejected on spike-pivot quality
)

// refactorDue reports whether (and why) the update representation has
// outgrown its budget. For the eta file: too many updates, or more update
// nonzeros than the factorization itself (at which point every FTRAN/BTRAN
// pays more for the etas than for the LU). For Forrest-Tomlin: the looser
// ftUpdateCap, or the dynamic U plus its row etas growing past the same
// fill budget (spike fill-in degradation).
func (f *luFactor) refactorDue() refactorReason {
	if f.ft.on {
		if f.ft.updates >= ftUpdateCap {
			return refactorEtaLen
		}
		if f.ft.nnz+len(f.ft.etaMul) > 2*f.factorNNZ+4*f.m {
			return refactorFill
		}
		return refactorNone
	}
	if len(f.etaR) >= 96 {
		return refactorEtaLen
	}
	if len(f.etaVal) > 2*f.factorNNZ+4*f.m {
		return refactorFill
	}
	return refactorNone
}

// needRefactor reports whether the update file has outgrown its budget.
func (f *luFactor) needRefactor() bool { return f.refactorDue() != refactorNone }

// update folds one basis exchange into the factorization: w is the
// FTRAN-transformed entering column and leave the basis position it replaces.
// Forrest-Tomlin mode edits U in place (ft.go); eta-file mode appends one
// product-form eta. Returns false when the pivot entry is too small relative
// to the column — the caller must refactorize (the basis itself, already
// exchanged, stays valid).
func (f *luFactor) update(leave int32, w *spVec) bool {
	if f.testRejectUpdates {
		return false
	}
	if f.ft.on {
		return f.ftUpdate(leave, w)
	}
	wr := w.val[leave]
	wmax := 0.0
	for _, i := range w.ind {
		if a := math.Abs(w.val[i]); a > wmax {
			wmax = a
		}
	}
	if math.Abs(wr) < etaPivotRel*wmax || wr == 0 {
		return false
	}
	d := 1 / wr
	for _, i := range w.ind {
		if i == leave {
			continue
		}
		v := w.val[i]
		if v == 0 {
			continue
		}
		f.etaInd = append(f.etaInd, i)
		f.etaVal = append(f.etaVal, -v*d)
	}
	f.etaR = append(f.etaR, leave)
	f.etaDiag = append(f.etaDiag, d)
	f.etaPtr = append(f.etaPtr, int32(len(f.etaInd)))
	return true
}

// factorize rebuilds the LU factorization from the basis columns (basis[pos]
// names the column basic at position pos; colIdx/colVal are the column
// nonzeros by row). Returns false when the basis matrix is numerically
// singular. The eta file is cleared — the factorization alone represents
// the basis afterwards.
func (f *luFactor) factorize(m int, basis []int, colIdx [][]int32, colVal [][]float64) bool {
	if f.testFailFactorize {
		f.testFailFactorize = false
		return false
	}
	f.reset(m)
	f.growScratch(m)
	f.ft.on = false

	// Assemble the working rows (col = basis position).
	nnz := 0
	for i := 0; i < m; i++ {
		f.rwIdx[i] = f.rwIdx[i][:0]
		f.rwVal[i] = f.rwVal[i][:0]
		f.colCnt[i] = 0
		f.colRows[i] = f.colRows[i][:0]
		f.rowDone[i] = false
	}
	for pos, j := range basis {
		for k, i := range colIdx[j] {
			v := colVal[j][k]
			if v == 0 {
				continue
			}
			f.rwIdx[i] = append(f.rwIdx[i], int32(pos))
			f.rwVal[i] = append(f.rwVal[i], v)
			f.colCnt[pos]++
			f.colRows[pos] = append(f.colRows[pos], int32(i))
			nnz++
		}
	}
	f.basisNNZ = nnz

	for step := 0; step < m; step++ {
		pr, pk, ok := f.selectPivot(m)
		if !ok {
			return false
		}
		f.eliminate(pr, pk)
	}
	if f.ftMode {
		// Forrest-Tomlin updates work on a dynamic U; the static column-wise
		// transpose is never consulted, so skip building it.
		for pos, k := range f.pcol {
			f.stepOf[k] = int32(pos)
		}
		f.ftInit(m)
	} else {
		f.buildColumnwiseU(m)
	}
	f.factorNNZ = len(f.lVal) + len(f.urVal) + m
	return true
}

// selectPivot scans the active rows for the entry minimizing the Markowitz
// count (rowLen-1)*(colCnt-1) among entries passing the relative stability
// threshold, breaking ties toward the larger magnitude. Returns the row and
// the entry's index within it.
func (f *luFactor) selectPivot(m int) (pr int, pk int, ok bool) {
	bestCost := int64(math.MaxInt64)
	bestAbs := 0.0
	pr, pk = -1, -1
	for i := 0; i < m; i++ {
		if f.rowDone[i] {
			continue
		}
		row := f.rwVal[i]
		if len(row) == 0 {
			return -1, -1, false // empty active row: structurally singular
		}
		rmax := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > rmax {
				rmax = a
			}
		}
		if rmax < pivotFloor {
			return -1, -1, false
		}
		floor := markowitzThreshold * rmax
		rl := int64(len(row) - 1)
		for k, v := range row {
			a := math.Abs(v)
			if a < floor || a < pivotFloor {
				continue
			}
			cost := rl * int64(f.colCnt[f.rwIdx[i][k]]-1)
			if cost < bestCost || (cost == bestCost && a > bestAbs) {
				bestCost, bestAbs, pr, pk = cost, a, i, k
			}
		}
		if bestCost == 0 {
			break // a zero-fill pivot (row or column singleton) cannot be beaten
		}
	}
	return pr, pk, pr >= 0
}

// eliminate performs one elimination step with pivot entry pk of row pr:
// the pivot row is emitted as a U row and subtracted (scaled) from every
// active row sharing its pivot column, recording the multipliers in L.
func (f *luFactor) eliminate(pr, pk int) {
	prowIdx := f.rwIdx[pr]
	prowVal := f.rwVal[pr]
	pc := prowIdx[pk]
	pv := prowVal[pk]

	f.prow = append(f.prow, int32(pr))
	f.pcol = append(f.pcol, pc)
	f.upiv = append(f.upiv, pv)
	for k, c := range prowIdx {
		if k != pk {
			f.urInd = append(f.urInd, c)
			f.urVal = append(f.urVal, prowVal[k])
		}
		f.colCnt[c]--
	}
	f.urPtr = append(f.urPtr, int32(len(f.urInd)))
	f.rowDone[pr] = true

	uLo := f.urPtr[len(f.urPtr)-2]
	uHi := f.urPtr[len(f.urPtr)-1]
	for _, ri := range f.colRows[pc] {
		i := int(ri)
		if f.rowDone[i] {
			continue
		}
		// Locate the pivot-column entry (colRows may hold stale rows whose
		// entry has since cancelled).
		kk := -1
		for k, c := range f.rwIdx[i] {
			if c == pc {
				kk = k
				break
			}
		}
		if kk == -1 {
			continue
		}
		mult := f.rwVal[i][kk] / pv
		f.lInd = append(f.lInd, int32(i))
		f.lVal = append(f.lVal, mult)
		f.mergeRow(i, kk, mult, uLo, uHi)
	}
	f.colRows[pc] = f.colRows[pc][:0]
	f.lPtr = append(f.lPtr, int32(len(f.lInd)))
}

// mergeRow applies row_i -= mult * pivotRow (off-pivot part in urInd/urVal
// [uLo,uHi)), dropping the pivot-column entry kk, via the epoch-stamped
// dense accumulator. Column counts and candidate lists track fill-in.
func (f *luFactor) mergeRow(i, kk int, mult float64, uLo, uHi int32) {
	f.epoch++
	if f.epoch == math.MaxInt32 {
		for j := range f.accMark {
			f.accMark[j] = 0
			f.oldMark[j] = 0
		}
		f.epoch = 1
	}
	ep := f.epoch
	f.accList = f.accList[:0]
	idx := f.rwIdx[i]
	val := f.rwVal[i]
	for k, c := range idx {
		if k == kk {
			continue // eliminated pivot-column entry
		}
		f.acc[c] = val[k]
		f.accMark[c] = ep
		f.oldMark[c] = ep
		f.accList = append(f.accList, c)
	}
	f.colCnt[idx[kk]]-- // the removed pivot-column entry
	for e := uLo; e < uHi; e++ {
		c := f.urInd[e]
		v := mult * f.urVal[e]
		if f.accMark[c] == ep {
			f.acc[c] -= v
		} else {
			f.acc[c] = -v
			f.accMark[c] = ep
			f.accList = append(f.accList, c)
		}
	}
	idx = idx[:0]
	val = val[:0]
	for _, c := range f.accList {
		v := f.acc[c]
		keep := math.Abs(v) > dropTol
		was := f.oldMark[c] == ep
		switch {
		case keep && !was: // fill-in
			f.colCnt[c]++
			f.colRows[c] = append(f.colRows[c], int32(i))
		case !keep && was: // cancellation
			f.colCnt[c]--
		}
		if keep {
			idx = append(idx, c)
			val = append(val, v)
		}
	}
	f.rwIdx[i] = idx
	f.rwVal[i] = val
}

// buildColumnwiseU transposes the row-wise U into the column-oriented form
// the FTRAN back substitution scatters through: for each step k, the entries
// U_j[pcol[k]] of earlier steps j, identified by step index.
func (f *luFactor) buildColumnwiseU(m int) {
	if cap(f.ucPtr) < m+1 {
		f.ucPtr = make([]int32, m+1)
	}
	f.ucPtr = f.ucPtr[:m+1]
	for k := range f.ucPtr {
		f.ucPtr[k] = 0
	}
	for pos, k := range f.pcol {
		f.stepOf[k] = int32(pos)
	}
	nnz := len(f.urInd)
	if cap(f.ucInd) < nnz {
		f.ucInd = make([]int32, nnz)
		f.ucVal = make([]float64, nnz)
	}
	f.ucInd = f.ucInd[:nnz]
	f.ucVal = f.ucVal[:nnz]
	// Counting pass: entries per destination step.
	for _, c := range f.urInd {
		f.ucPtr[f.stepOf[c]+1]++
	}
	for k := 0; k < m; k++ {
		f.ucPtr[k+1] += f.ucPtr[k]
	}
	// Scatter pass, cursoring through each step's span (accMark doubles as
	// the cursor scratch; it is re-zeroed after, restoring the epoch-stamp
	// invariant for the next factorization's mergeRow calls).
	cursor := f.accMark[:m]
	copy(cursor, f.ucPtr[:m])
	for j := 0; j < m; j++ {
		for e := f.urPtr[j]; e < f.urPtr[j+1]; e++ {
			k := f.stepOf[f.urInd[e]]
			f.ucInd[cursor[k]] = int32(j)
			f.ucVal[cursor[k]] = f.urVal[e]
			cursor[k]++
		}
	}
	for k := range cursor {
		cursor[k] = 0
	}
}

// growScratch sizes the factorization workspaces for m rows.
func (f *luFactor) growScratch(m int) {
	if cap(f.rwIdx) < m {
		f.rwIdx = make([][]int32, m)
		f.rwVal = make([][]float64, m)
		f.colRows = make([][]int32, m)
	}
	f.rwIdx = f.rwIdx[:m]
	f.rwVal = f.rwVal[:m]
	f.colRows = f.colRows[:m]
	if cap(f.colCnt) < m {
		f.colCnt = make([]int32, m)
		f.rowDone = make([]bool, m)
		f.stepOf = make([]int32, m)
		f.acc = make([]float64, m)
		f.accMark = make([]int32, m)
		f.oldMark = make([]int32, m)
		f.accList = make([]int32, 0, m)
		f.epoch = 0
	}
	f.colCnt = f.colCnt[:m]
	f.rowDone = f.rowDone[:m]
	f.stepOf = f.stepOf[:m]
	f.acc = f.acc[:m]
	f.accMark = f.accMark[:m]
	f.oldMark = f.oldMark[:m]
}
