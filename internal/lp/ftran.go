package lp

// This file implements the sparse triangular solves of the LU-factorized
// simplex basis: FTRAN (solve B x = a, the pivot-column transform) and BTRAN
// (solve y B = c, the dual/row transform), plus the sparse-vector workspace
// they operate on. Both exploit right-hand-side hyper-sparsity: the vectors
// fed through them are mostly unit or near-unit (an entering column with a
// handful of nonzeros, the e_r row selector of the dual ratio test, a phase-2
// cost vector that is zero on every slack), so the solves skip all pivot
// steps whose input entry is zero and touch only the nonzero pattern.

// spVec is a sparse vector workspace: a dense value array paired with an
// unordered index list of the tracked nonzero positions. Entries outside the
// index list are guaranteed zero. The stamp/epoch pair makes membership
// O(1) without clearing stamps between uses, so resetting costs only the
// previous nonzero count — the invariant the hyper-sparse solves rely on.
type spVec struct {
	val   []float64
	ind   []int32
	stamp []int32
	epoch int32
}

// grow sizes the workspace for vectors of length m, resetting it.
func (v *spVec) grow(m int) {
	if cap(v.val) < m {
		v.val = make([]float64, m)
		v.stamp = make([]int32, m)
		v.ind = make([]int32, 0, m)
		v.epoch = 1
		return
	}
	v.val = v.val[:m]
	v.stamp = v.stamp[:m]
	v.reset()
}

// reset clears the tracked entries (only those, not the full array).
func (v *spVec) reset() {
	for _, i := range v.ind {
		v.val[i] = 0
	}
	v.ind = v.ind[:0]
	v.epoch++
	if v.epoch == 0 { // stamp wrap: invalidate everything
		for i := range v.stamp {
			v.stamp[i] = -1
		}
		v.epoch = 1
	}
}

// set installs value x at position i (tracking it exactly once).
func (v *spVec) set(i int32, x float64) {
	if v.stamp[i] != v.epoch {
		v.stamp[i] = v.epoch
		v.ind = append(v.ind, i)
	}
	v.val[i] = x
}

// add accumulates x into position i (tracking it exactly once).
func (v *spVec) add(i int32, x float64) {
	if v.stamp[i] != v.epoch {
		v.stamp[i] = v.epoch
		v.ind = append(v.ind, i)
	}
	v.val[i] += x
}

// ftran solves B x = a for the current basis B = B0 * F1 * ... * Fk (the LU
// factorization B0 composed with the product-form eta updates). The input a
// is indexed by row; the result is indexed by basis position and written to
// out (which is reset first). a is consumed (mutated in place).
func (f *luFactor) ftran(a, out *spVec) {
	m := f.m
	// Forward pass: replay the row eliminations of the factorization on the
	// right-hand side. A zero pivot entry means the whole step is a no-op —
	// the hyper-sparsity shortcut that makes near-unit columns O(path), not
	// O(m^2).
	for k := 0; k < m; k++ {
		t := a.val[f.prow[k]]
		if t == 0 {
			continue
		}
		for e := f.lPtr[k]; e < f.lPtr[k+1]; e++ {
			a.add(f.lInd[e], -f.lVal[e]*t)
		}
	}
	if f.ft.on {
		// Forrest-Tomlin: row etas between L and U, then the dynamic U.
		f.ftApplyEtas(a)
		f.ftranFT(a, out)
		return
	}
	// Back substitution on U, column-oriented scatter: once x[pcol[k]] is
	// known it is substituted out of every earlier pivot row at once.
	out.reset()
	for k := m - 1; k >= 0; k-- {
		t := a.val[f.prow[k]]
		if t == 0 {
			continue
		}
		t /= f.upiv[k]
		out.set(f.pcol[k], t)
		for e := f.ucPtr[k]; e < f.ucPtr[k+1]; e++ {
			a.add(f.prow[f.ucInd[e]], -f.ucVal[e]*t)
		}
	}
	// Eta file: apply the product-form updates in pivot order.
	for e := 0; e < len(f.etaR); e++ {
		r := f.etaR[e]
		t := out.val[r]
		if t == 0 {
			continue
		}
		out.set(r, f.etaDiag[e]*t)
		for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
			out.add(f.etaInd[q], f.etaVal[q]*t)
		}
	}
}

// btran solves y B = c for the current basis. The input c is indexed by
// basis position; the result is indexed by row and written to out (reset
// first). c is consumed.
func (f *luFactor) btran(c, out *spVec) {
	m := f.m
	if f.ft.on {
		// Forrest-Tomlin: dynamic U solve plus transposed row etas, then the
		// shared transposed L pass below.
		f.btranFT(c, out)
	} else {
		// Eta file in reverse: right-multiplying by F^{-1} changes only the
		// pivot-position entry (a short gather per eta).
		for e := len(f.etaR) - 1; e >= 0; e-- {
			r := f.etaR[e]
			d := f.etaDiag[e] * c.val[r]
			for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
				d += f.etaVal[q] * c.val[f.etaInd[q]]
			}
			if d != 0 || c.val[r] != 0 {
				c.set(r, d)
			}
		}
		// Solve z U = c in pivot order, scattering each solved component
		// through the pivot row (row-oriented U). Zero components skip
		// entirely.
		out.reset()
		for k := 0; k < m; k++ {
			t := c.val[f.pcol[k]]
			if t == 0 {
				continue
			}
			t /= f.upiv[k]
			out.set(f.prow[k], t)
			for e := f.urPtr[k]; e < f.urPtr[k+1]; e++ {
				c.add(f.urInd[e], -f.urVal[e]*t)
			}
		}
	}
	// Transposed elimination pass: y[prow[k]] -= sum L_k[i] * y[i], in
	// reverse pivot order. Each step is a short gather over the stored
	// multipliers.
	for k := m - 1; k >= 0; k-- {
		s := 0.0
		for e := f.lPtr[k]; e < f.lPtr[k+1]; e++ {
			s += f.lVal[e] * out.val[f.lInd[e]]
		}
		if s != 0 {
			out.add(f.prow[k], -s)
		}
	}
}

// ftranDense solves B x = a for a dense right-hand side (the periodic basic-
// value refresh), writing the result to out. a is consumed.
func (f *luFactor) ftranDense(a, out []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		t := a[f.prow[k]]
		if t == 0 {
			continue
		}
		for e := f.lPtr[k]; e < f.lPtr[k+1]; e++ {
			a[f.lInd[e]] -= f.lVal[e] * t
		}
	}
	if f.ft.on {
		f.ftranDenseFT(a, out)
		return
	}
	for i := range out[:m] {
		out[i] = 0
	}
	for k := m - 1; k >= 0; k-- {
		t := a[f.prow[k]]
		if t == 0 {
			continue
		}
		t /= f.upiv[k]
		out[f.pcol[k]] = t
		for e := f.ucPtr[k]; e < f.ucPtr[k+1]; e++ {
			a[f.prow[f.ucInd[e]]] -= f.ucVal[e] * t
		}
	}
	for e := 0; e < len(f.etaR); e++ {
		r := f.etaR[e]
		t := out[r]
		if t == 0 {
			continue
		}
		out[r] = f.etaDiag[e] * t
		for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
			out[f.etaInd[q]] += f.etaVal[q] * t
		}
	}
}
