package lp

import "math"

// presolve.go reduces an LP before the simplex sees it: empty and redundant
// rows are dropped, singleton rows become variable bounds, forced rows fix
// every variable they touch, fixed columns fold into the right-hand side,
// free continuous column singletons in equality rows are substituted out,
// doubleton equations eliminate one continuous column by substitution,
// dominated columns are fixed by duality, parallel continuous columns are
// merged, and (only when integrality marks are supplied) row activity
// bounds tighten integer variable bounds. Every reduction is recorded on a
// postsolve stack so the full-space primal solution — and, via the same
// stack walked in reverse, the dual values of removed rows — can be
// recovered exactly.
//
// Scope note: continuous implied-bound tightening is deliberately NOT done.
// Tightening a continuous bound can make that bound active at the reduced
// optimum where the original problem had the row active instead, which
// breaks exact dual postsolve. Integer tightening is safe because it is
// only used through the MILP layer (package ilp), where equivalence is
// required for the integer problem, not the LP relaxation.
//
// The postsolve dual rules follow the standard stack discipline: records
// are processed in reverse removal order, each computing its row's dual
// against the original matrix and the duals assigned so far (later-removed
// rows first). Cost transfers performed by substitutions are exactly the
// y·a adjustments, so original costs plus assigned duals reproduce the
// working reduced costs at every stage.

// PresolveOptions tunes a presolve pass.
type PresolveOptions struct {
	// Tol is the feasibility tolerance; 0 means 1e-9.
	Tol float64
	// Integer marks integral variables (nil = all continuous). Integer
	// columns get activity-based bound tightening (rounded inward), and
	// fixings of integer columns are rounded — a fix that lands further
	// than the tolerance from an integer proves the model infeasible.
	Integer []bool
}

type psKind uint8

const (
	psRowDrop      psKind = iota // empty or redundant row: y = 0
	psRowSingleton               // singleton row turned into a bound on one column
	psRowForced                  // forced row: every column fixed at its extreme
	psColFixed                   // column fixed: x_j = val
	psColSubst                   // free column singleton substituted out (with its row)
	psColDoubleton               // doubleton equation: col substituted out via col2
	psColParallel                // parallel column folded into col2 (z = x_k + λ x_j)
)

// psRec is one postsolve record. Field use depends on kind.
type psRec struct {
	kind  psKind
	row   int     // original row index (row kinds, psColSubst, psColDoubleton)
	col   int     // original column index (psRowSingleton, column kinds)
	col2  int     // partner column (psColDoubleton, psColParallel)
	a     float64 // coefficient a[row][col] (psRowSingleton, psColSubst, psColDoubleton); λ (psColParallel)
	val   float64 // fix value (psColFixed); a[row][col2] (psColDoubleton)
	cj    float64 // working cost of col at removal time (psColSubst, psColDoubleton)
	rhs   float64 // row rhs at removal time (psRowSingleton/Forced, psColSubst, psColDoubleton)
	sense Sense
	lo1   float64 // bounds of col at removal time (psColDoubleton, psColParallel)
	hi1   float64
	lo2   float64 // bounds of col2 at removal time, pre-transfer/pre-merge
	hi2   float64
	idx   []int32   // row entries at removal time, excluding col (psColSubst)
	vals  []float64 // — matching coefficients (psColSubst, psRowForced)
	atLo  []bool    // psRowForced: which bound each entry was fixed at
}

// Presolved is the outcome of a presolve pass: the reduced problem plus
// everything needed to map solutions (and duals) back to the original.
type Presolved struct {
	Reduced *Problem

	// ObjOffset is the objective contribution of removed columns:
	// c_orig·x_full = c_red·x_red + ObjOffset.
	ObjOffset float64

	// ColMap/RowMap map original indices to reduced ones (-1 = removed).
	ColMap []int32
	RowMap []int32

	RowsRemoved int
	ColsRemoved int
	Infeasible  bool

	origN, origM int
	origCost     []float64
	colRowsIdx   [][]int32 // original column view: rows touching each column
	colRowsVal   [][]float64
	stack        []psRec
}

// PresolveProblem reduces p. Returns nil when no reduction applies (callers
// should then solve p directly). A non-nil result with Infeasible set means
// presolve proved the model infeasible.
func PresolveProblem(p *Problem, popt PresolveOptions) *Presolved {
	tol := popt.Tol
	if tol == 0 {
		tol = 1e-9
	}
	n := len(p.cost)
	m := len(p.rows)

	// Working copies. Row entries are physically compacted as columns leave.
	cost := append([]float64(nil), p.cost...)
	lo := append([]float64(nil), p.lo...)
	hi := append([]float64(nil), p.hi...)
	rhs := append([]float64(nil), p.rhs...)
	senses := append([]Sense(nil), p.senses...)
	rIdx := make([][]int32, m)
	rVal := make([][]float64, m)
	for i, r := range p.rows {
		rIdx[i] = append([]int32(nil), r.idx...)
		rVal[i] = append([]float64(nil), r.val...)
	}
	rowAlive := make([]bool, m)
	colAlive := make([]bool, n)
	for i := range rowAlive {
		rowAlive[i] = true
	}
	for j := range colAlive {
		colAlive[j] = true
	}

	ps := &Presolved{origN: n, origM: m, origCost: append([]float64(nil), p.cost...)}

	isInt := func(j int) bool { return popt.Integer != nil && popt.Integer[j] }

	dropCol := func(j int, val float64) bool { // returns false on infeasibility
		if isInt(j) {
			r := math.Round(val)
			if math.Abs(val-r) > 1e-6 {
				return false
			}
			val = r
		}
		for i := range rIdx {
			if !rowAlive[i] {
				continue
			}
			idx, vals := rIdx[i], rVal[i]
			for k := 0; k < len(idx); k++ {
				if int(idx[k]) != j {
					continue
				}
				rhs[i] -= vals[k] * val
				idx[k] = idx[len(idx)-1]
				vals[k] = vals[len(vals)-1]
				rIdx[i] = idx[:len(idx)-1]
				rVal[i] = vals[:len(vals)-1]
				break
			}
		}
		ps.ObjOffset += cost[j] * val
		ps.stack = append(ps.stack, psRec{kind: psColFixed, col: j, val: val})
		colAlive[j] = false
		ps.ColsRemoved++
		return true
	}

	infeasible := func() *Presolved {
		ps.Infeasible = true
		return ps
	}

	changed := true
	for pass := 0; pass < 10 && changed; pass++ {
		changed = false

		// ---- Column sweep: inverted bounds, fixed columns.
		for j := 0; j < n; j++ {
			if !colAlive[j] {
				continue
			}
			if lo[j] > hi[j]+tol {
				return infeasible()
			}
			if hi[j]-lo[j] <= tol && !math.IsInf(lo[j], -1) {
				if !dropCol(j, (lo[j]+hi[j])/2) {
					return infeasible()
				}
				changed = true
			}
		}

		// ---- Column occurrence counts (for singleton-column substitution).
		colCnt := make([]int, n)
		colLastRow := make([]int, n)
		for i := 0; i < m; i++ {
			if !rowAlive[i] {
				continue
			}
			for _, j := range rIdx[i] {
				colCnt[j]++
				colLastRow[j] = i
			}
		}

		// ---- Free continuous column singletons in equality rows: substitute
		// the column out together with its row; the row's dual is exactly
		// c_j/a_ij (the only way the column's reduced cost can vanish).
		for j := 0; j < n; j++ {
			if !colAlive[j] || colCnt[j] != 1 || isInt(j) {
				continue
			}
			if !math.IsInf(lo[j], -1) || !math.IsInf(hi[j], 1) {
				continue
			}
			i := colLastRow[j]
			if senses[i] != EQ {
				continue
			}
			var aj float64
			rec := psRec{kind: psColSubst, row: i, col: j, cj: cost[j], rhs: rhs[i], sense: EQ}
			for k, jj := range rIdx[i] {
				if int(jj) == j {
					aj = rVal[i][k]
					continue
				}
				rec.idx = append(rec.idx, jj)
				rec.vals = append(rec.vals, rVal[i][k])
			}
			if math.Abs(aj) < tol {
				continue
			}
			rec.a = aj
			// Transfer the substituted column's cost onto the row's other
			// columns: c_k -= c_j * a_ik / a_ij, constant term c_j*b_i/a_ij.
			f := cost[j] / aj
			for k, jj := range rec.idx {
				cost[jj] -= f * rec.vals[k]
			}
			ps.ObjOffset += f * rhs[i]
			ps.stack = append(ps.stack, rec)
			colAlive[j] = false
			rowAlive[i] = false
			ps.ColsRemoved++
			ps.RowsRemoved++
			changed = true
		}

		// ---- Doubleton equations: a·x_j + b·x_k = rhs with x_j a
		// continuous column singleton (this row is its only occurrence) is
		// solved for x_j = (rhs − b·x_k)/a, which leaves the problem
		// together with the row. x_j's bounds transfer onto x_k and its
		// cost transfers through the substitution (c_k −= c_j·b/a). This
		// extends the free-column-singleton rule to bounded columns; the
		// singleton restriction matters for dual postsolve — rewriting
		// other alive rows would make later stack records incoherent with
		// the original matrix that redCost evaluates against. The ratio
		// guard keeps the substitution multiplier b/a bounded.
		{
			cnt := make([]int, n)
			for i := 0; i < m; i++ {
				if !rowAlive[i] {
					continue
				}
				for _, j := range rIdx[i] {
					cnt[j]++
				}
			}
			for i := 0; i < m; i++ {
				if !rowAlive[i] || senses[i] != EQ || len(rIdx[i]) != 2 {
					continue
				}
				j0, j1 := int(rIdx[i][0]), int(rIdx[i][1])
				a0, a1 := rVal[i][0], rVal[i][1]
				// Pick the eliminated column: continuous, occurrence-capped,
				// preferring the larger |coefficient| as the divisor.
				j, k := -1, -1
				var aj, bk float64
				try := func(jc, kc int, a, b float64) {
					if j >= 0 || isInt(jc) || cnt[jc] != 1 {
						return
					}
					if math.Abs(a) < tol || math.Abs(b) < tol || math.Abs(a) < 1e-3*math.Abs(b) {
						return
					}
					j, k, aj, bk = jc, kc, a, b
				}
				if math.Abs(a0) >= math.Abs(a1) {
					try(j0, j1, a0, a1)
					try(j1, j0, a1, a0)
				} else {
					try(j1, j0, a1, a0)
					try(j0, j1, a0, a1)
				}
				if j < 0 {
					continue
				}
				r0 := rhs[i] / aj
				t := bk / aj
				rec := psRec{kind: psColDoubleton, row: i, col: j, col2: k,
					a: aj, val: bk, cj: cost[j], rhs: rhs[i], sense: EQ,
					lo1: lo[j], hi1: hi[j], lo2: lo[k], hi2: hi[k]}
				// Transfer x_j's bounds onto x_k: x_j = r0 − t·x_k ∈ [lo_j, hi_j].
				var tlo, thi float64
				if t > 0 {
					tlo, thi = (r0-hi[j])/t, (r0-lo[j])/t
				} else {
					tlo, thi = (r0-lo[j])/t, (r0-hi[j])/t
				}
				if tlo > lo[k] {
					lo[k] = tlo
				}
				if thi < hi[k] {
					hi[k] = thi
				}
				if lo[k] > hi[k]+tol {
					return infeasible()
				}
				fj := cost[j] / aj
				cost[k] -= fj * bk
				ps.ObjOffset += fj * rhs[i]
				rowAlive[i] = false
				colAlive[j] = false
				cnt[j] = 0
				cnt[k]--
				ps.RowsRemoved++
				ps.ColsRemoved++
				ps.stack = append(ps.stack, rec)
				changed = true
			}
		}

		// ---- Duality fixing (dominated columns): if c_j ≥ 0 and every
		// alive occurrence of x_j has the sign that makes its dual term
		// nonnegative regardless of the dual values (a ≥ 0 in ≤ rows, whose
		// duals are ≤ 0; a ≤ 0 in ≥ rows, whose duals are ≥ 0; none in ==
		// rows), then d_j ≥ 0 at every optimum and x_j sits at its lower
		// bound; symmetrically c_j ≤ 0 fixes at the upper bound. Sound
		// against the postsolve stack because earlier eliminated equality
		// rows contribute through the working cost and later-removed
		// inequality rows get sign-guarded duals.
		{
			okLo := make([]bool, n) // d_j ≥ 0 provable
			okHi := make([]bool, n) // d_j ≤ 0 provable
			for j := 0; j < n; j++ {
				okLo[j], okHi[j] = colAlive[j], colAlive[j]
			}
			for i := 0; i < m; i++ {
				if !rowAlive[i] {
					continue
				}
				for q, j := range rIdx[i] {
					a := rVal[i][q]
					switch senses[i] {
					case EQ:
						okLo[j], okHi[j] = false, false
					case LE:
						if a < 0 {
							okLo[j] = false
						}
						if a > 0 {
							okHi[j] = false
						}
					case GE:
						if a > 0 {
							okLo[j] = false
						}
						if a < 0 {
							okHi[j] = false
						}
					}
				}
			}
			for j := 0; j < n; j++ {
				if !colAlive[j] {
					continue
				}
				switch {
				case okLo[j] && cost[j] >= 0 && !math.IsInf(lo[j], -1):
					if isInt(j) && math.Abs(lo[j]-math.Round(lo[j])) > 1e-9 {
						continue
					}
					if !dropCol(j, lo[j]) {
						return infeasible()
					}
					changed = true
				case okHi[j] && cost[j] <= 0 && !math.IsInf(hi[j], 1):
					if isInt(j) && math.Abs(hi[j]-math.Round(hi[j])) > 1e-9 {
						continue
					}
					if !dropCol(j, hi[j]) {
						return infeasible()
					}
					changed = true
				}
			}
		}

		// ---- Parallel columns: two continuous columns with proportional
		// matrix columns and costs (A_j = λ·A_k, c_j = λ·c_k) act as one
		// variable z = x_k + λ·x_j; x_j leaves and x_k's bounds widen to
		// the merged interval. No dual work is needed — the rows keep their
		// coefficients on x_k, so d_j = λ·d_k automatically, and every
		// feasible split of z has the same objective. Postsolve picks the
		// split matching complementarity.
		{
			sigRows := make([][]int32, n)
			sigVals := make([][]float64, n)
			for i := 0; i < m; i++ {
				if !rowAlive[i] {
					continue
				}
				for q, j := range rIdx[i] {
					sigRows[j] = append(sigRows[j], int32(i))
					sigVals[j] = append(sigVals[j], rVal[i][q])
				}
			}
			buckets := make(map[uint64][]int)
			for j := 0; j < n; j++ {
				if !colAlive[j] || isInt(j) || len(sigRows[j]) == 0 {
					continue
				}
				h := uint64(len(sigRows[j]))
				for _, r := range sigRows[j] {
					h = h*1000003 + uint64(r)
				}
				buckets[h] = append(buckets[h], j)
			}
			for _, cols := range buckets {
				if len(cols) < 2 {
					continue
				}
				var kept []int
				for _, j := range cols {
					merged := false
					for _, k := range kept {
						if len(sigRows[j]) != len(sigRows[k]) || sigVals[k][0] == 0 {
							continue
						}
						same := true
						for q := range sigRows[j] {
							if sigRows[j][q] != sigRows[k][q] {
								same = false
								break
							}
						}
						if !same {
							continue
						}
						lam := sigVals[j][0] / sigVals[k][0]
						if lam == 0 || math.IsInf(lam, 0) {
							continue
						}
						ok := true
						for q := range sigVals[j] {
							if math.Abs(sigVals[j][q]-lam*sigVals[k][q]) > 1e-9*(1+math.Abs(sigVals[j][q])) {
								ok = false
								break
							}
						}
						if !ok || math.Abs(cost[j]-lam*cost[k]) > 1e-9*(1+math.Abs(cost[j])+math.Abs(lam*cost[k])) {
							continue
						}
						rec := psRec{kind: psColParallel, col: j, col2: k, a: lam,
							lo1: lo[j], hi1: hi[j], lo2: lo[k], hi2: hi[k]}
						if lam > 0 {
							lo[k], hi[k] = lo[k]+lam*lo[j], hi[k]+lam*hi[j]
						} else {
							lo[k], hi[k] = lo[k]+lam*hi[j], hi[k]+lam*lo[j]
						}
						for _, r := range sigRows[j] {
							idx, vals := rIdx[r], rVal[r]
							for p := range idx {
								if int(idx[p]) == j {
									last := len(idx) - 1
									idx[p], vals[p] = idx[last], vals[last]
									rIdx[r], rVal[r] = idx[:last], vals[:last]
									break
								}
							}
						}
						colAlive[j] = false
						ps.ColsRemoved++
						ps.stack = append(ps.stack, rec)
						changed = true
						merged = true
						break
					}
					if !merged {
						kept = append(kept, j)
					}
				}
			}
		}

		// ---- Row sweep: activity bounds classify each row.
		for i := 0; i < m; i++ {
			if !rowAlive[i] {
				continue
			}
			idx, vals := rIdx[i], rVal[i]

			if len(idx) == 0 { // empty row: constant constraint on 0
				switch senses[i] {
				case LE:
					if rhs[i] < -tol {
						return infeasible()
					}
				case GE:
					if rhs[i] > tol {
						return infeasible()
					}
				case EQ:
					if math.Abs(rhs[i]) > tol {
						return infeasible()
					}
				}
				rowAlive[i] = false
				ps.RowsRemoved++
				ps.stack = append(ps.stack, psRec{kind: psRowDrop, row: i})
				changed = true
				continue
			}

			// Activity bounds over the alive entries.
			infAct, supAct := 0.0, 0.0
			for k, j := range idx {
				a := vals[k]
				if a > 0 {
					infAct += a * lo[j]
					supAct += a * hi[j]
				} else {
					infAct += a * hi[j]
					supAct += a * lo[j]
				}
			}

			// Infeasible by activity alone?
			if (senses[i] == LE || senses[i] == EQ) && infAct > rhs[i]+tol {
				return infeasible()
			}
			if (senses[i] == GE || senses[i] == EQ) && supAct < rhs[i]-tol {
				return infeasible()
			}

			// Singleton row: one coefficient — the row is a variable bound.
			if len(idx) == 1 {
				j, a := int(idx[0]), vals[0]
				bd := rhs[i] / a
				tightLo := senses[i] == GE || senses[i] == EQ
				tightHi := senses[i] == LE || senses[i] == EQ
				if a < 0 {
					tightLo, tightHi = tightHi, tightLo
				}
				if tightLo && bd > lo[j] {
					lo[j] = bd
				}
				if tightHi && bd < hi[j] {
					hi[j] = bd
				}
				if lo[j] > hi[j]+tol {
					return infeasible()
				}
				rowAlive[i] = false
				ps.RowsRemoved++
				ps.stack = append(ps.stack, psRec{kind: psRowSingleton, row: i,
					col: j, a: a, rhs: rhs[i], sense: senses[i]})
				changed = true
				continue
			}

			// Forced row: the activity bound meets the rhs exactly, so every
			// column must sit at its extreme-activity bound.
			forcedLo := !math.IsInf(infAct, -1) && infAct >= rhs[i]-tol &&
				(senses[i] == LE || senses[i] == EQ)
			forcedHi := !math.IsInf(supAct, 1) && supAct <= rhs[i]+tol &&
				(senses[i] == GE || senses[i] == EQ)
			if forcedLo || forcedHi {
				rec := psRec{kind: psRowForced, row: i, rhs: rhs[i], sense: senses[i]}
				for k, j := range idx {
					a := vals[k]
					atLo := (a > 0) == forcedLo
					rec.idx = append(rec.idx, j)
					rec.vals = append(rec.vals, a)
					rec.atLo = append(rec.atLo, atLo)
					// Fix by collapsing the bounds; the column sweep of the
					// next pass removes the column and adjusts the rhs.
					if atLo {
						hi[j] = lo[j]
					} else {
						lo[j] = hi[j]
					}
				}
				rowAlive[i] = false
				ps.RowsRemoved++
				ps.stack = append(ps.stack, rec)
				changed = true
				continue
			}

			// Redundant row: satisfied by every point of the bound box.
			redundant := false
			switch senses[i] {
			case LE:
				redundant = !math.IsInf(supAct, 1) && supAct <= rhs[i]+tol
			case GE:
				redundant = !math.IsInf(infAct, -1) && infAct >= rhs[i]-tol
			}
			if redundant {
				rowAlive[i] = false
				ps.RowsRemoved++
				ps.stack = append(ps.stack, psRec{kind: psRowDrop, row: i})
				changed = true
				continue
			}

			// Integer bound tightening from row activity (integer-only; see
			// the scope note at the top of the file).
			if popt.Integer == nil {
				continue
			}
			for k, j32 := range idx {
				j := int(j32)
				if !isInt(j) {
					continue
				}
				a := vals[k]
				// Activity of the other columns at this row's slack extreme.
				var others float64
				if a > 0 {
					others = infAct - a*lo[j]
				} else {
					others = infAct - a*hi[j]
				}
				if senses[i] == LE || senses[i] == EQ {
					if !math.IsInf(others, -1) {
						if a > 0 {
							if nb := math.Floor((rhs[i]-others)/a + tol); nb < hi[j]-tol {
								hi[j] = nb
								changed = true
							}
						} else {
							if nb := math.Ceil((rhs[i]-others)/a - tol); nb > lo[j]+tol {
								lo[j] = nb
								changed = true
							}
						}
					}
				}
				if senses[i] == GE || senses[i] == EQ {
					var othersSup float64
					if a > 0 {
						othersSup = supAct - a*hi[j]
					} else {
						othersSup = supAct - a*lo[j]
					}
					if !math.IsInf(othersSup, 1) {
						if a > 0 {
							if nb := math.Ceil((rhs[i]-othersSup)/a - tol); nb > lo[j]+tol {
								lo[j] = nb
								changed = true
							}
						} else {
							if nb := math.Floor((rhs[i]-othersSup)/a + tol); nb < hi[j]-tol {
								hi[j] = nb
								changed = true
							}
						}
					}
				}
				if lo[j] > hi[j]+tol {
					return infeasible()
				}
			}
		}
	}

	if ps.RowsRemoved == 0 && ps.ColsRemoved == 0 {
		// Bound tightening alone still counts as a reduction worth keeping,
		// but if literally nothing changed, tell the caller to skip us.
		if !boundsChanged(lo, hi, p.lo, p.hi) {
			return nil
		}
	}

	// ---- Assemble the reduced problem and the index maps.
	ps.ColMap = make([]int32, n)
	ps.RowMap = make([]int32, m)
	red := NewProblem()
	for j := 0; j < n; j++ {
		if !colAlive[j] {
			ps.ColMap[j] = -1
			continue
		}
		ps.ColMap[j] = int32(red.AddVariable(lo[j], hi[j], cost[j]))
		if p.names[j] != "" {
			red.SetName(int(ps.ColMap[j]), p.names[j])
		}
	}
	coefs := make([]Coef, 0, 16)
	for i := 0; i < m; i++ {
		if !rowAlive[i] {
			ps.RowMap[i] = -1
			continue
		}
		coefs = coefs[:0]
		for k, j := range rIdx[i] {
			coefs = append(coefs, Coef{Var: int(ps.ColMap[j]), Val: rVal[i][k]})
		}
		ps.RowMap[i] = int32(red.AddConstraint(coefs, senses[i], rhs[i]))
	}
	ps.Reduced = red

	// Original column view, for dual postsolve (reduced costs need column
	// dot products against the full matrix).
	ps.colRowsIdx = make([][]int32, n)
	ps.colRowsVal = make([][]float64, n)
	for i, r := range p.rows {
		for k, j := range r.idx {
			ps.colRowsIdx[j] = append(ps.colRowsIdx[j], int32(i))
			ps.colRowsVal[j] = append(ps.colRowsVal[j], r.val[k])
		}
	}
	return ps
}

func boundsChanged(lo, hi, origLo, origHi []float64) bool {
	for j := range lo {
		if lo[j] != origLo[j] || hi[j] != origHi[j] {
			return true
		}
	}
	return false
}

// MapMask maps a per-original-column boolean mask (e.g. integrality marks)
// onto the reduced column space.
func (ps *Presolved) MapMask(mask []bool) []bool {
	out := make([]bool, ps.Reduced.NumVars())
	for j, rj := range ps.ColMap {
		if rj >= 0 {
			out[rj] = mask[j]
		}
	}
	return out
}

// Postsolve lifts a reduced-space solution to the original variable space,
// replaying the removal stack in reverse (substitutions may reference
// columns fixed in later passes, whose records are processed first).
func (ps *Presolved) Postsolve(xRed []float64) []float64 {
	x := make([]float64, ps.origN)
	for j, rj := range ps.ColMap {
		if rj >= 0 {
			x[j] = xRed[rj]
		}
	}
	for k := len(ps.stack) - 1; k >= 0; k-- {
		rec := &ps.stack[k]
		switch rec.kind {
		case psColFixed:
			x[rec.col] = rec.val
		case psColSubst:
			v := rec.rhs
			for q, jj := range rec.idx {
				v -= rec.vals[q] * x[jj]
			}
			x[rec.col] = v / rec.a
		case psColDoubleton:
			x[rec.col] = (rec.rhs - rec.val*x[rec.col2]) / rec.a
		case psColParallel:
			// Split the merged value z = x_k + λ·x_j: intersect x_j's own
			// bounds with the values reachable while x_k stays in its
			// bounds, then take the lowest feasible x_j (which lands both
			// variables on their proper bounds when z is at a merged
			// extreme — see the merge-site comment on complementarity).
			z := x[rec.col2]
			lam := rec.a
			var ql, qh float64
			if lam > 0 {
				ql, qh = (z-rec.hi2)/lam, (z-rec.lo2)/lam
			} else {
				ql, qh = (z-rec.lo2)/lam, (z-rec.hi2)/lam
			}
			xl := math.Max(rec.lo1, ql)
			xh := math.Min(rec.hi1, qh)
			var xj float64
			switch {
			case !math.IsInf(xl, -1):
				xj = xl
			case !math.IsInf(xh, 1):
				xj = math.Min(xh, 0)
			default:
				xj = 0
			}
			x[rec.col] = xj
			x[rec.col2] = z - lam*xj
		}
	}
	return x
}

// psDualViol measures how badly reduced cost d violates complementarity for
// a variable at value xv within [lo, hi] (minimization: d ≥ 0 at the lower
// bound, d ≤ 0 at the upper, d == 0 strictly inside).
func psDualViol(d, xv, lo, hi float64) float64 {
	const bt = 1e-7
	atLo := !math.IsInf(lo, -1) && xv <= lo+bt*(1+math.Abs(lo))
	atHi := !math.IsInf(hi, 1) && xv >= hi-bt*(1+math.Abs(hi))
	switch {
	case atLo && atHi:
		return 0
	case atLo:
		return math.Max(0, -d)
	case atHi:
		return math.Max(0, d)
	default:
		return math.Abs(d)
	}
}

// PostsolveDuals lifts reduced-space row duals to the original rows. x must
// be the full-space primal solution (from Postsolve). Removed rows get
// their duals from the standard stack rules: dropped rows take zero,
// substituted equality rows take c_j/a_ij, singleton rows absorb the
// reduced cost of their column when the bound they imposed is the active
// one, and forced rows take the point of their dual-feasible interval
// closest to zero.
func (ps *Presolved) PostsolveDuals(yRed, x []float64) []float64 {
	y := make([]float64, ps.origM)
	for i, ri := range ps.RowMap {
		if ri >= 0 {
			y[i] = yRed[ri]
		}
	}
	// Working costs as of the LAST removal: original costs plus every
	// substitution's cost transfer. Walking the stack backwards undoes each
	// transfer as its record is passed, so redCost always evaluates against
	// the working costs at that record's own removal time. (Transfers from
	// substitutions removed earlier than a record are baked into cw — their
	// rows were already dead, so their duals rightly contribute through cw
	// rather than through the y sum; rows still alive at the record's
	// removal contribute through y, assigned by the reverse walk before the
	// record is reached.)
	cw := append([]float64(nil), ps.origCost...)
	for k := range ps.stack {
		rec := &ps.stack[k]
		switch rec.kind {
		case psColSubst:
			yr := rec.cj / rec.a
			for q, jj := range rec.idx {
				cw[jj] -= yr * rec.vals[q]
			}
		case psColDoubleton:
			cw[rec.col2] -= rec.cj / rec.a * rec.val
		}
	}
	// Working primal values at each stack depth: a parallel-column merge
	// reinterprets the surviving column as the merged variable z = x_k + λ·x_j,
	// so records between the merge and the end of the stack must see z, not
	// the final split value. Replay the merges forward; the reverse walk
	// splits them back as it passes each record.
	xw := append([]float64(nil), x...)
	for k := range ps.stack {
		rec := &ps.stack[k]
		if rec.kind == psColParallel {
			xw[rec.col2] += rec.a * xw[rec.col]
		}
	}
	// Reduced cost of original column j: working cost at the current stack
	// position minus the contributions of all duals assigned so far.
	redCost := func(j int) float64 {
		d := cw[j]
		for k, i := range ps.colRowsIdx[j] {
			d -= y[i] * ps.colRowsVal[j][k]
		}
		return d
	}
	for k := len(ps.stack) - 1; k >= 0; k-- {
		rec := &ps.stack[k]
		switch rec.kind {
		case psRowSingleton:
			// The row imposed the bound rhs/a on its column. Only when the
			// solution sits on that bound can the row be binding.
			bd := rec.rhs / rec.a
			if math.Abs(xw[rec.col]-bd) > 1e-7*(1+math.Abs(bd)) {
				break // y stays 0
			}
			yi := redCost(rec.col) / rec.a
			// Sense sign guard (LE rows need y <= 0, GE rows y >= 0).
			if (rec.sense == LE && yi > 0) || (rec.sense == GE && yi < 0) {
				yi = 0
			}
			y[rec.row] = yi
		case psRowForced:
			// Dual-feasible interval: each fixed column k needs its full
			// reduced cost r_k - y*a_k on the correct side for the bound it
			// was fixed at (>= 0 at lower, <= 0 at upper, minimization).
			ylo, yhi := math.Inf(-1), math.Inf(1)
			switch rec.sense {
			case LE:
				yhi = 0
			case GE:
				ylo = 0
			}
			for q, jj := range rec.idx {
				r := redCost(int(jj))
				a := rec.vals[q]
				bound := r / a
				if rec.atLo[q] == (a > 0) {
					// at-lo with a>0, or at-hi with a<0: y <= r/a
					if bound < yhi {
						yhi = bound
					}
				} else {
					if bound > ylo {
						ylo = bound
					}
				}
			}
			yi := 0.0
			if ylo > yhi {
				yi = (ylo + yhi) / 2 // numerically inconsistent: best effort
			} else if ylo > 0 {
				yi = ylo
			} else if yhi < 0 {
				yi = yhi
			}
			y[rec.row] = yi
		case psColSubst:
			yr := rec.cj / rec.a
			y[rec.row] = yr
			// Undo this substitution's cost transfer: records earlier in the
			// stack were removed before it and must see pre-transfer costs.
			for q, jj := range rec.idx {
				cw[jj] += yr * rec.vals[q]
			}
		case psColDoubleton:
			// Undo the cost transfer first so redCost evaluates against the
			// removal-time costs.
			cw[rec.col2] += rec.cj / rec.a * rec.val
			dj0 := redCost(rec.col)
			dk0 := redCost(rec.col2)
			// Two dual candidates: zero the substituted column's reduced
			// cost (y = d_j/a, always sign-feasible for x_j) or zero the
			// partner's (y = d_k/b, needed when x_k is strictly inside its
			// own bounds because a transferred bound is the active one).
			// Pick by complementarity against the removal-time bounds.
			y1 := dj0 / rec.a
			yi := y1
			if math.Abs(rec.val) > 1e-12 {
				y2 := dk0 / rec.val
				v2 := psDualViol(dj0-y2*rec.a, xw[rec.col], rec.lo1, rec.hi1) +
					psDualViol(dk0-y2*rec.val, xw[rec.col2], rec.lo2, rec.hi2)
				v1 := psDualViol(dj0-y1*rec.a, xw[rec.col], rec.lo1, rec.hi1) +
					psDualViol(dk0-y1*rec.val, xw[rec.col2], rec.lo2, rec.hi2)
				if v2 < v1 {
					yi = y2
				}
			}
			y[rec.row] = yi
		case psColParallel:
			// Split the merged variable back: records earlier in the stack
			// predate the merge and must see x_k, not z = x_k + λ·x_j.
			xw[rec.col2] -= rec.a * xw[rec.col]
		}
	}
	return y
}

// presolvedSolve routes a cold solve through the presolve layer: reduce,
// solve the reduction (with presolve off — no recursion), postsolve. done
// is false when no reduction applied and the caller should solve directly.
func presolvedSolve(p *Problem, opt Options) (Result, bool) {
	ps := PresolveProblem(p, PresolveOptions{Tol: opt.Tol})
	if ps == nil {
		return Result{}, false
	}
	if ps.Infeasible {
		return Result{Status: Infeasible, Stats: Stats{
			PresolveRows: ps.RowsRemoved, PresolveCols: ps.ColsRemoved}}, true
	}
	ropt := opt
	ropt.Presolve = PresolveOff
	ropt.WarmStart = nil
	res := ps.Reduced.Solve(ropt)
	res.Stats.PresolveRows = ps.RowsRemoved
	res.Stats.PresolveCols = ps.ColsRemoved
	if res.Status != Optimal {
		// Infeasibility and unboundedness are preserved exactly by every
		// reduction, so the verdict transfers to the original model.
		res.X = nil
		res.Duals = nil
		return res, true
	}
	x := ps.Postsolve(res.X)
	res.X = x
	obj := 0.0
	for j := range x {
		obj += p.cost[j] * x[j]
	}
	res.Obj = obj
	if opt.WantDuals {
		res.Duals = ps.PostsolveDuals(res.Duals, x)
	}
	return res, true
}
