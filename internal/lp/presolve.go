package lp

import "math"

// presolve.go reduces an LP before the simplex sees it: empty and redundant
// rows are dropped, singleton rows become variable bounds, forced rows fix
// every variable they touch, fixed columns fold into the right-hand side,
// free continuous column singletons in equality rows are substituted out,
// and (only when integrality marks are supplied) row activity bounds
// tighten integer variable bounds. Every reduction is recorded on a
// postsolve stack so the full-space primal solution — and, via the same
// stack walked in reverse, the dual values of removed rows — can be
// recovered exactly.
//
// Scope note: continuous implied-bound tightening is deliberately NOT done.
// Tightening a continuous bound can make that bound active at the reduced
// optimum where the original problem had the row active instead, which
// breaks exact dual postsolve. Integer tightening is safe because it is
// only used through the MILP layer (package ilp), where equivalence is
// required for the integer problem, not the LP relaxation.
//
// The postsolve dual rules follow the standard stack discipline: records
// are processed in reverse removal order, each computing its row's dual
// against the original matrix and the duals assigned so far (later-removed
// rows first). Cost transfers performed by substitutions are exactly the
// y·a adjustments, so original costs plus assigned duals reproduce the
// working reduced costs at every stage.

// PresolveOptions tunes a presolve pass.
type PresolveOptions struct {
	// Tol is the feasibility tolerance; 0 means 1e-9.
	Tol float64
	// Integer marks integral variables (nil = all continuous). Integer
	// columns get activity-based bound tightening (rounded inward), and
	// fixings of integer columns are rounded — a fix that lands further
	// than the tolerance from an integer proves the model infeasible.
	Integer []bool
}

type psKind uint8

const (
	psRowDrop      psKind = iota // empty or redundant row: y = 0
	psRowSingleton               // singleton row turned into a bound on one column
	psRowForced                  // forced row: every column fixed at its extreme
	psColFixed                   // column fixed: x_j = val
	psColSubst                   // free column singleton substituted out (with its row)
)

// psRec is one postsolve record. Field use depends on kind.
type psRec struct {
	kind  psKind
	row   int     // original row index (row kinds, psColSubst)
	col   int     // original column index (psRowSingleton, column kinds)
	a     float64 // coefficient a[row][col] (psRowSingleton, psColSubst)
	val   float64 // fix value (psColFixed)
	cj    float64 // working cost of col at removal time (psColSubst)
	rhs   float64 // row rhs at removal time (psRowSingleton/Forced, psColSubst)
	sense Sense
	idx   []int32   // row entries at removal time, excluding col (psColSubst)
	vals  []float64 // — matching coefficients (psColSubst, psRowForced)
	atLo  []bool    // psRowForced: which bound each entry was fixed at
}

// Presolved is the outcome of a presolve pass: the reduced problem plus
// everything needed to map solutions (and duals) back to the original.
type Presolved struct {
	Reduced *Problem

	// ObjOffset is the objective contribution of removed columns:
	// c_orig·x_full = c_red·x_red + ObjOffset.
	ObjOffset float64

	// ColMap/RowMap map original indices to reduced ones (-1 = removed).
	ColMap []int32
	RowMap []int32

	RowsRemoved int
	ColsRemoved int
	Infeasible  bool

	origN, origM int
	origCost     []float64
	colRowsIdx   [][]int32 // original column view: rows touching each column
	colRowsVal   [][]float64
	stack        []psRec
}

// PresolveProblem reduces p. Returns nil when no reduction applies (callers
// should then solve p directly). A non-nil result with Infeasible set means
// presolve proved the model infeasible.
func PresolveProblem(p *Problem, popt PresolveOptions) *Presolved {
	tol := popt.Tol
	if tol == 0 {
		tol = 1e-9
	}
	n := len(p.cost)
	m := len(p.rows)

	// Working copies. Row entries are physically compacted as columns leave.
	cost := append([]float64(nil), p.cost...)
	lo := append([]float64(nil), p.lo...)
	hi := append([]float64(nil), p.hi...)
	rhs := append([]float64(nil), p.rhs...)
	senses := append([]Sense(nil), p.senses...)
	rIdx := make([][]int32, m)
	rVal := make([][]float64, m)
	for i, r := range p.rows {
		rIdx[i] = append([]int32(nil), r.idx...)
		rVal[i] = append([]float64(nil), r.val...)
	}
	rowAlive := make([]bool, m)
	colAlive := make([]bool, n)
	for i := range rowAlive {
		rowAlive[i] = true
	}
	for j := range colAlive {
		colAlive[j] = true
	}

	ps := &Presolved{origN: n, origM: m, origCost: append([]float64(nil), p.cost...)}

	isInt := func(j int) bool { return popt.Integer != nil && popt.Integer[j] }

	dropCol := func(j int, val float64) bool { // returns false on infeasibility
		if isInt(j) {
			r := math.Round(val)
			if math.Abs(val-r) > 1e-6 {
				return false
			}
			val = r
		}
		for i := range rIdx {
			if !rowAlive[i] {
				continue
			}
			idx, vals := rIdx[i], rVal[i]
			for k := 0; k < len(idx); k++ {
				if int(idx[k]) != j {
					continue
				}
				rhs[i] -= vals[k] * val
				idx[k] = idx[len(idx)-1]
				vals[k] = vals[len(vals)-1]
				rIdx[i] = idx[:len(idx)-1]
				rVal[i] = vals[:len(vals)-1]
				break
			}
		}
		ps.ObjOffset += cost[j] * val
		ps.stack = append(ps.stack, psRec{kind: psColFixed, col: j, val: val})
		colAlive[j] = false
		ps.ColsRemoved++
		return true
	}

	infeasible := func() *Presolved {
		ps.Infeasible = true
		return ps
	}

	changed := true
	for pass := 0; pass < 10 && changed; pass++ {
		changed = false

		// ---- Column sweep: inverted bounds, fixed columns.
		for j := 0; j < n; j++ {
			if !colAlive[j] {
				continue
			}
			if lo[j] > hi[j]+tol {
				return infeasible()
			}
			if hi[j]-lo[j] <= tol && !math.IsInf(lo[j], -1) {
				if !dropCol(j, (lo[j]+hi[j])/2) {
					return infeasible()
				}
				changed = true
			}
		}

		// ---- Column occurrence counts (for singleton-column substitution).
		colCnt := make([]int, n)
		colLastRow := make([]int, n)
		for i := 0; i < m; i++ {
			if !rowAlive[i] {
				continue
			}
			for _, j := range rIdx[i] {
				colCnt[j]++
				colLastRow[j] = i
			}
		}

		// ---- Free continuous column singletons in equality rows: substitute
		// the column out together with its row; the row's dual is exactly
		// c_j/a_ij (the only way the column's reduced cost can vanish).
		for j := 0; j < n; j++ {
			if !colAlive[j] || colCnt[j] != 1 || isInt(j) {
				continue
			}
			if !math.IsInf(lo[j], -1) || !math.IsInf(hi[j], 1) {
				continue
			}
			i := colLastRow[j]
			if senses[i] != EQ {
				continue
			}
			var aj float64
			rec := psRec{kind: psColSubst, row: i, col: j, cj: cost[j], rhs: rhs[i], sense: EQ}
			for k, jj := range rIdx[i] {
				if int(jj) == j {
					aj = rVal[i][k]
					continue
				}
				rec.idx = append(rec.idx, jj)
				rec.vals = append(rec.vals, rVal[i][k])
			}
			if math.Abs(aj) < tol {
				continue
			}
			rec.a = aj
			// Transfer the substituted column's cost onto the row's other
			// columns: c_k -= c_j * a_ik / a_ij, constant term c_j*b_i/a_ij.
			f := cost[j] / aj
			for k, jj := range rec.idx {
				cost[jj] -= f * rec.vals[k]
			}
			ps.ObjOffset += f * rhs[i]
			ps.stack = append(ps.stack, rec)
			colAlive[j] = false
			rowAlive[i] = false
			ps.ColsRemoved++
			ps.RowsRemoved++
			changed = true
		}

		// ---- Row sweep: activity bounds classify each row.
		for i := 0; i < m; i++ {
			if !rowAlive[i] {
				continue
			}
			idx, vals := rIdx[i], rVal[i]

			if len(idx) == 0 { // empty row: constant constraint on 0
				switch senses[i] {
				case LE:
					if rhs[i] < -tol {
						return infeasible()
					}
				case GE:
					if rhs[i] > tol {
						return infeasible()
					}
				case EQ:
					if math.Abs(rhs[i]) > tol {
						return infeasible()
					}
				}
				rowAlive[i] = false
				ps.RowsRemoved++
				ps.stack = append(ps.stack, psRec{kind: psRowDrop, row: i})
				changed = true
				continue
			}

			// Activity bounds over the alive entries.
			infAct, supAct := 0.0, 0.0
			for k, j := range idx {
				a := vals[k]
				if a > 0 {
					infAct += a * lo[j]
					supAct += a * hi[j]
				} else {
					infAct += a * hi[j]
					supAct += a * lo[j]
				}
			}

			// Infeasible by activity alone?
			if (senses[i] == LE || senses[i] == EQ) && infAct > rhs[i]+tol {
				return infeasible()
			}
			if (senses[i] == GE || senses[i] == EQ) && supAct < rhs[i]-tol {
				return infeasible()
			}

			// Singleton row: one coefficient — the row is a variable bound.
			if len(idx) == 1 {
				j, a := int(idx[0]), vals[0]
				bd := rhs[i] / a
				tightLo := senses[i] == GE || senses[i] == EQ
				tightHi := senses[i] == LE || senses[i] == EQ
				if a < 0 {
					tightLo, tightHi = tightHi, tightLo
				}
				if tightLo && bd > lo[j] {
					lo[j] = bd
				}
				if tightHi && bd < hi[j] {
					hi[j] = bd
				}
				if lo[j] > hi[j]+tol {
					return infeasible()
				}
				rowAlive[i] = false
				ps.RowsRemoved++
				ps.stack = append(ps.stack, psRec{kind: psRowSingleton, row: i,
					col: j, a: a, rhs: rhs[i], sense: senses[i]})
				changed = true
				continue
			}

			// Forced row: the activity bound meets the rhs exactly, so every
			// column must sit at its extreme-activity bound.
			forcedLo := !math.IsInf(infAct, -1) && infAct >= rhs[i]-tol &&
				(senses[i] == LE || senses[i] == EQ)
			forcedHi := !math.IsInf(supAct, 1) && supAct <= rhs[i]+tol &&
				(senses[i] == GE || senses[i] == EQ)
			if forcedLo || forcedHi {
				rec := psRec{kind: psRowForced, row: i, rhs: rhs[i], sense: senses[i]}
				for k, j := range idx {
					a := vals[k]
					atLo := (a > 0) == forcedLo
					rec.idx = append(rec.idx, j)
					rec.vals = append(rec.vals, a)
					rec.atLo = append(rec.atLo, atLo)
					// Fix by collapsing the bounds; the column sweep of the
					// next pass removes the column and adjusts the rhs.
					if atLo {
						hi[j] = lo[j]
					} else {
						lo[j] = hi[j]
					}
				}
				rowAlive[i] = false
				ps.RowsRemoved++
				ps.stack = append(ps.stack, rec)
				changed = true
				continue
			}

			// Redundant row: satisfied by every point of the bound box.
			redundant := false
			switch senses[i] {
			case LE:
				redundant = !math.IsInf(supAct, 1) && supAct <= rhs[i]+tol
			case GE:
				redundant = !math.IsInf(infAct, -1) && infAct >= rhs[i]-tol
			}
			if redundant {
				rowAlive[i] = false
				ps.RowsRemoved++
				ps.stack = append(ps.stack, psRec{kind: psRowDrop, row: i})
				changed = true
				continue
			}

			// Integer bound tightening from row activity (integer-only; see
			// the scope note at the top of the file).
			if popt.Integer == nil {
				continue
			}
			for k, j32 := range idx {
				j := int(j32)
				if !isInt(j) {
					continue
				}
				a := vals[k]
				// Activity of the other columns at this row's slack extreme.
				var others float64
				if a > 0 {
					others = infAct - a*lo[j]
				} else {
					others = infAct - a*hi[j]
				}
				if senses[i] == LE || senses[i] == EQ {
					if !math.IsInf(others, -1) {
						if a > 0 {
							if nb := math.Floor((rhs[i]-others)/a + tol); nb < hi[j]-tol {
								hi[j] = nb
								changed = true
							}
						} else {
							if nb := math.Ceil((rhs[i]-others)/a - tol); nb > lo[j]+tol {
								lo[j] = nb
								changed = true
							}
						}
					}
				}
				if senses[i] == GE || senses[i] == EQ {
					var othersSup float64
					if a > 0 {
						othersSup = supAct - a*hi[j]
					} else {
						othersSup = supAct - a*lo[j]
					}
					if !math.IsInf(othersSup, 1) {
						if a > 0 {
							if nb := math.Ceil((rhs[i]-othersSup)/a - tol); nb > lo[j]+tol {
								lo[j] = nb
								changed = true
							}
						} else {
							if nb := math.Floor((rhs[i]-othersSup)/a + tol); nb < hi[j]-tol {
								hi[j] = nb
								changed = true
							}
						}
					}
				}
				if lo[j] > hi[j]+tol {
					return infeasible()
				}
			}
		}
	}

	if ps.RowsRemoved == 0 && ps.ColsRemoved == 0 {
		// Bound tightening alone still counts as a reduction worth keeping,
		// but if literally nothing changed, tell the caller to skip us.
		if !boundsChanged(lo, hi, p.lo, p.hi) {
			return nil
		}
	}

	// ---- Assemble the reduced problem and the index maps.
	ps.ColMap = make([]int32, n)
	ps.RowMap = make([]int32, m)
	red := NewProblem()
	for j := 0; j < n; j++ {
		if !colAlive[j] {
			ps.ColMap[j] = -1
			continue
		}
		ps.ColMap[j] = int32(red.AddVariable(lo[j], hi[j], cost[j]))
		if p.names[j] != "" {
			red.SetName(int(ps.ColMap[j]), p.names[j])
		}
	}
	coefs := make([]Coef, 0, 16)
	for i := 0; i < m; i++ {
		if !rowAlive[i] {
			ps.RowMap[i] = -1
			continue
		}
		coefs = coefs[:0]
		for k, j := range rIdx[i] {
			coefs = append(coefs, Coef{Var: int(ps.ColMap[j]), Val: rVal[i][k]})
		}
		ps.RowMap[i] = int32(red.AddConstraint(coefs, senses[i], rhs[i]))
	}
	ps.Reduced = red

	// Original column view, for dual postsolve (reduced costs need column
	// dot products against the full matrix).
	ps.colRowsIdx = make([][]int32, n)
	ps.colRowsVal = make([][]float64, n)
	for i, r := range p.rows {
		for k, j := range r.idx {
			ps.colRowsIdx[j] = append(ps.colRowsIdx[j], int32(i))
			ps.colRowsVal[j] = append(ps.colRowsVal[j], r.val[k])
		}
	}
	return ps
}

func boundsChanged(lo, hi, origLo, origHi []float64) bool {
	for j := range lo {
		if lo[j] != origLo[j] || hi[j] != origHi[j] {
			return true
		}
	}
	return false
}

// MapMask maps a per-original-column boolean mask (e.g. integrality marks)
// onto the reduced column space.
func (ps *Presolved) MapMask(mask []bool) []bool {
	out := make([]bool, ps.Reduced.NumVars())
	for j, rj := range ps.ColMap {
		if rj >= 0 {
			out[rj] = mask[j]
		}
	}
	return out
}

// Postsolve lifts a reduced-space solution to the original variable space,
// replaying the removal stack in reverse (substitutions may reference
// columns fixed in later passes, whose records are processed first).
func (ps *Presolved) Postsolve(xRed []float64) []float64 {
	x := make([]float64, ps.origN)
	for j, rj := range ps.ColMap {
		if rj >= 0 {
			x[j] = xRed[rj]
		}
	}
	for k := len(ps.stack) - 1; k >= 0; k-- {
		rec := &ps.stack[k]
		switch rec.kind {
		case psColFixed:
			x[rec.col] = rec.val
		case psColSubst:
			v := rec.rhs
			for q, jj := range rec.idx {
				v -= rec.vals[q] * x[jj]
			}
			x[rec.col] = v / rec.a
		}
	}
	return x
}

// PostsolveDuals lifts reduced-space row duals to the original rows. x must
// be the full-space primal solution (from Postsolve). Removed rows get
// their duals from the standard stack rules: dropped rows take zero,
// substituted equality rows take c_j/a_ij, singleton rows absorb the
// reduced cost of their column when the bound they imposed is the active
// one, and forced rows take the point of their dual-feasible interval
// closest to zero.
func (ps *Presolved) PostsolveDuals(yRed, x []float64) []float64 {
	y := make([]float64, ps.origM)
	for i, ri := range ps.RowMap {
		if ri >= 0 {
			y[i] = yRed[ri]
		}
	}
	// Working costs as of the LAST removal: original costs plus every
	// substitution's cost transfer. Walking the stack backwards undoes each
	// transfer as its record is passed, so redCost always evaluates against
	// the working costs at that record's own removal time. (Transfers from
	// substitutions removed earlier than a record are baked into cw — their
	// rows were already dead, so their duals rightly contribute through cw
	// rather than through the y sum; rows still alive at the record's
	// removal contribute through y, assigned by the reverse walk before the
	// record is reached.)
	cw := append([]float64(nil), ps.origCost...)
	for k := range ps.stack {
		rec := &ps.stack[k]
		if rec.kind == psColSubst {
			yr := rec.cj / rec.a
			for q, jj := range rec.idx {
				cw[jj] -= yr * rec.vals[q]
			}
		}
	}
	// Reduced cost of original column j: working cost at the current stack
	// position minus the contributions of all duals assigned so far.
	redCost := func(j int) float64 {
		d := cw[j]
		for k, i := range ps.colRowsIdx[j] {
			d -= y[i] * ps.colRowsVal[j][k]
		}
		return d
	}
	for k := len(ps.stack) - 1; k >= 0; k-- {
		rec := &ps.stack[k]
		switch rec.kind {
		case psRowSingleton:
			// The row imposed the bound rhs/a on its column. Only when the
			// solution sits on that bound can the row be binding.
			bd := rec.rhs / rec.a
			if math.Abs(x[rec.col]-bd) > 1e-7*(1+math.Abs(bd)) {
				break // y stays 0
			}
			yi := redCost(rec.col) / rec.a
			// Sense sign guard (LE rows need y <= 0, GE rows y >= 0).
			if (rec.sense == LE && yi > 0) || (rec.sense == GE && yi < 0) {
				yi = 0
			}
			y[rec.row] = yi
		case psRowForced:
			// Dual-feasible interval: each fixed column k needs its full
			// reduced cost r_k - y*a_k on the correct side for the bound it
			// was fixed at (>= 0 at lower, <= 0 at upper, minimization).
			ylo, yhi := math.Inf(-1), math.Inf(1)
			switch rec.sense {
			case LE:
				yhi = 0
			case GE:
				ylo = 0
			}
			for q, jj := range rec.idx {
				r := redCost(int(jj))
				a := rec.vals[q]
				bound := r / a
				if rec.atLo[q] == (a > 0) {
					// at-lo with a>0, or at-hi with a<0: y <= r/a
					if bound < yhi {
						yhi = bound
					}
				} else {
					if bound > ylo {
						ylo = bound
					}
				}
			}
			yi := 0.0
			if ylo > yhi {
				yi = (ylo + yhi) / 2 // numerically inconsistent: best effort
			} else if ylo > 0 {
				yi = ylo
			} else if yhi < 0 {
				yi = yhi
			}
			y[rec.row] = yi
		case psColSubst:
			yr := rec.cj / rec.a
			y[rec.row] = yr
			// Undo this substitution's cost transfer: records earlier in the
			// stack were removed before it and must see pre-transfer costs.
			for q, jj := range rec.idx {
				cw[jj] += yr * rec.vals[q]
			}
		}
	}
	return y
}

// presolvedSolve routes a cold solve through the presolve layer: reduce,
// solve the reduction (with presolve off — no recursion), postsolve. done
// is false when no reduction applied and the caller should solve directly.
func presolvedSolve(p *Problem, opt Options) (Result, bool) {
	ps := PresolveProblem(p, PresolveOptions{Tol: opt.Tol})
	if ps == nil {
		return Result{}, false
	}
	if ps.Infeasible {
		return Result{Status: Infeasible, Stats: Stats{
			PresolveRows: ps.RowsRemoved, PresolveCols: ps.ColsRemoved}}, true
	}
	ropt := opt
	ropt.Presolve = PresolveOff
	ropt.WarmStart = nil
	res := ps.Reduced.Solve(ropt)
	res.Stats.PresolveRows = ps.RowsRemoved
	res.Stats.PresolveCols = ps.ColsRemoved
	if res.Status != Optimal {
		// Infeasibility and unboundedness are preserved exactly by every
		// reduction, so the verdict transfers to the original model.
		res.X = nil
		res.Duals = nil
		return res, true
	}
	x := ps.Postsolve(res.X)
	res.X = x
	obj := 0.0
	for j := range x {
		obj += p.cost[j] * x[j]
	}
	res.Obj = obj
	if opt.WantDuals {
		res.Duals = ps.PostsolveDuals(res.Duals, x)
	}
	return res, true
}
