package lp

import (
	"math"

	"optrouter/internal/obs"
)

// This file promotes the dual simplex from a warm-restore helper (dual.go)
// to a primary algorithm (Options.Algorithm == AlgorithmDual). The solve
// starts from the all-slack basis — an identity matrix, so the initial dual
// steepest-edge row norms are exactly 1 and the exact-DSE recurrence keeps
// them exact from the first pivot — with every nonbasic column rested on the
// bound its cost sign makes dual feasible. Columns with no such bound (a
// free variable with nonzero cost, or a one-sided variable whose cost points
// away from its only bound) get a temporary artificial bound at their
// current value: this is the dual phase 1, and it restricts the primal
// problem, so an Infeasible verdict reached with artificial bounds in play
// is not a certificate and falls back to the primal algorithm. After the
// bound-flipping dual restore reaches primal feasibility the artificial
// bounds are lifted (each affected variable keeps its value under the
// re-derived state, so feasibility survives) and a final primal phase-2
// pass certifies optimality against the true bounds — the same "dual
// steers, primal certifies" discipline as the warm path.

// dualArtBound records one imposed artificial bound for later restoration.
type dualArtBound struct {
	j     int32
	lower bool // which side was overwritten
}

// dualSolve runs the primary dual simplex. done=false means the attempt
// cannot be certified (iteration cap, singular basis, or an infeasibility
// verdict under artificial bounds) and the caller must run the primal
// algorithm instead.
func dualSolve(p *Problem, opt Options) (Result, *simplex, bool) {
	m, n := len(p.rows), len(p.cost)
	s := &simplex{p: p, opt: opt.withDefaults(m, n), m: m, n: n, mutGen: p.mutGen}
	if s.opt.CollectPhases {
		s.clock = obs.NewPhaseClock()
	}
	s.setPricing(opt.Pricing)
	s.clock.Enter(PhaseBuild)
	s.buildColumns()
	art := s.dualBasis()
	s.dualCap = s.opt.MaxIters
	s.dualDSE = true

	st, ok := s.dualRestore()
	s.dualDSE = false
	nab := len(art)
	s.liftArtificialBounds(art)
	if !ok {
		s.clock.Stop()
		return Result{}, nil, false
	}
	if st != Optimal {
		if st == Infeasible && nab == 0 {
			// The certificate was derived under the true bounds: trust it.
			return s.result(Infeasible), s, true
		}
		s.clock.Stop()
		return Result{}, nil, false
	}
	pst := s.iterate(s.cost[:s.ncols])
	if pst == IterLimit {
		s.clock.Stop()
		return Result{}, nil, false
	}
	return s.primalResult(pst), s, true
}

// dualBasis installs the all-slack basis with dual-feasible nonbasic rest
// sides, imposing artificial bounds where dual feasibility has no bound to
// rest on. Returns the imposed bounds for later restoration.
func (s *simplex) dualBasis() []dualArtBound {
	m, n := s.m, s.n
	tol := s.opt.Tol
	var art []dualArtBound

	s.state = make([]varState, s.ncols, s.ncols+m)
	for j := 0; j < n; j++ {
		lo, hi := s.lo[j], s.hi[j]
		c := s.cost[j]
		switch {
		case c > tol: // d_j = c_j > 0 at the slack basis: must rest at lower
			if !math.IsInf(lo, -1) {
				s.state[j] = stAtLower
			} else if !math.IsInf(hi, 1) {
				// Pin at the existing upper bound (temporarily fixed, so no
				// dual-feasibility condition applies); lifting the artificial
				// lower bound later re-derives stAtUpper at the same value.
				s.lo[j] = hi
				s.state[j] = stAtLower
				art = append(art, dualArtBound{int32(j), true})
			} else {
				s.lo[j] = 0
				s.state[j] = stAtLower
				art = append(art, dualArtBound{int32(j), true})
			}
		case c < -tol: // must rest at upper
			if !math.IsInf(hi, 1) {
				s.state[j] = stAtUpper
			} else if !math.IsInf(lo, -1) {
				s.hi[j] = lo
				s.state[j] = stAtUpper
				art = append(art, dualArtBound{int32(j), false})
			} else {
				s.hi[j] = 0
				s.state[j] = stAtUpper
				art = append(art, dualArtBound{int32(j), false})
			}
		default: // |d_j| within tolerance: any rest side is dual feasible
			s.state[j] = restState(lo, hi)
		}
	}

	// Slack residual and the identity basis. Every slack has a finite bound
	// and zero cost, so slacks are never dual infeasible.
	resid := s.residScratch()
	for j := 0; j < n; j++ {
		v := s.nbValue(j)
		if v == 0 {
			continue
		}
		for k, i := range s.colIdx[j] {
			resid[i] -= s.colVal[j][k] * v
		}
	}
	s.basis = make([]int, m)
	s.xB = make([]float64, m)
	for i := 0; i < m; i++ {
		sl := n + i
		s.basis[i] = sl
		s.state[sl] = stBasic
		s.xB[i] = resid[i]
	}

	s.growWorkspaces()
	if s.opt.Engine == EngineDense {
		s.binv = make([]float64, m*m)
		for i := 0; i < m; i++ {
			s.binv[i*m+i] = 1
		}
		return art
	}
	s.lu = &luFactor{ftMode: s.opt.Update.resolve() == UpdateFT}
	// The all-slack basis is the identity; this factorization cannot fail.
	s.lu.factorize(m, s.basis, s.colIdx, s.colVal)
	s.noteFactorization()
	return art
}

// liftArtificialBounds restores the true bounds over the artificial ones and
// re-derives the states of variables still resting on a lifted bound. Each
// such variable keeps its current value — the artificial bound was placed at
// the nearest true bound (or zero for a fully free variable, which rests as
// stFreeZero) — so basic values and primal feasibility are unaffected.
func (s *simplex) liftArtificialBounds(art []dualArtBound) {
	for _, ab := range art {
		j := int(ab.j)
		if ab.lower {
			s.lo[j] = s.p.lo[j]
			if s.state[j] == stAtLower {
				if !math.IsInf(s.hi[j], 1) {
					s.state[j] = stAtUpper
				} else {
					s.state[j] = stFreeZero
				}
			}
		} else {
			s.hi[j] = s.p.hi[j]
			if s.state[j] == stAtUpper {
				if !math.IsInf(s.lo[j], -1) {
					s.state[j] = stAtLower
				} else {
					s.state[j] = stFreeZero
				}
			}
		}
	}
}
