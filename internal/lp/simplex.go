package lp

import (
	"math"

	"optrouter/internal/obs"
)

// varState classifies a nonbasic variable's current position.
type varState uint8

const (
	stBasic varState = iota
	stAtLower
	stAtUpper
	stFreeZero // free variable resting at value 0
)

// simplex is the working state of one bounded-variable two-phase solve.
// The column space is [structural | slacks | artificials]; slacks encode the
// constraint senses and artificials make the initial basis feasible.
//
// The linear algebra behind the iterations is pluggable (Options.Engine):
// the default sparse engine represents the basis as an LU factorization plus
// a product-form eta file (factor.go/ftran.go); the dense engine maintains
// an explicit m x m basis inverse and is kept as the differential-testing
// reference. Both produce the pivot column in w/wv (dense values plus a
// deduplicated nonzero index list) so the ratio test and value updates
// iterate only the touched rows.
type simplex struct {
	p   *Problem
	opt Options

	m, n   int // rows, structural columns
	ncols  int // total columns
	colIdx [][]int32
	colVal [][]float64
	lo, hi []float64
	cost   []float64 // phase-2 cost per column (0 for slack/artificial)

	basis []int      // basis[i] = column basic in row i
	state []varState // per column
	xB    []float64  // value of basic variable per row
	b     []float64  // rhs
	nArt  int        // number of artificial columns appended

	binv []float64 // dense m x m row-major basis inverse (EngineDense only)
	lu   *luFactor // sparse LU + eta file (EngineSparse only)

	y    []float64 // dual vector (aliases yv.val)
	w    []float64 // pivot column (aliases wv.val)
	yv   spVec     // dual workspace; nonzero list used by the sparse engine
	wv   spVec     // pivot-column workspace; wv.ind is the touched-row list
	av   spVec     // FTRAN/BTRAN right-hand-side workspace
	rhov spVec     // B^{-1} row workspace (dual ratio test)
	tauv spVec     // steepest-edge tau = B^-T w workspace (pricing.go)
	fv   spVec     // bound-flip combined-column FTRAN workspace (dual.go)

	pr pricer    // maintained pricing state (pricing.go)
	dw []float64 // dual pricing weights per row (dual.go)

	// Pooled bound-flipping ratio test breakpoint arrays (dual.go).
	bfJ     []int32
	bfRatio []float64
	bfAlpha []float64

	costBuf  []float64 // pooled phase-1 cost vector (solve())
	residBuf []float64 // pooled residual for refresh()/coldBasis
	xsol     []float64 // pooled Result.X buffer (see Result.X docs)
	ysol     []float64 // pooled Result.Duals buffer (Options.WantDuals)

	iters  int
	stats  Stats
	bland  bool            // Bland's anti-cycling rule active
	stall  int             // consecutive degenerate pivots
	clock  *obs.PhaseClock // nil unless Options.CollectPhases
	mutGen uint64          // Problem.mutGen at build time (engine staleness check)

	// Primary dual-simplex mode (algorithm.go). dualCap overrides the warm
	// restore's short pivot budget (a primary dual run needs a full-length
	// one), and dualDSE forces exact dual steepest-edge row weights in
	// dualWeightUpdate regardless of the column pricing rule.
	dualCap int
	dualDSE bool
}

// dualIterCap is the dual-restore pivot budget: short for warm restores
// (anything longer is evidence the basis was a bad start and the cold solve
// should take over), full-length when the dual simplex is the primary
// algorithm.
func (s *simplex) dualIterCap() int {
	if s.dualCap > 0 {
		return s.dualCap
	}
	return 40*s.m + 400
}

func newSimplex(p *Problem, opt Options) *simplex {
	m := len(p.rows)
	n := len(p.cost)
	s := &simplex{
		p:      p,
		opt:    opt.withDefaults(m, n),
		m:      m,
		n:      n,
		mutGen: p.mutGen,
	}
	if s.opt.CollectPhases {
		s.clock = obs.NewPhaseClock()
	}
	s.setPricing(opt.Pricing)
	s.clock.Enter(PhaseBuild)
	s.build()
	return s
}

// build assembles internal columns then installs the cold initial basis.
func (s *simplex) build() {
	s.buildColumns()
	s.coldBasis()
}

// buildColumns assembles the structural and slack columns (shared between the
// cold and warm start paths).
func (s *simplex) buildColumns() {
	p := s.p
	m, n := s.m, s.n

	// Structural columns, gathered from rows.
	s.colIdx = make([][]int32, n, n+2*m)
	s.colVal = make([][]float64, n, n+2*m)
	for i, r := range p.rows {
		for k, j := range r.idx {
			s.colIdx[j] = append(s.colIdx[j], int32(i))
			s.colVal[j] = append(s.colVal[j], r.val[k])
		}
	}
	s.lo = append([]float64(nil), p.lo...)
	s.hi = append([]float64(nil), p.hi...)
	s.cost = append([]float64(nil), p.cost...)
	s.b = append([]float64(nil), p.rhs...)

	// Slack columns.
	for i := 0; i < m; i++ {
		s.colIdx = append(s.colIdx, []int32{int32(i)})
		s.colVal = append(s.colVal, []float64{1})
		switch p.senses[i] {
		case LE:
			s.lo = append(s.lo, 0)
			s.hi = append(s.hi, Inf)
		case GE:
			s.lo = append(s.lo, -Inf)
			s.hi = append(s.hi, 0)
		case EQ:
			s.lo = append(s.lo, 0)
			s.hi = append(s.hi, 0)
		}
		s.cost = append(s.cost, 0)
	}
	s.ncols = n + m
}

// coldBasis installs the slack-or-artificial initial basis (phase 1 start).
func (s *simplex) coldBasis() {
	m, n := s.m, s.n

	// Nonbasic rest values for structural variables: nearest finite bound.
	s.state = make([]varState, s.ncols, s.ncols+m)
	for j := 0; j < n; j++ {
		s.state[j] = restState(s.lo[j], s.hi[j])
	}

	// Residual per row given nonbasic structural values.
	resid := s.residScratch()
	for j := 0; j < n; j++ {
		v := s.nbValue(j)
		if v == 0 {
			continue
		}
		for k, i := range s.colIdx[j] {
			resid[i] -= s.colVal[j][k] * v
		}
	}

	// Choose initial basis: slack where feasible, otherwise artificial.
	s.basis = make([]int, m)
	s.xB = make([]float64, m)
	for i := 0; i < m; i++ {
		sl := n + i
		if resid[i] >= s.lo[sl]-s.opt.Tol && resid[i] <= s.hi[sl]+s.opt.Tol {
			s.basis[i] = sl
			s.state[sl] = stBasic
			s.xB[i] = resid[i]
			continue
		}
		// Slack pinned at its nearest bound; artificial absorbs the rest.
		sv := math.Max(s.lo[sl], math.Min(s.hi[sl], 0))
		if resid[i] < s.lo[sl] {
			sv = s.lo[sl]
			s.state[sl] = stAtLower
		} else {
			sv = s.hi[sl]
			s.state[sl] = stAtUpper
		}
		if s.lo[sl] == s.hi[sl] {
			s.state[sl] = stAtLower
		}
		gap := resid[i] - sv
		sign := 1.0
		if gap < 0 {
			sign = -1.0
		}
		art := s.ncols
		s.colIdx = append(s.colIdx, []int32{int32(i)})
		s.colVal = append(s.colVal, []float64{sign})
		s.lo = append(s.lo, 0)
		s.hi = append(s.hi, Inf)
		s.cost = append(s.cost, 0)
		s.state = append(s.state, stBasic)
		s.ncols++
		s.nArt++
		s.basis[i] = art
		s.xB[i] = math.Abs(gap)
	}

	s.growWorkspaces()
	if s.opt.Engine == EngineDense {
		// The initial basis matrix is diagonal: slacks are +1, artificials
		// may be -1; the inverse is the same diagonal.
		s.binv = make([]float64, m*m)
		for i := 0; i < m; i++ {
			s.binv[i*m+i] = 1
			j := s.basis[i]
			if len(s.colVal[j]) == 1 && s.colVal[j][0] == -1 {
				s.binv[i*m+i] = -1
			}
		}
		return
	}
	s.lu = &luFactor{ftMode: s.opt.Update.resolve() == UpdateFT}
	// The diagonal initial basis factorizes trivially (all singletons); a
	// failure here is impossible, but fall back to marking every stat anyway.
	s.lu.factorize(m, s.basis, s.colIdx, s.colVal)
	s.noteFactorization()
}

// growWorkspaces sizes the per-solve vector workspaces (idempotent).
func (s *simplex) growWorkspaces() {
	s.yv.grow(s.m)
	s.wv.grow(s.m)
	s.av.grow(s.m)
	s.rhov.grow(s.m)
	s.tauv.grow(s.m)
	s.fv.grow(s.m)
	s.y = s.yv.val
	s.w = s.wv.val
	s.pr.grow(s.ncols)
	if len(s.dw) < s.m {
		s.dw = make([]float64, s.m)
	}
}

// binvRow materializes row r of B^{-1} (the tableau row of basis position r,
// used by the dual ratio test) into the pooled rhov workspace and returns its
// dense value array. Sparse engine: rho = BTRAN(e_r), touching only the
// nonzero pattern; dense engine: a row copy.
func (s *simplex) binvRow(r int) []float64 {
	if s.lu != nil {
		prev := s.clockSub(PhaseBTRAN)
		s.av.reset()
		s.av.set(int32(r), 1)
		s.lu.btran(&s.av, &s.rhov)
		s.stats.BTRANNnz += len(s.rhov.ind)
		s.clockBack(prev)
		return s.rhov.val
	}
	copy(s.rhov.val[:s.m], s.binv[r*s.m:r*s.m+s.m])
	return s.rhov.val
}

// noteFactorization records the last factorization's size in the stats.
func (s *simplex) noteFactorization() {
	s.stats.FactorNNZ = s.lu.factorNNZ
	if s.lu.basisNNZ > 0 {
		s.stats.FillRatio = float64(s.lu.factorNNZ) / float64(s.lu.basisNNZ)
	}
}

func restState(lo, hi float64) varState {
	switch {
	case !math.IsInf(lo, -1):
		return stAtLower
	case !math.IsInf(hi, 1):
		return stAtUpper
	default:
		return stFreeZero
	}
}

// nbValue returns the resting value of nonbasic column j.
func (s *simplex) nbValue(j int) float64 {
	switch s.state[j] {
	case stAtLower:
		return s.lo[j]
	case stAtUpper:
		return s.hi[j]
	default:
		return 0
	}
}

// clockSub switches the phase clock into a linear-algebra sub-phase (ftran,
// btran), returning the phase to restore via clockBack. No-ops without
// CollectPhases.
func (s *simplex) clockSub(name string) string {
	if s.clock == nil {
		return ""
	}
	return s.clock.Swap(name)
}

func (s *simplex) clockBack(prev string) {
	if prev != "" {
		s.clock.Enter(prev)
	}
}

// computeDuals fills s.y with the duals of the given cost vector:
// y = cB^T B^{-1}, a BTRAN of the basic-cost vector. Entries of y outside
// the sparse engine's tracked nonzeros are guaranteed zero.
func (s *simplex) computeDuals(cost []float64) {
	m := s.m
	if s.lu != nil {
		prev := s.clockSub(PhaseBTRAN)
		s.av.reset()
		for i := 0; i < m; i++ {
			if cb := cost[s.basis[i]]; cb != 0 {
				s.av.set(int32(i), cb)
			}
		}
		s.lu.btran(&s.av, &s.yv)
		s.stats.BTRANNnz += len(s.yv.ind)
		s.clockBack(prev)
		return
	}
	for i := 0; i < m; i++ {
		s.y[i] = 0
	}
	for i := 0; i < m; i++ {
		cb := cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			s.y[k] += cb * row[k]
		}
	}
}

// computePivotColumn fills s.w (and the touched-row list s.wv.ind) with the
// transformed entering column w = B^{-1} A_enter — an FTRAN.
func (s *simplex) computePivotColumn(enter int) {
	m := s.m
	if s.lu != nil {
		prev := s.clockSub(PhaseFTRAN)
		s.av.reset()
		for k, r := range s.colIdx[enter] {
			s.av.set(r, s.colVal[enter][k])
		}
		s.lu.ftran(&s.av, &s.wv)
		s.stats.FTRANNnz += len(s.wv.ind)
		s.clockBack(prev)
		return
	}
	for i := 0; i < m; i++ {
		s.w[i] = 0
	}
	for k, r := range s.colIdx[enter] {
		v := s.colVal[enter][k]
		for i := 0; i < m; i++ {
			s.w[i] += s.binv[i*m+int(r)] * v
		}
	}
	s.wv.ind = s.wv.ind[:0]
	for i := 0; i < m; i++ {
		if s.w[i] != 0 {
			s.wv.ind = append(s.wv.ind, int32(i))
		}
	}
}

// updateBasisRep folds the just-performed basis exchange (entering column's
// transform in s.wv, leaving row leave) into the basis representation.
// Returns false when the representation could not be repaired (singular
// refactorization) — the caller must give up on the solve.
func (s *simplex) updateBasisRep(leave int) bool {
	if s.lu != nil {
		if !s.lu.update(int32(leave), &s.wv) {
			// Update rejected on spike-pivot quality: rebuild from the
			// (already exchanged) basis.
			s.stats.RefactorUpdateRejected++
			return s.refactorize()
		}
		reason := s.lu.refactorDue()
		if reason == refactorNone {
			s.stats.EtaPivots++
			return true
		}
		// Update absorbed but the update file outgrew its budget.
		if reason == refactorEtaLen {
			s.stats.RefactorEtaLen++
		} else {
			s.stats.RefactorFill++
		}
		return s.refactorize()
	}
	m := s.m
	piv := s.w[leave]
	prow := s.binv[leave*m : leave*m+m]
	inv := 1 / piv
	for k := 0; k < m; k++ {
		prow[k] *= inv
	}
	for _, i32 := range s.wv.ind {
		i := int(i32)
		if i == leave {
			continue
		}
		f := s.w[i]
		if f == 0 {
			continue
		}
		irow := s.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			irow[k] -= f * prow[k]
		}
	}
	return true
}

// result assembles a Result carrying the accumulated statistics.
func (s *simplex) result(st Status) Result {
	s.stats.Iters = s.iters
	s.clock.Stop()
	s.stats.Phases = s.clock.Breakdown()
	return Result{Status: st, Iters: s.iters, Stats: s.stats}
}

// costScratch returns the pooled per-phase cost vector, zeroed.
func (s *simplex) costScratch() []float64 {
	if cap(s.costBuf) < s.ncols {
		s.costBuf = make([]float64, s.ncols)
	}
	s.costBuf = s.costBuf[:s.ncols]
	for j := range s.costBuf {
		s.costBuf[j] = 0
	}
	return s.costBuf
}

// residScratch returns the pooled residual vector, initialized to the rhs.
func (s *simplex) residScratch() []float64 {
	if cap(s.residBuf) < s.m {
		s.residBuf = make([]float64, s.m)
	}
	s.residBuf = s.residBuf[:s.m]
	copy(s.residBuf, s.b)
	return s.residBuf
}

// solve runs phase 1 (drive artificials to zero) then phase 2.
func (s *simplex) solve() Result {
	tol := s.opt.Tol

	if s.nArt > 0 {
		// Phase-1 costs: 1 on artificial columns.
		phase1 := s.costScratch()
		for j := s.n + s.m; j < s.ncols; j++ {
			phase1[j] = 1
		}
		st := s.iterate(phase1)
		s.stats.Phase1Iters = s.iters
		if st == IterLimit {
			return s.result(IterLimit)
		}
		infeas := 0.0
		for i, j := range s.basis {
			if j >= s.n+s.m {
				infeas += s.xB[i]
			}
		}
		if infeas > tol {
			return s.result(Infeasible)
		}
		// Freeze artificials at zero for phase 2.
		for j := s.n + s.m; j < s.ncols; j++ {
			s.hi[j] = 0
		}
	}

	// Phase 2 prices s.cost directly (artificial entries are zero, same as
	// the old scratch copy). The stable slice identity matters: the pricer's
	// maintained reduced costs are keyed to the cost vector's address, so
	// pricing state survives from here across later warm reoptimizations of
	// this engine (reSolve), which price the same s.cost slice.
	st := s.iterate(s.cost[:s.ncols])
	return s.primalResult(st)
}

// primalResult assembles the solution (and optional basis snapshot) after the
// final phase-2 iterate; shared by the cold and warm solve paths.
func (s *simplex) primalResult(st Status) Result {
	if st != Optimal {
		return s.result(st)
	}
	// The solution vector is pooled on the engine: every structural index is
	// written below (nonbasic rest values, then basic values), so no zeroing
	// is needed. See the Result.X aliasing contract in lp.go.
	if cap(s.xsol) < s.n {
		s.xsol = make([]float64, s.n)
	}
	x := s.xsol[:s.n]
	for j := 0; j < s.n; j++ {
		if s.state[j] != stBasic {
			x[j] = s.nbValue(j)
		}
	}
	for i, j := range s.basis {
		if j < s.n {
			x[j] = s.xB[i]
		}
	}
	obj := 0.0
	for j := 0; j < s.n; j++ {
		obj += s.p.cost[j] * x[j]
	}
	r := s.result(Optimal)
	r.Obj = obj
	r.X = x
	if s.opt.WantDuals {
		if cap(s.ysol) < s.m {
			s.ysol = make([]float64, s.m)
		}
		s.computeDuals(s.cost[:s.ncols])
		r.Duals = s.ysol[:s.m]
		copy(r.Duals, s.y[:s.m])
	}
	if s.opt.SnapshotBasis {
		r.Basis = s.snapshot()
	}
	return r
}

// snapshot captures the final basis over the structural+slack columns. A
// basic artificial (necessarily at value zero in an optimal solution) is
// replaced by its row's slack — the two columns are parallel (±e_i), so the
// substituted basis stays nonsingular; if that slack is already basic the
// snapshot is abandoned (nil) rather than risking a broken warm start.
func (s *simplex) snapshot() *Basis {
	nm := s.n + s.m
	bs := &Basis{n: s.n, m: s.m,
		basis: make([]int32, s.m),
		state: make([]varState, nm),
	}
	copy(bs.state, s.state[:nm])
	for i, j := range s.basis {
		if j >= nm {
			sl := s.n + i
			if bs.state[sl] == stBasic {
				return nil
			}
			bs.state[sl] = stBasic
			j = sl
		}
		bs.basis[i] = int32(j)
	}
	return bs
}

// priceDantzig is the legacy pricing iteration — duals recomputed from
// scratch, full most-negative-reduced-cost sweep — kept verbatim as the
// differential reference for the incremental rules in pricing.go. Bland's
// anti-cycling mode also routes here (lowest-index eligible column).
func (s *simplex) priceDantzig(cost []float64) (int, float64) {
	tol := s.opt.Tol

	// Duals: y = cB^T * Binv (a BTRAN).
	s.computeDuals(cost)

	enter := -1
	var enterDir float64 // +1: increase from lower/zero, -1: decrease from upper/zero
	best := tol
	for j := 0; j < s.ncols; j++ {
		st := s.state[j]
		if st == stBasic {
			continue
		}
		if s.hi[j]-s.lo[j] < 1e-13 && st != stFreeZero {
			continue // fixed variable can never usefully enter
		}
		d := cost[j]
		for k, i := range s.colIdx[j] {
			d -= s.y[i] * s.colVal[j][k]
		}
		var score float64
		var dir float64
		switch st {
		case stAtLower:
			if d < -tol {
				score, dir = -d, 1
			}
		case stAtUpper:
			if d > tol {
				score, dir = d, -1
			}
		case stFreeZero:
			if d < -tol {
				score, dir = -d, 1
			} else if d > tol {
				score, dir = d, -1
			}
		}
		if dir == 0 {
			continue
		}
		if s.bland {
			return j, dir
		}
		if score > best {
			best, enter, enterDir = score, j, dir
		}
	}
	return enter, enterDir
}

// iterate runs primal simplex iterations under the given cost vector until
// optimality, unboundedness or the iteration limit.
func (s *simplex) iterate(cost []float64) Status {
	tol := s.opt.Tol
	for {
		if s.iters >= s.opt.MaxIters {
			return IterLimit
		}
		s.iters++
		s.clock.Enter(PhasePricing)

		// Pricing: the legacy Dantzig sweep (also the Bland anti-cycling
		// path, which needs exact lowest-index semantics), or the maintained
		// incremental rules from pricing.go.
		legacy := s.pr.rule == PricingDantzig || s.bland
		var enter int
		var enterDir float64
		if legacy {
			s.pr.valid = false
			enter, enterDir = s.priceDantzig(cost)
		} else {
			enter, enterDir = s.priceIncremental(cost)
		}
		if enter == -1 {
			return Optimal
		}
		s.clock.Enter(PhaseRatioTest)

		// Pivot column w = Binv * A_enter (an FTRAN); wv.ind lists the
		// touched rows, so the ratio test skips every zero row.
		s.computePivotColumn(enter)

		if !legacy {
			// Verify the maintained reduced cost of the entering column
			// against its exact value, which is free given the FTRAN result:
			// d_q = c_q - cB·w. Drift beyond tolerance means the maintained
			// vector has degraded — resync and price again.
			dq := cost[enter]
			for _, i := range s.wv.ind {
				dq -= cost[s.basis[i]] * s.w[i]
			}
			if math.Abs(dq-s.pr.d[enter]) > priceDriftTol*(1+math.Abs(dq)) {
				s.resyncPricing(cost)
				continue
			}
			s.pr.d[enter] = dq
			if eligibleDir(s.state[enter], dq, tol) != enterDir {
				continue // no longer (or differently) eligible under exact d
			}
		}

		// Bounded ratio test. Entering moves by t >= 0 in direction enterDir;
		// basic variable i changes at rate delta_i = -enterDir * w[i].
		tMax := s.hi[enter] - s.lo[enter] // bound-to-bound distance
		if s.state[enter] == stFreeZero {
			tMax = Inf
		}
		leave := -1
		leaveToUpper := false
		t := tMax
		for _, i32 := range s.wv.ind {
			i := int(i32)
			delta := -enterDir * s.w[i]
			bj := s.basis[i]
			var ti float64
			var toUpper bool
			if delta > tol {
				if math.IsInf(s.hi[bj], 1) {
					continue
				}
				ti = (s.hi[bj] - s.xB[i]) / delta
				toUpper = true
			} else if delta < -tol {
				if math.IsInf(s.lo[bj], -1) {
					continue
				}
				ti = (s.lo[bj] - s.xB[i]) / delta
				toUpper = false
			} else {
				continue
			}
			if ti < 0 {
				ti = 0
			}
			if ti < t-1e-12 || (ti < t+1e-12 && leave >= 0 && math.Abs(s.w[i]) > math.Abs(s.w[leave])) {
				t = ti
				leave = i
				leaveToUpper = toUpper
			}
		}

		if math.IsInf(t, 1) {
			return Unbounded
		}
		s.clock.Enter(PhasePivot)

		// Track degeneracy to toggle Bland's rule.
		if t <= 1e-10 {
			s.stats.DegeneratePivots++
			s.stall++
			if s.stall > 60 {
				s.bland = true
			}
		} else {
			s.stall = 0
			s.bland = false
		}

		// Apply the step to basic values.
		if t != 0 {
			for _, i := range s.wv.ind {
				s.xB[i] += t * (-enterDir * s.w[i])
			}
		}

		if leave == -1 {
			// Bound-to-bound flip of the entering variable.
			s.stats.BoundFlips++
			if s.state[enter] == stAtLower {
				s.state[enter] = stAtUpper
			} else if s.state[enter] == stAtUpper {
				s.state[enter] = stAtLower
			} else {
				// Free variable with no blocking row: unbounded unless t finite.
				return Unbounded
			}
			continue
		}

		piv := s.w[leave]
		if math.Abs(piv) < 1e-11 {
			// Numerically hopeless pivot: undo the step, refactorize, retry.
			if t != 0 {
				for _, i := range s.wv.ind {
					s.xB[i] -= t * (-enterDir * s.w[i])
				}
			}
			s.stats.RefactorPivotQuality++
			if !s.refactorize() {
				return IterLimit
			}
			continue
		}

		// Basis exchange.
		s.stats.Pivots++
		out := s.basis[leave]
		if !legacy {
			// Fold the exchange into the maintained reduced costs and
			// pricing weights while the old basis representation (and the
			// pre-exchange basis/state arrays) are still in place.
			s.pricingUpdate(cost, enter, leave, out, piv, s.pr.d[enter], nil, false)
		}
		if leaveToUpper {
			s.state[out] = stAtUpper
		} else {
			s.state[out] = stAtLower
		}
		enterVal := s.nbValue(enter) + enterDir*t
		s.basis[leave] = enter
		s.state[enter] = stBasic
		s.xB[leave] = enterVal
		if !s.updateBasisRep(leave) {
			return IterLimit
		}

		if s.iters%256 == 0 {
			s.refresh()
			s.pr.valid = false // periodic resync curbs reduced-cost drift
		}
	}
}

// refresh recomputes basic values from the basis representation to curb
// drift: xB = B^{-1} (b - N x_N), a dense FTRAN.
func (s *simplex) refresh() {
	m := s.m
	resid := s.residScratch()
	for j := 0; j < s.ncols; j++ {
		if s.state[j] == stBasic {
			continue
		}
		v := s.nbValue(j)
		if v == 0 {
			continue
		}
		for k, i := range s.colIdx[j] {
			resid[i] -= s.colVal[j][k] * v
		}
	}
	if s.lu != nil {
		s.lu.ftranDense(resid, s.xB)
		return
	}
	for i := 0; i < m; i++ {
		sum := 0.0
		row := s.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			sum += row[k] * resid[k]
		}
		s.xB[i] = sum
	}
}

// refactorize rebuilds the basis representation from the current basis —
// sparse LU with Markowitz pivoting for the sparse engine, Gauss-Jordan
// elimination of the dense inverse otherwise. Returns false if the basis is
// singular. The basic values are refreshed from the new representation.
func (s *simplex) refactorize() bool {
	s.stats.Refactorizations++
	s.clock.Enter(PhaseRefactorize)
	if s.lu != nil {
		if !s.lu.factorize(s.m, s.basis, s.colIdx, s.colVal) {
			return false
		}
		s.noteFactorization()
		s.refresh()
		return true
	}
	m := s.m
	// Assemble dense basis matrix.
	bm := make([]float64, m*m)
	for col, j := range s.basis {
		for k, i := range s.colIdx[j] {
			bm[int(i)*m+col] = s.colVal[j][k]
		}
	}
	inv := make([]float64, m*m)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	// Gauss-Jordan with partial pivoting.
	for c := 0; c < m; c++ {
		p := c
		for r := c + 1; r < m; r++ {
			if math.Abs(bm[r*m+c]) > math.Abs(bm[p*m+c]) {
				p = r
			}
		}
		if math.Abs(bm[p*m+c]) < 1e-12 {
			return false
		}
		if p != c {
			for k := 0; k < m; k++ {
				bm[p*m+k], bm[c*m+k] = bm[c*m+k], bm[p*m+k]
				inv[p*m+k], inv[c*m+k] = inv[c*m+k], inv[p*m+k]
			}
		}
		d := 1 / bm[c*m+c]
		for k := 0; k < m; k++ {
			bm[c*m+k] *= d
			inv[c*m+k] *= d
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := bm[r*m+c]
			if f == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				bm[r*m+k] -= f * bm[c*m+k]
				inv[r*m+k] -= f * inv[c*m+k]
			}
		}
	}
	// inv now holds B^{-1} in "row of inverse per original row" order, but we
	// performed row swaps on both matrices in lockstep so inv == B^{-1}.
	copy(s.binv, inv)
	s.refresh()
	return true
}
