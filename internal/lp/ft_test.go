package lp

import (
	"math"
	"testing"
)

// ft_test.go exercises the Forrest-Tomlin update layer's failure ladder and
// pins its costs: a rejected update must fall back to refactorization, a
// failed (singular) refactorization must abandon the warm path for the cold
// solve with the answer unchanged, and the primary dual algorithm must stay
// within the cold allocation budget. The answer-equivalence of FT vs PFI
// across random models is covered by TestPricingPresolveDifferential.

// TestSingularBasisRecovery walks the whole recovery ladder deterministically
// via the luFactor test hooks: every update rejected AND the next
// refactorization reporting the basis singular forces the warm in-place
// reoptimization to give up, and Solve must transparently produce the cold
// answer. With only the rejection hook set, the warm path must survive by
// refactorizing on every exchange and report the rejections in Stats.
func TestSingularBasisRecovery(t *testing.T) {
	const n = 6
	p := assignmentLP(n)
	res := p.Solve(Options{SnapshotBasis: true})
	if res.Status != Optimal {
		t.Fatalf("root: %v", res.Status)
	}
	if p.engine == nil || p.engine.lu == nil {
		t.Fatal("no cached sparse engine after snapshot solve")
	}

	// Reference answer for the mutated problem, on an untouched clone.
	q := assignmentLP(n)
	q.SetVarBounds(0, 0, 0)
	ref := q.Solve(Options{})
	if ref.Status != Optimal {
		t.Fatalf("reference: %v", ref.Status)
	}

	// Ladder rung 1+2: update rejected -> refactorize -> "singular" ->
	// warm path abandoned -> cold solve. Same answer, no error surfaced.
	p.engine.lu.testRejectUpdates = true
	p.engine.lu.testFailFactorize = true
	p.SetVarBounds(0, 0, 0)
	got := p.Solve(Options{WarmStart: res.Basis, SnapshotBasis: true})
	if got.Status != Optimal {
		t.Fatalf("recovery solve: %v", got.Status)
	}
	if math.Abs(got.Obj-ref.Obj) > 1e-9 {
		t.Fatalf("recovery obj %g, reference %g", got.Obj, ref.Obj)
	}
	if got.Stats.WarmStarted {
		t.Fatal("solve reports a warm start after the warm path was abandoned")
	}

	// Ladder rung 1 alone: rejections with healthy refactorization. The warm
	// path survives, each exchange refactorizes, and the trigger is counted.
	if p.engine == nil || p.engine.lu == nil {
		t.Fatal("cold recovery solve did not re-cache an engine")
	}
	p.engine.lu.testRejectUpdates = true
	p.SetVarBounds(0, 0, 1)
	got = p.Solve(Options{WarmStart: got.Basis, SnapshotBasis: true})
	if got.Status != Optimal || math.Abs(got.Obj-res.Obj) > 1e-9 {
		t.Fatalf("rejected-update solve: %v obj %g, want optimal %g",
			got.Status, got.Obj, res.Obj)
	}
	if got.Stats.Pivots > 0 && got.Stats.RefactorUpdateRejected < 1 {
		t.Fatalf("%d pivots with every update rejected, but RefactorUpdateRejected=%d",
			got.Stats.Pivots, got.Stats.RefactorUpdateRejected)
	}
	p.engine.lu.testRejectUpdates = false
}

// TestDualSolveAllocs pins the allocation budget of the primary dual
// algorithm's cold path to the same figure as TestColdSolveAllocs: the
// all-slack dual phase-1, the DSE weight vectors and the artificial-bound
// bookkeeping must all come from pooled storage after warm-up.
func TestDualSolveAllocs(t *testing.T) {
	const n = 6
	p := assignmentLP(n)
	step := 0
	allocs := testing.AllocsPerRun(64, func() {
		j := (step * 5) % (n * n)
		p.SetVarBounds(j, 0, 0)
		r := p.Solve(Options{Presolve: PresolveOff, Algorithm: AlgorithmDual})
		p.SetVarBounds(j, 0, 1)
		if r.Status != Optimal && r.Status != Infeasible {
			t.Fatalf("status %v", r.Status)
		}
		step++
	})
	if allocs > 400 {
		t.Errorf("dual cold solve allocates %.1f objects/solve, want <= 400", allocs)
	}
}

// BenchmarkBasisUpdate measures the branch-and-bound node reoptimization
// loop under each basis-update scheme. The FT update keeps FTRAN/BTRAN near
// factorization density while the eta file grows with every exchange, so the
// gap widens with the refactorization interval.
func BenchmarkBasisUpdate(b *testing.B) {
	for _, bc := range []struct {
		name   string
		update Update
	}{{"ft", UpdateFT}, {"pfi", UpdatePFI}} {
		b.Run(bc.name, func(b *testing.B) {
			const n = 8
			p := assignmentLP(n)
			res := p.Solve(Options{SnapshotBasis: true, Update: bc.update})
			if res.Status != Optimal {
				b.Fatalf("root: %v", res.Status)
			}
			basis := res.Basis
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := (i * 5) % (n * n)
				p.SetVarBounds(j, 0, 0)
				r := p.Solve(Options{WarmStart: basis, SnapshotBasis: true, Update: bc.update})
				p.SetVarBounds(j, 0, 1)
				if r.Status == Optimal && r.Basis != nil {
					basis = r.Basis
				}
			}
		})
	}
}

// BenchmarkDualPhase1 measures the cold solve under each primary algorithm
// on the same model: the dual variant starts from the all-slack basis with
// exact steepest-edge weights (no primal phase 1), the primal variant pays
// the artificial-based phase 1.
func BenchmarkDualPhase1(b *testing.B) {
	for _, bc := range []struct {
		name string
		alg  Algorithm
	}{{"dual", AlgorithmDual}, {"primal", AlgorithmPrimal}} {
		b.Run(bc.name, func(b *testing.B) {
			const n = 8
			p := assignmentLP(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := (i * 5) % (n * n)
				p.SetVarBounds(j, 0, 0)
				r := p.Solve(Options{Presolve: PresolveOff, Algorithm: bc.alg})
				p.SetVarBounds(j, 0, 1)
				if r.Status != Optimal && r.Status != Infeasible {
					b.Fatalf("status %v", r.Status)
				}
			}
		})
	}
}
