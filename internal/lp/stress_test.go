package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Random 3-variable LPs cross-checked against exhaustive vertex enumeration
// (all triples of active constraints from the rows and box faces).
func TestRandom3DAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const lim = 30.0
	for trial := 0; trial < 120; trial++ {
		nc := 2 + rng.Intn(4)
		type cons struct{ a, b, c, d float64 } // a x + b y + c z <= d
		var rows []cons
		for i := 0; i < nc; i++ {
			rows = append(rows, cons{
				a: float64(rng.Intn(7) - 3),
				b: float64(rng.Intn(7) - 3),
				c: float64(rng.Intn(7) - 3),
				d: float64(rng.Intn(25)),
			})
		}
		cx := float64(rng.Intn(9) - 4)
		cy := float64(rng.Intn(9) - 4)
		cz := float64(rng.Intn(9) - 4)

		p := NewProblem()
		x := p.AddVariable(0, lim, cx)
		y := p.AddVariable(0, lim, cy)
		z := p.AddVariable(0, lim, cz)
		for _, r := range rows {
			p.AddConstraint([]Coef{{x, r.a}, {y, r.b}, {z, r.c}}, LE, r.d)
		}
		res := p.Solve(Options{})

		// Enumerate candidate vertices from all planes (constraints + box
		// faces), solving each 3x3 system.
		all := append([]cons{}, rows...)
		all = append(all,
			cons{1, 0, 0, 0}, cons{1, 0, 0, lim},
			cons{0, 1, 0, 0}, cons{0, 1, 0, lim},
			cons{0, 0, 1, 0}, cons{0, 0, 1, lim})
		feasible := func(px, py, pz float64) bool {
			if px < -1e-6 || py < -1e-6 || pz < -1e-6 ||
				px > lim+1e-6 || py > lim+1e-6 || pz > lim+1e-6 {
				return false
			}
			for _, r := range rows {
				if r.a*px+r.b*py+r.c*pz > r.d+1e-6 {
					return false
				}
			}
			return true
		}
		best := math.Inf(1)
		any := false
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				for k := j + 1; k < len(all); k++ {
					px, py, pz, ok := solve3(
						all[i].a, all[i].b, all[i].c, all[i].d,
						all[j].a, all[j].b, all[j].c, all[j].d,
						all[k].a, all[k].b, all[k].c, all[k].d)
					if !ok || !feasible(px, py, pz) {
						continue
					}
					any = true
					obj := cx*px + cy*py + cz*pz
					if obj < best {
						best = obj
					}
				}
			}
		}
		if feasible(0, 0, 0) {
			any = true
			if 0 < best {
				best = 0
			}
		}

		if !any {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: enumeration found nothing feasible, solver says %v", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: solver %v, enumeration best %v", trial, res.Status, best)
		}
		if math.Abs(res.Obj-best) > 1e-4 {
			t.Fatalf("trial %d: solver %v vs enumeration %v", trial, res.Obj, best)
		}
	}
}

// solve3 solves a 3x3 linear system by Cramer's rule.
func solve3(a1, b1, c1, d1, a2, b2, c2, d2, a3, b3, c3, d3 float64) (x, y, z float64, ok bool) {
	det := a1*(b2*c3-b3*c2) - b1*(a2*c3-a3*c2) + c1*(a2*b3-a3*b2)
	if math.Abs(det) < 1e-9 {
		return 0, 0, 0, false
	}
	x = (d1*(b2*c3-b3*c2) - b1*(d2*c3-d3*c2) + c1*(d2*b3-d3*b2)) / det
	y = (a1*(d2*c3-d3*c2) - d1*(a2*c3-a3*c2) + c1*(a2*d3-a3*d2)) / det
	z = (a1*(b2*d3-b3*d2) - b1*(a2*d3-a3*d2) + d1*(a2*b3-a3*b2)) / det
	return x, y, z, true
}

func TestIterLimitStatus(t *testing.T) {
	// A problem large enough to need more than 1 iteration, capped at 1.
	p := NewProblem()
	var cs []Coef
	for i := 0; i < 10; i++ {
		v := p.AddVariable(0, Inf, -1)
		cs = append(cs, Coef{v, 1})
	}
	p.AddConstraint(cs, LE, 5)
	// Presolve off: the parallel-column merge plus duality fixing would
	// otherwise solve this without a single simplex iteration.
	res := p.Solve(Options{MaxIters: 1, Presolve: PresolveOff})
	if res.Status == Optimal {
		t.Fatalf("1 iteration should not reach optimality here")
	}
	if res.Status != IterLimit {
		t.Fatalf("status = %v, want iteration-limit", res.Status)
	}
}

func TestLargeEqualitySystem(t *testing.T) {
	// Chained equalities x_{i+1} = x_i + 1 with x_0 = 0: solved exactly.
	p := NewProblem()
	const n = 40
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVariable(-Inf, Inf, 0)
	}
	p.SetCost(vars[n-1], 1) // minimize last: it is fully determined anyway
	p.AddConstraint([]Coef{{vars[0], 1}}, EQ, 0)
	for i := 0; i+1 < n; i++ {
		p.AddConstraint([]Coef{{vars[i+1], 1}, {vars[i], -1}}, EQ, 1)
	}
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[vars[n-1]]-float64(n-1)) > 1e-6 {
		t.Fatalf("x[%d] = %v, want %d", n-1, res.X[vars[n-1]], n-1)
	}
}

func TestNameAccessors(t *testing.T) {
	p := NewProblem()
	j := p.AddVariable(0, 1, 0)
	if p.Name(j) != "x0" {
		t.Errorf("default name %q", p.Name(j))
	}
	p.SetName(j, "alpha")
	if p.Name(j) != "alpha" {
		t.Errorf("named %q", p.Name(j))
	}
	if p.NumVars() != 1 || p.NumRows() != 0 {
		t.Error("counters wrong")
	}
}

func TestRowAccessor(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 1, 0)
	y := p.AddVariable(0, 1, 0)
	p.AddConstraint([]Coef{{x, 2}, {y, -1}}, GE, 3)
	coeffs, sense, rhs := p.Row(0)
	if len(coeffs) != 2 || sense != GE || rhs != 3 {
		t.Fatalf("row = %v %v %v", coeffs, sense, rhs)
	}
	if coeffs[0].Val != 2 || coeffs[1].Val != -1 {
		t.Fatalf("coeffs %v", coeffs)
	}
}

func TestZeroCoefficientDropped(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, -1)
	y := p.AddVariable(0, 10, 0)
	p.AddConstraint([]Coef{{x, 1}, {y, 0}}, LE, 5)
	coeffs, _, _ := p.Row(0)
	if len(coeffs) != 1 {
		t.Fatalf("zero coefficient kept: %v", coeffs)
	}
	res := p.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.X[x]-5) > 1e-7 {
		t.Fatalf("res %v %v", res.Status, res.X)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 1, 0)
	assertPanics(t, func() { p.AddVariable(2, 1, 0) }, "inverted bounds")
	assertPanics(t, func() { p.SetVarBounds(x, 5, 1) }, "inverted SetVarBounds")
	assertPanics(t, func() { p.AddConstraint([]Coef{{99, 1}}, LE, 0) }, "unknown var")
}

func assertPanics(t *testing.T, f func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}
