package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTrivialBoundsOnly(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(2, 5, 1)   // minimized: rests at lower bound
	y := p.AddVariable(-3, 4, -2) // negative cost: pushed to upper bound
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.X[x], 2, 1e-8) || !approx(res.X[y], 4, 1e-8) {
		t.Fatalf("X = %v", res.X)
	}
	if !approx(res.Obj, 2-8, 1e-8) {
		t.Fatalf("Obj = %v", res.Obj)
	}
}

func TestSimple2D(t *testing.T) {
	// max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0
	// => min -x - y. Optimum at intersection: x = 8/5, y = 6/5, obj = -14/5.
	p := NewProblem()
	x := p.AddVariable(0, Inf, -1)
	y := p.AddVariable(0, Inf, -1)
	p.AddConstraint([]Coef{{x, 1}, {y, 2}}, LE, 4)
	p.AddConstraint([]Coef{{x, 3}, {y, 1}}, LE, 6)
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Obj, -14.0/5, 1e-7) {
		t.Fatalf("Obj = %v want -2.8", res.Obj)
	}
	if !approx(res.X[x], 8.0/5, 1e-7) || !approx(res.X[y], 6.0/5, 1e-7) {
		t.Fatalf("X = %v", res.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 3, x,y in [0, 10]. Optimum x=3, y=0, obj=3.
	p := NewProblem()
	x := p.AddVariable(0, 10, 1)
	y := p.AddVariable(0, 10, 2)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, EQ, 3)
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Obj, 3, 1e-7) || !approx(res.X[x], 3, 1e-7) {
		t.Fatalf("Obj=%v X=%v", res.Obj, res.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x <= 1, y >= 0. Optimum x=1, y=3, obj=11.
	p := NewProblem()
	x := p.AddVariable(0, 1, 2)
	y := p.AddVariable(0, Inf, 3)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, GE, 4)
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Obj, 11, 1e-7) {
		t.Fatalf("Obj = %v want 11", res.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 1, 1)
	p.AddConstraint([]Coef{{x, 1}}, GE, 2)
	res := p.Solve(Options{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleSystem(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, 0)
	y := p.AddVariable(0, Inf, 0)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, LE, 1)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, GE, 2)
	res := p.Solve(Options{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, -1)
	y := p.AddVariable(0, Inf, 0)
	p.AddConstraint([]Coef{{x, 1}, {y, -1}}, LE, 1)
	res := p.Solve(Options{})
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -5 via constraint (variable itself is free).
	p := NewProblem()
	x := p.AddVariable(-Inf, Inf, 1)
	p.AddConstraint([]Coef{{x, 1}}, GE, -5)
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.X[x], -5, 1e-7) {
		t.Fatalf("X = %v want -5", res.X)
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(2, 2, 5)
	y := p.AddVariable(0, 10, 1)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, GE, 5)
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.X[x], 2, 1e-9) || !approx(res.X[y], 3, 1e-7) {
		t.Fatalf("X = %v", res.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3 (i.e. x >= 3), x in [0, 10].
	p := NewProblem()
	x := p.AddVariable(0, 10, 1)
	p.AddConstraint([]Coef{{x, -1}}, LE, -3)
	res := p.Solve(Options{})
	if res.Status != Optimal || !approx(res.X[x], 3, 1e-7) {
		t.Fatalf("status=%v X=%v", res.Status, res.X)
	}
}

func TestDuplicateCoefficientsMerged(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, -1)
	// x + x <= 4 => x <= 2
	p.AddConstraint([]Coef{{x, 1}, {x, 1}}, LE, 4)
	res := p.Solve(Options{})
	if res.Status != Optimal || !approx(res.X[x], 2, 1e-7) {
		t.Fatalf("status=%v X=%v", res.Status, res.X)
	}
}

func TestBoundsMutationBetweenSolves(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, 10, -1)
	p.AddConstraint([]Coef{{x, 1}}, LE, 7)
	res := p.Solve(Options{})
	if !approx(res.X[x], 7, 1e-7) {
		t.Fatalf("first solve X = %v", res.X)
	}
	p.SetVarBounds(x, 0, 3)
	res = p.Solve(Options{})
	if !approx(res.X[x], 3, 1e-7) {
		t.Fatalf("after tightening X = %v", res.X)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degenerate vertex: several constraints through one point.
	p := NewProblem()
	x := p.AddVariable(0, Inf, -1)
	y := p.AddVariable(0, Inf, -1)
	p.AddConstraint([]Coef{{x, 1}}, LE, 1)
	p.AddConstraint([]Coef{{y, 1}}, LE, 1)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, LE, 2)
	p.AddConstraint([]Coef{{x, 2}, {y, 1}}, LE, 3)
	res := p.Solve(Options{})
	if res.Status != Optimal || !approx(res.Obj, -2, 1e-7) {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
}

// Transportation-style LP with known optimum.
func TestTransportation(t *testing.T) {
	// 2 sources (supply 20, 30), 3 sinks (demand 10, 25, 15).
	// Costs: s0: [2 4 5], s1: [3 1 7].
	supply := []float64{20, 30}
	demand := []float64{10, 25, 15}
	costs := [][]float64{{2, 4, 5}, {3, 1, 7}}
	p := NewProblem()
	v := make([][]int, 2)
	for i := range v {
		v[i] = make([]int, 3)
		for j := range v[i] {
			v[i][j] = p.AddVariable(0, Inf, costs[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		var cs []Coef
		for j := 0; j < 3; j++ {
			cs = append(cs, Coef{v[i][j], 1})
		}
		p.AddConstraint(cs, EQ, supply[i])
	}
	for j := 0; j < 3; j++ {
		var cs []Coef
		for i := 0; i < 2; i++ {
			cs = append(cs, Coef{v[i][j], 1})
		}
		p.AddConstraint(cs, EQ, demand[j])
	}
	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Optimal: s0->d0:10, s0->d2:10 (cost 2*10+5*10=70)... enumerate:
	// s1 covers d1 (25 @1) and remaining 5 anywhere cheap: s1->d0? cost3 vs s0->d2 5.
	// LP optimum is 20+25+50+... verify against brute-force value 2*10+5*10+1*25+7*5=130
	// vs alternative s0:d0=10,d1=0,d2=10; s1:d1=25,d2=5 -> 20+50+25+35=130
	// vs s0:d2=15,d0=5; s1:d0=5,d1=25 -> 75+10+15+25=125. Take solver's word but
	// sanity check against a simple lower bound and feasibility.
	total := 0.0
	for i := 0; i < 2; i++ {
		rowSum := 0.0
		for j := 0; j < 3; j++ {
			x := res.X[v[i][j]]
			if x < -1e-7 {
				t.Fatalf("negative flow %v", x)
			}
			rowSum += x
			total += costs[i][j] * x
		}
		if !approx(rowSum, supply[i], 1e-6) {
			t.Fatalf("supply %d violated: %v", i, rowSum)
		}
	}
	if !approx(total, res.Obj, 1e-6) {
		t.Fatalf("objective mismatch: %v vs %v", total, res.Obj)
	}
	if res.Obj > 125+1e-6 {
		t.Fatalf("suboptimal: %v > 125", res.Obj)
	}
}

// brute-force verification on random small LPs: compare against exhaustive
// vertex enumeration via pairwise constraint intersection in 2-D.
func TestRandom2DAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nc := 2 + rng.Intn(4)
		type cons struct{ a, b, c float64 }
		var cs []cons
		for i := 0; i < nc; i++ {
			cs = append(cs, cons{
				a: float64(rng.Intn(9) - 4),
				b: float64(rng.Intn(9) - 4),
				c: float64(rng.Intn(21)),
			})
		}
		cx := float64(rng.Intn(11) - 5)
		cy := float64(rng.Intn(11) - 5)
		lim := 50.0

		p := NewProblem()
		x := p.AddVariable(0, lim, cx)
		y := p.AddVariable(0, lim, cy)
		for _, c := range cs {
			p.AddConstraint([]Coef{{x, c.a}, {y, c.b}}, LE, c.c)
		}
		res := p.Solve(Options{})

		// Enumerate candidate vertices: intersections of all pairs from
		// {constraints, x=0, x=lim, y=0, y=lim}.
		all := append([]cons{}, cs...)
		all = append(all, cons{1, 0, 0}, cons{1, 0, lim}, cons{0, 1, 0}, cons{0, 1, lim})
		feasible := func(px, py float64) bool {
			if px < -1e-7 || py < -1e-7 || px > lim+1e-7 || py > lim+1e-7 {
				return false
			}
			for _, c := range cs {
				if c.a*px+c.b*py > c.c+1e-7 {
					return false
				}
			}
			return true
		}
		bestObj := math.Inf(1)
		anyFeasible := false
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				// Solve a1 x + b1 y = c1', a2 x + b2 y = c2' where boundary
				// uses equality. For bound rows c plays the bound value.
				a1, b1, c1 := all[i].a, all[i].b, all[i].c
				a2, b2, c2 := all[j].a, all[j].b, all[j].c
				det := a1*b2 - a2*b1
				if math.Abs(det) < 1e-12 {
					continue
				}
				px := (c1*b2 - c2*b1) / det
				py := (a1*c2 - a2*c1) / det
				if feasible(px, py) {
					anyFeasible = true
					obj := cx*px + cy*py
					if obj < bestObj {
						bestObj = obj
					}
				}
			}
		}
		// Origin corner may also be optimal and feasible.
		if feasible(0, 0) {
			anyFeasible = true
			if 0 < bestObj {
				bestObj = 0
			}
		}

		if !anyFeasible {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: enumeration infeasible but solver says %v", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: solver status %v but feasible vertex exists", trial, res.Status)
		}
		if !approx(res.Obj, bestObj, 1e-5) {
			t.Fatalf("trial %d: solver obj %v, enumeration %v", trial, res.Obj, bestObj)
		}
	}
}

func TestIterationReporting(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, -1)
	p.AddConstraint([]Coef{{x, 1}}, LE, 5)
	res := p.Solve(Options{})
	if res.Iters <= 0 {
		t.Fatalf("expected positive iteration count, got %d", res.Iters)
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("Sense.String broken")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" {
		t.Error("Status.String broken")
	}
}
