package lp

import "testing"

// TestSolveStats checks that a nontrivial solve reports consistent simplex
// statistics: iterations match, pivots happen, phase-1 work is recorded
// when artificials are needed.
func TestSolveStats(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(0, Inf, 1)
	y := p.AddVariable(0, Inf, 2)
	z := p.AddVariable(0, Inf, 3)
	p.AddConstraint([]Coef{{x, 1}, {y, 1}}, GE, 4)
	p.AddConstraint([]Coef{{y, 1}, {z, 1}}, GE, 3)
	p.AddConstraint([]Coef{{x, 1}, {z, 2}}, EQ, 5)

	res := p.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	st := res.Stats
	if st.Iters != res.Iters {
		t.Errorf("Stats.Iters %d != Result.Iters %d", st.Iters, res.Iters)
	}
	if st.Iters <= 0 {
		t.Errorf("no iterations recorded")
	}
	if st.Phase1Iters <= 0 {
		t.Errorf("GE/EQ system needs artificials, want Phase1Iters > 0, got %d", st.Phase1Iters)
	}
	if st.Phase1Iters > st.Iters {
		t.Errorf("Phase1Iters %d > Iters %d", st.Phase1Iters, st.Iters)
	}
	if st.Pivots <= 0 {
		t.Errorf("no pivots recorded")
	}
	if st.Pivots+st.BoundFlips > st.Iters {
		t.Errorf("pivots %d + flips %d exceed iterations %d", st.Pivots, st.BoundFlips, st.Iters)
	}
}
