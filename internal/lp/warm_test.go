package lp

import (
	"math"
	"testing"
)

// assignmentLP builds the LP relaxation of an n x n assignment problem:
// binary-relaxed variables x_ij in [0, 1] with deterministic costs, one
// equality row per agent and per task. It is the test stand-in for a
// branch-and-bound node LP: re-solves differ only in variable bounds.
func assignmentLP(n int) *Problem {
	p := NewProblem()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.AddVariable(0, 1, float64((i*7+j*13)%11+1))
		}
	}
	for i := 0; i < n; i++ {
		row := make([]Coef, n)
		for j := 0; j < n; j++ {
			row[j] = Coef{Var: i*n + j, Val: 1}
		}
		p.AddConstraint(row, EQ, 1)
	}
	for j := 0; j < n; j++ {
		col := make([]Coef, n)
		for i := 0; i < n; i++ {
			col[i] = Coef{Var: i*n + j, Val: 1}
		}
		p.AddConstraint(col, EQ, 1)
	}
	return p
}

// rebuildLP clones an assignment LP with the bound set of p (same shape,
// fresh Problem), so the snapshot warm path can be exercised without a live
// engine on the target problem.
func rebuildLP(n int, p *Problem) *Problem {
	q := assignmentLP(n)
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.VarBounds(j)
		q.SetVarBounds(j, lo, hi)
	}
	return q
}

// TestWarmStartMatchesCold drives a branch-and-bound-like sequence of bound
// fixings through three solvers — cold, warm via the in-place engine, and
// warm via a basis snapshot on a freshly built problem — and requires
// identical statuses and objectives throughout. This is the answer
// preservation contract of the warm-start layer.
func TestWarmStartMatchesCold(t *testing.T) {
	const n = 6
	warm := assignmentLP(n)
	root := warm.Solve(Options{SnapshotBasis: true})
	if root.Status != Optimal {
		t.Fatalf("root status %v", root.Status)
	}
	if root.Basis == nil {
		t.Fatal("root solve produced no basis snapshot")
	}
	if root.Stats.WarmStarted {
		t.Fatal("root solve claims to be warm-started")
	}
	basis := root.Basis

	// Fix variables one at a time, alternating 0/1, accumulating bound
	// changes like a dive in a branch-and-bound tree.
	warmStarts := 0
	for step := 0; step < 2*n; step++ {
		j := (step * 5) % (n * n)
		v := float64(step % 2)
		warm.SetVarBounds(j, v, v)

		wres := warm.Solve(Options{WarmStart: basis, SnapshotBasis: true})
		if wres.Stats.WarmStarted {
			warmStarts++
		}

		cold := rebuildLP(n, warm)
		cres := cold.Solve(Options{})
		if cres.Stats.WarmStarted {
			t.Fatalf("step %d: cold solve claims to be warm-started", step)
		}

		snap := rebuildLP(n, warm)
		sres := snap.Solve(Options{WarmStart: basis, SnapshotBasis: true})

		if wres.Status != cres.Status || sres.Status != cres.Status {
			t.Fatalf("step %d: status disagreement: engine=%v snapshot=%v cold=%v",
				step, wres.Status, sres.Status, cres.Status)
		}
		if cres.Status == Optimal {
			if math.Abs(wres.Obj-cres.Obj) > 1e-6 {
				t.Fatalf("step %d: engine warm obj %g, cold %g", step, wres.Obj, cres.Obj)
			}
			if math.Abs(sres.Obj-cres.Obj) > 1e-6 {
				t.Fatalf("step %d: snapshot warm obj %g, cold %g", step, sres.Obj, cres.Obj)
			}
			if wres.Basis != nil {
				basis = wres.Basis
			}
		}
		if cres.Status == Infeasible {
			return // the dive bottomed out; contract held the whole way
		}
	}
	if warmStarts == 0 {
		t.Fatal("no solve took the warm path — the test exercised nothing")
	}
}

// TestWarmStartStaleBasis feeds a snapshot from a differently shaped problem:
// the solve must silently fall back to the cold path and still answer.
func TestWarmStartStaleBasis(t *testing.T) {
	small := assignmentLP(3)
	sres := small.Solve(Options{SnapshotBasis: true})
	if sres.Status != Optimal || sres.Basis == nil {
		t.Fatalf("small solve: %v", sres.Status)
	}
	big := assignmentLP(5)
	bres := big.Solve(Options{WarmStart: sres.Basis})
	if bres.Status != Optimal {
		t.Fatalf("big solve with stale basis: %v", bres.Status)
	}
	if bres.Stats.WarmStarted {
		t.Fatal("stale basis must not count as a warm start")
	}
}

// TestWarmStartEngineInvalidation mutates the problem structurally after a
// snapshot-enabled solve: the cached engine must be discarded (mutGen) and
// the next solve still be correct.
func TestWarmStartEngineInvalidation(t *testing.T) {
	p := assignmentLP(4)
	res := p.Solve(Options{SnapshotBasis: true})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	before := res.Obj

	// Raising one cost must invalidate the engine; a warm solve with the old
	// snapshot must not resurrect the old cost vector.
	p.SetCost(0, p.Cost(0)+100)
	res2 := p.Solve(Options{WarmStart: res.Basis, SnapshotBasis: true})
	if res2.Status != Optimal {
		t.Fatalf("status after cost bump: %v", res2.Status)
	}
	fresh := assignmentLP(4)
	fresh.SetCost(0, fresh.Cost(0)+100)
	want := fresh.Solve(Options{})
	if math.Abs(res2.Obj-want.Obj) > 1e-6 {
		t.Fatalf("after cost bump: obj %g, fresh problem says %g (engine served stale costs?)", res2.Obj, want.Obj)
	}
	_ = before
}

// TestWarmSolveAllocs pins the allocation budget of the hot warm path (the
// in-place engine reoptimization). The budget is a handful of small slices —
// solution vector, basis snapshot, dual workspace — with no O(m^2) churn;
// rebuilding columns or refactorizing would blow well past it.
func TestWarmSolveAllocs(t *testing.T) {
	const n = 6
	p := assignmentLP(n)
	res := p.Solve(Options{SnapshotBasis: true})
	if res.Status != Optimal || res.Basis == nil {
		t.Fatalf("root: %v", res.Status)
	}
	basis := res.Basis
	step := 0
	allocs := testing.AllocsPerRun(64, func() {
		j := (step * 5) % (n * n)
		p.SetVarBounds(j, 0, 0)
		r := p.Solve(Options{WarmStart: basis, SnapshotBasis: true})
		p.SetVarBounds(j, 0, 1)
		if r.Status == Optimal && r.Basis != nil {
			basis = r.Basis
		}
		step++
	})
	if allocs > 16 {
		t.Errorf("warm node solve allocates %.1f objects/solve, want <= 16 (column rebuild or refactorize leaking in?)", allocs)
	}
}

// TestColdSolveAllocs pins the allocation budget of the cold two-phase path.
// Column assembly dominates (a few slices per structural column); the pooled
// phase-cost vectors and solution buffer keep per-phase work out of the
// count. A dense-inverse or per-iteration-slice regression multiplies this
// figure and trips the pin. Presolve is pinned off: its reductions allocate
// an O(problem) working copy by design, which is not the per-iteration churn
// this test guards against.
func TestColdSolveAllocs(t *testing.T) {
	const n = 6
	p := assignmentLP(n)
	step := 0
	allocs := testing.AllocsPerRun(64, func() {
		j := (step * 5) % (n * n)
		p.SetVarBounds(j, 0, 0)
		r := p.Solve(Options{Presolve: PresolveOff})
		p.SetVarBounds(j, 0, 1)
		if r.Status != Optimal && r.Status != Infeasible {
			t.Fatalf("status %v", r.Status)
		}
		step++
	})
	if allocs > 400 {
		t.Errorf("cold solve allocates %.1f objects/solve, want <= 400 (per-iteration slice churn leaking in?)", allocs)
	}
}

// BenchmarkNodeLPWarmStart measures one branch-and-bound node reoptimization:
// flip one variable fixing, warm-solve, restore. Compare with
// BenchmarkNodeLPColdStart for the warm-start speedup on the same sequence.
func BenchmarkNodeLPWarmStart(b *testing.B) {
	const n = 8
	p := assignmentLP(n)
	res := p.Solve(Options{SnapshotBasis: true})
	if res.Status != Optimal {
		b.Fatalf("root: %v", res.Status)
	}
	basis := res.Basis
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i * 5) % (n * n)
		p.SetVarBounds(j, 0, 0)
		r := p.Solve(Options{WarmStart: basis, SnapshotBasis: true})
		p.SetVarBounds(j, 0, 1)
		if r.Status == Optimal && r.Basis != nil {
			basis = r.Basis
		}
	}
}

// BenchmarkNodeLPColdStart is the cold-solve baseline for the same node
// sequence as BenchmarkNodeLPWarmStart.
func BenchmarkNodeLPColdStart(b *testing.B) {
	const n = 8
	p := assignmentLP(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := (i * 5) % (n * n)
		p.SetVarBounds(j, 0, 0)
		r := p.Solve(Options{})
		p.SetVarBounds(j, 0, 1)
		if r.Status != Optimal && r.Status != Infeasible {
			b.Fatalf("status %v", r.Status)
		}
	}
}
