package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomLP generates a random bounded LP. Most instances are feasible and
// bounded; the generator deliberately mixes in degenerate rows (duplicated
// constraints), equality-heavy systems, free variables, and occasional
// contradictory or unbounded constructions so every Status is exercised.
func randomLP(rng *rand.Rand) *Problem {
	p := NewProblem()
	n := 2 + rng.Intn(10)
	for j := 0; j < n; j++ {
		lo, hi := 0.0, float64(1+rng.Intn(10))
		switch rng.Intn(10) {
		case 0:
			lo = -Inf // one-sided above
		case 1:
			lo, hi = -hi, Inf
		case 2:
			lo, hi = -Inf, Inf // free
		case 3:
			v := float64(rng.Intn(5))
			lo, hi = v, v // fixed
		}
		p.AddVariable(lo, hi, float64(rng.Intn(21)-10))
	}
	m := 1 + rng.Intn(12)
	for i := 0; i < m; i++ {
		var coeffs []Coef
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				coeffs = append(coeffs, Coef{Var: j, Val: float64(rng.Intn(9) - 4)})
			}
		}
		if len(coeffs) == 0 {
			coeffs = append(coeffs, Coef{Var: rng.Intn(n), Val: 1})
		}
		sense := Sense(rng.Intn(3))
		rhs := float64(rng.Intn(25) - 8)
		p.AddConstraint(coeffs, sense, rhs)
		if rng.Intn(6) == 0 {
			// Duplicate the row (degeneracy) or contradict it (infeasibility).
			if rng.Intn(3) == 0 && sense == LE {
				p.AddConstraint(coeffs, GE, rhs+1+float64(rng.Intn(4)))
			} else {
				p.AddConstraint(coeffs, sense, rhs)
			}
		}
	}
	return p
}

// cloneProblem rebuilds an identical Problem (fresh caches) so the two
// engines never share a cached simplex.
func cloneProblem(p *Problem) *Problem {
	q := NewProblem()
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.VarBounds(j)
		q.AddVariable(lo, hi, p.Cost(j))
	}
	for i := 0; i < p.NumRows(); i++ {
		coeffs, sense, rhs := p.Row(i)
		q.AddConstraint(coeffs, sense, rhs)
	}
	return q
}

// TestEngineDifferential fuzzes random bounded LPs through both linear-
// algebra engines and requires agreement on status and (when optimal)
// objective within tolerance. This is the answer-preservation gate for the
// sparse factorization: the dense inverse is the reference.
func TestEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	counts := map[Status]int{}
	for trial := 0; trial < 400; trial++ {
		p := randomLP(rng)
		sp := p.Solve(Options{Engine: EngineSparse})
		de := cloneProblem(p).Solve(Options{Engine: EngineDense})
		if sp.Status != de.Status {
			t.Fatalf("trial %d: status sparse=%v dense=%v", trial, sp.Status, de.Status)
		}
		counts[sp.Status]++
		if sp.Status == Optimal {
			if math.Abs(sp.Obj-de.Obj) > 1e-6*(1+math.Abs(de.Obj)) {
				t.Fatalf("trial %d: obj sparse=%.12g dense=%.12g", trial, sp.Obj, de.Obj)
			}
			// The sparse solution must itself be feasible — agreement on the
			// objective alone could mask a corrupted primal vector.
			checkFeasible(t, trial, p, sp.X)
		}
	}
	for _, st := range []Status{Optimal, Infeasible, Unbounded} {
		if counts[st] == 0 {
			t.Errorf("fuzz corpus never produced status %v — generator drifted", st)
		}
	}
}

func checkFeasible(t *testing.T, trial int, p *Problem, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.VarBounds(j)
		if x[j] < lo-tol || x[j] > hi+tol {
			t.Fatalf("trial %d: x[%d]=%g outside [%g,%g]", trial, j, x[j], lo, hi)
		}
	}
	for i := 0; i < p.NumRows(); i++ {
		coeffs, sense, rhs := p.Row(i)
		ax := 0.0
		for _, c := range coeffs {
			ax += c.Val * x[c.Var]
		}
		switch sense {
		case LE:
			if ax > rhs+tol {
				t.Fatalf("trial %d: row %d: %g > %g", trial, i, ax, rhs)
			}
		case GE:
			if ax < rhs-tol {
				t.Fatalf("trial %d: row %d: %g < %g", trial, i, ax, rhs)
			}
		case EQ:
			if math.Abs(ax-rhs) > tol {
				t.Fatalf("trial %d: row %d: %g != %g", trial, i, ax, rhs)
			}
		}
	}
}

// TestEngineDifferentialWarm runs the same branch-and-bound-style dive under
// both engines — warm starts, cached-engine reoptimization and snapshot
// restores included — and requires identical statuses and objectives at every
// node. This covers the dual-simplex restore path, which the cold fuzz above
// never reaches.
func TestEngineDifferentialWarm(t *testing.T) {
	const n = 6
	run := func(engine Engine) ([]Status, []float64) {
		p := assignmentLP(n)
		res := p.Solve(Options{SnapshotBasis: true, Engine: engine})
		if res.Status != Optimal {
			t.Fatalf("engine %v: root status %v", engine, res.Status)
		}
		basis := res.Basis
		var sts []Status
		var objs []float64
		for step := 0; step < 3*n; step++ {
			j := (step * 7) % (n * n)
			v := float64(step % 2)
			p.SetVarBounds(j, v, v)
			r := p.Solve(Options{WarmStart: basis, SnapshotBasis: true, Engine: engine})
			sts = append(sts, r.Status)
			objs = append(objs, r.Obj)
			if r.Status != Optimal {
				break
			}
			if r.Basis != nil {
				basis = r.Basis
			}
		}
		return sts, objs
	}
	sSt, sObj := run(EngineSparse)
	dSt, dObj := run(EngineDense)
	if len(sSt) != len(dSt) {
		t.Fatalf("dive lengths differ: sparse=%d dense=%d", len(sSt), len(dSt))
	}
	for k := range sSt {
		if sSt[k] != dSt[k] {
			t.Fatalf("node %d: status sparse=%v dense=%v", k, sSt[k], dSt[k])
		}
		if sSt[k] == Optimal && math.Abs(sObj[k]-dObj[k]) > 1e-6 {
			t.Fatalf("node %d: obj sparse=%g dense=%g", k, sObj[k], dObj[k])
		}
	}
}
