package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randBasisColumns builds m deterministic, diagonally dominant sparse columns
// (so the matrix is guaranteed nonsingular) plus extra off-basis columns that
// eta-update tests can bring in. Returns the column arrays and the identity
// basis over the first m columns.
func randBasisColumns(rng *rand.Rand, m, extra int) (colIdx [][]int32, colVal [][]float64, basis []int) {
	ncols := m + extra
	colIdx = make([][]int32, ncols)
	colVal = make([][]float64, ncols)
	for j := 0; j < m; j++ {
		colIdx[j] = append(colIdx[j], int32(j))
		colVal[j] = append(colVal[j], 4+rng.Float64())
		for t := 0; t < 3; t++ {
			i := rng.Intn(m)
			if i == j {
				continue
			}
			dup := false
			for _, e := range colIdx[j] {
				if e == int32(i) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			colIdx[j] = append(colIdx[j], int32(i))
			colVal[j] = append(colVal[j], rng.Float64()*2-1)
		}
	}
	for j := m; j < ncols; j++ {
		used := map[int]bool{}
		for t := 0; t < 4; t++ {
			i := rng.Intn(m)
			if used[i] {
				continue
			}
			used[i] = true
			colIdx[j] = append(colIdx[j], int32(i))
			colVal[j] = append(colVal[j], rng.Float64()*2-1)
		}
		if len(colIdx[j]) == 0 {
			colIdx[j] = append(colIdx[j], int32(rng.Intn(m)))
			colVal[j] = append(colVal[j], 1)
		}
	}
	basis = make([]int, m)
	for i := range basis {
		basis[i] = i
	}
	return colIdx, colVal, basis
}

// mulBasis computes B x for x indexed by basis position, result by row.
func mulBasis(m int, basis []int, colIdx [][]int32, colVal [][]float64, x []float64) []float64 {
	out := make([]float64, m)
	for pos, j := range basis {
		v := x[pos]
		if v == 0 {
			continue
		}
		for k, i := range colIdx[j] {
			out[i] += colVal[j][k] * v
		}
	}
	return out
}

// TestLUFactorizeSolves checks the FTRAN/BTRAN contracts against direct
// matrix-vector products: x = ftran(a) must satisfy B x = a, and
// y = btran(c) must satisfy y' B = c'.
func TestLUFactorizeSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 3 + rng.Intn(40)
		colIdx, colVal, basis := randBasisColumns(rng, m, 0)
		f := &luFactor{}
		if !f.factorize(m, basis, colIdx, colVal) {
			t.Fatalf("trial %d: factorize declared a dominant matrix singular", trial)
		}

		var a, out spVec
		a.grow(m)
		out.grow(m)

		// FTRAN with a sparse rhs.
		a.reset()
		rhs := make([]float64, m)
		for k := 0; k < 1+rng.Intn(3); k++ {
			i := int32(rng.Intn(m))
			v := rng.Float64()*4 - 2
			a.add(i, v)
			rhs[i] += v
		}
		f.ftran(&a, &out)
		x := make([]float64, m)
		for _, i := range out.ind {
			x[i] = out.val[i]
		}
		got := mulBasis(m, basis, colIdx, colVal, x)
		for i := 0; i < m; i++ {
			if math.Abs(got[i]-rhs[i]) > 1e-8 {
				t.Fatalf("trial %d m=%d: FTRAN residual %g at row %d", trial, m, got[i]-rhs[i], i)
			}
		}

		// BTRAN with a sparse rhs (indexed by basis position).
		a.reset()
		c := make([]float64, m)
		for k := 0; k < 1+rng.Intn(3); k++ {
			i := int32(rng.Intn(m))
			v := rng.Float64()*4 - 2
			a.add(i, v)
			c[i] += v
		}
		f.btran(&a, &out)
		y := make([]float64, m)
		for _, i := range out.ind {
			y[i] = out.val[i]
		}
		for pos, j := range basis {
			dot := 0.0
			for k, i := range colIdx[j] {
				dot += y[i] * colVal[j][k]
			}
			if math.Abs(dot-c[pos]) > 1e-8 {
				t.Fatalf("trial %d m=%d: BTRAN residual %g at position %d", trial, m, dot-c[pos], pos)
			}
		}
	}
}

// TestLUEtaUpdate performs a chain of basis exchanges through product-form
// eta updates and re-checks the FTRAN contract against the exchanged basis
// after every step — the invariant the simplex pivot loop depends on.
func TestLUEtaUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := 5 + rng.Intn(30)
		extra := 10
		colIdx, colVal, basis := randBasisColumns(rng, m, extra)
		f := &luFactor{}
		if !f.factorize(m, basis, colIdx, colVal) {
			t.Fatalf("trial %d: initial factorize failed", trial)
		}

		var a, w, out spVec
		a.grow(m)
		w.grow(m)
		out.grow(m)

		for step := 0; step < extra; step++ {
			enter := m + step
			a.reset()
			for k, i := range colIdx[enter] {
				a.set(i, colVal[enter][k])
			}
			f.ftran(&a, &w)
			// Leaving position: largest transformed entry (always acceptable).
			leave := int32(-1)
			best := 0.0
			for _, i := range w.ind {
				if v := math.Abs(w.val[i]); v > best {
					best, leave = v, i
				}
			}
			if leave < 0 {
				t.Fatalf("trial %d step %d: zero transformed column", trial, step)
			}
			if !f.update(leave, &w) {
				// Numerically rejected: refactorize from the exchanged basis.
				basis[leave] = enter
				if !f.factorize(m, basis, colIdx, colVal) {
					t.Fatalf("trial %d step %d: refactorize after rejected eta failed", trial, step)
				}
			} else {
				basis[leave] = enter
			}

			// Contract check: x = ftran(e_r + noise) satisfies B_new x = rhs.
			a.reset()
			rhs := make([]float64, m)
			for k := 0; k < 2; k++ {
				i := int32(rng.Intn(m))
				v := rng.Float64()*2 - 1
				a.add(i, v)
				rhs[i] += v
			}
			f.ftran(&a, &out)
			x := make([]float64, m)
			for _, i := range out.ind {
				x[i] = out.val[i]
			}
			got := mulBasis(m, basis, colIdx, colVal, x)
			for i := 0; i < m; i++ {
				if math.Abs(got[i]-rhs[i]) > 1e-7 {
					t.Fatalf("trial %d step %d: post-eta FTRAN residual %g at row %d (etas=%d)",
						trial, step, got[i]-rhs[i], i, f.etaCount())
				}
			}
		}
	}
}

// TestSpVecExactCancellation ensures an entry cancelled to exactly zero stays
// tracked exactly once — a duplicate index would double-apply updates in the
// pivot loops that iterate wv.ind.
func TestSpVecExactCancellation(t *testing.T) {
	var v spVec
	v.grow(8)
	v.add(3, 1.5)
	v.add(3, -1.5)
	v.add(3, 2.0)
	if len(v.ind) != 1 || v.ind[0] != 3 || v.val[3] != 2.0 {
		t.Fatalf("ind=%v val[3]=%g, want single tracked entry with 2.0", v.ind, v.val[3])
	}
	v.reset()
	if v.val[3] != 0 || len(v.ind) != 0 {
		t.Fatalf("reset left val[3]=%g ind=%v", v.val[3], v.ind)
	}
}

// BenchmarkFactorize measures one sparse LU refactorization of an m=200
// basis with a handful of nonzeros per column (the routing-LP regime).
func BenchmarkFactorize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const m = 200
	colIdx, colVal, basis := randBasisColumns(rng, m, 0)
	f := &luFactor{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.factorize(m, basis, colIdx, colVal) {
			b.Fatal("singular")
		}
	}
}

// BenchmarkFTRAN measures one hyper-sparse forward solve (a near-unit column
// through an m=200 factorization), the dominant per-iteration kernel.
func BenchmarkFTRAN(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const m = 200
	colIdx, colVal, basis := randBasisColumns(rng, m, 0)
	f := &luFactor{}
	if !f.factorize(m, basis, colIdx, colVal) {
		b.Fatal("singular")
	}
	var a, out spVec
	a.grow(m)
	out.grow(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.reset()
		a.set(int32(i%m), 1)
		a.set(int32((i*7+3)%m), -0.5)
		f.ftran(&a, &out)
	}
}

// BenchmarkBTRAN measures one hyper-sparse backward solve (a unit row
// selector, the dual ratio test's rho computation).
func BenchmarkBTRAN(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const m = 200
	colIdx, colVal, basis := randBasisColumns(rng, m, 0)
	f := &luFactor{}
	if !f.factorize(m, basis, colIdx, colVal) {
		b.Fatal("singular")
	}
	var a, out spVec
	a.grow(m)
	out.grow(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.reset()
		a.set(int32(i%m), 1)
		f.btran(&a, &out)
	}
}
