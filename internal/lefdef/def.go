package lefdef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"optrouter/internal/route"
)

// Component is one placed instance in a DEF file.
type Component struct {
	Name, Macro string
	XNM, YNM    int
	Orient      string
}

// Wire is a routed segment on one layer, endpoints in nanometers.
type Wire struct {
	Layer          string
	X1, Y1, X2, Y2 int
}

// Via is a placed via: Layer names the cut's lower metal.
type Via struct {
	Layer string
	X, Y  int
}

// DEFNet is one net with its pin references and routed geometry.
type DEFNet struct {
	Name  string
	Pins  [][2]string // (instance, pin)
	Wires []Wire
	Vias  []Via
}

// DEFFile is a parsed DEF design.
type DEFFile struct {
	Design     string
	DieW, DieH int // nanometers
	Components []Component
	Nets       []DEFNet
}

// WriteDEF emits a routed design as DEF. Track coordinates are converted to
// nanometers with x_nm = x * VPitch, y_nm = y * HPitch.
func WriteDEF(w io.Writer, res *route.Result) error {
	bw := bufio.NewWriter(w)
	p := res.P
	t := p.Lib.Tech
	vp, hp := t.VPitchNM(), t.HPitchNM()

	fmt.Fprintf(bw, "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n", p.NL.Name, DBU)
	fmt.Fprintf(bw, "DIEAREA ( 0 0 ) ( %d %d ) ;\n\n", res.NX*vp, res.NY*hp)

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(p.NL.Instances))
	for i, inst := range p.NL.Instances {
		r := p.CellRect(i)
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n", inst.Name, inst.Cell, r.X1, r.Y1)
	}
	fmt.Fprintf(bw, "END COMPONENTS\n\n")

	fmt.Fprintf(bw, "NETS %d ;\n", len(p.NL.Nets))
	for i := range p.NL.Nets {
		n := &p.NL.Nets[i]
		fmt.Fprintf(bw, "- %s", n.Name)
		fmt.Fprintf(bw, " ( %s %s )", p.NL.Instances[n.Driver.Inst].Name, n.Driver.Pin)
		for _, s := range n.Sinks {
			fmt.Fprintf(bw, " ( %s %s )", p.NL.Instances[s.Inst].Name, s.Pin)
		}
		rn := &res.Nets[i]
		first := true
		for _, s := range rn.Steps {
			x1, y1 := s.FromX*vp, s.FromY*hp
			x2, y2 := s.ToX*vp, s.ToY*hp
			kw := "NEW"
			if first {
				kw = "+ ROUTED"
				first = false
			}
			if s.IsVia() {
				lo := s.FromZ
				if s.ToZ < lo {
					lo = s.ToZ
				}
				fmt.Fprintf(bw, "\n  %s %s ( %d %d ) VIA%d%d", kw, t.Layers[lo].Name, x1, y1, lo+1, lo+2)
			} else {
				fmt.Fprintf(bw, "\n  %s %s ( %d %d ) ( %d %d )", kw, t.Layers[s.FromZ].Name, x1, y1, x2, y2)
			}
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

// ReadDEF parses a DEF file written by this package.
func ReadDEF(r io.Reader) (*DEFFile, error) {
	tz, err := newTokenizer(r)
	if err != nil {
		return nil, err
	}
	out := &DEFFile{}
	for {
		tok, ok := tz.next()
		if !ok {
			break
		}
		switch tok {
		case "DESIGN":
			// "END DESIGN" also surfaces the DESIGN token; keep the first
			// (header) name only.
			if out.Design == "" {
				out.Design, _ = tz.next()
				tz.skipStatement()
			}
		case "DIEAREA":
			// ( 0 0 ) ( w h ) ;
			var vals []int
			for {
				t2, ok := tz.next()
				if !ok || t2 == ";" {
					break
				}
				if t2 == "(" || t2 == ")" {
					continue
				}
				v, err := strconv.Atoi(t2)
				if err != nil {
					return nil, fmt.Errorf("def: DIEAREA: %v", err)
				}
				vals = append(vals, v)
			}
			if len(vals) >= 4 {
				out.DieW, out.DieH = vals[2], vals[3]
			}
		case "COMPONENTS":
			if err := readComponents(tz, out); err != nil {
				return nil, err
			}
		case "NETS":
			if err := readNets(tz, out); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func readComponents(tz *tokenizer, out *DEFFile) error {
	tz.skipStatement() // count ;
	for {
		tok, ok := tz.next()
		if !ok {
			return fmt.Errorf("def: unexpected EOF in COMPONENTS")
		}
		if tok == "END" {
			tz.next() // COMPONENTS
			return nil
		}
		if tok != "-" {
			continue
		}
		var c Component
		c.Name, _ = tz.next()
		c.Macro, _ = tz.next()
		for {
			t2, ok := tz.next()
			if !ok || t2 == ";" {
				break
			}
			if t2 == "PLACED" {
				tz.next() // (
				xs, _ := tz.next()
				ys, _ := tz.next()
				tz.next() // )
				c.XNM, _ = strconv.Atoi(xs)
				c.YNM, _ = strconv.Atoi(ys)
				c.Orient, _ = tz.next()
			}
		}
		out.Components = append(out.Components, c)
	}
}

func readNets(tz *tokenizer, out *DEFFile) error {
	tz.skipStatement() // count ;
	for {
		tok, ok := tz.next()
		if !ok {
			return fmt.Errorf("def: unexpected EOF in NETS")
		}
		if tok == "END" {
			tz.next() // NETS
			return nil
		}
		if tok != "-" {
			continue
		}
		var n DEFNet
		n.Name, _ = tz.next()
		curLayer := ""
	stmt:
		for {
			t2, ok := tz.next()
			if !ok {
				return fmt.Errorf("def: unexpected EOF in net %s", n.Name)
			}
			switch t2 {
			case ";":
				break stmt
			case "(":
				inst, _ := tz.next()
				pin, _ := tz.next()
				tz.next() // )
				n.Pins = append(n.Pins, [2]string{inst, pin})
			case "ROUTED", "NEW":
				layer, _ := tz.next()
				curLayer = layer
				// ( x y ) then either ( x2 y2 ) or VIAxy
				tz.next() // (
				xs, _ := tz.next()
				ys, _ := tz.next()
				tz.next() // )
				x, _ := strconv.Atoi(xs)
				y, _ := strconv.Atoi(ys)
				nxt, _ := tz.peek()
				if nxt == "(" {
					tz.next() // (
					xs2, _ := tz.next()
					ys2, _ := tz.next()
					tz.next() // )
					x2, _ := strconv.Atoi(xs2)
					y2, _ := strconv.Atoi(ys2)
					n.Wires = append(n.Wires, Wire{Layer: curLayer, X1: x, Y1: y, X2: x2, Y2: y2})
				} else {
					tz.next() // VIA name
					n.Vias = append(n.Vias, Via{Layer: curLayer, X: x, Y: y})
				}
			case "+":
				// attribute introducer; next token handled on loop
			}
		}
		out.Nets = append(out.Nets, n)
	}
}
