// Package lefdef reads and writes the LEF/DEF subset used by this
// reproduction: technology LEF (routing layers with direction and pitch),
// macro LEF (cell sizes and pin ports) and DEF (die area, placed components,
// and routed nets with wires and vias). The paper's testbed interfaces with
// LEF/DEF through OpenAccess; here the same role is played by plain-text
// readers and writers over the subset the synthetic flow emits.
//
// All database units are nanometers (UNITS DATABASE MICRONS 1000).
package lefdef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"optrouter/internal/cells"
	"optrouter/internal/geom"
	"optrouter/internal/tech"
)

// DBU is the database resolution: units per micron.
const DBU = 1000

// LEFLayer is a parsed routing layer.
type LEFLayer struct {
	Name    string
	Dir     string // "HORIZONTAL" or "VERTICAL"
	PitchNM int
}

// MacroPin is a parsed macro pin.
type MacroPin struct {
	Name  string
	Dir   string // "INPUT", "OUTPUT", "INOUT"
	Rects []geom.LayerRect
}

// Macro is a parsed cell master.
type Macro struct {
	Name     string
	WNM, HNM int
	Pins     []MacroPin
}

// LEFFile is a parsed LEF file (tech and/or macros).
type LEFFile struct {
	Layers []LEFLayer
	Macros []Macro
}

// WriteTechLEF emits the technology LEF.
func WriteTechLEF(w io.Writer, t *tech.Technology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n")
	fmt.Fprintf(bw, "UNITS\n  DATABASE MICRONS %d ;\nEND UNITS\n\n", DBU)
	for _, l := range t.Layers {
		dir := "HORIZONTAL"
		if l.Dir == tech.Vertical {
			dir = "VERTICAL"
		}
		fmt.Fprintf(bw, "LAYER %s\n  TYPE ROUTING ;\n  DIRECTION %s ;\n  PITCH %.3f ;\nEND %s\n\n",
			l.Name, dir, float64(l.PitchNM)/DBU, l.Name)
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

// WriteMacroLEF emits macro definitions for a library.
func WriteMacroLEF(w io.Writer, lib *cells.Library) error {
	bw := bufio.NewWriter(w)
	t := lib.Tech
	fmt.Fprintf(bw, "VERSION 5.8 ;\nUNITS\n  DATABASE MICRONS %d ;\nEND UNITS\n\n", DBU)
	for i := range lib.Cells {
		c := &lib.Cells[i]
		wNM := c.WidthSites * t.SiteWidthNM
		hNM := t.RowHeightNM
		fmt.Fprintf(bw, "MACRO %s\n  CLASS CORE ;\n  SIZE %.3f BY %.3f ;\n  ORIGIN 0 0 ;\n",
			c.Name, float64(wNM)/DBU, float64(hNM)/DBU)
		for _, p := range c.Pins {
			dir := "INPUT"
			switch p.Dir {
			case cells.Output:
				dir = "OUTPUT"
			case cells.Inout:
				dir = "INOUT"
			}
			fmt.Fprintf(bw, "  PIN %s\n    DIRECTION %s ;\n    PORT\n", p.Name, dir)
			for _, s := range p.Shapes {
				layer := t.Layers[s.Layer].Name
				fmt.Fprintf(bw, "      LAYER %s ;\n        RECT %.3f %.3f %.3f %.3f ;\n",
					layer,
					float64(s.Rect.X1)/DBU, float64(s.Rect.Y1)/DBU,
					float64(s.Rect.X2)/DBU, float64(s.Rect.Y2)/DBU)
			}
			fmt.Fprintf(bw, "    END\n  END %s\n", p.Name)
		}
		fmt.Fprintf(bw, "END %s\n\n", c.Name)
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

// tokenizer splits LEF/DEF input into tokens; parentheses and semicolons are
// standalone tokens.
type tokenizer struct {
	toks []string
	pos  int
}

func newTokenizer(r io.Reader) (*tokenizer, error) {
	var sb strings.Builder
	if _, err := io.Copy(&sb, r); err != nil {
		return nil, err
	}
	s := sb.String()
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	s = strings.ReplaceAll(s, ";", " ; ")
	return &tokenizer{toks: strings.Fields(s)}, nil
}

func (t *tokenizer) next() (string, bool) {
	if t.pos >= len(t.toks) {
		return "", false
	}
	tok := t.toks[t.pos]
	t.pos++
	return tok, true
}

func (t *tokenizer) peek() (string, bool) {
	if t.pos >= len(t.toks) {
		return "", false
	}
	return t.toks[t.pos], true
}

// skipStatement consumes tokens through the next semicolon.
func (t *tokenizer) skipStatement() {
	for {
		tok, ok := t.next()
		if !ok || tok == ";" {
			return
		}
	}
}

// micronsToNM converts a LEF/DEF micron literal to integer nanometers.
func micronsToNM(tok string) (int, error) {
	f, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 {
		return int(f*DBU - 0.5), nil
	}
	return int(f*DBU + 0.5), nil
}

// ReadLEF parses a LEF file written by this package (tech and/or macros).
func ReadLEF(r io.Reader) (*LEFFile, error) {
	tz, err := newTokenizer(r)
	if err != nil {
		return nil, err
	}
	out := &LEFFile{}
	for {
		tok, ok := tz.next()
		if !ok {
			break
		}
		switch tok {
		case "LAYER":
			name, _ := tz.next()
			l := LEFLayer{Name: name}
			for {
				t2, ok := tz.next()
				if !ok {
					return nil, fmt.Errorf("lef: unexpected EOF in LAYER %s", name)
				}
				if t2 == "END" {
					tz.next() // layer name
					break
				}
				switch t2 {
				case "DIRECTION":
					l.Dir, _ = tz.next()
					tz.skipStatement()
				case "PITCH":
					p, _ := tz.next()
					nm, err := micronsToNM(p)
					if err != nil {
						return nil, fmt.Errorf("lef: layer %s pitch: %v", name, err)
					}
					l.PitchNM = nm
					tz.skipStatement()
				case "TYPE":
					tz.skipStatement()
				}
			}
			out.Layers = append(out.Layers, l)
		case "MACRO":
			m, err := readMacro(tz)
			if err != nil {
				return nil, err
			}
			out.Macros = append(out.Macros, m)
		}
	}
	return out, nil
}

func readMacro(tz *tokenizer) (Macro, error) {
	name, _ := tz.next()
	m := Macro{Name: name}
	for {
		tok, ok := tz.next()
		if !ok {
			return m, fmt.Errorf("lef: unexpected EOF in MACRO %s", name)
		}
		switch tok {
		case "SIZE":
			wTok, _ := tz.next()
			tz.next() // BY
			hTok, _ := tz.next()
			var err error
			if m.WNM, err = micronsToNM(wTok); err != nil {
				return m, err
			}
			if m.HNM, err = micronsToNM(hTok); err != nil {
				return m, err
			}
			tz.skipStatement()
		case "PIN":
			p, err := readMacroPin(tz)
			if err != nil {
				return m, err
			}
			m.Pins = append(m.Pins, p)
		case "END":
			n2, _ := tz.next()
			if n2 == name {
				return m, nil
			}
		}
	}
}

func readMacroPin(tz *tokenizer) (MacroPin, error) {
	name, _ := tz.next()
	p := MacroPin{Name: name}
	curLayer := ""
	for {
		tok, ok := tz.next()
		if !ok {
			return p, fmt.Errorf("lef: unexpected EOF in PIN %s", name)
		}
		switch tok {
		case "DIRECTION":
			p.Dir, _ = tz.next()
			tz.skipStatement()
		case "LAYER":
			curLayer, _ = tz.next()
			tz.skipStatement()
		case "RECT":
			var nm [4]int
			for i := 0; i < 4; i++ {
				t2, _ := tz.next()
				v, err := micronsToNM(t2)
				if err != nil {
					return p, fmt.Errorf("lef: pin %s rect: %v", name, err)
				}
				nm[i] = v
			}
			tz.skipStatement()
			layerIdx := layerIndexByName(curLayer)
			p.Rects = append(p.Rects, geom.LayerRect{
				Layer: layerIdx,
				Rect:  geom.R(nm[0], nm[1], nm[2], nm[3]),
			})
		case "END":
			if n2, _ := tz.peek(); n2 == name {
				tz.next()
				return p, nil
			}
			// END of PORT
		}
	}
}

// layerIndexByName maps "M3" -> 2 (0-based); unknown names map to 0.
func layerIndexByName(name string) int {
	if len(name) >= 2 && name[0] == 'M' {
		if n, err := strconv.Atoi(name[1:]); err == nil && n >= 1 {
			return n - 1
		}
	}
	return 0
}
