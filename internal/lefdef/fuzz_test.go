package lefdef

import (
	"strings"
	"testing"
)

// FuzzReadLEF checks the LEF reader never panics on arbitrary input.
func FuzzReadLEF(f *testing.F) {
	f.Add("VERSION 5.8 ;\nLAYER M1\n TYPE ROUTING ;\n DIRECTION HORIZONTAL ;\n PITCH 0.1 ;\nEND M1\n")
	f.Add("MACRO X\n SIZE 1 BY 2 ;\n PIN A\n  DIRECTION INPUT ;\n  PORT\n   LAYER M1 ;\n   RECT 0 0 1 1 ;\n  END\n END A\nEND X\n")
	f.Add("LAYER")
	f.Add("MACRO\nEND")
	f.Add("(((;;;)))")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ReadLEF(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, l := range file.Layers {
			if l.PitchNM < 0 {
				// Negative pitches only arise from negative literals the
				// writer never emits; they must still not corrupt state.
				_ = l
			}
		}
	})
}

// FuzzReadDEF checks the DEF reader never panics on arbitrary input.
func FuzzReadDEF(f *testing.F) {
	f.Add("DESIGN d ;\nDIEAREA ( 0 0 ) ( 100 100 ) ;\nCOMPONENTS 1 ;\n- u0 INVX1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nNETS 1 ;\n- n0 ( u0 A ) + ROUTED M2 ( 0 0 ) ( 0 100 ) ;\nEND NETS\nEND DESIGN\n")
	f.Add("NETS 1 ;\n- broken")
	f.Add("COMPONENTS ;")
	f.Add("DIEAREA ( x y ) ;")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ReadDEF(strings.NewReader(src))
	})
}
