package lefdef

import (
	"bytes"
	"strings"
	"testing"

	"optrouter/internal/cells"
	"optrouter/internal/netlist"
	"optrouter/internal/place"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

func TestTechLEFRoundTrip(t *testing.T) {
	tt := tech.N28T12()
	var buf bytes.Buffer
	if err := WriteTechLEF(&buf, tt); err != nil {
		t.Fatal(err)
	}
	f, err := ReadLEF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Layers) != 8 {
		t.Fatalf("layers = %d, want 8", len(f.Layers))
	}
	for i, l := range f.Layers {
		want := tt.Layers[i]
		if l.Name != want.Name {
			t.Errorf("layer %d name %s != %s", i, l.Name, want.Name)
		}
		if l.PitchNM != want.PitchNM {
			t.Errorf("layer %s pitch %d != %d", l.Name, l.PitchNM, want.PitchNM)
		}
		wantDir := "HORIZONTAL"
		if want.Dir == tech.Vertical {
			wantDir = "VERTICAL"
		}
		if l.Dir != wantDir {
			t.Errorf("layer %s dir %s != %s", l.Name, l.Dir, wantDir)
		}
	}
}

func TestMacroLEFRoundTrip(t *testing.T) {
	lib := cells.Generate(tech.N28T8())
	var buf bytes.Buffer
	if err := WriteMacroLEF(&buf, lib); err != nil {
		t.Fatal(err)
	}
	f, err := ReadLEF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Macros) != len(lib.Cells) {
		t.Fatalf("macros = %d, want %d", len(f.Macros), len(lib.Cells))
	}
	for i, m := range f.Macros {
		c := &lib.Cells[i]
		if m.Name != c.Name {
			t.Errorf("macro %d name %s != %s", i, m.Name, c.Name)
		}
		if m.WNM != c.WidthSites*lib.Tech.SiteWidthNM {
			t.Errorf("macro %s width %d != %d", m.Name, m.WNM, c.WidthSites*lib.Tech.SiteWidthNM)
		}
		if m.HNM != lib.Tech.RowHeightNM {
			t.Errorf("macro %s height %d", m.Name, m.HNM)
		}
		if len(m.Pins) != len(c.Pins) {
			t.Errorf("macro %s pins %d != %d", m.Name, len(m.Pins), len(c.Pins))
			continue
		}
		for j, mp := range m.Pins {
			cp := c.Pins[j]
			if mp.Name != cp.Name {
				t.Errorf("%s pin %d name %s != %s", m.Name, j, mp.Name, cp.Name)
			}
			if len(mp.Rects) != len(cp.Shapes) {
				t.Errorf("%s/%s rects %d != %d", m.Name, mp.Name, len(mp.Rects), len(cp.Shapes))
				continue
			}
			for k, r := range mp.Rects {
				if r.Rect != cp.Shapes[k].Rect {
					t.Errorf("%s/%s rect %d: %v != %v", m.Name, mp.Name, k, r.Rect, cp.Shapes[k].Rect)
				}
			}
		}
	}
}

func routedDesign(t *testing.T) *route.Result {
	t.Helper()
	lib := cells.Generate(tech.N28T12())
	nl, err := netlist.Generate(lib, netlist.M0Class(80, 1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(lib, nl, place.Options{TargetUtil: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(p, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDEFRoundTrip(t *testing.T) {
	res := routedDesign(t)
	var buf bytes.Buffer
	if err := WriteDEF(&buf, res); err != nil {
		t.Fatal(err)
	}
	f, err := ReadDEF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := res.P
	if f.Design != p.NL.Name {
		t.Errorf("design name %q", f.Design)
	}
	if len(f.Components) != len(p.NL.Instances) {
		t.Fatalf("components %d != %d", len(f.Components), len(p.NL.Instances))
	}
	for i, c := range f.Components {
		inst := p.NL.Instances[i]
		if c.Name != inst.Name || c.Macro != inst.Cell {
			t.Errorf("component %d: %s/%s != %s/%s", i, c.Name, c.Macro, inst.Name, inst.Cell)
		}
		r := p.CellRect(i)
		if c.XNM != r.X1 || c.YNM != r.Y1 {
			t.Errorf("component %s at (%d,%d), want (%d,%d)", c.Name, c.XNM, c.YNM, r.X1, r.Y1)
		}
	}
	if len(f.Nets) != len(p.NL.Nets) {
		t.Fatalf("nets %d != %d", len(f.Nets), len(p.NL.Nets))
	}
	// Geometry preserved: per net, wire and via counts match the route.
	vp, hp := p.Lib.Tech.VPitchNM(), p.Lib.Tech.HPitchNM()
	for i := range f.Nets {
		rn := &res.Nets[i]
		dn := &f.Nets[i]
		if dn.Name != p.NL.Nets[i].Name {
			t.Fatalf("net %d name %s", i, dn.Name)
		}
		if len(dn.Pins) != 1+len(p.NL.Nets[i].Sinks) {
			t.Fatalf("net %s pins %d", dn.Name, len(dn.Pins))
		}
		if len(dn.Wires) != rn.Wirelength() {
			t.Fatalf("net %s wires %d != %d", dn.Name, len(dn.Wires), rn.Wirelength())
		}
		if len(dn.Vias) != rn.Vias() {
			t.Fatalf("net %s vias %d != %d", dn.Name, len(dn.Vias), rn.Vias())
		}
		for j, s := range rn.Steps {
			_ = j
			if s.IsVia() {
				continue
			}
			// Every wire step appears with matching coordinates.
			found := false
			for _, w := range dn.Wires {
				if w.X1 == s.FromX*vp && w.Y1 == s.FromY*hp && w.X2 == s.ToX*vp && w.Y2 == s.ToY*hp {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("net %s: step %+v missing in DEF", dn.Name, s)
			}
		}
	}
}

func TestReadLEFErrors(t *testing.T) {
	if _, err := ReadLEF(strings.NewReader("LAYER M1\nDIRECTION")); err == nil {
		t.Error("truncated LEF accepted")
	}
	if _, err := ReadLEF(strings.NewReader("LAYER M1\n  PITCH abc ;\nEND M1")); err == nil {
		t.Error("bad pitch accepted")
	}
}

func TestLayerIndexByName(t *testing.T) {
	if layerIndexByName("M1") != 0 || layerIndexByName("M8") != 7 {
		t.Error("layer index mapping broken")
	}
	if layerIndexByName("poly") != 0 {
		t.Error("unknown layer should map to 0")
	}
}

func TestMicronsToNM(t *testing.T) {
	cases := map[string]int{"0.100": 100, "1.2": 1200, "0": 0, "10.001": 10001}
	for s, want := range cases {
		got, err := micronsToNM(s)
		if err != nil || got != want {
			t.Errorf("micronsToNM(%s) = %d, %v; want %d", s, got, err, want)
		}
	}
	if _, err := micronsToNM("xx"); err == nil {
		t.Error("bad literal accepted")
	}
}
