package report_test

// External test package: these tests drive the real solvers (internal/core)
// to produce traces, which package report itself must not depend on.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/ilp"
	"optrouter/internal/obs"
	"optrouter/internal/report"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

func synthTracedGraph(t *testing.T, seed int64, ruleName string) *rgraph.Graph {
	t.Helper()
	sopt := clip.DefaultSynth(seed)
	sopt.NX, sopt.NY, sopt.NZ = 4, 5, 3
	sopt.NumNets = 3
	sopt.MaxSinks = 2
	c := clip.Synthesize(sopt)
	c.Tech = "N28-12T"
	rule, ok := tech.RuleByName(ruleName)
	if !ok {
		t.Fatalf("unknown rule %s", ruleName)
	}
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTraceviewPhaseAgreement is the acceptance pin: traceview's view of a
// real solve — reconstructed from the trace alone — must agree with the
// solver's own SolveStats phase attribution within 1% on every phase.
func TestTraceviewPhaseAgreement(t *testing.T) {
	g := synthTracedGraph(t, 3, "RULE7")

	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	sol, err := core.SolveBnB(g, core.BnBOptions{
		Tracer: tr,
		Flight: obs.FlightOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := obs.BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	if probs := obs.ValidateTrace(recs); len(probs) > 0 {
		t.Fatalf("trace not well-formed: %v", probs)
	}

	solves := report.ExtractSolves(tree)
	if len(solves) != 1 {
		t.Fatalf("ExtractSolves found %d solves, want 1", len(solves))
	}
	s := solves[0]
	if s.Solver != "bnb" {
		t.Errorf("solver = %q, want bnb", s.Solver)
	}

	want := sol.Stats.Phases.MS()
	if len(want) == 0 {
		t.Fatal("solver reported no phases; the pin has nothing to check")
	}
	for phase, wantMS := range want {
		gotMS, ok := s.PhasesMS[phase]
		if !ok {
			t.Errorf("phase %q missing from trace attribution", phase)
			continue
		}
		// Within 1% (with a 10µs absolute floor for near-zero phases).
		if diff := math.Abs(gotMS - wantMS); diff > 0.01 && diff > 0.01*wantMS {
			t.Errorf("phase %q: trace says %.3fms, SolveStats says %.3fms", phase, gotMS, wantMS)
		}
	}
	wantTotal, gotTotal := 0.0, s.PhaseTotal()
	for _, ms := range want {
		wantTotal += ms
	}
	if diff := math.Abs(gotTotal - wantTotal); diff > 0.01 && diff > 0.01*wantTotal {
		t.Errorf("phase total: trace %.3fms vs SolveStats %.3fms (>1%%)", gotTotal, wantTotal)
	}

	// Flight accounting must tie out against the events actually decoded.
	if int64(len(s.Events)) != s.FlightKept {
		t.Errorf("decoded %d events but flight_kept = %d", len(s.Events), s.FlightKept)
	}
	if s.FlightSeen != s.FlightKept+s.FlightDropped {
		t.Errorf("flight seen %d != kept %d + dropped %d",
			s.FlightSeen, s.FlightKept, s.FlightDropped)
	}
	if s.FlightSeen < int64(sol.Stats.Nodes) {
		t.Errorf("flight saw %d events over a %d-node search", s.FlightSeen, sol.Stats.Nodes)
	}

	// The recorded search must have structure: depths start at 0, every event
	// carries an action, and the wall clamps the phase total from above.
	hist := s.DepthHistogram()
	if len(hist) == 0 || hist[0] == 0 {
		t.Errorf("depth histogram %v has no root-depth events", hist)
	}
	acts := s.ActCounts()
	total := 0
	for act, n := range acts {
		if act == "" {
			t.Error("node event with empty act")
		}
		total += n
	}
	if total != len(s.Events) {
		t.Errorf("ActCounts sums to %d, want %d", total, len(s.Events))
	}
	if s.WallMS() <= 0 {
		t.Errorf("solve span wall = %.3fms", s.WallMS())
	}
}

// TestTraceviewILPSolve: the MILP engine's solves are found too, carry the
// clip attr, and their node events include per-node LP effort.
func TestTraceviewILPSolve(t *testing.T) {
	g := synthTracedGraph(t, 3, "RULE1")

	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	if _, err := core.SolveILP(g, ilp.Options{
		Tracer: tr,
		Flight: obs.FlightOptions{Enabled: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := obs.BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	solves := report.ExtractSolves(tree)
	if len(solves) != 1 || solves[0].Solver != "ilp" {
		t.Fatalf("solves = %+v, want one ilp solve", solves)
	}
	s := solves[0]
	if s.Clip != g.Clip.Name {
		t.Errorf("clip attr = %q, want %q", s.Clip, g.Clip.Name)
	}
	if len(s.Events) == 0 {
		t.Fatal("no node events recorded")
	}
	sawLP := false
	for _, ev := range s.Events {
		if ev.LPIters > 0 {
			sawLP = true
		}
	}
	if !sawLP {
		t.Error("no node event carries lp_iters")
	}

	// TopSpans over a real solve: ilp.solve must aggregate with positive
	// cumulative time, and self time never exceeds it.
	tops := report.TopSpans(tree, 0)
	found := false
	for _, a := range tops {
		if a.SelfUS > a.TotalUS {
			t.Errorf("span %s: self %dus > total %dus", a.Name, a.SelfUS, a.TotalUS)
		}
		if a.Name == "ilp.solve" {
			found = true
			if a.Count != 1 || a.TotalUS <= 0 {
				t.Errorf("ilp.solve agg = %+v", a)
			}
		}
	}
	if !found {
		t.Error("TopSpans lost ilp.solve")
	}
	if top3 := report.TopSpans(tree, 3); len(top3) > 3 {
		t.Errorf("TopSpans(3) returned %d entries", len(top3))
	}
}

// TestTraceviewSynthetic pins the analysis functions on a hand-built trace
// with known node events.
func TestTraceviewSynthetic(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	solve := tr.Start("bnb.solve", obs.A("clip", "clip-x"))
	tr.Event(solve, "node", obs.A("act", "branch"), obs.A("n", 1), obs.A("d", 0),
		obs.A("lb", 4), obs.A("kind", "spacing"), obs.A("kids", 2))
	tr.Event(solve, "node", obs.A("act", "branch"), obs.A("n", 2), obs.A("d", 1),
		obs.A("lb", 5), obs.A("bnd", 4), obs.A("kids", 1))
	tr.Event(solve, "node", obs.A("act", "solved"), obs.A("n", 3), obs.A("d", 2),
		obs.A("lb", 7), obs.A("bnd", 4), obs.A("inc", 7))
	tr.Event(solve, "node", obs.A("act", "dominated"), obs.A("n", 4), obs.A("d", 1),
		obs.A("lb", 9), obs.A("bnd", 5), obs.A("inc", 7))
	solve.SetAttr("phases_ms", map[string]float64{"search": 10, "steiner": 2.5})
	solve.SetAttr("flight_seen", int64(4))
	solve.SetAttr("flight_kept", int64(4))
	solve.SetAttr("flight_dropped", int64(0))
	solve.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := obs.BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	solves := report.ExtractSolves(tree)
	if len(solves) != 1 {
		t.Fatalf("found %d solves", len(solves))
	}
	s := solves[0]
	if s.Clip != "clip-x" || len(s.Events) != 4 {
		t.Fatalf("solve = %+v", s)
	}

	if hist := s.DepthHistogram(); len(hist) != 3 || hist[0] != 1 || hist[1] != 2 || hist[2] != 1 {
		t.Errorf("depth histogram = %v, want [1 2 1]", hist)
	}
	acts := s.ActCounts()
	if acts["branch"] != 2 || acts["solved"] != 1 || acts["dominated"] != 1 {
		t.Errorf("act counts = %v", acts)
	}

	// Only events carrying both bound and incumbent make the gap curve.
	gap := s.GapCurve()
	if len(gap) != 2 || gap[0].N != 3 || gap[0].Bound != 4 || gap[0].Inc != 7 || gap[1].N != 4 {
		t.Errorf("gap curve = %+v", gap)
	}

	ev := s.Events[0]
	if ev.Act != "branch" || ev.Depth != 0 || ev.LB != 4 || ev.Kind != "spacing" ||
		ev.Kids != 2 || ev.HasBound || ev.HasIncumbent || ev.Var != -1 {
		t.Errorf("first event = %+v", ev)
	}

	if got := s.PhaseTotal(); got != 12.5 {
		t.Errorf("PhaseTotal = %g, want 12.5", got)
	}
	if line := s.PhaseLine(); line != "search 10.0ms, steiner 2.5ms" {
		t.Errorf("PhaseLine = %q", line)
	}
}

// TestWriteNodeCSV: every event of every solve becomes one row, in solve
// order, with absent bound/incumbent left empty.
func TestWriteNodeCSV(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	for i, clipName := range []string{"c0", "c1"} {
		sp := tr.Start("ilp.solve", obs.A("clip", clipName))
		tr.Event(sp, "node", obs.A("act", "branch"), obs.A("n", 1), obs.A("d", 0),
			obs.A("lb", 10+i), obs.A("lp_iters", 42), obs.A("warm", true),
			obs.A("var", 7), obs.A("frac", 0.25))
		sp.End()
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := obs.BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	solves := report.ExtractSolves(tree)
	if len(solves) != 2 {
		t.Fatalf("found %d solves, want 2", len(solves))
	}

	var csvBuf bytes.Buffer
	if err := report.WriteNodeCSV(&csvBuf, solves); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csvBuf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "solve,solver,clip,n,depth,act,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,ilp,c0,1,0,branch,10,,,42,") {
		t.Errorf("row 0 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1,ilp,c1,1,0,branch,11,,,42,") {
		t.Errorf("row 1 = %q", lines[2])
	}
	if !strings.Contains(lines[1], ",true,") || !strings.Contains(lines[1], ",7,0.25,") {
		t.Errorf("row 0 lost warm/var/frac: %q", lines[1])
	}
}
