package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewProfileWriter(&buf)
	recs := []ProfileRecord{
		{Clip: "4x5x3", Rule: "RULE1", Solver: "bnb", WallMS: 12.5, Hz: 100, Samples: 3,
			Funcs: []BenchFuncSample{
				{Fn: "optrouter/internal/core.steinerTree", Self: 2, Cum: 3},
				{Fn: "optrouter/internal/core.(*bnbState).solve", Self: 1, Cum: 3},
			}},
		{Clip: "6x6x3", Rule: "RULE2", Solver: "ilp", WallMS: 400, Hz: 100, Samples: 0},
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ReadProfiles(buf.Bytes())
	if err != nil {
		t.Fatalf("ReadProfiles: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("ReadProfiles returned %d records, want 2", len(got))
	}
	if got[0].Clip != "4x5x3" || got[0].Samples != 3 || len(got[0].Funcs) != 2 {
		t.Errorf("record 0 = %+v", got[0])
	}
	if got[1].Solver != "ilp" || got[1].Funcs != nil {
		t.Errorf("record 1 = %+v", got[1])
	}
}

func TestProfileWriterNilSafe(t *testing.T) {
	var w *ProfileWriter
	if err := w.Write(ProfileRecord{}); err != nil {
		t.Fatalf("nil Write: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
}

func TestReadProfilesRejects(t *testing.T) {
	good := `{"clip":"a","rule":"R","solver":"bnb","wall_ms":1,"hz":100,"samples":2}`
	cases := map[string]string{
		"unknown field":   `{"clip":"a","rule":"R","solver":"bnb","wall_ms":1,"hz":100,"samples":2,"bogus":1}`,
		"missing clip":    `{"rule":"R","solver":"bnb","wall_ms":1,"hz":100,"samples":2}`,
		"missing solver":  `{"clip":"a","rule":"R","wall_ms":1,"hz":100,"samples":2}`,
		"zero hz":         `{"clip":"a","rule":"R","solver":"bnb","wall_ms":1,"hz":0,"samples":2}`,
		"negative count":  `{"clip":"a","rule":"R","solver":"bnb","wall_ms":1,"hz":100,"samples":-1}`,
		"empty func name": `{"clip":"a","rule":"R","solver":"bnb","wall_ms":1,"hz":100,"samples":2,"funcs":[{"fn":"","self":1,"cum":1}]}`,
		"cum below self":  `{"clip":"a","rule":"R","solver":"bnb","wall_ms":1,"hz":100,"samples":2,"funcs":[{"fn":"f","self":3,"cum":1}]}`,
		"not json":        `nope`,
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			// The bad line rides second so the error must carry line number 2.
			_, err := ReadProfiles([]byte(good + "\n" + bad + "\n"))
			if err == nil {
				t.Fatalf("ReadProfiles accepted %q", bad)
			}
			if !strings.Contains(err.Error(), "line 2") {
				t.Fatalf("error lacks line attribution: %v", err)
			}
		})
	}
	// Blank lines are fine.
	recs, err := ReadProfiles([]byte("\n" + good + "\n\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("blank-line handling: %d recs, err=%v", len(recs), err)
	}
}
