package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"optrouter/internal/obs"
)

func TestWriteMetricsJSONFlattens(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("nodes").Add(42)
	reg.Counter("lp_solves").Add(7)
	reg.Counter("wall_ms").Add(1234)
	reg.Gauge("gap").Set(0.25)
	h := reg.Histogram("solve_ms")
	h.Observe(3)
	h.Observe(9)

	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	for k, want := range map[string]float64{"nodes": 42, "lp_solves": 7, "wall_ms": 1234} {
		v, ok := doc[k].(float64)
		if !ok || v != want {
			t.Errorf("doc[%q] = %v, want %v", k, doc[k], want)
		}
	}
	if v, ok := doc["gap"].(float64); !ok || v != 0.25 {
		t.Errorf("doc[gap] = %v, want 0.25", doc["gap"])
	}
	hist, ok := doc["solve_ms"].(map[string]interface{})
	if !ok {
		t.Fatalf("doc[solve_ms] = %T, want histogram object", doc["solve_ms"])
	}
	if c, _ := hist["count"].(float64); c != 2 {
		t.Errorf("solve_ms count = %v, want 2", hist["count"])
	}
}

func TestMetricsSetAndKeys(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("solves").Inc()
	m := NewMetrics(reg.Snapshot())
	m.Set("tech", "N28-12T")

	var buf bytes.Buffer
	if err := WriteMetrics(&buf, m); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["tech"] != "N28-12T" {
		t.Errorf("doc[tech] = %v", doc["tech"])
	}
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "solves" || keys[1] != "tech" {
		t.Errorf("Keys() = %v", keys)
	}
}
