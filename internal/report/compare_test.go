package report

import (
	"math"
	"reflect"
	"testing"
)

func TestCompareBench(t *testing.T) {
	ok := func(name, solver string, cost int, wall float64) BenchCase {
		return BenchCase{Name: name, Solver: solver, Feasible: true, Proven: true,
			Cost: cost, WallMS: wall}
	}
	base := &BenchDoc{Cases: []BenchCase{
		ok("a", "bnb", 10, 100),
		ok("b", "bnb", 5, 400),
		ok("c", "ilp", 7, 10),
		{Name: "e", Solver: "bnb", Err: "boom", WallMS: 1},
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		ok("a", "bnb", 10, 50), // 2x faster
		ok("b", "bnb", 6, 100), // answer mismatch: excluded from the ratio
		ok("d", "ilp", 1, 5),   // only in current
		ok("e", "bnb", 3, 1),   // errored in base: excluded
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 1 {
		t.Fatalf("Matched = %d, want 1", cmp.Matched)
	}
	if math.Abs(cmp.WallRatio-0.5) > 1e-9 {
		t.Fatalf("WallRatio = %g, want 0.5", cmp.WallRatio)
	}
	if len(cmp.Mismatches) != 1 {
		t.Fatalf("Mismatches = %v, want exactly the b/bnb cost change", cmp.Mismatches)
	}
	if want := []string{"c/ilp"}; !reflect.DeepEqual(cmp.OnlyBase, want) {
		t.Fatalf("OnlyBase = %v, want %v", cmp.OnlyBase, want)
	}
	if want := []string{"d/ilp"}; !reflect.DeepEqual(cmp.OnlyCur, want) {
		t.Fatalf("OnlyCur = %v, want %v", cmp.OnlyCur, want)
	}
}

// TestCompareBenchWallFloor: sub-millisecond walls are clamped to 1ms so
// jitter on trivial cases cannot swing the geomean.
func TestCompareBenchWallFloor(t *testing.T) {
	base := &BenchDoc{Cases: []BenchCase{
		{Name: "tiny", Solver: "bnb", Feasible: true, Proven: true, Cost: 1, WallMS: 0.01},
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		{Name: "tiny", Solver: "bnb", Feasible: true, Proven: true, Cost: 1, WallMS: 0.99},
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 1 || cmp.WallRatio != 1 {
		t.Fatalf("Matched=%d WallRatio=%g, want 1 and 1 (both walls clamp to the 1ms floor)",
			cmp.Matched, cmp.WallRatio)
	}
}

func TestCompareBenchEmpty(t *testing.T) {
	cmp := CompareBench(&BenchDoc{}, &BenchDoc{})
	if cmp.Matched != 0 || cmp.WallRatio != 1 || len(cmp.Mismatches) != 0 {
		t.Fatalf("empty comparison: %+v", cmp)
	}
	if len(cmp.PhaseDeltas) != 0 || cmp.PhaseSummary(3) != "" {
		t.Fatalf("empty comparison has phase deltas: %+v", cmp.PhaseDeltas)
	}
}

// TestCompareBenchPhaseDeltas: the per-phase attribution sums matched cases
// only, prefixes simplex-internal phases with "lp.", floors ratios at 1ms,
// and ranks by absolute millisecond movement.
func TestCompareBenchPhaseDeltas(t *testing.T) {
	mk := func(name string, phases, lpPhases map[string]float64) BenchCase {
		return BenchCase{Name: name, Solver: "ilp", Feasible: true, Proven: true,
			Cost: 3, WallMS: 100, PhasesMS: phases, LPPhasesMS: lpPhases}
	}
	base := &BenchDoc{Cases: []BenchCase{
		mk("a", map[string]float64{"node_lp": 100, "search": 20}, map[string]float64{"pricing": 60}),
		mk("b", map[string]float64{"node_lp": 100}, nil),
		// Mismatched case: its phases must not contribute.
		{Name: "m", Solver: "ilp", Feasible: true, Proven: true, Cost: 1, WallMS: 10,
			PhasesMS: map[string]float64{"node_lp": 1e6}},
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		mk("a", map[string]float64{"node_lp": 150, "search": 19}, map[string]float64{"pricing": 90}),
		mk("b", map[string]float64{"node_lp": 132, "heuristic": 4}, nil),
		{Name: "m", Solver: "ilp", Feasible: true, Proven: true, Cost: 2, WallMS: 10,
			PhasesMS: map[string]float64{"node_lp": 1}},
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 2 {
		t.Fatalf("Matched = %d, want 2", cmp.Matched)
	}
	byPhase := map[string]PhaseDelta{}
	for _, d := range cmp.PhaseDeltas {
		byPhase[d.Phase] = d
	}
	nl := byPhase["node_lp"]
	if nl.BaseMS != 200 || nl.CurMS != 282 || math.Abs(nl.Ratio-1.41) > 1e-9 {
		t.Errorf("node_lp delta = %+v, want 200 -> 282 (ratio 1.41)", nl)
	}
	if lp := byPhase["lp.pricing"]; lp.BaseMS != 60 || lp.CurMS != 90 {
		t.Errorf("lp.pricing delta = %+v, want 60 -> 90", lp)
	}
	// heuristic exists only in cur: base side must be zero with the 1ms floor
	// keeping the ratio sane.
	if h := byPhase["heuristic"]; h.BaseMS != 0 || h.CurMS != 4 || h.Ratio != 4 {
		t.Errorf("heuristic delta = %+v, want 0 -> 4 (ratio 4 via 1ms floor)", h)
	}
	// Largest absolute movement first: node_lp moved 82ms, lp.pricing 30ms.
	if cmp.PhaseDeltas[0].Phase != "node_lp" || cmp.PhaseDeltas[1].Phase != "lp.pricing" {
		t.Errorf("rank order = %v", cmp.PhaseDeltas)
	}
	if s := cmp.PhaseSummary(2); s != "node_lp +41%, lp.pricing +50%" {
		t.Errorf("PhaseSummary(2) = %q", s)
	}
}
