package report

import (
	"math"
	"reflect"
	"testing"
)

func TestCompareBench(t *testing.T) {
	ok := func(name, solver string, cost int, wall float64) BenchCase {
		return BenchCase{Name: name, Solver: solver, Feasible: true, Proven: true,
			Cost: cost, WallMS: wall}
	}
	base := &BenchDoc{Cases: []BenchCase{
		ok("a", "bnb", 10, 100),
		ok("b", "bnb", 5, 400),
		ok("c", "ilp", 7, 10),
		{Name: "e", Solver: "bnb", Err: "boom", WallMS: 1},
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		ok("a", "bnb", 10, 50), // 2x faster
		ok("b", "bnb", 6, 100), // answer mismatch: excluded from the ratio
		ok("d", "ilp", 1, 5),   // only in current
		ok("e", "bnb", 3, 1),   // errored in base: excluded
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 1 {
		t.Fatalf("Matched = %d, want 1", cmp.Matched)
	}
	if math.Abs(cmp.WallRatio-0.5) > 1e-9 {
		t.Fatalf("WallRatio = %g, want 0.5", cmp.WallRatio)
	}
	if len(cmp.Mismatches) != 1 {
		t.Fatalf("Mismatches = %v, want exactly the b/bnb cost change", cmp.Mismatches)
	}
	if want := []string{"c/ilp"}; !reflect.DeepEqual(cmp.OnlyBase, want) {
		t.Fatalf("OnlyBase = %v, want %v", cmp.OnlyBase, want)
	}
	if want := []string{"d/ilp"}; !reflect.DeepEqual(cmp.OnlyCur, want) {
		t.Fatalf("OnlyCur = %v, want %v", cmp.OnlyCur, want)
	}
}

// TestCompareBenchWallFloor: sub-millisecond walls are clamped to 1ms so
// jitter on trivial cases cannot swing the geomean.
func TestCompareBenchWallFloor(t *testing.T) {
	base := &BenchDoc{Cases: []BenchCase{
		{Name: "tiny", Solver: "bnb", Feasible: true, Proven: true, Cost: 1, WallMS: 0.01},
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		{Name: "tiny", Solver: "bnb", Feasible: true, Proven: true, Cost: 1, WallMS: 0.99},
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 1 || cmp.WallRatio != 1 {
		t.Fatalf("Matched=%d WallRatio=%g, want 1 and 1 (both walls clamp to the 1ms floor)",
			cmp.Matched, cmp.WallRatio)
	}
}

func TestCompareBenchEmpty(t *testing.T) {
	cmp := CompareBench(&BenchDoc{}, &BenchDoc{})
	if cmp.Matched != 0 || cmp.WallRatio != 1 || len(cmp.Mismatches) != 0 {
		t.Fatalf("empty comparison: %+v", cmp)
	}
}
