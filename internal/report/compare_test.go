package report

import (
	"math"
	"reflect"
	"testing"
)

func TestCompareBench(t *testing.T) {
	ok := func(name, solver string, cost int, wall float64) BenchCase {
		return BenchCase{Name: name, Solver: solver, Feasible: true, Proven: true,
			Cost: cost, WallMS: wall}
	}
	base := &BenchDoc{Cases: []BenchCase{
		ok("a", "bnb", 10, 100),
		ok("b", "bnb", 5, 400),
		ok("c", "ilp", 7, 10),
		{Name: "e", Solver: "bnb", Err: "boom", WallMS: 1},
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		ok("a", "bnb", 10, 50), // 2x faster
		ok("b", "bnb", 6, 100), // answer mismatch: excluded from the ratio
		ok("d", "ilp", 1, 5),   // only in current
		ok("e", "bnb", 3, 1),   // errored in base: excluded
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 1 {
		t.Fatalf("Matched = %d, want 1", cmp.Matched)
	}
	if math.Abs(cmp.WallRatio-0.5) > 1e-9 {
		t.Fatalf("WallRatio = %g, want 0.5", cmp.WallRatio)
	}
	if len(cmp.Mismatches) != 1 {
		t.Fatalf("Mismatches = %v, want exactly the b/bnb cost change", cmp.Mismatches)
	}
	if want := []string{"c/ilp"}; !reflect.DeepEqual(cmp.OnlyBase, want) {
		t.Fatalf("OnlyBase = %v, want %v", cmp.OnlyBase, want)
	}
	if want := []string{"d/ilp"}; !reflect.DeepEqual(cmp.OnlyCur, want) {
		t.Fatalf("OnlyCur = %v, want %v", cmp.OnlyCur, want)
	}
}

// TestCompareBenchWallFloor: sub-millisecond walls are clamped to 1ms so
// jitter on trivial cases cannot swing the geomean.
func TestCompareBenchWallFloor(t *testing.T) {
	base := &BenchDoc{Cases: []BenchCase{
		{Name: "tiny", Solver: "bnb", Feasible: true, Proven: true, Cost: 1, WallMS: 0.01},
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		{Name: "tiny", Solver: "bnb", Feasible: true, Proven: true, Cost: 1, WallMS: 0.99},
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 1 || cmp.WallRatio != 1 {
		t.Fatalf("Matched=%d WallRatio=%g, want 1 and 1 (both walls clamp to the 1ms floor)",
			cmp.Matched, cmp.WallRatio)
	}
}

func TestCompareBenchEmpty(t *testing.T) {
	cmp := CompareBench(&BenchDoc{}, &BenchDoc{})
	if cmp.Matched != 0 || cmp.WallRatio != 1 || len(cmp.Mismatches) != 0 {
		t.Fatalf("empty comparison: %+v", cmp)
	}
	if len(cmp.PhaseDeltas) != 0 || cmp.PhaseSummary(3) != "" {
		t.Fatalf("empty comparison has phase deltas: %+v", cmp.PhaseDeltas)
	}
}

// TestCompareBenchPhaseDeltas: the per-phase attribution sums matched cases
// only, prefixes simplex-internal phases with "lp.", floors ratios at 1ms,
// and ranks by absolute millisecond movement.
func TestCompareBenchPhaseDeltas(t *testing.T) {
	mk := func(name string, phases, lpPhases map[string]float64) BenchCase {
		return BenchCase{Name: name, Solver: "ilp", Feasible: true, Proven: true,
			Cost: 3, WallMS: 100, PhasesMS: phases, LPPhasesMS: lpPhases}
	}
	base := &BenchDoc{Cases: []BenchCase{
		mk("a", map[string]float64{"node_lp": 100, "search": 20}, map[string]float64{"pricing": 60}),
		mk("b", map[string]float64{"node_lp": 100}, nil),
		// Mismatched case: its phases must not contribute.
		{Name: "m", Solver: "ilp", Feasible: true, Proven: true, Cost: 1, WallMS: 10,
			PhasesMS: map[string]float64{"node_lp": 1e6}},
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		mk("a", map[string]float64{"node_lp": 150, "search": 19}, map[string]float64{"pricing": 90}),
		mk("b", map[string]float64{"node_lp": 132, "heuristic": 4}, nil),
		{Name: "m", Solver: "ilp", Feasible: true, Proven: true, Cost: 2, WallMS: 10,
			PhasesMS: map[string]float64{"node_lp": 1}},
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 2 {
		t.Fatalf("Matched = %d, want 2", cmp.Matched)
	}
	byPhase := map[string]PhaseDelta{}
	for _, d := range cmp.PhaseDeltas {
		byPhase[d.Phase] = d
	}
	nl := byPhase["node_lp"]
	if nl.BaseMS != 200 || nl.CurMS != 282 || math.Abs(nl.Ratio-1.41) > 1e-9 {
		t.Errorf("node_lp delta = %+v, want 200 -> 282 (ratio 1.41)", nl)
	}
	if lp := byPhase["lp.pricing"]; lp.BaseMS != 60 || lp.CurMS != 90 {
		t.Errorf("lp.pricing delta = %+v, want 60 -> 90", lp)
	}
	// heuristic exists only in cur: base side must be zero with the 1ms floor
	// keeping the ratio sane.
	if h := byPhase["heuristic"]; h.BaseMS != 0 || h.CurMS != 4 || h.Ratio != 4 {
		t.Errorf("heuristic delta = %+v, want 0 -> 4 (ratio 4 via 1ms floor)", h)
	}
	// Largest absolute movement first: node_lp moved 82ms, lp.pricing 30ms.
	if cmp.PhaseDeltas[0].Phase != "node_lp" || cmp.PhaseDeltas[1].Phase != "lp.pricing" {
		t.Errorf("rank order = %v", cmp.PhaseDeltas)
	}
	if s := cmp.PhaseSummary(2); s != "node_lp +41%, lp.pricing +50%" {
		t.Errorf("PhaseSummary(2) = %q", s)
	}
}

// TestCompareBenchWorkRatios: explicit v5 vectors compare over the key
// union, legacy baselines over the shared derived keys, portfolio cases are
// excluded, and WorkMax names the worst case.
func TestCompareBenchWorkRatios(t *testing.T) {
	mk := func(name, solver string, work map[string]int64) BenchCase {
		return BenchCase{Name: name, Solver: solver, Feasible: true, Proven: true,
			Cost: 9, WallMS: 50, Work: work}
	}
	base := &BenchDoc{Cases: []BenchCase{
		mk("flat", "bnb", map[string]int64{"nodes": 100, "drc_checks": 1000}),
		mk("worse", "bnb", map[string]int64{"nodes": 100, "drc_checks": 1000}),
		mk("race", "portfolio", nil),
	}}
	cur := &BenchDoc{Cases: []BenchCase{
		mk("flat", "bnb", map[string]int64{"nodes": 100, "drc_checks": 1000}),
		mk("worse", "bnb", map[string]int64{"nodes": 200, "drc_checks": 2000}),
		mk("race", "portfolio", nil),
	}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 3 {
		t.Fatalf("Matched = %d, want 3 (portfolio matches on answers)", cmp.Matched)
	}
	if cmp.WorkCases != 2 {
		t.Fatalf("WorkCases = %d, want 2 (portfolio excluded)", cmp.WorkCases)
	}
	if math.Abs(cmp.WorkMax-2) > 1e-9 || cmp.WorkMaxCase != "worse/bnb" {
		t.Fatalf("WorkMax = %g at %q, want 2 at worse/bnb", cmp.WorkMax, cmp.WorkMaxCase)
	}
	// Geomean over the two work cases: sqrt(1 * 2).
	if math.Abs(cmp.WorkRatio-math.Sqrt2) > 1e-9 {
		t.Fatalf("WorkRatio = %g, want sqrt(2)", cmp.WorkRatio)
	}
	byCounter := map[string]WorkDelta{}
	for _, d := range cmp.WorkDeltas {
		byCounter[d.Counter] = d
	}
	if d := byCounter["nodes"]; d.Base != 200 || d.Cur != 300 {
		t.Errorf("nodes delta = %+v, want 200 -> 300", d)
	}
	if d := byCounter["drc_checks"]; d.Base != 2000 || d.Cur != 3000 {
		t.Errorf("drc_checks delta = %+v, want 2000 -> 3000", d)
	}
}

// TestCaseWorkRatioKeyLogic: the union applies when both vectors are
// explicit (a vanished counter is signal, floored at 1), the intersection
// when either side is legacy-derived.
func TestCaseWorkRatioKeyLogic(t *testing.T) {
	ok := BenchCase{Name: "a", Solver: "bnb", Feasible: true, Proven: true, Cost: 1}

	// Explicit both sides, counter only in cur: union includes it; the base
	// side floors to 1.
	b, c := ok, ok
	b.Work = map[string]int64{"nodes": 8}
	c.Work = map[string]int64{"nodes": 8, "dives": 2}
	r, keys, okr := caseWorkRatio(b, c)
	if !okr || len(keys) != 2 {
		t.Fatalf("explicit union: ratio=%g keys=%v ok=%v", r, keys, okr)
	}
	if want := math.Sqrt(2); math.Abs(r-want) > 1e-9 {
		t.Fatalf("explicit union ratio = %g, want sqrt(2) (nodes 1.0, dives 2/1)", r)
	}

	// Legacy base (no Work map): only the derived keys shared with cur count.
	b2, c2 := ok, ok
	b2.Nodes, b2.LPSolves, b2.SimplexIters = 10, 20, 400
	c2.Work = map[string]int64{"nodes": 10, "lp_solves": 20, "simplex_iters": 400,
		"ftran_nnz": 1 << 30} // new counter invisible to a legacy baseline
	r2, keys2, okr2 := caseWorkRatio(b2, c2)
	if !okr2 || len(keys2) != 3 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("legacy intersection: ratio=%g keys=%v ok=%v, want 1.0 over 3 keys",
			r2, keys2, okr2)
	}

	// Portfolio on either side: not comparable.
	p := ok
	p.Solver = "portfolio"
	if _, _, okp := caseWorkRatio(p, c); okp {
		t.Fatal("portfolio base must not produce a work ratio")
	}
	if _, _, okp := caseWorkRatio(b, p); okp {
		t.Fatal("portfolio cur must not produce a work ratio")
	}
}

// TestCompareBenchCalibration: the machine ratio is the geomean over shared
// machine probes, the solver probe is excluded, and the calibrated wall is
// the raw wall with the machine movement divided out.
func TestCompareBenchCalibration(t *testing.T) {
	mk := func(wall float64) BenchCase {
		return BenchCase{Name: "a", Solver: "bnb", Feasible: true, Proven: true,
			Cost: 4, WallMS: wall}
	}
	base := &BenchDoc{
		Cases: []BenchCase{mk(100)},
		Calibration: &BenchCalibration{ScoreNs: 1, ProbesNs: map[string]float64{
			"int_spin": 1.0, "ptr_chase": 10.0, "solver": 1e6}},
	}
	cur := &BenchDoc{
		Cases: []BenchCase{mk(150)},
		Calibration: &BenchCalibration{ScoreNs: 1.5, ProbesNs: map[string]float64{
			"int_spin": 1.5, "ptr_chase": 15.0, "solver": 5e6}}, // solver 5x: ignored
	}
	cmp := CompareBench(base, cur)
	if !cmp.HasCalib {
		t.Fatal("HasCalib = false with calibration on both sides")
	}
	if math.Abs(cmp.CalibRatio-1.5) > 1e-9 {
		t.Fatalf("CalibRatio = %g, want 1.5 (solver probe excluded)", cmp.CalibRatio)
	}
	if math.Abs(cmp.WallRatio-1.5) > 1e-9 {
		t.Fatalf("WallRatio = %g, want 1.5", cmp.WallRatio)
	}
	if math.Abs(cmp.CalibratedWallRatio-1.0) > 1e-9 {
		t.Fatalf("CalibratedWallRatio = %g, want 1.0 (machine fully explains it)",
			cmp.CalibratedWallRatio)
	}

	// One side missing a calibration block: no machine correction.
	cmp2 := CompareBench(&BenchDoc{Cases: base.Cases}, cur)
	if cmp2.HasCalib || cmp2.CalibRatio != 1 || cmp2.CalibratedWallRatio != cmp2.WallRatio {
		t.Fatalf("missing baseline calib: HasCalib=%v CalibRatio=%g", cmp2.HasCalib, cmp2.CalibRatio)
	}

	// No shared machine probes (solver only): no machine correction.
	solverOnly := &BenchCalibration{ScoreNs: 1, ProbesNs: map[string]float64{"solver": 1e6}}
	if r, ok := calibRatio(solverOnly, solverOnly); ok || r != 1 {
		t.Fatalf("solver-only blocks: ratio=%g ok=%v, want 1,false", r, ok)
	}
}

// TestCompareBenchProfileDeltas: per-function self-sample shares diff over
// matched cases, ranked by absolute share movement; one side unprofiled
// yields no deltas.
func TestCompareBenchProfileDeltas(t *testing.T) {
	mk := func(funcs []BenchFuncSample) BenchCase {
		return BenchCase{Name: "a", Solver: "bnb", Feasible: true, Proven: true,
			Cost: 2, WallMS: 10,
			Profile: &BenchProfile{Hz: 100, Samples: 100, Funcs: funcs}}
	}
	base := &BenchDoc{Cases: []BenchCase{mk([]BenchFuncSample{
		{Fn: "lp.ftran", Self: 80, Cum: 80},
		{Fn: "core.steiner", Self: 20, Cum: 20},
	})}}
	cur := &BenchDoc{Cases: []BenchCase{mk([]BenchFuncSample{
		{Fn: "lp.ftran", Self: 30, Cum: 30},
		{Fn: "core.steiner", Self: 20, Cum: 20},
		{Fn: "core.drc", Self: 50, Cum: 50},
	})}}
	cmp := CompareBench(base, cur)
	if len(cmp.ProfileDeltas) != 3 {
		t.Fatalf("ProfileDeltas = %+v, want 3 functions", cmp.ProfileDeltas)
	}
	// lp.ftran moved 0.80 -> 0.30 (|Δ| 0.50), core.drc 0 -> 0.50, steiner 0.20 -> 0.20.
	if cmp.ProfileDeltas[2].Fn != "core.steiner" {
		t.Fatalf("flattest function should rank last: %+v", cmp.ProfileDeltas)
	}
	for _, d := range cmp.ProfileDeltas {
		if d.Fn == "lp.ftran" && (math.Abs(d.BaseFrac-0.8) > 1e-9 || math.Abs(d.CurFrac-0.3) > 1e-9) {
			t.Errorf("lp.ftran shares = %+v, want 0.8 -> 0.3", d)
		}
	}

	// Baseline without profiles: no deltas.
	noProf := &BenchDoc{Cases: []BenchCase{{Name: "a", Solver: "bnb",
		Feasible: true, Proven: true, Cost: 2, WallMS: 10}}}
	if cmp2 := CompareBench(noProf, cur); len(cmp2.ProfileDeltas) != 0 {
		t.Fatalf("unprofiled baseline produced deltas: %+v", cmp2.ProfileDeltas)
	}
}

// TestGateOutcomes walks the two-tier policy through all five outcomes.
func TestGateOutcomes(t *testing.T) {
	check := func(t *testing.T, c BenchComparison, maxWork, maxWall float64, want GateOutcome) {
		t.Helper()
		got, verdict := c.Gate(maxWork, maxWall)
		if got != want {
			t.Fatalf("Gate = %v (%s), want %v", got, verdict, want)
		}
		if verdict == "" {
			t.Fatal("empty verdict")
		}
	}
	t.Run("ok", func(t *testing.T) {
		check(t, BenchComparison{Matched: 5, WorkCases: 5, WorkMax: 1.01,
			WallRatio: 1.1, CalibRatio: 1, CalibratedWallRatio: 1.1}, 1.02, 1.2, GateOK)
	})
	t.Run("answer mismatch wins over everything", func(t *testing.T) {
		check(t, BenchComparison{Mismatches: []string{"a/bnb: cost 3->4"},
			WorkMax: 99, WallRatio: 99}, 1.02, 1.2, GateAnswerMismatch)
	})
	t.Run("work regression", func(t *testing.T) {
		check(t, BenchComparison{Matched: 5, WorkCases: 5, WorkMax: 1.05,
			WallRatio: 1.0, CalibRatio: 1, CalibratedWallRatio: 1.0}, 1.02, 1.2, GateWorkRegression)
	})
	t.Run("wall regression survives calibration", func(t *testing.T) {
		check(t, BenchComparison{Matched: 5, WorkCases: 5, WorkMax: 1.0, HasCalib: true,
			WallRatio: 1.5, CalibRatio: 1.05, CalibratedWallRatio: 1.5 / 1.05},
			1.02, 1.2, GateWallRegression)
	})
	t.Run("calibration explains the wall movement", func(t *testing.T) {
		check(t, BenchComparison{Matched: 5, WorkCases: 5, WorkMax: 1.0, HasCalib: true,
			WallRatio: 1.4, CalibRatio: 1.38, CalibratedWallRatio: 1.4 / 1.38},
			1.02, 1.2, GateWallDrift)
	})
	t.Run("no calibration, flat work, wall moved", func(t *testing.T) {
		check(t, BenchComparison{Matched: 5, WorkCases: 5, WorkMax: 1.0,
			WallRatio: 1.4, CalibRatio: 1, CalibratedWallRatio: 1.4},
			1.02, 1.2, GateWallDrift)
	})
	t.Run("outcome names", func(t *testing.T) {
		for g, want := range map[GateOutcome]string{
			GateOK:             "ok",
			GateAnswerMismatch: "answer-mismatch",
			GateWorkRegression: "work-regression",
			GateWallRegression: "wall-regression",
			GateWallDrift:      "wall-drift-suspected",
		} {
			if g.String() != want {
				t.Errorf("%d.String() = %q, want %q", int(g), g.String(), want)
			}
		}
	})
}

// TestCompareBenchZeroWall: a zero wall_ms (legal for sub-ms solves on a
// coarse clock) clamps to the 1ms floor instead of producing Inf/NaN ratios.
func TestCompareBenchZeroWall(t *testing.T) {
	base := &BenchDoc{Cases: []BenchCase{{Name: "z", Solver: "bnb",
		Feasible: true, Proven: true, Cost: 1, WallMS: 0}}}
	cur := &BenchDoc{Cases: []BenchCase{{Name: "z", Solver: "bnb",
		Feasible: true, Proven: true, Cost: 1, WallMS: 40}}}
	cmp := CompareBench(base, cur)
	if cmp.Matched != 1 || math.IsInf(cmp.WallRatio, 0) || math.IsNaN(cmp.WallRatio) {
		t.Fatalf("zero-wall baseline: Matched=%d WallRatio=%g", cmp.Matched, cmp.WallRatio)
	}
	if math.Abs(cmp.WallRatio-40) > 1e-9 {
		t.Fatalf("WallRatio = %g, want 40 (floor the zero base at 1ms)", cmp.WallRatio)
	}
}
