package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"optrouter/internal/core"
)

func TestConvergenceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewConvergenceWriter(&buf)
	recs := []ConvergenceRecord{
		{Clip: "clip0", Rule: "RULE7", Solver: "bnb", Termination: "optimal",
			Feasible: true, Cost: 65, Nodes: 3941, MaxDepth: 13, WallMS: 851.2,
			Trace: []core.BoundSample{
				{ElapsedMS: 0.5, Nodes: 1, Bound: 51, Incumbent: -1},
				{ElapsedMS: 851, Nodes: 3941, Bound: 65, Incumbent: 65},
			}},
		{Clip: "clip1", Rule: "RULE8", Solver: "ilp", Termination: "infeasible"},
	}
	var wg sync.WaitGroup
	for _, r := range recs {
		wg.Add(1)
		go func(r ConvergenceRecord) {
			defer wg.Done()
			if err := w.Write(r); err != nil {
				t.Errorf("write: %v", err)
			}
		}(r)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var back ConvergenceRecord
		if err := json.Unmarshal(sc.Bytes(), &back); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", n, err)
		}
		if back.Clip == "clip0" && len(back.Trace) != 2 {
			t.Errorf("clip0 trace lost: %+v", back)
		}
		n++
	}
	if n != len(recs) {
		t.Errorf("wrote %d lines, want %d", n, len(recs))
	}

	var nilW *ConvergenceWriter
	if err := nilW.Write(recs[0]); err != nil {
		t.Errorf("nil writer Write: %v", err)
	}
	if err := nilW.Flush(); err != nil {
		t.Errorf("nil writer Flush: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestConvergenceWriterStickyError(t *testing.T) {
	w := NewConvergenceWriter(failWriter{})
	// The bufio layer absorbs small writes; force the error out via Flush.
	if err := w.Write(ConvergenceRecord{Clip: "x"}); err != nil {
		t.Logf("write surfaced error early: %v", err)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("flush to failing sink returned nil")
	}
	if err := w.Write(ConvergenceRecord{Clip: "y"}); err == nil {
		t.Error("error did not stick on later writes")
	}
}
