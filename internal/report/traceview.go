package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"optrouter/internal/obs"
)

// This file is the analysis layer behind cmd/traceview: it turns a
// reconstructed span tree (obs.BuildTree over a -trace JSONL file) into
// per-solve summaries — phase attribution, search-tree statistics from the
// flight recorder's node events, bound-gap curves — plus pprof-style hot-span
// aggregation and a per-node CSV export for offline analysis.

// SolveTrace is one solver invocation found in a trace: the solve span, its
// phase attribution (the phases_ms attr both engines stamp), and the decoded
// flight-recorder node events beneath it.
type SolveTrace struct {
	Span   *obs.TraceNode
	Solver string // "bnb", "ilp" or "portfolio", from the span name
	Clip   string // clip attr ("" when the producer predates it)

	// Parallel-search attribution (zero/empty on serial solves): Par is the
	// in-solve worker count, Steals the scheduler's work-steal count, and
	// IncumbentExchanges the incumbents the solve pushed through a portfolio
	// exchange. Winner names the engine a portfolio race returned.
	Par                int
	Steals             int64
	IncumbentExchanges int64
	Winner             string

	// LP engine telemetry from ilp solves (zero on bnb solves or traces
	// predating the pricing layer): total simplex iterations, candidate-list
	// pricing hits, devex/DSE reference-framework resets, dual bound flips
	// from the bound-flipping ratio test, and the structural presolve's
	// row/column reductions.
	LPIters         int64
	LPCandidateHits int64
	LPRefResets     int64
	LPDualFlips     int64
	PresolveRows    int
	PresolveCols    int

	// Refactorization-trigger split across the solve's node LPs (zero on
	// traces predating the Forrest–Tomlin update layer): update-count budget,
	// update-storage fill budget, tiny mid-iteration pivot, rejected update.
	LPRefactorEtaLen         int64
	LPRefactorFill           int64
	LPRefactorPivotQuality   int64
	LPRefactorUpdateRejected int64

	// PhasesMS is the solver's own wall-time attribution in milliseconds.
	PhasesMS map[string]float64

	// Events are the recorded node events in trace order (empty when the
	// flight recorder was off).
	Events []NodeEvent

	// Flight accounting from the solve span: how many node events the solve
	// offered, how many reached the trace, how many sampling dropped. Zero
	// when recording was off.
	FlightSeen, FlightKept, FlightDropped int64
}

// NodeEvent is one decoded flight-recorder record: a per-node feature vector
// of the search. Numeric fields are zero when absent; HasBound/HasIncumbent
// distinguish "no bound yet" from a zero bound.
type NodeEvent struct {
	N                      int    // nodes explored when the event fired
	Depth                  int    // node depth
	Act                    string // action: branch / fathom / solved / prune / infeasible / ...
	LB                     float64
	Bound, Incumbent       float64
	HasBound, HasIncumbent bool
	LPIters, Pivots, Etas  int    // per-node LP effort (ilp solves)
	Warm                   bool   // node LP warm-started from the parent basis
	Kind                   string // violation kind branched on (bnb solves)
	Kids                   int    // children pushed
	Worker                 int    // evaluating worker (parallel bnb; -1 serial)
	Var                    int    // branching variable (ilp solves; -1 none)
	Frac                   float64
	StartUS                int64 // offset from the trace epoch
}

// solveSpanNames are the span names the two exact engines open per solve.
var solveSpanNames = map[string]string{
	"bnb.solve":       "bnb",
	"ilp.solve":       "ilp",
	"portfolio.solve": "portfolio",
}

// ExtractSolves finds every solver invocation in the tree, in start order.
func ExtractSolves(tree *obs.TraceTree) []SolveTrace {
	var out []SolveTrace
	tree.Walk(func(n *obs.TraceNode) {
		solver, ok := solveSpanNames[n.Name]
		if !ok || n.Event {
			return
		}
		st := SolveTrace{Span: n, Solver: solver, Clip: n.AttrString("clip"),
			Winner: n.AttrString("winner")}
		if v, ok := n.AttrFloat("par"); ok {
			st.Par = int(v)
		}
		if v, ok := n.AttrFloat("steals"); ok {
			st.Steals = int64(v)
		}
		if v, ok := n.AttrFloat("incumbent_exchanges"); ok {
			st.IncumbentExchanges = int64(v)
		} else if v, ok := n.AttrFloat("exchange_accepted"); ok {
			// portfolio.solve spans stamp the exchange's accepted-offer count
			// under this name.
			st.IncumbentExchanges = int64(v)
		}
		if v, ok := n.AttrFloat("lp_iters"); ok {
			st.LPIters = int64(v)
		}
		if v, ok := n.AttrFloat("lp_candidate_hits"); ok {
			st.LPCandidateHits = int64(v)
		}
		if v, ok := n.AttrFloat("lp_ref_resets"); ok {
			st.LPRefResets = int64(v)
		}
		if v, ok := n.AttrFloat("lp_dual_flips"); ok {
			st.LPDualFlips = int64(v)
		}
		if v, ok := n.AttrFloat("presolve_rows"); ok {
			st.PresolveRows = int(v)
		}
		if v, ok := n.AttrFloat("presolve_cols"); ok {
			st.PresolveCols = int(v)
		}
		if v, ok := n.AttrFloat("lp_refactor_eta_len"); ok {
			st.LPRefactorEtaLen = int64(v)
		}
		if v, ok := n.AttrFloat("lp_refactor_fill"); ok {
			st.LPRefactorFill = int64(v)
		}
		if v, ok := n.AttrFloat("lp_refactor_pivot_quality"); ok {
			st.LPRefactorPivotQuality = int64(v)
		}
		if v, ok := n.AttrFloat("lp_refactor_update_rejected"); ok {
			st.LPRefactorUpdateRejected = int64(v)
		}
		if ph, ok := n.Attr("phases_ms").(map[string]interface{}); ok {
			st.PhasesMS = make(map[string]float64, len(ph))
			for k, v := range ph {
				if f, ok := v.(float64); ok {
					st.PhasesMS[k] = f
				}
			}
		}
		if v, ok := n.AttrFloat("flight_seen"); ok {
			st.FlightSeen = int64(v)
		}
		if v, ok := n.AttrFloat("flight_kept"); ok {
			st.FlightKept = int64(v)
		}
		if v, ok := n.AttrFloat("flight_dropped"); ok {
			st.FlightDropped = int64(v)
		}
		for _, c := range n.Children {
			if c.Event && c.Name == "node" {
				st.Events = append(st.Events, decodeNodeEvent(c))
			}
		}
		out = append(out, st)
	})
	return out
}

func decodeNodeEvent(n *obs.TraceNode) NodeEvent {
	ev := NodeEvent{Act: n.AttrString("act"), Kind: n.AttrString("kind"),
		Var: -1, Worker: -1, StartUS: n.StartUS}
	geti := func(key string) int {
		v, _ := n.AttrFloat(key)
		return int(v)
	}
	ev.N = geti("n")
	ev.Depth = geti("d")
	ev.LB, _ = n.AttrFloat("lb")
	ev.Bound, ev.HasBound = n.AttrFloat("bnd")
	ev.Incumbent, ev.HasIncumbent = n.AttrFloat("inc")
	ev.LPIters = geti("lp_iters")
	ev.Pivots = geti("pivots")
	ev.Etas = geti("etas")
	if w, ok := n.Attr("warm").(bool); ok {
		ev.Warm = w
	}
	ev.Kids = geti("kids")
	if v, ok := n.AttrFloat("w"); ok {
		ev.Worker = int(v)
	}
	if v, ok := n.AttrFloat("var"); ok {
		ev.Var = int(v)
	}
	ev.Frac, _ = n.AttrFloat("frac")
	return ev
}

// WallMS returns the solve span's duration in milliseconds.
func (s *SolveTrace) WallMS() float64 { return float64(s.Span.DurUS) / 1000 }

// DepthHistogram counts recorded node events per depth (index = depth).
func (s *SolveTrace) DepthHistogram() []int {
	var h []int
	for _, ev := range s.Events {
		for len(h) <= ev.Depth {
			h = append(h, 0)
		}
		h[ev.Depth]++
	}
	return h
}

// ActCounts tallies node events by action — the fathom/branch mix of the
// recorded search ("why did nodes die").
func (s *SolveTrace) ActCounts() map[string]int {
	m := map[string]int{}
	for _, ev := range s.Events {
		m[ev.Act]++
	}
	return m
}

// WorkerCounts tallies recorded node events per evaluating worker — the
// load-balance view of a parallel solve. Empty when no event carries a
// worker id (serial engine, or flight recording off).
func (s *SolveTrace) WorkerCounts() map[int]int {
	m := map[int]int{}
	for _, ev := range s.Events {
		if ev.Worker >= 0 {
			m[ev.Worker]++
		}
	}
	return m
}

// GapPoint is one sample of the bound-gap-vs-nodes curve.
type GapPoint struct {
	N     int
	Bound float64
	Inc   float64
}

// GapCurve returns the bound/incumbent pairs of events that carry both, in
// node order — the convergence curve of the recorded search.
func (s *SolveTrace) GapCurve() []GapPoint {
	var out []GapPoint
	for _, ev := range s.Events {
		if ev.HasBound && ev.HasIncumbent {
			out = append(out, GapPoint{N: ev.N, Bound: ev.Bound, Inc: ev.Incumbent})
		}
	}
	return out
}

// SpanAgg aggregates all spans sharing a name: invocation count, summed
// duration, and summed self time (duration minus child spans) — the
// pprof-style flat/cum pair.
type SpanAgg struct {
	Name    string
	Count   int
	TotalUS int64 // cumulative: sum of span durations
	SelfUS  int64 // flat: sum of durations not covered by child spans
}

// TopSpans returns the hottest span names by self time, largest first,
// truncated to n (n <= 0 returns all). Events are skipped — they have no
// duration.
func TopSpans(tree *obs.TraceTree, n int) []SpanAgg {
	agg := map[string]*SpanAgg{}
	tree.Walk(func(node *obs.TraceNode) {
		if node.Event {
			return
		}
		a, ok := agg[node.Name]
		if !ok {
			a = &SpanAgg{Name: node.Name}
			agg[node.Name] = a
		}
		a.Count++
		a.TotalUS += node.DurUS
		a.SelfUS += node.SelfUS()
	})
	out := make([]SpanAgg, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfUS != out[j].SelfUS {
			return out[i].SelfUS > out[j].SelfUS
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// nodeCSVHeader is the column set of WriteNodeCSV, one row per recorded node
// event — a feature table for offline analysis (pandas, gnuplot).
var nodeCSVHeader = []string{
	"solve", "solver", "clip", "n", "depth", "act", "lb", "bound", "incumbent",
	"lp_iters", "pivots", "etas", "warm", "kind", "kids", "worker", "var", "frac", "start_us",
}

// WriteNodeCSV exports every recorded node event of every solve as CSV.
// The solve column numbers solves in trace order, so one file holding a
// whole sweep stays separable.
func WriteNodeCSV(w io.Writer, solves []SolveTrace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(nodeCSVHeader); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for si := range solves {
		s := &solves[si]
		for _, ev := range s.Events {
			bound, inc := "", ""
			if ev.HasBound {
				bound = ff(ev.Bound)
			}
			if ev.HasIncumbent {
				inc = ff(ev.Incumbent)
			}
			rec := []string{
				strconv.Itoa(si), s.Solver, s.Clip,
				strconv.Itoa(ev.N), strconv.Itoa(ev.Depth), ev.Act,
				ff(ev.LB), bound, inc,
				strconv.Itoa(ev.LPIters), strconv.Itoa(ev.Pivots), strconv.Itoa(ev.Etas),
				strconv.FormatBool(ev.Warm), ev.Kind, strconv.Itoa(ev.Kids),
				strconv.Itoa(ev.Worker),
				strconv.Itoa(ev.Var), ff(ev.Frac), strconv.FormatInt(ev.StartUS, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// HasLPStats reports whether the solve carries any LP pricing/presolve
// telemetry worth rendering (ilp solves from producers that stamp it).
func (s *SolveTrace) HasLPStats() bool {
	return s.LPCandidateHits > 0 || s.LPRefResets > 0 || s.LPDualFlips > 0 ||
		s.PresolveRows > 0 || s.PresolveCols > 0 || s.LPRefactorTotal() > 0
}

// LPRefactorTotal sums the solve's refactorization triggers.
func (s *SolveTrace) LPRefactorTotal() int64 {
	return s.LPRefactorEtaLen + s.LPRefactorFill +
		s.LPRefactorPivotQuality + s.LPRefactorUpdateRejected
}

// PricingLine renders the solve's LP pricing/presolve telemetry, with the
// candidate-hit ratio (pricing rounds served from the partial candidate list
// per simplex iteration) when the iteration count is on the span.
func (s *SolveTrace) PricingLine() string {
	hits := fmt.Sprintf("candidate_hits=%d", s.LPCandidateHits)
	if s.LPIters > 0 {
		hits += fmt.Sprintf(" (%.0f%% of %d iters)",
			100*float64(s.LPCandidateHits)/float64(s.LPIters), s.LPIters)
	}
	line := fmt.Sprintf("%s, ref_resets=%d, dual_flips=%d; presolve rows=%d cols=%d",
		hits, s.LPRefResets, s.LPDualFlips, s.PresolveRows, s.PresolveCols)
	if s.LPRefactorTotal() > 0 {
		line += fmt.Sprintf("; refactor eta_len=%d fill=%d pivot=%d rejected=%d",
			s.LPRefactorEtaLen, s.LPRefactorFill,
			s.LPRefactorPivotQuality, s.LPRefactorUpdateRejected)
	}
	return line
}

// PhaseTotal sums a solve's phase attribution in milliseconds.
func (s *SolveTrace) PhaseTotal() float64 {
	t := 0.0
	for _, ms := range s.PhasesMS {
		t += ms
	}
	return t
}

// PhaseLine renders a solve's phase breakdown as "phase 12.3ms, ..." sorted
// by time, largest first — the flame summary line of traceview.
func (s *SolveTrace) PhaseLine() string {
	type kv struct {
		k string
		v float64
	}
	pairs := make([]kv, 0, len(s.PhasesMS))
	for k, v := range s.PhasesMS {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].k < pairs[j].k
	})
	out := ""
	for _, p := range pairs {
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s %.1fms", p.k, p.v)
	}
	return out
}
