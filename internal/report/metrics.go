package report

import (
	"encoding/json"
	"io"
	"sort"

	"optrouter/internal/obs"
)

// Metrics is the machine-readable end-of-run metrics document emitted next
// to the result CSVs by cmd/beoleval -stats. Counters and gauges are
// flattened to the top level (so consumers address `nodes`, `lp_solves`,
// `wall_ms` directly); histograms keep their structured form.
type Metrics struct {
	flat  map[string]interface{}
	hists map[string]obs.HistogramStat
}

// NewMetrics flattens a snapshot into a Metrics document.
func NewMetrics(snap obs.Snapshot) Metrics {
	m := Metrics{flat: map[string]interface{}{}, hists: snap.Histograms}
	for k, v := range snap.Counters {
		m.flat[k] = v
	}
	for k, v := range snap.Gauges {
		m.flat[k] = v
	}
	return m
}

// Set adds (or overwrites) one top-level key, e.g. run labels.
func (m Metrics) Set(key string, val interface{}) { m.flat[key] = val }

// MarshalJSON renders the flattened document with histograms inlined under
// their metric name.
func (m Metrics) MarshalJSON() ([]byte, error) {
	out := make(map[string]interface{}, len(m.flat)+len(m.hists))
	for k, v := range m.flat {
		out[k] = v
	}
	for k, v := range m.hists {
		out[k] = v
	}
	return json.Marshal(out)
}

// Keys returns the sorted top-level key set (handy for schema tests).
func (m Metrics) Keys() []string {
	keys := make([]string, 0, len(m.flat)+len(m.hists))
	for k := range m.flat {
		keys = append(keys, k)
	}
	for k := range m.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteMetricsJSON writes a registry snapshot as the flattened, indented
// metrics JSON document.
func WriteMetricsJSON(w io.Writer, snap obs.Snapshot) error {
	return WriteMetrics(w, NewMetrics(snap))
}

// WriteMetrics writes a prepared Metrics document as indented JSON.
func WriteMetrics(w io.Writer, m Metrics) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
