package report

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"optrouter/internal/core"
)

// ConvergenceRecord is one solve's convergence trace as dumped to the
// -converge JSONL stream: identification, outcome and the raw bound/incumbent
// samples collected by the solver (core.SolveStats.BoundTrace).
type ConvergenceRecord struct {
	Clip        string             `json:"clip"`
	Rule        string             `json:"rule"`
	Solver      string             `json:"solver"` // "bnb" or "ilp"
	Termination string             `json:"termination"`
	Feasible    bool               `json:"feasible"`
	Cost        int                `json:"cost"`
	Nodes       int                `json:"nodes"`
	MaxDepth    int                `json:"max_depth"`
	WallMS      float64            `json:"wall_ms"`
	Trace       []core.BoundSample `json:"trace"`
}

// ConvergenceWriter appends one JSON record per line to a sink. It is safe
// for concurrent use (sweep workers finish solves in arbitrary order) and
// buffers writes; call Flush before closing the underlying file.
type ConvergenceWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewConvergenceWriter wraps w in a line-buffered JSONL writer.
func NewConvergenceWriter(w io.Writer) *ConvergenceWriter {
	return &ConvergenceWriter{w: bufio.NewWriter(w)}
}

// Write appends one record. The first write error sticks and is returned by
// this and every later call (and by Flush).
func (c *ConvergenceWriter) Write(rec ConvergenceRecord) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		c.err = err
		return err
	}
	data = append(data, '\n')
	if _, err := c.w.Write(data); err != nil {
		c.err = err
	}
	return c.err
}

// Flush drains the buffer to the sink. Nil-safe.
func (c *ConvergenceWriter) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.err = c.w.Flush()
	return c.err
}
