package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ProfileRecord is one bench case's sampling profile as dumped to the
// -sample JSONL stream: identification plus the top-N self/cumulative frame
// summary captured by obs.Sampler over the case's window.
type ProfileRecord struct {
	Clip    string            `json:"clip"`
	Rule    string            `json:"rule"`
	Solver  string            `json:"solver"` // "bnb", "ilp" or "portfolio"
	WallMS  float64           `json:"wall_ms"`
	Hz      int               `json:"hz"`
	Samples int64             `json:"samples"`
	Funcs   []BenchFuncSample `json:"funcs,omitempty"`
}

// ProfileWriter appends one JSON record per line to a sink. Safe for
// concurrent use (parallel bench workers finish in arbitrary order); call
// Flush before closing the underlying file. Nil-safe like the other report
// writers, so callers thread it through unconditionally.
type ProfileWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewProfileWriter wraps w in a line-buffered JSONL writer.
func NewProfileWriter(w io.Writer) *ProfileWriter {
	return &ProfileWriter{w: bufio.NewWriter(w)}
}

// Write appends one record. The first write error sticks and is returned by
// this and every later call (and by Flush).
func (p *ProfileWriter) Write(rec ProfileRecord) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		p.err = err
		return err
	}
	data = append(data, '\n')
	if _, err := p.w.Write(data); err != nil {
		p.err = err
	}
	return p.err
}

// Flush drains the buffer to the sink. Nil-safe.
func (p *ProfileWriter) Flush() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	p.err = p.w.Flush()
	return p.err
}

// ReadProfiles parses a profile JSONL stream, validating each record
// (cmd/traceview's -profile mode). Blank lines are skipped; any malformed
// line fails with its 1-based line number.
func ReadProfiles(data []byte) ([]ProfileRecord, error) {
	var out []ProfileRecord
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec ProfileRecord
		dec := jsonStrictDecoder(line)
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("profile line %d: %w", i+1, err)
		}
		if rec.Clip == "" || rec.Solver == "" {
			return nil, fmt.Errorf("profile line %d: missing clip/solver", i+1)
		}
		if rec.Hz <= 0 || rec.Samples < 0 {
			return nil, fmt.Errorf("profile line %d: malformed hz/samples (%d, %d)", i+1, rec.Hz, rec.Samples)
		}
		for _, f := range rec.Funcs {
			if f.Fn == "" || f.Self < 0 || f.Cum < f.Self {
				return nil, fmt.Errorf("profile line %d: malformed sample %+v", i+1, f)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}
