package report

import (
	"fmt"
	"math"
	"sort"
)

// BenchComparison is the result of CompareBench: per-case answer agreement
// and an aggregate wall-time ratio between two benchmark-trajectory
// documents. It is the data behind cmd/benchrun's -baseline/-max-regress
// regression gate.
type BenchComparison struct {
	// Matched counts cases present in both documents (keyed by name+solver)
	// with agreeing answers and no recorded error on either side; only these
	// contribute to WallRatio.
	Matched int
	// WallRatio is the geometric mean over matched cases of the per-case
	// wall-time ratio current/base, with each wall clamped to a 1ms floor so
	// scheduling jitter on trivial cases cannot dominate the mean. A value
	// below 1 means the current document is faster; 1 when nothing matched.
	WallRatio float64
	// Mismatches lists matched cases whose answers disagree (cost, feasible
	// or proven verdict). Any entry means the two documents do not describe
	// the same solver behaviour, and a wall-time comparison of that case
	// would be meaningless — mismatched cases are excluded from WallRatio.
	Mismatches []string
	// OnlyBase and OnlyCur list case keys present in one document only; they
	// are excluded from the ratio. OnlyBase entries are expected when the
	// short CI corpus is compared against a full-corpus trajectory point.
	OnlyBase, OnlyCur []string
}

// CompareBench matches the cases of two benchmark documents by name+solver
// and summarizes their agreement. Neither document is mutated.
func CompareBench(base, cur *BenchDoc) BenchComparison {
	key := func(c BenchCase) string { return c.Name + "/" + c.Solver }
	baseByKey := make(map[string]BenchCase, len(base.Cases))
	for _, c := range base.Cases {
		baseByKey[key(c)] = c
	}
	var cmp BenchComparison
	logSum := 0.0
	seen := make(map[string]bool, len(cur.Cases))
	for _, c := range cur.Cases {
		k := key(c)
		b, ok := baseByKey[k]
		if !ok {
			cmp.OnlyCur = append(cmp.OnlyCur, k)
			continue
		}
		seen[k] = true
		if c.Err != "" || b.Err != "" {
			continue
		}
		if c.Cost != b.Cost || c.Feasible != b.Feasible || c.Proven != b.Proven {
			cmp.Mismatches = append(cmp.Mismatches, fmt.Sprintf(
				"%s: cost %d->%d, feasible %v->%v, proven %v->%v",
				k, b.Cost, c.Cost, b.Feasible, c.Feasible, b.Proven, c.Proven))
			continue
		}
		cmp.Matched++
		logSum += math.Log(math.Max(c.WallMS, 1) / math.Max(b.WallMS, 1))
	}
	for k := range baseByKey {
		if !seen[k] {
			cmp.OnlyBase = append(cmp.OnlyBase, k)
		}
	}
	sort.Strings(cmp.OnlyBase)
	cmp.WallRatio = 1
	if cmp.Matched > 0 {
		cmp.WallRatio = math.Exp(logSum / float64(cmp.Matched))
	}
	return cmp
}
