package report

import (
	"fmt"
	"math"
	"sort"
)

// BenchComparison is the result of CompareBench: per-case answer agreement
// and an aggregate wall-time ratio between two benchmark-trajectory
// documents. It is the data behind cmd/benchrun's -baseline/-max-regress
// regression gate.
type BenchComparison struct {
	// Matched counts cases present in both documents (keyed by name+solver)
	// with agreeing answers and no recorded error on either side; only these
	// contribute to WallRatio.
	Matched int
	// WallRatio is the geometric mean over matched cases of the per-case
	// wall-time ratio current/base, with each wall clamped to a 1ms floor so
	// scheduling jitter on trivial cases cannot dominate the mean. A value
	// below 1 means the current document is faster; 1 when nothing matched.
	WallRatio float64
	// Mismatches lists matched cases whose answers disagree (cost, feasible
	// or proven verdict). Any entry means the two documents do not describe
	// the same solver behaviour, and a wall-time comparison of that case
	// would be meaningless — mismatched cases are excluded from WallRatio.
	Mismatches []string
	// OnlyBase and OnlyCur list case keys present in one document only; they
	// are excluded from the ratio. OnlyBase entries are expected when the
	// short CI corpus is compared against a full-corpus trajectory point.
	OnlyBase, OnlyCur []string
	// PhaseDeltas attributes the wall-time movement to solver phases: per
	// phase, the summed milliseconds over matched cases in each document.
	// Simplex-internal phases appear with an "lp." prefix so they do not
	// collide with the MILP engine's phase names. Sorted by the absolute
	// millisecond movement, largest first — the head of the list names the
	// phase a regression lives in.
	PhaseDeltas []PhaseDelta

	// Work-based gating (the primary regression signal from schema v5 on).
	// Work counters are deterministic, so unlike wall time they carry no
	// jitter: the gate compares the WORST single case (WorkMax) against a
	// tight threshold instead of a geomean that would dilute a one-case
	// regression across the corpus. Portfolio cases are excluded (their
	// race is scheduling-dependent); pre-v5 baselines contribute a legacy
	// vector derived from the nodes/lp_solves/simplex_iters fields.
	WorkCases   int     // matched cases contributing work ratios
	WorkRatio   float64 // geomean of per-case work ratios (1 when no work cases)
	WorkMax     float64 // worst per-case work ratio — the gate signal
	WorkMaxCase string  // case key attaining WorkMax
	// WorkDeltas aggregates each counter over matched work cases, sorted by
	// ratio distance from 1, largest first.
	WorkDeltas []WorkDelta

	// Machine calibration (schema v5). HasCalib is true when both documents
	// carry calibration blocks with at least one shared machine probe;
	// CalibRatio is then the probe-wise geomean cur/base (the solver probe
	// is excluded — it moves with the code, not the machine) and
	// CalibratedWallRatio is WallRatio with the machine movement divided
	// out. Without calibration on both sides both ratios are 1 and the
	// calibrated wall equals the raw one.
	HasCalib            bool
	CalibRatio          float64
	CalibratedWallRatio float64

	// ProfileDeltas diffs the sampling profiles of the two documents: per
	// function, the share of self samples in each document, sorted by the
	// absolute share movement. Empty unless both documents carry profiles.
	ProfileDeltas []ProfileDelta
}

// WorkDelta is one deterministic counter's movement between two documents,
// summed over matched work cases.
type WorkDelta struct {
	Counter   string
	Base, Cur int64
	// Ratio is Cur/Base with both floored at 1, mirroring the per-case math.
	Ratio float64
}

// ProfileDelta is one function's sampling-profile movement: the share of
// self samples it accounts for in each document.
type ProfileDelta struct {
	Fn                string
	BaseFrac, CurFrac float64 // fraction of self samples, in [0, 1]
	BaseSelf, CurSelf int64   // raw self-sample counts
}

// PhaseDelta is one phase's wall-time movement between two documents.
type PhaseDelta struct {
	Phase  string
	BaseMS float64
	CurMS  float64
	// Ratio is CurMS/BaseMS with both floored at 1ms, mirroring WallRatio's
	// jitter clamp: phases measured in microseconds cannot produce dramatic
	// ratios.
	Ratio float64
}

// PhaseSummary renders the n largest phase movements as a compact
// "node_lp +41%, steiner -3%" string (empty when no phase data matched).
func (c BenchComparison) PhaseSummary(n int) string {
	s := ""
	for i, d := range c.PhaseDeltas {
		if i >= n {
			break
		}
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("%s %+.0f%%", d.Phase, (d.Ratio-1)*100)
	}
	return s
}

// CompareBench matches the cases of two benchmark documents by name+solver
// and summarizes their agreement. Neither document is mutated.
func CompareBench(base, cur *BenchDoc) BenchComparison {
	key := func(c BenchCase) string { return c.Name + "/" + c.Solver }
	baseByKey := make(map[string]BenchCase, len(base.Cases))
	for _, c := range base.Cases {
		baseByKey[key(c)] = c
	}
	var cmp BenchComparison
	logSum := 0.0
	workLogSum := 0.0
	baseWorkTot := map[string]int64{}
	curWorkTot := map[string]int64{}
	basePhase := map[string]float64{}
	curPhase := map[string]float64{}
	addPhases := func(into map[string]float64, c BenchCase) {
		for p, ms := range c.PhasesMS {
			into[p] += ms
		}
		for p, ms := range c.LPPhasesMS {
			into["lp."+p] += ms
		}
	}
	baseProf := map[string]int64{}
	curProf := map[string]int64{}
	addProfile := func(into map[string]int64, c BenchCase) {
		if c.Profile == nil {
			return
		}
		for _, f := range c.Profile.Funcs {
			into[f.Fn] += f.Self
		}
	}
	seen := make(map[string]bool, len(cur.Cases))
	for _, c := range cur.Cases {
		k := key(c)
		b, ok := baseByKey[k]
		if !ok {
			cmp.OnlyCur = append(cmp.OnlyCur, k)
			continue
		}
		seen[k] = true
		if c.Err != "" || b.Err != "" {
			continue
		}
		if c.Cost != b.Cost || c.Feasible != b.Feasible || c.Proven != b.Proven {
			cmp.Mismatches = append(cmp.Mismatches, fmt.Sprintf(
				"%s: cost %d->%d, feasible %v->%v, proven %v->%v",
				k, b.Cost, c.Cost, b.Feasible, c.Feasible, b.Proven, c.Proven))
			continue
		}
		cmp.Matched++
		logSum += math.Log(math.Max(c.WallMS, 1) / math.Max(b.WallMS, 1))
		addPhases(basePhase, b)
		addPhases(curPhase, c)
		addProfile(baseProf, b)
		addProfile(curProf, c)
		if r, keys, ok := caseWorkRatio(b, c); ok {
			cmp.WorkCases++
			workLogSum += math.Log(r)
			if r > cmp.WorkMax {
				cmp.WorkMax, cmp.WorkMaxCase = r, k
			}
			bw, _ := workVector(b)
			cw, _ := workVector(c)
			for _, cnt := range keys {
				baseWorkTot[cnt] += bw[cnt]
				curWorkTot[cnt] += cw[cnt]
			}
		}
	}
	for p := range curPhase {
		if _, ok := basePhase[p]; !ok {
			basePhase[p] = 0
		}
	}
	for p, bms := range basePhase {
		cms := curPhase[p]
		cmp.PhaseDeltas = append(cmp.PhaseDeltas, PhaseDelta{
			Phase: p, BaseMS: bms, CurMS: cms,
			Ratio: math.Max(cms, 1) / math.Max(bms, 1),
		})
	}
	sort.Slice(cmp.PhaseDeltas, func(i, j int) bool {
		di := math.Abs(cmp.PhaseDeltas[i].CurMS - cmp.PhaseDeltas[i].BaseMS)
		dj := math.Abs(cmp.PhaseDeltas[j].CurMS - cmp.PhaseDeltas[j].BaseMS)
		if di != dj {
			return di > dj
		}
		return cmp.PhaseDeltas[i].Phase < cmp.PhaseDeltas[j].Phase
	})
	for k := range baseByKey {
		if !seen[k] {
			cmp.OnlyBase = append(cmp.OnlyBase, k)
		}
	}
	sort.Strings(cmp.OnlyBase)
	cmp.WallRatio = 1
	if cmp.Matched > 0 {
		cmp.WallRatio = math.Exp(logSum / float64(cmp.Matched))
	}
	cmp.WorkRatio = 1
	if cmp.WorkCases > 0 {
		cmp.WorkRatio = math.Exp(workLogSum / float64(cmp.WorkCases))
	}
	for cnt, bv := range baseWorkTot {
		cmp.WorkDeltas = append(cmp.WorkDeltas, WorkDelta{
			Counter: cnt, Base: bv, Cur: curWorkTot[cnt],
			Ratio: float64(maxInt64(curWorkTot[cnt], 1)) / float64(maxInt64(bv, 1)),
		})
	}
	sort.Slice(cmp.WorkDeltas, func(i, j int) bool {
		di := math.Abs(math.Log(cmp.WorkDeltas[i].Ratio))
		dj := math.Abs(math.Log(cmp.WorkDeltas[j].Ratio))
		if di != dj {
			return di > dj
		}
		return cmp.WorkDeltas[i].Counter < cmp.WorkDeltas[j].Counter
	})
	cmp.CalibRatio, cmp.HasCalib = calibRatio(base.Calibration, cur.Calibration)
	cmp.CalibratedWallRatio = cmp.WallRatio / cmp.CalibRatio
	cmp.ProfileDeltas = profileDeltas(baseProf, curProf)
	return cmp
}

// workVector returns a case's deterministic work counters and whether they
// were explicit (schema v5 Work map) or legacy-derived from the per-case
// nodes/lp_solves/simplex_iters fields of pre-v5 documents.
func workVector(c BenchCase) (map[string]int64, bool) {
	if len(c.Work) > 0 {
		return c.Work, true
	}
	return map[string]int64{
		"nodes":         int64(c.Nodes),
		"lp_solves":     int64(c.LPSolves),
		"simplex_iters": int64(c.SimplexIters),
	}, false
}

// caseWorkRatio is the per-case work ratio: the geomean over comparable
// counter keys of cur/base, each side floored at 1 so a counter a solver
// legitimately reports as zero cannot blow up the ratio. When both sides
// carry explicit vectors the keys are the union (a counter vanishing or
// appearing is itself signal); when either side is legacy-derived only the
// shared keys are comparable. Portfolio cases return ok=false — their race
// outcome is scheduling-dependent, so no counter is pinned.
func caseWorkRatio(b, c BenchCase) (ratio float64, keys []string, ok bool) {
	if b.Solver == "portfolio" || c.Solver == "portfolio" {
		return 0, nil, false
	}
	bw, bExplicit := workVector(b)
	cw, cExplicit := workVector(c)
	if bExplicit && cExplicit {
		for k := range bw {
			keys = append(keys, k)
		}
		for k := range cw {
			if _, dup := bw[k]; !dup {
				keys = append(keys, k)
			}
		}
	} else {
		for k := range bw {
			if _, shared := cw[k]; shared {
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		return 0, nil, false
	}
	sort.Strings(keys)
	logSum := 0.0
	for _, k := range keys {
		logSum += math.Log(float64(maxInt64(cw[k], 1)) / float64(maxInt64(bw[k], 1)))
	}
	return math.Exp(logSum / float64(len(keys))), keys, true
}

// calibSolverProbe is the calibration probe excluded from the machine ratio:
// it exercises the solver itself, so code speedups move it.
const calibSolverProbe = "solver"

// calibRatio is the machine ratio between two calibration blocks: the
// geomean over shared machine probes of cur/base ns/op. Returns (1, false)
// unless both blocks exist and share at least one machine probe.
func calibRatio(base, cur *BenchCalibration) (float64, bool) {
	if base == nil || cur == nil {
		return 1, false
	}
	logSum, n := 0.0, 0
	for name, bns := range base.ProbesNs {
		if name == calibSolverProbe || bns <= 0 {
			continue
		}
		cns, ok := cur.ProbesNs[name]
		if !ok || cns <= 0 {
			continue
		}
		logSum += math.Log(cns / bns)
		n++
	}
	if n == 0 {
		return 1, false
	}
	return math.Exp(logSum / float64(n)), true
}

// profileDeltas diffs two aggregated self-sample maps into per-function
// share movements, largest first. Empty unless both sides sampled.
func profileDeltas(base, cur map[string]int64) []ProfileDelta {
	var baseTot, curTot int64
	for _, v := range base {
		baseTot += v
	}
	for _, v := range cur {
		curTot += v
	}
	if baseTot == 0 || curTot == 0 {
		return nil
	}
	fns := map[string]bool{}
	for fn := range base {
		fns[fn] = true
	}
	for fn := range cur {
		fns[fn] = true
	}
	var out []ProfileDelta
	for fn := range fns {
		out = append(out, ProfileDelta{
			Fn:       fn,
			BaseSelf: base[fn], CurSelf: cur[fn],
			BaseFrac: float64(base[fn]) / float64(baseTot),
			CurFrac:  float64(cur[fn]) / float64(curTot),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		di := math.Abs(out[i].CurFrac - out[i].BaseFrac)
		dj := math.Abs(out[j].CurFrac - out[j].BaseFrac)
		if di != dj {
			return di > dj
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// GateOutcome classifies a baseline comparison for CI: each outcome maps to
// a distinct benchrun exit code so ci.sh can fail answer and work
// regressions while only warning when the evidence points at the machine.
type GateOutcome int

const (
	// GateOK: answers agree, work flat, wall within bounds.
	GateOK GateOutcome = iota
	// GateAnswerMismatch: a matched case changed cost/feasible/proven — the
	// solvers disagree and no performance comparison is meaningful.
	GateAnswerMismatch
	// GateWorkRegression: a deterministic work counter regressed past the
	// tight threshold. Always a code change; always a hard failure.
	GateWorkRegression
	// GateWallRegression: wall time regressed past the loose threshold even
	// after dividing out the measured machine drift — a genuine slowdown
	// that the work counters did not capture (e.g. constant-factor).
	GateWallRegression
	// GateWallDrift: wall time regressed but the evidence points at the
	// machine — either calibration explains the movement, or the baseline
	// has no calibration and every deterministic counter is flat. CI warns
	// instead of failing (the BENCH_2→BENCH_3 false alarm, automated).
	GateWallDrift
)

// String names the outcome for logs and CI output.
func (g GateOutcome) String() string {
	switch g {
	case GateOK:
		return "ok"
	case GateAnswerMismatch:
		return "answer-mismatch"
	case GateWorkRegression:
		return "work-regression"
	case GateWallRegression:
		return "wall-regression"
	case GateWallDrift:
		return "wall-drift-suspected"
	}
	return fmt.Sprintf("GateOutcome(%d)", int(g))
}

// Gate applies the two-tier regression policy: the deterministic work ratio
// is the primary signal (tight maxWork, per-case worst), wall time the
// secondary (loose maxWall, geomean, machine-corrected when calibration is
// available). The returned verdict is one human-readable sentence of
// evidence for the outcome.
func (c BenchComparison) Gate(maxWork, maxWall float64) (GateOutcome, string) {
	if len(c.Mismatches) > 0 {
		return GateAnswerMismatch, fmt.Sprintf("%d answer mismatch(es): %s",
			len(c.Mismatches), c.Mismatches[0])
	}
	if c.WorkCases > 0 && c.WorkMax > maxWork {
		return GateWorkRegression, fmt.Sprintf(
			"work regression: %s work ratio %.3f > %.3f (corpus geomean %.3f)",
			c.WorkMaxCase, c.WorkMax, maxWork, c.WorkRatio)
	}
	if c.HasCalib {
		if c.CalibratedWallRatio > maxWall {
			return GateWallRegression, fmt.Sprintf(
				"wall regression: calibrated wall %.3f > %.3f (raw %.3f, calib %.3f) — machine drift divided out, the code is slower",
				c.CalibratedWallRatio, maxWall, c.WallRatio, c.CalibRatio)
		}
		if c.WallRatio > maxWall {
			return GateWallDrift, fmt.Sprintf(
				"calib %.2f, calibrated wall %.2f → machine drift suspected (raw wall %.2f exceeds %.2f but the machine moved with it)",
				c.CalibRatio, c.CalibratedWallRatio, c.WallRatio, maxWall)
		}
	} else if c.WallRatio > maxWall {
		// No calibration on both sides: the work gate above already proved
		// every deterministic counter flat, so a wall movement alone points
		// at the machine, not the code.
		return GateWallDrift, fmt.Sprintf(
			"wall %.2f > %.2f with work max %.3f (flat) and no baseline calibration → machine drift suspected",
			c.WallRatio, maxWall, c.WorkMax)
	}
	return GateOK, fmt.Sprintf("ok: work max %.3f (%d cases), wall %.3f (calibrated %.3f, calib %.3f)",
		c.WorkMax, c.WorkCases, c.WallRatio, c.CalibratedWallRatio, c.CalibRatio)
}
