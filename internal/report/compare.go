package report

import (
	"fmt"
	"math"
	"sort"
)

// BenchComparison is the result of CompareBench: per-case answer agreement
// and an aggregate wall-time ratio between two benchmark-trajectory
// documents. It is the data behind cmd/benchrun's -baseline/-max-regress
// regression gate.
type BenchComparison struct {
	// Matched counts cases present in both documents (keyed by name+solver)
	// with agreeing answers and no recorded error on either side; only these
	// contribute to WallRatio.
	Matched int
	// WallRatio is the geometric mean over matched cases of the per-case
	// wall-time ratio current/base, with each wall clamped to a 1ms floor so
	// scheduling jitter on trivial cases cannot dominate the mean. A value
	// below 1 means the current document is faster; 1 when nothing matched.
	WallRatio float64
	// Mismatches lists matched cases whose answers disagree (cost, feasible
	// or proven verdict). Any entry means the two documents do not describe
	// the same solver behaviour, and a wall-time comparison of that case
	// would be meaningless — mismatched cases are excluded from WallRatio.
	Mismatches []string
	// OnlyBase and OnlyCur list case keys present in one document only; they
	// are excluded from the ratio. OnlyBase entries are expected when the
	// short CI corpus is compared against a full-corpus trajectory point.
	OnlyBase, OnlyCur []string
	// PhaseDeltas attributes the wall-time movement to solver phases: per
	// phase, the summed milliseconds over matched cases in each document.
	// Simplex-internal phases appear with an "lp." prefix so they do not
	// collide with the MILP engine's phase names. Sorted by the absolute
	// millisecond movement, largest first — the head of the list names the
	// phase a regression lives in.
	PhaseDeltas []PhaseDelta
}

// PhaseDelta is one phase's wall-time movement between two documents.
type PhaseDelta struct {
	Phase  string
	BaseMS float64
	CurMS  float64
	// Ratio is CurMS/BaseMS with both floored at 1ms, mirroring WallRatio's
	// jitter clamp: phases measured in microseconds cannot produce dramatic
	// ratios.
	Ratio float64
}

// PhaseSummary renders the n largest phase movements as a compact
// "node_lp +41%, steiner -3%" string (empty when no phase data matched).
func (c BenchComparison) PhaseSummary(n int) string {
	s := ""
	for i, d := range c.PhaseDeltas {
		if i >= n {
			break
		}
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("%s %+.0f%%", d.Phase, (d.Ratio-1)*100)
	}
	return s
}

// CompareBench matches the cases of two benchmark documents by name+solver
// and summarizes their agreement. Neither document is mutated.
func CompareBench(base, cur *BenchDoc) BenchComparison {
	key := func(c BenchCase) string { return c.Name + "/" + c.Solver }
	baseByKey := make(map[string]BenchCase, len(base.Cases))
	for _, c := range base.Cases {
		baseByKey[key(c)] = c
	}
	var cmp BenchComparison
	logSum := 0.0
	basePhase := map[string]float64{}
	curPhase := map[string]float64{}
	addPhases := func(into map[string]float64, c BenchCase) {
		for p, ms := range c.PhasesMS {
			into[p] += ms
		}
		for p, ms := range c.LPPhasesMS {
			into["lp."+p] += ms
		}
	}
	seen := make(map[string]bool, len(cur.Cases))
	for _, c := range cur.Cases {
		k := key(c)
		b, ok := baseByKey[k]
		if !ok {
			cmp.OnlyCur = append(cmp.OnlyCur, k)
			continue
		}
		seen[k] = true
		if c.Err != "" || b.Err != "" {
			continue
		}
		if c.Cost != b.Cost || c.Feasible != b.Feasible || c.Proven != b.Proven {
			cmp.Mismatches = append(cmp.Mismatches, fmt.Sprintf(
				"%s: cost %d->%d, feasible %v->%v, proven %v->%v",
				k, b.Cost, c.Cost, b.Feasible, c.Feasible, b.Proven, c.Proven))
			continue
		}
		cmp.Matched++
		logSum += math.Log(math.Max(c.WallMS, 1) / math.Max(b.WallMS, 1))
		addPhases(basePhase, b)
		addPhases(curPhase, c)
	}
	for p := range curPhase {
		if _, ok := basePhase[p]; !ok {
			basePhase[p] = 0
		}
	}
	for p, bms := range basePhase {
		cms := curPhase[p]
		cmp.PhaseDeltas = append(cmp.PhaseDeltas, PhaseDelta{
			Phase: p, BaseMS: bms, CurMS: cms,
			Ratio: math.Max(cms, 1) / math.Max(bms, 1),
		})
	}
	sort.Slice(cmp.PhaseDeltas, func(i, j int) bool {
		di := math.Abs(cmp.PhaseDeltas[i].CurMS - cmp.PhaseDeltas[i].BaseMS)
		dj := math.Abs(cmp.PhaseDeltas[j].CurMS - cmp.PhaseDeltas[j].BaseMS)
		if di != dj {
			return di > dj
		}
		return cmp.PhaseDeltas[i].Phase < cmp.PhaseDeltas[j].Phase
	})
	for k := range baseByKey {
		if !seen[k] {
			cmp.OnlyBase = append(cmp.OnlyBase, k)
		}
	}
	sort.Strings(cmp.OnlyBase)
	cmp.WallRatio = 1
	if cmp.Matched > 0 {
		cmp.WallRatio = math.Exp(logSum / float64(cmp.Matched))
	}
	return cmp
}
