package report

import (
	"strings"
	"testing"
)

func validDoc() *BenchDoc {
	d := &BenchDoc{
		SchemaVersion: BenchSchemaVersion,
		Corpus:        "short",
		GoVersion:     "go1.24.0",
		Workers:       4,
		Runtime: &BenchRuntime{
			GOMAXPROCS: 4, TotalAllocMB: 812.5, GCPauseMS: 3.2, NumGC: 41,
			PeakHeapMB: 96.4,
		},
		Calibration: &BenchCalibration{
			ProbesNs: map[string]float64{
				"int_spin": 1.1, "ptr_chase": 48.2, "memcpy": 0.031, "solver": 4.1e6,
			},
			ScoreNs: 1.18, WallMS: 220,
		},
		Cases: []BenchCase{
			{
				Name: "6x7x4-s3-RULE8-bnb", Rule: "RULE8", Solver: "bnb",
				Feasible: true, Proven: true, Cost: 51,
				WallMS: 200.5, Nodes: 404, MaxDepth: 9,
				PhasesMS: map[string]float64{"search": 120, "steiner": 80.5},
				Work: map[string]int64{
					"nodes": 404, "steiner_cells": 88412, "drc_checks": 1200,
				},
			},
			{
				Name: "4x5x3-s10-RULE1-ilp", Rule: "RULE1", Solver: "ilp",
				Feasible: true, Proven: true, Cost: 41,
				WallMS: 300, Nodes: 77, MaxDepth: 17,
				LPSolves: 77, SimplexIters: 12968,
				Rows: 310, Cols: 444, NNZ: 1530,
				PhasesMS:   map[string]float64{"node_lp": 290, "root_lp": 10},
				LPPhasesMS: map[string]float64{"pricing": 120, "pivot": 92},
				Work: map[string]int64{
					"nodes": 77, "simplex_iters": 12968, "ftran_nnz": 420311, "btran_nnz": 380122,
				},
			},
		},
	}
	d.Finalize()
	return d
}

func TestBenchRoundTrip(t *testing.T) {
	doc := validDoc()
	data, err := MarshalBench(doc)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("document must be newline-terminated")
	}
	back, err := ValidateBench(data)
	if err != nil {
		t.Fatalf("round-trip rejected: %v", err)
	}
	if back.Totals.Nodes != 481 || back.Totals.SimplexIters != 12968 || back.Totals.Cases != 2 {
		t.Errorf("totals = %+v", back.Totals)
	}
	if back.Totals.PhasesMS["search"] != 120 || back.Totals.PhasesMS["node_lp"] != 290 {
		t.Errorf("phase totals = %v", back.Totals.PhasesMS)
	}
}

func TestValidateBenchRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*BenchDoc)
		wantErr string
	}{
		{"wrong schema", func(d *BenchDoc) { d.SchemaVersion = 99 }, "schema_version"},
		{"bad corpus", func(d *BenchDoc) { d.Corpus = "medium" }, "corpus"},
		{"no go version", func(d *BenchDoc) { d.GoVersion = "" }, "go_version"},
		{"no cases", func(d *BenchDoc) { d.Cases = nil }, "no cases"},
		{"missing name", func(d *BenchDoc) { d.Cases[0].Name = "" }, "missing name"},
		{"missing rule", func(d *BenchDoc) { d.Cases[0].Rule = "" }, "missing rule"},
		{"bad solver", func(d *BenchDoc) { d.Cases[1].Solver = "gurobi" }, "solver"},
		{"duplicate case", func(d *BenchDoc) {
			d.Cases[1] = d.Cases[0]
		}, "duplicate"},
		{"negative wall", func(d *BenchDoc) { d.Cases[0].WallMS = -1 }, "wall_ms"},
		{"feasible without nodes", func(d *BenchDoc) { d.Cases[0].Nodes = 0 }, "no nodes"},
		{"missing phases", func(d *BenchDoc) { d.Cases[0].PhasesMS = nil }, "phase breakdown"},
		{"missing model dims", func(d *BenchDoc) { d.Cases[1].NNZ = 0 }, "model dimensions"},
		{"portfolio without winner", func(d *BenchDoc) {
			d.Cases = append(d.Cases, BenchCase{
				Name: "4x5x3-s10-RULE1-portfolio", Rule: "RULE1", Solver: "portfolio",
				Feasible: true, Proven: true, Cost: 41, WallMS: 50, Nodes: 12,
				PhasesMS: map[string]float64{"search": 50},
			})
			d.Finalize()
		}, "winner"},
		{"winner on bnb case", func(d *BenchDoc) { d.Cases[0].Winner = "ilp" }, "winner"},
		{"par on ilp case", func(d *BenchDoc) { d.Cases[1].Par = 8 }, "par"},
		{"missing runtime", func(d *BenchDoc) { d.Runtime = nil }, "runtime block"},
		{"bad gomaxprocs", func(d *BenchDoc) { d.Runtime.GOMAXPROCS = 0 }, "gomaxprocs"},
		{"stale totals", func(d *BenchDoc) { d.Totals.Nodes += 5 }, "totals"},
		{"missing calibration", func(d *BenchDoc) { d.Calibration = nil }, "calibration block"},
		{"calibration without probes", func(d *BenchDoc) { d.Calibration.ProbesNs = nil }, "probes"},
		{"bad probe ns", func(d *BenchDoc) { d.Calibration.ProbesNs["int_spin"] = 0 }, "ns_per_op"},
		{"bad calibration score", func(d *BenchDoc) { d.Calibration.ScoreNs = -1 }, "score_ns"},
		{"missing work vector", func(d *BenchDoc) { d.Cases[0].Work = nil }, "work vector"},
		{"negative work counter", func(d *BenchDoc) { d.Cases[0].Work["nodes"] = -1 }, "work counter"},
		{"negative runtime delta", func(d *BenchDoc) { d.Cases[0].AllocMB = -0.5 }, "runtime delta"},
		{"gc pause without num_gc", func(d *BenchDoc) { d.Cases[0].GCPauseMS = 1.5 }, "gc_pause_ms"},
		{"work on portfolio case", func(d *BenchDoc) {
			d.Cases = append(d.Cases, BenchCase{
				Name: "4x5x3-s10-RULE1-portfolio", Rule: "RULE1", Solver: "portfolio",
				Winner: "ilp", Feasible: true, Proven: true, Cost: 41,
				WallMS: 50, Nodes: 12,
				PhasesMS: map[string]float64{"search": 50},
				Work:     map[string]int64{"nodes": 12},
			})
			d.Finalize()
		}, "portfolio"},
		{"malformed profile", func(d *BenchDoc) {
			d.Cases[0].Profile = &BenchProfile{Hz: 0, Samples: 10}
		}, "profile"},
		{"profile cum below self", func(d *BenchDoc) {
			d.Cases[0].Profile = &BenchProfile{Hz: 100, Samples: 10,
				Funcs: []BenchFuncSample{{Fn: "f", Self: 5, Cum: 2}}}
		}, "profile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := validDoc()
			tc.mutate(doc)
			// Only the stale-totals case wants Finalize skipped; the rest were
			// finalized before mutation, which is exactly the drift scenario.
			data, err := MarshalBench(doc)
			if err != nil {
				t.Fatal(err)
			}
			_, err = ValidateBench(data)
			if err == nil {
				t.Fatalf("validation accepted a %s document", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateBenchOldSchema: committed v1 trajectory documents (BENCH_0,
// BENCH_1) predate the model-dimension fields and the runtime block and must
// stay readable — those requirements apply from schema v2/v3 on.
func TestValidateBenchOldSchema(t *testing.T) {
	doc := validDoc()
	doc.SchemaVersion = BenchMinSchemaVersion
	doc.Cases[1].Rows, doc.Cases[1].Cols, doc.Cases[1].NNZ = 0, 0, 0
	doc.Runtime = nil
	doc.Calibration = nil
	doc.Cases[0].Work, doc.Cases[1].Work = nil, nil
	data, err := MarshalBench(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateBench(data); err != nil {
		t.Fatalf("v%d document rejected: %v", BenchMinSchemaVersion, err)
	}
}

func TestValidateBenchStrictJSON(t *testing.T) {
	if _, err := ValidateBench([]byte("{nope")); err == nil {
		t.Error("invalid JSON accepted")
	}
	// Unknown fields mean a schema drift; the strict decoder must refuse.
	data, err := MarshalBench(validDoc())
	if err != nil {
		t.Fatal(err)
	}
	drifted := strings.Replace(string(data), `"corpus"`, `"corpus_v2": "x", "corpus"`, 1)
	if _, err := ValidateBench([]byte(drifted)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestValidateBenchV4Cases: schema v4 portfolio and par-twin cases round-trip
// with their Winner/Par fields intact — and a v4 document needs neither the
// calibration block nor per-case work vectors.
func TestValidateBenchV4Cases(t *testing.T) {
	doc := validDoc()
	doc.SchemaVersion = 4
	doc.Calibration = nil
	doc.Cases[0].Work, doc.Cases[1].Work = nil, nil
	doc.Cases = append(doc.Cases,
		BenchCase{
			Name: "4x5x3-s10-RULE1-portfolio", Rule: "RULE1", Solver: "portfolio",
			Winner: "ilp", Feasible: true, Proven: true, Cost: 41,
			WallMS: 120, Nodes: 77,
			PhasesMS: map[string]float64{"node_lp": 110},
		},
		BenchCase{
			Name: "6x7x4-s3-RULE8-bnb-par8", Rule: "RULE8", Solver: "bnb", Par: 8,
			Feasible: true, Proven: true, Cost: 51,
			WallMS: 80, Nodes: 404,
			PhasesMS: map[string]float64{"search": 70},
		},
	)
	doc.Finalize()
	data, err := MarshalBench(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateBench(data)
	if err != nil {
		t.Fatalf("v4 cases rejected: %v", err)
	}
	if back.Cases[2].Winner != "ilp" || back.Cases[3].Par != 8 {
		t.Errorf("v4 fields lost in round-trip: %+v", back.Cases[2:])
	}
}

// TestValidateBenchFailedCase: a case that errored is valid without phases or
// nodes — the failure itself is the trajectory point.
func TestValidateBenchFailedCase(t *testing.T) {
	doc := validDoc()
	doc.Cases = append(doc.Cases, BenchCase{
		Name: "7x10x4-s4-RULE7-bnb", Rule: "RULE7", Solver: "bnb",
		Err: "context deadline exceeded",
	})
	doc.Finalize()
	data, err := MarshalBench(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateBench(data)
	if err != nil {
		t.Fatalf("failed case rejected: %v", err)
	}
	if back.Totals.Failed != 1 {
		t.Errorf("failed total = %d, want 1", back.Totals.Failed)
	}
}
