package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 2.5)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + rule + 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line: %q", lines[1])
	}
	if !strings.Contains(lines[3], "alpha") {
		t.Errorf("row line: %q", lines[3])
	}
	if !strings.Contains(out, "2.50") {
		t.Error("float formatting missing")
	}
	// Columns aligned: the value column starts at the same offset in the
	// header and in each row.
	hIdx := strings.Index(lines[1], "value")
	if strings.Index(lines[3], "1") != hIdx || strings.Index(lines[4], "2.50") != hIdx {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q", buf.String())
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []Series{
		{Name: "RULE1", Values: []float64{0, 1}},
		{Name: "RULE2", Values: []float64{5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "idx,RULE1,RULE2" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,0.00,5.00" {
		t.Fatalf("row 0 = %q", lines[1])
	}
	if lines[2] != "1,1.00," {
		t.Fatalf("row 1 = %q (short series must pad)", lines[2])
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("", "h")
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}
