package report

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// BenchSchemaVersion is the schema of the BENCH_<n>.json documents written by
// cmd/benchrun. Bump it on any breaking change to BenchDoc; trajectory
// tooling accepts committed documents from any version in
// [BenchMinSchemaVersion, BenchSchemaVersion] (the trajectory spans schema
// bumps) and refuses anything else.
//
// v2 added per-case model dimensions (rows/cols/nnz) for ilp cases.
// v3 added Go runtime stats: per-case allocation/GC deltas and a document
// level Runtime block (GOMAXPROCS, total allocations, GC pauses, peak heap).
// v4 added the "portfolio" solver and the per-case Par/Winner fields for
// parallel-BnB and portfolio-race cases.
// v5 added the document-level calibration block (machine-drift probes), the
// per-case deterministic work vector (primary regression-gate signal) and the
// optional per-case sampling profile.
const BenchSchemaVersion = 5

// BenchMinSchemaVersion is the oldest schema still readable (BENCH_0/BENCH_1
// predate the model-dimension fields).
const BenchMinSchemaVersion = 1

// BenchCase is the result of one pinned (clip, rule, solver) benchmark solve.
type BenchCase struct {
	Name   string `json:"name"`   // corpus case name ("seed3-RULE7" style)
	Rule   string `json:"rule"`   // rule configuration solved under
	Solver string `json:"solver"` // "bnb", "ilp" or "portfolio" (v4+)

	// Par is the in-solve worker count of the deterministic parallel BnB (0 =
	// serial engine); Winner names the engine ("bnb"/"ilp") whose result a
	// portfolio case returned. Schema v4+.
	Par    int    `json:"par,omitempty"`
	Winner string `json:"winner,omitempty"`

	Feasible bool   `json:"feasible"`
	Proven   bool   `json:"proven"`
	Cost     int    `json:"cost"` // routing cost (0 when infeasible)
	Err      string `json:"err,omitempty"`

	WallMS       float64 `json:"wall_ms"`
	Nodes        int     `json:"nodes"`
	MaxDepth     int     `json:"max_depth"`
	LPSolves     int     `json:"lp_solves"`
	SimplexIters int     `json:"simplex_iters"`

	// LP-relaxation model dimensions (ilp cases only; schema v2+). Rows and
	// Cols are the constraint/variable counts, NNZ the structural matrix
	// nonzeros — the axes wall-time speedups are correlated against.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	NNZ  int `json:"nnz,omitempty"`

	// PhasesMS is the solver's wall-time attribution in milliseconds;
	// LPPhasesMS the simplex-internal sub-breakdown (ilp cases only).
	PhasesMS   map[string]float64 `json:"phases_ms,omitempty"`
	LPPhasesMS map[string]float64 `json:"lp_phases_ms,omitempty"`

	// Go runtime deltas across the case's solve (schema v3+). The counters
	// are process-global, so they are exact under -j1 and approximate (the
	// case's share plus concurrent cases') under parallel workers; wall-time
	// regressions with flat allocation deltas point at algorithmic causes,
	// rising deltas at allocation churn.
	//
	// Omission rule (schema note): these fields carry json omitempty, so each
	// is present iff its delta was nonzero — fast cases legitimately omit
	// gc_pause_ms/num_gc (no GC cycle completed inside the case) while slow
	// cases carry them. ValidateBench enforces the consistency half: the
	// fields must be non-negative, and a nonzero gc_pause_ms without a
	// num_gc is a malformed document (a pause total can only grow when a
	// cycle completes).
	AllocMB   float64 `json:"alloc_mb,omitempty"`    // bytes allocated during the case
	GCPauseMS float64 `json:"gc_pause_ms,omitempty"` // stop-the-world pause total
	NumGC     int     `json:"num_gc,omitempty"`      // GC cycles completed

	// Work is the case's deterministic work vector (schema v5+): cost
	// counters pinned byte-identical for a given (case, solver, par) key —
	// nodes, simplex iterations, FTRAN/BTRAN nonzeros, Steiner DP cells,
	// DRC checks. Required on successful non-portfolio cases; portfolio
	// cases omit it (the race is scheduling-dependent), and parallel-BnB
	// cases carry only the counters deterministic under work stealing.
	Work map[string]int64 `json:"work,omitempty"`

	// Profile is the case's sampling-profiler summary (schema v5+, present
	// only when the run sampled). Attribution matches the runtime deltas:
	// exact under -j1, approximate under parallel workers.
	Profile *BenchProfile `json:"profile,omitempty"`

	// LP is the LP engine's pricing/presolve telemetry (ilp cases only;
	// optional — documents recorded before the pluggable pricing layer, and
	// Dantzig/no-presolve runs with all-zero counters, omit it). These
	// counters are informational, NOT part of the pinned work vector: the
	// candidate-hit split depends on the pricing rule under comparison.
	LP *BenchLPStats `json:"lp,omitempty"`
}

// BenchLPStats is the per-case LP pricing/presolve counter block.
type BenchLPStats struct {
	CandidateHits  int `json:"candidate_hits,omitempty"`   // pricing rounds served from the candidate list
	RefResets      int `json:"ref_resets,omitempty"`       // devex/steepest reference-framework resets
	DualBoundFlips int `json:"dual_bound_flips,omitempty"` // bound-flip ratio-test flips
	PresolveRows   int `json:"presolve_rows,omitempty"`    // rows removed by structural presolve
	PresolveCols   int `json:"presolve_cols,omitempty"`    // columns removed by structural presolve

	// Refactorization-trigger split across all node LPs (documents recorded
	// before the Forrest–Tomlin update layer omit these). Like the pricing
	// counters they are informational, not part of the pinned work vector:
	// the split depends on the update rule under comparison.
	RefactorEtaLen         int `json:"refactor_eta_len,omitempty"`         // update-count budget reached
	RefactorFill           int `json:"refactor_fill,omitempty"`            // update-storage fill budget exceeded
	RefactorPivotQuality   int `json:"refactor_pivot_quality,omitempty"`   // tiny pivot mid-iteration
	RefactorUpdateRejected int `json:"refactor_update_rejected,omitempty"` // FT/PFI update rejected on spike pivot
}

// BenchProfile is a per-case top-N summary from obs.Sampler.
type BenchProfile struct {
	Hz      int               `json:"hz"`      // sampling rate
	Samples int64             `json:"samples"` // goroutine stacks aggregated
	Funcs   []BenchFuncSample `json:"funcs,omitempty"`
}

// BenchFuncSample is one function's sample counts in a BenchProfile.
type BenchFuncSample struct {
	Fn   string `json:"fn"`
	Self int64  `json:"self"`
	Cum  int64  `json:"cum"`
}

// BenchCalibration is the machine-drift evidence stamped into every schema
// v5+ document: the calibration suite's per-probe ns/op and composite score
// measured immediately before the corpus ran. CompareBench divides two
// documents' probes into a machine ratio and reports calibrated wall ratios
// (raw ÷ machine) next to raw ones.
type BenchCalibration struct {
	ProbesNs map[string]float64 `json:"probes_ns"` // probe name → best-of-rounds ns/op
	ScoreNs  float64            `json:"score_ns"`  // geomean of the machine probes
	WallMS   float64            `json:"wall_ms"`   // suite wall time
}

// BenchTotals aggregates the corpus for at-a-glance trajectory diffs.
type BenchTotals struct {
	Cases        int     `json:"cases"`
	Failed       int     `json:"failed"`
	WallMS       float64 `json:"wall_ms"`
	Nodes        int     `json:"nodes"`
	LPSolves     int     `json:"lp_solves"`
	SimplexIters int     `json:"simplex_iters"`
	// PhasesMS folds every case's attribution into one per-sweep breakdown.
	PhasesMS map[string]float64 `json:"phases_ms,omitempty"`
}

// BenchRuntime captures the Go runtime's view of the whole corpus run
// (schema v3+): totals are process-wide deltas from run start to run end,
// and PeakHeapMB is the largest heap-in-use observed by a sampler during the
// run. Together with the per-case deltas it separates "the solver got
// slower" from "the process allocated or paused more".
type BenchRuntime struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	TotalAllocMB float64 `json:"total_alloc_mb"`
	GCPauseMS    float64 `json:"gc_pause_ms"`
	NumGC        int     `json:"num_gc"`
	PeakHeapMB   float64 `json:"peak_heap_mb"`
}

// BenchDoc is one benchmark-trajectory document (one BENCH_<n>.json).
type BenchDoc struct {
	SchemaVersion int    `json:"schema_version"`
	Corpus        string `json:"corpus"` // "short" or "full"
	GoVersion     string `json:"go_version"`
	Workers       int    `json:"workers"`

	// Runtime is the Go runtime profile of the run (required from schema v3).
	Runtime *BenchRuntime `json:"runtime,omitempty"`

	// Calibration is the machine-drift probe result (required from schema v5).
	Calibration *BenchCalibration `json:"calibration,omitempty"`

	Cases  []BenchCase `json:"cases"`
	Totals BenchTotals `json:"totals"`
}

// Finalize recomputes Totals from Cases (cmd/benchrun calls it before
// writing, so Totals can never drift from the case list).
func (d *BenchDoc) Finalize() {
	t := BenchTotals{Cases: len(d.Cases)}
	for _, c := range d.Cases {
		if c.Err != "" {
			t.Failed++
		}
		t.WallMS += c.WallMS
		t.Nodes += c.Nodes
		t.LPSolves += c.LPSolves
		t.SimplexIters += c.SimplexIters
		for k, v := range c.PhasesMS {
			if t.PhasesMS == nil {
				t.PhasesMS = map[string]float64{}
			}
			t.PhasesMS[k] += v
		}
	}
	d.Totals = t
}

// MarshalBench renders the document as the indented, newline-terminated JSON
// committed as BENCH_<n>.json (stable formatting keeps trajectory diffs
// readable).
func MarshalBench(d *BenchDoc) ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ValidateBench parses and validates one benchmark document, returning the
// first schema violation. It is the gate ci.sh runs over both the freshly
// emitted short-corpus document and the committed BENCH_<n>.json files.
func ValidateBench(data []byte) (*BenchDoc, error) {
	var doc BenchDoc
	dec := jsonStrictDecoder(data)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("bench: invalid JSON: %w", err)
	}
	if doc.SchemaVersion < BenchMinSchemaVersion || doc.SchemaVersion > BenchSchemaVersion {
		return nil, fmt.Errorf("bench: schema_version %d, want %d..%d",
			doc.SchemaVersion, BenchMinSchemaVersion, BenchSchemaVersion)
	}
	if doc.Corpus != "short" && doc.Corpus != "full" {
		return nil, fmt.Errorf("bench: corpus %q, want short|full", doc.Corpus)
	}
	if doc.GoVersion == "" {
		return nil, fmt.Errorf("bench: missing go_version")
	}
	if len(doc.Cases) == 0 {
		return nil, fmt.Errorf("bench: no cases")
	}
	if doc.SchemaVersion >= 3 && doc.Runtime == nil {
		return nil, fmt.Errorf("bench: schema v3 document missing runtime block")
	}
	if doc.Runtime != nil && doc.Runtime.GOMAXPROCS <= 0 {
		return nil, fmt.Errorf("bench: runtime block with gomaxprocs %d", doc.Runtime.GOMAXPROCS)
	}
	if doc.SchemaVersion >= 5 && doc.Calibration == nil {
		return nil, fmt.Errorf("bench: schema v5 document missing calibration block")
	}
	if cal := doc.Calibration; cal != nil {
		if len(cal.ProbesNs) == 0 {
			return nil, fmt.Errorf("bench: calibration block without probes")
		}
		for name, ns := range cal.ProbesNs {
			if ns <= 0 {
				return nil, fmt.Errorf("bench: calibration probe %q ns_per_op %g, want > 0", name, ns)
			}
		}
		if cal.ScoreNs <= 0 {
			return nil, fmt.Errorf("bench: calibration score_ns %g, want > 0", cal.ScoreNs)
		}
	}
	seen := map[string]bool{}
	for i, c := range doc.Cases {
		key := c.Name + "/" + c.Solver
		switch {
		case c.Name == "":
			return nil, fmt.Errorf("bench: case %d: missing name", i)
		case c.Rule == "":
			return nil, fmt.Errorf("bench: case %q: missing rule", c.Name)
		case c.Solver != "bnb" && c.Solver != "ilp" && c.Solver != "portfolio":
			return nil, fmt.Errorf("bench: case %q: solver %q, want bnb|ilp|portfolio", c.Name, c.Solver)
		case c.Solver == "portfolio" && doc.SchemaVersion < 4:
			return nil, fmt.Errorf("bench: case %q: portfolio solver needs schema v4", c.Name)
		case c.Solver == "portfolio" && c.Err == "" && c.Winner != "bnb" && c.Winner != "ilp":
			return nil, fmt.Errorf("bench: case %q: portfolio winner %q, want bnb|ilp", c.Name, c.Winner)
		case c.Solver != "portfolio" && c.Winner != "":
			return nil, fmt.Errorf("bench: case %q: winner set on %s case", c.Name, c.Solver)
		case c.Par < 0 || (c.Par > 0 && c.Solver == "ilp"):
			return nil, fmt.Errorf("bench: case %q: par %d invalid for solver %s", c.Name, c.Par, c.Solver)
		case seen[key]:
			return nil, fmt.Errorf("bench: duplicate case %q", key)
		case c.WallMS < 0:
			return nil, fmt.Errorf("bench: case %q: negative wall_ms", c.Name)
		// Portfolio wins are exempt from the node floor: a race decided
		// through the exchange (foreign bound meets local incumbent) can
		// return a winner that never popped a node of its own.
		case c.Err == "" && c.Feasible && c.Nodes <= 0 && c.Solver != "portfolio":
			return nil, fmt.Errorf("bench: case %q: no nodes recorded", c.Name)
		case c.Err == "" && len(c.PhasesMS) == 0:
			return nil, fmt.Errorf("bench: case %q: missing phase breakdown", c.Name)
		case doc.SchemaVersion >= 2 && c.Err == "" && c.Solver == "ilp" &&
			(c.Rows <= 0 || c.Cols <= 0 || c.NNZ <= 0):
			return nil, fmt.Errorf("bench: case %q: missing model dimensions (schema v2 ilp case)", c.Name)
		// Runtime-delta omission rules (schema v3+): present iff nonzero,
		// never negative, and a GC pause total implies a completed cycle.
		case c.AllocMB < 0 || c.GCPauseMS < 0 || c.NumGC < 0:
			return nil, fmt.Errorf("bench: case %q: negative runtime delta", c.Name)
		case c.GCPauseMS > 0 && c.NumGC == 0:
			return nil, fmt.Errorf("bench: case %q: gc_pause_ms %g without num_gc (pause totals only grow when a cycle completes)", c.Name, c.GCPauseMS)
		// Work-vector rules (schema v5+): required on successful
		// non-portfolio cases, forbidden on portfolio cases (the race is
		// scheduling-dependent), counters non-negative.
		case doc.SchemaVersion >= 5 && c.Err == "" && c.Solver != "portfolio" && len(c.Work) == 0:
			return nil, fmt.Errorf("bench: case %q: missing work vector (schema v5)", c.Name)
		case c.Solver == "portfolio" && len(c.Work) > 0:
			return nil, fmt.Errorf("bench: case %q: work vector on portfolio case (race is nondeterministic)", c.Name)
		case doc.SchemaVersion < 5 && (len(c.Work) > 0 || c.Profile != nil):
			return nil, fmt.Errorf("bench: case %q: work/profile fields need schema v5", c.Name)
		}
		for k, v := range c.Work {
			if v < 0 {
				return nil, fmt.Errorf("bench: case %q: negative work counter %s=%d", c.Name, k, v)
			}
		}
		if l := c.LP; l != nil {
			if l.CandidateHits < 0 || l.RefResets < 0 || l.DualBoundFlips < 0 ||
				l.PresolveRows < 0 || l.PresolveCols < 0 ||
				l.RefactorEtaLen < 0 || l.RefactorFill < 0 ||
				l.RefactorPivotQuality < 0 || l.RefactorUpdateRejected < 0 {
				return nil, fmt.Errorf("bench: case %q: negative LP counter in %+v", c.Name, *l)
			}
			if c.Solver != "ilp" {
				return nil, fmt.Errorf("bench: case %q: lp block on %s case (ilp only)", c.Name, c.Solver)
			}
		}
		if p := c.Profile; p != nil {
			if p.Hz <= 0 || p.Samples < 0 {
				return nil, fmt.Errorf("bench: case %q: malformed profile (hz %d, samples %d)", c.Name, p.Hz, p.Samples)
			}
			for _, f := range p.Funcs {
				if f.Fn == "" || f.Self < 0 || f.Cum < f.Self {
					return nil, fmt.Errorf("bench: case %q: malformed profile sample %+v", c.Name, f)
				}
			}
		}
		seen[key] = true
	}
	want := doc.Totals
	check := doc
	check.Finalize()
	if got := check.Totals; got.Cases != want.Cases || got.Failed != want.Failed ||
		got.Nodes != want.Nodes || got.LPSolves != want.LPSolves ||
		got.SimplexIters != want.SimplexIters {
		return nil, fmt.Errorf("bench: totals disagree with cases: have %+v, recomputed %+v", want, got)
	}
	return &doc, nil
}

// jsonStrictDecoder decodes rejecting unknown fields, so stale documents from
// an older schema fail loudly instead of silently dropping data.
func jsonStrictDecoder(data []byte) *json.Decoder {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec
}
