// Package report renders experiment results as aligned ASCII tables and CSV
// series, matching the tables and figure data of the paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(v, widths[i]))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	var rule []string
	for _, w2 := range widths {
		rule = append(rule, strings.Repeat("-", w2))
	}
	line(rule)
	for _, r := range t.Rows {
		line(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV renders headers and rows as CSV (no quoting needed for our data).
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	var sb strings.Builder
	sb.WriteString(strings.Join(headers, ",") + "\n")
	for _, r := range rows {
		sb.WriteString(strings.Join(r, ",") + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Series is a named numeric sequence (one curve of a figure).
type Series struct {
	Name   string
	Values []float64
}

// WriteSeriesCSV renders several series column-wise with an index column,
// padding shorter series with empty cells.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	maxLen := 0
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	headers := []string{"idx"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	var rows [][]string
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		for _, s := range series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.2f", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return WriteCSV(w, headers, rows)
}
