package geom

import (
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Pt(3, -4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, -6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.ManhattanDist(q); got != 10 {
		t.Errorf("ManhattanDist = %d, want 10", got)
	}
	if got := p.ManhattanDist(p); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
}

func TestAbsMinMaxClamp(t *testing.T) {
	if Abs(-5) != 5 || Abs(5) != 5 || Abs(0) != 0 {
		t.Error("Abs broken")
	}
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Error("Min broken")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max broken")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
}

func TestRCanonicalizes(t *testing.T) {
	r := R(5, 7, 1, 2)
	if r != (Rect{1, 2, 5, 7}) {
		t.Errorf("R did not canonicalize: %v", r)
	}
	if r.Empty() {
		t.Error("canonical rect reported empty")
	}
}

func TestRectEmpty(t *testing.T) {
	e := Rect{3, 0, 1, 5}
	if !e.Empty() {
		t.Error("inverted rect should be empty")
	}
	if e.W() != 0 || e.H() != 0 {
		t.Error("empty rect should have zero extent")
	}
	pointRect := R(2, 2, 2, 2)
	if pointRect.Empty() {
		t.Error("degenerate point rect should not be empty")
	}
	if pointRect.Area() != 0 {
		t.Error("point rect area should be 0")
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 5)
	for _, p := range []Point{Pt(0, 0), Pt(10, 5), Pt(5, 3), Pt(10, 0)} {
		if !r.Contains(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range []Point{Pt(-1, 0), Pt(11, 5), Pt(5, 6)} {
		if r.Contains(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(4, 4, 8, 8) // touching at a corner: closed semantics intersect
	if !a.Intersects(b) {
		t.Error("touching rects should intersect (closed)")
	}
	got := a.Intersect(b)
	if got != (Rect{4, 4, 4, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	c := R(5, 5, 8, 8)
	if a.Intersects(c) {
		t.Error("disjoint rects must not intersect")
	}
	if !a.Intersect(c).Empty() {
		t.Error("intersection of disjoint rects must be empty")
	}
}

func TestRectUnionExpandTranslate(t *testing.T) {
	a := R(0, 0, 2, 2)
	b := R(5, -1, 6, 1)
	u := a.Union(b)
	if u != (Rect{0, -1, 6, 2}) {
		t.Errorf("Union = %v", u)
	}
	var empty Rect
	empty = Rect{1, 1, 0, 0}
	if a.Union(empty) != a || empty.Union(a) != a {
		t.Error("union with empty should be identity")
	}
	if a.Expand(1) != (Rect{-1, -1, 3, 3}) {
		t.Error("Expand broken")
	}
	if a.Translate(Pt(10, 20)) != (Rect{10, 20, 12, 22}) {
		t.Error("Translate broken")
	}
}

func TestRectDist(t *testing.T) {
	a := R(0, 0, 2, 2)
	if a.Dist(R(1, 1, 5, 5)) != 0 {
		t.Error("overlapping rects have distance 0")
	}
	if got := a.Dist(R(5, 0, 6, 2)); got != 3 {
		t.Errorf("x-gap dist = %d, want 3", got)
	}
	if got := a.Dist(R(4, 5, 6, 6)); got != 2+3 {
		t.Errorf("diagonal dist = %d, want 5", got)
	}
}

func TestContainsRect(t *testing.T) {
	outer := R(0, 0, 10, 10)
	if !outer.ContainsRect(R(2, 2, 8, 8)) {
		t.Error("should contain inner rect")
	}
	if outer.ContainsRect(R(2, 2, 11, 8)) {
		t.Error("should not contain overflowing rect")
	}
	if !outer.ContainsRect(Rect{5, 5, 4, 4}) {
		t.Error("every rect contains the empty rect")
	}
}

// Property: Manhattan distance is a metric (symmetry + triangle inequality).
func TestManhattanMetricProperties(t *testing.T) {
	sym := func(ax, ay, bx, by int16) bool {
		a := Pt(int(ax), int(ay))
		b := Pt(int(bx), int(by))
		return a.ManhattanDist(b) == b.ManhattanDist(a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	tri := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(int(ax), int(ay))
		b := Pt(int(bx), int(by))
		c := Pt(int(cx), int(cy))
		return a.ManhattanDist(c) <= a.ManhattanDist(b)+b.ManhattanDist(c)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intersect is commutative and contained in both operands.
func TestIntersectProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 int8) bool {
		a := R(int(x1), int(y1), int(x2), int(y2))
		b := R(int(x3), int(y3), int(x4), int(y4))
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if i1.Empty() {
			return !a.Intersects(b)
		}
		return a.ContainsRect(i1) && b.ContainsRect(i1) && a.Intersects(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union contains both operands and is the smallest such box.
func TestUnionProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 int8) bool {
		a := R(int(x1), int(y1), int(x2), int(y2))
		b := R(int(x3), int(y3), int(x4), int(y4))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
