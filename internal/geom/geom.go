// Package geom provides integer 2-D geometry primitives used throughout the
// router: points, rectangles and closed intervals on a nanometer (or track)
// grid. All coordinates are integers; rectangles are closed boxes
// [X1,X2] x [Y1,Y2] with X1 <= X2 and Y1 <= Y2.
package geom

import "fmt"

// Point is an integer 2-D point.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int {
	return Abs(p.X-q.X) + Abs(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Abs returns the absolute value of x.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Rect is a closed integer rectangle [X1,X2] x [Y1,Y2].
// A Rect with X1 > X2 or Y1 > Y2 is empty.
type Rect struct {
	X1, Y1, X2, Y2 int
}

// R returns the canonical rectangle covering the two corner points.
func R(x1, y1, x2, y2 int) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{x1, y1, x2, y2}
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.X1 > r.X2 || r.Y1 > r.Y2 }

// W returns the width (X extent) of r. Empty rectangles report 0.
func (r Rect) W() int {
	if r.Empty() {
		return 0
	}
	return r.X2 - r.X1
}

// H returns the height (Y extent) of r. Empty rectangles report 0.
func (r Rect) H() int {
	if r.Empty() {
		return 0
	}
	return r.Y2 - r.Y1
}

// Area returns W()*H(); note that a degenerate (line or point) rectangle has
// zero area but is not empty.
func (r Rect) Area() int { return r.W() * r.H() }

// Contains reports whether p lies inside the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X1 && p.X <= r.X2 && p.Y >= r.Y1 && p.Y <= r.Y2
}

// ContainsRect reports whether s lies entirely inside r.
// Every rectangle contains the empty rectangle.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X1 >= r.X1 && s.X2 <= r.X2 && s.Y1 >= r.Y1 && s.Y2 <= r.Y2
}

// Intersects reports whether r and s share at least one point
// (closed-rectangle semantics: touching edges intersect).
func (r Rect) Intersects(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.X1 <= s.X2 && s.X1 <= r.X2 && r.Y1 <= s.Y2 && s.Y1 <= r.Y2
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		X1: Max(r.X1, s.X1),
		Y1: Max(r.Y1, s.Y1),
		X2: Min(r.X2, s.X2),
		Y2: Min(r.Y2, s.Y2),
	}
}

// Union returns the bounding box of r and s. The union with an empty
// rectangle is the other rectangle.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X1: Min(r.X1, s.X1),
		Y1: Min(r.Y1, s.Y1),
		X2: Max(r.X2, s.X2),
		Y2: Max(r.Y2, s.Y2),
	}
}

// Expand grows r by d on every side (shrinks for negative d).
func (r Rect) Expand(d int) Rect {
	return Rect{r.X1 - d, r.Y1 - d, r.X2 + d, r.Y2 + d}
}

// Translate shifts r by the vector p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.X1 + p.X, r.Y1 + p.Y, r.X2 + p.X, r.Y2 + p.Y}
}

// Center returns the center point of r, rounding toward X1/Y1.
func (r Rect) Center() Point { return Point{(r.X1 + r.X2) / 2, (r.Y1 + r.Y2) / 2} }

// Dist returns the minimum L1 distance between the closed rectangles r and s
// (zero if they intersect).
func (r Rect) Dist(s Rect) int {
	dx := 0
	if r.X2 < s.X1 {
		dx = s.X1 - r.X2
	} else if s.X2 < r.X1 {
		dx = r.X1 - s.X2
	}
	dy := 0
	if r.Y2 < s.Y1 {
		dy = s.Y1 - r.Y2
	} else if s.Y2 < r.Y1 {
		dy = r.Y1 - s.Y2
	}
	return dx + dy
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d..%d,%d]", r.X1, r.Y1, r.X2, r.Y2)
}

// LayerRect is a rectangle bound to a routing layer index.
type LayerRect struct {
	Layer int
	Rect  Rect
}

func (lr LayerRect) String() string {
	return fmt.Sprintf("L%d%s", lr.Layer, lr.Rect)
}
