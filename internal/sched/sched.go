// Package sched is the repository's parallel-evaluation substrate: a
// work-stealing worker pool that runs a fixed set of independent jobs —
// typically one exact (clip, rule) solve each — across N workers while
// keeping the *results* deterministic.
//
// Design points, in the order the rule-evaluation pipeline needs them:
//
//   - Deterministic assembly: Run returns one Result per job, indexed by the
//     job's position in the input slice, regardless of which worker ran it or
//     in what order. Callers that assemble output in input order therefore
//     produce byte-identical reports for any worker count.
//   - Fault isolation: a panicking job is captured (with its stack) and
//     recorded as that job's failure; the sweep continues and Run returns
//     normally. One poisoned clip cannot take down an hours-long study.
//   - Cancellation: cancelling the context stops dispatch; jobs not yet
//     started complete immediately with the context's error, so the pool
//     drains cleanly and every job is still accounted for in the results.
//   - Budgets: Options.JobTimeout bounds each job via its context. Jobs that
//     also take wall-clock budgets (e.g. solver time limits) keep those; the
//     context is the hard backstop.
//   - Observability: with Options.Metrics set, the pool maintains an
//     in-flight gauge, per-worker job gauges, steal/failure counters and a
//     job-latency histogram; Options.OnUpdate receives serialized lifecycle
//     events (never two concurrently), so a single live progress line cannot
//     interleave across workers.
//
// Scheduling is work-stealing over per-worker deques: jobs are dealt
// round-robin, each worker consumes its own deque front-to-back (preserving
// rough input order, which tends to group similar solves), and an idle
// worker steals from the back of a victim's deque. For hundreds of
// multi-second MILP solves the steal path is cold, but it keeps the pool
// balanced when per-job cost is wildly skewed — the paper's hardest clips
// run 100x longer than the easy ones.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"optrouter/internal/obs"
)

// Job is one unit of work. The context is cancelled when the pool's parent
// context is cancelled or the per-job timeout expires; long-running jobs
// should poll it.
type Job[T any] func(ctx context.Context) (T, error)

// workerKey carries the executing worker's id in the job context.
type workerKey struct{}

// WorkerID returns the id of the worker executing the job whose context this
// is, or -1 when the context did not come from a pool worker. Jobs use it to
// label progress/status reports with a stable worker identity.
func WorkerID(ctx context.Context) int {
	if v, ok := ctx.Value(workerKey{}).(int); ok {
		return v
	}
	return -1
}

// Options tunes a Run.
type Options struct {
	// Workers is the worker-goroutine count (default runtime.NumCPU();
	// 1 degenerates to a serial run through the same code path).
	Workers int
	// JobTimeout, when positive, bounds each job via its context.
	JobTimeout time.Duration
	// Metrics, if non-nil, receives pool gauges/counters/histograms under
	// the "sched_" prefix (see package comment).
	Metrics *obs.Registry
	// OnUpdate, if non-nil, receives serialized per-job lifecycle events.
	// It is never invoked concurrently with itself.
	OnUpdate func(Update)
	// Stats, if non-nil, accumulates pool-level counters across the Run
	// (incremented atomically while the pool runs; read it after Run
	// returns). Callers without a metrics registry — the parallel tree
	// search wanting its steal count in SolveStats — use this instead of
	// scraping Metrics.
	Stats *RunStats
}

// RunStats are the pool-level counters of one (or several accumulated) Runs.
type RunStats struct {
	// Steals counts jobs an idle worker took from another worker's deque.
	Steals atomic.Int64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Update is one lifecycle event handed to Options.OnUpdate.
type Update struct {
	Phase  string // "start" or "done"
	Job    int    // index of the job in the input slice
	Worker int    // worker that ran (or is running) it
	Err    error  // set on failed "done" events

	// Aggregate pool state at the time of the event (consistent: the
	// callback is serialized).
	Done     int // jobs finished, including failures and cancellations
	Failed   int // jobs finished with a non-nil error
	InFlight int // jobs currently executing
	Total    int // len(jobs)
}

// Result is the outcome of one job, at the job's input index.
type Result[T any] struct {
	Value T
	// Err is the job's error; for a cancelled-before-start job it is the
	// context's error, for a panicked job a *PanicError.
	Err error
	// Panicked reports that the job panicked (Err is the *PanicError).
	Panicked bool
	// Worker is the worker that executed the job (-1 if never started).
	Worker int
	// Runtime is the job's wall time (0 if never started).
	Runtime time.Duration
}

// PanicError wraps a recovered job panic with its stack trace.
type PanicError struct {
	Value interface{} // the value passed to panic
	Stack []byte      // debug.Stack() at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job panicked: %v", e.Value)
}

// deque is one worker's job queue (indices into the job slice). The owner
// pops from the front; thieves pop from the back.
type deque struct {
	mu   sync.Mutex
	jobs []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	j := d.jobs[0]
	d.jobs = d.jobs[1:]
	return j, true
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	j := d.jobs[len(d.jobs)-1]
	d.jobs = d.jobs[:len(d.jobs)-1]
	return j, true
}

// Run executes the jobs on a work-stealing pool and returns one Result per
// job, in input order. It always returns len(jobs) results: jobs skipped
// because ctx was cancelled carry ctx's error. Run itself never panics on a
// job panic; the panic is recorded in that job's Result.
func Run[T any](ctx context.Context, jobs []Job[T], opt Options) []Result[T] {
	opt = opt.withDefaults()
	n := len(jobs)
	results := make([]Result[T], n)
	for i := range results {
		results[i].Worker = -1
	}
	if n == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}
	nw := opt.Workers
	if nw > n {
		nw = n
	}

	m := opt.Metrics
	m.Gauge("sched_workers").Set(float64(nw))
	m.Gauge("sched_jobs_total").Set(float64(n))
	inflight := m.Gauge("sched_inflight")
	jobMS := m.Histogram("sched_job_ms")

	// Deal jobs round-robin so each worker starts on a contiguous-ish slice
	// of the input order.
	deques := make([]*deque, nw)
	for w := range deques {
		deques[w] = &deque{}
	}
	for i := 0; i < n; i++ {
		w := i % nw
		deques[w].jobs = append(deques[w].jobs, i)
	}

	// agg serializes OnUpdate and owns the aggregate counters.
	var agg struct {
		sync.Mutex
		done, failed, inflight int
	}
	notify := func(phase string, job, worker int, err error) {
		agg.Lock()
		defer agg.Unlock()
		switch phase {
		case "start":
			agg.inflight++
		case "done":
			agg.inflight--
			agg.done++
			if err != nil {
				agg.failed++
			}
		}
		if opt.OnUpdate != nil {
			opt.OnUpdate(Update{
				Phase: phase, Job: job, Worker: worker, Err: err,
				Done: agg.done, Failed: agg.failed,
				InFlight: agg.inflight, Total: n,
			})
		}
	}

	runOne := func(worker, idx int) {
		r := &results[idx]
		r.Worker = worker
		if err := ctx.Err(); err != nil {
			// Cancelled before start: account for the job without running
			// it so the pool drains deterministically.
			r.Err = err
			m.Counter("sched_jobs_cancelled").Inc()
			notify("start", idx, worker, nil)
			notify("done", idx, worker, err)
			return
		}
		jctx := context.WithValue(ctx, workerKey{}, worker)
		var cancel context.CancelFunc
		if opt.JobTimeout > 0 {
			jctx, cancel = context.WithTimeout(jctx, opt.JobTimeout)
		}
		notify("start", idx, worker, nil)
		inflight.Add(1)
		tm := jobMS.StartTimer()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					r.Panicked = true
					r.Err = &PanicError{Value: rec, Stack: debug.Stack()}
				}
			}()
			r.Value, r.Err = jobs[idx](jctx)
		}()
		r.Runtime = tm.ObserveDuration()
		if cancel != nil {
			cancel()
		}
		inflight.Add(-1)
		m.Gauge(fmt.Sprintf("sched_worker_%02d_jobs", worker)).Add(1)
		if r.Panicked {
			m.Counter("sched_jobs_panicked").Inc()
		}
		if r.Err != nil {
			m.Counter("sched_jobs_failed").Inc()
		} else {
			m.Counter("sched_jobs_done").Inc()
		}
		notify("done", idx, worker, r.Err)
	}

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				idx, ok := deques[worker].popFront()
				if !ok {
					// Own deque empty: steal from the back of the first
					// non-empty victim, scanning from our right neighbor so
					// thieves spread out.
					for off := 1; off < nw && !ok; off++ {
						idx, ok = deques[(worker+off)%nw].popBack()
					}
					if ok {
						m.Counter("sched_steals").Inc()
						if opt.Stats != nil {
							opt.Stats.Steals.Add(1)
						}
					}
				}
				if !ok {
					return // all deques drained; in-flight jobs are others'
				}
				runOne(worker, idx)
			}
		}(w)
	}
	wg.Wait()
	return results
}
