package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// FuzzScheduler drives the pool through randomized job counts, worker
// counts, per-job budgets, cancellation points and injected panics, and
// asserts the pool's invariants:
//
//   - no deadlock (the run completes; guarded by the per-case watchdog),
//   - no lost jobs (every input index has exactly one accounted Result),
//   - no duplicated jobs (no job body executes twice),
//   - clean drain on cancel (unstarted jobs report the context error),
//   - panics are contained (flagged on the Result, never escape Run).
func FuzzScheduler(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(0), uint16(0), false)
	f.Add(uint8(1), uint8(1), uint8(0), uint16(1), false)
	f.Add(uint8(17), uint8(3), uint8(5), uint16(0xA5A5), true)
	f.Add(uint8(64), uint8(8), uint8(1), uint16(0xFFFF), true)
	f.Add(uint8(33), uint8(200), uint8(0), uint16(7), false)

	f.Fuzz(func(t *testing.T, nJobs, workers, cancelAfter uint8, panicMask uint16, useTimeout bool) {
		n := int(nJobs)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()

		var execs atomic.Int64
		ran := make([]atomic.Int32, n)
		jobs := make([]Job[int], n)
		for i := 0; i < n; i++ {
			i := i
			jobs[i] = func(jctx context.Context) (int, error) {
				if ran[i].Add(1) > 1 {
					t.Errorf("job %d executed twice", i)
				}
				done := execs.Add(1)
				if cancelAfter > 0 && done == int64(cancelAfter) {
					cancel() // cancellation point mid-sweep
				}
				if panicMask&(1<<(uint(i)%16)) != 0 {
					panic(i)
				}
				return i, nil
			}
		}

		opt := Options{Workers: int(workers)}
		if useTimeout {
			opt.JobTimeout = 50 * time.Millisecond
		}

		// Watchdog: the jobs above never block, so a run that does not
		// finish promptly is a pool deadlock.
		finished := make(chan []Result[int], 1)
		go func() { finished <- Run(ctx, jobs, opt) }()
		var res []Result[int]
		select {
		case res = <-finished:
		case <-time.After(30 * time.Second):
			t.Fatal("scheduler deadlocked")
		}

		if len(res) != n {
			t.Fatalf("%d results for %d jobs", len(res), n)
		}
		executed := 0
		for i, r := range res {
			wasRun := ran[i].Load() > 0
			if wasRun {
				executed++
			}
			switch {
			case r.Panicked:
				if !wasRun {
					t.Errorf("job %d: panicked but never ran", i)
				}
				var pe *PanicError
				if !errors.As(r.Err, &pe) || pe.Value != i {
					t.Errorf("job %d: panic payload %v", i, r.Err)
				}
			case r.Err == nil:
				if !wasRun {
					t.Errorf("job %d: success without execution", i)
				}
				if r.Value != i {
					t.Errorf("job %d: value %d", i, r.Value)
				}
			case errors.Is(r.Err, context.Canceled):
				if wasRun {
					t.Errorf("job %d: ran but reported cancelled", i)
				}
			default:
				t.Errorf("job %d: unexpected error %v", i, r.Err)
			}
		}
		if got := int(execs.Load()); got != executed {
			t.Fatalf("execution count %d != executed jobs %d", got, executed)
		}
		if cancelAfter == 0 && executed != n {
			t.Fatalf("no cancellation but only %d/%d jobs ran", executed, n)
		}
	})
}
