package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optrouter/internal/obs"
)

// TestDeterministicAssembly: results land at their input index for any
// worker count, so downstream assembly is order-independent.
func TestDeterministicAssembly(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 4, 9} {
		jobs := make([]Job[int], n)
		for i := range jobs {
			i := i
			jobs[i] = func(ctx context.Context) (int, error) { return i * i, nil }
		}
		res := Run(context.Background(), jobs, Options{Workers: workers})
		if len(res) != n {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
		for i, r := range res {
			if r.Err != nil || r.Value != i*i {
				t.Fatalf("workers=%d: result[%d] = %v, %v", workers, i, r.Value, r.Err)
			}
			if r.Worker < 0 || r.Worker >= workers {
				t.Fatalf("workers=%d: result[%d] ran on worker %d", workers, i, r.Worker)
			}
		}
	}
}

// TestPanicIsolation: a panicking job becomes a failed Result, the sweep
// survives, and the other jobs complete normally.
func TestPanicIsolation(t *testing.T) {
	jobs := make([]Job[string], 9)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (string, error) {
			if i%3 == 1 {
				panic(fmt.Sprintf("boom-%d", i))
			}
			return fmt.Sprintf("ok-%d", i), nil
		}
	}
	res := Run(context.Background(), jobs, Options{Workers: 3})
	for i, r := range res {
		if i%3 == 1 {
			if !r.Panicked {
				t.Fatalf("job %d: expected panic, got %v / %v", i, r.Value, r.Err)
			}
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("job %d: Err = %v, want *PanicError", i, r.Err)
			}
			if pe.Value != fmt.Sprintf("boom-%d", i) || len(pe.Stack) == 0 {
				t.Fatalf("job %d: panic payload %v, stack %d bytes", i, pe.Value, len(pe.Stack))
			}
		} else if r.Panicked || r.Err != nil || r.Value != fmt.Sprintf("ok-%d", i) {
			t.Fatalf("job %d: %v / %v", i, r.Value, r.Err)
		}
	}
}

// TestCancellationDrains: after cancel, unstarted jobs complete immediately
// with the context error and every job is accounted for.
func TestCancellationDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 50
	var started atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) {
			if started.Add(1) == 2 {
				cancel()
				close(release)
			} else {
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
			return 1, nil
		}
	}
	res := Run(ctx, jobs, Options{Workers: 2})
	ran, skipped := 0, 0
	for i, r := range res {
		switch {
		case r.Err == nil:
			ran++
		case errors.Is(r.Err, context.Canceled):
			skipped++
		default:
			t.Fatalf("job %d: unexpected error %v", i, r.Err)
		}
	}
	if ran+skipped != n {
		t.Fatalf("ran %d + skipped %d != %d", ran, skipped, n)
	}
	if skipped == 0 {
		t.Fatal("expected at least one cancelled job")
	}
}

// TestJobTimeout: the per-job context expires after JobTimeout.
func TestJobTimeout(t *testing.T) {
	jobs := []Job[bool]{
		func(ctx context.Context) (bool, error) {
			select {
			case <-ctx.Done():
				return false, ctx.Err()
			case <-time.After(5 * time.Second):
				return true, nil
			}
		},
	}
	res := Run(context.Background(), jobs, Options{Workers: 1, JobTimeout: 20 * time.Millisecond})
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", res[0].Err)
	}
}

// TestUpdatesSerializedAndAccounted: OnUpdate events are never concurrent,
// counts are consistent, and InFlight never exceeds the worker count.
func TestUpdatesSerializedAndAccounted(t *testing.T) {
	const n, workers = 40, 4
	var mu sync.Mutex
	inCallback := false
	var events []Update
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) { return 0, nil }
	}
	opt := Options{
		Workers: workers,
		OnUpdate: func(u Update) {
			mu.Lock()
			if inCallback {
				mu.Unlock()
				t.Error("OnUpdate invoked concurrently")
				return
			}
			inCallback = true
			mu.Unlock()
			events = append(events, u)
			mu.Lock()
			inCallback = false
			mu.Unlock()
		},
	}
	Run(context.Background(), jobs, opt)
	starts, dones := 0, 0
	for _, u := range events {
		if u.Total != n {
			t.Fatalf("Total = %d, want %d", u.Total, n)
		}
		if u.InFlight < 0 || u.InFlight > workers {
			t.Fatalf("InFlight = %d with %d workers", u.InFlight, workers)
		}
		switch u.Phase {
		case "start":
			starts++
		case "done":
			dones++
		}
	}
	if starts != n || dones != n {
		t.Fatalf("starts=%d dones=%d, want %d each", starts, dones, n)
	}
	last := events[len(events)-1]
	if last.Done != n || last.InFlight != 0 {
		t.Fatalf("final event Done=%d InFlight=%d", last.Done, last.InFlight)
	}
}

// TestMetrics: the pool records worker, in-flight and outcome metrics.
func TestMetrics(t *testing.T) {
	m := obs.NewRegistry()
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			if i == 7 {
				panic("x")
			}
			if i == 3 {
				return 0, errors.New("bad")
			}
			return 0, nil
		}
	}
	Run(context.Background(), jobs, Options{Workers: 2, Metrics: m})
	snap := m.Snapshot()
	if got := snap.Counters["sched_jobs_done"]; got != 8 {
		t.Fatalf("sched_jobs_done = %d", got)
	}
	if got := snap.Counters["sched_jobs_failed"]; got != 2 {
		t.Fatalf("sched_jobs_failed = %d", got)
	}
	if got := snap.Counters["sched_jobs_panicked"]; got != 1 {
		t.Fatalf("sched_jobs_panicked = %d", got)
	}
	if got := snap.Gauges["sched_workers"]; got != 2 {
		t.Fatalf("sched_workers = %v", got)
	}
	if got := snap.Gauges["sched_inflight"]; got != 0 {
		t.Fatalf("sched_inflight = %v, want 0 after drain", got)
	}
	if got := snap.Histograms["sched_job_ms"].Count; got != 10 {
		t.Fatalf("sched_job_ms count = %d", got)
	}
	perWorker := int64(0)
	for w := 0; w < 2; w++ {
		perWorker += int64(snap.Gauges[fmt.Sprintf("sched_worker_%02d_jobs", w)])
	}
	if perWorker != 10 {
		t.Fatalf("per-worker job gauges sum to %d", perWorker)
	}
}

// TestEmptyAndOversizedPool: edge cases — zero jobs, more workers than jobs.
func TestEmptyAndOversizedPool(t *testing.T) {
	if res := Run[int](context.Background(), nil, Options{Workers: 8}); len(res) != 0 {
		t.Fatalf("empty run: %d results", len(res))
	}
	jobs := []Job[int]{func(ctx context.Context) (int, error) { return 42, nil }}
	res := Run(context.Background(), jobs, Options{Workers: 64})
	if res[0].Value != 42 || res[0].Err != nil {
		t.Fatalf("oversized pool: %v / %v", res[0].Value, res[0].Err)
	}
}

// TestWorkStealingBalances: with one slow job first, the other worker must
// steal the remaining work rather than idle.
func TestWorkStealingBalances(t *testing.T) {
	m := obs.NewRegistry()
	block := make(chan struct{})
	jobs := make([]Job[int], 8)
	jobs[0] = func(ctx context.Context) (int, error) { <-block; return 0, nil }
	var fast atomic.Int32
	for i := 1; i < len(jobs); i++ {
		jobs[i] = func(ctx context.Context) (int, error) {
			if fast.Add(1) == 7 {
				close(block) // all fast jobs done; release the slow one
			}
			return 0, nil
		}
	}
	var rs RunStats
	res := Run(context.Background(), jobs, Options{Workers: 2, Metrics: m, Stats: &rs})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	// Worker 0 is stuck on job 0; its dealt jobs (2,4,6) must be stolen.
	steals := m.Snapshot().Counters["sched_steals"]
	if steals < 3 {
		t.Fatalf("steals = %d, want >= 3", steals)
	}
	// The registry-free counter (what the parallel tree search reads into
	// SolveStats) must agree with the metrics counter.
	if got := rs.Steals.Load(); got != steals {
		t.Fatalf("RunStats.Steals = %d, metrics counter = %d", got, steals)
	}
}
