package xchg

import (
	"sync"
	"testing"
)

func TestExchangeBasics(t *testing.T) {
	ex := New()
	if _, ok := ex.Incumbent(); ok {
		t.Fatal("fresh exchange reports an incumbent")
	}
	if _, ok := ex.Bound(); ok {
		t.Fatal("fresh exchange reports a bound")
	}
	if ex.Decided() {
		t.Fatal("fresh exchange is decided")
	}

	if !ex.OfferIncumbent(100) {
		t.Fatal("first incumbent offer rejected")
	}
	if ex.OfferIncumbent(100) {
		t.Fatal("equal incumbent offer accepted (must be strict)")
	}
	if ex.OfferIncumbent(120) {
		t.Fatal("worse incumbent offer accepted")
	}
	if !ex.OfferIncumbent(90) {
		t.Fatal("better incumbent offer rejected")
	}
	if inc, ok := ex.Incumbent(); !ok || inc != 90 {
		t.Fatalf("incumbent = (%d,%v), want (90,true)", inc, ok)
	}
	if got := ex.Accepted(); got != 2 {
		t.Fatalf("accepted = %d, want 2", got)
	}
	if got := ex.Offers(); got != 4 {
		t.Fatalf("offers = %d, want 4", got)
	}

	if !ex.OfferBound(50) {
		t.Fatal("first bound offer rejected")
	}
	if ex.OfferBound(40) {
		t.Fatal("weaker bound offer accepted (bound must be monotone)")
	}
	if b, ok := ex.Bound(); !ok || b != 50 {
		t.Fatalf("bound = (%d,%v), want (50,true)", b, ok)
	}
	if ex.Decided() {
		t.Fatal("decided with bound 50 < incumbent 90")
	}
	ex.OfferBound(90)
	if !ex.Decided() {
		t.Fatal("not decided with bound 90 >= incumbent 90")
	}
}

func TestExchangeNilSafe(t *testing.T) {
	var ex *Exchange
	if ex.OfferIncumbent(1) || ex.OfferBound(1) || ex.Decided() {
		t.Fatal("nil exchange accepted an offer or decided")
	}
	if _, ok := ex.Incumbent(); ok {
		t.Fatal("nil exchange reports an incumbent")
	}
	if _, ok := ex.Bound(); ok {
		t.Fatal("nil exchange reports a bound")
	}
	if ex.Accepted() != 0 || ex.Offers() != 0 {
		t.Fatal("nil exchange reports nonzero counters")
	}
}

// TestExchangeStress hammers one exchange from many goroutines — the
// portfolio race's concurrency pattern with the contention turned up — and
// asserts the two monotonicity invariants the engines' pruning correctness
// rests on: the observed bound never regresses and the observed incumbent
// never worsens, under arbitrary interleavings of offers and reads.
func TestExchangeStress(t *testing.T) {
	ex := New()
	const (
		goroutines = 32
		offers     = 2000
	)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Deterministic per-goroutine offer stream mixing improving and
			// regressing values; interleaved reads check monotonicity.
			lastBound := int64(-1 << 62)
			lastInc := int64(1 << 59)
			seed := uint64(gi)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < offers; i++ {
				seed ^= seed << 13
				seed ^= seed >> 7
				seed ^= seed << 17
				v := int64(seed % 100000)
				ex.OfferBound(v)
				ex.OfferIncumbent(v + 50000)
				if b, ok := ex.Bound(); ok {
					if b < lastBound {
						errs <- "bound regressed"
						return
					}
					lastBound = b
				}
				if inc, ok := ex.Incumbent(); ok {
					if inc > lastInc {
						errs <- "incumbent worsened"
						return
					}
					lastInc = inc
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Post-race state: the maxima/minima of all offered values.
	inc, ok := ex.Incumbent()
	if !ok {
		t.Fatal("no incumbent after stress")
	}
	b, ok := ex.Bound()
	if !ok {
		t.Fatal("no bound after stress")
	}
	// Every incumbent offered was bound+50000 for the same value stream, so
	// the final max bound >= final min incumbent - 50000 must hold.
	if b < inc-50000 {
		t.Fatalf("final bound %d inconsistent with incumbent %d", b, inc)
	}
	if ex.Accepted() > ex.Offers() {
		t.Fatalf("accepted %d > offers %d", ex.Accepted(), ex.Offers())
	}
}
