// Package xchg is the incumbent/bound meeting point of a portfolio race:
// two exact engines (the CDC branch-and-bound in internal/core and the MILP
// branch-and-bound in internal/ilp) solve the same instance concurrently and
// publish what they prove as they go. The exchange keeps exactly two scalars —
// the best integer-feasible objective found by anyone (a CAS-min) and the
// strongest proven global lower bound (a CAS-max) — so the engines can prune
// against each other's incumbents and terminate jointly the moment the bound
// meets the incumbent, without sharing any solution structure.
//
// Exactness is preserved by construction: an offered incumbent must be the
// objective of a verified feasible solution, and an offered bound must be a
// valid lower bound on the optimum of the *whole* instance (not of a subtree).
// Under those contracts the incumbent is non-increasing, the bound is
// non-decreasing, and Decided() — bound >= incumbent — certifies that the
// incumbent objective is optimal no matter which engine contributed which
// half of the proof.
//
// All methods are safe for concurrent use and are no-ops (reporting absence)
// on a nil receiver, so solvers call them unguarded.
package xchg

import "sync/atomic"

// noIncumbent and noBound are the empty-state sentinels. They sit well inside
// the int64 range so that the comparisons in Decided cannot overflow, and far
// outside any real routing objective (costs are bounded by arc-count x
// max-arc-cost, orders of magnitude below 2^60).
const (
	noIncumbent = int64(1) << 60
	noBound     = -(int64(1) << 60)
)

// Exchange is one race's shared incumbent/bound state.
type Exchange struct {
	incumbent atomic.Int64 // best feasible objective offered (CAS-min)
	bound     atomic.Int64 // strongest global lower bound offered (CAS-max)
	accepted  atomic.Int64 // incumbent offers that improved the exchange
	offers    atomic.Int64 // incumbent offers, accepted or not
}

// New returns an empty exchange (no incumbent, no bound).
func New() *Exchange {
	ex := &Exchange{}
	ex.incumbent.Store(noIncumbent)
	ex.bound.Store(noBound)
	return ex
}

// OfferIncumbent publishes the objective of a verified feasible solution.
// It reports whether the offer strictly improved the shared incumbent.
func (ex *Exchange) OfferIncumbent(cost int64) bool {
	if ex == nil {
		return false
	}
	ex.offers.Add(1)
	for {
		cur := ex.incumbent.Load()
		if cost >= cur {
			return false
		}
		if ex.incumbent.CompareAndSwap(cur, cost) {
			ex.accepted.Add(1)
			return true
		}
	}
}

// Incumbent returns the best objective offered so far, if any.
func (ex *Exchange) Incumbent() (int64, bool) {
	if ex == nil {
		return 0, false
	}
	v := ex.incumbent.Load()
	return v, v != noIncumbent
}

// OfferBound publishes a proven global lower bound on the optimum. It reports
// whether the offer strictly improved the shared bound. The shared bound is
// monotone: a weaker offer never lowers it.
func (ex *Exchange) OfferBound(lb int64) bool {
	if ex == nil {
		return false
	}
	for {
		cur := ex.bound.Load()
		if lb <= cur {
			return false
		}
		if ex.bound.CompareAndSwap(cur, lb) {
			return true
		}
	}
}

// Bound returns the strongest global lower bound offered so far, if any.
func (ex *Exchange) Bound() (int64, bool) {
	if ex == nil {
		return 0, false
	}
	v := ex.bound.Load()
	return v, v != noBound
}

// Decided reports whether the race is settled: a feasible incumbent exists
// and the proven global bound has reached it, so the incumbent objective is
// optimal. Engines poll it to terminate jointly before either finishes its
// own tree.
func (ex *Exchange) Decided() bool {
	if ex == nil {
		return false
	}
	inc := ex.incumbent.Load()
	return inc != noIncumbent && ex.bound.Load() >= inc
}

// Accepted returns how many incumbent offers improved the exchange — the
// "incumbent exchanges" telemetry of a portfolio solve.
func (ex *Exchange) Accepted() int64 {
	if ex == nil {
		return 0
	}
	return ex.accepted.Load()
}

// Offers returns how many incumbent offers were made in total.
func (ex *Exchange) Offers() int64 {
	if ex == nil {
		return 0
	}
	return ex.offers.Load()
}
