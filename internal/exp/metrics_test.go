package exp

import (
	"math"
	"testing"
	"time"

	"optrouter/internal/tech"
)

func TestSpearmanBasics(t *testing.T) {
	// Perfectly monotone series correlate at 1.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if got := spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("monotone spearman = %v", got)
	}
	// Reversed series correlate at -1.
	c := []float64{5, 4, 3, 2, 1}
	if got := spearman(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("reversed spearman = %v", got)
	}
	// Constant series yields 0 (undefined variance).
	d := []float64{7, 7, 7, 7, 7}
	if got := spearman(a, d); got != 0 {
		t.Fatalf("constant spearman = %v", got)
	}
}

func TestRanksHandleTies(t *testing.T) {
	r := ranks([]float64{3, 1, 3, 2})
	// Sorted: 1(rank1), 2(rank2), 3,3 (ranks 3,4 -> 3.5 each).
	want := []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestMetricStudy(t *testing.T) {
	mc, err := MetricStudy(tech.N28T8(), MetricStudyOptions{
		Size: 180, MaxWindows: 8, Budget: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Windows) == 0 {
		t.Fatal("no windows compared")
	}
	for _, w := range mc.Windows {
		if w.Congestion < 0 || w.PinCost < 0 {
			t.Fatalf("negative score: %+v", w)
		}
		if w.Delta < 0 {
			t.Fatalf("negative delta (rules only constrain): %+v", w)
		}
	}
	if mc.PinCostCorr < -1 || mc.PinCostCorr > 1 || mc.CongestionCorr < -1 || mc.CongestionCorr > 1 {
		t.Fatalf("correlations out of range: %v %v", mc.PinCostCorr, mc.CongestionCorr)
	}
	if mc.Rule != "RULE8" {
		t.Fatalf("rule = %s", mc.Rule)
	}
}
