package exp

import (
	"testing"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/tech"
)

// BenchmarkRuleSweepClip measures one full rule-evaluation sweep of a single
// clip — the per-clip job of DeltaCostStudy: all rule configurations solved
// sequentially with a shared Steiner arena. This is the unit of work the
// experiment pipeline scales by, so it is the headline number for sweep
// throughput.
func BenchmarkRuleSweepClip(b *testing.B) {
	opt := clip.DefaultSynth(3)
	opt.NX, opt.NY, opt.NZ = 4, 5, 3
	opt.NumNets = 3
	opt.MaxSinks = 2
	c := clip.Synthesize(opt)
	c.Tech = "N28-12T"
	tt := tech.N28T12()
	sopt := SolveOptions{PerClipTimeout: 30 * time.Second, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DeltaCostStudy(tt, []*clip.Clip{c}, sopt); err != nil {
			b.Fatal(err)
		}
	}
}
