package exp

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"optrouter/internal/report"
	"optrouter/internal/tech"
)

// TestDeltaCostStudyDeterministic is the determinism golden test: the study
// must produce byte-identical curves and CSV output for any worker count.
// Budgets are generous relative to the tiny seed-pinned clips so every solve
// terminates by optimality proof — time-truncated solves are load-dependent
// and outside the determinism contract (see README "Parallel evaluation").
func TestDeltaCostStudyDeterministic(t *testing.T) {
	tb := quickTB(t, tech.N28T12())
	clips := tb.Top
	if len(clips) > 3 {
		clips = clips[:3]
	}
	opt := SolveOptions{PerClipTimeout: 60 * time.Second}

	opt.Workers = 1
	curves1, res1, err := DeltaCostStudy(tb.Tech, clips, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	curves8, res8, err := DeltaCostStudy(tb.Tech, clips, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, cu := range curves1 {
		if cu.Unproven > 0 {
			t.Fatalf("%s: %d unproven solves — budget too small for the determinism check", cu.Rule, cu.Unproven)
		}
	}
	if !reflect.DeepEqual(curves1, curves8) {
		t.Fatalf("curves differ between -j 1 and -j 8:\n%+v\nvs\n%+v", curves1, curves8)
	}

	// The per-cell results must also agree in study order, modulo wall-time.
	if len(res1) != len(res8) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(res8))
	}
	for i := range res1 {
		a, b := res1[i], res8[i]
		a.Runtime, b.Runtime = 0, 0
		// Only the wall-clock telemetry may differ; search counters must not.
		a.Stats.Elapsed, b.Stats.Elapsed = 0, 0
		a.Stats.LPTime, b.Stats.LPTime = 0, 0
		a.Stats.DRCTime, b.Stats.DRCTime = 0, 0
		a.Stats.Phases, b.Stats.Phases = nil, nil
		a.Stats.LPPhases, b.Stats.LPPhases = nil, nil
		a.Stats.BoundTrace, b.Stats.BoundTrace = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("result[%d] differs:\n%+v\nvs\n%+v", i, res1[i], res8[i])
		}
	}

	// Byte-identical Fig. 10 CSV, exactly as cmd/beoleval writes it.
	csv := func(curves []RuleCurve) []byte {
		var series []report.Series
		for _, cu := range curves {
			series = append(series, report.Series{Name: cu.Rule, Values: cu.Deltas})
		}
		var buf bytes.Buffer
		if err := report.WriteSeriesCSV(&buf, series); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if b1, b8 := csv(curves1), csv(curves8); !bytes.Equal(b1, b8) {
		t.Fatalf("CSV output differs between -j 1 and -j 8:\n%s\nvs\n%s", b1, b8)
	}
}

// TestDeltaCostStudyParDeterministic is the in-solve counterpart of the
// worker-count golden above: the round-parallel BnB engine must leave the
// study output byte-identical between -par 1 and -par 8, per the engine's
// determinism guarantee (fixed round width, total node order; see
// internal/core/parbnb.go). Scheduling-dependent telemetry (cache hits,
// per-worker splits, steal counts, wall times) is excluded; everything the
// study publishes — curves, CSV, answers, search counters — must match.
func TestDeltaCostStudyParDeterministic(t *testing.T) {
	tb := quickTB(t, tech.N28T12())
	clips := tb.Top
	if len(clips) > 2 {
		clips = clips[:2]
	}
	opt := SolveOptions{PerClipTimeout: 60 * time.Second, Workers: 1}

	opt.Par = 1
	curves1, res1, err := DeltaCostStudy(tb.Tech, clips, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Par = 8
	curves8, res8, err := DeltaCostStudy(tb.Tech, clips, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, cu := range curves1 {
		if cu.Unproven > 0 {
			t.Fatalf("%s: %d unproven solves — budget too small for the determinism check", cu.Rule, cu.Unproven)
		}
	}
	if !reflect.DeepEqual(curves1, curves8) {
		t.Fatalf("curves differ between -par 1 and -par 8:\n%+v\nvs\n%+v", curves1, curves8)
	}
	if len(res1) != len(res8) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(res8))
	}
	for i := range res1 {
		a, b := res1[i], res8[i]
		if a.Feasible != b.Feasible || a.Proven != b.Proven || a.Cost != b.Cost ||
			a.WL != b.WL || a.Vias != b.Vias || a.Nodes != b.Nodes {
			t.Fatalf("result[%d] answers differ between -par 1 and -par 8:\n%+v\nvs\n%+v", i, a, b)
		}
		// Deterministic search counters (see core's determinism guarantee).
		sa, sb := a.Stats, b.Stats
		if sa.MaxDepth != sb.MaxDepth || sa.Incumbents != sb.Incumbents ||
			sa.BansGenerated != sb.BansGenerated || sa.DRCChecks != sb.DRCChecks ||
			sa.LagrangianRounds != sb.LagrangianRounds || sa.Dives != sb.Dives {
			t.Fatalf("result[%d] search counters differ between -par 1 and -par 8", i)
		}
		if sa.Par != 1 || sb.Par != 8 {
			t.Fatalf("result[%d] Stats.Par = %d/%d, want 1/8", i, sa.Par, sb.Par)
		}
	}

	csv := func(curves []RuleCurve) []byte {
		var series []report.Series
		for _, cu := range curves {
			series = append(series, report.Series{Name: cu.Rule, Values: cu.Deltas})
		}
		var buf bytes.Buffer
		if err := report.WriteSeriesCSV(&buf, series); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if b1, b8 := csv(curves1), csv(curves8); !bytes.Equal(b1, b8) {
		t.Fatalf("CSV output differs between -par 1 and -par 8:\n%s\nvs\n%s", b1, b8)
	}
}

// TestPortfolioStudyAnswers: the portfolio mode must leave study answers
// (feasibility, proof, cost) identical to the plain study — routes and
// engine-specific telemetry are race outcomes, but the objective is exact.
func TestPortfolioStudyAnswers(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio study races both engines per cell; skip in -short")
	}
	tb := quickTB(t, tech.N28T12())
	clips := tb.Top
	if len(clips) > 1 {
		clips = clips[:1]
	}
	opt := SolveOptions{PerClipTimeout: 60 * time.Second, Workers: 1}
	curves, res, err := DeltaCostStudy(tb.Tech, clips, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Portfolio = true
	pcurves, pres, err := DeltaCostStudy(tb.Tech, clips, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(pres) {
		t.Fatalf("result counts differ: %d vs %d", len(res), len(pres))
	}
	for i := range res {
		a, b := res[i], pres[i]
		if !a.Proven || !b.Proven {
			t.Logf("cell %d (%s/%s) unproven (plain=%v portfolio=%v); answers not comparable",
				i, a.Clip, a.Rule, a.Proven, b.Proven)
			continue
		}
		if a.Feasible != b.Feasible || (a.Feasible && a.Cost != b.Cost) {
			t.Errorf("cell %d (%s/%s): plain (feasible=%v cost=%d) vs portfolio (feasible=%v cost=%d)",
				i, a.Clip, a.Rule, a.Feasible, a.Cost, b.Feasible, b.Cost)
		}
		if b.Stats.Winner == "" {
			t.Errorf("cell %d: portfolio result names no winner", i)
		}
	}
	if !reflect.DeepEqual(curveDeltas(curves), curveDeltas(pcurves)) {
		t.Errorf("delta curves differ between plain and portfolio studies")
	}
}

// curveDeltas projects curves onto their sorted delta values only.
func curveDeltas(curves []RuleCurve) [][]float64 {
	out := make([][]float64, len(curves))
	for i, cu := range curves {
		out[i] = cu.Deltas
	}
	return out
}

// TestProgressAccounting pins the progress contract of the parallel study:
// the callback is never invoked concurrently with itself, Index/Total are
// the solve's fixed study-order position (rule-major over clips) rather
// than dispatch order, and Done/InFlight are consistent aggregates with
// InFlight bounded by the worker count.
func TestProgressAccounting(t *testing.T) {
	tb := quickTB(t, tech.N28T12())
	clips := tb.Top
	if len(clips) > 2 {
		clips = clips[:2]
	}
	const workers = 4

	var mu sync.Mutex
	inCallback := false
	var events []ClipProgress
	opt := SolveOptions{
		PerClipTimeout: 30 * time.Second,
		Workers:        workers,
		Progress: func(p ClipProgress) {
			mu.Lock()
			if inCallback {
				mu.Unlock()
				t.Error("Progress invoked concurrently")
				return
			}
			inCallback = true
			mu.Unlock()
			events = append(events, p)
			mu.Lock()
			inCallback = false
			mu.Unlock()
		},
	}
	curves, results, err := DeltaCostStudy(tb.Tech, clips, opt)
	if err != nil {
		t.Fatal(err)
	}
	total := len(curves) * len(clips)
	if len(results) != total {
		t.Fatalf("results = %d, want %d", len(results), total)
	}

	starts, dones := 0, 0
	lastDone := 0
	for _, p := range events {
		if p.Total != total {
			t.Fatalf("Total = %d, want %d", p.Total, total)
		}
		if p.Index < 1 || p.Index > total {
			t.Fatalf("Index = %d out of range [1,%d]", p.Index, total)
		}
		// Index is the study-order position: cells are rule-major over the
		// clip list, so the clip at Index i is clips[(i-1) % len(clips)] and
		// the rule is curves[(i-1) / len(clips)].Rule.
		if want := clips[(p.Index-1)%len(clips)].Name; p.Clip != want {
			t.Fatalf("Index %d carries clip %s, study order says %s", p.Index, p.Clip, want)
		}
		if want := curves[(p.Index-1)/len(clips)].Rule; p.Rule != want {
			t.Fatalf("Index %d carries rule %s, study order says %s", p.Index, p.Rule, want)
		}
		if p.InFlight < 0 || p.InFlight > workers {
			t.Fatalf("InFlight = %d with %d workers", p.InFlight, workers)
		}
		if p.Done < lastDone {
			t.Fatalf("Done regressed: %d after %d", p.Done, lastDone)
		}
		lastDone = p.Done
		switch p.Phase {
		case "start":
			starts++
		case "done":
			dones++
			if p.Result == nil {
				t.Fatal("done event without Result")
			}
			if p.Result.Clip != p.Clip || p.Result.Rule != p.Rule {
				t.Fatalf("done event result (%s,%s) != event (%s,%s)",
					p.Result.Clip, p.Result.Rule, p.Clip, p.Rule)
			}
		}
	}
	if starts != total || dones != total {
		t.Fatalf("starts=%d dones=%d, want %d each", starts, dones, total)
	}
	last := events[len(events)-1]
	if last.Done != total || last.InFlight != 0 {
		t.Fatalf("final event Done=%d InFlight=%d", last.Done, last.InFlight)
	}
}
