package exp

import (
	"testing"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/tech"
)

func TestSolveClipTimeoutClassification(t *testing.T) {
	// A rule-heavy synthetic clip with a sub-millisecond budget: the result
	// must be either proven or flagged unproven — never a silent wrong
	// answer.
	opt := clip.DefaultSynth(11)
	opt.NX, opt.NY, opt.NZ = 6, 7, 4
	opt.NumNets = 4
	c := clip.Synthesize(opt)
	rule8, _ := tech.RuleByName("RULE8")
	r, err := SolveClip(c, rule8, SolveOptions{PerClipTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible && r.Cost <= 0 {
		t.Fatalf("feasible with nonpositive cost: %+v", r)
	}
	if !r.Feasible && r.Proven {
		// Proven infeasibility within 1ms is possible only via the probe;
		// accept but sanity-check runtime accounting.
		if r.Runtime <= 0 {
			t.Fatal("zero runtime recorded")
		}
	}
}

func TestQuickAndFullPresetsDiffer(t *testing.T) {
	q := QuickTestbed()
	f := FullTestbed()
	if f.TopK <= q.TopK {
		t.Error("full preset should keep more clips")
	}
	if f.ClipNZ <= q.ClipNZ {
		t.Error("full preset should use a deeper stack")
	}
	if f.Designs[0].Size <= q.Designs[0].Size {
		t.Error("full preset should use larger designs")
	}
	if q.ClipW != 7 || q.ClipH != 10 {
		t.Error("quick preset must keep the paper's 7x10 clip window")
	}
}

func TestBuildTestbedUnknownProfile(t *testing.T) {
	opt := QuickTestbed()
	opt.Designs = []DesignSpec{{Profile: "NOPE", Size: 100, Utils: []float64{0.9}}}
	if _, err := BuildTestbed(tech.N28T12(), opt); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestDeltaCostStudyRequiresRule1First(t *testing.T) {
	// RulesFor always yields RULE1 first; the guard protects against a
	// future reordering. Exercise it via a tech whose rule list we trust.
	tb := quickTB(t, tech.N28T12())
	if len(tb.Top) == 0 {
		t.Skip("no clips")
	}
	curves, _, err := DeltaCostStudy(tb.Tech, tb.Top[:1], SolveOptions{PerClipTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if curves[0].Rule != "RULE1" {
		t.Fatal("RULE1 not first")
	}
}

func TestTable2RecordsCarryPeriods(t *testing.T) {
	tb := quickTB(t, tech.N7T9())
	for _, r := range tb.Records {
		if r.PeriodNS <= 0 {
			t.Fatalf("record %s-%.2f has no period", r.Design, r.Util)
		}
	}
}

func TestTopClipsComeFromMultipleDesigns(t *testing.T) {
	// The paper selects top clips "from across all design implementations";
	// with balanced synthetic designs the top set should not be a single
	// design's monopoly (weak check: at least clips exist from >= 1 design
	// and ranking is global).
	tb := quickTB(t, tech.N28T12())
	if len(tb.AllClips) <= len(tb.Top) {
		t.Skip("too few clips for a meaningful check")
	}
	minTop := tb.Top[len(tb.Top)-1].PinCost
	for _, c := range tb.AllClips {
		if c.PinCost > minTop+1e-9 {
			in := false
			for _, tc := range tb.Top {
				if tc == c {
					in = true
					break
				}
			}
			if !in {
				t.Fatalf("clip %s (cost %.1f) outranks the top set's minimum %.1f but was excluded",
					c.Name, c.PinCost, minTop)
			}
		}
	}
}
