package exp

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"optrouter/internal/calib"
	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/ilp"
	"optrouter/internal/lp"
	"optrouter/internal/obs"
	"optrouter/internal/report"
	"optrouter/internal/rgraph"
	"optrouter/internal/sched"
	"optrouter/internal/tech"
)

// BenchSpec is one pinned benchmark case: a synthesized clip (fully
// determined by the seed and dimensions) solved under one rule with one
// solver. The corpus is versioned by construction — identical specs produce
// identical instances on every checkout — so BENCH_<n>.json documents are
// comparable across the repository's history.
type BenchSpec struct {
	Name       string // case name, unique per (spec, solver)
	Seed       int64
	NX, NY, NZ int
	Nets       int
	Sinks      int // MaxSinks
	Rule       string
	Solver     string // "bnb", "ilp" or "portfolio"
	// Par is the in-solve worker count for bnb and portfolio cases (0 =
	// serial engine). The parallel engine is deterministic, so a par twin of a
	// serial case must report the identical answer — the corpus exploits this
	// as a standing cross-check.
	Par int
}

// BenchCorpus returns the pinned corpus. The short corpus is the CI gate
// (about a second); the full corpus is what cmd/benchrun commits as a
// trajectory point: feasible searches from tens to thousands of BnB nodes,
// proven-infeasible searches (the expensive half of rule-impact evaluation),
// and MILP cases with enough simplex iterations to make the LP-phase
// breakdown meaningful. Instances were picked from a seed×dims×rule
// feasibility scan; dims/seed/rule pin each one exactly.
func BenchCorpus(short bool) []BenchSpec {
	mk := func(nx, ny, nz int, seed int64, rule, solver string) BenchSpec {
		return BenchSpec{
			Name: fmt.Sprintf("%dx%dx%d-s%d-%s-%s", nx, ny, nz, seed, rule, solver),
			Seed: seed, NX: nx, NY: ny, NZ: nz, Nets: 3, Sinks: 2,
			Rule: rule, Solver: solver,
		}
	}
	// mkPar is a par-N twin of a bnb case: same instance, the deterministic
	// round-parallel engine on par workers. Its answer must match the serial
	// case's exactly (the -baseline gate enforces this across trajectory
	// points, the determinism goldens within one revision).
	mkPar := func(nx, ny, nz int, seed int64, rule string, par int) BenchSpec {
		s := mk(nx, ny, nz, seed, rule, "bnb")
		s.Name = fmt.Sprintf("%s-par%d", s.Name, par)
		s.Par = par
		return s
	}
	if short {
		return []BenchSpec{
			mk(6, 7, 4, 3, "RULE8", "bnb"),        // feasible, ~400-node search
			mk(6, 7, 4, 8, "RULE7", "bnb"),        // feasible, ~100-node search
			mk(5, 6, 3, 4, "RULE7", "bnb"),        // proven infeasible, ~1300 nodes
			mk(4, 5, 3, 10, "RULE1", "ilp"),       // feasible, ~13k simplex iters
			mkPar(6, 7, 4, 3, "RULE8", 8),         // par-8 twin of the first case
			mk(4, 5, 3, 10, "RULE1", "portfolio"), // portfolio twin of the ilp case
		}
	}
	return []BenchSpec{
		// Trivial baseline: the relaxed rule routes at the root node.
		mk(6, 7, 4, 3, "RULE1", "bnb"),
		// Feasible searches, ~100 to ~4000 nodes.
		mk(6, 7, 4, 3, "RULE7", "bnb"),
		mk(6, 7, 4, 3, "RULE8", "bnb"),
		mk(6, 7, 4, 6, "RULE7", "bnb"),
		mk(6, 7, 4, 6, "RULE8", "bnb"),
		mk(6, 7, 4, 8, "RULE7", "bnb"),
		mk(6, 7, 4, 10, "RULE8", "bnb"),
		mk(7, 10, 4, 1, "RULE7", "bnb"),
		mk(7, 10, 4, 9, "RULE8", "bnb"),
		mk(7, 10, 4, 10, "RULE7", "bnb"),
		// The big case: a multi-thousand-node search, seconds of wall time.
		mk(7, 10, 4, 3, "RULE8", "bnb"),
		// Proven-infeasible searches (restrictive rules kill the clip).
		mk(5, 6, 3, 4, "RULE7", "bnb"),
		mk(5, 6, 3, 7, "RULE8", "bnb"),
		// MILP trajectory points, root-only through ~70-node trees.
		mk(4, 5, 3, 3, "RULE1", "ilp"),
		mk(4, 5, 3, 10, "RULE1", "ilp"),
		mk(5, 6, 3, 1, "RULE1", "ilp"),
		mk(5, 6, 3, 2, "RULE8", "ilp"),
		mk(5, 6, 3, 3, "RULE7", "ilp"), // infeasible at the root relaxation
		// Par-8 twins of the node-heavy searches: the deterministic parallel
		// engine on the same instances (answers must equal the serial rows).
		mkPar(6, 7, 4, 3, "RULE8", 8),
		mkPar(7, 10, 4, 3, "RULE8", 8),
		mkPar(5, 6, 3, 4, "RULE7", 8),
		// Portfolio twins of the MILP trajectory points: the race should win
		// by whichever engine proves first, pruning the loser via the shared
		// exchange.
		mk(4, 5, 3, 3, "RULE1", "portfolio"),
		mk(4, 5, 3, 10, "RULE1", "portfolio"),
		mk(5, 6, 3, 1, "RULE1", "portfolio"),
		mk(5, 6, 3, 2, "RULE8", "portfolio"),
		mk(5, 6, 3, 3, "RULE7", "portfolio"),
	}
}

// BenchRunOptions tunes RunBenchCorpus.
type BenchRunOptions struct {
	Timeout time.Duration // per-case solve budget (default 30s)
	Workers int           // scheduler workers (0 = NumCPU)
	Corpus  string        // "short" or "full", recorded in the document
	// Tracer, if non-nil, receives every case's solve span (hand it a
	// rotating tracer to bound the output of long corpus runs).
	Tracer *obs.Tracer
	// Flight configures per-node search-event recording on the solve spans
	// (effective only with a Tracer). Off by default: the benchmark exists to
	// measure the solvers, and recording costs wall time.
	Flight obs.FlightOptions
	// LP tunes the MILP engine's LP subsolver for the ilp and portfolio
	// cases (the bnb cases never touch it). CollectPhases is forced on for
	// ilp cases regardless — the document records the LP phase breakdown.
	LP lp.Options
	// Calibration, if non-nil, is stamped into the document's calibration
	// block as-is (cmd/benchrun runs the probe suite once up front and
	// shares the result with its progress output). Nil runs the suite here:
	// schema v5 documents always carry the block.
	Calibration *report.BenchCalibration
	// Sampler, if non-nil, profiles each case through a sampling window and
	// attaches the top-N frame summary to the case. Attribution matches the
	// per-case runtime deltas: exact under one worker, approximate under
	// parallel workers.
	Sampler *obs.Sampler
	// ProfileTopN caps the per-case profile at the N hottest functions
	// (default 15).
	ProfileTopN int
	// ProfileW, if non-nil, additionally receives one JSONL record per
	// sampled case (the -sample stream cmd/traceview renders).
	ProfileW *report.ProfileWriter
}

// RunBenchCorpus solves every spec and assembles the schema-versioned
// benchmark document. Case failures (budget exhaustion, panics) are recorded
// in the document rather than aborting the run, so a trajectory point is
// always produced; the error return is reserved for invalid specs.
func RunBenchCorpus(ctx context.Context, specs []BenchSpec, opt BenchRunOptions) (*report.BenchDoc, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 30 * time.Second
	}
	for _, s := range specs {
		if _, ok := tech.RuleByName(s.Rule); !ok {
			return nil, fmt.Errorf("exp: bench spec %q: unknown rule %s", s.Name, s.Rule)
		}
		switch s.Solver {
		case "bnb", "ilp", "portfolio":
		default:
			return nil, fmt.Errorf("exp: bench spec %q: unknown solver %s", s.Name, s.Solver)
		}
		if s.Par != 0 && s.Solver == "ilp" {
			return nil, fmt.Errorf("exp: bench spec %q: par applies to bnb/portfolio only", s.Name)
		}
	}

	// Machine calibration before the corpus runs: the document must say what
	// hardware state produced its wall clocks (schema v5).
	calibration := opt.Calibration
	if calibration == nil {
		res := calib.Run(calib.Options{})
		calibration = &report.BenchCalibration{
			ProbesNs: res.ProbesNs(), ScoreNs: res.ScoreNs, WallMS: res.WallMS,
		}
	}

	jobs := make([]sched.Job[report.BenchCase], len(specs))
	for i := range specs {
		s := specs[i]
		jobs[i] = func(jctx context.Context) (report.BenchCase, error) {
			return runBenchCase(jctx, s, opt)
		}
	}

	// Go runtime profile of the run (schema v3): process-wide deltas from
	// here to after the sweep, plus a 10ms heap-in-use sampler for the peak.
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	stopPeak := make(chan struct{})
	peakCh := make(chan float64, 1)
	go func() {
		peak := float64(ms0.HeapInuse) / (1 << 20)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stopPeak:
				peakCh <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if h := float64(ms.HeapInuse) / (1 << 20); h > peak {
					peak = h
				}
			}
		}
	}()

	results := sched.Run(ctx, jobs, sched.Options{Workers: opt.Workers})

	close(stopPeak)
	peakMB := <-peakCh
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	doc := &report.BenchDoc{
		SchemaVersion: report.BenchSchemaVersion,
		Corpus:        opt.Corpus,
		GoVersion:     runtime.Version(),
		Workers:       opt.Workers,
		Runtime: &report.BenchRuntime{
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			TotalAllocMB: float64(ms1.TotalAlloc-ms0.TotalAlloc) / (1 << 20),
			GCPauseMS:    float64(ms1.PauseTotalNs-ms0.PauseTotalNs) / 1e6,
			NumGC:        int(ms1.NumGC - ms0.NumGC),
			PeakHeapMB:   peakMB,
		},
		Calibration: calibration,
	}
	for i, r := range results {
		bc := r.Value
		if r.Err != nil {
			bc = report.BenchCase{
				Name: specs[i].Name, Rule: specs[i].Rule, Solver: specs[i].Solver,
				Err: r.Err.Error(),
			}
		}
		doc.Cases = append(doc.Cases, bc)
	}
	doc.Finalize()
	return doc, nil
}

// runBenchCase synthesizes and solves one pinned instance.
func runBenchCase(ctx context.Context, s BenchSpec, opt BenchRunOptions) (report.BenchCase, error) {
	sopt := clip.DefaultSynth(s.Seed)
	sopt.NX, sopt.NY, sopt.NZ = s.NX, s.NY, s.NZ
	sopt.NumNets = s.Nets
	sopt.MaxSinks = s.Sinks
	c := clip.Synthesize(sopt)
	c.Tech = "N28-12T"

	rule, _ := tech.RuleByName(s.Rule)
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		return report.BenchCase{}, err
	}

	// Runtime deltas across the solve. The counters are process-global:
	// exact under one worker, approximate under parallel workers (see the
	// BenchCase field docs). The sampling window shares that attribution
	// model (nil-safe when sampling is off).
	pw := opt.Sampler.Window()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	var sol *core.Solution
	switch s.Solver {
	case "bnb":
		sol, err = core.SolveBnB(g, core.BnBOptions{
			TimeLimit: opt.Timeout, Ctx: ctx, Par: s.Par,
			Tracer: opt.Tracer, Flight: opt.Flight,
		})
	case "ilp":
		lpOpt := opt.LP
		lpOpt.CollectPhases = true
		sol, err = core.SolveILP(g, ilp.Options{
			TimeLimit: opt.Timeout,
			Ctx:       ctx,
			LP:        lpOpt,
			Tracer:    opt.Tracer,
			Flight:    opt.Flight,
		})
	case "portfolio":
		sol, err = core.SolvePortfolio(g, core.BnBOptions{
			TimeLimit: opt.Timeout, Ctx: ctx, Par: s.Par, LP: opt.LP,
			Tracer: opt.Tracer, Flight: opt.Flight,
		})
	}

	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	bc := report.BenchCase{Name: s.Name, Rule: s.Rule, Solver: s.Solver, Par: s.Par}
	bc.AllocMB = float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20)
	bc.GCPauseMS = float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6
	bc.NumGC = int(m1.NumGC - m0.NumGC)
	topN := opt.ProfileTopN
	if topN <= 0 {
		topN = 15
	}
	if p := pw.End(topN); opt.Sampler != nil {
		bp := &report.BenchProfile{Hz: p.Hz, Samples: p.Samples}
		for _, f := range p.Funcs {
			bp.Funcs = append(bp.Funcs, report.BenchFuncSample{Fn: f.Fn, Self: f.Self, Cum: f.Cum})
		}
		bc.Profile = bp
	}
	if err != nil {
		bc.Err = err.Error()
		return bc, nil
	}
	st := sol.Stats
	bc.Feasible = sol.Feasible
	bc.Proven = sol.Proven
	bc.Cost = sol.Cost
	bc.Winner = st.Winner
	bc.WallMS = float64(st.Elapsed.Microseconds()) / 1000
	bc.Nodes = st.Nodes
	bc.MaxDepth = st.MaxDepth
	bc.LPSolves = st.LPSolves
	bc.SimplexIters = st.LPIters
	bc.Rows = st.ModelRows
	bc.Cols = st.ModelCols
	bc.NNZ = st.ModelNNZ
	bc.PhasesMS = st.Phases.MS()
	bc.LPPhasesMS = st.LPPhases.MS()
	bc.Work = benchWork(s, st)
	// Pricing/presolve telemetry rides only on ilp cases (the portfolio race
	// is scheduling-dependent) and only when any counter is nonzero, so
	// Dantzig/no-presolve reference runs produce documents without the block.
	if s.Solver == "ilp" && (st.LPCandidateHits > 0 || st.LPRefResets > 0 ||
		st.LPDualBoundFlips > 0 || st.PresolveRows > 0 || st.PresolveCols > 0 ||
		st.LPRefactorEtaLen > 0 || st.LPRefactorFill > 0 ||
		st.LPRefactorPivotQuality > 0 || st.LPRefactorUpdateRejected > 0) {
		bc.LP = &report.BenchLPStats{
			CandidateHits:          st.LPCandidateHits,
			RefResets:              st.LPRefResets,
			DualBoundFlips:         st.LPDualBoundFlips,
			PresolveRows:           st.PresolveRows,
			PresolveCols:           st.PresolveCols,
			RefactorEtaLen:         st.LPRefactorEtaLen,
			RefactorFill:           st.LPRefactorFill,
			RefactorPivotQuality:   st.LPRefactorPivotQuality,
			RefactorUpdateRejected: st.LPRefactorUpdateRejected,
		}
	}
	if bc.Profile != nil && opt.ProfileW != nil {
		perr := opt.ProfileW.Write(report.ProfileRecord{
			Clip: s.Name, Rule: s.Rule, Solver: s.Solver,
			WallMS: bc.WallMS, Hz: bc.Profile.Hz, Samples: bc.Profile.Samples,
			Funcs: bc.Profile.Funcs,
		})
		if perr != nil {
			return bc, perr
		}
	}
	return bc, nil
}

// benchWork assembles the case's deterministic work vector from the solve
// stats. Three counter sets exist because determinism shrinks with
// parallelism: the serial CDC-BnB pins every counter including the
// Steiner-DP ones; the round-parallel engine pins its search shape but not
// the Steiner cache traffic (route-cache hits depend on worker interleaving,
// so steiner_solves/steiner_cells move run to run — the deterministic set
// matches the projection TestParBnBDeterministic locks); portfolio races are
// scheduling-dependent end to end and record no vector at all.
func benchWork(s BenchSpec, st core.SolveStats) map[string]int64 {
	switch {
	case s.Solver == "portfolio":
		return nil
	case s.Solver == "ilp":
		return map[string]int64{
			"nodes":         int64(st.Nodes),
			"lp_solves":     int64(st.LPSolves),
			"simplex_iters": int64(st.LPIters),
			"ftran_nnz":     st.LPFTRANNnz,
			"btran_nnz":     st.LPBTRANNnz,
		}
	case s.Par > 0:
		return map[string]int64{
			"nodes":             int64(st.Nodes),
			"drc_checks":        int64(st.DRCChecks),
			"bans_generated":    int64(st.BansGenerated),
			"lagrangian_rounds": int64(st.LagrangianRounds),
			"dives":             int64(st.Dives),
		}
	default:
		return map[string]int64{
			"nodes":             int64(st.Nodes),
			"steiner_solves":    int64(st.SteinerSolves),
			"steiner_cells":     st.SteinerCells,
			"drc_checks":        int64(st.DRCChecks),
			"bans_generated":    int64(st.BansGenerated),
			"lagrangian_rounds": int64(st.LagrangianRounds),
			"dives":             int64(st.Dives),
		}
	}
}
