package exp

import (
	"fmt"
	"math"
	"sort"
	"time"

	"optrouter/internal/cells"
	"optrouter/internal/congestion"
	"optrouter/internal/extract"
	"optrouter/internal/netlist"
	"optrouter/internal/pincost"
	"optrouter/internal/place"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

// MetricWindow is one window with both difficulty scores and its measured
// rule sensitivity.
type MetricWindow struct {
	Clip       string
	PinCost    float64
	Congestion float64
	// Delta is the Δcost of the aggressive rule vs RULE1 on this window
	// (InfeasibleDelta when unroutable).
	Delta float64
}

// MetricComparison is the Section 5 "metric beyond Taghavi" study: does a
// demand-based congestion score predict switchbox rule-sensitivity better
// than the pin cost metric? For each extracted window both scores are
// computed, the window is solved under RULE1 and an aggressive rule, and
// the rank correlation of each metric with the realized Δcost is reported.
type MetricComparison struct {
	Windows []MetricWindow
	// Spearman rank correlations of each metric with Δcost.
	PinCostCorr    float64
	CongestionCorr float64
	Rule           string
}

// MetricStudyOptions scales the study.
type MetricStudyOptions struct {
	Size       int           // design instances (default 250)
	Util       float64       // target utilization (default 0.92)
	MaxWindows int           // windows evaluated (default 12)
	Rule       string        // aggressive rule (default RULE8)
	Budget     time.Duration // per-solve budget (default 10s)
	Seed       int64
}

func (o MetricStudyOptions) withDefaults() MetricStudyOptions {
	if o.Size == 0 {
		o.Size = 250
	}
	if o.Util == 0 {
		o.Util = 0.92
	}
	if o.MaxWindows == 0 {
		o.MaxWindows = 12
	}
	if o.Rule == "" {
		o.Rule = "RULE8"
	}
	if o.Budget == 0 {
		o.Budget = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// MetricStudy runs the comparison on one synthesized design.
func MetricStudy(t *tech.Technology, opt MetricStudyOptions) (*MetricComparison, error) {
	opt = opt.withDefaults()
	lib := cells.Generate(t)
	nl, err := netlist.Generate(lib, netlist.M0Class(opt.Size, opt.Seed))
	if err != nil {
		return nil, err
	}
	pl, err := place.Place(lib, nl, place.Options{TargetUtil: opt.Util})
	if err != nil {
		return nil, err
	}
	res, err := route.Route(pl, route.Options{Layers: 4})
	if err != nil {
		return nil, err
	}
	rule, ok := tech.RuleByName(opt.Rule)
	if !ok {
		return nil, fmt.Errorf("exp: unknown rule %q", opt.Rule)
	}

	ext := extract.Options{MaxNets: 5}.WithDefaults(res)
	clips := extract.All(res, ext)
	out := &MetricComparison{Rule: rule.Name}
	for _, c := range clips {
		if len(out.Windows) >= opt.MaxWindows {
			break
		}
		var ox, oy int
		if _, err := fmt.Sscanf(c.Name[len(nl.Name)+1:], "x%d-y%d", &ox, &oy); err != nil {
			return nil, fmt.Errorf("exp: window origin from %q: %v", c.Name, err)
		}
		base, err := SolveClip(c, tech.RuleConfig{Name: "RULE1"}, SolveOptions{PerClipTimeout: opt.Budget})
		if err != nil {
			return nil, err
		}
		if !base.Feasible {
			continue
		}
		r, err := SolveClip(c, rule, SolveOptions{PerClipTimeout: opt.Budget})
		if err != nil {
			return nil, err
		}
		delta := InfeasibleDelta
		if r.Feasible {
			delta = float64(r.Cost - base.Cost)
		}
		out.Windows = append(out.Windows, MetricWindow{
			Clip:       c.Name,
			PinCost:    pincost.Cost(c),
			Congestion: congestion.WindowScore(res, ox, oy, ext.WTracks, ext.HTracks, ext.NZ),
			Delta:      delta,
		})
	}
	if len(out.Windows) >= 3 {
		deltas := make([]float64, len(out.Windows))
		pcs := make([]float64, len(out.Windows))
		cgs := make([]float64, len(out.Windows))
		for i, w := range out.Windows {
			deltas[i] = w.Delta
			pcs[i] = w.PinCost
			cgs[i] = w.Congestion
		}
		out.PinCostCorr = spearman(pcs, deltas)
		out.CongestionCorr = spearman(cgs, deltas)
	}
	return out, nil
}

// spearman computes the Spearman rank correlation of two equal-length
// series (average ranks for ties).
func spearman(a, b []float64) float64 {
	ra := ranks(a)
	rb := ranks(b)
	return pearson(ra, rb)
}

func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
