package exp

import (
	"fmt"

	"optrouter/internal/cells"
	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// PinAccessResult reports one (cell, rule) pin-access verdict.
type PinAccessResult struct {
	Tech     string
	Cell     string
	Rule     string
	Feasible bool
	Proven   bool
	Cost     int
	Vias     int
}

// PinAccessClip builds the Fig. 9 scenario for one cell master: the cell's
// signal pins sit on M1 (below the routing layers) and each must escape
// through a V12 pin-access via to a distinct terminal on the top boundary.
// Via-adjacency rules constrain which access points can host vias
// simultaneously — for the scaled N7-9T pins (two close access points per
// pin) aggressive blocking makes the cell unpinnable, which is exactly why
// the paper excludes RULE2/7/9/10/11 from the N7 study.
func PinAccessClip(t *tech.Technology, cellName string) (*clip.Clip, error) {
	lib := cells.Generate(t)
	c, ok := lib.Cell(cellName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown cell %q", cellName)
	}
	pins := c.SignalPins()
	if len(pins) == 0 {
		return nil, fmt.Errorf("exp: cell %q has no signal pins", cellName)
	}
	nx := c.WidthSites + 2
	ny := t.TrackHeight
	cl := &clip.Clip{
		Name: fmt.Sprintf("pinaccess-%s-%s", t.Name, cellName),
		Tech: t.Name,
		NX:   nx, NY: ny, NZ: 4, MinLayer: 1,
	}
	for i, p := range pins {
		var aps []clip.AccessPoint
		for _, ap := range p.APs {
			if ap.X < 0 || ap.X >= nx || ap.Y < 0 || ap.Y >= ny {
				continue
			}
			aps = append(aps, clip.AccessPoint{X: ap.X, Y: ap.Y, Z: 0}) // M1 pin
		}
		if len(aps) == 0 {
			return nil, fmt.Errorf("exp: pin %s has no in-clip access points", p.Name)
		}
		// Escape terminal: top boundary, distinct columns per pin, on the
		// lowest routing layer.
		sink := clip.AccessPoint{X: (i + 1) % nx, Y: ny - 1, Z: 1}
		cl.Nets = append(cl.Nets, clip.Net{
			Name: p.Name,
			Pins: []clip.Pin{
				{Name: p.Name, APs: aps},
				{Name: p.Name + "_esc", APs: []clip.AccessPoint{sink}},
			},
		})
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	return cl, nil
}

// PinAccessStudy solves the escape problem for a cell under every standard
// rule (including the ones the paper excludes for N7, to demonstrate why).
func PinAccessStudy(t *tech.Technology, cellName string, opt SolveOptions) ([]PinAccessResult, error) {
	opt = opt.withDefaults()
	cl, err := PinAccessClip(t, cellName)
	if err != nil {
		return nil, err
	}
	var out []PinAccessResult
	for _, rule := range tech.StandardRules() {
		g, err := rgraph.Build(cl, rgraph.Options{Rule: rule})
		if err != nil {
			return nil, err
		}
		sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: opt.PerClipTimeout, MaxNodes: opt.MaxNodes})
		if err != nil {
			return nil, err
		}
		out = append(out, PinAccessResult{
			Tech: t.Name, Cell: cellName, Rule: rule.Name,
			Feasible: sol.Feasible, Proven: sol.Proven,
			Cost: sol.Cost, Vias: sol.Vias,
		})
	}
	return out, nil
}
