package exp

import (
	"testing"
	"time"

	"optrouter/internal/core"
	"optrouter/internal/ilp"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// Rule dominance: a configuration whose constraint set contains another's
// can never have a cheaper optimum. Pairs (stronger >= weaker):
//
//	RULE6 >= RULE1, RULE9 >= RULE6,
//	RULE2 >= RULE3 >= RULE4 >= RULE5 >= RULE1 (more SADP layers),
//	RULE7 >= RULE2, RULE7 >= RULE6, RULE8 >= RULE3, RULE8 >= RULE6,
//	RULE10 >= RULE7, RULE11 >= RULE8.
//
// This holds per clip for proven optima and ties the entire flow together:
// extraction, graph construction, constraint emission and the exact solver.
func TestRuleDominanceOnExtractedClips(t *testing.T) {
	tb := quickTB(t, tech.N28T12())
	clips := tb.Top
	if len(clips) > 3 {
		clips = clips[:3]
	}
	dominance := [][2]string{
		{"RULE6", "RULE1"}, {"RULE9", "RULE6"},
		{"RULE2", "RULE3"}, {"RULE3", "RULE4"}, {"RULE4", "RULE5"}, {"RULE5", "RULE1"},
		{"RULE7", "RULE2"}, {"RULE7", "RULE6"},
		{"RULE8", "RULE3"}, {"RULE8", "RULE6"},
		{"RULE10", "RULE7"}, {"RULE11", "RULE8"},
	}
	for _, c := range clips {
		costs := map[string]int{}
		feas := map[string]bool{}
		proven := map[string]bool{}
		for _, rule := range tech.StandardRules() {
			r, err := SolveClip(c, rule, SolveOptions{PerClipTimeout: 15 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			costs[rule.Name] = r.Cost
			feas[rule.Name] = r.Feasible
			proven[rule.Name] = r.Proven
		}
		for _, pair := range dominance {
			strong, weak := pair[0], pair[1]
			if !proven[strong] || !proven[weak] {
				continue
			}
			if feas[strong] && !feas[weak] {
				t.Fatalf("clip %s: %s feasible but weaker %s infeasible", c.Name, strong, weak)
			}
			if feas[strong] && feas[weak] && costs[strong] < costs[weak] {
				t.Fatalf("clip %s: %s cost %d < weaker %s cost %d",
					c.Name, strong, costs[strong], weak, costs[weak])
			}
		}
	}
}

// The two exact solvers agree on extracted (not just synthetic) clips.
func TestSolversAgreeOnExtractedClips(t *testing.T) {
	if testing.Short() {
		// The MILP path needs minutes on extracted clips; short runs get
		// solver-agreement coverage from TestDifferentialILPvsBnB's
		// synthetic corpus instead.
		t.Skip("MILP on extracted clips exceeds the short-mode budget")
	}
	tb := quickTB(t, tech.N28T8())
	clips := tb.Top
	if len(clips) > 2 {
		clips = clips[:2]
	}
	rule6, _ := tech.RuleByName("RULE6")
	for _, c := range clips {
		if len(c.Nets) > 4 {
			continue // keep the MILP path tractable
		}
		g, err := rgraph.Build(c, rgraph.Options{Rule: rule6})
		if err != nil {
			t.Fatal(err)
		}
		bs, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		is, err := core.SolveILP(g, ilp.Options{TimeLimit: 60 * time.Second})
		if err != nil {
			t.Logf("clip %s: ILP budget exhausted (%v); skipping agreement", c.Name, err)
			continue
		}
		if !bs.Proven || !is.Proven {
			continue
		}
		if bs.Feasible != is.Feasible || (bs.Feasible && bs.Cost != is.Cost) {
			t.Fatalf("clip %s: disagreement bnb=(%v,%d) ilp=(%v,%d)",
				c.Name, bs.Feasible, bs.Cost, is.Feasible, is.Cost)
		}
	}
}
