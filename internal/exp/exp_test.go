package exp

import (
	"math"
	"testing"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/tech"
)

func quickTB(t *testing.T, tt *tech.Technology) *Testbed {
	t.Helper()
	opt := QuickTestbed()
	opt.Designs = []DesignSpec{
		{Profile: "AES", Size: 150, Utils: []float64{0.90}},
		{Profile: "M0", Size: 120, Utils: []float64{0.92}},
	}
	opt.TopK = 6
	tb, err := BuildTestbed(tt, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestBuildTestbed(t *testing.T) {
	tb := quickTB(t, tech.N28T12())
	if len(tb.Records) != 2 {
		t.Fatalf("records = %d", len(tb.Records))
	}
	for _, r := range tb.Records {
		if r.Clips == 0 {
			t.Fatalf("design %s-%.2f yielded no clips", r.Design, r.Util)
		}
		if r.RouteWL == 0 {
			t.Fatalf("design %s has no routed wirelength", r.Design)
		}
		if r.AchUtil <= 0.5 {
			t.Fatalf("achieved utilization %.2f implausible", r.AchUtil)
		}
	}
	if len(tb.Top) == 0 || len(tb.Top) > 6 {
		t.Fatalf("top clips = %d", len(tb.Top))
	}
	// Top clips sorted by pin cost descending.
	for i := 1; i < len(tb.Top); i++ {
		if tb.Top[i].PinCost > tb.Top[i-1].PinCost {
			t.Fatal("top clips not sorted")
		}
	}
	if len(tb.PinCosts) != 2 {
		t.Fatalf("pin cost groups = %d", len(tb.PinCosts))
	}
}

func TestDeltaCostStudySmall(t *testing.T) {
	tb := quickTB(t, tech.N28T12())
	clips := tb.Top
	if len(clips) > 3 {
		clips = clips[:3]
	}
	curves, results, err := DeltaCostStudy(tb.Tech, clips, SolveOptions{PerClipTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 11 { // N28: all 11 rules
		t.Fatalf("curves = %d, want 11", len(curves))
	}
	if curves[0].Rule != "RULE1" {
		t.Fatal("first curve must be RULE1")
	}
	// RULE1 deltas are 0 for feasible clips by construction.
	for _, d := range curves[0].Deltas {
		if d != 0 && d != InfeasibleDelta {
			t.Fatalf("RULE1 delta %v != 0", d)
		}
	}
	// All deltas nonnegative (rules only constrain further).
	for _, cu := range curves {
		for i, d := range cu.Deltas {
			if d < -1e-9 {
				t.Fatalf("%s: negative delta %v", cu.Rule, d)
			}
			if i > 0 && cu.Deltas[i] < cu.Deltas[i-1] {
				t.Fatalf("%s: deltas not sorted", cu.Rule)
			}
		}
	}
	if len(results) != len(curves)*len(clips) {
		t.Fatalf("results = %d", len(results))
	}
}

func TestRuleMonotonicityOnClip(t *testing.T) {
	// More SADP layers can never reduce the optimal cost: RULE2 >= RULE3 >=
	// RULE4 >= RULE5 >= RULE1 cost on the same clip (when feasible).
	opt := clip.DefaultSynth(5)
	opt.NX, opt.NY, opt.NZ = 5, 6, 4
	if testing.Short() {
		opt.NZ = 3 // solves in milliseconds instead of tens of seconds
	}
	opt.NumNets = 3
	c := clip.Synthesize(opt)
	c.Tech = "N28-12T"
	costs := map[string]int{}
	feas := map[string]bool{}
	proven := map[string]bool{}
	for _, rn := range []string{"RULE1", "RULE5", "RULE4", "RULE3", "RULE2"} {
		rule, _ := tech.RuleByName(rn)
		r, err := SolveClip(c, rule, SolveOptions{PerClipTimeout: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		costs[rn] = r.Cost
		feas[rn] = r.Feasible
		proven[rn] = r.Proven
	}
	order := []string{"RULE1", "RULE5", "RULE4", "RULE3", "RULE2"}
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		// Only proven verdicts are comparable: an unproven incumbent on the
		// weaker rule can legitimately exceed the stronger rule's optimum.
		if !proven[a] || !proven[b] {
			continue
		}
		if feas[a] && feas[b] && costs[b] < costs[a] {
			t.Fatalf("%s cost %d < %s cost %d: optimality violated", b, costs[b], a, costs[a])
		}
	}
}

func TestValidationStudy(t *testing.T) {
	tb := quickTB(t, tech.N28T12())
	clips := tb.Top
	if len(clips) > 4 {
		clips = clips[:4]
	}
	vals, err := ValidationStudy(clips, SolveOptions{PerClipTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) == 0 {
		t.Skip("no clip produced both heuristic and optimal solutions")
	}
	for _, v := range vals {
		// The paper's key claim: OptRouter never loses to the reference.
		if v.Delta > 0 {
			t.Fatalf("clip %s: optimal %d > heuristic %d", v.Clip, v.OptimalCost, v.HeuristicCost)
		}
	}
}

func TestModelSizeStudy(t *testing.T) {
	opt := clip.DefaultSynth(2)
	c := clip.Synthesize(opt)
	rules := []tech.RuleConfig{
		{Name: "RULE1"},
		{Name: "RULE6", BlockedVias: 4},
		{Name: "RULE3", SADPMinLayer: 3},
	}
	sizes, err := ModelSizeStudy(c, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 {
		t.Fatalf("sizes = %d", len(sizes))
	}
	// Paper Sec. 4: via restriction adds constraints but no variables; SADP
	// adds both (p and product variables).
	if sizes[1].Vars != sizes[0].Vars {
		t.Errorf("via restriction changed variable count: %d vs %d", sizes[1].Vars, sizes[0].Vars)
	}
	if sizes[1].Constraints <= sizes[0].Constraints {
		t.Errorf("via restriction should add constraints: %d vs %d", sizes[1].Constraints, sizes[0].Constraints)
	}
	if sizes[2].Vars <= sizes[0].Vars {
		t.Errorf("SADP should add variables: %d vs %d", sizes[2].Vars, sizes[0].Vars)
	}
	if sizes[2].PVars == 0 || sizes[2].ProductVars == 0 {
		t.Error("SADP should create p/product variables")
	}
}

func TestInfeasibleDeltaConvention(t *testing.T) {
	if InfeasibleDelta != 500 {
		t.Fatal("paper plots unroutable clips at 500")
	}
	if math.IsInf(InfeasibleDelta, 1) {
		t.Fatal("InfeasibleDelta must be finite for plotting")
	}
}
