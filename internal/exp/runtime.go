package exp

import (
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// RuntimeRecord is one row of the Section 5 runtime study.
type RuntimeRecord struct {
	Switchbox string // "7x10" or "10x10"
	WithRules bool   // SADP >= M3 + 4-blocked vias (RULE8), as in the paper
	Feasible  bool
	Proven    bool
	Cost      int
	Nodes     int
	Runtime   time.Duration
}

// RuntimeStudyOptions scales the study.
type RuntimeStudyOptions struct {
	// NZ is the stack depth (the paper uses 8; default 4 for single-core
	// budgets — recorded in the output).
	NZ int
	// Nets is the synthetic net count per switchbox (default 5).
	Nets int
	// Budget bounds each solve (default 60s).
	Budget time.Duration
	Seed   int64
}

func (o RuntimeStudyOptions) withDefaults() RuntimeStudyOptions {
	if o.NZ == 0 {
		o.NZ = 4
	}
	if o.Nets == 0 {
		o.Nets = 5
	}
	if o.Budget == 0 {
		o.Budget = 60 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// RuntimeStudy reproduces the paper's Section 5 runtime comparison: average
// OptRouter runtime for 7x10 and 10x10 switchboxes, with and without
// SADP + via-restriction rules (paper: 842s -> 1047s and 925s -> 1340s on
// CPLEX; here on the combinatorial exact solver at the configured depth).
func RuntimeStudy(opt RuntimeStudyOptions) ([]RuntimeRecord, error) {
	opt = opt.withDefaults()
	rule8, _ := tech.RuleByName("RULE8")
	var out []RuntimeRecord
	for _, sb := range []struct {
		name   string
		nx, ny int
	}{
		{"7x10", 7, 10},
		{"10x10", 10, 10},
	} {
		sopt := clip.DefaultSynth(opt.Seed)
		sopt.NX, sopt.NY, sopt.NZ = sb.nx, sb.ny, opt.NZ
		sopt.NumNets = opt.Nets
		sopt.MaxSinks = 2
		c := clip.Synthesize(sopt)
		for _, withRules := range []bool{false, true} {
			rule := tech.RuleConfig{Name: "RULE1"}
			if withRules {
				rule = rule8
			}
			g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
			if err != nil {
				return nil, err
			}
			sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: opt.Budget})
			if err != nil {
				return nil, err
			}
			out = append(out, RuntimeRecord{
				Switchbox: sb.name, WithRules: withRules,
				Feasible: sol.Feasible, Proven: sol.Proven,
				Cost: sol.Cost, Nodes: sol.Nodes, Runtime: sol.Runtime,
			})
		}
	}
	return out, nil
}
