package exp

import (
	"testing"
	"time"
)

func TestRuntimeStudy(t *testing.T) {
	budget := 30 * time.Second
	if testing.Short() {
		// Rule-heavy 10x10 runs to its budget; the qualitative assertions
		// below only need the rule-free solves proven, which takes ms.
		budget = 3 * time.Second
	}
	recs, err := RuntimeStudy(RuntimeStudyOptions{NZ: 3, Nets: 3, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4 (2 switchboxes x 2 rule settings)", len(recs))
	}
	byKey := map[string]RuntimeRecord{}
	for _, r := range recs {
		key := r.Switchbox
		if r.WithRules {
			key += "+rules"
		}
		byKey[key] = r
		if r.Runtime <= 0 {
			t.Fatalf("%s: zero runtime", key)
		}
	}
	// The paper's qualitative claim: adding SADP + via rules never makes
	// the instance cheaper, and the rule-free solves must be proven.
	for _, sb := range []string{"7x10", "10x10"} {
		plain := byKey[sb]
		ruled := byKey[sb+"+rules"]
		if !plain.Proven {
			t.Fatalf("%s rule-free solve not proven", sb)
		}
		if plain.Feasible && ruled.Feasible && ruled.Proven && ruled.Cost < plain.Cost {
			t.Fatalf("%s: rules reduced cost %d -> %d", sb, plain.Cost, ruled.Cost)
		}
	}
}
