// Package exp implements the paper's BEOL rule evaluation flow (Fig. 6) and
// the experiments behind every table and figure:
//
//	Table 2  — benchmark design matrix (tech x design x utilization)
//	Fig. 7   — example clips (rendered by cmd/clipextract)
//	Fig. 8   — pin-cost distributions of top-100 clips
//	Table 3  — rule configurations (package tech)
//	Fig. 10  — sorted delta-cost per clip per rule, per technology
//	Sec. 4.2 — validation vs the heuristic ("commercial") router
//	Sec. 4   — ILP model size analysis
//	Sec. 5   — runtime study
//
// Scale is parameterized: tests and benches run a reduced testbed (smaller
// netlists, shallower stacks, shorter per-clip budgets); cmd/beoleval -full
// raises it toward the paper's dimensions. Results carry their scale so
// reports are self-describing.
package exp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"optrouter/internal/cells"
	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/extract"
	"optrouter/internal/lp"
	"optrouter/internal/netlist"
	"optrouter/internal/obs"
	"optrouter/internal/pincost"
	"optrouter/internal/place"
	"optrouter/internal/rgraph"
	"optrouter/internal/route"
	"optrouter/internal/sched"
	"optrouter/internal/sta"
	"optrouter/internal/tech"
)

// InfeasibleDelta is the paper's plotting convention: unroutable clips are
// charted at delta-cost 500.
const InfeasibleDelta = 500.0

// DesignSpec is one row of the benchmark matrix.
type DesignSpec struct {
	Profile string // "AES" or "M0"
	Size    int    // instance count
	Utils   []float64
}

// TestbedOptions scales the testbed.
type TestbedOptions struct {
	Designs []DesignSpec
	// Clip window (tracks) and stack depth.
	ClipW, ClipH, ClipNZ int
	// MaxNets drops overly crowded clips (exact solvers need bounded nets).
	MaxNets int
	// TopK clips (by pin cost) kept per technology (paper: 100).
	TopK int
	Seed int64
}

// QuickTestbed is the reduced-scale default used by tests and benches.
func QuickTestbed() TestbedOptions {
	return TestbedOptions{
		Designs: []DesignSpec{
			{Profile: "AES", Size: 300, Utils: []float64{0.89, 0.93}},
			{Profile: "M0", Size: 250, Utils: []float64{0.90, 0.95}},
		},
		ClipW: 7, ClipH: 10, ClipNZ: 4,
		MaxNets: 5,
		TopK:    10,
		Seed:    1,
	}
}

// FullTestbed approaches the paper's scale (still reduced in instance count
// for single-core wall time; the clip geometry matches the paper).
func FullTestbed() TestbedOptions {
	return TestbedOptions{
		Designs: []DesignSpec{
			{Profile: "AES", Size: 2000, Utils: []float64{0.89, 0.93, 0.97}},
			{Profile: "M0", Size: 1500, Utils: []float64{0.90, 0.93, 0.95}},
		},
		ClipW: 7, ClipH: 10, ClipNZ: 6,
		MaxNets: 8,
		TopK:    100,
		Seed:    1,
	}
}

// DesignRecord is one implemented design (a Table 2 row).
type DesignRecord struct {
	Tech      string
	Design    string
	Util      float64
	Insts     int
	Nets      int
	AchUtil   float64
	RouteWL   int
	RouteVias int
	Clips     int
	// PeriodNS is the achievable clock period from the Elmore STA
	// (Table 2's "Period (ns)" column).
	PeriodNS float64
}

// Testbed holds everything extracted for one technology.
type Testbed struct {
	Tech    *tech.Technology
	Options TestbedOptions
	Records []DesignRecord

	// AllClips are all extracted clips (with pin costs); Top are the
	// highest-pin-cost TopK across all designs (the paper's selection).
	AllClips []*clip.Clip
	Top      []*clip.Clip

	// PinCosts per design key ("AES-0.93") for Fig. 8.
	PinCosts map[string][]float64
}

// BuildTestbed runs synthesis/place/route/extract/rank for one technology.
func BuildTestbed(t *tech.Technology, opt TestbedOptions) (*Testbed, error) {
	lib := cells.Generate(t)
	tb := &Testbed{Tech: t, Options: opt, PinCosts: map[string][]float64{}}
	for _, spec := range opt.Designs {
		for ui, util := range spec.Utils {
			var prof netlist.Profile
			seed := opt.Seed + int64(ui)*101
			switch spec.Profile {
			case "AES":
				prof = netlist.AESClass(spec.Size, seed)
			case "M0":
				prof = netlist.M0Class(spec.Size, seed)
			default:
				return nil, fmt.Errorf("exp: unknown profile %q", spec.Profile)
			}
			nl, err := netlist.Generate(lib, prof)
			if err != nil {
				return nil, err
			}
			pl, err := place.Place(lib, nl, place.Options{TargetUtil: util})
			if err != nil {
				return nil, err
			}
			res, err := route.Route(pl, route.Options{Layers: opt.ClipNZ})
			if err != nil {
				return nil, err
			}
			clips := extract.All(res, extract.Options{
				WTracks: opt.ClipW, HTracks: opt.ClipH, NZ: opt.ClipNZ,
				MaxNets: opt.MaxNets,
			})
			key := fmt.Sprintf("%s-%.2f", spec.Profile, util)
			var costs []float64
			for _, c := range clips {
				c.Name = key + "/" + c.Name
				costs = append(costs, pincost.Cost(c))
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(costs)))
			tb.PinCosts[key] = costs
			tb.AllClips = append(tb.AllClips, clips...)

			wl, vias := res.WirelengthVias()
			timing, err := sta.Analyze(res)
			if err != nil {
				return nil, err
			}
			tb.Records = append(tb.Records, DesignRecord{
				Tech: t.Name, Design: spec.Profile, Util: util,
				Insts: len(nl.Instances), Nets: len(nl.Nets),
				AchUtil: pl.Utilization, RouteWL: wl, RouteVias: vias,
				Clips:    len(clips),
				PeriodNS: timing.PeriodNS,
			})
		}
	}
	tb.Top = pincost.RankTopK(tb.AllClips, opt.TopK)
	return tb, nil
}

// SolveOptions budgets the per-clip exact solves and carries the optional
// observability sinks threaded through every study.
type SolveOptions struct {
	PerClipTimeout time.Duration // default 10s
	MaxNodes       int

	// Workers is the solve-concurrency of the parallel studies: (clip, rule)
	// jobs are dispatched to this many scheduler workers (0 = NumCPU, 1 =
	// serial). Study outputs are assembled in study order, so results are
	// identical for any worker count (see README "Parallel evaluation").
	Workers int

	// Par brings parallelism inside each solve: the CDC-BnB explores its tree
	// round-synchronously on Par workers (0 = serial engine). The engine is
	// deterministic by construction — routes and objective are identical for
	// every Par (see README "Parallel search & portfolio") — so study outputs
	// do not depend on it.
	Par int
	// Portfolio races the CDC-BnB (with Par workers when Par > 0) against the
	// MILP engine on every solve, coupled through a shared incumbent/bound
	// exchange; the first optimality proof wins and cancels the loser. The
	// objective is exactness-preserving but which engine's routes are returned
	// is a race outcome, so route CSVs are only stable across runs for clips
	// where both engines agree arc-for-arc.
	Portfolio bool
	// LP tunes the MILP engine's LP subsolver (basis engine, pricing rule,
	// presolve mode) on portfolio solves; the pure CDC-BnB path ignores it.
	// The zero value means sparse engine, devex pricing, presolve on.
	LP lp.Options

	// Progress, if non-nil, receives per-clip lifecycle events ("start",
	// "progress" during the solve, "done") — the source of cmd/beoleval's
	// live progress line. Studies serialize the callback (it is never
	// invoked concurrently with itself), and Index/Total always refer to
	// the solve's fixed position in study order, not dispatch order.
	Progress func(ClipProgress)
	// Metrics, if non-nil, accumulates run-wide counters and histograms
	// (nodes, lp_solves, wall_ms, ...) across all solves.
	Metrics *obs.Registry
	// Tracer, if non-nil, records one span per clip solve plus the solver's
	// own spans and events underneath it.
	Tracer *obs.Tracer
	// Flight configures per-node search-event recording on the solve spans
	// (effective only with a Tracer). Off by default — it costs solve wall
	// time on node-heavy sweeps.
	Flight obs.FlightOptions
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.PerClipTimeout == 0 {
		o.PerClipTimeout = 10 * time.Second
	}
	return o
}

// ClipProgress is one per-clip lifecycle event for live reporting.
type ClipProgress struct {
	Phase     string // "start", "progress" (mid-solve), "done"
	Clip      string
	Rule      string
	Index     int // 1-based solve index in study order (not dispatch order)
	Total     int // total solves the study will perform (0 if unknown)
	Worker    int // scheduler worker executing the solve (-1 outside a pool)
	Elapsed   time.Duration
	Nodes     int
	Incumbent int64 // best cost so far (-1 if none)
	Bound     int64 // proven lower bound (-1 before root)
	// Done and InFlight are the study-wide completion count and the number
	// of solves currently executing (both maintained by the study's
	// serialized progress aggregation; InFlight <= SolveOptions.Workers).
	Done     int
	InFlight int
	// Result is set on "done" events.
	Result *ClipRuleResult
}

// progressMux serializes a study's progress callback across worker
// goroutines and maintains the study-wide Done/InFlight counters, so a
// single live status line never interleaves across workers.
type progressMux struct {
	mu             sync.Mutex
	fn             func(ClipProgress)
	done, inflight int
}

func newProgressMux(fn func(ClipProgress)) *progressMux {
	if fn == nil {
		return nil
	}
	return &progressMux{fn: fn}
}

// emit forwards one event with aggregate counts attached. Nil-safe.
func (m *progressMux) emit(p ClipProgress) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch p.Phase {
	case "start":
		m.inflight++
	case "done":
		m.inflight--
		m.done++
	}
	p.Done, p.InFlight = m.done, m.inflight
	m.fn(p)
}

// sink adapts the mux back to a plain Progress callback.
func (m *progressMux) sink() func(ClipProgress) {
	if m == nil {
		return nil
	}
	return m.emit
}

// ClipRuleResult is one (clip, rule) cell of the Fig. 10 data.
type ClipRuleResult struct {
	Clip     string
	Rule     string
	Feasible bool
	Proven   bool
	Cost     int
	WL       int
	Vias     int
	Runtime  time.Duration
	Nodes    int
	// Err is non-empty when the solve itself failed (e.g. a panic isolated
	// by the scheduler); such cells chart as unresolved, not as a proven
	// verdict.
	Err string
	// Stats is the solver's full per-solve telemetry.
	Stats core.SolveStats
}

// RuleCurve is one Fig. 10 curve: sorted delta-costs for a rule.
type RuleCurve struct {
	Rule string
	// Deltas are per-clip cost deltas vs RULE1, ascending; infeasible (or
	// unresolved-within-budget) clips appear as InfeasibleDelta.
	Deltas []float64
	// Infeasible counts clips with no routing under this rule.
	Infeasible int
	// Unproven counts clips whose verdict hit the solve budget.
	Unproven int
	// Failed counts clips whose solve crashed (panic isolated by the
	// scheduler); they chart at InfeasibleDelta and also count as Unproven.
	Failed int
}

// DeltaCostStudy runs OptRouter on each clip under each rule and assembles
// the sorted delta-cost curves of Fig. 10 for one technology. The (clip,
// rule) solves are independent MILPs; they are dispatched to
// SolveOptions.Workers scheduler workers and the curves are assembled in
// study order, so the output is identical for any worker count.
func DeltaCostStudy(t *tech.Technology, clips []*clip.Clip, opt SolveOptions) ([]RuleCurve, []ClipRuleResult, error) {
	return DeltaCostStudyCtx(context.Background(), t, clips, opt)
}

// DeltaCostStudyCtx is DeltaCostStudy with cancellation: cancelling ctx
// aborts in-flight solves at their next branch-and-bound node, drains the
// worker pool and returns the context's error.
func DeltaCostStudyCtx(ctx context.Context, t *tech.Technology, clips []*clip.Clip, opt SolveOptions) ([]RuleCurve, []ClipRuleResult, error) {
	opt = opt.withDefaults()
	rules := tech.RulesFor(t)
	if len(rules) == 0 || rules[0].Name != "RULE1" {
		return nil, nil, fmt.Errorf("exp: RULE1 must head the rule list")
	}

	if len(clips) == 0 {
		curves := make([]RuleCurve, 0, len(rules))
		for _, rule := range rules {
			curves = append(curves, RuleCurve{Rule: rule.Name})
		}
		return curves, nil, nil
	}

	// Decompose into one job per clip: the clip's solves under every rule run
	// sequentially on one worker, sharing one Steiner arena. The rule graphs
	// differ (each rule rebuilds the routing graph), but the solver's pooled
	// DP tables, queues and ban buffers recycle across all rules of the clip,
	// so the per-solve allocation cost is paid once per clip rather than once
	// per (clip, rule) cell. Study order stays rule-major over clips: cell
	// (ri, ci) reports Index ri*len(clips)+ci+1 and results are reassembled
	// in that order, so output and progress indices are identical to the
	// per-cell decomposition for any worker count.
	total := len(rules) * len(clips)
	prog := newProgressMux(opt.Progress)
	jobs := make([]sched.Job[[]ClipRuleResult], len(clips))
	for ci := range clips {
		ci := ci
		c := clips[ci]
		jobs[ci] = func(jctx context.Context) ([]ClipRuleResult, error) {
			arena := core.NewSteinerArena()
			jopt := opt
			jopt.Progress = prog.sink()
			out := make([]ClipRuleResult, len(rules))
			for ri, rule := range rules {
				r, err := solveClipCtx(jctx, c, rule, jopt, ri*len(clips)+ci+1, total, arena)
				if err != nil {
					return nil, fmt.Errorf("exp: %s under %s: %w", c.Name, rule.Name, err)
				}
				out[ri] = r
			}
			return out, nil
		}
	}
	results := sched.Run(ctx, jobs, sched.Options{
		Workers: opt.Workers,
		Metrics: opt.Metrics,
	})

	// Surface hard errors (graph construction, cancellation) in study
	// order; isolated panics degrade to failed cells below instead.
	for _, r := range results {
		if r.Err != nil && !r.Panicked {
			return nil, nil, r.Err
		}
	}

	// Assemble in study order (rule-major) — identical for any worker count.
	base := map[string]float64{} // clip -> RULE1 cost
	var curves []RuleCurve
	all := make([]ClipRuleResult, 0, total)
	for ri, rule := range rules {
		curves = append(curves, RuleCurve{Rule: rule.Name})
		curve := &curves[ri]
		for ci, c := range clips {
			var cr ClipRuleResult
			if r := results[ci]; r.Panicked {
				// A panicking solve takes the clip's whole job with it; every
				// cell of the clip degrades to a failed cell.
				cr = ClipRuleResult{Clip: c.Name, Rule: rule.Name, Err: r.Err.Error()}
			} else {
				cr = r.Value[ri]
			}
			all = append(all, cr)
			if cr.Rule == "RULE1" {
				if cr.Feasible {
					base[cr.Clip] = float64(cr.Cost)
				} else {
					// A clip unroutable even under RULE1 contributes no
					// meaningful baseline; chart it at infinity for every rule.
					base[cr.Clip] = math.Inf(1)
				}
			}
			var delta float64
			switch {
			case cr.Err != "":
				delta = InfeasibleDelta
				curve.Failed++
			case !cr.Feasible:
				delta = InfeasibleDelta
				curve.Infeasible++
			case math.IsInf(base[cr.Clip], 1):
				delta = InfeasibleDelta
			default:
				delta = float64(cr.Cost) - base[cr.Clip]
			}
			if !cr.Proven {
				curve.Unproven++
			}
			curve.Deltas = append(curve.Deltas, delta)
		}
	}
	for i := range curves {
		sort.Float64s(curves[i].Deltas)
	}
	return curves, all, nil
}

// SolveClip routes one clip under one rule with the exact CDC-BnB solver.
func SolveClip(c *clip.Clip, rule tech.RuleConfig, opt SolveOptions) (ClipRuleResult, error) {
	return solveClipCtx(context.Background(), c, rule, opt, 1, 1, nil)
}

// solveClipCtx is SolveClip plus the study position (solve idx of total) for
// progress reporting and metrics accounting, a context that cancels the
// solve between branch-and-bound nodes, and an optional Steiner arena reused
// across the solves of one worker (nil = private arena per solve).
func solveClipCtx(ctx context.Context, c *clip.Clip, rule tech.RuleConfig, opt SolveOptions, idx, total int, arena *core.SteinerArena) (ClipRuleResult, error) {
	opt = opt.withDefaults()
	worker := sched.WorkerID(ctx)
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		return ClipRuleResult{}, err
	}
	if opt.Progress != nil {
		opt.Progress(ClipProgress{
			Phase: "start", Clip: c.Name, Rule: rule.Name,
			Index: idx, Total: total, Worker: worker, Incumbent: -1, Bound: -1,
		})
	}
	bnbOpt := core.BnBOptions{
		TimeLimit: opt.PerClipTimeout,
		MaxNodes:  opt.MaxNodes,
		Par:       opt.Par,
		LP:        opt.LP,
		Tracer:    opt.Tracer,
		Flight:    opt.Flight,
		Ctx:       ctx,
		Arena:     arena,
	}
	if opt.Progress != nil {
		bnbOpt.Progress = func(p core.BnBProgress) {
			opt.Progress(ClipProgress{
				Phase: "progress", Clip: c.Name, Rule: rule.Name,
				Index: idx, Total: total, Worker: worker, Elapsed: p.Elapsed,
				Nodes: p.Nodes, Incumbent: p.Incumbent, Bound: p.Bound,
			})
		}
	}
	solve := core.SolveBnB
	if opt.Portfolio {
		solve = core.SolvePortfolio
	}
	sol, err := solve(g, bnbOpt)
	if err != nil {
		return ClipRuleResult{}, err
	}
	r := ClipRuleResult{
		Clip: c.Name, Rule: rule.Name,
		Feasible: sol.Feasible, Proven: sol.Proven,
		Cost: sol.Cost, WL: sol.Wirelength, Vias: sol.Vias,
		Runtime: sol.Runtime, Nodes: sol.Nodes,
		Stats: sol.Stats,
	}
	recordSolveMetrics(opt.Metrics, r)
	if opt.Progress != nil {
		inc := int64(-1)
		if sol.Feasible {
			inc = int64(sol.Cost)
		}
		opt.Progress(ClipProgress{
			Phase: "done", Clip: c.Name, Rule: rule.Name,
			Index: idx, Total: total, Worker: worker, Elapsed: sol.Runtime,
			Nodes: sol.Nodes, Incumbent: inc, Bound: inc, Result: &r,
		})
	}
	return r, nil
}

// recordSolveMetrics folds one solve's stats into the run-wide registry.
// The flat key set (nodes, lp_solves, wall_ms, ...) is the metrics schema
// cmd/beoleval -stats emits; see README "Observability".
func recordSolveMetrics(m *obs.Registry, r ClipRuleResult) {
	if m == nil {
		return
	}
	st := r.Stats
	m.Counter("solves").Inc()
	m.Counter("nodes").Add(int64(st.Nodes))
	m.Counter("lp_solves").Add(int64(st.LPSolves))
	m.Counter("lp_iters").Add(int64(st.LPIters))
	m.Counter("steiner_solves").Add(int64(st.SteinerSolves))
	m.Counter("steiner_cache_hits").Add(int64(st.SteinerCacheHits))
	m.Counter("drc_checks").Add(int64(st.DRCChecks))
	m.Counter("drc_ms").Add(st.DRCTime.Milliseconds())
	m.Counter("bans_generated").Add(int64(st.BansGenerated))
	m.Counter("lagrangian_rounds").Add(int64(st.LagrangianRounds))
	m.Counter("dives").Add(int64(st.Dives))
	m.Counter("lp_candidate_hits").Add(int64(st.LPCandidateHits))
	m.Counter("lp_ref_resets").Add(int64(st.LPRefResets))
	m.Counter("lp_dual_bound_flips").Add(int64(st.LPDualBoundFlips))
	m.Counter("presolve_rows").Add(int64(st.PresolveRows))
	m.Counter("presolve_cols").Add(int64(st.PresolveCols))
	m.Counter("lp_refactor_eta_len").Add(int64(st.LPRefactorEtaLen))
	m.Counter("lp_refactor_fill").Add(int64(st.LPRefactorFill))
	m.Counter("lp_refactor_pivot_quality").Add(int64(st.LPRefactorPivotQuality))
	m.Counter("lp_refactor_update_rejected").Add(int64(st.LPRefactorUpdateRejected))
	m.Counter("incumbents").Add(int64(st.Incumbents))
	m.Counter("wall_ms").Add(r.Runtime.Milliseconds())
	if !r.Feasible {
		m.Counter("infeasible").Inc()
	}
	if !r.Proven {
		m.Counter("unproven").Inc()
	}
	m.Histogram("solve_ms").ObserveDuration(r.Runtime)
	m.Histogram("nodes_per_solve").Observe(float64(st.Nodes))
	m.Histogram("depth_per_solve").Observe(float64(st.MaxDepth))
	// Per-sweep phase attribution: fold each solve's breakdown into
	// microsecond counters (milliseconds would truncate the many sub-ms
	// phases of small clips to zero).
	for name, d := range st.Phases {
		m.Counter("phase_" + name + "_us").Add(d.Microseconds())
	}
	for name, d := range st.LPPhases {
		m.Counter("lp_phase_" + name + "_us").Add(d.Microseconds())
	}
}

// ValidationResult compares OptRouter to the heuristic router on one clip
// (the paper's footnote-6 study: OptRouter always achieves non-positive
// delta-cost vs the commercial router).
type ValidationResult struct {
	Clip          string
	HeuristicCost int
	OptimalCost   int
	Delta         int // optimal - heuristic (expected <= 0)
}

// ValidationStudy runs both routers on each clip under RULE1. Clips are
// independent, so they are dispatched to SolveOptions.Workers scheduler
// workers; the result list keeps clip order.
func ValidationStudy(clips []*clip.Clip, opt SolveOptions) ([]ValidationResult, error) {
	opt = opt.withDefaults()
	jobs := make([]sched.Job[*ValidationResult], len(clips))
	for i := range clips {
		c := clips[i]
		jobs[i] = func(ctx context.Context) (*ValidationResult, error) {
			g, err := rgraph.Build(c, rgraph.Options{})
			if err != nil {
				return nil, err
			}
			arena := core.NewSteinerArena() // shared by both solves of the clip
			h := core.SolveHeuristic(g, core.HeuristicOptions{Arena: arena})
			if !h.Feasible {
				return nil, nil // no heuristic baseline to compare against
			}
			o, err := core.SolveBnB(g, core.BnBOptions{
				TimeLimit: opt.PerClipTimeout, MaxNodes: opt.MaxNodes, Ctx: ctx,
				Arena: arena,
			})
			if err != nil {
				return nil, err
			}
			if !o.Feasible {
				return nil, nil
			}
			return &ValidationResult{
				Clip: c.Name, HeuristicCost: h.Cost, OptimalCost: o.Cost,
				Delta: o.Cost - h.Cost,
			}, nil
		}
	}
	results := sched.Run(context.Background(), jobs, sched.Options{
		Workers: opt.Workers, Metrics: opt.Metrics,
	})
	var out []ValidationResult
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		if r.Value != nil {
			out = append(out, *r.Value)
		}
	}
	return out, nil
}

// ModelSize reports ILP dimensions for one clip under one rule (the paper's
// Section 4 variable/constraint analysis).
type ModelSize struct {
	Rule        string
	Verts       int
	Arcs        int
	Nets        int
	Vars        int
	Constraints int
	EVars       int
	FVars       int
	PVars       int
	ProductVars int
}

// ModelSizeStudy builds (without solving) the ILP for each rule. Builds are
// independent per rule and run on the scheduler (NumCPU workers); the output
// keeps rule order.
func ModelSizeStudy(c *clip.Clip, rules []tech.RuleConfig) ([]ModelSize, error) {
	jobs := make([]sched.Job[ModelSize], len(rules))
	for i := range rules {
		rule := rules[i]
		jobs[i] = func(ctx context.Context) (ModelSize, error) {
			g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
			if err != nil {
				return ModelSize{}, err
			}
			m := core.BuildILP(g)
			st := g.Stats()
			return ModelSize{
				Rule:  rule.Name,
				Verts: st.Verts, Arcs: st.Arcs, Nets: len(c.Nets),
				Vars:        m.Model.NumVars(),
				Constraints: m.Model.NumConstraints(),
				EVars:       m.NumEVars, FVars: m.NumFVars,
				PVars: m.NumPVars, ProductVars: m.NumProductVars,
			}, nil
		}
	}
	results := sched.Run(context.Background(), jobs, sched.Options{})
	out := make([]ModelSize, 0, len(rules))
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out = append(out, r.Value)
	}
	return out, nil
}
