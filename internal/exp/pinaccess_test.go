package exp

import (
	"testing"
	"time"

	"optrouter/internal/tech"
)

func TestPinAccessClipBuilds(t *testing.T) {
	for _, tt := range tech.AllTechnologies() {
		cl, err := PinAccessClip(tt, "NAND2X1")
		if err != nil {
			t.Fatalf("%s: %v", tt.Name, err)
		}
		if len(cl.Nets) != 3 { // A, B, Y
			t.Fatalf("%s: %d nets, want 3", tt.Name, len(cl.Nets))
		}
		for i := range cl.Nets {
			if cl.Nets[i].Pins[0].APs[0].Z != 0 {
				t.Fatalf("%s: pin not on M1", tt.Name)
			}
		}
	}
}

func TestPinAccessStudyFig9(t *testing.T) {
	opt := SolveOptions{PerClipTimeout: 20 * time.Second}
	results := map[string]map[string]PinAccessResult{}
	for _, tt := range []*tech.Technology{tech.N28T12(), tech.N7T9()} {
		rs, err := PinAccessStudy(tt, "NAND2X1", opt)
		if err != nil {
			t.Fatal(err)
		}
		results[tt.Name] = map[string]PinAccessResult{}
		for _, r := range rs {
			results[tt.Name][r.Rule] = r
		}
	}
	// Everything is routable with no via restrictions.
	for techName, rs := range results {
		if !rs["RULE1"].Feasible {
			t.Fatalf("%s: RULE1 pin access must be feasible", techName)
		}
	}
	// The generous 12-track pins survive every rule.
	for rule, r := range results["N28-12T"] {
		if !r.Feasible && r.Proven {
			t.Fatalf("N28-12T: %s unexpectedly unpinnable", rule)
		}
	}
	// The Fig. 9(c) crunch: scaled N7 pins under 8-blocked via sites
	// (RULE9) must cost strictly more than under RULE1, or be outright
	// unpinnable — the reason the paper excludes those rules from N7.
	r9 := results["N7-9T"]["RULE9"]
	r1 := results["N7-9T"]["RULE1"]
	if r9.Feasible && r9.Proven && r9.Cost <= r1.Cost {
		t.Fatalf("N7-9T: RULE9 (%d) should cost more than RULE1 (%d) or be infeasible",
			r9.Cost, r1.Cost)
	}
}
