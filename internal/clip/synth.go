package clip

import (
	"fmt"
	"math/rand"
)

// SynthOptions parameterizes random clip synthesis. Synthetic clips are used
// by tests and benchmarks that need controlled instances independent of the
// full place-and-route substrate.
type SynthOptions struct {
	NX, NY, NZ int
	MinLayer   int
	NumNets    int
	// MaxSinks is the maximum sink count per net (>=1). Sink counts are
	// drawn uniformly in [1, MaxSinks], so MaxSinks > 1 produces multi-pin
	// (Steiner) nets.
	MaxSinks int
	// PinAPs is the number of access points per in-clip pin (>=1).
	PinAPs int
	// BoundaryFrac is the fraction of pins placed on the clip boundary
	// (emulating nets crossing the switchbox).
	BoundaryFrac float64
	// ObstacleFrac is the fraction of grid vertices blocked.
	ObstacleFrac float64
	Seed         int64
}

// DefaultSynth returns options resembling a small extracted clip.
func DefaultSynth(seed int64) SynthOptions {
	return SynthOptions{
		NX: 5, NY: 6, NZ: 4, MinLayer: 1,
		NumNets: 4, MaxSinks: 2, PinAPs: 2,
		BoundaryFrac: 0.4, ObstacleFrac: 0.05, Seed: seed,
	}
}

// Synthesize builds a random clip. Pins are placed on distinct vertices;
// in-cell pins go to the bottom routing layer (as M1/M2 pins would), while
// boundary pins sit on clip edges at any layer. The clip always validates.
func Synthesize(opt SynthOptions) *Clip {
	rng := rand.New(rand.NewSource(opt.Seed))
	c := &Clip{
		Name:     fmt.Sprintf("synth-%d", opt.Seed),
		Tech:     "synthetic",
		NX:       opt.NX,
		NY:       opt.NY,
		NZ:       opt.NZ,
		MinLayer: opt.MinLayer,
	}

	used := map[AccessPoint]bool{}
	pinBase := map[[2]int]bool{} // (x,y) columns claimed by a pin, any layer

	// Obstacles on random vertices, avoiding later pin placement by
	// claiming vertices first.
	nObst := int(opt.ObstacleFrac * float64(opt.NX*opt.NY*(opt.NZ-opt.MinLayer)))
	for i := 0; i < nObst; i++ {
		a := AccessPoint{
			X: rng.Intn(opt.NX),
			Y: rng.Intn(opt.NY),
			Z: opt.MinLayer + rng.Intn(opt.NZ-opt.MinLayer),
		}
		if used[a] {
			continue
		}
		used[a] = true
		c.Obstacles = append(c.Obstacles, a)
	}

	// freshPin picks an unused location (and neighbors for extra APs).
	freshPin := func(name string, boundary bool) (Pin, bool) {
		for attempt := 0; attempt < 200; attempt++ {
			var base AccessPoint
			if boundary {
				// Random point on one of the four boundary columns/rows of
				// a random routing layer.
				z := opt.MinLayer + rng.Intn(opt.NZ-opt.MinLayer)
				switch rng.Intn(4) {
				case 0:
					base = AccessPoint{0, rng.Intn(opt.NY), z}
				case 1:
					base = AccessPoint{opt.NX - 1, rng.Intn(opt.NY), z}
				case 2:
					base = AccessPoint{rng.Intn(opt.NX), 0, z}
				default:
					base = AccessPoint{rng.Intn(opt.NX), opt.NY - 1, z}
				}
			} else {
				base = AccessPoint{rng.Intn(opt.NX), rng.Intn(opt.NY), opt.MinLayer}
			}
			if used[base] || pinBase[[2]int{base.X, base.Y}] {
				continue
			}
			pin := Pin{Name: name, APs: []AccessPoint{base}}
			used[base] = true
			pinBase[[2]int{base.X, base.Y}] = true
			// Additional APs adjacent along the pin's layer direction.
			for extra := 1; extra < opt.PinAPs && !boundary; extra++ {
				next := base
				next.Y = base.Y + extra
				if next.Y >= opt.NY || used[next] {
					break
				}
				used[next] = true
				pin.APs = append(pin.APs, next)
			}
			return pin, true
		}
		return Pin{}, false
	}

	for n := 0; n < opt.NumNets; n++ {
		name := fmt.Sprintf("n%d", n)
		sinks := 1
		if opt.MaxSinks > 1 {
			sinks = 1 + rng.Intn(opt.MaxSinks)
		}
		var pins []Pin
		ok := true
		for p := 0; p <= sinks; p++ {
			boundary := rng.Float64() < opt.BoundaryFrac
			pin, found := freshPin(fmt.Sprintf("%s_p%d", name, p), boundary)
			if !found {
				ok = false
				break
			}
			pins = append(pins, pin)
		}
		if !ok {
			break // grid saturated; keep what we have
		}
		c.Nets = append(c.Nets, Net{Name: name, Pins: pins})
	}
	return c
}
