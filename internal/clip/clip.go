// Package clip defines the switchbox routing clip: the unit of work for
// OptRouter. A clip is a small window (the paper uses 1um x 1um, i.e.
// 7 vertical x 10 horizontal tracks over eight metal layers) cut out of a
// routed design, together with the nets that must be routed inside it.
//
// Coordinates are track indices: X in [0, NX) indexes vertical-track columns,
// Y in [0, NY) indexes horizontal-track rows, and Z in [0, NZ) indexes metal
// layers (Z = 0 is M1). Layers alternate preferred direction: even Z
// (M1, M3, ...) routes horizontally, odd Z routes vertically, matching
// package tech's stack.
package clip

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// AccessPoint is one routable grid location of a pin.
type AccessPoint struct {
	X, Y, Z int
}

func (a AccessPoint) String() string { return fmt.Sprintf("(%d,%d,M%d)", a.X, a.Y, a.Z+1) }

// Pin is a source or sink of a net: a set of electrically equivalent access
// points (the paper's "pin shape" / multiple access points, Fig. 9).
//
// AreaNM2 and CXNM/CYNM describe the physical pin shape for the Taghavi pin
// cost metric (package pincost); they are zero for boundary-crossing
// terminals, which the metric ignores.
type Pin struct {
	Name string        `json:"name"`
	APs  []AccessPoint `json:"aps"`

	AreaNM2 int `json:"areaNM2,omitempty"`
	CXNM    int `json:"cxNM,omitempty"`
	CYNM    int `json:"cyNM,omitempty"`
}

// Net is a multi-pin net. Pins[0] is the source; the rest are sinks.
type Net struct {
	Name string `json:"name"`
	Pins []Pin  `json:"pins"`
}

// NumSinks returns |T_k|.
func (n *Net) NumSinks() int { return len(n.Pins) - 1 }

// Clip is a switchbox routing instance.
type Clip struct {
	Name string `json:"name"`
	Tech string `json:"tech"` // technology name, e.g. "N28-12T"

	// Grid extent: NX vertical tracks, NY horizontal tracks, NZ layers.
	NX, NY, NZ int

	// MinLayer is the lowest usable routing layer (0-based). The paper does
	// not use M1 as a routing resource, so extracted clips have MinLayer=1.
	MinLayer int `json:"minLayer"`

	// Obstacles are grid vertices unavailable for routing (power rails,
	// blockages, shapes of nets not in the clip).
	Obstacles []AccessPoint `json:"obstacles,omitempty"`

	Nets []Net `json:"nets"`

	// PinCost caches the Taghavi pin cost once computed (package pincost).
	PinCost float64 `json:"pinCost,omitempty"`
}

// Validate performs structural sanity checks and returns the first problem
// found, or nil.
func (c *Clip) Validate() error {
	if c.NX <= 0 || c.NY <= 0 || c.NZ <= 0 {
		return fmt.Errorf("clip %s: non-positive grid %dx%dx%d", c.Name, c.NX, c.NY, c.NZ)
	}
	if c.MinLayer < 0 || c.MinLayer >= c.NZ {
		return fmt.Errorf("clip %s: MinLayer %d outside [0,%d)", c.Name, c.MinLayer, c.NZ)
	}
	inGrid := func(a AccessPoint) bool {
		return a.X >= 0 && a.X < c.NX && a.Y >= 0 && a.Y < c.NY && a.Z >= 0 && a.Z < c.NZ
	}
	obst := map[AccessPoint]bool{}
	for _, o := range c.Obstacles {
		if !inGrid(o) {
			return fmt.Errorf("clip %s: obstacle %v outside grid", c.Name, o)
		}
		obst[o] = true
	}
	seenNet := map[string]bool{}
	apOwner := map[AccessPoint]string{}
	for i := range c.Nets {
		n := &c.Nets[i]
		if n.Name == "" {
			return fmt.Errorf("clip %s: net %d unnamed", c.Name, i)
		}
		if seenNet[n.Name] {
			return fmt.Errorf("clip %s: duplicate net %q", c.Name, n.Name)
		}
		seenNet[n.Name] = true
		if len(n.Pins) < 2 {
			return fmt.Errorf("clip %s: net %q has %d pins (need >= 2)", c.Name, n.Name, len(n.Pins))
		}
		for _, p := range n.Pins {
			if len(p.APs) == 0 {
				return fmt.Errorf("clip %s: net %q pin %q has no access points", c.Name, n.Name, p.Name)
			}
			for _, a := range p.APs {
				if !inGrid(a) {
					return fmt.Errorf("clip %s: net %q AP %v outside grid", c.Name, n.Name, a)
				}
				// Access points may sit one layer below MinLayer: such pins
				// model M1 cell pins reachable only through a via (the
				// paper's V12 pin-access sites, Fig. 9).
				if a.Z < c.MinLayer-1 {
					return fmt.Errorf("clip %s: net %q AP %v below MinLayer %d", c.Name, n.Name, a, c.MinLayer)
				}
				if obst[a] {
					return fmt.Errorf("clip %s: net %q AP %v collides with obstacle", c.Name, n.Name, a)
				}
				if owner, ok := apOwner[a]; ok && owner != n.Name {
					return fmt.Errorf("clip %s: AP %v shared by nets %q and %q", c.Name, a, owner, n.Name)
				}
				apOwner[a] = n.Name
			}
		}
	}
	return nil
}

// NumPins returns the total number of pins across all nets.
func (c *Clip) NumPins() int {
	n := 0
	for i := range c.Nets {
		n += len(c.Nets[i].Pins)
	}
	return n
}

// WriteJSON serializes the clip.
func (c *Clip) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON deserializes and validates a clip.
func ReadJSON(r io.Reader) (*Clip, error) {
	var c Clip
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("clip: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// SortNetsByName orders nets deterministically.
func (c *Clip) SortNetsByName() {
	sort.Slice(c.Nets, func(i, j int) bool { return c.Nets[i].Name < c.Nets[j].Name })
}

// MarshalJSON ensures grid fields serialize with stable lowercase keys.
func (c *Clip) MarshalJSON() ([]byte, error) {
	type alias struct {
		Name      string        `json:"name"`
		Tech      string        `json:"tech"`
		NX        int           `json:"nx"`
		NY        int           `json:"ny"`
		NZ        int           `json:"nz"`
		MinLayer  int           `json:"minLayer"`
		Obstacles []AccessPoint `json:"obstacles,omitempty"`
		Nets      []Net         `json:"nets"`
		PinCost   float64       `json:"pinCost,omitempty"`
	}
	return json.Marshal(alias{
		Name: c.Name, Tech: c.Tech,
		NX: c.NX, NY: c.NY, NZ: c.NZ,
		MinLayer: c.MinLayer, Obstacles: c.Obstacles,
		Nets: c.Nets, PinCost: c.PinCost,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (c *Clip) UnmarshalJSON(b []byte) error {
	type alias struct {
		Name      string        `json:"name"`
		Tech      string        `json:"tech"`
		NX        int           `json:"nx"`
		NY        int           `json:"ny"`
		NZ        int           `json:"nz"`
		MinLayer  int           `json:"minLayer"`
		Obstacles []AccessPoint `json:"obstacles,omitempty"`
		Nets      []Net         `json:"nets"`
		PinCost   float64       `json:"pinCost,omitempty"`
	}
	var a alias
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	c.Name, c.Tech = a.Name, a.Tech
	c.NX, c.NY, c.NZ = a.NX, a.NY, a.NZ
	c.MinLayer = a.MinLayer
	c.Obstacles = a.Obstacles
	c.Nets = a.Nets
	c.PinCost = a.PinCost
	return nil
}
