package clip

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func simpleClip() *Clip {
	return &Clip{
		Name: "t", Tech: "N28-12T",
		NX: 5, NY: 6, NZ: 4, MinLayer: 1,
		Nets: []Net{
			{Name: "a", Pins: []Pin{
				{Name: "s", APs: []AccessPoint{{0, 0, 1}}},
				{Name: "t", APs: []AccessPoint{{4, 5, 1}}},
			}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := simpleClip().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Clip)
		want   string
	}{
		{func(c *Clip) { c.NX = 0 }, "non-positive grid"},
		{func(c *Clip) { c.MinLayer = 4 }, "MinLayer"},
		{func(c *Clip) { c.Nets[0].Pins[0].APs[0].X = 99 }, "outside grid"},
		// Z = MinLayer-1 is legal (an M1 pin behind a V12 access via), so
		// push the AP two layers below the routing stack.
		{func(c *Clip) { c.MinLayer = 3 }, "below MinLayer"},
		{func(c *Clip) { c.Nets[0].Pins = c.Nets[0].Pins[:1] }, "need >= 2"},
		{func(c *Clip) { c.Nets[0].Name = "" }, "unnamed"},
		{func(c *Clip) { c.Nets[0].Pins[0].APs = nil }, "no access points"},
		{func(c *Clip) { c.Obstacles = []AccessPoint{{0, 0, 1}} }, "collides"},
		{func(c *Clip) { c.Obstacles = []AccessPoint{{-1, 0, 0}} }, "obstacle"},
		{func(c *Clip) {
			c.Nets = append(c.Nets, Net{Name: "a", Pins: c.Nets[0].Pins})
		}, "duplicate net"},
		{func(c *Clip) {
			c.Nets = append(c.Nets, Net{Name: "b", Pins: []Pin{
				{Name: "s", APs: []AccessPoint{{0, 0, 1}}},
				{Name: "t", APs: []AccessPoint{{1, 1, 1}}},
			}})
		}, "shared by nets"},
	}
	for i, tc := range cases {
		c := simpleClip()
		tc.mutate(c)
		err := c.Validate()
		if err == nil {
			t.Errorf("case %d: expected error containing %q, got nil", i, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: error %q does not contain %q", i, err, tc.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := simpleClip()
	c.Obstacles = []AccessPoint{{2, 2, 2}}
	c.PinCost = 12.5
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || got.NX != c.NX || got.NY != c.NY || got.NZ != c.NZ ||
		got.MinLayer != c.MinLayer || got.PinCost != c.PinCost {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, c)
	}
	if len(got.Nets) != 1 || got.Nets[0].Pins[1].APs[0] != (AccessPoint{4, 5, 1}) {
		t.Fatalf("nets lost in round trip: %+v", got.Nets)
	}
	if len(got.Obstacles) != 1 || got.Obstacles[0] != (AccessPoint{2, 2, 2}) {
		t.Fatalf("obstacles lost: %+v", got.Obstacles)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","nx":0,"ny":1,"nz":1,"nets":[]}`)); err == nil {
		t.Error("invalid clip accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{garbage`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestNumPinsAndSinks(t *testing.T) {
	c := simpleClip()
	if c.NumPins() != 2 {
		t.Errorf("NumPins = %d", c.NumPins())
	}
	if c.Nets[0].NumSinks() != 1 {
		t.Errorf("NumSinks = %d", c.Nets[0].NumSinks())
	}
}

func TestSortNetsByName(t *testing.T) {
	c := simpleClip()
	c.Nets = append(c.Nets, Net{Name: "0first", Pins: []Pin{
		{APs: []AccessPoint{{1, 1, 1}}}, {APs: []AccessPoint{{2, 2, 1}}},
	}})
	c.SortNetsByName()
	if c.Nets[0].Name != "0first" {
		t.Errorf("nets not sorted: %v", c.Nets[0].Name)
	}
}

// Property: Synthesize always yields a valid clip across seeds and sizes.
func TestSynthesizeAlwaysValid(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		opt := DefaultSynth(seed)
		opt.NX = 4 + int(sz%4)
		opt.NY = 4 + int(sz%5)
		opt.NumNets = 2 + int(sz%5)
		opt.MaxSinks = 1 + int(sz%3)
		c := Synthesize(opt)
		return c.Validate() == nil
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 50}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(DefaultSynth(3))
	b := Synthesize(DefaultSynth(3))
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Error("synthesis is not deterministic for equal seeds")
	}
}

func TestSynthesizeProducesNets(t *testing.T) {
	c := Synthesize(DefaultSynth(1))
	if len(c.Nets) == 0 {
		t.Fatal("no nets synthesized")
	}
	multi := false
	opt := DefaultSynth(1)
	opt.MaxSinks = 3
	opt.NumNets = 6
	opt.NX, opt.NY = 8, 9
	for seed := int64(0); seed < 10 && !multi; seed++ {
		opt.Seed = seed
		for _, n := range Synthesize(opt).Nets {
			if n.NumSinks() > 1 {
				multi = true
			}
		}
	}
	if !multi {
		t.Error("MaxSinks > 1 never produced a multi-pin net across seeds")
	}
}
