package obs

import (
	"sync"
	"time"
)

// ObserveDuration records a duration in the histogram in milliseconds, the
// repository's metric convention (defaultBounds are millisecond-scaled).
// Safe on nil.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Microseconds()) / 1000)
}

// Timer measures one region and records it into a histogram. Obtain one with
// Histogram.StartTimer; the timer works (and still measures) when the
// histogram is nil, so call sites that need the elapsed time anyway — the
// scheduler's per-job runtime — use one code path with or without metrics.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer starts a Timer recording into h. Valid on a nil histogram.
func (h *Histogram) StartTimer() Timer {
	return Timer{h: h, start: time.Now()}
}

// ObserveDuration records the elapsed time since StartTimer into the
// histogram (no-op when nil) and returns it.
func (t Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	t.h.ObserveDuration(d)
	return d
}

// Throttle rate-limits an action to at most one per interval. Allow reports
// whether the action should run now; the first call always allows. It is
// concurrency-safe and nil-safe (a nil Throttle always allows), used to cap
// live progress-line redraws so fast parallel solves don't spam the
// terminal.
type Throttle struct {
	mu    sync.Mutex
	every time.Duration
	last  time.Time
}

// NewThrottle returns a Throttle allowing one action per interval; a
// non-positive interval allows everything.
func NewThrottle(every time.Duration) *Throttle {
	return &Throttle{every: every}
}

// Allow reports whether the action may run now, consuming the slot if so.
func (t *Throttle) Allow() bool {
	if t == nil || t.every <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	if now.Sub(t.last) < t.every {
		return false
	}
	t.last = now
	return true
}
