package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers counters, gauges and histograms from many
// goroutines; run under -race (ci.sh does) to prove concurrent safety.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("nodes").Inc()
				r.Counter("lp_solves").Add(2)
				r.Gauge("bound").Set(float64(w*perWorker + i))
				r.Histogram("solve_ms").Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["nodes"]; got != workers*perWorker {
		t.Errorf("nodes = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Counters["lp_solves"]; got != 2*workers*perWorker {
		t.Errorf("lp_solves = %d, want %d", got, 2*workers*perWorker)
	}
	h := snap.Histograms["solve_ms"]
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	if h.Min != 0 || h.Max != 99 {
		t.Errorf("histogram min/max = %g/%g, want 0/99", h.Min, h.Max)
	}
	if h.Mean <= 0 {
		t.Errorf("histogram mean = %g, want > 0", h.Mean)
	}
}

// TestGaugeAdd proves the CAS accumulator: concurrent +1/-1 pairs from many
// goroutines must cancel exactly (run under -race in ci.sh).
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(2.5)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 2.5*workers {
		t.Errorf("gauge = %g, want %g", got, 2.5*float64(workers))
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	st := h.Stat()
	if st.Count != 100 || st.Sum != 5050 || st.Min != 1 || st.Max != 100 {
		t.Fatalf("bad stat: %+v", st)
	}
	if st.P50 < 40 || st.P50 > 60 {
		t.Errorf("p50 = %g, want ~50", st.P50)
	}
	if st.P99 < 90 {
		t.Errorf("p99 = %g, want >= 90", st.P99)
	}
	// Bucket totals must account for every observation.
	var n int64
	for _, c := range st.Buckets {
		n += c
	}
	if n != st.Count {
		t.Errorf("bucket total %d != count %d", n, st.Count)
	}
}

// TestNilSafety ensures a disabled observability layer (nil registry,
// tracer, spans) never panics: call sites are guard-free by contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot not empty")
	}

	var tr *Tracer
	sp := tr.Start("root")
	sp.SetAttr("k", 1)
	sp.Event("e")
	child := sp.Child("c")
	child.End()
	sp.End()
	tr.Event(nil, "e2")
	if err := tr.Flush(); err != nil {
		t.Errorf("nil tracer flush: %v", err)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("nodes").Add(7)
	r.Gauge("gap").Set(0.25)
	r.Histogram("ms", 10, 100).Observe(42)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["nodes"] != 7 || back.Gauges["gap"] != 0.25 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if back.Histograms["ms"].Count != 1 {
		t.Errorf("histogram lost: %+v", back.Histograms)
	}
}
