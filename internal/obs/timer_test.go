package obs

import (
	"testing"
	"time"
)

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	st := h.Stat()
	if st.Count != 1 || st.Sum != 1.5 {
		t.Errorf("stat = %+v, want one 1.5ms observation", st)
	}
	var nilH *Histogram
	nilH.ObserveDuration(time.Second) // must not panic
}

func TestTimer(t *testing.T) {
	var h Histogram
	tm := h.StartTimer()
	time.Sleep(2 * time.Millisecond)
	d := tm.ObserveDuration()
	if d < time.Millisecond {
		t.Errorf("timer measured %v, want >= ~2ms", d)
	}
	if st := h.Stat(); st.Count != 1 || st.Sum < 1 {
		t.Errorf("stat = %+v, want the timed region recorded in ms", st)
	}

	// A nil histogram's timer still measures (the scheduler depends on this).
	var nilH *Histogram
	tm = nilH.StartTimer()
	time.Sleep(time.Millisecond)
	if d := tm.ObserveDuration(); d < 500*time.Microsecond {
		t.Errorf("nil-histogram timer measured %v", d)
	}
}

func TestThrottle(t *testing.T) {
	th := NewThrottle(time.Hour)
	if !th.Allow() {
		t.Fatal("first Allow must pass")
	}
	if th.Allow() {
		t.Fatal("second Allow within the interval must be rejected")
	}

	th = NewThrottle(time.Millisecond)
	th.Allow()
	time.Sleep(3 * time.Millisecond)
	if !th.Allow() {
		t.Error("Allow after the interval elapsed must pass")
	}

	var nilTh *Throttle
	if !nilTh.Allow() || !NewThrottle(0).Allow() || !NewThrottle(0).Allow() {
		t.Error("nil or zero-interval throttles must always allow")
	}
}
