package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key string
	Val interface{}
}

// A is shorthand for constructing an Attr.
func A(key string, val interface{}) Attr { return Attr{Key: key, Val: val} }

// SpanRecord is one line of a JSON-lines trace: a completed span or a
// zero-duration event.
type SpanRecord struct {
	ID      int64                  `json:"id"`
	Parent  int64                  `json:"parent,omitempty"` // 0 = root
	Name    string                 `json:"name"`
	StartUS int64                  `json:"start_us"` // offset from trace epoch
	DurUS   int64                  `json:"dur_us"`
	Event   bool                   `json:"event,omitempty"`
	Attrs   map[string]interface{} `json:"attrs,omitempty"`
}

// Tracer emits hierarchical timed spans as JSON lines. Create one with
// NewTracer; a nil *Tracer (and the nil *Span values it then returns) is a
// valid no-op, so instrumented code never guards trace calls.
type Tracer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	sink    io.Writer // the unbuffered writer, for Close
	err     error
	closed  bool
	epoch   time.Time
	seq     atomic.Int64
	dropped atomic.Int64 // records that did not reach the retained trace
	dropCtr *Counter     // optional registry mirror (trace_dropped_total)
	rot     *rotState    // nil = unbounded single-file output
}

// rotState is the size-cap bookkeeping of a rotating tracer: how many bytes
// and records the live file holds, and the record counts of the archived
// files (index 0 = <path>.1, the newest archive) so deleting the oldest
// archive can credit its records to the dropped counter.
type rotState struct {
	path     string
	maxBytes int64
	keep     int // total files retained: the live file plus keep-1 archives
	written  int64
	recs     int64
	archived []int64
}

// NewTracer returns a Tracer writing JSON lines to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w), sink: w, epoch: time.Now()}
}

// NewRotatingTracer returns a Tracer writing JSON lines to path, rotating to
// path.1 .. path.(keep-1) whenever the live file would exceed maxBytes; the
// oldest archive is deleted (keep <= 1 truncates in place). Records lost to
// deletion are counted in Dropped — long sweeps get a bounded trace footprint
// of roughly keep*maxBytes with explicit, never silent, truncation.
func NewRotatingTracer(path string, maxBytes int64, keep int) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if keep < 1 {
		keep = 1
	}
	if maxBytes < 4096 {
		maxBytes = 4096 // any single record must fit in the live file
	}
	t := NewTracer(f)
	t.rot = &rotState{path: path, maxBytes: maxBytes, keep: keep}
	return t, nil
}

// SetDropCounter mirrors every future dropped record into c (typically a
// registry's trace_dropped_total), so live /metrics scrapes see trace loss
// as it happens. Safe on nil tracer and nil counter.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropCtr = c
}

// Dropped returns how many records were dropped (rotation deletions, emits
// after close, or write/marshal failures). Safe on nil.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// drop records n lost records; callers hold t.mu (or run before the tracer
// is shared).
func (t *Tracer) drop(n int64) {
	if n <= 0 {
		return
	}
	t.dropped.Add(n)
	t.dropCtr.Add(n)
}

// rotateLocked shifts the archive chain and reopens a fresh live file. Called
// with t.mu held, between whole records, so every retained file is valid
// JSONL. Rename/remove failures surface as the tracer error.
func (t *Tracer) rotateLocked() error {
	if err := t.w.Flush(); err != nil {
		return err
	}
	r := t.rot
	if c, ok := t.sink.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return err
		}
	}
	if r.keep <= 1 {
		// No archives: truncating the live file drops everything in it.
		t.drop(r.recs)
	} else {
		if len(r.archived) == r.keep-1 {
			oldest := fmt.Sprintf("%s.%d", r.path, r.keep-1)
			if err := os.Remove(oldest); err != nil && !os.IsNotExist(err) {
				return err
			}
			t.drop(r.archived[len(r.archived)-1])
			r.archived = r.archived[:len(r.archived)-1]
		}
		for i := len(r.archived); i >= 1; i-- {
			from := fmt.Sprintf("%s.%d", r.path, i)
			if err := os.Rename(from, fmt.Sprintf("%s.%d", r.path, i+1)); err != nil {
				return err
			}
		}
		if err := os.Rename(r.path, r.path+".1"); err != nil {
			return err
		}
		r.archived = append([]int64{r.recs}, r.archived...)
	}
	f, err := os.Create(r.path)
	if err != nil {
		return err
	}
	t.sink = f
	t.w = bufio.NewWriter(f)
	r.written, r.recs = 0, 0
	return nil
}

// Start opens a root span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	return t.start(0, name, attrs)
}

func (t *Tracer) start(parent int64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		id:     t.seq.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// Event emits a zero-duration record, optionally parented (parent may be
// nil for a root event).
func (t *Tracer) Event(parent *Span, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	var pid int64
	if parent != nil {
		pid = parent.id
	}
	t.emit(SpanRecord{
		ID:      t.seq.Add(1),
		Parent:  pid,
		Name:    name,
		StartUS: time.Since(t.epoch).Microseconds(),
		Event:   true,
		Attrs:   attrMap(attrs),
	})
}

func (t *Tracer) emit(rec SpanRecord) {
	b, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.closed {
		t.drop(1)
		return
	}
	if err != nil {
		t.err = err
		t.drop(1)
		return
	}
	line := append(b, '\n')
	if r := t.rot; r != nil && r.written > 0 && r.written+int64(len(line)) > r.maxBytes {
		if err := t.rotateLocked(); err != nil {
			t.err = err
			t.drop(1)
			return
		}
	}
	if _, err := t.w.Write(line); err != nil {
		t.err = err
		t.drop(1)
		return
	}
	if r := t.rot; r != nil {
		r.written += int64(len(line))
		r.recs++
	}
}

// Flush drains buffered records to the underlying writer and returns the
// first error encountered by the tracer, if any. Safe on nil.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() error {
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes buffered records and, when the underlying writer is an
// io.Closer (the CLIs hand the Tracer an *os.File), closes it. Subsequent
// emits are dropped. Idempotent and safe on nil, so CLIs can Close both on
// the normal path and on the interrupt path without double-close errors.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	err := t.flushLocked()
	if c, ok := t.sink.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && t.err == nil {
			t.err = cerr
			err = cerr
		}
	}
	return err
}

// Span is one timed region. End writes its record; Child opens a nested
// span. All methods are safe on nil receivers.
type Span struct {
	tracer *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  []Attr
	ended  bool
}

// Child opens a span nested under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s.id, name, attrs)
}

// SetAttr attaches (or overwrites) an annotation on the span.
func (s *Span) SetAttr(key string, val interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// Event emits a zero-duration record parented to s.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.Event(s, name, attrs...)
}

// End closes the span, writing its JSON-lines record. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := attrMap(s.attrs)
	s.mu.Unlock()
	s.tracer.emit(SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.tracer.epoch).Microseconds(),
		DurUS:   time.Since(s.start).Microseconds(),
		Attrs:   attrs,
	})
}

func attrMap(attrs []Attr) map[string]interface{} {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]interface{}, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// ReadTrace parses a JSON-lines trace produced by a Tracer.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
