package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key string
	Val interface{}
}

// A is shorthand for constructing an Attr.
func A(key string, val interface{}) Attr { return Attr{Key: key, Val: val} }

// SpanRecord is one line of a JSON-lines trace: a completed span or a
// zero-duration event.
type SpanRecord struct {
	ID      int64                  `json:"id"`
	Parent  int64                  `json:"parent,omitempty"` // 0 = root
	Name    string                 `json:"name"`
	StartUS int64                  `json:"start_us"` // offset from trace epoch
	DurUS   int64                  `json:"dur_us"`
	Event   bool                   `json:"event,omitempty"`
	Attrs   map[string]interface{} `json:"attrs,omitempty"`
}

// Tracer emits hierarchical timed spans as JSON lines. Create one with
// NewTracer; a nil *Tracer (and the nil *Span values it then returns) is a
// valid no-op, so instrumented code never guards trace calls.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	sink   io.Writer // the unbuffered writer, for Close
	err    error
	closed bool
	epoch  time.Time
	seq    atomic.Int64
}

// NewTracer returns a Tracer writing JSON lines to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w), sink: w, epoch: time.Now()}
}

// Start opens a root span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	return t.start(0, name, attrs)
}

func (t *Tracer) start(parent int64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		id:     t.seq.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// Event emits a zero-duration record, optionally parented (parent may be
// nil for a root event).
func (t *Tracer) Event(parent *Span, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	var pid int64
	if parent != nil {
		pid = parent.id
	}
	t.emit(SpanRecord{
		ID:      t.seq.Add(1),
		Parent:  pid,
		Name:    name,
		StartUS: time.Since(t.epoch).Microseconds(),
		Event:   true,
		Attrs:   attrMap(attrs),
	})
}

func (t *Tracer) emit(rec SpanRecord) {
	b, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.closed {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

// Flush drains buffered records to the underlying writer and returns the
// first error encountered by the tracer, if any. Safe on nil.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() error {
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes buffered records and, when the underlying writer is an
// io.Closer (the CLIs hand the Tracer an *os.File), closes it. Subsequent
// emits are dropped. Idempotent and safe on nil, so CLIs can Close both on
// the normal path and on the interrupt path without double-close errors.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	err := t.flushLocked()
	if c, ok := t.sink.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && t.err == nil {
			t.err = cerr
			err = cerr
		}
	}
	return err
}

// Span is one timed region. End writes its record; Child opens a nested
// span. All methods are safe on nil receivers.
type Span struct {
	tracer *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  []Attr
	ended  bool
}

// Child opens a span nested under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s.id, name, attrs)
}

// SetAttr attaches (or overwrites) an annotation on the span.
func (s *Span) SetAttr(key string, val interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// Event emits a zero-duration record parented to s.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.Event(s, name, attrs...)
}

// End closes the span, writing its JSON-lines record. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := attrMap(s.attrs)
	s.mu.Unlock()
	s.tracer.emit(SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.tracer.epoch).Microseconds(),
		DurUS:   time.Since(s.start).Microseconds(),
		Attrs:   attrs,
	})
}

func attrMap(attrs []Attr) map[string]interface{} {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]interface{}, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// ReadTrace parses a JSON-lines trace produced by a Tracer.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
