// Trace reconstruction: the read side of the JSONL span traces the Tracer
// writes. BuildTree turns a flat record list back into the span hierarchy
// (records are emitted at span End, so parents appear after their children —
// resolution is order-independent), and ValidateTrace checks the structural
// invariants every well-formed trace must satisfy: unique IDs, resolvable
// parents, and children nested within their parents' time ranges.
package obs

import (
	"fmt"
	"sort"
)

// TraceNode is one span (or event) of a reconstructed trace tree.
type TraceNode struct {
	SpanRecord
	Children []*TraceNode
}

// EndUS returns the span's end offset from the trace epoch.
func (n *TraceNode) EndUS() int64 { return n.StartUS + n.DurUS }

// SelfUS returns the span's wall time not covered by child spans (events are
// zero-duration and contribute nothing). Negative self time from microsecond
// truncation clamps to zero.
func (n *TraceNode) SelfUS() int64 {
	self := n.DurUS
	for _, c := range n.Children {
		self -= c.DurUS
	}
	if self < 0 {
		self = 0
	}
	return self
}

// Attr returns the named span attribute (nil when absent).
func (n *TraceNode) Attr(key string) interface{} {
	if n.Attrs == nil {
		return nil
	}
	return n.Attrs[key]
}

// AttrString returns the named attribute as a string ("" when absent or not
// a string).
func (n *TraceNode) AttrString(key string) string {
	s, _ := n.Attr(key).(string)
	return s
}

// AttrFloat returns the named attribute as a float64. JSON unmarshals every
// number to float64, so this covers the solvers' numeric attrs; ok reports
// presence.
func (n *TraceNode) AttrFloat(key string) (float64, bool) {
	v, ok := n.Attr(key).(float64)
	return v, ok
}

// TraceTree is a reconstructed span forest: one root per top-level span or
// event, children sorted by start time.
type TraceTree struct {
	Roots []*TraceNode
	ByID  map[int64]*TraceNode
	// Spans and Events count the record kinds (Spans+Events == total records).
	Spans, Events int
}

// Walk visits every node of the tree depth-first in start order.
func (t *TraceTree) Walk(fn func(*TraceNode)) {
	var rec func(n *TraceNode)
	rec = func(n *TraceNode) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, r := range t.Roots {
		rec(r)
	}
}

// BuildTree reconstructs the span hierarchy from a flat record list. It fails
// on duplicate IDs and unresolved parent references — a trace that parses but
// cannot be reassembled is corrupt, not merely incomplete.
func BuildTree(recs []SpanRecord) (*TraceTree, error) {
	t := &TraceTree{ByID: make(map[int64]*TraceNode, len(recs))}
	nodes := make([]TraceNode, len(recs))
	for i, r := range recs {
		if _, dup := t.ByID[r.ID]; dup {
			return nil, fmt.Errorf("obs: duplicate span id %d", r.ID)
		}
		nodes[i] = TraceNode{SpanRecord: r}
		t.ByID[r.ID] = &nodes[i]
		if r.Event {
			t.Events++
		} else {
			t.Spans++
		}
	}
	for i := range nodes {
		n := &nodes[i]
		if n.Parent == 0 {
			t.Roots = append(t.Roots, n)
			continue
		}
		p, ok := t.ByID[n.Parent]
		if !ok {
			return nil, fmt.Errorf("obs: span %d (%s) references unknown parent %d",
				n.ID, n.Name, n.Parent)
		}
		p.Children = append(p.Children, n)
	}
	byStart := func(ns []*TraceNode) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].StartUS < ns[j].StartUS })
	}
	byStart(t.Roots)
	for i := range nodes {
		byStart(nodes[i].Children)
	}
	return t, nil
}

// nestTolUS absorbs the microsecond truncation of StartUS/DurUS: a child's
// reconstructed end can overhang its parent's by a few microseconds even
// though the underlying time.Time ranges nest exactly.
const nestTolUS = 10

// ValidateTrace checks a record list for structural well-formedness and
// returns a description of every violation found (empty = well-formed):
// duplicate IDs, parent references that do not resolve, spans that start
// before or end after their parent, and events outside their parent's time
// range. It is the check behind `traceview -validate`.
func ValidateTrace(recs []SpanRecord) []string {
	var problems []string
	tree, err := BuildTree(recs)
	if err != nil {
		return []string{err.Error()}
	}
	tree.Walk(func(n *TraceNode) {
		if n.DurUS < 0 {
			problems = append(problems, fmt.Sprintf(
				"span %d (%s): negative duration %dus", n.ID, n.Name, n.DurUS))
		}
		for _, c := range n.Children {
			if c.StartUS+nestTolUS < n.StartUS {
				problems = append(problems, fmt.Sprintf(
					"span %d (%s) starts %dus before its parent %d (%s)",
					c.ID, c.Name, n.StartUS-c.StartUS, n.ID, n.Name))
			}
			if c.EndUS() > n.EndUS()+nestTolUS {
				problems = append(problems, fmt.Sprintf(
					"span %d (%s) ends %dus after its parent %d (%s)",
					c.ID, c.Name, c.EndUS()-n.EndUS(), n.ID, n.Name))
			}
		}
	})
	return problems
}
