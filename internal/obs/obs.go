// Package obs is a zero-dependency observability substrate for the solver
// stack: lightweight concurrent-safe counters, gauges and histograms
// gathered in a Registry, plus hierarchical timed spans (trace.go) exported
// as JSON lines.
//
// Solvers accept an optional *Registry / *Tracer and record into them;
// everything is nil-safe, so instrumentation sites never need guards and
// cost a few nanoseconds when observability is off. A Registry Snapshot is
// a plain data structure that serializes to the machine-readable metrics
// JSON emitted by cmd/beoleval -stats.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or adjustable) int64 metric.
// The zero value is ready to use; methods are safe for concurrent use and
// no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 metric. The zero value is ready; all
// methods are concurrent-safe and nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates d into the gauge atomically (CAS loop), so it can serve
// as an up/down counter — e.g. the scheduler's in-flight job gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations with count/sum/min/max and fixed
// bucket boundaries. The zero value uses default buckets on first Observe.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; implicit +Inf tail
	counts  []int64   // len(bounds)+1
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64 // bounded reservoir for percentile estimates
}

// defaultBounds suit millisecond-scale durations and small count metrics.
var defaultBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

const maxSamples = 1024

// Observe records one observation; safe for concurrent use, no-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		if h.bounds == nil {
			h.bounds = defaultBounds
		}
		h.counts = make([]int64, len(h.bounds)+1)
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < maxSamples {
		h.samples = append(h.samples, v)
	} else {
		// Deterministic decimating reservoir: overwrite round-robin.
		h.samples[int(h.count)%maxSamples] = v
	}
}

// HistogramStat is the exported state of a Histogram.
type HistogramStat struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Mean    float64   `json:"mean"`
	P50     float64   `json:"p50"`
	P90     float64   `json:"p90"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Stat returns a consistent snapshot of the histogram.
func (h *Histogram) Stat() HistogramStat {
	if h == nil {
		return HistogramStat{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistogramStat{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: append([]int64(nil), h.counts...),
	}
	if h.count > 0 {
		st.Mean = h.sum / float64(h.count)
	}
	if len(h.samples) > 0 {
		s := append([]float64(nil), h.samples...)
		sort.Float64s(s)
		q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
		st.P50, st.P90, st.P99 = q(0.50), q(0.90), q(0.99)
	}
	return st
}

// Registry is a named collection of metrics. Metric accessors get-or-create
// under a lock and are safe for concurrent use; a nil Registry yields nil
// metrics, which are themselves safe no-ops — so call sites never branch.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed (nil on nil r).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil on nil r).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (default bounds when none) if needed (nil on nil r).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		if len(bounds) == 0 {
			h.bounds = nil // fall back to defaults on first Observe
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time, JSON-serializable view of a Registry.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramStat `json:"histograms"`
}

// Snapshot captures all metrics. Safe on nil (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStat{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range ctrs {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Stat()
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
