package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestFlightDisabledIsNil(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	span := tr.Start("solve")
	if f := NewFlight(span, FlightOptions{}); f != nil {
		t.Fatalf("disabled FlightOptions must yield nil, got %+v", f)
	}
	var f *Flight
	if f.Event("node") {
		t.Error("nil Flight.Event must report not recorded")
	}
	f.Finish() // must not panic
	if f.Seen() != 0 || f.Dropped() != 0 {
		t.Errorf("nil Flight counters = %d/%d, want 0/0", f.Seen(), f.Dropped())
	}
}

func TestFlightSamplingAndCap(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	span := tr.Start("solve")
	f := NewFlight(span, FlightOptions{Enabled: true, Burst: 4, Every: 3, MaxEvents: 8})
	total := 40
	kept := 0
	for i := 0; i < total; i++ {
		if f.Event("node", A("n", i)) {
			kept++
		}
	}
	// First 4 always kept, then every 3rd of the remaining 36 (12 more), but
	// capped at 8 total.
	if kept != 8 {
		t.Errorf("kept = %d, want 8 (cap)", kept)
	}
	if f.Seen() != int64(total) {
		t.Errorf("seen = %d, want %d", f.Seen(), total)
	}
	if f.Dropped() != int64(total-kept) {
		t.Errorf("dropped = %d, want %d", f.Dropped(), total-kept)
	}
	f.Finish()
	span.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	var solve *SpanRecord
	for i, r := range recs {
		if r.Event {
			events++
		}
		if r.Name == "solve" {
			solve = &recs[i]
		}
	}
	if events != kept {
		t.Errorf("trace has %d events, want %d", events, kept)
	}
	if solve == nil {
		t.Fatal("no solve span in trace")
	}
	if v, _ := solve.Attrs["flight_dropped"].(float64); int64(v) != f.Dropped() {
		t.Errorf("flight_dropped attr = %v, want %d", solve.Attrs["flight_dropped"], f.Dropped())
	}
}

// TestFlightConcurrentAccounting drives one Flight from many goroutines —
// the parallel tree search's emission pattern — and asserts the accounting
// invariant the solve-span attrs rest on: seen == kept + dropped, kept never
// exceeds the event cap, and the trace holds exactly kept events. Run under
// -race this is also the data-race gate for the recorder's hot path.
func TestFlightConcurrentAccounting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	span := tr.Start("solve")
	const (
		goroutines = 16
		perG       = 500
		maxEv      = 900
	)
	f := NewFlight(span, FlightOptions{Enabled: true, Burst: 64, Every: 2, MaxEvents: maxEv})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				f.Event("node", A("w", g), A("i", i))
			}
		}()
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if f.Seen() != total {
		t.Errorf("seen = %d, want %d", f.Seen(), total)
	}
	if f.Seen() != f.Kept()+f.Dropped() {
		t.Errorf("accounting: seen %d != kept %d + dropped %d", f.Seen(), f.Kept(), f.Dropped())
	}
	if f.Kept() > maxEv {
		t.Errorf("kept %d exceeds cap %d", f.Kept(), maxEv)
	}
	if f.Kept() == 0 {
		t.Error("no events kept")
	}

	f.Finish()
	span.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	var solve *SpanRecord
	for i, r := range recs {
		if r.Event {
			events++
		}
		if r.Name == "solve" {
			solve = &recs[i]
		}
	}
	if int64(events) != f.Kept() {
		t.Errorf("trace holds %d events, recorder kept %d", events, f.Kept())
	}
	if solve == nil {
		t.Fatal("no solve span in trace")
	}
	seen, _ := solve.Attrs["flight_seen"].(float64)
	kept, _ := solve.Attrs["flight_kept"].(float64)
	dropped, _ := solve.Attrs["flight_dropped"].(float64)
	if int64(seen) != int64(kept)+int64(dropped) {
		t.Errorf("span attrs: seen %v != kept %v + dropped %v", seen, kept, dropped)
	}
}

func TestFlightBurstThenEvery(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	f := NewFlight(tr.Start("s"), FlightOptions{Enabled: true, Burst: 2, Every: 5, MaxEvents: -1})
	var pattern []bool
	for i := 0; i < 12; i++ {
		pattern = append(pattern, f.Event("node"))
	}
	want := []bool{true, true, false, false, false, false, true, false, false, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("event %d recorded=%v, want %v (pattern %v)", i, pattern[i], want[i], pattern)
		}
	}
}
