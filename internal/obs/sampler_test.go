package obs

import (
	"strings"
	"testing"
	"time"
)

// burnStacks is the workload the sampler should catch: a recognisable
// function name busy on CPU.
//
//go:noinline
func burnStacks(d time.Duration) uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1024; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	return x
}

var samplerSink uint64

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.Stop()
	if s.Hz() != 0 || s.Samples() != 0 {
		t.Fatal("nil sampler not zero-valued")
	}
	p := s.Profile(5)
	if p.Samples != 0 || len(p.Funcs) != 0 {
		t.Fatalf("nil Profile = %+v", p)
	}
	w := s.Window()
	if w != nil {
		t.Fatal("nil sampler Window should be nil")
	}
	wp := w.End(5)
	if wp.Samples != 0 {
		t.Fatalf("nil window End = %+v", wp)
	}
}

func TestSamplerCapturesBusyFunction(t *testing.T) {
	s := StartSampler(SamplerOptions{Hz: 500})
	defer s.Stop()
	w := s.Window()
	samplerSink += burnStacks(300 * time.Millisecond)
	p := w.End(0)
	if p.Hz != 500 {
		t.Fatalf("Hz = %d, want 500", p.Hz)
	}
	if p.Samples == 0 {
		t.Fatal("window captured no samples in 300ms at 500 Hz")
	}
	found := false
	for _, f := range p.Funcs {
		if strings.Contains(f.Fn, "burnStacks") {
			found = true
			if f.Cum < f.Self {
				t.Errorf("burnStacks cum %d < self %d", f.Cum, f.Self)
			}
		}
		if f.Self < 0 || f.Cum <= 0 {
			t.Errorf("%s has non-positive counts: %+v", f.Fn, f)
		}
		if strings.Contains(f.Fn, "(*Sampler)") {
			t.Errorf("sampler sampled itself: %s", f.Fn)
		}
	}
	if !found {
		t.Errorf("burnStacks not in profile; funcs = %+v", p.Funcs)
	}
}

func TestSamplerTopNAndOrdering(t *testing.T) {
	s := StartSampler(SamplerOptions{Hz: 500, Registry: NewRegistry()})
	defer s.Stop()
	samplerSink += burnStacks(200 * time.Millisecond)
	p := s.Profile(3)
	if len(p.Funcs) > 3 {
		t.Fatalf("topN=3 returned %d funcs", len(p.Funcs))
	}
	for i := 1; i < len(p.Funcs); i++ {
		if p.Funcs[i-1].Self < p.Funcs[i].Self {
			t.Fatalf("funcs not sorted by self desc: %+v", p.Funcs)
		}
	}
	if s.Samples() == 0 {
		t.Fatal("no samples recorded")
	}
}

func TestSamplerWindowIsolation(t *testing.T) {
	s := StartSampler(SamplerOptions{Hz: 500})
	defer s.Stop()
	samplerSink += burnStacks(100 * time.Millisecond)
	w := s.Window()
	p := w.End(0) // closed immediately: at most a tick's worth of samples
	if p.Samples > s.Samples() {
		t.Fatalf("window samples %d exceed sampler total %d", p.Samples, s.Samples())
	}
	// Ending twice must not corrupt state.
	_ = w.End(0)
	w2 := s.Window()
	samplerSink += burnStacks(100 * time.Millisecond)
	p2 := w2.End(0)
	if p2.Samples == 0 {
		t.Fatal("second window captured nothing")
	}
}

func TestSamplerStopIdempotent(t *testing.T) {
	s := StartSampler(SamplerOptions{Hz: 100})
	s.Stop()
	s.Stop()
	n := s.Samples()
	time.Sleep(30 * time.Millisecond)
	if s.Samples() != n {
		t.Fatal("samples advanced after Stop")
	}
}

// BenchmarkSamplerOff/On pin the acceptance bound: the sampler must cost
// under 2% of workload throughput when on at the default rate, and nothing
// when off. Compare ns/op of the two:
//
//	go test ./internal/obs -bench 'BenchmarkSampler(Off|On)$' -benchtime 2s
func BenchmarkSamplerOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samplerSink += burnStacks(10 * time.Millisecond)
	}
}

func BenchmarkSamplerOn(b *testing.B) {
	s := StartSampler(SamplerOptions{Hz: 100})
	defer s.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samplerSink += burnStacks(10 * time.Millisecond)
	}
}
