// Flight recorder: a sampling layer between the solvers' per-node search
// events and the Tracer, so multi-thousand-node solves produce bounded
// traces. The solvers emit one structured event per search node (open /
// branch / fathom / prune, with bounds, depth and the chosen branching
// variable); the Flight decides which of them reach the trace and counts the
// rest in an explicit dropped counter — truncation is always visible, never
// silent.
package obs

import "sync/atomic"

// FlightOptions configures per-node search-event recording. The zero value
// is disabled (no events, zero overhead beyond a nil check); enabling it with
// all other fields zero records every node up to the MaxEvents default.
type FlightOptions struct {
	// Enabled turns per-node event recording on. Off by default: node events
	// cost one JSON record per search node, which full-corpus sweeps do not
	// want unless a trace is being collected for analysis.
	Enabled bool
	// Every samples one in Every node events after the first Burst
	// (default 1 = record all).
	Every int
	// Burst is the number of initial events always recorded before sampling
	// starts (default 1024). The head of the search — root, first dives,
	// first incumbents — is where most per-node variance lives.
	Burst int
	// MaxEvents caps recorded events per solve (default 100000, < 0 =
	// unlimited). Events beyond the cap are counted as dropped.
	MaxEvents int
}

func (o FlightOptions) withDefaults() FlightOptions {
	if o.Every <= 0 {
		o.Every = 1
	}
	if o.Burst == 0 {
		o.Burst = 1024
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 100000
	}
	return o
}

// Flight is one solve's search-event recorder: events pass through sampling
// and capping before reaching the span's tracer. All methods are safe for
// concurrent use — the parallel tree search emits node events from every
// worker onto one Flight — and the accounting invariant seen == kept +
// dropped holds at every quiescent point (each event increments exactly one
// of kept/dropped). All methods are no-ops on a nil receiver, so
// instrumentation sites never guard — a disabled FlightOptions yields a nil
// *Flight.
type Flight struct {
	span    *Span
	opt     FlightOptions
	seen    atomic.Int64
	kept    atomic.Int64
	dropped atomic.Int64
}

// NewFlight returns a recorder emitting sampled events under span, or nil
// when recording is disabled or there is no span to attach to.
func NewFlight(span *Span, opt FlightOptions) *Flight {
	if !opt.Enabled || span == nil {
		return nil
	}
	return &Flight{span: span, opt: opt.withDefaults()}
}

// Event records one search event, subject to sampling and the event cap.
// It reports whether the event reached the trace, so callers can skip
// building expensive attributes for dropped events. Safe for concurrent use:
// the sampling decision is made on the atomically claimed sequence number,
// and the cap reservation rolls back (into dropped) on overshoot, so each
// event lands in exactly one of kept/dropped.
func (f *Flight) Event(name string, attrs ...Attr) bool {
	if f == nil {
		return false
	}
	seen := f.seen.Add(1)
	keep := seen <= int64(f.opt.Burst) ||
		(seen-int64(f.opt.Burst))%int64(f.opt.Every) == 0
	if keep && f.opt.MaxEvents >= 0 {
		// Reserve a kept slot; on overshoot give it back and drop instead.
		if f.kept.Add(1) > int64(f.opt.MaxEvents) {
			f.kept.Add(-1)
			keep = false
		}
	} else if keep {
		f.kept.Add(1)
	}
	if !keep {
		f.dropped.Add(1)
		return false
	}
	f.span.Event(name, attrs...)
	return true
}

// Seen returns how many events were offered to the recorder.
func (f *Flight) Seen() int64 {
	if f == nil {
		return 0
	}
	return f.seen.Load()
}

// Kept returns how many offered events reached the trace.
func (f *Flight) Kept() int64 {
	if f == nil {
		return 0
	}
	return f.kept.Load()
}

// Dropped returns how many offered events did not reach the trace.
func (f *Flight) Dropped() int64 {
	if f == nil {
		return 0
	}
	return f.dropped.Load()
}

// Finish stamps the recorder's accounting onto the solve span, making
// sampling visible to trace consumers: flight_seen / flight_kept /
// flight_dropped. Call it just before ending the span, after every emitting
// goroutine has stopped.
func (f *Flight) Finish() {
	if f == nil {
		return
	}
	f.span.SetAttr("flight_seen", f.seen.Load())
	f.span.SetAttr("flight_kept", f.kept.Load())
	f.span.SetAttr("flight_dropped", f.dropped.Load())
}
