package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildSampleTrace emits a realistic nested trace through a real Tracer.
func buildSampleTrace(t *testing.T) []SpanRecord {
	t.Helper()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start("solve", A("clip", "c1"))
	child := root.Child("heuristic")
	time.Sleep(time.Millisecond)
	child.End()
	root.Event("incumbent", A("cost", 42))
	grand := root.Child("phase")
	grand.Event("node", A("n", 1))
	grand.End()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestBuildTree(t *testing.T) {
	recs := buildSampleTrace(t)
	tree, err := BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Name != "solve" {
		t.Errorf("root = %s, want solve", root.Name)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root children = %d, want 3", len(root.Children))
	}
	// Children sorted by start: heuristic, incumbent event, phase.
	if root.Children[0].Name != "heuristic" || root.Children[2].Name != "phase" {
		t.Errorf("child order: %s, %s, %s", root.Children[0].Name,
			root.Children[1].Name, root.Children[2].Name)
	}
	if tree.Spans != 3 || tree.Events != 2 {
		t.Errorf("spans/events = %d/%d, want 3/2", tree.Spans, tree.Events)
	}
	if got := root.AttrString("clip"); got != "c1" {
		t.Errorf("clip attr = %q", got)
	}
	if self := root.SelfUS(); self < 0 || self > root.DurUS {
		t.Errorf("self time %dus outside [0, %dus]", self, root.DurUS)
	}
	n := 0
	tree.Walk(func(*TraceNode) { n++ })
	if n != len(recs) {
		t.Errorf("walk visited %d nodes, want %d", n, len(recs))
	}
}

func TestValidateTraceWellFormed(t *testing.T) {
	recs := buildSampleTrace(t)
	if probs := ValidateTrace(recs); len(probs) != 0 {
		t.Errorf("well-formed trace reported problems: %v", probs)
	}
}

func TestValidateTraceCatchesCorruption(t *testing.T) {
	base := buildSampleTrace(t)

	orphan := append([]SpanRecord(nil), base...)
	orphan = append(orphan, SpanRecord{ID: 99, Parent: 12345, Name: "lost"})
	if probs := ValidateTrace(orphan); len(probs) == 0 {
		t.Error("unresolved parent not reported")
	}

	dup := append([]SpanRecord(nil), base...)
	dup = append(dup, SpanRecord{ID: base[0].ID, Name: "dup"})
	if probs := ValidateTrace(dup); len(probs) == 0 {
		t.Error("duplicate id not reported")
	}

	// A child overhanging its parent's end by far more than clock truncation.
	bad := append([]SpanRecord(nil), base...)
	for i := range bad {
		if bad[i].Name == "heuristic" {
			bad[i].DurUS += 10_000_000
		}
	}
	if probs := ValidateTrace(bad); len(probs) == 0 {
		t.Error("child escaping parent time range not reported")
	}
}

func TestRotatingTracerBoundsOutputAndCountsDrops(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	tr, err := NewRotatingTracer(path, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctr := &Counter{}
	tr.SetDropCounter(ctr)
	// Each record is ~60 bytes; thousands of them overflow 3x4KiB many times.
	const total = 5000
	for i := 0; i < total; i++ {
		tr.Event(nil, "node", A("n", i))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	kept := 0
	var liveSize int64
	for _, name := range []string{path, path + ".1", path + ".2"} {
		f, err := os.Open(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recs, err := ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
		kept += len(recs)
		st, _ := os.Stat(name)
		if st.Size() > 4096 {
			t.Errorf("%s is %d bytes, over the 4096 cap", name, st.Size())
		}
		if name == path {
			liveSize = st.Size()
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("archive beyond keep=3 exists: %s.3", path)
	}
	if liveSize == 0 {
		t.Error("live trace file is empty")
	}
	if kept == 0 || kept >= total {
		t.Errorf("kept = %d records, want 0 < kept < %d", kept, total)
	}
	if got := tr.Dropped(); got != int64(total-kept) {
		t.Errorf("Dropped() = %d, want %d (total %d - kept %d)", got, total-kept, total, kept)
	}
	if ctr.Value() != tr.Dropped() {
		t.Errorf("drop counter mirror = %d, want %d", ctr.Value(), tr.Dropped())
	}
}

func TestRotatingTracerTruncateInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	tr, err := NewRotatingTracer(path, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		tr.Event(nil, "node", A("n", i), A("pad", fmt.Sprintf("%032d", i)))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Errorf("keep=1 must not create archives")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadTrace(f)
	if err != nil {
		t.Fatalf("live file does not parse: %v", err)
	}
	if len(recs) == 0 || tr.Dropped() == 0 {
		t.Errorf("kept=%d dropped=%d, want both > 0", len(recs), tr.Dropped())
	}
}
