package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistrySnapshotConcurrent takes snapshots while writers are still
// hammering the registry; run under -race (ci.sh does) to prove Snapshot is
// safe against concurrent registration and observation.
func TestRegistrySnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(fmt.Sprintf("c%d", i%13)).Inc()
				r.Gauge(fmt.Sprintf("g%d", i%7)).Set(float64(i))
				r.Histogram(fmt.Sprintf("h%d", i%5)).Observe(float64(i % 100))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		for name, h := range snap.Histograms {
			var n int64
			for _, c := range h.Buckets {
				n += c
			}
			if n != h.Count {
				t.Errorf("snapshot %d: histogram %s inconsistent: buckets %d != count %d",
					i, name, n, h.Count)
			}
		}
	}
	close(stop)
	wg.Wait()
}

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
)

// TestPrometheusExposition renders a populated snapshot and checks every line
// against the text-format grammar, plus the histogram invariants the format
// requires: cumulative monotone buckets, a +Inf bucket equal to _count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("nodes").Add(42)
	r.Counter("solves-total").Inc() // '-' must be sanitized
	r.Gauge("gap").Set(0.125)
	h := r.Histogram("solve_ms", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	typed := map[string]string{}
	cum := map[string][]int64{}
	counts := map[string]int64{}
	sums := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			typed[m[1]] = m[2]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line violates exposition grammar: %q", line)
		}
		name, label, val := m[1], m[2], m[3]
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			if typed[base] != "histogram" {
				t.Errorf("bucket sample %q without histogram TYPE line", line)
			}
			if label == "" {
				t.Errorf("bucket sample missing le label: %q", line)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Errorf("bucket value not an integer: %q", line)
			}
			cum[base] = append(cum[base], n)
		case strings.HasSuffix(name, "_sum"):
			sums[strings.TrimSuffix(name, "_sum")] = true
		case strings.HasSuffix(name, "_count"):
			n, _ := strconv.ParseInt(val, 10, 64)
			counts[strings.TrimSuffix(name, "_count")] = n
		default:
			if typed[name] == "" {
				t.Errorf("sample %q has no preceding TYPE line", line)
			}
			if label != "" {
				t.Errorf("non-histogram sample has a label: %q", line)
			}
		}
	}

	if typed["nodes"] != "counter" || typed["gap"] != "gauge" {
		t.Errorf("missing TYPE lines: %v", typed)
	}
	if _, ok := typed["solves_total"]; !ok {
		t.Errorf("metric name not sanitized: %v", typed)
	}
	buckets := cum["solve_ms"]
	if len(buckets) != 4 { // three bounds + +Inf
		t.Fatalf("solve_ms buckets = %v, want 4 entries", buckets)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Errorf("buckets not cumulative: %v", buckets)
		}
	}
	if buckets[len(buckets)-1] != counts["solve_ms"] {
		t.Errorf("+Inf bucket %d != count %d", buckets[len(buckets)-1], counts["solve_ms"])
	}
	if counts["solve_ms"] != 4 || !sums["solve_ms"] {
		t.Errorf("histogram _count/_sum missing: counts=%v sums=%v", counts, sums)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("nodes").Add(7)
	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "# TYPE nodes counter\nnodes 7\n") {
		t.Errorf("body missing counter sample:\n%s", body)
	}
	// The Go runtime families follow the registry families on every scrape.
	for _, fam := range []string{
		"# TYPE go_goroutines gauge\ngo_goroutines ",
		"# TYPE go_heap_inuse_mb gauge\ngo_heap_inuse_mb ",
		"# TYPE go_gc_pause_total_ms counter\ngo_gc_pause_total_ms ",
		"# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total ",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("body missing runtime family %q:\n%s", fam, body)
		}
	}

	// Scrapes must observe live updates.
	r.Counter("nodes").Add(3)
	resp2, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n, _ = resp2.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "nodes 10\n") {
		t.Errorf("second scrape missing updated value:\n%s", string(buf[:n]))
	}
}

func TestStatusHandler(t *testing.T) {
	s := NewStatus()
	s.SetLabel("fig10 N28-12T")
	s.SetTotal(10)
	s.JobStart(0, "RULE7 clip3")
	s.JobStart(1, "RULE8 clip5")
	s.JobDone(1, false)
	s.JobDone(2, true) // worker 2 finished a job we never saw start; still counted

	srv := httptest.NewServer(StatusHandler(s))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("statusz is not valid JSON: %v", err)
	}
	if snap.Label != "fig10 N28-12T" || snap.Total != 10 || snap.Done != 2 || snap.Failed != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if len(snap.InFlight) != 1 || snap.InFlight[0].Worker != 0 || snap.InFlight[0].Name != "RULE7 clip3" {
		t.Errorf("in_flight = %+v, want worker 0's job", snap.InFlight)
	}
	if snap.ETAMS < 0 {
		t.Errorf("eta_ms = %d, want >= 0 after first completion", snap.ETAMS)
	}
	// The handler stamps a live runtime sample; a Go process always has at
	// least one goroutine and some heap in use.
	if snap.Runtime.Goroutines < 1 || snap.Runtime.HeapInuseMB <= 0 {
		t.Errorf("runtime sample = %+v, want live goroutine/heap values", snap.Runtime)
	}
}

func TestStatusSnapshotEdgeCases(t *testing.T) {
	var nilStatus *Status
	nilStatus.SetLabel("x")
	nilStatus.SetTotal(1)
	nilStatus.JobStart(0, "j")
	nilStatus.JobDone(0, false)
	snap := nilStatus.Snapshot()
	if snap.ETAMS != -1 || snap.InFlight == nil {
		t.Errorf("nil status snapshot = %+v", snap)
	}

	s := NewStatus()
	if got := s.Snapshot(); got.ETAMS != -1 {
		t.Errorf("eta before first completion = %d, want -1", got.ETAMS)
	}
	s.JobStart(3, "only")
	time.Sleep(time.Millisecond)
	if got := s.Snapshot(); len(got.InFlight) != 1 || got.InFlight[0].ElapsedMS < 0 {
		t.Errorf("in-flight elapsed = %+v", got.InFlight)
	}
}
