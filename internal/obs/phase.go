package obs

import (
	"sort"
	"time"
)

// Breakdown maps phase names to accumulated wall time. It is the export
// format of a PhaseClock and the per-solve phase-attribution record carried
// by the solver Stats structs (lp, ilp, core).
type Breakdown map[string]time.Duration

// Total sums all phases.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Merge adds other's phases into b and returns b (allocating when b is nil),
// so per-solve breakdowns fold into a per-sweep aggregate.
func (b Breakdown) Merge(other Breakdown) Breakdown {
	if len(other) == 0 {
		return b
	}
	if b == nil {
		b = Breakdown{}
	}
	for k, d := range other {
		b[k] += d
	}
	return b
}

// MS renders the breakdown as milliseconds per phase (the JSON-friendly
// form used by cmd/benchrun and the metrics document).
func (b Breakdown) MS() map[string]float64 {
	if len(b) == 0 {
		return nil
	}
	out := make(map[string]float64, len(b))
	for k, d := range b {
		out[k] = float64(d.Microseconds()) / 1000
	}
	return out
}

// Names returns the phase names in sorted order (for deterministic output).
func (b Breakdown) Names() []string {
	names := make([]string, 0, len(b))
	for k := range b {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// PhaseClock attributes contiguous wall time to named phases: at any moment
// exactly one phase is open, Enter closes the current phase and opens the
// next, and Stop closes the last one. Because the clock never pauses between
// Enter calls, the breakdown of a solve instrumented from start to Stop sums
// to the solve's wall time (the acceptance bound for phase attribution).
//
// The clock is intentionally single-goroutine (each solve owns one); all
// methods are no-ops on a nil receiver so instrumentation sites never guard.
type PhaseClock struct {
	names  []string
	totals []time.Duration
	idx    map[string]int
	cur    int // index of the open phase, -1 when stopped
	last   time.Time
}

// NewPhaseClock returns a stopped clock; the first Enter starts attribution.
func NewPhaseClock() *PhaseClock {
	return &PhaseClock{idx: map[string]int{}, cur: -1}
}

func (c *PhaseClock) phase(name string) int {
	i, ok := c.idx[name]
	if !ok {
		i = len(c.names)
		c.idx[name] = i
		c.names = append(c.names, name)
		c.totals = append(c.totals, 0)
	}
	return i
}

// Enter closes the open phase (attributing the elapsed time to it) and opens
// name. Entering the already-open phase is a cheap no-op timestamp refresh.
func (c *PhaseClock) Enter(name string) {
	if c == nil {
		return
	}
	now := time.Now()
	if c.cur >= 0 {
		c.totals[c.cur] += now.Sub(c.last)
	}
	c.cur = c.phase(name)
	c.last = now
}

// Swap is Enter returning the previously open phase name (empty when the
// clock was stopped), so nested regions — a Steiner solve inside a strong-
// branching lookahead — can restore their caller's phase on exit.
func (c *PhaseClock) Swap(name string) string {
	if c == nil {
		return ""
	}
	prev := ""
	if c.cur >= 0 {
		prev = c.names[c.cur]
	}
	c.Enter(name)
	return prev
}

// Stop closes the open phase without opening another.
func (c *PhaseClock) Stop() {
	if c == nil || c.cur < 0 {
		return
	}
	c.totals[c.cur] += time.Since(c.last)
	c.cur = -1
}

// Breakdown exports the accumulated per-phase totals. Phases with zero
// accumulated time are included (they were entered), so the phase set is
// stable across solves of different sizes.
func (c *PhaseClock) Breakdown() Breakdown {
	if c == nil || len(c.names) == 0 {
		return nil
	}
	out := make(Breakdown, len(c.names))
	for i, n := range c.names {
		out[n] = c.totals[i]
	}
	if c.cur >= 0 {
		out[c.names[c.cur]] += time.Since(c.last)
	}
	return out
}
