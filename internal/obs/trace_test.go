package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestSpanNesting verifies parent/child ids across three levels plus events.
func TestSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	root := tr.Start("solve", A("nets", 4))
	lp := root.Child("lp")
	inner := lp.Child("pivot")
	inner.End()
	lp.SetAttr("iters", 12)
	lp.End()
	root.Event("incumbent", A("cost", 42))
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4: %+v", len(recs), recs)
	}
	if byName["solve"].Parent != 0 {
		t.Errorf("root has parent %d", byName["solve"].Parent)
	}
	if byName["lp"].Parent != byName["solve"].ID {
		t.Errorf("lp parent = %d, want %d", byName["lp"].Parent, byName["solve"].ID)
	}
	if byName["pivot"].Parent != byName["lp"].ID {
		t.Errorf("pivot parent = %d, want %d", byName["pivot"].Parent, byName["lp"].ID)
	}
	if !byName["incumbent"].Event {
		t.Errorf("incumbent not marked as event")
	}
	if byName["incumbent"].Parent != byName["solve"].ID {
		t.Errorf("event parent = %d, want %d", byName["incumbent"].Parent, byName["solve"].ID)
	}
	if v, ok := byName["lp"].Attrs["iters"]; !ok || v.(float64) != 12 {
		t.Errorf("lp attrs = %v", byName["lp"].Attrs)
	}
	// Spans emit at End, so inner spans appear before their parents; the
	// reader still links them by id.
	if recs[0].Name != "pivot" {
		t.Errorf("first record = %q, want pivot (spans emit on End)", recs[0].Name)
	}
}

// TestTraceRoundTrip writes spans concurrently and checks every line parses
// and ids are unique — the JSON-lines invariants downstream tools rely on.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start("run")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.Child("clip", A("worker", w), A("i", i))
				sp.Event("tick")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 8*50*2
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	seen := map[int64]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		seen[r.ID] = true
		if r.DurUS < 0 || r.StartUS < 0 {
			t.Fatalf("negative timing: %+v", r)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.Start("s")
	sp.End()
	sp.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("double End wrote %d records", len(recs))
	}
}
