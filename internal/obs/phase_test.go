package obs

import (
	"testing"
	"time"
)

func TestPhaseClockPartition(t *testing.T) {
	c := NewPhaseClock()
	start := time.Now()
	c.Enter("setup")
	time.Sleep(2 * time.Millisecond)
	c.Enter("search")
	time.Sleep(2 * time.Millisecond)
	c.Enter("setup") // re-entering accumulates into the existing phase
	time.Sleep(2 * time.Millisecond)
	c.Stop()
	wall := time.Since(start)

	b := c.Breakdown()
	if len(b) != 2 {
		t.Fatalf("breakdown = %v, want 2 phases", b)
	}
	if b["setup"] <= b["search"] {
		t.Errorf("setup %v should exceed search %v (entered twice)", b["setup"], b["search"])
	}
	// The clock never pauses, so the breakdown partitions wall time exactly
	// (up to the time spent outside Enter..Stop in this test body).
	if total := b.Total(); total > wall || wall-total > 5*time.Millisecond {
		t.Errorf("total %v vs wall %v: breakdown must partition the clock's lifetime", total, wall)
	}
}

func TestPhaseClockSwap(t *testing.T) {
	c := NewPhaseClock()
	if prev := c.Swap("outer"); prev != "" {
		t.Errorf("first Swap returned %q, want empty (clock was stopped)", prev)
	}
	if prev := c.Swap("inner"); prev != "outer" {
		t.Errorf("Swap returned %q, want outer", prev)
	}
	c.Enter("outer")
	c.Stop()
	b := c.Breakdown()
	if _, ok := b["inner"]; !ok {
		t.Errorf("breakdown %v missing swapped-in phase", b)
	}
}

func TestPhaseClockOpenPhaseVisible(t *testing.T) {
	c := NewPhaseClock()
	c.Enter("run")
	time.Sleep(time.Millisecond)
	// Breakdown without Stop must still attribute the open phase's time.
	if d := c.Breakdown()["run"]; d < 500*time.Microsecond {
		t.Errorf("open phase shows %v, want >= ~1ms", d)
	}
}

func TestPhaseClockNil(t *testing.T) {
	var c *PhaseClock
	c.Enter("x")
	if prev := c.Swap("y"); prev != "" {
		t.Errorf("nil Swap = %q", prev)
	}
	c.Stop()
	if b := c.Breakdown(); b != nil {
		t.Errorf("nil breakdown = %v", b)
	}
}

func TestBreakdownMerge(t *testing.T) {
	var agg Breakdown // nil: Merge must allocate
	agg = agg.Merge(Breakdown{"a": time.Second, "b": time.Second})
	agg = agg.Merge(Breakdown{"b": time.Second, "c": 3 * time.Second})
	agg = agg.Merge(nil)
	if agg["a"] != time.Second || agg["b"] != 2*time.Second || agg["c"] != 3*time.Second {
		t.Errorf("merged = %v", agg)
	}
	if agg.Total() != 6*time.Second {
		t.Errorf("total = %v, want 6s", agg.Total())
	}
	if names := agg.Names(); len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("names = %v, want sorted [a b c]", names)
	}
	ms := Breakdown{"a": 1500 * time.Microsecond}.MS()
	if ms["a"] != 1.5 {
		t.Errorf("MS = %v, want a:1.5", ms)
	}
	if Breakdown(nil).MS() != nil {
		t.Errorf("nil breakdown MS should be nil")
	}
}
