package obs

// sampler.go is the zero-dependency in-process sampling profiler: a ticker
// goroutine snapshots every goroutine's call stack at a configurable rate
// (runtime.GoroutineProfile — program-counter stacks, no text parsing, no
// runtime/pprof file plumbing) and aggregates per-function self and
// cumulative sample counts. Callers open Windows around regions of interest
// (one bench case, one solve) and get that region's top-N profile back, so a
// wall-time regression arrives with a function-level suspect list instead of
// a bare ratio.
//
// Cost model: zero when off (no goroutine exists, every method is nil-safe),
// and under 2% when on at the default 100 Hz (BenchmarkSamplerOff/On pins
// this) — each tick is one goroutine-stack snapshot plus map updates against
// a PC→name cache, independent of how hot the profiled code is.

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SamplerOptions tunes StartSampler.
type SamplerOptions struct {
	// Hz is the sampling rate; 0 means 100.
	Hz int
	// Registry, if non-nil, receives live sampler metrics: the sampler_hz
	// gauge, the sampler_samples_total counter (one per sampled goroutine
	// stack) and the sampler_windows_active gauge.
	Registry *Registry
}

// FuncSample is one function's sample counts in a Profile.
type FuncSample struct {
	Fn   string // fully qualified function name
	Self int64  // samples with this function on top of the stack
	Cum  int64  // samples with this function anywhere on the stack
}

// Profile is an aggregated stack-sample summary of a window (or of the whole
// sampler lifetime).
type Profile struct {
	Hz      int          // configured sampling rate
	Samples int64        // goroutine stacks aggregated
	Funcs   []FuncSample // ranked by Self desc, then Cum desc, then name
}

// funcCount is the mutable aggregation cell behind FuncSample.
type funcCount struct{ self, cum int64 }

type frameAgg map[string]*funcCount

func (a frameAgg) add(frames []string) {
	for i, fn := range frames {
		// A function appearing multiple times in one stack (recursion)
		// counts once cumulatively.
		dup := false
		for j := 0; j < i; j++ {
			if frames[j] == fn {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		c := a[fn]
		if c == nil {
			c = &funcCount{}
			a[fn] = c
		}
		c.cum++
		if i == 0 {
			c.self++
		}
	}
}

func (a frameAgg) profile(hz int, samples int64, topN int) Profile {
	p := Profile{Hz: hz, Samples: samples}
	for fn, c := range a {
		p.Funcs = append(p.Funcs, FuncSample{Fn: fn, Self: c.self, Cum: c.cum})
	}
	sort.Slice(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].Self != p.Funcs[j].Self {
			return p.Funcs[i].Self > p.Funcs[j].Self
		}
		if p.Funcs[i].Cum != p.Funcs[j].Cum {
			return p.Funcs[i].Cum > p.Funcs[j].Cum
		}
		return p.Funcs[i].Fn < p.Funcs[j].Fn
	})
	if topN > 0 && len(p.Funcs) > topN {
		p.Funcs = p.Funcs[:topN]
	}
	return p
}

// Sampler is the running profiler. Create with StartSampler; all methods are
// safe on a nil receiver, so instrumentation sites never need guards.
type Sampler struct {
	hz      int
	stop    chan struct{}
	done    chan struct{}
	samples atomic.Int64

	mu      sync.Mutex
	global  frameAgg
	windows map[*ProfileWindow]struct{}
	names   map[uintptr]string    // PC → function-name cache
	recs    []runtime.StackRecord // reused snapshot buffer

	sampleCtr  *Counter
	windowsGge *Gauge
}

// StartSampler launches the sampling goroutine and returns the profiler.
func StartSampler(opt SamplerOptions) *Sampler {
	hz := opt.Hz
	if hz <= 0 {
		hz = 100
	}
	s := &Sampler{
		hz:      hz,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		global:  frameAgg{},
		windows: map[*ProfileWindow]struct{}{},
		names:   map[uintptr]string{},
		recs:    make([]runtime.StackRecord, 64),
	}
	if r := opt.Registry; r != nil {
		r.Gauge("sampler_hz").Set(float64(hz))
		s.sampleCtr = r.Counter("sampler_samples_total")
		s.windowsGge = r.Gauge("sampler_windows_active")
	}
	go s.loop()
	return s
}

// Hz returns the configured sampling rate (0 on nil).
func (s *Sampler) Hz() int {
	if s == nil {
		return 0
	}
	return s.hz
}

// Samples returns how many goroutine stacks have been aggregated so far.
func (s *Sampler) Samples() int64 {
	if s == nil {
		return 0
	}
	return s.samples.Load()
}

// Stop halts the sampling goroutine and waits for it to drain. Idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Profile returns the whole-lifetime aggregation (top n functions; n <= 0
// means all). Safe while sampling continues.
func (s *Sampler) Profile(n int) Profile {
	if s == nil {
		return Profile{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.global.profile(s.hz, s.samples.Load(), n)
}

// ProfileWindow accumulates the samples taken between Window() and End().
type ProfileWindow struct {
	s       *Sampler
	agg     frameAgg
	samples int64
}

// Window opens a sampling window; every future sample lands in it until End.
// Windows may overlap (parallel bench workers): each receives all process
// samples taken during its lifetime, so per-window attribution is exact with
// one worker and approximate — the window's share plus concurrent cases' —
// under parallel workers, mirroring the per-case runtime deltas.
func (s *Sampler) Window() *ProfileWindow {
	if s == nil {
		return nil
	}
	w := &ProfileWindow{s: s, agg: frameAgg{}}
	s.mu.Lock()
	s.windows[w] = struct{}{}
	n := len(s.windows)
	s.mu.Unlock()
	s.windowsGge.Set(float64(n))
	return w
}

// End closes the window and returns its top-n profile (n <= 0 means all
// functions). Safe on nil (zero profile) and idempotent in effect.
func (w *ProfileWindow) End(n int) Profile {
	if w == nil || w.s == nil {
		return Profile{}
	}
	s := w.s
	s.mu.Lock()
	delete(s.windows, w)
	active := len(s.windows)
	p := w.agg.profile(s.hz, w.samples, n)
	s.mu.Unlock()
	s.windowsGge.Set(float64(active))
	return p
}

func (s *Sampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(time.Second / time.Duration(s.hz))
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.sample()
		}
	}
}

// sample snapshots every goroutine stack and folds the active ones into the
// global aggregation and every open window.
func (s *Sampler) sample() {
	n, ok := runtime.GoroutineProfile(s.recs)
	for !ok {
		s.recs = make([]runtime.StackRecord, n+n/4+8)
		n, ok = runtime.GoroutineProfile(s.recs)
	}
	s.mu.Lock()
	for i := 0; i < n; i++ {
		stk := s.recs[i].Stack()
		if len(stk) == 0 {
			continue
		}
		frames := s.resolve(stk)
		if skipStack(frames) {
			continue
		}
		s.samples.Add(1)
		s.sampleCtr.Inc()
		s.global.add(frames)
		for w := range s.windows {
			w.samples++
			w.agg.add(frames)
		}
	}
	s.mu.Unlock()
}

// frameBuf is reused across samples; resolve's result is valid until the
// next call (callers aggregate immediately under s.mu).
var frameBuf [64]string

// resolve maps a PC stack (leaf first) to function names through the cache.
// Non-leaf PCs are return addresses, so they resolve at pc-1 (the call site).
func (s *Sampler) resolve(stk []uintptr) []string {
	frames := frameBuf[:0]
	for i, pc := range stk {
		if i > 0 {
			pc--
		}
		name, ok := s.names[pc]
		if !ok {
			if f := runtime.FuncForPC(pc); f != nil {
				name = f.Name()
			} else {
				name = "unknown"
			}
			s.names[pc] = name
		}
		frames = append(frames, name)
		if len(frames) == cap(frames) {
			break
		}
	}
	return frames
}

// parkedLeaves are leaf functions of goroutines that are waiting, not
// working; their stacks are dropped so the profile approximates on-CPU time
// rather than fgprof-style wall-clock time.
var parkedLeaves = map[string]bool{
	"runtime.gopark":                     true,
	"runtime.goparkunlock":               true,
	"runtime.notetsleepg":                true,
	"runtime.futexsleep":                 true,
	"runtime.usleep":                     true,
	"runtime.epollwait":                  true,
	"runtime.netpollblock":               true,
	"runtime.chanrecv":                   true,
	"runtime.selectgo":                   true,
	"time.Sleep":                         true,
	"runtime.goroutineProfileWithLabels": true,
	// A bare goexit leaf is a goroutine that has not started running yet (or
	// is tearing down) — no attribution value, and a pool of idle workers
	// would otherwise dominate small windows.
	"runtime.goexit": true,
}

// skipStack drops parked goroutines and the sampler's own goroutine.
func skipStack(frames []string) bool {
	if len(frames) == 0 {
		return true
	}
	if parkedLeaves[frames[0]] {
		return true
	}
	for _, f := range frames {
		if strings.Contains(f, "obs.(*Sampler)") {
			return true
		}
	}
	return false
}
