// HTTP surface of the observability stack: a Prometheus text-exposition
// renderer over Registry snapshots (/metrics) and a live sweep status
// tracker (/statusz) with per-worker in-flight solves, done/total counts and
// an ETA. Both are mounted by the CLIs on the -pprof mux, so one address
// serves profiles, metrics and status.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// sanitizeMetricName maps an internal metric name onto the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

// formatFloat renders a sample value the way Prometheus expects (shortest
// round-trip decimal; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative le-bucketed series plus _sum and _count. Families are
// emitted in sorted name order so the output is deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := sanitizeMetricName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k]); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := sanitizeMetricName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(s.Gauges[k])); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := sanitizeMetricName(k)
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// Internal buckets are per-interval counts; Prometheus buckets are
		// cumulative over ascending upper bounds.
		cum := int64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, formatFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// RuntimeStats is a point-in-time sample of the Go runtime: scheduler and
// heap pressure of the solver process itself. It backs the go_* families on
// /metrics and the runtime block on /statusz.
type RuntimeStats struct {
	Goroutines  int     `json:"goroutines"`
	HeapInuseMB float64 `json:"heap_inuse_mb"`
	GCPauseMS   float64 `json:"gc_pause_ms"` // cumulative stop-the-world pause
	NumGC       int64   `json:"num_gc"`      // completed GC cycles
}

// ReadRuntimeStats samples the runtime now. ReadMemStats stops the world
// briefly, so callers poll it per scrape, not per solve node.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:  runtime.NumGoroutine(),
		HeapInuseMB: float64(ms.HeapInuse) / (1 << 20),
		GCPauseMS:   float64(ms.PauseTotalNs) / 1e6,
		NumGC:       int64(ms.NumGC),
	}
}

// WritePrometheus renders the runtime sample in Prometheus text exposition.
func (rs RuntimeStats) WritePrometheus(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"# TYPE go_goroutines gauge\ngo_goroutines %d\n"+
			"# TYPE go_heap_inuse_mb gauge\ngo_heap_inuse_mb %s\n"+
			"# TYPE go_gc_pause_total_ms counter\ngo_gc_pause_total_ms %s\n"+
			"# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n",
		rs.Goroutines, formatFloat(rs.HeapInuseMB), formatFloat(rs.GCPauseMS), rs.NumGC)
	return err
}

// MetricsHandler serves the registry as Prometheus text exposition, followed
// by the go_* runtime families. The snapshot is taken per request, so long
// sweeps can be scraped live.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.Snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := ReadRuntimeStats().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Status tracks the live state of a sweep for /statusz: which solve each
// worker is executing right now, how many are done of how many total, and a
// naive rate-based ETA. The CLIs feed it from their progress callbacks; all
// methods are concurrency-safe and nil-safe.
type Status struct {
	mu       sync.Mutex
	start    time.Time
	label    string
	total    int
	done     int
	failed   int
	inflight map[int]inflightJob
	calib    *CalibStatus
	sampler  *Sampler
	lp       *LPStatus
}

// LPStatus is the LP-engine telemetry block on /statusz: the configured
// engine/pricing/presolve triple and the cumulative pricing and presolve
// counters across all completed solves of the sweep.
type LPStatus struct {
	Config         string `json:"config"`
	CandidateHits  int64  `json:"candidate_hits"`
	RefResets      int64  `json:"ref_resets"`
	DualBoundFlips int64  `json:"dual_bound_flips"`
	PresolveRows   int64  `json:"presolve_rows"`
	PresolveCols   int64  `json:"presolve_cols"`

	// Refactorization-trigger split across all node LPs (zero before the
	// Forrest–Tomlin update layer ran a solve).
	RefactorEtaLen         int64 `json:"refactor_eta_len"`
	RefactorFill           int64 `json:"refactor_fill"`
	RefactorPivotQuality   int64 `json:"refactor_pivot_quality"`
	RefactorUpdateRejected int64 `json:"refactor_update_rejected"`
}

// LPStatDelta is one solve's LP counter contribution, folded into the
// /statusz LP block by AddLPStats. A struct rather than positional ints: the
// counter list has grown past the point where call sites stay readable.
type LPStatDelta struct {
	CandidateHits, RefResets, DualBoundFlips     int
	PresolveRows, PresolveCols                   int
	RefactorEtaLen, RefactorFill                 int
	RefactorPivotQuality, RefactorUpdateRejected int
}

// CalibStatus is the calibration evidence surfaced on /statusz: the machine
// score and per-probe ns/op measured when the process started working.
type CalibStatus struct {
	ScoreNs  float64            `json:"score_ns"`
	ProbesNs map[string]float64 `json:"probes_ns,omitempty"`
}

type inflightJob struct {
	name  string
	since time.Time
}

// NewStatus returns an empty Status; its uptime clock starts now.
func NewStatus() *Status {
	return &Status{start: time.Now(), inflight: map[int]inflightJob{}}
}

// SetLabel names the current activity (e.g. "fig10 N28-12T").
func (s *Status) SetLabel(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.label = label
}

// SetTotal records the sweep's job total.
func (s *Status) SetTotal(total int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total = total
}

// SetCalibration records the process's machine-calibration result for
// /statusz (and lets operators compare a live process against the committed
// bench documents' calibration blocks).
func (s *Status) SetCalibration(scoreNs float64, probesNs map[string]float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calib = &CalibStatus{ScoreNs: scoreNs, ProbesNs: probesNs}
}

// SetSampler attaches the process's sampling profiler so /statusz reports
// its rate and live sample count.
func (s *Status) SetSampler(sp *Sampler) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sampler = sp
}

// SetLPConfig names the LP engine configuration of the sweep (e.g.
// "sparse/devex/presolve=auto") and makes the /statusz LP block appear.
func (s *Status) SetLPConfig(cfg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lp == nil {
		s.lp = &LPStatus{}
	}
	s.lp.Config = cfg
}

// AddLPStats folds one solve's LP pricing/presolve/refactorization counters
// into the /statusz LP block (no-op until SetLPConfig created the block).
func (s *Status) AddLPStats(d LPStatDelta) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lp == nil {
		return
	}
	s.lp.CandidateHits += int64(d.CandidateHits)
	s.lp.RefResets += int64(d.RefResets)
	s.lp.DualBoundFlips += int64(d.DualBoundFlips)
	s.lp.PresolveRows += int64(d.PresolveRows)
	s.lp.PresolveCols += int64(d.PresolveCols)
	s.lp.RefactorEtaLen += int64(d.RefactorEtaLen)
	s.lp.RefactorFill += int64(d.RefactorFill)
	s.lp.RefactorPivotQuality += int64(d.RefactorPivotQuality)
	s.lp.RefactorUpdateRejected += int64(d.RefactorUpdateRejected)
}

// JobStart records that worker began executing the named job.
func (s *Status) JobStart(worker int, name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight[worker] = inflightJob{name: name, since: time.Now()}
}

// JobDone records that worker finished its job (failed counts separately).
func (s *Status) JobDone(worker int, failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, worker)
	s.done++
	if failed {
		s.failed++
	}
}

// InFlightJob is one worker's current solve in a StatusSnapshot.
type InFlightJob struct {
	Worker    int    `json:"worker"`
	Name      string `json:"name"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// StatusSnapshot is the JSON document served at /statusz.
type StatusSnapshot struct {
	Label    string        `json:"label,omitempty"`
	UptimeMS int64         `json:"uptime_ms"`
	Total    int           `json:"total"`
	Done     int           `json:"done"`
	Failed   int           `json:"failed"`
	InFlight []InFlightJob `json:"in_flight"`
	// ETAMS is the projected remaining wall time from the mean completed-job
	// rate; -1 before the first completion (or without a known total).
	ETAMS int64 `json:"eta_ms"`
	// Runtime is sampled at snapshot time by StatusHandler; zero when the
	// snapshot was taken directly (tests, nil Status).
	Runtime RuntimeStats `json:"runtime"`
	// Calibration is the machine-calibration result recorded via
	// SetCalibration; nil when the process did not calibrate.
	Calibration *CalibStatus `json:"calibration,omitempty"`
	// Sampler reports the sampling profiler's state; nil when off.
	Sampler *SamplerStatus `json:"sampler,omitempty"`
	// LP is the LP-engine telemetry recorded via SetLPConfig/AddLPStats;
	// nil when the sweep never configured it (pure combinatorial runs).
	LP *LPStatus `json:"lp,omitempty"`
}

// SamplerStatus is the sampling profiler's live state on /statusz.
type SamplerStatus struct {
	Hz      int   `json:"hz"`
	Samples int64 `json:"samples"`
}

// Snapshot captures the current sweep state. Safe on nil (zero snapshot).
func (s *Status) Snapshot() StatusSnapshot {
	if s == nil {
		return StatusSnapshot{ETAMS: -1, InFlight: []InFlightJob{}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	snap := StatusSnapshot{
		Label:    s.label,
		UptimeMS: now.Sub(s.start).Milliseconds(),
		Total:    s.total,
		Done:     s.done,
		Failed:   s.failed,
		InFlight: make([]InFlightJob, 0, len(s.inflight)),
		ETAMS:    -1,
	}
	if s.calib != nil {
		c := *s.calib
		snap.Calibration = &c
	}
	if s.sampler != nil {
		snap.Sampler = &SamplerStatus{Hz: s.sampler.Hz(), Samples: s.sampler.Samples()}
	}
	if s.lp != nil {
		l := *s.lp
		snap.LP = &l
	}
	for w, j := range s.inflight {
		snap.InFlight = append(snap.InFlight, InFlightJob{
			Worker: w, Name: j.name, ElapsedMS: now.Sub(j.since).Milliseconds(),
		})
	}
	sort.Slice(snap.InFlight, func(i, j int) bool {
		return snap.InFlight[i].Worker < snap.InFlight[j].Worker
	})
	if s.done > 0 && s.total >= s.done {
		per := now.Sub(s.start) / time.Duration(s.done)
		snap.ETAMS = (per * time.Duration(s.total-s.done)).Milliseconds()
	}
	return snap
}

// StatusHandler serves the Status as indented JSON at /statusz.
func StatusHandler(s *Status) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		snap := s.Snapshot()
		snap.Runtime = ReadRuntimeStats()
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
