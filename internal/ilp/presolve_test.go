package ilp

import (
	"math"
	"testing"

	"optrouter/internal/lp"
)

func TestPresolveTightensBinary(t *testing.T) {
	// 3x + y <= 2 with x, y binary: x can still be 0; 3x <= 2 => x = 0.
	m := NewModel()
	x := m.AddBinary(-5)
	y := m.AddBinary(-1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 3}, {Var: y, Val: 1}}, lp.LE, 2)
	if !m.presolve(4) {
		t.Fatal("presolve claims infeasible")
	}
	lo, hi := m.Prob.VarBounds(x)
	if lo != 0 || hi != 0 {
		t.Fatalf("x bounds [%v,%v], want fixed to 0", lo, hi)
	}
	// y stays free in {0,1}.
	lo, hi = m.Prob.VarBounds(y)
	if lo != 0 || hi != 1 {
		t.Fatalf("y bounds [%v,%v]", lo, hi)
	}
}

func TestPresolveDetectsInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary(0)
	y := m.AddBinary(0)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, lp.GE, 3)
	if m.presolve(4) {
		t.Fatal("x + y >= 3 with binaries should be proven infeasible")
	}
}

func TestPresolveChainsPropagation(t *testing.T) {
	// x <= 1.4 (int => x <= 1); then y <= x forces y <= 1; y integer.
	m := NewModel()
	x := m.AddVar(0, 10, 0, true)
	y := m.AddVar(0, 10, -1, true)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}}, lp.LE, 1.4)
	m.AddConstraint([]lp.Coef{{Var: y, Val: 1}, {Var: x, Val: -1}}, lp.LE, 0)
	if !m.presolve(8) {
		t.Fatal("infeasible?")
	}
	_, hiX := m.Prob.VarBounds(x)
	_, hiY := m.Prob.VarBounds(y)
	if hiX != 1 {
		t.Fatalf("x hi = %v, want 1 (integer rounding)", hiX)
	}
	if hiY != 1 {
		t.Fatalf("y hi = %v, want 1 (chained)", hiY)
	}
}

func TestPresolveEquality(t *testing.T) {
	// x + y = 1, binaries: no tightening possible, but must stay sound.
	m := NewModel()
	x := m.AddBinary(1)
	y := m.AddBinary(2)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, lp.EQ, 1)
	if !m.presolve(4) {
		t.Fatal("feasible EQ flagged infeasible")
	}
	res := m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj-1) > 1e-7 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
}

func TestSolveResultsUnchangedByPresolve(t *testing.T) {
	// Presolve must not change optima, only speed.
	mk := func() *Model {
		m := NewModel()
		var cs []lp.Coef
		for i := 0; i < 12; i++ {
			v := m.AddBinary(-float64(2 + (i*5)%7))
			cs = append(cs, lp.Coef{Var: v, Val: float64(1 + (i*3)%5)})
		}
		m.AddConstraint(cs, lp.LE, 14)
		m.AddConstraint([]lp.Coef{{Var: 0, Val: 4}, {Var: 1, Val: 1}}, lp.LE, 3)
		return m
	}
	a := mk().Solve(Options{IntegralObjective: true})
	b := mk().Solve(Options{IntegralObjective: true, NoPresolve: true})
	if a.Status != Optimal || b.Status != Optimal {
		t.Fatalf("statuses %v %v", a.Status, b.Status)
	}
	if math.Abs(a.Obj-b.Obj) > 1e-7 {
		t.Fatalf("presolve changed optimum: %v vs %v", a.Obj, b.Obj)
	}
}

func TestPresolveBoundsRestored(t *testing.T) {
	m := NewModel()
	x := m.AddBinary(-5)
	y := m.AddBinary(-1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 3}, {Var: y, Val: 1}}, lp.LE, 2)
	_ = m.Solve(Options{})
	lo, hi := m.Prob.VarBounds(x)
	if lo != 0 || hi != 1 {
		t.Fatalf("caller bounds not restored: [%v,%v]", lo, hi)
	}
}
