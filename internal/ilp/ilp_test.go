package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"optrouter/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10x0 + 13x1 + 7x2 + 8x3  s.t. 3x0+4x1+2x2+3x3 <= 7, x binary.
	// Optimum: x0 + x1, weight exactly 7, value 23.
	m := NewModel()
	vals := []float64{10, 13, 7, 8}
	wts := []float64{3, 4, 2, 3}
	var vars []int
	var cs []lp.Coef
	for i := range vals {
		v := m.AddBinary(-vals[i])
		vars = append(vars, v)
		cs = append(cs, lp.Coef{Var: v, Val: wts[i]})
	}
	m.AddConstraint(cs, lp.LE, 7)
	res := m.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj+23) > 1e-6 {
		t.Fatalf("obj = %v, want -23", res.Obj)
	}
	if math.Round(res.X[vars[0]]) != 1 || math.Round(res.X[vars[1]]) != 1 {
		t.Fatalf("X = %v", res.X)
	}
}

func TestPureLPPassThrough(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous(0, 10, -1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}}, lp.LE, 4.5)
	res := m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj+4.5) > 1e-7 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x, x integer in [0, 10], x <= 3.7 => x = 3.
	m := NewModel()
	x := m.AddVar(0, 10, -1, true)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}}, lp.LE, 3.7)
	res := m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.X[x]-3) > 1e-6 {
		t.Fatalf("status=%v X=%v", res.Status, res.X)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// x + y = 1.5 with x, y binary has no integer solution... wait 1.5 not
	// reachable: 0,1,2 only. Infeasible.
	m := NewModel()
	x := m.AddBinary(1)
	y := m.AddBinary(1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, lp.EQ, 1.5)
	res := m.Solve(Options{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestEqualityChoice(t *testing.T) {
	// Exactly one of three binaries, minimize cost {5, 2, 9} -> choose 1.
	m := NewModel()
	a := m.AddBinary(5)
	b := m.AddBinary(2)
	c := m.AddBinary(9)
	m.AddConstraint([]lp.Coef{{Var: a, Val: 1}, {Var: b, Val: 1}, {Var: c, Val: 1}}, lp.EQ, 1)
	res := m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj-2) > 1e-7 || math.Round(res.X[b]) != 1 {
		t.Fatalf("status=%v obj=%v X=%v", res.Status, res.Obj, res.X)
	}
}

func TestWarmStartIncumbent(t *testing.T) {
	m := NewModel()
	x := m.AddBinary(-3)
	y := m.AddBinary(-2)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, lp.LE, 1)
	// Provide the suboptimal incumbent {0, 1}.
	res := m.Solve(Options{Incumbent: []float64{0, 1}})
	if res.Status != Optimal || math.Abs(res.Obj+3) > 1e-7 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
}

func TestInvalidWarmStartIgnored(t *testing.T) {
	m := NewModel()
	x := m.AddBinary(-1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}}, lp.LE, 0)
	// Incumbent violates the constraint; solver must ignore it.
	res := m.Solve(Options{Incumbent: []float64{1}})
	if res.Status != Optimal || math.Abs(res.Obj) > 1e-7 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing branching, with MaxNodes=1: no proof possible.
	m := NewModel()
	var cs []lp.Coef
	for i := 0; i < 10; i++ {
		v := m.AddBinary(-1)
		cs = append(cs, lp.Coef{Var: v, Val: float64(2*i + 1)})
	}
	m.AddConstraint(cs, lp.LE, 17)
	res := m.Solve(Options{MaxNodes: 1})
	if res.Status == Optimal {
		t.Fatalf("one node should not prove optimality here, got %v", res.Status)
	}
}

func TestTimeLimit(t *testing.T) {
	m := NewModel()
	var cs []lp.Coef
	for i := 0; i < 16; i++ {
		v := m.AddBinary(-float64(1 + i%3))
		cs = append(cs, lp.Coef{Var: v, Val: float64(3 + (i*7)%11)})
	}
	m.AddConstraint(cs, lp.LE, 31)
	res := m.Solve(Options{TimeLimit: time.Nanosecond})
	if res.Status == Optimal {
		t.Fatalf("nanosecond limit should not prove optimality, got %v", res.Status)
	}
}

func TestIntegralObjectivePruning(t *testing.T) {
	// With all-integer costs the solver may prune with ceil bounds and must
	// still return the true optimum.
	m := NewModel()
	vals := []float64{4, 5, 6, 7, 8}
	wts := []float64{2, 3, 4, 5, 6}
	var cs []lp.Coef
	for i := range vals {
		v := m.AddBinary(-vals[i])
		cs = append(cs, lp.Coef{Var: v, Val: wts[i]})
	}
	m.AddConstraint(cs, lp.LE, 10)
	res1 := m.Solve(Options{})
	res2 := m.Solve(Options{IntegralObjective: true})
	if res1.Status != Optimal || res2.Status != Optimal {
		t.Fatalf("statuses %v %v", res1.Status, res2.Status)
	}
	if math.Abs(res1.Obj-res2.Obj) > 1e-6 {
		t.Fatalf("integral-objective pruning changed optimum: %v vs %v", res1.Obj, res2.Obj)
	}
}

func TestModelStats(t *testing.T) {
	m := NewModel()
	m.AddBinary(1)
	m.AddContinuous(0, 5, 1)
	m.AddVar(0, 3, 1, true)
	m.AddConstraint([]lp.Coef{{Var: 0, Val: 1}}, lp.LE, 1)
	if m.NumVars() != 3 || m.NumConstraints() != 1 || m.NumIntegerVars() != 2 {
		t.Fatalf("stats: %d vars %d cons %d int", m.NumVars(), m.NumConstraints(), m.NumIntegerVars())
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	m := NewModel()
	x := m.AddBinary(-1)
	y := m.AddBinary(-1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, lp.LE, 1)
	_ = m.Solve(Options{})
	for _, v := range []int{x, y} {
		lo, hi := m.Prob.VarBounds(v)
		if lo != 0 || hi != 1 {
			t.Fatalf("bounds not restored: [%v, %v]", lo, hi)
		}
	}
	// Second solve must agree.
	res := m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj+1) > 1e-7 {
		t.Fatalf("re-solve broken: %v %v", res.Status, res.Obj)
	}
}

func TestCheckFeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary(2)
	y := m.AddContinuous(0, 4, 1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, lp.GE, 2)
	if ok, _ := m.CheckFeasible([]float64{1, 1}, 0); !ok {
		t.Error("feasible point rejected")
	}
	if ok, _ := m.CheckFeasible([]float64{0.5, 1.5}, 0); ok {
		t.Error("fractional binary accepted")
	}
	if ok, _ := m.CheckFeasible([]float64{0, 1}, 0); ok {
		t.Error("constraint violation accepted")
	}
	if ok, _ := m.CheckFeasible([]float64{1}, 0); ok {
		t.Error("wrong dimension accepted")
	}
	if ok, obj := m.CheckFeasible([]float64{1, 2}, 0); !ok || math.Abs(obj-4) > 1e-9 {
		t.Errorf("objective evaluation: ok=%v obj=%v", ok, obj)
	}
}

// Random knapsacks cross-checked against exhaustive enumeration.
func TestRandomKnapsackVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(9)
		vals := make([]float64, n)
		wts := make([]float64, n)
		for i := range vals {
			vals[i] = float64(1 + rng.Intn(20))
			wts[i] = float64(1 + rng.Intn(10))
		}
		capy := float64(5 + rng.Intn(25))

		m := NewModel()
		var cs []lp.Coef
		for i := range vals {
			v := m.AddBinary(-vals[i])
			cs = append(cs, lp.Coef{Var: v, Val: wts[i]})
		}
		m.AddConstraint(cs, lp.LE, capy)
		res := m.Solve(Options{IntegralObjective: true})
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += wts[i]
					v += vals[i]
				}
			}
			if w <= capy && v > best {
				best = v
			}
		}
		if math.Abs(-res.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: solver %v, brute force %v", trial, -res.Obj, best)
		}
	}
}

// Random set-partition-flavoured MILPs with equality rows vs brute force.
func TestRandomEqualityMILPVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		nr := 1 + rng.Intn(3)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = float64(rng.Intn(15) - 5)
		}
		rowsA := make([][]float64, nr)
		rowsB := make([]float64, nr)
		for r := range rowsA {
			rowsA[r] = make([]float64, n)
			for i := range rowsA[r] {
				rowsA[r][i] = float64(rng.Intn(3))
			}
			rowsB[r] = float64(rng.Intn(4))
		}

		m := NewModel()
		for i := 0; i < n; i++ {
			m.AddBinary(costs[i])
		}
		for r := 0; r < nr; r++ {
			var cs []lp.Coef
			for i := 0; i < n; i++ {
				if rowsA[r][i] != 0 {
					cs = append(cs, lp.Coef{Var: i, Val: rowsA[r][i]})
				}
			}
			if len(cs) == 0 {
				continue
			}
			m.AddConstraint(cs, lp.EQ, rowsB[r])
		}
		res := m.Solve(Options{IntegralObjective: true})

		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for r := 0; r < nr && ok; r++ {
				sum := 0.0
				nz := false
				for i := 0; i < n; i++ {
					if rowsA[r][i] != 0 {
						nz = true
						if mask&(1<<i) != 0 {
							sum += rowsA[r][i]
						}
					}
				}
				if nz && sum != rowsB[r] {
					ok = false
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					obj += costs[i]
				}
			}
			if obj < best {
				best = obj
			}
		}

		if math.IsInf(best, 1) {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute-force infeasible, solver %v", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: solver %v, brute force %v", trial, res.Status, best)
		}
		if math.Abs(res.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: solver %v, brute force %v", trial, res.Obj, best)
		}
	}
}
