package ilp

import (
	"math"

	"optrouter/internal/lp"
)

// presolve tightens variable bounds by iterated constraint propagation:
// for a row sum_j a_j x_j {<=,=,>=} b, each variable's bound is implied by
// the extreme activity of the remaining terms. Integer variables' bounds
// are rounded inward. Returns false if propagation proves infeasibility.
//
// Bounds are modified in place on m.Prob; Solve snapshots and restores the
// caller's bounds around the whole optimization, so presolve tightening is
// transparent to the user.
func (m *Model) presolve(maxPasses int) bool {
	p := m.Prob
	type rowData struct {
		coeffs []lp.Coef
		sense  lp.Sense
		rhs    float64
	}
	rows := make([]rowData, p.NumRows())
	for i := range rows {
		c, s, b := p.Row(i)
		rows[i] = rowData{c, s, b}
	}

	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, r := range rows {
			// Treat EQ as both LE and GE.
			senses := []lp.Sense{r.sense}
			if r.sense == lp.EQ {
				senses = []lp.Sense{lp.LE, lp.GE}
			}
			for _, sense := range senses {
				// Normalize to sum a_j x_j <= b.
				sign := 1.0
				if sense == lp.GE {
					sign = -1
				}
				b := sign * r.rhs

				// minActivity of the full row (with sign applied).
				minAct := 0.0
				unboundedMin := false
				for _, c := range r.coeffs {
					a := sign * c.Val
					lo, hi := p.VarBounds(c.Var)
					if a > 0 {
						if math.IsInf(lo, -1) {
							unboundedMin = true
						} else {
							minAct += a * lo
						}
					} else {
						if math.IsInf(hi, 1) {
							unboundedMin = true
						} else {
							minAct += a * hi
						}
					}
				}
				if !unboundedMin && minAct > b+1e-9 {
					return false // row unsatisfiable at extreme activity
				}
				if unboundedMin {
					continue // cannot propagate through unbounded terms
				}
				for _, c := range r.coeffs {
					a := sign * c.Val
					if a == 0 {
						continue
					}
					lo, hi := p.VarBounds(c.Var)
					// Remove this variable's own contribution.
					var own float64
					if a > 0 {
						own = a * lo
					} else {
						own = a * hi
					}
					slack := b - (minAct - own)
					if a > 0 {
						nhi := slack / a
						if m.isInt[c.Var] {
							nhi = math.Floor(nhi + 1e-9)
						}
						if nhi < hi-1e-9 {
							if nhi < lo-1e-9 {
								return false
							}
							p.SetVarBounds(c.Var, lo, math.Max(lo, nhi))
							changed = true
						}
					} else {
						nlo := slack / a
						if m.isInt[c.Var] {
							nlo = math.Ceil(nlo - 1e-9)
						}
						if nlo > lo+1e-9 {
							if nlo > hi+1e-9 {
								return false
							}
							p.SetVarBounds(c.Var, math.Min(hi, nlo), hi)
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return true
}
