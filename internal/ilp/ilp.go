// Package ilp implements a mixed-integer linear programming solver on top of
// the bounded-variable simplex in package lp. It is this repository's
// replacement for ILOG CPLEX in the OptRouter reproduction: a depth-first
// branch-and-bound with LP-relaxation bounds, most-fractional branching,
// LP rounding heuristics, and optional warm-start incumbents.
//
// The solver proves optimality (it explores the full tree under admissible
// LP bounds), so routing solutions obtained through it inherit the paper's
// "cost-optimal" guarantee up to the configured tolerances.
package ilp

import (
	"context"
	"math"
	"time"

	"optrouter/internal/lp"
	"optrouter/internal/obs"
	"optrouter/internal/xchg"
)

// Status is the outcome of a MILP solve.
type Status int

const (
	// Optimal means an incumbent was found and proven optimal.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Feasible means an incumbent exists but limits stopped the proof.
	Feasible
	// Limit means a node/time limit was hit with no incumbent.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Feasible:
		return "feasible"
	case Limit:
		return "limit"
	}
	return "?"
}

// Model is a MILP model: an LP plus integrality markers.
type Model struct {
	Prob  *lp.Problem
	isInt []bool
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{Prob: lp.NewProblem()}
}

// AddVar adds a variable with the given bounds, objective cost and
// integrality, returning its index.
func (m *Model) AddVar(lo, hi, cost float64, integer bool) int {
	j := m.Prob.AddVariable(lo, hi, cost)
	m.isInt = append(m.isInt, integer)
	return j
}

// AddBinary adds a {0,1} integer variable with the given cost.
func (m *Model) AddBinary(cost float64) int { return m.AddVar(0, 1, cost, true) }

// AddContinuous adds a continuous variable.
func (m *Model) AddContinuous(lo, hi, cost float64) int { return m.AddVar(lo, hi, cost, false) }

// AddConstraint forwards to the underlying LP and returns the row index.
func (m *Model) AddConstraint(coeffs []lp.Coef, sense lp.Sense, rhs float64) int {
	return m.Prob.AddConstraint(coeffs, sense, rhs)
}

// SetInteger changes the integrality of an existing variable.
func (m *Model) SetInteger(j int, integer bool) { m.isInt[j] = integer }

// IsInteger reports whether variable j is integer-constrained.
func (m *Model) IsInteger(j int) bool { return m.isInt[j] }

// NumVars returns the variable count.
func (m *Model) NumVars() int { return m.Prob.NumVars() }

// NumConstraints returns the constraint count.
func (m *Model) NumConstraints() int { return m.Prob.NumRows() }

// NumIntegerVars returns how many variables are integer-constrained.
func (m *Model) NumIntegerVars() int {
	n := 0
	for _, b := range m.isInt {
		if b {
			n++
		}
	}
	return n
}

// Options tunes the branch-and-bound.
type Options struct {
	// MaxNodes bounds explored nodes; 0 means effectively unlimited.
	MaxNodes int
	// TimeLimit stops the search after the given wall time; 0 = none.
	TimeLimit time.Duration
	// Ctx, if non-nil, cancels the search between nodes (termination
	// TermCancelled). Used by the parallel scheduler to abort a sweep.
	Ctx context.Context
	// Incumbent optionally provides a known integer-feasible solution
	// (a warm start); it must satisfy all constraints.
	Incumbent []float64
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// IntegralObjective asserts that every integer-feasible point has an
	// integral objective value, enabling stronger pruning (ceil bounds).
	IntegralObjective bool
	// NoPresolve disables root bound-propagation presolve.
	NoPresolve bool
	// NoWarmStart disables carrying a parent node's LP basis into its
	// children (every node LP then solves cold from phase 1). Used by the
	// differential tests that pin warm and cold solves to identical answers.
	NoWarmStart bool
	// LP tunes the LP subsolver.
	LP lp.Options
	// Progress, if non-nil, is invoked every ProgressEvery explored nodes
	// and on every incumbent update with a live view of the search.
	Progress func(Progress)
	// ProgressEvery is the node interval between Progress calls (default 128).
	ProgressEvery int
	// Tracer, if non-nil, receives a span for the solve with incumbent and
	// termination events (see package obs). Nil disables tracing.
	Tracer *obs.Tracer
	// SpanAttrs are extra attributes stamped onto the solve span (callers use
	// them to identify the solve in a trace, e.g. the clip being routed).
	SpanAttrs []obs.Attr
	// Flight configures per-node search-event recording onto the solve span
	// (see obs.FlightOptions). Disabled by default.
	Flight obs.FlightOptions
	// Exchange, if non-nil, connects the solve to a portfolio race: foreign
	// incumbents tighten the pruning cutoff (the search stays exact — see
	// Result.Completed), local incumbents and the root bound are published,
	// and the solve stops early once the race is decided. Offers require
	// IntegralObjective (the exchange carries integral costs); without it the
	// exchange is read-only.
	Exchange *xchg.Exchange
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = math.MaxInt / 2
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 128
	}
	return o
}

// TerminationReason says why Solve stopped — unlike Status it distinguishes
// a time limit from a node limit from an LP failure, so timeout runs are
// separable from proven-optimal runs in experiment output.
type TerminationReason string

const (
	TermOptimal     TerminationReason = "optimal"       // full tree explored
	TermInfeasible  TerminationReason = "infeasible"    // proven empty
	TermTimeLimit   TerminationReason = "time-limit"    // Options.TimeLimit hit
	TermNodeLimit   TerminationReason = "node-limit"    // Options.MaxNodes hit
	TermLPIterLimit TerminationReason = "lp-iter-limit" // LP subsolver gave up
	TermUnbounded   TerminationReason = "lp-unbounded"  // relaxation unbounded
	TermCancelled   TerminationReason = "cancelled"     // Options.Ctx cancelled
	TermDecided     TerminationReason = "decided"       // portfolio race settled
)

// BoundPoint is one sample of the best-bound / incumbent gap over time.
type BoundPoint struct {
	Elapsed   time.Duration // since the start of the solve
	Nodes     int           // nodes explored at sample time
	Depth     int           // depth of the node being processed at the sample
	Open      int           // nodes still on the stack at the sample
	Bound     float64       // proven lower bound (-Inf before root solve)
	Incumbent float64       // best integer objective (+Inf before first)
}

// MILP phase names used in Stats.Phases (a partition of the solve's wall
// time, so the breakdown sums to Stats.Elapsed).
const (
	PhaseSetup     = "setup"     // incumbent check, bound snapshots
	PhasePresolve  = "presolve"  // root bound propagation
	PhaseRootLP    = "root_lp"   // the first LP relaxation
	PhaseNodeLP    = "node_lp"   // all subsequent LP re-solves
	PhaseHeuristic = "heuristic" // rounding heuristic + feasibility checks
	PhaseBranch    = "branch"    // branching-variable selection + child push
	PhaseSearch    = "search"    // node pop, bound application, pruning
)

// Stats are per-solve branch-and-bound statistics.
type Stats struct {
	Nodes        int   // nodes explored
	MaxDepth     int   // deepest node processed
	LPSolves     int   // LP relaxations solved
	LPIters      int   // total simplex iterations
	LPPivots     int   // total simplex basis exchanges
	LPWarmStarts int   // node LPs reoptimized from the parent basis
	LPDualIters  int   // dual-simplex iterations across warm starts
	LPRefactors  int   // basis refactorizations across all node LPs
	LPEtaPivots  int   // basis exchanges absorbed by eta updates
	LPFTRANNnz   int64 // sparse FTRAN result nonzeros across node LPs
	LPBTRANNnz   int64 // sparse BTRAN result nonzeros across node LPs
	// LPCandidateHits counts node-LP pricing rounds served from the partial
	// candidate list (no full sweep); LPRefResets counts devex/steepest
	// reference-framework resets; LPDualBoundFlips counts boxed nonbasic
	// variables flipped by the bound-flipping dual ratio test.
	LPCandidateHits  int
	LPRefResets      int
	LPDualBoundFlips int
	// LPRefactor* attribute the refactorizations by trigger: update-count
	// budget exhausted, update-storage fill budget exhausted, a tiny pivot
	// mid-iteration, or a rejected FT/PFI update on spike-pivot quality.
	LPRefactorEtaLen         int
	LPRefactorFill           int
	LPRefactorPivotQuality   int
	LPRefactorUpdateRejected int
	// PresolveRows/PresolveCols are the reductions of the structural LP
	// presolve applied to the root problem (0 when presolve found nothing
	// or was disabled). The search then runs on the reduced problem.
	PresolveRows  int
	PresolveCols  int
	LPTime        time.Duration // wall time inside the LP subsolver
	BranchTime    time.Duration // wall time outside the LP (Elapsed - LPTime)
	Incumbents    int           // incumbent updates (including warm start)
	HeuristicHits int           // incumbents found by the rounding heuristic
	Elapsed       time.Duration // total wall time of the solve
	Termination   TerminationReason
	// BoundTrace samples the (bound, incumbent) pair at the root, at every
	// incumbent update and at termination (capped at 1024 points).
	BoundTrace []BoundPoint
	// Phases attributes the solve's wall time to the Phase* constants above;
	// always collected (the clock ticks at node granularity, which is cheap).
	Phases obs.Breakdown
	// LPPhases aggregates the simplex-internal breakdown (pricing, ratio
	// test, ...) across all LP solves; populated only when
	// Options.LP.CollectPhases is set.
	LPPhases obs.Breakdown
}

// Gap returns the relative optimality gap (0 when proven optimal, +Inf
// when no incumbent or no bound exists).
func (s Stats) Gap() float64 {
	if len(s.BoundTrace) == 0 {
		return math.Inf(1)
	}
	last := s.BoundTrace[len(s.BoundTrace)-1]
	if math.IsInf(last.Incumbent, 1) || math.IsInf(last.Bound, -1) {
		return math.Inf(1)
	}
	denom := math.Max(1, math.Abs(last.Incumbent))
	return (last.Incumbent - last.Bound) / denom
}

// Progress is the live view handed to Options.Progress.
type Progress struct {
	Nodes     int           // nodes explored so far
	Open      int           // nodes still on the stack
	Incumbent float64       // best integer objective (+Inf if none yet)
	Bound     float64       // proven lower bound (-Inf before root solve)
	Elapsed   time.Duration // since the start of the solve
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	Obj       float64   // incumbent objective (valid unless Limit/Infeasible)
	X         []float64 // incumbent solution
	Nodes     int       // branch-and-bound nodes explored
	LPIters   int       // total simplex iterations
	BestBound float64   // proven lower bound on the optimum
	Stats     Stats     // detailed per-solve statistics
	// Completed reports that the tree was fully explored (no limit stopped
	// the search). With a portfolio Exchange attached this carries proof
	// weight beyond Status: a completed search that found nothing better than
	// a *foreign* incumbent (Status Feasible or Limit) proves that incumbent
	// optimal, because pruning only ever discarded subtrees that cannot beat
	// it. SolvePortfolio composes these one-sided proofs.
	Completed bool
}

// boundChange records one branching decision for undo.
type boundChange struct {
	j      int
	lo, hi float64 // new bounds
}

type node struct {
	changes []boundChange // all changes from root (inherited + own)
	depth   int
	bound   float64   // parent LP bound (for pruning before re-solve)
	basis   *lp.Basis // parent's optimal basis (shared, read-only warm start)
}

// Solve runs branch-and-bound to proven optimality (or a limit).
func (m *Model) Solve(opt Options) Result {
	opt = opt.withDefaults()
	start := time.Now()
	ex := opt.Exchange // nil-safe: all xchg methods accept a nil receiver

	var (
		bestX    []float64
		bestObj  = math.Inf(1)
		haveInc  bool
		nodes    int
		lpIters  int
		bestBnd  = math.Inf(-1)
		hitLimit bool
		stats    Stats
		term     TerminationReason
		openLen  int
		curDepth int
	)
	span := opt.Tracer.Start("ilp.solve",
		append([]obs.Attr{
			obs.A("vars", m.Prob.NumVars()),
			obs.A("int_vars", m.NumIntegerVars()),
			obs.A("rows", m.Prob.NumRows()),
		}, opt.SpanAttrs...)...)
	flt := obs.NewFlight(span, opt.Flight)
	clock := obs.NewPhaseClock()
	clock.Enter(PhaseSetup)
	sample := func() {
		if len(stats.BoundTrace) >= 1024 {
			return
		}
		stats.BoundTrace = append(stats.BoundTrace, BoundPoint{
			Elapsed: time.Since(start), Nodes: nodes, Depth: curDepth,
			Open: openLen, Bound: bestBnd, Incumbent: bestObj,
		})
	}
	progress := func() {
		if opt.Progress != nil {
			opt.Progress(Progress{
				Nodes: nodes, Open: openLen, Incumbent: bestObj,
				Bound: bestBnd, Elapsed: time.Since(start),
			})
		}
	}
	finish := func(r Result) Result {
		clock.Stop()
		stats.Phases = clock.Breakdown()
		stats.Nodes = nodes
		stats.LPIters = lpIters
		stats.Elapsed = time.Since(start)
		stats.BranchTime = stats.Elapsed - stats.LPTime
		switch {
		case term != "":
			stats.Termination = term
		case r.Status == Optimal:
			stats.Termination = TermOptimal
		case r.Status == Infeasible:
			stats.Termination = TermInfeasible
		default:
			stats.Termination = TermNodeLimit
		}
		sample()
		r.Stats = stats
		span.SetAttr("nodes", nodes)
		span.SetAttr("lp_solves", stats.LPSolves)
		span.SetAttr("status", r.Status.String())
		span.SetAttr("termination", string(stats.Termination))
		span.SetAttr("lp_iters", stats.LPIters)
		span.SetAttr("presolve_rows", stats.PresolveRows)
		span.SetAttr("presolve_cols", stats.PresolveCols)
		span.SetAttr("lp_candidate_hits", stats.LPCandidateHits)
		span.SetAttr("lp_ref_resets", stats.LPRefResets)
		span.SetAttr("lp_dual_flips", stats.LPDualBoundFlips)
		span.SetAttr("lp_refactor_eta_len", stats.LPRefactorEtaLen)
		span.SetAttr("lp_refactor_fill", stats.LPRefactorFill)
		span.SetAttr("lp_refactor_pivot_quality", stats.LPRefactorPivotQuality)
		span.SetAttr("lp_refactor_update_rejected", stats.LPRefactorUpdateRejected)
		// Phase breakdown on the span, so trace consumers (traceview) can
		// attribute solve wall time without access to Stats.
		span.SetAttr("phases_ms", stats.Phases.MS())
		flt.Finish()
		span.End()
		return r
	}

	// nodeEvent feeds the flight recorder one structured record per search
	// node: the action taken (prune / bounds-infeasible / infeasible /
	// lp-limit / fathom / integer / branch), the node's position (n, d) and
	// the global bound/incumbent state. bestBnd starts at -Inf and bestObj
	// at +Inf; JSON cannot represent infinities (a marshal failure would
	// permanently poison the tracer), so those attrs ride only once finite.
	// With recording off (the default) fl is nil and each call costs one
	// comparison.
	nodeEvent := func(act string, depth int, extra ...obs.Attr) {
		if flt == nil {
			return
		}
		attrs := make([]obs.Attr, 0, 5+len(extra))
		attrs = append(attrs, obs.A("act", act), obs.A("n", nodes), obs.A("d", depth))
		if !math.IsInf(bestBnd, -1) {
			attrs = append(attrs, obs.A("bnd", bestBnd))
		}
		if haveInc {
			attrs = append(attrs, obs.A("inc", bestObj))
		}
		flt.Event("node", append(attrs, extra...)...)
	}

	// offerIncumbent publishes a local incumbent to the portfolio exchange.
	// Gated on IntegralObjective: the exchange carries exact integral costs.
	offerIncumbent := func(obj float64) {
		if opt.IntegralObjective {
			ex.OfferIncumbent(int64(math.Round(obj)))
		}
	}

	if opt.Incumbent != nil {
		if ok, obj := m.CheckFeasible(opt.Incumbent, opt.IntTol); ok {
			bestX = append([]float64(nil), opt.Incumbent...)
			bestObj = obj
			haveInc = true
			stats.Incumbents++
			offerIncumbent(obj)
			span.Event("incumbent", obs.A("obj", obj), obs.A("source", "warm-start"))
		}
	}

	// incVal is the effective incumbent: the local one, tightened by any
	// foreign incumbent on the portfolio exchange (+Inf when neither exists).
	incVal := func() float64 {
		v := math.Inf(1)
		if haveInc {
			v = bestObj
		}
		if f, ok := ex.Incumbent(); ok && float64(f) < v {
			v = float64(f)
		}
		return v
	}

	// cutoff returns the pruning threshold given the effective incumbent.
	// Pruning against a foreign incumbent keeps the search exact: a completed
	// tree then proves nothing cheaper than that incumbent exists (see
	// Result.Completed).
	cutoff := func() float64 {
		v := incVal()
		if math.IsInf(v, 1) {
			return v
		}
		if opt.IntegralObjective {
			// Any strictly better integral solution is <= v - 1.
			return v - 1 + 1e-7
		}
		return v - 1e-7
	}

	// Save root bounds for restoration.
	nv := m.Prob.NumVars()
	rootLo := make([]float64, nv)
	rootHi := make([]float64, nv)
	for j := 0; j < nv; j++ {
		rootLo[j], rootHi[j] = m.Prob.VarBounds(j)
	}
	restore := func() {
		for j := 0; j < nv; j++ {
			m.Prob.SetVarBounds(j, rootLo[j], rootHi[j])
		}
	}
	defer restore()

	// Root presolve: propagate bounds (transparent — the deferred restore
	// puts the caller's bounds back). The tightened bounds become the
	// effective root for the search below; node bound changes re-apply on
	// top of them via searchLo/Hi.
	clock.Enter(PhasePresolve)
	if !opt.NoPresolve {
		if !m.presolve(8) {
			restore()
			if haveInc {
				// The incumbent passed CheckFeasible against the original
				// bounds; a presolve infeasibility then indicates numerical
				// tolerance mismatch — trust the incumbent.
				bestBnd = bestObj
				return finish(Result{Status: Optimal, Obj: bestObj, X: bestX, BestBound: bestObj})
			}
			return finish(Result{Status: Infeasible})
		}
	}

	// Structural LP presolve: eliminate rows and columns (singletons, forced
	// rows, fixed variables) from the root problem and run the whole search
	// on the reduced model. Objective accounting stays in the FULL space —
	// every LP bound gets ObjOffset added before it meets a cutoff, and every
	// accepted incumbent is postsolved back to a full-space vector before it
	// is stored or checked. Node LPs set Presolve off explicitly: the
	// reduction already happened here, and re-running it per node would only
	// burn allocations (and skew warm/cold differential comparisons).
	search := m
	objOff := 0.0
	var ps *lp.Presolved
	if !opt.NoPresolve && opt.LP.Presolve != lp.PresolveOff {
		ps = lp.PresolveProblem(m.Prob, lp.PresolveOptions{Integer: m.isInt})
		if ps != nil {
			if ps.Infeasible {
				restore()
				if haveInc {
					// Same tolerance-mismatch reasoning as the bound
					// propagation above: a checked incumbent outranks a
					// presolve infeasibility verdict.
					bestBnd = bestObj
					return finish(Result{Status: Optimal, Obj: bestObj, X: bestX, BestBound: bestObj})
				}
				return finish(Result{Status: Infeasible})
			}
			search = &Model{Prob: ps.Reduced, isInt: ps.MapMask(m.isInt)}
			objOff = ps.ObjOffset
			stats.PresolveRows = ps.RowsRemoved
			stats.PresolveCols = ps.ColsRemoved
		}
	}
	// toFull maps a reduced-space point back to the caller's variable space
	// (identity when presolve found nothing to remove).
	toFull := func(x []float64) []float64 {
		if ps != nil {
			return ps.Postsolve(x)
		}
		return x
	}
	snv := search.Prob.NumVars()
	searchLo := make([]float64, snv)
	searchHi := make([]float64, snv)
	for j := 0; j < snv; j++ {
		searchLo[j], searchHi[j] = search.Prob.VarBounds(j)
	}
	restoreNode := func() {
		for j := 0; j < snv; j++ {
			search.Prob.SetVarBounds(j, searchLo[j], searchHi[j])
		}
	}

	stack := []node{{bound: math.Inf(-1)}}
	rootBoundSet := false
	clock.Enter(PhaseSearch)

	for len(stack) > 0 {
		if nodes >= opt.MaxNodes {
			hitLimit = true
			term = TermNodeLimit
			break
		}
		if opt.TimeLimit > 0 && time.Since(start) > opt.TimeLimit {
			hitLimit = true
			term = TermTimeLimit
			break
		}
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			hitLimit = true
			term = TermCancelled
			break
		}
		if ex.Decided() {
			// The portfolio race is settled elsewhere; the composed proof is
			// the exchange's, so this engine stops as a limited search.
			hitLimit = true
			term = TermDecided
			break
		}
		openLen = len(stack)
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		curDepth = nd.depth
		if nd.depth > stats.MaxDepth {
			stats.MaxDepth = nd.depth
		}

		if nd.bound > cutoff() {
			nodeEvent("prune", nd.depth, obs.A("lb", nd.bound))
			continue // parent bound already dominated
		}

		// Apply node bounds on top of the presolved root.
		restoreNode()
		feasibleBounds := true
		for _, bc := range nd.changes {
			lo, hi := search.Prob.VarBounds(bc.j)
			nlo, nhi := math.Max(lo, bc.lo), math.Min(hi, bc.hi)
			if nlo > nhi {
				feasibleBounds = false
				break
			}
			search.Prob.SetVarBounds(bc.j, nlo, nhi)
		}
		if !feasibleBounds {
			nodeEvent("bounds-infeasible", nd.depth)
			continue
		}

		if stats.LPSolves == 0 {
			clock.Enter(PhaseRootLP)
		} else {
			clock.Enter(PhaseNodeLP)
		}
		lpOpt := opt.LP
		// The structural reduction already ran above (or was disabled);
		// per-node LP presolve would be pure overhead.
		lpOpt.Presolve = lp.PresolveOff
		if stats.LPSolves == 0 && lpOpt.Algorithm == lp.AlgorithmAuto {
			// The root LP has no warm basis to restore; the dual simplex
			// from the all-slack basis with exact steepest-edge pricing is
			// the stronger cold algorithm on these models. Node LPs keep
			// the warm-start dual-restore path.
			lpOpt.Algorithm = lp.AlgorithmDual
		}
		if !opt.NoWarmStart {
			// Snapshot every optimal basis so children can reoptimize with
			// dual pivots instead of a cold phase-1 start.
			lpOpt.SnapshotBasis = true
			lpOpt.WarmStart = nd.basis
		}
		lpStart := time.Now()
		res := search.Prob.Solve(lpOpt)
		stats.LPTime += time.Since(lpStart)
		clock.Enter(PhaseSearch)
		stats.LPPhases = stats.LPPhases.Merge(res.Stats.Phases)
		if res.Stats.WarmStarted {
			stats.LPWarmStarts++
			stats.LPDualIters += res.Stats.DualIters
		}
		nodes++
		lpIters += res.Iters
		stats.LPSolves++
		stats.LPPivots += res.Stats.Pivots
		stats.LPRefactors += res.Stats.Refactorizations
		stats.LPEtaPivots += res.Stats.EtaPivots
		stats.LPFTRANNnz += int64(res.Stats.FTRANNnz)
		stats.LPBTRANNnz += int64(res.Stats.BTRANNnz)
		stats.LPCandidateHits += res.Stats.CandidateHits
		stats.LPRefResets += res.Stats.ReferenceResets
		stats.LPDualBoundFlips += res.Stats.DualBoundFlips
		stats.LPRefactorEtaLen += res.Stats.RefactorEtaLen
		stats.LPRefactorFill += res.Stats.RefactorFill
		stats.LPRefactorPivotQuality += res.Stats.RefactorPivotQuality
		stats.LPRefactorUpdateRejected += res.Stats.RefactorUpdateRejected
		if nodes%opt.ProgressEvery == 0 {
			progress()
		}
		// Per-node LP effort for the flight recorder (the guard keeps the
		// attr slice from allocating when recording is off).
		var lpAttrs []obs.Attr
		if flt != nil {
			lpAttrs = []obs.Attr{
				obs.A("lp_iters", res.Iters),
				obs.A("pivots", res.Stats.Pivots),
				obs.A("etas", res.Stats.EtaPivots),
				obs.A("warm", res.Stats.WarmStarted),
			}
		}
		switch res.Status {
		case lp.Infeasible:
			nodeEvent("infeasible", nd.depth, lpAttrs...)
			continue
		case lp.Unbounded:
			// Integer problem unbounded or LP artifact; treat as no-prune
			// and branch on first fractional... with no LP point we cannot
			// branch meaningfully; report as limit.
			hitLimit = true
			if term == "" {
				term = TermUnbounded
			}
			continue
		case lp.IterLimit:
			hitLimit = true
			if term == "" {
				term = TermLPIterLimit
			}
			nodeEvent("lp-limit", nd.depth, lpAttrs...)
			continue
		}

		lb := res.Obj + objOff
		if opt.IntegralObjective {
			lb = math.Ceil(lb - 1e-7)
		}
		if !rootBoundSet {
			bestBnd = lb
			rootBoundSet = true
			// The root relaxation is a global lower bound; publish it so the
			// portfolio race can settle without a full second proof.
			if opt.IntegralObjective && !math.IsInf(lb, -1) && lb > 0 {
				ex.OfferBound(int64(math.Round(lb)))
			}
			sample()
		}
		if lb > cutoff() {
			if flt != nil {
				nodeEvent("fathom", nd.depth, append(lpAttrs, obs.A("lb", lb))...)
			}
			continue
		}

		// Find most fractional integer variable.
		clock.Enter(PhaseBranch)
		branchVar := -1
		worst := opt.IntTol
		for j := 0; j < snv; j++ {
			if !search.isInt[j] {
				continue
			}
			f := res.X[j] - math.Floor(res.X[j])
			frac := math.Min(f, 1-f)
			if frac > worst {
				worst = frac
				branchVar = j
			}
		}

		if branchVar == -1 {
			// Integer feasible. Round in the reduced space (postsolve then
			// derives eliminated variables from exact integer values) and
			// evaluate the objective with the original full-space costs.
			full := toFull(roundX(search, res.X))
			obj := roundedObj(m, full, opt)
			if obj < bestObj-1e-9 {
				bestObj = obj
				bestX = full
				haveInc = true
				stats.Incumbents++
				offerIncumbent(obj)
				sample()
				span.Event("incumbent", obs.A("obj", obj), obs.A("node", nodes))
				progress()
			}
			if flt != nil {
				nodeEvent("integer", nd.depth, append(lpAttrs, obs.A("lb", lb))...)
			}
			continue
		}

		// Rounding heuristic: snap all integer vars and test feasibility.
		if nd.depth < 12 {
			clock.Enter(PhaseHeuristic)
			// Feasibility is always certified against the FULL model: the
			// rounded point is postsolved first, so eliminated rows and
			// bounds are rechecked in the caller's space.
			cand := toFull(roundX(search, res.X))
			if ok, obj := m.CheckFeasible(cand, opt.IntTol); ok && obj < bestObj-1e-9 {
				bestObj = obj
				bestX = cand
				haveInc = true
				stats.Incumbents++
				stats.HeuristicHits++
				offerIncumbent(obj)
				sample()
				span.Event("incumbent", obs.A("obj", obj), obs.A("node", nodes), obs.A("source", "rounding"))
				progress()
			}
			clock.Enter(PhaseBranch)
		}

		// Branch: explore the side nearest the LP value first (pushed last).
		xv := res.X[branchVar]
		fl := math.Floor(xv)
		dn := node{
			changes: append(append([]boundChange{}, nd.changes...), boundChange{branchVar, math.Inf(-1), fl}),
			depth:   nd.depth + 1,
			bound:   lb,
			basis:   res.Basis,
		}
		up := node{
			changes: append(append([]boundChange{}, nd.changes...), boundChange{branchVar, fl + 1, math.Inf(1)}),
			depth:   nd.depth + 1,
			bound:   lb,
			basis:   res.Basis,
		}
		if xv-fl > 0.5 {
			stack = append(stack, dn, up) // explore up first
		} else {
			stack = append(stack, up, dn) // explore down first
		}
		if flt != nil {
			nodeEvent("branch", nd.depth, append(lpAttrs,
				obs.A("lb", lb), obs.A("var", branchVar), obs.A("frac", worst))...)
		}
	}

	r := Result{Nodes: nodes, LPIters: lpIters, BestBound: bestBnd}
	r.Completed = !hitLimit && len(stack) == 0
	foreign, haveForeign := ex.Incumbent()
	if r.Completed && opt.IntegralObjective {
		// A completed tree proves no solution cheaper than the effective
		// incumbent exists; publishing that as the bound settles the race.
		if v := incVal(); !math.IsInf(v, 1) {
			ex.OfferBound(int64(math.Round(v)))
		}
	}
	switch {
	case haveInc && r.Completed && (!haveForeign || bestObj <= float64(foreign)+1e-9):
		r.Status = Optimal
		r.Obj = bestObj
		r.X = bestX
		r.BestBound = bestObj
		bestBnd = bestObj
	case haveInc:
		// Feasible covers both a limited search and a completed one whose
		// pruning cutoff came from a cheaper foreign incumbent (the local
		// incumbent is then not optimal; the foreign one is).
		r.Status = Feasible
		r.Obj = bestObj
		r.X = bestX
	case hitLimit:
		r.Status = Limit
	case r.Completed && haveForeign:
		// Full tree explored, every branch pruned by the foreign incumbent:
		// feasibility is witnessed elsewhere, so this is NOT infeasibility —
		// it is a proof that the foreign incumbent is optimal.
		r.Status = Limit
	default:
		r.Status = Infeasible
	}
	return finish(r)
}

// roundX snaps integer variables of x to the nearest integer.
func roundX(m *Model, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j, isInt := range m.isInt {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

func roundedObj(m *Model, x []float64, opt Options) float64 {
	obj := 0.0
	for j := 0; j < m.Prob.NumVars(); j++ {
		v := x[j]
		if m.isInt[j] {
			v = math.Round(v)
		}
		obj += m.Prob.Cost(j) * v
	}
	return obj
}

// CheckFeasible verifies x against all constraints, variable bounds and
// integrality; it returns feasibility and the objective value of x.
func (m *Model) CheckFeasible(x []float64, tol float64) (bool, float64) {
	if tol == 0 {
		tol = 1e-6
	}
	if len(x) != m.Prob.NumVars() {
		return false, 0
	}
	obj := 0.0
	for j := 0; j < m.Prob.NumVars(); j++ {
		lo, hi := m.Prob.VarBounds(j)
		if x[j] < lo-tol || x[j] > hi+tol {
			return false, 0
		}
		if m.isInt[j] && math.Abs(x[j]-math.Round(x[j])) > tol {
			return false, 0
		}
		obj += m.Prob.Cost(j) * x[j]
	}
	for i := 0; i < m.Prob.NumRows(); i++ {
		coeffs, sense, rhs := m.Prob.Row(i)
		sum := 0.0
		for _, c := range coeffs {
			sum += c.Val * x[c.Var]
		}
		switch sense {
		case lp.LE:
			if sum > rhs+1e-6 {
				return false, 0
			}
		case lp.GE:
			if sum < rhs-1e-6 {
				return false, 0
			}
		case lp.EQ:
			if math.Abs(sum-rhs) > 1e-6 {
				return false, 0
			}
		}
	}
	return true, obj
}
