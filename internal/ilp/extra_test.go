package ilp

import (
	"math"
	"testing"
	"time"

	"optrouter/internal/lp"
)

func TestTimeLimitWithIncumbentReturnsFeasible(t *testing.T) {
	// Large knapsack with a valid warm start and zero time: the solver must
	// return the incumbent with Feasible status rather than losing it.
	m := NewModel()
	var cs []lp.Coef
	n := 30
	inc := make([]float64, n)
	for i := 0; i < n; i++ {
		v := m.AddBinary(-float64(1 + (i*3)%7))
		cs = append(cs, lp.Coef{Var: v, Val: float64(1 + (i*5)%9)})
	}
	m.AddConstraint(cs, lp.LE, 20)
	// All-zero is trivially feasible.
	res := m.Solve(Options{Incumbent: inc, TimeLimit: time.Nanosecond})
	if res.Status != Feasible {
		t.Fatalf("status = %v, want feasible (incumbent preserved)", res.Status)
	}
	if math.Abs(res.Obj) > 1e-9 {
		t.Fatalf("obj = %v, want 0 (the incumbent)", res.Obj)
	}
}

func TestSetInteger(t *testing.T) {
	m := NewModel()
	x := m.AddContinuous(0, 10, -1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}}, lp.LE, 2.5)
	res := m.Solve(Options{})
	if math.Abs(res.Obj+2.5) > 1e-7 {
		t.Fatalf("continuous obj = %v", res.Obj)
	}
	m.SetInteger(x, true)
	if !m.IsInteger(x) {
		t.Fatal("SetInteger did not stick")
	}
	res = m.Solve(Options{})
	if res.Status != Optimal || math.Abs(res.Obj+2) > 1e-7 {
		t.Fatalf("integer obj = %v (%v)", res.Obj, res.Status)
	}
}

func TestBestBoundReported(t *testing.T) {
	m := NewModel()
	x := m.AddBinary(-3)
	y := m.AddBinary(-2)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, lp.LE, 1)
	res := m.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.BestBound > res.Obj+1e-9 {
		t.Fatalf("best bound %v exceeds objective %v", res.BestBound, res.Obj)
	}
}

func TestManyEqualSolutions(t *testing.T) {
	// Symmetric model: any single selection is optimal; solver must still
	// terminate with a proof quickly.
	m := NewModel()
	var cs []lp.Coef
	for i := 0; i < 12; i++ {
		v := m.AddBinary(-1)
		cs = append(cs, lp.Coef{Var: v, Val: 1})
	}
	m.AddConstraint(cs, lp.EQ, 6)
	res := m.Solve(Options{IntegralObjective: true})
	if res.Status != Optimal || math.Abs(res.Obj+6) > 1e-7 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 0.5 y, x binary, y in [0, 1.5], x + y <= 2.
	m := NewModel()
	x := m.AddBinary(-1)
	y := m.AddContinuous(0, 1.5, -0.5)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}, {Var: y, Val: 1}}, lp.LE, 2)
	res := m.Solve(Options{})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	want := -1 - 0.5*1.0 // x=1 leaves y <= 1 => obj -1.5
	if math.Abs(res.Obj-want) > 1e-6 {
		t.Fatalf("obj = %v, want %v", res.Obj, want)
	}
}

func TestGeneralIntegerBranching(t *testing.T) {
	// Non-binary integers branch correctly: min -x - y, 3x + 4y <= 17,
	// x, y integer in [0, 5]. Optimum: candidates (x=5 -> y=0 obj -5;
	// x=3,y=2 obj -5; x=1,y=3 obj -4...). Best is -5.
	m := NewModel()
	x := m.AddVar(0, 5, -1, true)
	y := m.AddVar(0, 5, -1, true)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 3}, {Var: y, Val: 4}}, lp.LE, 17)
	res := m.Solve(Options{IntegralObjective: true})
	if res.Status != Optimal || math.Abs(res.Obj+5) > 1e-7 {
		t.Fatalf("status=%v obj=%v X=%v", res.Status, res.Obj, res.X)
	}
}

func TestUnboundedIntegerReportsLimit(t *testing.T) {
	// min -x with x integer and unbounded above: the LP relaxation is
	// unbounded, which the solver surfaces as a limit (no incumbent).
	m := NewModel()
	x := m.AddVar(0, lp.Inf, -1, true)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 0}}, lp.LE, 1) // vacuous row
	res := m.Solve(Options{NoPresolve: true})
	if res.Status == Optimal {
		t.Fatalf("unbounded model reported optimal: %+v", res)
	}
}
