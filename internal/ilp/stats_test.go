package ilp

import (
	"math"
	"testing"
	"time"

	"optrouter/internal/lp"
)

// knapsack builds a model whose tree is big enough to exercise counters.
func knapsack(items int) *Model {
	m := NewModel()
	var cs []lp.Coef
	for j := 0; j < items; j++ {
		v := m.AddBinary(-float64(3 + (j*7)%13))
		cs = append(cs, lp.Coef{Var: v, Val: float64(2 + (j*5)%9)})
	}
	m.AddConstraint(cs, lp.LE, float64(items*7/4))
	return m
}

func TestSolveStatsPopulated(t *testing.T) {
	m := knapsack(20)
	res := m.Solve(Options{IntegralObjective: true})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	st := res.Stats
	if st.Nodes <= 0 || st.Nodes != res.Nodes {
		t.Errorf("Nodes = %d (Result.Nodes %d)", st.Nodes, res.Nodes)
	}
	if st.LPSolves <= 0 {
		t.Errorf("LPSolves = %d, want > 0", st.LPSolves)
	}
	if st.LPIters != res.LPIters {
		t.Errorf("LPIters %d != Result.LPIters %d", st.LPIters, res.LPIters)
	}
	if st.Incumbents <= 0 {
		t.Errorf("no incumbent updates recorded for an optimal solve")
	}
	if st.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", st.Elapsed)
	}
	if st.LPTime < 0 || st.LPTime > st.Elapsed {
		t.Errorf("LPTime %v outside [0, %v]", st.LPTime, st.Elapsed)
	}
	if st.Termination != TermOptimal {
		t.Errorf("Termination = %q, want %q", st.Termination, TermOptimal)
	}
	if len(st.BoundTrace) == 0 {
		t.Fatalf("empty bound trace")
	}
	last := st.BoundTrace[len(st.BoundTrace)-1]
	if last.Incumbent != res.Obj || last.Bound != res.Obj {
		t.Errorf("final trace point %+v, want bound=incumbent=%g", last, res.Obj)
	}
	if g := st.Gap(); g != 0 {
		t.Errorf("Gap = %g on a proven-optimal solve", g)
	}
}

// TestTimeLimitTermination is the satellite fix: a timeout must be
// distinguishable from proven optimality via the termination reason and
// carry the elapsed time.
func TestTimeLimitTermination(t *testing.T) {
	m := knapsack(64)
	res := m.Solve(Options{TimeLimit: 1 * time.Nanosecond})
	if res.Stats.Termination != TermTimeLimit {
		t.Fatalf("Termination = %q, want %q (status %v)", res.Stats.Termination, TermTimeLimit, res.Status)
	}
	if res.Stats.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", res.Stats.Elapsed)
	}
	if res.Status == Optimal {
		t.Errorf("status optimal despite 1ns budget")
	}
}

func TestNodeLimitTermination(t *testing.T) {
	m := knapsack(64)
	res := m.Solve(Options{MaxNodes: 3})
	if res.Stats.Termination != TermNodeLimit {
		t.Fatalf("Termination = %q, want %q", res.Stats.Termination, TermNodeLimit)
	}
	if res.Stats.Nodes > 3 {
		t.Errorf("explored %d nodes over the limit", res.Stats.Nodes)
	}
}

func TestProgressCallback(t *testing.T) {
	m := knapsack(24)
	var calls int
	var lastP Progress
	res := m.Solve(Options{
		ProgressEvery: 1,
		Progress: func(p Progress) {
			calls++
			if p.Nodes < lastP.Nodes {
				t.Errorf("node count went backwards: %d -> %d", lastP.Nodes, p.Nodes)
			}
			lastP = p
		},
	})
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if calls == 0 {
		t.Fatalf("progress callback never invoked")
	}
	if math.IsInf(lastP.Incumbent, 1) {
		t.Errorf("final progress has no incumbent")
	}
}

func TestInfeasibleTermination(t *testing.T) {
	m := NewModel()
	x := m.AddBinary(1)
	m.AddConstraint([]lp.Coef{{Var: x, Val: 1}}, lp.GE, 2)
	res := m.Solve(Options{})
	if res.Status != Infeasible {
		t.Fatalf("status %v", res.Status)
	}
	if res.Stats.Termination != TermInfeasible {
		t.Errorf("Termination = %q, want %q", res.Stats.Termination, TermInfeasible)
	}
}
