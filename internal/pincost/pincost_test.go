package pincost

import (
	"math"
	"testing"

	"optrouter/internal/clip"
)

func clipWithPins(pins []clip.Pin) *clip.Clip {
	nets := make([]clip.Net, 0, len(pins))
	for i := 0; i+1 < len(pins); i += 2 {
		nets = append(nets, clip.Net{
			Name: "n" + string(rune('a'+i)),
			Pins: []clip.Pin{pins[i], pins[i+1]},
		})
	}
	return &clip.Clip{Name: "t", NX: 7, NY: 10, NZ: 4, MinLayer: 1, Nets: nets}
}

func pin(x, y, area, cx, cy int) clip.Pin {
	return clip.Pin{
		Name:    "p",
		APs:     []clip.AccessPoint{{X: x, Y: y, Z: 1}},
		AreaNM2: area, CXNM: cx, CYNM: cy,
	}
}

func TestPECCountsPhysicalPinsOnly(t *testing.T) {
	c := clipWithPins([]clip.Pin{
		pin(0, 0, 1000, 0, 0),
		{Name: "x", APs: []clip.AccessPoint{{X: 6, Y: 9, Z: 1}}}, // crossing
		pin(1, 1, 1000, 300, 300),
		pin(2, 2, 1000, 600, 600),
	})
	b := Compute(c, DefaultTheta)
	if b.PEC != 3 {
		t.Fatalf("PEC = %v, want 3 (crossing excluded)", b.PEC)
	}
}

func TestPACDecreasesWithArea(t *testing.T) {
	small := clipWithPins([]clip.Pin{pin(0, 0, 200, 0, 0), pin(5, 5, 200, 700, 700)})
	large := clipWithPins([]clip.Pin{pin(0, 0, 4000, 0, 0), pin(5, 5, 4000, 700, 700)})
	bs := Compute(small, DefaultTheta)
	bl := Compute(large, DefaultTheta)
	if bs.PAC <= bl.PAC {
		t.Fatalf("smaller pins must cost more: %v vs %v", bs.PAC, bl.PAC)
	}
}

func TestPRCDecreasesWithSpacing(t *testing.T) {
	near := clipWithPins([]clip.Pin{pin(0, 0, 1000, 0, 0), pin(1, 0, 1000, 136, 0)})
	far := clipWithPins([]clip.Pin{pin(0, 0, 1000, 0, 0), pin(6, 9, 1000, 816, 900)})
	bn := Compute(near, DefaultTheta)
	bf := Compute(far, DefaultTheta)
	if bn.PRC <= bf.PRC {
		t.Fatalf("closer pins must cost more: %v vs %v", bn.PRC, bf.PRC)
	}
}

func TestExactFormulas(t *testing.T) {
	// One pair: area 1000 each, spacing 1500nm.
	c := clipWithPins([]clip.Pin{pin(0, 0, 1000, 0, 0), pin(5, 5, 1000, 1500, 0)})
	b := Compute(c, 500)
	wantPAC := 2 * math.Exp2(2-1000.0/500)
	wantPRC := math.Exp2(2 - 1500.0/1500)
	if math.Abs(b.PAC-wantPAC) > 1e-12 {
		t.Fatalf("PAC = %v, want %v", b.PAC, wantPAC)
	}
	if math.Abs(b.PRC-wantPRC) > 1e-12 {
		t.Fatalf("PRC = %v, want %v", b.PRC, wantPRC)
	}
	if got := b.Total(); math.Abs(got-(2+wantPAC+wantPRC)) > 1e-12 {
		t.Fatalf("Total = %v", got)
	}
}

func TestCostCaches(t *testing.T) {
	c := clipWithPins([]clip.Pin{pin(0, 0, 1000, 0, 0), pin(5, 5, 1000, 700, 700)})
	v := Cost(c)
	if c.PinCost != v || v <= 0 {
		t.Fatalf("cost not cached: %v vs %v", c.PinCost, v)
	}
}

func TestRankTopK(t *testing.T) {
	mk := func(name string, n int) *clip.Clip {
		var pins []clip.Pin
		for i := 0; i < n; i++ {
			pins = append(pins, pin(i%7, i%10, 500, i*100, i*50))
		}
		if len(pins)%2 == 1 {
			pins = pins[:len(pins)-1]
		}
		c := clipWithPins(pins)
		c.Name = name
		return c
	}
	clips := []*clip.Clip{mk("small", 2), mk("big", 8), mk("mid", 4)}
	top := RankTopK(clips, 2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Name != "big" || top[1].Name != "mid" {
		t.Fatalf("order: %s, %s", top[0].Name, top[1].Name)
	}
	all := RankTopK(clips, 10)
	if len(all) != 3 {
		t.Fatalf("k beyond len should return all: %d", len(all))
	}
	if all[0].PinCost < all[1].PinCost || all[1].PinCost < all[2].PinCost {
		t.Fatal("not sorted descending")
	}
}

func TestThetaDefaulting(t *testing.T) {
	c := clipWithPins([]clip.Pin{pin(0, 0, 1000, 0, 0), pin(1, 1, 1000, 100, 100)})
	if Compute(c, 0) != Compute(c, DefaultTheta) {
		t.Fatal("theta 0 should default")
	}
}
