// Package pincost implements the pin cost metric of Taghavi et al. (ICCAD
// 2010) used by the paper to select "difficult-to-route" clips: a pin
// existence cost (PEC), a pin-area cost (PAC) and a pin-spacing cost (PRC),
// summed per clip with theta = 500 (paper Section 4).
//
//	PEC = number of physical pins in the clip
//	PAC = sum_i 2^(2 - area(p_i)/theta)
//	PRC = sum_{i<j} 2^(2 - spacing(p_i,p_j)/(3*theta))
//
// Only cell pins carry physical shapes; boundary-crossing terminals have no
// geometry and are excluded, matching the metric's original placement-time
// usage. Absolute values depend on the synthetic pin geometry; the metric is
// used for ranking (top-K selection), which is scale-invariant.
package pincost

import (
	"math"
	"sort"

	"optrouter/internal/clip"
	"optrouter/internal/geom"
)

// DefaultTheta is the paper's theta parameter.
const DefaultTheta = 500.0

// Breakdown itemizes the metric.
type Breakdown struct {
	PEC float64
	PAC float64
	PRC float64
}

// Total returns PEC + PAC + PRC.
func (b Breakdown) Total() float64 { return b.PEC + b.PAC + b.PRC }

// Compute evaluates the metric for a clip with the given theta
// (use DefaultTheta for the paper's setting).
func Compute(c *clip.Clip, theta float64) Breakdown {
	if theta <= 0 {
		theta = DefaultTheta
	}
	type physPin struct {
		area   float64
		center geom.Point
	}
	var pins []physPin
	for i := range c.Nets {
		for _, p := range c.Nets[i].Pins {
			if p.AreaNM2 <= 0 {
				continue // boundary crossing: no physical shape
			}
			pins = append(pins, physPin{
				area:   float64(p.AreaNM2),
				center: geom.Pt(p.CXNM, p.CYNM),
			})
		}
	}
	var b Breakdown
	b.PEC = float64(len(pins))
	for _, p := range pins {
		b.PAC += math.Exp2(2 - p.area/theta)
	}
	for i := 0; i < len(pins); i++ {
		for j := i + 1; j < len(pins); j++ {
			d := float64(pins[i].center.ManhattanDist(pins[j].center))
			b.PRC += math.Exp2(2 - d/(3*theta))
		}
	}
	return b
}

// Cost returns the scalar pin cost with the default theta and caches it on
// the clip.
func Cost(c *clip.Clip) float64 {
	v := Compute(c, DefaultTheta).Total()
	c.PinCost = v
	return v
}

// RankTopK scores all clips and returns the K highest-cost ones in
// descending cost order (fewer if len(clips) < k), mirroring the paper's
// top-100 selection. Ties break on clip name for determinism.
func RankTopK(clips []*clip.Clip, k int) []*clip.Clip {
	scored := make([]*clip.Clip, len(clips))
	copy(scored, clips)
	for _, c := range scored {
		if c.PinCost == 0 {
			Cost(c)
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].PinCost != scored[j].PinCost {
			return scored[i].PinCost > scored[j].PinCost
		}
		return scored[i].Name < scored[j].Name
	})
	if k < len(scored) {
		scored = scored[:k]
	}
	return scored
}
