// Package calib measures the machine, not the code: a fixed suite of
// deterministic micro-workloads run before a benchmark session so that every
// BENCH_<n>.json document carries evidence of the hardware state it was
// produced under. Two documents' calibration blocks divide into a machine
// ratio, and report.CompareBench uses it to separate "the solver got slower"
// from "the container got slower" (the BENCH_2→BENCH_3 lesson: a 1.414×
// apparent wall regression that was pure container drift).
//
// The suite probes the three resources solver wall time is made of —
// scalar integer throughput (int_spin), memory latency (ptr_chase) and
// memory bandwidth (memcpy) — plus one tiny pinned solver instance (solver)
// as an end-to-end cross-check. The composite Score deliberately excludes
// the solver probe: the score must move only when the machine moves, never
// when the solver gets faster, or calibration would cancel the very
// speedups the trajectory exists to record.
//
// Every probe executes a fixed, seed-pinned operation count and reports the
// best (minimum) time of its rounds — the standard calibration estimator,
// robust against scheduler preemption inflating a round.
package calib

import (
	"math"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// Options tunes a calibration run.
type Options struct {
	// Rounds is the per-probe repetition count; the best round is reported.
	// 0 means 3.
	Rounds int
}

// Probe is one micro-workload's measurement.
type Probe struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"` // best-of-rounds
	Ops     int     `json:"ops"`       // operations per round
}

// Result is one calibration run.
type Result struct {
	Probes []Probe `json:"probes"`
	// ScoreNs is the geometric mean ns/op of the machine probes (int_spin,
	// ptr_chase, memcpy). The solver probe is excluded by design: code
	// speedups must not move the machine score.
	ScoreNs float64 `json:"score_ns"`
	// WallMS is the wall time of the whole suite including warmup rounds.
	WallMS float64 `json:"wall_ms"`
}

// ProbesNs returns the probe measurements as a name → ns/op map (the shape
// stamped into bench documents).
func (r Result) ProbesNs() map[string]float64 {
	m := make(map[string]float64, len(r.Probes))
	for _, p := range r.Probes {
		m[p.Name] = p.NsPerOp
	}
	return m
}

// MachineProbes names the probes whose geomean forms Score — and which
// CompareBench uses for the machine ratio. The solver probe is excluded
// from both (see the package comment).
var MachineProbes = []string{"int_spin", "ptr_chase", "memcpy"}

// Sink defeats dead-code elimination of the probe loops; never read it.
var Sink uint64

// Run executes the calibration suite and returns its result.
func Run(opt Options) Result {
	rounds := opt.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	start := time.Now()
	res := Result{Probes: []Probe{
		runProbe("int_spin", rounds, spinOps, probeSpin),
		runProbe("ptr_chase", rounds, chaseSteps, probeChase()),
		runProbe("memcpy", rounds, copyBytes*copyPasses, probeMemcpy()),
		runProbe("solver", rounds, solverSolves, probeSolver()),
	}}
	logSum, n := 0.0, 0
	machine := map[string]bool{}
	for _, name := range MachineProbes {
		machine[name] = true
	}
	for _, p := range res.Probes {
		if machine[p.Name] && p.NsPerOp > 0 {
			logSum += math.Log(p.NsPerOp)
			n++
		}
	}
	if n > 0 {
		res.ScoreNs = math.Exp(logSum / float64(n))
	}
	res.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return res
}

// runProbe times fn (which performs ops operations) over rounds plus one
// untimed warmup, reporting the minimum round.
func runProbe(name string, rounds, ops int, fn func()) Probe {
	fn() // warmup: fault pages in, warm caches to their steady state
	best := time.Duration(math.MaxInt64)
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return Probe{Name: name, Ops: ops, NsPerOp: float64(best.Nanoseconds()) / float64(ops)}
}

const spinOps = 1 << 22

// probeSpin is pure register arithmetic: an xorshift64* chain whose every
// step depends on the previous one, measuring scalar ALU throughput with no
// memory traffic.
func probeSpin() {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < spinOps; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		x *= 0x2545F4914F6CDD1D
	}
	Sink += x
}

const (
	chaseLen   = 1 << 18 // 256K int32 entries = 1 MiB, past typical L1/L2
	chaseSteps = 1 << 21
)

// probeChase walks a fixed pseudo-random single cycle through a 1 MiB index
// array. Every load depends on the previous one, so the measured ns/op is
// memory (cache/TLB) latency, the resource pointer-heavy search trees pay.
func probeChase() func() {
	perm := make([]int32, chaseLen)
	for i := range perm {
		perm[i] = int32(i)
	}
	// Sattolo's algorithm with a fixed LCG: one cycle, identical on every
	// machine and run.
	rng := uint64(0x853C49E6748FEA9B)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for i := chaseLen - 1; i > 0; i-- {
		j := next(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return func() {
		p := int32(0)
		for i := 0; i < chaseSteps; i++ {
			p = perm[p]
		}
		Sink += uint64(p)
	}
}

const (
	copyBytes  = 4 << 20
	copyPasses = 32
)

// probeMemcpy streams a 4 MiB buffer copyPasses times; ns/op is per byte,
// i.e. the inverse of sequential memory bandwidth (flat DP tables, basis
// refreshes).
func probeMemcpy() func() {
	src := make([]byte, copyBytes)
	dst := make([]byte, copyBytes)
	for i := range src {
		src[i] = byte(i)
	}
	return func() {
		for p := 0; p < copyPasses; p++ {
			copy(dst, src)
			src, dst = dst, src
		}
		Sink += uint64(src[len(src)/2])
	}
}

const solverSolves = 8

// probeSolver solves one tiny pinned instance (the 4x5x3-s3-RULE1 corpus
// case) solverSolves times per round: an end-to-end cross-check that the
// synthetic probes predict solver throughput. Excluded from Score.
func probeSolver() func() {
	sopt := clip.DefaultSynth(3)
	sopt.NX, sopt.NY, sopt.NZ = 4, 5, 3
	sopt.NumNets = 3
	sopt.MaxSinks = 2
	c := clip.Synthesize(sopt)
	rule, _ := tech.RuleByName("RULE1")
	return func() {
		for i := 0; i < solverSolves; i++ {
			g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
			if err != nil {
				return
			}
			sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: 5 * time.Second})
			if err != nil || sol == nil {
				return
			}
			Sink += uint64(sol.Cost)
		}
	}
}
