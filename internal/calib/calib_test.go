package calib

import (
	"math"
	"testing"
)

func TestRunShape(t *testing.T) {
	res := Run(Options{Rounds: 1})
	if len(res.Probes) != 4 {
		t.Fatalf("probes = %d, want 4", len(res.Probes))
	}
	names := res.ProbesNs()
	for _, want := range append(append([]string{}, MachineProbes...), "solver") {
		ns, ok := names[want]
		if !ok {
			t.Errorf("probe %q missing", want)
			continue
		}
		if ns <= 0 || math.IsNaN(ns) || math.IsInf(ns, 0) {
			t.Errorf("probe %q ns/op = %g, want finite positive", want, ns)
		}
	}
	if res.ScoreNs <= 0 {
		t.Errorf("ScoreNs = %g, want > 0", res.ScoreNs)
	}
	if res.WallMS <= 0 {
		t.Errorf("WallMS = %g, want > 0", res.WallMS)
	}
}

// TestScoreExcludesSolver: the composite score is the geomean of the machine
// probes only — a solver speedup must never move it.
func TestScoreExcludesSolver(t *testing.T) {
	res := Run(Options{Rounds: 1})
	probes := res.ProbesNs()
	logSum, n := 0.0, 0
	for _, name := range MachineProbes {
		if ns := probes[name]; ns > 0 {
			logSum += math.Log(ns)
			n++
		}
	}
	want := math.Exp(logSum / float64(n))
	if math.Abs(res.ScoreNs-want)/want > 1e-12 {
		t.Fatalf("ScoreNs = %g, want geomean of machine probes %g", res.ScoreNs, want)
	}
}

func TestDefaultRounds(t *testing.T) {
	res := Run(Options{})
	if len(res.Probes) != 4 || res.ScoreNs <= 0 {
		t.Fatalf("default-option run malformed: %+v", res)
	}
}

func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Run(Options{Rounds: 1})
		Sink += uint64(res.ScoreNs)
	}
}
