// Package congestion scores clip windows by realized routing demand — the
// "metric beyond [Taghavi et al.] to estimate routability in sub-20nm
// nodes" that the paper's Section 5 names as future work. Where the pin
// cost metric sees only pin geometry, the congestion score reads the
// reference route: how much wire, how many vias and how many boundary
// crossings the window actually carries, normalized by its track capacity.
package congestion

import (
	"optrouter/internal/route"
)

// Weights for the demand score; vias weigh like the routing cost metric and
// crossings proxy for through-traffic pressure on the window boundary.
const (
	wireWeight     = 1.0
	viaWeight      = 4.0
	crossingWeight = 2.0
)

// WindowScore computes the demand score of the window at track origin
// (ox, oy) with extent w x h over nz layers: realized in-window usage
// weighted by resource kind, divided by the window's wire capacity.
func WindowScore(res *route.Result, ox, oy, w, h, nz int) float64 {
	if w <= 0 || h <= 0 || nz <= 0 {
		return 0
	}
	inWin := func(x, y int) bool {
		return x >= ox && x < ox+w && y >= oy && y < oy+h
	}
	demand := 0.0
	for i := range res.Nets {
		for _, s := range res.Nets[i].Steps {
			if s.FromZ >= nz || s.ToZ >= nz {
				continue
			}
			fIn := inWin(s.FromX, s.FromY)
			tIn := inWin(s.ToX, s.ToY)
			switch {
			case fIn && tIn:
				if s.IsVia() {
					demand += viaWeight
				} else {
					demand += wireWeight
				}
			case fIn != tIn:
				demand += crossingWeight
			}
		}
	}
	capacity := float64(w * h * (nz - res.MinLayer))
	return demand / capacity
}

// Ranked is a scored window.
type Ranked struct {
	OX, OY int
	Score  float64
}

// RankWindows scores every stride-aligned window of the routed design and
// returns them in descending score order.
func RankWindows(res *route.Result, w, h, nz, strideX, strideY int) []Ranked {
	if strideX <= 0 {
		strideX = w
	}
	if strideY <= 0 {
		strideY = h
	}
	var out []Ranked
	for oy := 0; oy+h <= res.NY; oy += strideY {
		for ox := 0; ox+w <= res.NX; ox += strideX {
			out = append(out, Ranked{OX: ox, OY: oy, Score: WindowScore(res, ox, oy, w, h, nz)})
		}
	}
	// Insertion sort by descending score, ties by position for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Score > a.Score || (b.Score == a.Score && (b.OY < a.OY || (b.OY == a.OY && b.OX < a.OX))) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}
