package congestion

import (
	"testing"

	"optrouter/internal/cells"
	"optrouter/internal/netlist"
	"optrouter/internal/place"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

func routed(t *testing.T) *route.Result {
	t.Helper()
	lib := cells.Generate(tech.N28T12())
	nl, err := netlist.Generate(lib, netlist.M0Class(150, 1))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(lib, nl, place.Options{TargetUtil: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(pl, route.Options{Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWindowScoreBasics(t *testing.T) {
	res := routed(t)
	s := WindowScore(res, 0, 0, 7, 10, 4)
	if s < 0 {
		t.Fatalf("negative score %v", s)
	}
	// Degenerate windows score zero.
	if WindowScore(res, 0, 0, 0, 10, 4) != 0 {
		t.Fatal("zero-width window must score 0")
	}
	// A window covering everything has positive demand in a routed design.
	full := WindowScore(res, 0, 0, res.NX, res.NY, res.NZ)
	if full <= 0 {
		t.Fatalf("whole-die score %v", full)
	}
}

func TestRankWindowsSorted(t *testing.T) {
	res := routed(t)
	ranked := RankWindows(res, 7, 10, 4, 7, 10)
	if len(ranked) == 0 {
		t.Fatal("no windows")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("not sorted at %d: %v > %v", i, ranked[i].Score, ranked[i-1].Score)
		}
	}
	if ranked[0].Score <= 0 {
		t.Fatal("top window should carry demand")
	}
}

func TestRankWindowsDeterministic(t *testing.T) {
	res := routed(t)
	a := RankWindows(res, 7, 10, 4, 7, 10)
	b := RankWindows(res, 7, 10, 4, 7, 10)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic ranking at %d", i)
		}
	}
}

func TestStrideDefaults(t *testing.T) {
	res := routed(t)
	tiled := RankWindows(res, 7, 10, 4, 0, 0) // defaults to window size
	dense := RankWindows(res, 7, 10, 4, 3, 5)
	if len(dense) <= len(tiled) {
		t.Fatalf("overlapping stride should yield more windows: %d vs %d", len(dense), len(tiled))
	}
}
