// Package tech models BEOL process technologies for the OptRouter
// reproduction: metal layer stacks (pitch, preferred direction, patterning),
// via definitions and shapes, and the design-rule configurations RULE1–RULE11
// of the paper's Table 3.
//
// Three technologies are provided, mirroring the paper's testbed: 12-track
// and 8-track libraries in a 28nm-class BEOL (N28-12T, N28-8T) and a 9-track
// 7nm-class library scaled into the same BEOL grid (N7-9T), exactly as the
// paper scales its prototype 7nm cells by 2.5x to fit the 28nm stack.
package tech

import "fmt"

// Direction is a routing layer's preferred direction. All layers in this
// study are unidirectional (paper section 4.1).
type Direction uint8

const (
	// Horizontal wires run along X.
	Horizontal Direction = iota
	// Vertical wires run along Y.
	Vertical
)

func (d Direction) String() string {
	if d == Horizontal {
		return "H"
	}
	return "V"
}

// Patterning is the multi-patterning style of a layer under a RuleConfig.
type Patterning uint8

const (
	// LELE is litho-etch-litho-etch double patterning (no EOL rules here).
	LELE Patterning = iota
	// SADP is self-aligned double patterning, which activates the
	// EOL (end-of-line) rules of constraints (6)-(12).
	SADP
)

func (p Patterning) String() string {
	if p == LELE {
		return "LELE"
	}
	return "SADP"
}

// Layer describes one metal layer of the BEOL stack.
type Layer struct {
	Name    string    // e.g. "M2"
	Index   int       // 1-based metal index; M1 == 1
	Dir     Direction // preferred (and only) routing direction
	PitchNM int       // track pitch in nanometers
}

// ViaShape describes a via footprint in track units. A 1x1 via occupies one
// grid vertex; a bar or square via spans several adjacent tracks on both the
// lower and upper layer (paper Fig. 2) and is modeled in the routing graph by
// a representative vertex.
type ViaShape struct {
	Name string
	// ColsX and RowsY are the footprint extents in vertical-track (X) and
	// horizontal-track (Y) units.
	ColsX, RowsY int
	// Cost is the routing cost of using the via. The paper assigns lower
	// costs to larger vias so the optimizer prefers them for
	// manufacturability.
	Cost int
}

// Standard via shapes. SingleVia is the default for the rule-evaluation
// experiments; the others are exercised by the via-shape study.
var (
	SingleVia = ViaShape{Name: "V1x1", ColsX: 1, RowsY: 1, Cost: 4}
	HBarVia   = ViaShape{Name: "V2x1", ColsX: 2, RowsY: 1, Cost: 3}
	VBarVia   = ViaShape{Name: "V1x2", ColsX: 1, RowsY: 2, Cost: 3}
	SquareVia = ViaShape{Name: "V2x2", ColsX: 2, RowsY: 2, Cost: 2}
)

// Technology is a process node + standard-cell architecture pairing.
type Technology struct {
	Name        string // "N28-12T", "N28-8T", "N7-9T"
	Node        string // "N28" or "N7"
	TrackHeight int    // standard-cell height in routing tracks (12, 8, 9)

	Layers []Layer // Layers[0] is M1

	// Placement geometry (nm). Cell height = TrackHeight * HPitchNM.
	SiteWidthNM int // placement site width (vertical-layer pitch)
	RowHeightNM int

	// PinAccessPoints is the typical number of access points per input pin
	// in this library (paper Fig. 9: N28-12T has generous pins, scaled
	// N7-9T pins expose only two nearby access points).
	PinAccessPoints int
	// PinSpanTracks is the typical vertical span of a pin shape in
	// horizontal-track units.
	PinSpanTracks int
}

// HPitchNM returns the pitch of horizontal routing layers.
func (t *Technology) HPitchNM() int {
	for _, l := range t.Layers {
		if l.Dir == Horizontal {
			return l.PitchNM
		}
	}
	return 100
}

// VPitchNM returns the pitch of vertical routing layers.
func (t *Technology) VPitchNM() int {
	for _, l := range t.Layers {
		if l.Dir == Vertical {
			return l.PitchNM
		}
	}
	return 136
}

// NumLayers returns the number of metal layers.
func (t *Technology) NumLayers() int { return len(t.Layers) }

// LayerByName finds a layer by name; ok is false if absent.
func (t *Technology) LayerByName(name string) (Layer, bool) {
	for _, l := range t.Layers {
		if l.Name == name {
			return l, true
		}
	}
	return Layer{}, false
}

// makeStack builds an 8-layer stack with alternating directions. Following
// the paper's scaled-BEOL methodology, the horizontal pitch is 100nm and the
// vertical pitch is 136nm for every technology (the 7nm library is scaled
// into the 28nm stack).
func makeStack() []Layer {
	layers := make([]Layer, 8)
	for i := range layers {
		idx := i + 1
		dir := Horizontal
		pitch := 100
		if idx%2 == 0 {
			dir = Vertical
			pitch = 136
		}
		layers[i] = Layer{Name: fmt.Sprintf("M%d", idx), Index: idx, Dir: dir, PitchNM: pitch}
	}
	return layers
}

// N28T12 returns the 28nm 12-track technology.
func N28T12() *Technology {
	return &Technology{
		Name:            "N28-12T",
		Node:            "N28",
		TrackHeight:     12,
		Layers:          makeStack(),
		SiteWidthNM:     136,
		RowHeightNM:     1200,
		PinAccessPoints: 4,
		PinSpanTracks:   4,
	}
}

// N28T8 returns the 28nm 8-track technology.
func N28T8() *Technology {
	return &Technology{
		Name:            "N28-8T",
		Node:            "N28",
		TrackHeight:     8,
		Layers:          makeStack(),
		SiteWidthNM:     136,
		RowHeightNM:     800,
		PinAccessPoints: 3,
		PinSpanTracks:   3,
	}
}

// N7T9 returns the 7nm 9-track technology, scaled into the 28nm BEOL grid as
// in the paper (2.5x geometric scaling, pins snapped on-grid).
func N7T9() *Technology {
	return &Technology{
		Name:            "N7-9T",
		Node:            "N7",
		TrackHeight:     9,
		Layers:          makeStack(),
		SiteWidthNM:     136,
		RowHeightNM:     900,
		PinAccessPoints: 2,
		PinSpanTracks:   2,
	}
}

// AllTechnologies returns the three paper technologies in Table 2 order.
func AllTechnologies() []*Technology {
	return []*Technology{N28T12(), N28T8(), N7T9()}
}

// RuleConfig is one BEOL design-rule configuration (a row of Table 3):
// a mix of SADP layers and a via adjacency restriction.
type RuleConfig struct {
	Name string
	// SADPMinLayer is the lowest metal index patterned with SADP
	// (layers >= SADPMinLayer are SADP); 0 means no SADP layers.
	SADPMinLayer int
	// BlockedVias is the number of neighboring via sites blocked by a via:
	// 0 (none), 4 (orthogonal N/E/S/W) or 8 (orthogonal + diagonal).
	BlockedVias int
}

// Patterning reports the patterning of metal layer index under this config.
func (r RuleConfig) Patterning(layerIndex int) Patterning {
	if r.SADPMinLayer > 0 && layerIndex >= r.SADPMinLayer {
		return SADP
	}
	return LELE
}

// HasSADP reports whether any layer is SADP-patterned.
func (r RuleConfig) HasSADP() bool { return r.SADPMinLayer > 0 }

func (r RuleConfig) String() string {
	sadp := "No SADP"
	if r.SADPMinLayer > 0 {
		sadp = fmt.Sprintf("SADP >= M%d", r.SADPMinLayer)
	}
	return fmt.Sprintf("%s (%s, %d neighbors blocked)", r.Name, sadp, r.BlockedVias)
}

// StandardRules returns RULE1..RULE11 exactly as in Table 3.
func StandardRules() []RuleConfig {
	return []RuleConfig{
		{Name: "RULE1", SADPMinLayer: 0, BlockedVias: 0},
		{Name: "RULE2", SADPMinLayer: 2, BlockedVias: 0},
		{Name: "RULE3", SADPMinLayer: 3, BlockedVias: 0},
		{Name: "RULE4", SADPMinLayer: 4, BlockedVias: 0},
		{Name: "RULE5", SADPMinLayer: 5, BlockedVias: 0},
		{Name: "RULE6", SADPMinLayer: 0, BlockedVias: 4},
		{Name: "RULE7", SADPMinLayer: 2, BlockedVias: 4},
		{Name: "RULE8", SADPMinLayer: 3, BlockedVias: 4},
		{Name: "RULE9", SADPMinLayer: 0, BlockedVias: 8},
		{Name: "RULE10", SADPMinLayer: 2, BlockedVias: 8},
		{Name: "RULE11", SADPMinLayer: 3, BlockedVias: 8},
	}
}

// RuleByName returns the named standard rule; ok is false if unknown.
func RuleByName(name string) (RuleConfig, bool) {
	for _, r := range StandardRules() {
		if r.Name == name {
			return r, true
		}
	}
	return RuleConfig{}, false
}

// AppliesTo reports whether the rule is evaluated for the technology.
// The paper skips RULE2, 7, 9, 10 and 11 for N7-9T because the small 7nm
// pin shapes cannot survive diagonal via blocking or SADP down to M2
// (section 4.1, Fig. 9(c)).
func (r RuleConfig) AppliesTo(t *Technology) bool {
	if t.Node != "N7" {
		return true
	}
	if r.BlockedVias == 8 {
		return false
	}
	if r.SADPMinLayer == 2 {
		return false
	}
	return true
}

// RulesFor lists the standard rules evaluated for a technology, preserving
// Table 3 order.
func RulesFor(t *Technology) []RuleConfig {
	var out []RuleConfig
	for _, r := range StandardRules() {
		if r.AppliesTo(t) {
			out = append(out, r)
		}
	}
	return out
}
