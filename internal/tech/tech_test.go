package tech

import "testing"

func TestStandardRulesMatchTable3(t *testing.T) {
	rules := StandardRules()
	if len(rules) != 11 {
		t.Fatalf("expected 11 rules, got %d", len(rules))
	}
	want := []struct {
		name    string
		sadp    int
		blocked int
	}{
		{"RULE1", 0, 0},
		{"RULE2", 2, 0},
		{"RULE3", 3, 0},
		{"RULE4", 4, 0},
		{"RULE5", 5, 0},
		{"RULE6", 0, 4},
		{"RULE7", 2, 4},
		{"RULE8", 3, 4},
		{"RULE9", 0, 8},
		{"RULE10", 2, 8},
		{"RULE11", 3, 8},
	}
	for i, w := range want {
		r := rules[i]
		if r.Name != w.name || r.SADPMinLayer != w.sadp || r.BlockedVias != w.blocked {
			t.Errorf("rule %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestRuleByName(t *testing.T) {
	r, ok := RuleByName("RULE6")
	if !ok || r.BlockedVias != 4 || r.SADPMinLayer != 0 {
		t.Fatalf("RuleByName(RULE6) = %+v, %v", r, ok)
	}
	if _, ok := RuleByName("RULE99"); ok {
		t.Error("unknown rule should not resolve")
	}
}

func TestPatterning(t *testing.T) {
	r, _ := RuleByName("RULE3") // SADP >= M3
	cases := []struct {
		layer int
		want  Patterning
	}{
		{1, LELE}, {2, LELE}, {3, SADP}, {4, SADP}, {8, SADP},
	}
	for _, c := range cases {
		if got := r.Patterning(c.layer); got != c.want {
			t.Errorf("RULE3 patterning(M%d) = %v, want %v", c.layer, got, c.want)
		}
	}
	r1, _ := RuleByName("RULE1")
	for l := 1; l <= 8; l++ {
		if r1.Patterning(l) != LELE {
			t.Errorf("RULE1 must be all-LELE; M%d is not", l)
		}
	}
	if r1.HasSADP() {
		t.Error("RULE1 HasSADP should be false")
	}
	if !r.HasSADP() {
		t.Error("RULE3 HasSADP should be true")
	}
}

func TestTechnologiesMatchTable2(t *testing.T) {
	techs := AllTechnologies()
	if len(techs) != 3 {
		t.Fatalf("expected 3 technologies, got %d", len(techs))
	}
	wantNames := []string{"N28-12T", "N28-8T", "N7-9T"}
	wantTracks := []int{12, 8, 9}
	for i, tt := range techs {
		if tt.Name != wantNames[i] {
			t.Errorf("tech %d name = %s, want %s", i, tt.Name, wantNames[i])
		}
		if tt.TrackHeight != wantTracks[i] {
			t.Errorf("%s track height = %d, want %d", tt.Name, tt.TrackHeight, wantTracks[i])
		}
		if tt.NumLayers() != 8 {
			t.Errorf("%s must have 8 metal layers, got %d", tt.Name, tt.NumLayers())
		}
		if tt.RowHeightNM != tt.TrackHeight*tt.HPitchNM() {
			t.Errorf("%s row height %d != tracks*hpitch %d", tt.Name, tt.RowHeightNM, tt.TrackHeight*tt.HPitchNM())
		}
	}
}

func TestStackAlternatesAndPitches(t *testing.T) {
	tt := N28T12()
	// Paper's scaled BEOL: 100nm horizontal pitch, 136nm vertical pitch.
	if tt.HPitchNM() != 100 || tt.VPitchNM() != 136 {
		t.Fatalf("pitches = %d/%d, want 100/136", tt.HPitchNM(), tt.VPitchNM())
	}
	for i, l := range tt.Layers {
		wantDir := Horizontal
		if (i+1)%2 == 0 {
			wantDir = Vertical
		}
		if l.Dir != wantDir {
			t.Errorf("layer %s direction = %v, want %v", l.Name, l.Dir, wantDir)
		}
		if l.Index != i+1 {
			t.Errorf("layer %d index = %d", i, l.Index)
		}
	}
}

func TestLayerByName(t *testing.T) {
	tt := N7T9()
	l, ok := tt.LayerByName("M3")
	if !ok || l.Index != 3 || l.Dir != Horizontal {
		t.Fatalf("LayerByName(M3) = %+v, %v", l, ok)
	}
	if _, ok := tt.LayerByName("M42"); ok {
		t.Error("unknown layer should not resolve")
	}
}

func TestN7RuleApplicability(t *testing.T) {
	n7 := N7T9()
	rules := RulesFor(n7)
	// Paper: RULE2, 7, 9, 10, 11 are not tested for N7-9T.
	gotNames := map[string]bool{}
	for _, r := range rules {
		gotNames[r.Name] = true
	}
	for _, excluded := range []string{"RULE2", "RULE7", "RULE9", "RULE10", "RULE11"} {
		if gotNames[excluded] {
			t.Errorf("%s must be excluded for N7-9T", excluded)
		}
	}
	for _, included := range []string{"RULE1", "RULE3", "RULE4", "RULE5", "RULE6", "RULE8"} {
		if !gotNames[included] {
			t.Errorf("%s must be included for N7-9T", included)
		}
	}
	// All 11 rules apply for both N28 technologies.
	for _, tech := range []*Technology{N28T12(), N28T8()} {
		if got := len(RulesFor(tech)); got != 11 {
			t.Errorf("%s should evaluate all 11 rules, got %d", tech.Name, got)
		}
	}
}

func TestViaShapes(t *testing.T) {
	if SingleVia.ColsX != 1 || SingleVia.RowsY != 1 {
		t.Error("single via must be 1x1")
	}
	// Paper: larger via shapes get lower cost.
	if !(SquareVia.Cost < HBarVia.Cost && HBarVia.Cost < SingleVia.Cost) {
		t.Error("via costs must decrease with size")
	}
	if VBarVia.Cost != HBarVia.Cost {
		t.Error("bar vias should cost the same in either orientation")
	}
}

func TestStringers(t *testing.T) {
	if Horizontal.String() != "H" || Vertical.String() != "V" {
		t.Error("Direction.String broken")
	}
	if LELE.String() != "LELE" || SADP.String() != "SADP" {
		t.Error("Patterning.String broken")
	}
	r, _ := RuleByName("RULE8")
	if got := r.String(); got != "RULE8 (SADP >= M3, 4 neighbors blocked)" {
		t.Errorf("RuleConfig.String = %q", got)
	}
}
