// Package rgraph builds the three-dimensional routing graph G(V, A) of the
// paper's Section 3 from a clip and a design-rule configuration: grid
// vertices on metal tracks, directed wire arcs restricted to each layer's
// preferred direction (unidirectional routing), via arcs between layers,
// representative vertices for large via shapes (Fig. 2), supersource /
// supersink virtual vertices for pin shapes, and the bookkeeping needed to
// emit via-adjacency and SADP constraints (via sites, per-vertex side arcs).
package rgraph

import (
	"fmt"

	"optrouter/internal/clip"
	"optrouter/internal/geom"
	"optrouter/internal/tech"
)

// ArcKind classifies arcs.
type ArcKind uint8

const (
	// Wire is an in-plane track segment between adjacent grid vertices.
	Wire ArcKind = iota
	// Via is a single-cut (1x1) via arc between adjacent layers.
	Via
	// ViaShapeIn enters a via-shape representative vertex (carries cost).
	ViaShapeIn
	// ViaShapeOut leaves a via-shape representative vertex (zero cost).
	ViaShapeOut
	// Virtual connects supersource/supersink vertices to access points.
	Virtual
)

func (k ArcKind) String() string {
	switch k {
	case Wire:
		return "wire"
	case Via:
		return "via"
	case ViaShapeIn:
		return "via-in"
	case ViaShapeOut:
		return "via-out"
	case Virtual:
		return "virtual"
	}
	return "?"
}

// IsVia reports whether using the arc implies using a via cut.
func (k ArcKind) IsVia() bool { return k == Via || k == ViaShapeIn || k == ViaShapeOut }

// Arc is a directed arc of the routing graph.
type Arc struct {
	From, To int32
	Cost     int32
	Kind     ArcKind
	Site     int32 // via-site index for via arcs, else -1
}

// ViaSite is one placeable via instance: a cut position (for 1x1 vias) or a
// shaped via anchored at (X, Y) spanning its footprint (Fig. 2).
type ViaSite struct {
	X, Y, ZCut int // between layers ZCut and ZCut+1
	Shape      tech.ViaShape
	Rep        int32   // representative vertex id, or -1 for 1x1 vias
	Arcs       []int32 // arcs whose use implies this site is occupied
	Footprint  []int32 // grid vertices covered on both layers
}

// Options configures graph construction.
type Options struct {
	// Rule supplies the via-adjacency restriction and SADP layer mix.
	Rule tech.RuleConfig
	// ViaShapes lists allowed via shapes; nil means {tech.SingleVia}.
	ViaShapes []tech.ViaShape
	// WireCost is the cost of one track-to-track wire step (default 1).
	// The default via cost of 4 gives the paper's cost = WL + 4 * #vias.
	WireCost int
	// Bidirectional adds wire arcs orthogonal to each layer's preferred
	// direction, modeling classic LELE bidirectional metal (the paper's
	// "routing direction" option). It is incompatible with SADP rules,
	// which assume unidirectional patterning.
	Bidirectional bool
	// ViaCost overrides the cost of every via shape when positive,
	// implementing the paper's "alternative routing cost definitions with
	// different weighting of via count". Zero keeps each shape's own cost.
	ViaCost int
}

func (o Options) withDefaults() Options {
	if o.WireCost == 0 {
		o.WireCost = 1
	}
	if len(o.ViaShapes) == 0 {
		o.ViaShapes = []tech.ViaShape{tech.SingleVia}
	}
	return o
}

// SideArcs are the in-plane arcs at a vertex toward/from its low-coordinate
// ("lo", i.e. west or south) and high-coordinate ("hi") neighbors along the
// layer's preferred direction. Missing arcs are -1.
type SideArcs struct {
	LoIn, LoOut int32 // lo-neighbor -> v, v -> lo-neighbor
	HiIn, HiOut int32
}

// Graph is the routing graph of one clip under one rule configuration.
type Graph struct {
	Clip *clip.Clip
	Opt  Options

	NX, NY, NZ int
	NumGrid    int // grid vertex count = NX*NY*NZ
	NumVerts   int // total vertices (grid + via reps + super terminals)

	Arcs []Arc
	Pair []int32   // Pair[a] = reverse arc of a
	Out  [][]int32 // outgoing arc ids per vertex
	In   [][]int32 // incoming arc ids per vertex

	Blocked []bool // per grid vertex (obstacles)

	Sites   []ViaSite
	SiteAdj [][]int32 // conflicting site ids per site (via adjacency rule)

	// Per-net terminals. Source[k] is net k's supersource vertex;
	// SinkVerts[k] lists one supersink per sink pin of net k.
	Source    []int32
	SinkVerts [][]int32

	// PinOwner[v] is the net index owning grid vertex v as a pin access
	// point, or -1. Other nets may not touch such vertices.
	PinOwner []int32

	// Side[v] caches in-plane side arcs for SADP constraint generation.
	Side []SideArcs

	// viaArcsAt[v] lists via arc ids incident to grid vertex v (either
	// direction, any kind of via).
	viaArcsAt [][]int32
}

// GridID maps track coordinates to a grid vertex id.
func (g *Graph) GridID(x, y, z int) int32 { return int32((z*g.NY+y)*g.NX + x) }

// XYZ inverts GridID for grid vertices.
func (g *Graph) XYZ(v int32) (x, y, z int) {
	x = int(v) % g.NX
	y = (int(v) / g.NX) % g.NY
	z = int(v) / (g.NX * g.NY)
	return
}

// IsGrid reports whether vertex v is a grid vertex.
func (g *Graph) IsGrid(v int32) bool { return int(v) < g.NumGrid }

// LayerDir returns the preferred direction of layer z (even = horizontal,
// matching the tech stack where M1 is horizontal).
func LayerDir(z int) tech.Direction {
	if z%2 == 0 {
		return tech.Horizontal
	}
	return tech.Vertical
}

// ViaArcsAt returns via arc ids incident to grid vertex v.
func (g *Graph) ViaArcsAt(v int32) []int32 { return g.viaArcsAt[v] }

// Build constructs the routing graph.
func Build(c *clip.Clip, opt Options) (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Bidirectional && opt.Rule.HasSADP() {
		return nil, fmt.Errorf("rgraph: SADP rules (%s) require unidirectional routing", opt.Rule.Name)
	}
	opt = opt.withDefaults()
	g := &Graph{
		Clip:    c,
		Opt:     opt,
		NX:      c.NX,
		NY:      c.NY,
		NZ:      c.NZ,
		NumGrid: c.NX * c.NY * c.NZ,
	}
	g.Blocked = make([]bool, g.NumGrid)
	for _, o := range c.Obstacles {
		g.Blocked[g.GridID(o.X, o.Y, o.Z)] = true
	}
	g.PinOwner = make([]int32, g.NumGrid)
	for i := range g.PinOwner {
		g.PinOwner[i] = -1
	}
	for k := range c.Nets {
		for _, p := range c.Nets[k].Pins {
			for _, a := range p.APs {
				g.PinOwner[g.GridID(a.X, a.Y, a.Z)] = int32(k)
			}
		}
	}

	g.NumVerts = g.NumGrid
	var addVertex = func() int32 {
		v := int32(g.NumVerts)
		g.NumVerts++
		return v
	}

	// Arc helper: appends a directed arc pair and wires Pair[].
	addPair := func(u, v int32, costUV, costVU int32, kindUV, kindVU ArcKind, site int32) (int32, int32) {
		a := int32(len(g.Arcs))
		g.Arcs = append(g.Arcs, Arc{From: u, To: v, Cost: costUV, Kind: kindUV, Site: site})
		b := int32(len(g.Arcs))
		g.Arcs = append(g.Arcs, Arc{From: v, To: u, Cost: costVU, Kind: kindVU, Site: site})
		g.Pair = append(g.Pair, b, a)
		return a, b
	}

	// In-plane wire arcs: the preferred direction per layer, plus the
	// orthogonal direction when bidirectional routing is enabled.
	for z := c.MinLayer; z < c.NZ; z++ {
		dir := LayerDir(z)
		for y := 0; y < c.NY; y++ {
			for x := 0; x < c.NX; x++ {
				u := g.GridID(x, y, z)
				if g.Blocked[u] {
					continue
				}
				emitX := dir == tech.Horizontal || opt.Bidirectional
				emitY := dir == tech.Vertical || opt.Bidirectional
				if emitX && x+1 < c.NX {
					v := g.GridID(x+1, y, z)
					if !g.Blocked[v] {
						addPair(u, v, int32(opt.WireCost), int32(opt.WireCost), Wire, Wire, -1)
					}
				}
				if emitY && y+1 < c.NY {
					v := g.GridID(x, y+1, z)
					if !g.Blocked[v] {
						addPair(u, v, int32(opt.WireCost), int32(opt.WireCost), Wire, Wire, -1)
					}
				}
			}
		}
	}

	// Via sites and arcs.
	for _, shape := range opt.ViaShapes {
		for zc := c.MinLayer; zc < c.NZ-1; zc++ {
			for y := 0; y+shape.RowsY <= c.NY; y++ {
				for x := 0; x+shape.ColsX <= c.NX; x++ {
					g.addViaSite(x, y, zc, shape, addVertex, addPair)
				}
			}
		}
	}
	// Pin-access vias: pins sitting one layer below MinLayer (M1 pins)
	// are reachable only through a via at the access point — the paper's
	// V12 sites, which participate in via-adjacency restrictions and are
	// the crux of the Fig. 9 pin-access analysis.
	if c.MinLayer > 0 && c.MinLayer < c.NZ {
		seen := map[[2]int]bool{}
		for k := range c.Nets {
			for _, p := range c.Nets[k].Pins {
				for _, a := range p.APs {
					if a.Z != c.MinLayer-1 {
						continue
					}
					key := [2]int{a.X, a.Y}
					if seen[key] {
						continue
					}
					seen[key] = true
					g.addViaSite(a.X, a.Y, a.Z, tech.SingleVia, addVertex, addPair)
				}
			}
		}
	}

	// Super terminals.
	g.Source = make([]int32, len(c.Nets))
	g.SinkVerts = make([][]int32, len(c.Nets))
	for k := range c.Nets {
		n := &c.Nets[k]
		s := addVertex()
		g.Source[k] = s
		for _, a := range n.Pins[0].APs {
			addPair(s, g.GridID(a.X, a.Y, a.Z), 0, 0, Virtual, Virtual, -1)
		}
		for pi := 1; pi < len(n.Pins); pi++ {
			t := addVertex()
			g.SinkVerts[k] = append(g.SinkVerts[k], t)
			for _, a := range n.Pins[pi].APs {
				addPair(g.GridID(a.X, a.Y, a.Z), t, 0, 0, Virtual, Virtual, -1)
			}
		}
	}

	g.buildAdjacency()
	g.buildSiteConflicts()
	g.buildSideArcs()
	return g, nil
}

// addViaSite creates the arcs for one via instance if its footprint is clear.
func (g *Graph) addViaSite(x, y, zc int, shape tech.ViaShape,
	addVertex func() int32,
	addPair func(u, v int32, costUV, costVU int32, kindUV, kindVU ArcKind, site int32) (int32, int32),
) {
	var fp []int32
	for dy := 0; dy < shape.RowsY; dy++ {
		for dx := 0; dx < shape.ColsX; dx++ {
			lo := g.GridID(x+dx, y+dy, zc)
			hi := g.GridID(x+dx, y+dy, zc+1)
			if g.Blocked[lo] || g.Blocked[hi] {
				return
			}
			fp = append(fp, lo, hi)
		}
	}
	siteID := int32(len(g.Sites))
	site := ViaSite{X: x, Y: y, ZCut: zc, Shape: shape, Rep: -1, Footprint: fp}

	cost := int32(shape.Cost)
	if g.Opt.ViaCost > 0 {
		cost = int32(g.Opt.ViaCost)
	}
	if shape.ColsX == 1 && shape.RowsY == 1 {
		lo, hi := fp[0], fp[1]
		a, b := addPair(lo, hi, cost, cost, Via, Via, siteID)
		site.Arcs = []int32{a, b}
	} else {
		rep := addVertex()
		site.Rep = rep
		for _, v := range fp {
			in, out := addPair(v, rep, cost, 0, ViaShapeIn, ViaShapeOut, siteID)
			site.Arcs = append(site.Arcs, in, out)
		}
	}
	g.Sites = append(g.Sites, site)
}

func (g *Graph) buildAdjacency() {
	g.Out = make([][]int32, g.NumVerts)
	g.In = make([][]int32, g.NumVerts)
	g.viaArcsAt = make([][]int32, g.NumGrid)
	for i := range g.Arcs {
		a := &g.Arcs[i]
		g.Out[a.From] = append(g.Out[a.From], int32(i))
		g.In[a.To] = append(g.In[a.To], int32(i))
		if a.Kind.IsVia() {
			if g.IsGrid(a.From) {
				g.viaArcsAt[a.From] = append(g.viaArcsAt[a.From], int32(i))
			}
			if g.IsGrid(a.To) {
				g.viaArcsAt[a.To] = append(g.viaArcsAt[a.To], int32(i))
			}
		}
	}
}

// buildSiteConflicts fills SiteAdj per the rule's BlockedVias setting:
// 4 blocks orthogonally adjacent cut positions, 8 also blocks diagonals.
// Overlapping same-level footprints of distinct sites also conflict (two
// vias cannot share a landing pad cell).
func (g *Graph) buildSiteConflicts() {
	g.SiteAdj = make([][]int32, len(g.Sites))
	if len(g.Sites) == 0 {
		return
	}
	// Spatial index: cut cells per (zcut) -> map[(x,y)] -> site ids.
	type cell struct{ x, y int }
	byLayer := make([]map[cell][]int32, g.NZ)
	for i := range byLayer {
		byLayer[i] = map[cell][]int32{}
	}
	cellsOf := func(s *ViaSite) []cell {
		var cs []cell
		for dy := 0; dy < s.Shape.RowsY; dy++ {
			for dx := 0; dx < s.Shape.ColsX; dx++ {
				cs = append(cs, cell{s.X + dx, s.Y + dy})
			}
		}
		return cs
	}
	for i := range g.Sites {
		s := &g.Sites[i]
		for _, c := range cellsOf(s) {
			byLayer[s.ZCut][c] = append(byLayer[s.ZCut][c], int32(i))
		}
	}
	blocked := g.Opt.Rule.BlockedVias
	conflict := map[[2]int32]bool{}
	addConflict := func(a, b int32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if conflict[[2]int32{a, b}] {
			return
		}
		conflict[[2]int32{a, b}] = true
		g.SiteAdj[a] = append(g.SiteAdj[a], b)
		g.SiteAdj[b] = append(g.SiteAdj[b], a)
	}
	for i := range g.Sites {
		s := &g.Sites[i]
		for _, c := range cellsOf(s) {
			// Overlap conflicts (distinct sites sharing a cut cell).
			for _, o := range byLayer[s.ZCut][c] {
				addConflict(int32(i), o)
			}
			// Neighborhood conflicts.
			var neigh []cell
			if blocked >= 4 {
				neigh = append(neigh, cell{c.x + 1, c.y}, cell{c.x - 1, c.y}, cell{c.x, c.y + 1}, cell{c.x, c.y - 1})
			}
			if blocked >= 8 {
				neigh = append(neigh, cell{c.x + 1, c.y + 1}, cell{c.x + 1, c.y - 1}, cell{c.x - 1, c.y + 1}, cell{c.x - 1, c.y - 1})
			}
			for _, nc := range neigh {
				for _, o := range byLayer[s.ZCut][nc] {
					addConflict(int32(i), o)
				}
			}
		}
	}
}

// buildSideArcs caches each grid vertex's in-plane lo/hi arcs.
func (g *Graph) buildSideArcs() {
	g.Side = make([]SideArcs, g.NumGrid)
	for i := range g.Side {
		g.Side[i] = SideArcs{LoIn: -1, LoOut: -1, HiIn: -1, HiOut: -1}
	}
	for i := range g.Arcs {
		a := &g.Arcs[i]
		if a.Kind != Wire {
			continue
		}
		fx, fy, fz := g.XYZ(a.From)
		tx, ty, _ := g.XYZ(a.To)
		// Classify only preferred-direction arcs: the SADP EOL machinery
		// (the sole consumer) applies to unidirectional layers only.
		if LayerDir(fz) == tech.Horizontal && fy != ty {
			continue
		}
		if LayerDir(fz) == tech.Vertical && fx != tx {
			continue
		}
		// Arc goes lo->hi if destination coordinate is larger.
		if tx > fx || ty > fy {
			// a.To's lo side, a.From's hi side.
			g.Side[a.To].LoIn = int32(i)
			g.Side[a.From].HiOut = int32(i)
		} else {
			g.Side[a.To].HiIn = int32(i)
			g.Side[a.From].LoOut = int32(i)
		}
	}
}

// IsSADPLayer reports whether layer z is SADP-patterned under the graph's
// rule configuration (z is 0-based; metal index is z+1).
func (g *Graph) IsSADPLayer(z int) bool {
	return g.Opt.Rule.Patterning(z+1) == tech.SADP
}

// EOLNeighborSets returns, for an EOL at grid vertex v opening toward the
// low-coordinate side ("lo EOL": wire extends to the hi side) or hi side,
// the vertices where a facing EOL and a same-direction EOL are forbidden
// (paper Fig. 5; see DESIGN.md for the documented interpretation).
//
// The direction argument hiWire=true corresponds to the paper's p_r (wire
// coming from the right / hi side).
func (g *Graph) EOLNeighborSets(v int32, hiWire bool) (facing, sameDir []int32) {
	x, y, z := g.XYZ(v)
	dir := LayerDir(z)
	// Work in (along, across) coordinates: along = preferred direction.
	along, across := x, y
	if dir == tech.Vertical {
		along, across = y, x
	}
	sign := -1 // hiWire: EOL opens toward lower coordinates
	if !hiWire {
		sign = 1
	}
	mk := func(da, dc int) int32 {
		na, nc := along+da, across+dc
		var nx, ny int
		if dir == tech.Horizontal {
			nx, ny = na, nc
		} else {
			nx, ny = nc, na
		}
		if nx < 0 || nx >= g.NX || ny < 0 || ny >= g.NY {
			return -1
		}
		return g.GridID(nx, ny, z)
	}
	add := func(list []int32, da, dc int) []int32 {
		if id := mk(da, dc); id >= 0 {
			list = append(list, id)
		}
		return list
	}
	// Shared sites j1..j3: adjacent tracks at same position, and one step
	// into the opening.
	facing = add(facing, 0, +1)
	facing = add(facing, sign, 0)
	facing = add(facing, 0, -1)
	// Facing-only j4, j5: diagonal into the opening.
	facing = add(facing, sign, +1)
	facing = add(facing, sign, -1)

	sameDir = add(sameDir, 0, +1)
	sameDir = add(sameDir, sign, 0)
	sameDir = add(sameDir, 0, -1)
	// Same-direction-only j6, j7: diagonal behind the EOL.
	sameDir = add(sameDir, -sign, +1)
	sameDir = add(sameDir, -sign, -1)
	return facing, sameDir
}

// Stats summarizes graph size for the paper's Section 4 model analysis.
type Stats struct {
	Verts, GridVerts, Arcs, ViaSites, SiteConflicts int
}

// Stats returns size statistics.
func (g *Graph) Stats() Stats {
	nc := 0
	for _, adj := range g.SiteAdj {
		nc += len(adj)
	}
	return Stats{
		Verts:         g.NumVerts,
		GridVerts:     g.NumGrid,
		Arcs:          len(g.Arcs),
		ViaSites:      len(g.Sites),
		SiteConflicts: nc / 2,
	}
}

// CheckInvariants verifies internal consistency; used by tests.
func (g *Graph) CheckInvariants() error {
	if len(g.Pair) != len(g.Arcs) {
		return fmt.Errorf("pair table size %d != arcs %d", len(g.Pair), len(g.Arcs))
	}
	for i := range g.Arcs {
		j := g.Pair[i]
		if g.Pair[j] != int32(i) {
			return fmt.Errorf("arc %d: pair not involutive", i)
		}
		if g.Arcs[i].From != g.Arcs[j].To || g.Arcs[i].To != g.Arcs[j].From {
			return fmt.Errorf("arc %d: pair endpoints mismatch", i)
		}
		a := &g.Arcs[i]
		if a.Kind == Wire {
			fx, fy, fz := g.XYZ(a.From)
			tx, ty, tz := g.XYZ(a.To)
			if fz != tz {
				return fmt.Errorf("wire arc %d crosses layers", i)
			}
			if geom.Abs(fx-tx)+geom.Abs(fy-ty) != 1 {
				return fmt.Errorf("wire arc %d is not a unit step", i)
			}
			if !g.Opt.Bidirectional {
				d := LayerDir(fz)
				if d == tech.Horizontal && fy != ty {
					return fmt.Errorf("wire arc %d violates horizontal direction", i)
				}
				if d == tech.Vertical && fx != tx {
					return fmt.Errorf("wire arc %d violates vertical direction", i)
				}
			}
		}
	}
	return nil
}
