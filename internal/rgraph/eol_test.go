package rgraph

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/tech"
)

// Facing EOL pairs are symmetric: if j is in facing(v, side) then v is in
// facing(j, 1-side) — both tips see each other. Same-direction pairs need
// only be generated from one endpoint (the along-axis members are
// deliberately one-sided), but the across-track members must be mutual.
func TestEOLNeighborSetSymmetry(t *testing.T) {
	c := &clip.Clip{
		Name: "eol", Tech: "t",
		NX: 6, NY: 7, NZ: 5, MinLayer: 1,
		Nets: []clip.Net{{Name: "a", Pins: []clip.Pin{
			{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
			{Name: "t", APs: []clip.AccessPoint{{X: 5, Y: 6, Z: 1}}},
		}}},
	}
	g, err := Build(c, Options{Rule: tech.RuleConfig{SADPMinLayer: 2}})
	if err != nil {
		t.Fatal(err)
	}
	contains := func(list []int32, v int32) bool {
		for _, x := range list {
			if x == v {
				return true
			}
		}
		return false
	}
	for v := int32(0); v < int32(g.NumGrid); v++ {
		_, _, z := g.XYZ(v)
		if z < 1 {
			continue
		}
		for _, hiWire := range []bool{false, true} {
			facing, sameDir := g.EOLNeighborSets(v, hiWire)
			for _, j := range facing {
				jf, _ := g.EOLNeighborSets(j, !hiWire)
				if !contains(jf, v) {
					t.Fatalf("facing asymmetry: v=%d hiWire=%v j=%d", v, hiWire, j)
				}
			}
			for _, j := range sameDir {
				// Only across-track neighbors (same position along the
				// routing direction) must be mutual.
				vx, vy, vz := g.XYZ(v)
				jx, jy, _ := g.XYZ(j)
				sameAlong := (LayerDir(vz) == tech.Horizontal && vx == jx) ||
					(LayerDir(vz) == tech.Vertical && vy == jy)
				if !sameAlong {
					continue
				}
				_, js := g.EOLNeighborSets(j, hiWire)
				if !contains(js, v) {
					t.Fatalf("sameDir across-track asymmetry: v=%d hiWire=%v j=%d", v, hiWire, j)
				}
			}
		}
	}
}

// EOL neighbor sets never leave the vertex's own layer and never contain
// the vertex itself.
func TestEOLNeighborSetsSaneMembers(t *testing.T) {
	c := clip.Synthesize(clip.DefaultSynth(1))
	g, err := Build(c, Options{Rule: tech.RuleConfig{SADPMinLayer: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.NumGrid); v++ {
		_, _, vz := g.XYZ(v)
		for _, hiWire := range []bool{false, true} {
			facing, sameDir := g.EOLNeighborSets(v, hiWire)
			for _, list := range [][]int32{facing, sameDir} {
				for _, j := range list {
					if j == v {
						t.Fatalf("self-membership at %d", v)
					}
					_, _, jz := g.XYZ(j)
					if jz != vz {
						t.Fatalf("cross-layer EOL neighbor: %d (M%d) vs %d (M%d)", v, vz+1, j, jz+1)
					}
				}
			}
		}
	}
}

// ViaCost override rewrites every via arc cost.
func TestViaCostOverride(t *testing.T) {
	c := testClip()
	g, err := Build(c, Options{ViaCost: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Arcs {
		if g.Arcs[i].Kind == Via && g.Arcs[i].Cost != 9 {
			t.Fatalf("via arc cost %d, want 9", g.Arcs[i].Cost)
		}
	}
	g2, err := Build(c, Options{ViaShapes: []tech.ViaShape{tech.SquareVia}, ViaCost: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g2.Arcs {
		if g2.Arcs[i].Kind == ViaShapeIn && g2.Arcs[i].Cost != 7 {
			t.Fatalf("via-shape-in cost %d, want 7", g2.Arcs[i].Cost)
		}
	}
}
