package rgraph

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/tech"
)

func testClip() *clip.Clip {
	return &clip.Clip{
		Name: "t", Tech: "N28-12T",
		NX: 4, NY: 5, NZ: 3, MinLayer: 1,
		Nets: []clip.Net{
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 3, Y: 4, Z: 1}}},
			}},
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 1, Y: 1, Z: 1}, {X: 1, Y: 2, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 3, Y: 0, Z: 1}}},
				{Name: "u", APs: []clip.AccessPoint{{X: 0, Y: 4, Z: 2}}},
			}},
		},
	}
}

func build(t *testing.T, c *clip.Clip, opt Options) *Graph {
	t.Helper()
	g, err := Build(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := build(t, testClip(), Options{})
	if g.NumGrid != 4*5*3 {
		t.Fatalf("grid verts = %d", g.NumGrid)
	}
	// Super terminals: net a has 1 source + 1 sink, net b 1 source + 2 sinks.
	wantVerts := g.NumGrid + 2 + 3
	if g.NumVerts != wantVerts {
		t.Fatalf("verts = %d, want %d", g.NumVerts, wantVerts)
	}
	if len(g.Source) != 2 || len(g.SinkVerts[1]) != 2 {
		t.Fatalf("terminal bookkeeping wrong: %v %v", g.Source, g.SinkVerts)
	}
}

func TestUnidirectionalArcs(t *testing.T) {
	g := build(t, testClip(), Options{})
	for i := range g.Arcs {
		a := &g.Arcs[i]
		if a.Kind != Wire {
			continue
		}
		fx, fy, fz := g.XYZ(a.From)
		tx, ty, _ := g.XYZ(a.To)
		if LayerDir(fz) == tech.Horizontal && fy != ty {
			t.Fatalf("horizontal layer %d has vertical wire arc (%d,%d)->(%d,%d)", fz, fx, fy, tx, ty)
		}
		if LayerDir(fz) == tech.Vertical && fx != tx {
			t.Fatalf("vertical layer %d has horizontal wire arc", fz)
		}
	}
}

func TestMinLayerExcluded(t *testing.T) {
	g := build(t, testClip(), Options{})
	for i := range g.Arcs {
		a := &g.Arcs[i]
		if a.Kind == Virtual {
			continue
		}
		for _, v := range []int32{a.From, a.To} {
			if !g.IsGrid(v) {
				continue
			}
			_, _, z := g.XYZ(v)
			if z < 1 {
				t.Fatalf("arc %d (%v) touches layer below MinLayer", i, a.Kind)
			}
		}
	}
}

func TestGridIDRoundTrip(t *testing.T) {
	g := build(t, testClip(), Options{})
	for z := 0; z < 3; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 4; x++ {
				id := g.GridID(x, y, z)
				gx, gy, gz := g.XYZ(id)
				if gx != x || gy != y || gz != z {
					t.Fatalf("GridID/XYZ mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestViaSitesSingle(t *testing.T) {
	g := build(t, testClip(), Options{})
	// 1x1 vias on cuts z=1->2 at every position: 4*5 = 20 sites.
	if len(g.Sites) != 20 {
		t.Fatalf("sites = %d, want 20", len(g.Sites))
	}
	for _, s := range g.Sites {
		if s.Rep != -1 || len(s.Arcs) != 2 || len(s.Footprint) != 2 {
			t.Fatalf("1x1 site malformed: %+v", s)
		}
	}
}

func TestViaCostMatchesPaper(t *testing.T) {
	g := build(t, testClip(), Options{})
	for i := range g.Arcs {
		a := &g.Arcs[i]
		switch a.Kind {
		case Wire:
			if a.Cost != 1 {
				t.Fatalf("wire cost %d != 1", a.Cost)
			}
		case Via:
			if a.Cost != 4 {
				t.Fatalf("via cost %d != 4 (paper: cost = WL + 4*vias)", a.Cost)
			}
		case Virtual:
			if a.Cost != 0 {
				t.Fatalf("virtual arc has nonzero cost")
			}
		}
	}
}

func TestSiteConflictsRule6(t *testing.T) {
	rule6, _ := tech.RuleByName("RULE6") // 4 neighbors blocked
	g := build(t, testClip(), Options{Rule: rule6})
	// Interior site at (1,1) must conflict with exactly 4 orthogonal
	// neighbors.
	for i, s := range g.Sites {
		if s.X == 1 && s.Y == 1 {
			if len(g.SiteAdj[i]) != 4 {
				t.Fatalf("interior site conflicts = %d, want 4", len(g.SiteAdj[i]))
			}
		}
		if s.X == 0 && s.Y == 0 {
			if len(g.SiteAdj[i]) != 2 {
				t.Fatalf("corner site conflicts = %d, want 2", len(g.SiteAdj[i]))
			}
		}
	}
}

func TestSiteConflictsRule9(t *testing.T) {
	rule9, _ := tech.RuleByName("RULE9") // 8 neighbors blocked
	g := build(t, testClip(), Options{Rule: rule9})
	for i, s := range g.Sites {
		if s.X == 1 && s.Y == 1 {
			if len(g.SiteAdj[i]) != 8 {
				t.Fatalf("interior site conflicts = %d, want 8", len(g.SiteAdj[i]))
			}
		}
	}
}

func TestNoConflictsRule1(t *testing.T) {
	g := build(t, testClip(), Options{})
	for i := range g.Sites {
		if len(g.SiteAdj[i]) != 0 {
			t.Fatalf("RULE1 should have no via conflicts, site %d has %d", i, len(g.SiteAdj[i]))
		}
	}
}

func TestObstaclesBlockArcs(t *testing.T) {
	c := testClip()
	c.Obstacles = []clip.AccessPoint{{X: 2, Y: 2, Z: 1}}
	g := build(t, c, Options{})
	blockedID := g.GridID(2, 2, 1)
	if len(g.Out[blockedID]) != 0 || len(g.In[blockedID]) != 0 {
		t.Fatal("obstacle vertex has incident arcs")
	}
}

func TestPinOwner(t *testing.T) {
	g := build(t, testClip(), Options{})
	if g.PinOwner[g.GridID(0, 0, 1)] != 0 {
		t.Error("net a source AP not owned")
	}
	if g.PinOwner[g.GridID(1, 2, 1)] != 1 {
		t.Error("net b alternate AP not owned")
	}
	if g.PinOwner[g.GridID(2, 2, 1)] != -1 {
		t.Error("free vertex should be unowned")
	}
}

func TestViaShapesCreateRepVertices(t *testing.T) {
	g := build(t, testClip(), Options{ViaShapes: []tech.ViaShape{tech.SingleVia, tech.SquareVia}})
	// Square vias: anchors (x,y) with x+2<=4, y+2<=5 -> 3*4=12 on one cut.
	nSquare := 0
	for _, s := range g.Sites {
		if s.Shape.Name == "V2x2" {
			nSquare++
			if s.Rep < 0 || !(!g.IsGrid(s.Rep)) == false && g.IsGrid(s.Rep) {
				t.Fatal("square via must have a non-grid representative vertex")
			}
			if len(s.Footprint) != 8 {
				t.Fatalf("square via footprint = %d cells, want 8 (4 cells x 2 layers)", len(s.Footprint))
			}
			if len(s.Arcs) != 16 {
				t.Fatalf("square via arcs = %d, want 16", len(s.Arcs))
			}
		}
	}
	if nSquare != 12 {
		t.Fatalf("square via sites = %d, want 12", nSquare)
	}
	// Cost accounting: arcs into the rep carry the cost, arcs out are free.
	for _, s := range g.Sites {
		if s.Shape.Name != "V2x2" {
			continue
		}
		for _, aid := range s.Arcs {
			a := g.Arcs[aid]
			if a.Kind == ViaShapeIn && a.Cost != int32(tech.SquareVia.Cost) {
				t.Fatalf("via-in cost = %d", a.Cost)
			}
			if a.Kind == ViaShapeOut && a.Cost != 0 {
				t.Fatalf("via-out cost = %d", a.Cost)
			}
		}
	}
}

func TestSideArcs(t *testing.T) {
	g := build(t, testClip(), Options{})
	// Vertex (1,0,2) on horizontal layer M3 (z=2): lo = (0,0,2), hi = (2,0,2).
	v := g.GridID(1, 0, 2)
	sa := g.Side[v]
	if sa.LoIn < 0 || sa.LoOut < 0 || sa.HiIn < 0 || sa.HiOut < 0 {
		t.Fatalf("interior vertex missing side arcs: %+v", sa)
	}
	if g.Arcs[sa.LoIn].To != v || g.Arcs[sa.LoOut].From != v {
		t.Fatal("side arc orientation wrong")
	}
	lo := g.GridID(0, 0, 2)
	if g.Arcs[sa.LoIn].From != lo {
		t.Fatal("LoIn does not come from the west neighbor")
	}
	// Boundary vertex (0,0,2) has no lo arcs.
	sb := g.Side[lo]
	if sb.LoIn != -1 || sb.LoOut != -1 {
		t.Fatal("boundary vertex should lack lo-side arcs")
	}
}

func TestEOLNeighborSets(t *testing.T) {
	g := build(t, testClip(), Options{Rule: tech.RuleConfig{SADPMinLayer: 2}})
	// Horizontal layer z=2 (M3), interior vertex (2,2).
	v := g.GridID(2, 2, 2)
	facing, same := g.EOLNeighborSets(v, true) // p_r: wire on hi side, opens toward lo
	if len(facing) != 5 || len(same) != 5 {
		t.Fatalf("interior EOL sets: facing=%d same=%d, want 5/5", len(facing), len(same))
	}
	wantFacing := map[[2]int]bool{
		{2, 3}: true, {1, 2}: true, {2, 1}: true, {1, 3}: true, {1, 1}: true,
	}
	for _, id := range facing {
		x, y, z := g.XYZ(id)
		if z != 2 || !wantFacing[[2]int{x, y}] {
			t.Fatalf("unexpected facing vertex (%d,%d,%d)", x, y, z)
		}
	}
	wantSame := map[[2]int]bool{
		{2, 3}: true, {1, 2}: true, {2, 1}: true, {3, 3}: true, {3, 1}: true,
	}
	for _, id := range same {
		x, y, z := g.XYZ(id)
		if z != 2 || !wantSame[[2]int{x, y}] {
			t.Fatalf("unexpected same-dir vertex (%d,%d,%d)", x, y, z)
		}
	}
	// Corner clipping: vertex (0,0) has fewer neighbors.
	f2, s2 := g.EOLNeighborSets(g.GridID(0, 0, 2), true)
	if len(f2) >= 5 || len(s2) >= 5 {
		t.Fatalf("corner EOL sets should be clipped: %d %d", len(f2), len(s2))
	}
}

func TestIsSADPLayer(t *testing.T) {
	rule3, _ := tech.RuleByName("RULE3") // SADP >= M3
	g := build(t, testClip(), Options{Rule: rule3})
	if g.IsSADPLayer(0) || g.IsSADPLayer(1) {
		t.Error("M1/M2 must be LELE under RULE3")
	}
	if !g.IsSADPLayer(2) {
		t.Error("M3 must be SADP under RULE3")
	}
}

func TestStats(t *testing.T) {
	g := build(t, testClip(), Options{})
	st := g.Stats()
	if st.GridVerts != 60 || st.Verts != g.NumVerts || st.Arcs != len(g.Arcs) || st.ViaSites != 20 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestVirtualArcsConnectTerminals(t *testing.T) {
	g := build(t, testClip(), Options{})
	s := g.Source[1] // net b: 2 APs on its source pin
	if len(g.Out[s]) != 2 {
		t.Fatalf("supersource out-arcs = %d, want 2", len(g.Out[s]))
	}
	for _, t1 := range g.SinkVerts[1] {
		if len(g.In[t1]) == 0 {
			t.Fatal("supersink has no in-arcs")
		}
	}
}

func TestBlockedViaFootprintSkipsSite(t *testing.T) {
	c := testClip()
	c.Obstacles = []clip.AccessPoint{{X: 0, Y: 0, Z: 2}}
	g := build(t, c, Options{})
	for _, s := range g.Sites {
		if s.X == 0 && s.Y == 0 {
			t.Fatal("via site with blocked footprint must not exist")
		}
	}
}
