package rgraph

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/tech"
)

func TestBidirectionalAddsArcs(t *testing.T) {
	c := testClip()
	uni := build(t, c, Options{})
	bi := build(t, c, Options{Bidirectional: true})
	if len(bi.Arcs) <= len(uni.Arcs) {
		t.Fatalf("bidirectional graph should have more arcs: %d vs %d", len(bi.Arcs), len(uni.Arcs))
	}
	// Every layer must now have wire arcs along both axes.
	axes := map[[2]bool]bool{}
	for i := range bi.Arcs {
		a := &bi.Arcs[i]
		if a.Kind != Wire {
			continue
		}
		fx, fy, fz := bi.XYZ(a.From)
		tx, ty, _ := bi.XYZ(a.To)
		if fz < c.MinLayer {
			t.Fatal("arc below MinLayer")
		}
		axes[[2]bool{fx != tx, fy != ty}] = true
	}
	if !axes[[2]bool{true, false}] || !axes[[2]bool{false, true}] {
		t.Fatal("bidirectional graph lacks one axis")
	}
}

func TestBidirectionalRejectsSADP(t *testing.T) {
	rule3, _ := tech.RuleByName("RULE3")
	_, err := Build(testClip(), Options{Rule: rule3, Bidirectional: true})
	if err == nil {
		t.Fatal("SADP + bidirectional must be rejected")
	}
}

func TestBidirectionalInvariants(t *testing.T) {
	g := build(t, testClip(), Options{Bidirectional: true})
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalSideArcsStayAxisAligned(t *testing.T) {
	g := build(t, testClip(), Options{Bidirectional: true})
	for v := int32(0); v < int32(g.NumGrid); v++ {
		sa := g.Side[v]
		_, _, z := g.XYZ(v)
		for _, aid := range []int32{sa.LoIn, sa.LoOut, sa.HiIn, sa.HiOut} {
			if aid < 0 {
				continue
			}
			a := g.Arcs[aid]
			fx, fy, _ := g.XYZ(a.From)
			tx, ty, _ := g.XYZ(a.To)
			if LayerDir(z) == tech.Horizontal && fy != ty {
				t.Fatalf("side arc %d off-axis on horizontal layer", aid)
			}
			if LayerDir(z) == tech.Vertical && fx != tx {
				t.Fatalf("side arc %d off-axis on vertical layer", aid)
			}
		}
	}
}

func TestBidirectionalSynthClip(t *testing.T) {
	opt := clip.DefaultSynth(3)
	c := clip.Synthesize(opt)
	g, err := Build(c, Options{Bidirectional: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
