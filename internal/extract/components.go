package extract

import (
	"fmt"

	"optrouter/internal/clip"
	"optrouter/internal/netlist"
	"optrouter/internal/route"
)

// Component is one connected piece of a net's reference routing inside a
// window: the fully-inside steps plus the boundary-crossing terminals and
// the touched vertex set.
type Component struct {
	NetIdx    int
	Steps     []route.Step       // steps with both endpoints inside
	Crossings []clip.AccessPoint // window-local crossing terminals
	Verts     map[[3]int]bool    // window-local touched vertices
}

// Wirelength counts the component's in-window wire steps.
func (c *Component) Wirelength() int {
	n := 0
	for _, s := range c.Steps {
		if !s.IsVia() {
			n++
		}
	}
	return n
}

// Vias counts the component's in-window via steps.
func (c *Component) Vias() int { return len(c.Steps) - c.Wirelength() }

// Components decomposes every net's in-window routing at window origin
// (ox, oy) into connected components. Coordinates in the result are
// window-local. Layers at or above opt.NZ are ignored, mirroring Window.
func Components(res *route.Result, ox, oy int, opt Options) []Component {
	opt = opt.withDefaults(res)
	W, H := opt.WTracks, opt.HTracks
	inWin := func(x, y int) bool {
		return x >= ox && x < ox+W && y >= oy && y < oy+H
	}

	var out []Component
	for ni := range res.Nets {
		rn := &res.Nets[ni]
		// Union-find over in-window vertices.
		parent := map[[3]int][3]int{}
		var find func(v [3]int) [3]int
		find = func(v [3]int) [3]int {
			p, ok := parent[v]
			if !ok {
				parent[v] = v
				return v
			}
			if p == v {
				return v
			}
			r := find(p)
			parent[v] = r
			return r
		}
		union := func(a, b [3]int) {
			ra, rb := find(a), find(b)
			if ra != rb {
				parent[ra] = rb
			}
		}

		var inside []route.Step
		type crossing struct {
			v  [3]int
			ap clip.AccessPoint
		}
		var crossings []crossing
		for _, s := range rn.Steps {
			if s.FromZ >= opt.NZ || s.ToZ >= opt.NZ {
				continue
			}
			fIn := inWin(s.FromX, s.FromY)
			tIn := inWin(s.ToX, s.ToY)
			switch {
			case fIn && tIn:
				a := [3]int{s.FromX - ox, s.FromY - oy, s.FromZ}
				b := [3]int{s.ToX - ox, s.ToY - oy, s.ToZ}
				union(a, b)
				inside = append(inside, route.Step{
					FromX: a[0], FromY: a[1], FromZ: a[2],
					ToX: b[0], ToY: b[1], ToZ: b[2],
				})
			case fIn != tIn:
				x, y, z := s.FromX, s.FromY, s.FromZ
				if tIn {
					x, y, z = s.ToX, s.ToY, s.ToZ
				}
				v := [3]int{x - ox, y - oy, z}
				find(v) // materialize the vertex
				crossings = append(crossings, crossing{
					v:  v,
					ap: clip.AccessPoint{X: v[0], Y: v[1], Z: v[2]},
				})
			}
		}
		if len(parent) == 0 {
			continue
		}
		// Group by root.
		groups := map[[3]int]*Component{}
		for v := range parent {
			r := find(v)
			g := groups[r]
			if g == nil {
				g = &Component{NetIdx: ni, Verts: map[[3]int]bool{}}
				groups[r] = g
			}
			g.Verts[v] = true
		}
		for _, s := range inside {
			r := find([3]int{s.FromX, s.FromY, s.FromZ})
			groups[r].Steps = append(groups[r].Steps, s)
		}
		seenAP := map[[3]int]map[clip.AccessPoint]bool{}
		for _, c := range crossings {
			r := find(c.v)
			if seenAP[r] == nil {
				seenAP[r] = map[clip.AccessPoint]bool{}
			}
			if !seenAP[r][c.ap] {
				seenAP[r][c.ap] = true
				groups[r].Crossings = append(groups[r].Crossings, c.ap)
			}
		}
		// Deterministic order: by each component's smallest vertex.
		type keyed struct {
			min [3]int
			g   *Component
		}
		var ks []keyed
		for _, g := range groups {
			min := [3]int{1 << 30, 1 << 30, 1 << 30}
			for v := range g.Verts {
				if less3(v, min) {
					min = v
				}
			}
			ks = append(ks, keyed{min, g})
		}
		for i := 1; i < len(ks); i++ {
			for j := i; j > 0 && less3(ks[j].min, ks[j-1].min); j-- {
				ks[j], ks[j-1] = ks[j-1], ks[j]
			}
		}
		for _, k := range ks {
			out = append(out, *k.g)
		}
	}
	return out
}

func less3(a, b [3]int) bool {
	if a[2] != b[2] {
		return a[2] < b[2]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[0] < b[0]
}

// baselineConsistentWindow builds the clip whose nets are the in-window
// connected components of the reference route (see Options.BaselineConsistent).
func baselineConsistentWindow(res *route.Result, ox, oy int, opt Options) *clip.Clip {
	p := res.P
	t := p.Lib.Tech
	W, H := opt.WTracks, opt.HTracks
	comps := Components(res, ox, oy, opt)

	c := &clip.Clip{
		Name: compClipName(p.NL.Name, ox, oy),
		Tech: t.Name,
		NX:   W, NY: H, NZ: opt.NZ,
		MinLayer: res.MinLayer,
	}

	// Index components by net for pin attachment.
	byNet := map[int][]int{}
	for i := range comps {
		byNet[comps[i].NetIdx] = append(byNet[comps[i].NetIdx], i)
	}

	// Collect in-window cell pins per net (window-local APs at MinLayer).
	type winPin struct {
		name string
		aps  []clip.AccessPoint
		area int
		cx   int
		cy   int
	}
	pinsByNet := map[int][]winPin{}
	inWin := func(x, y int) bool { return x >= ox && x < ox+W && y >= oy && y < oy+H }
	for ni := range p.NL.Nets {
		n := &p.NL.Nets[ni]
		refs := append([]struct {
			Inst int
			Pin  string
		}{{n.Driver.Inst, n.Driver.Pin}}, func() (out []struct {
			Inst int
			Pin  string
		}) {
			for _, s := range n.Sinks {
				out = append(out, struct {
					Inst int
					Pin  string
				}{s.Inst, s.Pin})
			}
			return
		}()...)
		for _, ref := range refs {
			var wp *winPin
			for apIdx := 0; ; apIdx++ {
				gp, ok := p.PinAP(ref.Inst, ref.Pin, apIdx)
				if !ok {
					break
				}
				if !inWin(gp.X, gp.Y) {
					continue
				}
				if wp == nil {
					pinsByNet[ni] = append(pinsByNet[ni], winPin{
						name: p.NL.Instances[ref.Inst].Name + "/" + ref.Pin,
					})
					wp = &pinsByNet[ni][len(pinsByNet[ni])-1]
					cell, _ := p.Lib.Cell(p.NL.Instances[ref.Inst].Cell)
					for _, cp := range cell.Pins {
						if cp.Name == ref.Pin && len(cp.Shapes) > 0 {
							sh := cp.Shapes[0].Rect
							wp.area = sh.W() * sh.H()
							cr := p.CellRect(ref.Inst)
							wp.cx = cr.X1 + sh.Center().X
							wp.cy = cr.Y1 + sh.Center().Y
						}
					}
				}
				wp.aps = append(wp.aps, clip.AccessPoint{X: gp.X - ox, Y: gp.Y - oy, Z: res.MinLayer})
			}
		}
	}

	apTaken := map[clip.AccessPoint]string{}
	claim := func(owner string, aps []clip.AccessPoint) []clip.AccessPoint {
		var out []clip.AccessPoint
		for _, ap := range aps {
			if o, taken := apTaken[ap]; taken && o != owner {
				continue
			}
			apTaken[ap] = owner
			out = append(out, ap)
		}
		return out
	}

	attached := map[string]bool{} // pin name -> consumed by a component
	for ni, compIdxs := range byNet {
		netName := p.NL.Nets[ni].Name
		for k, ci := range compIdxs {
			comp := &comps[ci]
			name := fmt.Sprintf("%s#%d", netName, k)
			var pins []clip.Pin
			for _, wp := range pinsByNet[ni] {
				touch := false
				for _, ap := range wp.aps {
					if comp.Verts[[3]int{ap.X, ap.Y, ap.Z}] {
						touch = true
						break
					}
				}
				if !touch {
					continue
				}
				attached[wp.name] = true
				if aps := claim(name, wp.aps); len(aps) > 0 {
					pins = append(pins, clip.Pin{
						Name: wp.name, APs: aps,
						AreaNM2: wp.area, CXNM: wp.cx, CYNM: wp.cy,
					})
				}
			}
			for xi, ap := range claim(name, comp.Crossings) {
				pins = append(pins, clip.Pin{
					Name: fmt.Sprintf("%s/x%d", name, xi),
					APs:  []clip.AccessPoint{ap},
				})
			}
			if len(pins) < 2 {
				// Degenerate component (e.g. re-entry through one ring
				// vertex): freeze its geometry as obstacles.
				for _, pin := range pins {
					c.Obstacles = append(c.Obstacles, pin.APs...)
				}
				continue
			}
			c.Nets = append(c.Nets, clip.Net{Name: name, Pins: pins})
		}
	}
	// Unattached in-window pins (their nets don't touch them here): the pin
	// metal still blocks the fabric.
	for _, wps := range pinsByNet {
		for _, wp := range wps {
			if attached[wp.name] {
				continue
			}
			for _, ap := range wp.aps {
				if _, taken := apTaken[ap]; !taken {
					apTaken[ap] = wp.name
					c.Obstacles = append(c.Obstacles, ap)
				}
			}
		}
	}

	if len(c.Nets) < opt.MinNets {
		return nil
	}
	if opt.MaxNets > 0 && len(c.Nets) > opt.MaxNets {
		return nil
	}
	if err := c.Validate(); err != nil {
		return nil
	}
	return c
}

// compClipName mirrors Window's naming so improve can parse origins.
func compClipName(design string, ox, oy int) string {
	return fmt.Sprintf("%s-x%d-y%d", design, ox, oy)
}

// BaselineCost sums the reference route's in-window cost over the
// components that became clip nets (>= 2 terminals), with the given via
// weight — the exact quantity OptRouter's optimum is compared against.
func BaselineCost(res *route.Result, ox, oy int, opt Options) (wl, vias int) {
	opt = opt.withDefaults(res)
	for _, comp := range Components(res, ox, oy, opt) {
		terms := len(comp.Crossings)
		// Pins add terminals too; approximate attachment by the same rule
		// used in extraction: count a pin if one of its APs is in Verts.
		p := res.P
		n := &p.NL.Nets[comp.NetIdx]
		refs := append([]netRef{{n.Driver.Inst, n.Driver.Pin}}, sinkRefs(n)...)
		for _, ref := range refs {
			for apIdx := 0; ; apIdx++ {
				gp, ok := p.PinAP(ref.inst, ref.pin, apIdx)
				if !ok {
					break
				}
				if comp.Verts[[3]int{gp.X - ox, gp.Y - oy, res.MinLayer}] {
					terms++
					break
				}
			}
		}
		if terms < 2 {
			continue
		}
		wl += comp.Wirelength()
		vias += comp.Vias()
	}
	return wl, vias
}

type netRef struct {
	inst int
	pin  string
}

func sinkRefs(n *netlist.Net) []netRef {
	var out []netRef
	for _, s := range n.Sinks {
		out = append(out, netRef{s.Inst, s.Pin})
	}
	return out
}
