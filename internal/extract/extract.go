// Package extract cuts switchbox routing clips out of routed designs,
// implementing the "extraction of routing clips" stage of the paper's
// evaluation flow (Fig. 6, Fig. 7): a sliding window over the die becomes a
// clip whose terminals are the cell-pin access points inside the window plus
// the points where the reference route crosses the window boundary.
package extract

import (
	"fmt"

	"optrouter/internal/clip"
	"optrouter/internal/route"
)

// Options configures extraction.
type Options struct {
	// WTracks and HTracks are the window extent in vertical-track columns
	// and horizontal-track rows (paper: 7 x 10 = 1um x 1um in 28nm).
	WTracks, HTracks int
	// NZ is the layer count copied into clips (default: the routed stack).
	NZ int
	// StrideX and StrideY step the window (defaults: the window size, i.e.
	// non-overlapping tiling).
	StrideX, StrideY int
	// MaxNets skips clips with more routable nets than this (0 = no cap).
	MaxNets int
	// MinNets skips nearly-empty clips (default 2).
	MinNets int
	// BaselineConsistent splits each net into the connected components of
	// its in-window reference routing, one clip net per component ("n3#0",
	// "n3#1", ...). A net that dips out of the window and back is then NOT
	// required to reconnect inside it, so the reference route restricted to
	// the window is always a feasible solution of the extracted clip — the
	// property the local-improvement study (package improve) relies on.
	// The default (false) keeps the paper's switchbox semantics: one clip
	// net per design net, connecting every in-window terminal.
	BaselineConsistent bool
}

// WithDefaults resolves zero-valued fields against the routed design's
// dimensions (exported for callers that need the effective geometry, e.g.
// package improve).
func (o Options) WithDefaults(res *route.Result) Options { return o.withDefaults(res) }

func (o Options) withDefaults(res *route.Result) Options {
	if o.WTracks == 0 {
		o.WTracks = 7
	}
	if o.HTracks == 0 {
		o.HTracks = 10
	}
	if o.NZ == 0 {
		o.NZ = res.NZ
	}
	if o.StrideX == 0 {
		o.StrideX = o.WTracks
	}
	if o.StrideY == 0 {
		o.StrideY = o.HTracks
	}
	if o.MinNets == 0 {
		o.MinNets = 2
	}
	return o
}

// All extracts every clip from the routed design.
func All(res *route.Result, opt Options) []*clip.Clip {
	opt = opt.withDefaults(res)
	var out []*clip.Clip
	for oy := 0; oy+opt.HTracks <= res.NY; oy += opt.StrideY {
		for ox := 0; ox+opt.WTracks <= res.NX; ox += opt.StrideX {
			if c := Window(res, ox, oy, opt); c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}

// Window extracts the clip at window origin (ox, oy); nil when the window
// fails the net-count filters.
func Window(res *route.Result, ox, oy int, opt Options) *clip.Clip {
	opt = opt.withDefaults(res)
	if opt.BaselineConsistent {
		return baselineConsistentWindow(res, ox, oy, opt)
	}
	W, H := opt.WTracks, opt.HTracks
	p := res.P
	t := p.Lib.Tech

	inWin := func(x, y int) bool {
		return x >= ox && x < ox+W && y >= oy && y < oy+H
	}

	c := &clip.Clip{
		Name:     fmt.Sprintf("%s-x%d-y%d", p.NL.Name, ox, oy),
		Tech:     t.Name,
		NX:       W,
		NY:       H,
		NZ:       opt.NZ,
		MinLayer: res.MinLayer,
	}

	type netTerms struct {
		pins      []clip.Pin
		crossings []clip.AccessPoint
		driverIn  bool
	}
	terms := map[int]*netTerms{}
	get := func(netIdx int) *netTerms {
		nt := terms[netIdx]
		if nt == nil {
			nt = &netTerms{}
			terms[netIdx] = nt
		}
		return nt
	}

	// Cell pins inside the window.
	for ni := range p.NL.Nets {
		n := &p.NL.Nets[ni]
		addPin := func(ref struct {
			Inst int
			Pin  string
		}, isDriver bool) {
			cell, _ := p.Lib.Cell(p.NL.Instances[ref.Inst].Cell)
			var cp *clip.Pin
			for _, cellPin := range cell.Pins {
				if cellPin.Name != ref.Pin {
					continue
				}
				for apIdx := range cellPin.APs {
					gp, _ := p.PinAP(ref.Inst, ref.Pin, apIdx)
					if !inWin(gp.X, gp.Y) {
						continue
					}
					if cp == nil {
						nt := get(ni)
						nt.pins = append(nt.pins, clip.Pin{
							Name: fmt.Sprintf("%s/%s", p.NL.Instances[ref.Inst].Name, ref.Pin),
						})
						cp = &nt.pins[len(nt.pins)-1]
						if isDriver {
							nt.driverIn = true
						}
						if len(cellPin.Shapes) > 0 {
							sh := cellPin.Shapes[0].Rect
							cp.AreaNM2 = sh.W() * sh.H()
							cr := p.CellRect(ref.Inst)
							cp.CXNM = cr.X1 + sh.Center().X
							cp.CYNM = cr.Y1 + sh.Center().Y
						}
					}
					cp.APs = append(cp.APs, clip.AccessPoint{
						X: gp.X - ox, Y: gp.Y - oy, Z: res.MinLayer,
					})
				}
				break
			}
		}
		addPin(struct {
			Inst int
			Pin  string
		}{n.Driver.Inst, n.Driver.Pin}, true)
		for _, s := range n.Sinks {
			addPin(struct {
				Inst int
				Pin  string
			}{s.Inst, s.Pin}, false)
		}
	}

	// Boundary crossings of routed wires.
	for i := range res.Nets {
		rn := &res.Nets[i]
		seen := map[clip.AccessPoint]bool{}
		for _, s := range rn.Steps {
			if s.IsVia() {
				continue // vias never cross the window laterally
			}
			fIn := inWin(s.FromX, s.FromY)
			tIn := inWin(s.ToX, s.ToY)
			if fIn == tIn {
				continue
			}
			x, y, z := s.FromX, s.FromY, s.FromZ
			if tIn {
				x, y, z = s.ToX, s.ToY, s.ToZ
			}
			if z >= opt.NZ {
				continue
			}
			ap := clip.AccessPoint{X: x - ox, Y: y - oy, Z: z}
			if !seen[ap] {
				seen[ap] = true
				get(i).crossings = append(get(i).crossings, ap)
			}
		}
	}

	// Assemble nets: each needs >= 2 terminals.
	apTaken := map[clip.AccessPoint]string{}
	usable := func(name string, aps []clip.AccessPoint) []clip.AccessPoint {
		var out []clip.AccessPoint
		for _, ap := range aps {
			owner, taken := apTaken[ap]
			if taken && owner != name {
				continue
			}
			apTaken[ap] = name
			out = append(out, ap)
		}
		return out
	}

	for ni := 0; ni < len(p.NL.Nets); ni++ {
		nt := terms[ni]
		if nt == nil {
			continue
		}
		name := p.NL.Nets[ni].Name
		var pins []clip.Pin
		for _, cp := range nt.pins {
			aps := usable(name, cp.APs)
			if len(aps) > 0 {
				cp.APs = aps
				pins = append(pins, cp)
			}
		}
		for xi, ap := range usable(name, nt.crossings) {
			pins = append(pins, clip.Pin{
				Name: fmt.Sprintf("%s/x%d", name, xi),
				APs:  []clip.AccessPoint{ap},
			})
		}
		if len(pins) < 2 {
			// Unroutable singleton presence: its APs become obstacles so
			// other nets cannot run over the pin metal.
			for _, cp := range pins {
				for _, ap := range cp.APs {
					c.Obstacles = append(c.Obstacles, ap)
				}
			}
			continue
		}
		// Source: the driver pin when inside, else the first terminal.
		if !nt.driverIn {
			// pins[len(nt.pins)...] are crossings; promote the first
			// crossing to the front as the source.
			for i := range pins {
				if len(pins[i].APs) == 1 && pins[i].AreaNM2 == 0 {
					pins[0], pins[i] = pins[i], pins[0]
					break
				}
			}
		}
		c.Nets = append(c.Nets, clip.Net{Name: name, Pins: pins})
	}

	if len(c.Nets) < opt.MinNets {
		return nil
	}
	if opt.MaxNets > 0 && len(c.Nets) > opt.MaxNets {
		return nil
	}
	if err := c.Validate(); err != nil {
		// Defensive: extraction should always produce valid clips; drop
		// the window if a baseline routing irregularity slipped through.
		return nil
	}
	return c
}
