package lpformat

import (
	"math"
	"strings"
	"testing"

	"optrouter/internal/ilp"
	"optrouter/internal/lp"
)

func solve(t *testing.T, src string) (ilp.Result, map[string]int) {
	t.Helper()
	m, names, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return m.Solve(ilp.Options{}), names
}

func TestSimpleMILP(t *testing.T) {
	res, names := solve(t, `
min
  3 x + 2 y
st
  x + y >= 4
bounds
  0 <= x <= 10
int
  x y
`)
	if res.Status != ilp.Optimal || math.Abs(res.Obj-8) > 1e-7 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
	if math.Abs(res.X[names["y"]]-4) > 1e-7 {
		t.Fatalf("y = %v", res.X[names["y"]])
	}
}

func TestComments(t *testing.T) {
	res, _ := solve(t, `
# objective follows
min
  x    # cheap
st
  x >= 3   # at least three
`)
	if res.Status != ilp.Optimal || math.Abs(res.Obj-3) > 1e-7 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
}

func TestNegativeCoefficients(t *testing.T) {
	res, names := solve(t, `
min
  - x
st
  2 x - y <= 6
  y <= 4
`)
	// min -x s.t. 2x <= 6 + y, y <= 4 => x = 5.
	if res.Status != ilp.Optimal || math.Abs(res.X[names["x"]]-5) > 1e-7 {
		t.Fatalf("status=%v x=%v", res.Status, res.X[names["x"]])
	}
}

func TestEquality(t *testing.T) {
	res, names := solve(t, `
min
  x + y
st
  x + y = 7
`)
	if res.Status != ilp.Optimal {
		t.Fatalf("status=%v", res.Status)
	}
	sum := res.X[names["x"]] + res.X[names["y"]]
	if math.Abs(sum-7) > 1e-7 {
		t.Fatalf("sum=%v", sum)
	}
}

func TestFreeVariable(t *testing.T) {
	res, names := solve(t, `
min
  z
st
  z >= -8
bounds
  z free
`)
	if res.Status != ilp.Optimal || math.Abs(res.X[names["z"]]+8) > 1e-7 {
		t.Fatalf("status=%v z=%v", res.Status, res.X[names["z"]])
	}
}

func TestInfeasibleModel(t *testing.T) {
	res, _ := solve(t, `
min
  x
st
  x >= 5
bounds
  0 <= x <= 2
`)
	if res.Status != ilp.Infeasible {
		t.Fatalf("status=%v", res.Status)
	}
}

func TestGEOnlyBound(t *testing.T) {
	m, names, err := Parse(strings.NewReader(`
min
  x
bounds
  x >= 2.5
`))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Prob.VarBounds(names["x"])
	if lo != 2.5 || !math.IsInf(hi, 1) {
		t.Fatalf("bounds [%v, %v]", lo, hi)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"min\n 3 +\n",              // dangling coefficient
		"st\n x ? 4\n",             // junk before section... actually "st" is valid; relation missing
		"x + y >= 4\n",             // content before section
		"st\n x >= foo\n",          // bad rhs
		"bounds\n nonsense here\n", // bad bounds line... parsed as ">=?" no relation
		"bounds\n a <= b <= c\n",   // non-numeric bounds
	}
	for i, src := range cases {
		if _, _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: error expected for %q", i, src)
		}
	}
}

func TestIntegrality(t *testing.T) {
	m, names, err := Parse(strings.NewReader(`
min
  x + y
st
  x + y >= 1.5
int
  x
`))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsInteger(names["x"]) {
		t.Error("x must be integer")
	}
	if m.IsInteger(names["y"]) {
		t.Error("y must be continuous")
	}
	res := m.Solve(ilp.Options{})
	// x integer, y continuous: best is x=0, y=1.5 or x=1,y=0.5 -> 1.5.
	if res.Status != ilp.Optimal || math.Abs(res.Obj-1.5) > 1e-7 {
		t.Fatalf("status=%v obj=%v", res.Status, res.Obj)
	}
}

func TestRepeatedObjectiveTermsAccumulate(t *testing.T) {
	m, names, err := Parse(strings.NewReader(`
min
  x
  2 x
st
  x >= 1
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Prob.Cost(names["x"]); got != 3 {
		t.Fatalf("accumulated cost = %v, want 3", got)
	}
	_ = lp.Inf
}
