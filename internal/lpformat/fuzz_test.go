package lpformat

import (
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser and that
// inputs it accepts produce structurally sound models.
func FuzzParse(f *testing.F) {
	f.Add("min\n x\nst\n x >= 1\n")
	f.Add("min\n 3 x + 2 y\nst\n x + y >= 4\nbounds\n 0 <= x <= 10\nint\n x y\n")
	f.Add("# only a comment\n")
	f.Add("min\n - x - y\nst\n x - y = 0\nbounds\n y free\n")
	f.Add("st\n x <= -3\n")
	f.Add("min\n 1.5 a\nst\n a + b + c <= 9\nint\n a b c\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, names, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if m == nil || names == nil {
			t.Fatal("nil model without error")
		}
		for name, idx := range names {
			if idx < 0 || idx >= m.NumVars() {
				t.Fatalf("name %q maps to out-of-range index %d", name, idx)
			}
			lo, hi := m.Prob.VarBounds(idx)
			if lo > hi {
				t.Fatalf("variable %q has inverted bounds [%v, %v]", name, lo, hi)
			}
		}
	})
}
