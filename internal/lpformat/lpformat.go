// Package lpformat parses a small LP-like text format into a MILP model,
// backing cmd/ilpsolve. The format:
//
//	# comment
//	min
//	  3 x + 2 y - z
//	st
//	  x + y >= 4
//	  x - 2 z <= 2
//	  y + z = 3
//	bounds
//	  0 <= x <= 10
//	  z free
//	int
//	  x z
//
// Variables default to continuous with bounds [0, +inf).
package lpformat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"optrouter/internal/ilp"
	"optrouter/internal/lp"
)

// Parse reads the format and returns the model plus the name->index map.
func Parse(r io.Reader) (*ilp.Model, map[string]int, error) {
	m := ilp.NewModel()
	names := map[string]int{}
	getVar := func(name string) int {
		if v, ok := names[name]; ok {
			return v
		}
		v := m.AddVar(0, lp.Inf, 0, false)
		names[name] = v
		return v
	}

	section := ""
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch strings.ToLower(line) {
		case "min", "st", "bounds", "int":
			section = strings.ToLower(line)
			continue
		}
		switch section {
		case "min":
			terms, err := parseLinear(line)
			if err != nil {
				return nil, nil, fmt.Errorf("lpformat: line %d: %v", lineNo, err)
			}
			for _, t := range terms {
				j := getVar(t.name)
				m.Prob.SetCost(j, m.Prob.Cost(j)+t.coef)
			}
		case "st":
			lhs, sense, rhs, err := parseConstraint(line)
			if err != nil {
				return nil, nil, fmt.Errorf("lpformat: line %d: %v", lineNo, err)
			}
			var cs []lp.Coef
			for _, t := range lhs {
				cs = append(cs, lp.Coef{Var: getVar(t.name), Val: t.coef})
			}
			m.AddConstraint(cs, sense, rhs)
		case "bounds":
			if err := parseBounds(line, m, getVar); err != nil {
				return nil, nil, fmt.Errorf("lpformat: line %d: %v", lineNo, err)
			}
		case "int":
			for _, name := range strings.Fields(line) {
				m.SetInteger(getVar(name), true)
			}
		default:
			return nil, nil, fmt.Errorf("lpformat: line %d: content before a section header", lineNo)
		}
	}
	return m, names, sc.Err()
}

type term struct {
	coef float64
	name string
}

// parseLinear parses "3 x + 2 y - z" into terms.
func parseLinear(s string) ([]term, error) {
	fields := strings.Fields(strings.ReplaceAll(strings.ReplaceAll(s, "+", " + "), "-", " - "))
	var out []term
	sign := 1.0
	var pending *float64
	for _, f := range fields {
		switch f {
		case "+":
			sign = 1
		case "-":
			sign = -1
		default:
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				v *= sign
				pending = &v
				sign = 1
				continue
			}
			c := sign
			if pending != nil {
				c = *pending
				pending = nil
			}
			sign = 1
			out = append(out, term{coef: c, name: f})
		}
	}
	if pending != nil {
		return nil, fmt.Errorf("dangling coefficient in %q", s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no terms in %q", s)
	}
	return out, nil
}

func parseConstraint(s string) ([]term, lp.Sense, float64, error) {
	var sense lp.Sense
	var parts []string
	switch {
	case strings.Contains(s, "<="):
		sense = lp.LE
		parts = strings.SplitN(s, "<=", 2)
	case strings.Contains(s, ">="):
		sense = lp.GE
		parts = strings.SplitN(s, ">=", 2)
	case strings.Contains(s, "="):
		sense = lp.EQ
		parts = strings.SplitN(s, "=", 2)
	default:
		return nil, 0, 0, fmt.Errorf("no relation in %q", s)
	}
	lhs, err := parseLinear(parts[0])
	if err != nil {
		return nil, 0, 0, err
	}
	rhs, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("bad rhs in %q", s)
	}
	return lhs, sense, rhs, nil
}

// parseBounds handles "lo <= x <= hi", "x <= hi", "x >= lo" and "x free".
func parseBounds(s string, m *ilp.Model, getVar func(string) int) error {
	fields := strings.Fields(s)
	if len(fields) == 2 && fields[1] == "free" {
		j := getVar(fields[0])
		m.Prob.SetVarBounds(j, -lp.Inf, lp.Inf)
		return nil
	}
	if parts := strings.Split(s, "<="); len(parts) == 3 {
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad bounds %q", s)
		}
		m.Prob.SetVarBounds(getVar(strings.TrimSpace(parts[1])), lo, hi)
		return nil
	} else if len(parts) == 2 {
		hi, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return fmt.Errorf("bad bound %q", s)
		}
		j := getVar(strings.TrimSpace(parts[0]))
		lo, _ := m.Prob.VarBounds(j)
		m.Prob.SetVarBounds(j, lo, hi)
		return nil
	}
	if parts := strings.Split(s, ">="); len(parts) == 2 {
		lo, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return fmt.Errorf("bad bound %q", s)
		}
		j := getVar(strings.TrimSpace(parts[0]))
		_, hi := m.Prob.VarBounds(j)
		m.Prob.SetVarBounds(j, lo, hi)
		return nil
	}
	return fmt.Errorf("unrecognized bounds line %q", s)
}
