// Package cells synthesizes standard-cell libraries for the three paper
// technologies. The cells are geometric stand-ins for the foundry 28nm
// 8/12-track and prototype 7nm 9-track libraries: what matters for the
// paper's experiments is pin geometry — how many access points each pin
// exposes and how closely pins crowd together (Fig. 9) — and cell footprint
// statistics, both of which are reproduced per technology.
package cells

import (
	"fmt"

	"optrouter/internal/geom"
	"optrouter/internal/tech"
)

// PinDir is the logical direction of a cell pin.
type PinDir uint8

const (
	// Input pin.
	Input PinDir = iota
	// Output pin.
	Output
	// Inout pin (power/ground rails).
	Inout
)

func (d PinDir) String() string {
	switch d {
	case Input:
		return "INPUT"
	case Output:
		return "OUTPUT"
	default:
		return "INOUT"
	}
}

// Pin is a standard-cell pin: shapes in cell-relative nanometers plus the
// on-grid access points derived from them.
type Pin struct {
	Name   string
	Dir    PinDir
	Shapes []geom.LayerRect // M1 rectangles, cell-relative nm
	// APs are on-track access points in cell-relative track units:
	// X in site-columns, Y in horizontal-track rows.
	APs []geom.Point
}

// Cell is a standard-cell master.
type Cell struct {
	Name       string
	WidthSites int // width in placement sites
	Pins       []Pin
	// Area is WidthSites (height is uniform per library); kept for
	// utilization computations.
}

// Library is a generated standard-cell library for one technology.
type Library struct {
	Tech   *tech.Technology
	Cells  []Cell
	byName map[string]int
}

// Cell returns the named master; ok is false if absent.
func (l *Library) Cell(name string) (*Cell, bool) {
	i, ok := l.byName[name]
	if !ok {
		return nil, false
	}
	return &l.Cells[i], true
}

// CellNames lists masters in definition order.
func (l *Library) CellNames() []string {
	out := make([]string, len(l.Cells))
	for i := range l.Cells {
		out[i] = l.Cells[i].Name
	}
	return out
}

// archetype describes a cell template independent of technology.
type archetype struct {
	name   string
	width  int // base width in sites (N28-12T reference)
	inputs []string
	output string // empty for FILL/TAP
}

var archetypes = []archetype{
	{"INVX1", 2, []string{"A"}, "Y"},
	{"INVX2", 3, []string{"A"}, "Y"},
	{"INVX4", 5, []string{"A"}, "Y"},
	{"BUFX2", 4, []string{"A"}, "Y"},
	{"BUFX4", 6, []string{"A"}, "Y"},
	{"NAND2X1", 3, []string{"A", "B"}, "Y"},
	{"NAND2X2", 5, []string{"A", "B"}, "Y"},
	{"NOR2X1", 3, []string{"A", "B"}, "Y"},
	{"NOR2X2", 5, []string{"A", "B"}, "Y"},
	{"NAND3X1", 4, []string{"A", "B", "C"}, "Y"},
	{"NOR3X1", 4, []string{"A", "B", "C"}, "Y"},
	{"XOR2X1", 6, []string{"A", "B"}, "Y"},
	{"XNOR2X1", 6, []string{"A", "B"}, "Y"},
	{"AOI21X1", 5, []string{"A", "B", "C"}, "Y"},
	{"OAI21X1", 5, []string{"A", "B", "C"}, "Y"},
	{"AOI22X1", 6, []string{"A", "B", "C", "D"}, "Y"},
	{"OAI22X1", 6, []string{"A", "B", "C", "D"}, "Y"},
	{"MUX2X1", 6, []string{"A", "B", "S"}, "Y"},
	{"DFFX1", 10, []string{"D", "CK"}, "Q"},
	{"DFFX2", 12, []string{"D", "CK"}, "Q"},
	{"FILL1", 1, nil, ""},
	{"FILL2", 2, nil, ""},
}

// Generate builds the library for a technology. Pin geometry follows the
// technology's PinAccessPoints/PinSpanTracks parameters: N28-12T pins are
// tall M1 strips with up to 4 access points; scaled N7-9T pins expose only
// 2 access points and sit closer together (paper Fig. 9(c)).
func Generate(t *tech.Technology) *Library {
	lib := &Library{Tech: t, byName: map[string]int{}}
	for _, at := range archetypes {
		c := synthesizeCell(t, at)
		lib.byName[c.Name] = len(lib.Cells)
		lib.Cells = append(lib.Cells, c)
	}
	return lib
}

func synthesizeCell(t *tech.Technology, at archetype) Cell {
	// Width scales mildly with track height: shorter cells need more width
	// for the same transistors (the 8T library is wider than the 12T).
	width := at.width
	// Every signal pin needs its own column: inputs in columns 1..n, the
	// output in column n+1, with one spare site at each edge.
	if minW := len(at.inputs) + 3; at.output != "" && width < minW {
		width = minW
	}
	if t.TrackHeight <= 8 && width > 1 {
		width += (width + 2) / 3
	}
	c := Cell{Name: at.Name(), WidthSites: width}

	hp := t.HPitchNM()
	vp := t.VPitchNM()

	// Pins occupy interior columns; rails occupy top/bottom tracks.
	// Access points live on routing-track crossings, rows 1..TrackHeight-2.
	nAPs := t.PinAccessPoints
	span := t.PinSpanTracks
	// Pin rows start above the power rail.
	baseRow := 2
	if t.TrackHeight <= 9 {
		baseRow = 1
	}

	col := 1
	addPin := func(name string, dir PinDir, colIdx int, rowOffset int) Pin {
		p := Pin{Name: name, Dir: dir}
		for i := 0; i < nAPs; i++ {
			row := baseRow + rowOffset + i*geom.Max(1, span/geom.Max(1, nAPs-1))
			if row > t.TrackHeight-2 {
				row = t.TrackHeight - 2 - (i % 2)
			}
			p.APs = append(p.APs, geom.Pt(colIdx, row))
		}
		x := colIdx * vp
		yLo := (baseRow + rowOffset) * hp
		yHi := yLo + span*hp
		p.Shapes = []geom.LayerRect{{Layer: 0, Rect: geom.R(x-20, yLo-20, x+20, yHi+20)}}
		return p
	}

	for i, in := range at.inputs {
		// Stagger input pin rows slightly so pins don't collide.
		c.Pins = append(c.Pins, addPin(in, Input, col, i%2))
		col++
	}
	if at.output != "" {
		c.Pins = append(c.Pins, addPin(at.output, Output, col, 1))
	}

	// Power/ground rails as Inout pins spanning the cell width.
	rail := func(name string, row int) Pin {
		return Pin{
			Name: name, Dir: Inout,
			Shapes: []geom.LayerRect{{Layer: 0, Rect: geom.R(0, row*hp-40, width*vp, row*hp+40)}},
		}
	}
	c.Pins = append(c.Pins, rail("VDD", t.TrackHeight-1), rail("VSS", 0))
	return c
}

// Name formats the archetype name.
func (a archetype) Name() string { return a.name }

// String summarizes a cell.
func (c *Cell) String() string {
	return fmt.Sprintf("%s (%d sites, %d pins)", c.Name, c.WidthSites, len(c.Pins))
}

// SignalPins returns the non-rail pins.
func (c *Cell) SignalPins() []Pin {
	var out []Pin
	for _, p := range c.Pins {
		if p.Dir != Inout {
			out = append(out, p)
		}
	}
	return out
}

// InputPins returns input pins only.
func (c *Cell) InputPins() []Pin {
	var out []Pin
	for _, p := range c.Pins {
		if p.Dir == Input {
			out = append(out, p)
		}
	}
	return out
}

// OutputPin returns the output pin, if any.
func (c *Cell) OutputPin() (Pin, bool) {
	for _, p := range c.Pins {
		if p.Dir == Output {
			return p, true
		}
	}
	return Pin{}, false
}
