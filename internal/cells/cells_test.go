package cells

import (
	"testing"

	"optrouter/internal/tech"
)

func TestGenerateAllTechnologies(t *testing.T) {
	for _, tt := range tech.AllTechnologies() {
		lib := Generate(tt)
		if len(lib.Cells) == 0 {
			t.Fatalf("%s: empty library", tt.Name)
		}
		for i := range lib.Cells {
			c := &lib.Cells[i]
			if c.WidthSites < 1 {
				t.Errorf("%s/%s: width %d", tt.Name, c.Name, c.WidthSites)
			}
			for _, p := range c.SignalPins() {
				if len(p.APs) == 0 {
					t.Errorf("%s/%s/%s: no access points", tt.Name, c.Name, p.Name)
				}
				for _, ap := range p.APs {
					if ap.X < 0 || ap.X >= c.WidthSites+1 {
						t.Errorf("%s/%s/%s: AP column %d outside cell (width %d)",
							tt.Name, c.Name, p.Name, ap.X, c.WidthSites)
					}
					if ap.Y < 0 || ap.Y >= tt.TrackHeight {
						t.Errorf("%s/%s/%s: AP row %d outside cell (%d tracks)",
							tt.Name, c.Name, p.Name, ap.Y, tt.TrackHeight)
					}
				}
			}
		}
	}
}

func TestPinAccessPointsPerTech(t *testing.T) {
	// Paper Fig. 9: N28-12T pins have generous access; scaled N7-9T input
	// pins have only two access points.
	lib12 := Generate(tech.N28T12())
	lib7 := Generate(tech.N7T9())
	nand12, ok := lib12.Cell("NAND2X1")
	if !ok {
		t.Fatal("NAND2X1 missing")
	}
	nand7, _ := lib7.Cell("NAND2X1")
	for _, p := range nand7.InputPins() {
		if len(p.APs) != 2 {
			t.Errorf("N7-9T input pin %s has %d APs, want 2", p.Name, len(p.APs))
		}
	}
	for _, p := range nand12.InputPins() {
		if len(p.APs) != 4 {
			t.Errorf("N28-12T input pin %s has %d APs, want 4", p.Name, len(p.APs))
		}
	}
}

func TestCellLookup(t *testing.T) {
	lib := Generate(tech.N28T8())
	if _, ok := lib.Cell("NAND2X1"); !ok {
		t.Error("NAND2X1 missing")
	}
	if _, ok := lib.Cell("NOPE"); ok {
		t.Error("unknown cell resolved")
	}
	names := lib.CellNames()
	if len(names) != len(lib.Cells) {
		t.Error("CellNames length mismatch")
	}
}

func TestEightTrackCellsAreWider(t *testing.T) {
	// Shorter cells need more width: the 8T library trades height for width.
	lib12 := Generate(tech.N28T12())
	lib8 := Generate(tech.N28T8())
	c12, _ := lib12.Cell("NAND2X1")
	c8, _ := lib8.Cell("NAND2X1")
	if c8.WidthSites <= c12.WidthSites {
		t.Errorf("8T NAND2X1 width %d should exceed 12T width %d", c8.WidthSites, c12.WidthSites)
	}
}

func TestRailsPresent(t *testing.T) {
	lib := Generate(tech.N28T12())
	c, _ := lib.Cell("INVX1")
	var vdd, vss bool
	for _, p := range c.Pins {
		if p.Dir == Inout && p.Name == "VDD" {
			vdd = true
		}
		if p.Dir == Inout && p.Name == "VSS" {
			vss = true
		}
	}
	if !vdd || !vss {
		t.Error("rails missing")
	}
}

func TestOutputPin(t *testing.T) {
	lib := Generate(tech.N7T9())
	c, _ := lib.Cell("DFFX1")
	out, ok := c.OutputPin()
	if !ok || out.Name != "Q" {
		t.Errorf("DFF output = %v, %v", out.Name, ok)
	}
	fill, _ := lib.Cell("FILL1")
	if _, ok := fill.OutputPin(); ok {
		t.Error("filler cell must have no output")
	}
	if len(fill.InputPins()) != 0 {
		t.Error("filler cell must have no inputs")
	}
}

func TestPinDirString(t *testing.T) {
	if Input.String() != "INPUT" || Output.String() != "OUTPUT" || Inout.String() != "INOUT" {
		t.Error("PinDir.String broken")
	}
}

func TestDistinctAPColumnsForInputs(t *testing.T) {
	// Two inputs of a NAND must not share an AP location (shorted pins).
	for _, tt := range tech.AllTechnologies() {
		lib := Generate(tt)
		c, _ := lib.Cell("NAND2X1")
		seen := map[[2]int]string{}
		for _, p := range c.SignalPins() {
			for _, ap := range p.APs {
				key := [2]int{ap.X, ap.Y}
				if owner, dup := seen[key]; dup && owner != p.Name {
					t.Errorf("%s: pins %s and %s share AP %v", tt.Name, owner, p.Name, ap)
				}
				seen[key] = p.Name
			}
		}
	}
}
