// Package place produces legal row-based placements at a target utilization,
// standing in for the commercial place-and-route flow's placement stage. The
// placer preserves netlist index order along a serpentine row fill (the
// netlist generator biases connectivity to be local in index space, so the
// result has realistic wirelength locality) and distributes whitespace
// uniformly to hit the requested utilization — the knob the paper sweeps in
// Table 2 (89-97%).
package place

import (
	"fmt"
	"math"

	"optrouter/internal/cells"
	"optrouter/internal/geom"
	"optrouter/internal/netlist"
)

// Loc is a placed instance: site column X, row Y, in placement units.
type Loc struct {
	X, Y int
}

// Placement is a legal placement of a netlist.
type Placement struct {
	Lib  *cells.Library
	NL   *netlist.Netlist
	Locs []Loc // per instance

	Rows  int // number of rows
	Sites int // sites per row

	// Achieved utilization: cell area / core area.
	Utilization float64
}

// Options configures placement.
type Options struct {
	// TargetUtil is the desired utilization in (0, 1].
	TargetUtil float64
	// AspectRatio is core height/width (default 1.0).
	AspectRatio float64
}

// Place builds the placement.
func Place(lib *cells.Library, nl *netlist.Netlist, opt Options) (*Placement, error) {
	if opt.TargetUtil <= 0 || opt.TargetUtil > 1 {
		return nil, fmt.Errorf("place: utilization %.2f outside (0,1]", opt.TargetUtil)
	}
	if opt.AspectRatio == 0 {
		opt.AspectRatio = 1
	}

	totalSites := 0
	widths := make([]int, len(nl.Instances))
	for i, inst := range nl.Instances {
		c, ok := lib.Cell(inst.Cell)
		if !ok {
			return nil, fmt.Errorf("place: unknown master %q", inst.Cell)
		}
		widths[i] = c.WidthSites
		totalSites += c.WidthSites
	}

	// Core shape: rows * sites >= totalSites / util, with row count chosen
	// for the aspect ratio. Site pitch and row height differ, so:
	//   width_nm  = sites * siteW; height_nm = rows * rowH
	//   aspect = height/width  =>  rows = aspect * sites * siteW / rowH.
	t := lib.Tech
	needSites := float64(totalSites) / opt.TargetUtil
	siteW := float64(t.SiteWidthNM)
	rowH := float64(t.RowHeightNM)
	sites := int(math.Ceil(math.Sqrt(needSites * rowH / (opt.AspectRatio * siteW))))
	if sites < 1 {
		sites = 1
	}
	rows := int(math.Ceil(needSites / float64(sites)))
	// Make sure the widest cell fits.
	for i := range widths {
		if widths[i] > sites {
			sites = widths[i]
		}
	}
	for rows*sites < totalSites {
		rows++
	}

	// Serpentine fill with uniform whitespace. Row wrap wastes trailing
	// sites, so the fill may need more rows than the ideal capacity bound;
	// grow until it fits.
	for attempt := 0; ; attempt++ {
		locs, ok := fill(nl, widths, rows, sites)
		if ok {
			p := &Placement{Lib: lib, NL: nl, Locs: locs, Rows: rows, Sites: sites}
			p.Utilization = float64(totalSites) / float64(rows*sites)
			return p, nil
		}
		if attempt > 64 {
			return nil, fmt.Errorf("place: cannot fit %d sites into core", totalSites)
		}
		rows++
	}
}

// fill performs the serpentine placement; ok is false on overflow.
// Instances are first assigned to rows by even area split, then each row's
// slack is spread between its cells, so wraps never waste capacity.
func fill(nl *netlist.Netlist, widths []int, rows, sites int) ([]Loc, bool) {
	totalSites := 0
	for _, w := range widths {
		totalSites += w
	}
	if rows*sites < totalSites {
		return nil, false
	}
	// Target fill per row: proportional share of total cell area.
	perRow := float64(totalSites) / float64(rows)

	locs := make([]Loc, len(nl.Instances))
	i := 0
	filled := 0.0
	for row := 0; row < rows && i < len(nl.Instances); row++ {
		// Collect this row's instances.
		start := i
		rowWidth := 0
		target := perRow * float64(row+1)
		for i < len(nl.Instances) {
			w := widths[i]
			if rowWidth+w > sites {
				break
			}
			if filled+float64(rowWidth+w) > target+float64(w)/2 && rowWidth > 0 {
				break
			}
			rowWidth += w
			i++
		}
		n := i - start
		if n == 0 {
			continue
		}
		filled += float64(rowWidth)
		// Spread slack between cells.
		slack := sites - rowWidth
		gap := slack / n
		extra := slack % n
		col := 0
		for j := start; j < i; j++ {
			g := gap
			if j-start < extra {
				g++
			}
			x := col
			if row%2 == 1 { // serpentine: odd rows fill right-to-left
				x = sites - col - widths[j]
			}
			locs[j] = Loc{X: x, Y: row}
			col += widths[j] + g
		}
	}
	if i < len(nl.Instances) {
		return nil, false
	}
	return locs, true
}

// CellRect returns the placed cell's bounding box in nanometers.
func (p *Placement) CellRect(i int) geom.Rect {
	t := p.Lib.Tech
	c, _ := p.Lib.Cell(p.NL.Instances[i].Cell)
	x := p.Locs[i].X * t.SiteWidthNM
	y := p.Locs[i].Y * t.RowHeightNM
	return geom.R(x, y, x+c.WidthSites*t.SiteWidthNM, y+t.RowHeightNM)
}

// PinAP returns the global routing-track coordinates of one access point of
// instance i's pin: X in vertical-track columns, Y in horizontal-track rows.
func (p *Placement) PinAP(i int, pin string, apIdx int) (geom.Point, bool) {
	c, _ := p.Lib.Cell(p.NL.Instances[i].Cell)
	for _, cp := range c.Pins {
		if cp.Name != pin {
			continue
		}
		if apIdx >= len(cp.APs) {
			return geom.Point{}, false
		}
		ap := cp.APs[apIdx]
		t := p.Lib.Tech
		return geom.Pt(
			p.Locs[i].X+ap.X,
			p.Locs[i].Y*t.TrackHeight+ap.Y,
		), true
	}
	return geom.Point{}, false
}

// PinAPs returns all global access points for a pin reference.
func (p *Placement) PinAPs(ref netlist.PinRef) []geom.Point {
	var out []geom.Point
	for idx := 0; ; idx++ {
		ap, ok := p.PinAP(ref.Inst, ref.Pin, idx)
		if !ok {
			break
		}
		out = append(out, ap)
	}
	return out
}

// DieTracks returns the routing grid extent: vertical-track columns (X) and
// horizontal-track rows (Y).
func (p *Placement) DieTracks() (nx, ny int) {
	return p.Sites, p.Rows * p.Lib.Tech.TrackHeight
}

// HPWL returns the total half-perimeter wirelength of the placement in
// track units (a placement-quality metric used by tests).
func (p *Placement) HPWL() int {
	total := 0
	for i := range p.NL.Nets {
		n := &p.NL.Nets[i]
		var box geom.Rect
		first := true
		add := func(ref netlist.PinRef) {
			for _, ap := range p.PinAPs(ref) {
				r := geom.R(ap.X, ap.Y, ap.X, ap.Y)
				if first {
					box = r
					first = false
				} else {
					box = box.Union(r)
				}
			}
		}
		add(n.Driver)
		for _, s := range n.Sinks {
			add(s)
		}
		if !first {
			total += box.W() + box.H()
		}
	}
	return total
}
