package place

import (
	"testing"

	"optrouter/internal/cells"
	"optrouter/internal/netlist"
	"optrouter/internal/tech"
)

func setup(t *testing.T, n int, util float64) (*cells.Library, *netlist.Netlist, *Placement) {
	t.Helper()
	lib := cells.Generate(tech.N28T12())
	nl, err := netlist.Generate(lib, netlist.M0Class(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(lib, nl, Options{TargetUtil: util})
	if err != nil {
		t.Fatal(err)
	}
	return lib, nl, p
}

func TestPlaceLegal(t *testing.T) {
	lib, nl, p := setup(t, 400, 0.9)
	// No overlaps, everything in core.
	type span struct{ x1, x2 int }
	rows := map[int][]span{}
	for i := range nl.Instances {
		c, _ := lib.Cell(nl.Instances[i].Cell)
		l := p.Locs[i]
		if l.X < 0 || l.Y < 0 || l.Y >= p.Rows || l.X+c.WidthSites > p.Sites {
			t.Fatalf("instance %d out of core: %+v", i, l)
		}
		for _, s := range rows[l.Y] {
			if l.X < s.x2 && s.x1 < l.X+c.WidthSites {
				t.Fatalf("instance %d overlaps in row %d", i, l.Y)
			}
		}
		rows[l.Y] = append(rows[l.Y], span{l.X, l.X + c.WidthSites})
	}
}

func TestUtilizationNearTarget(t *testing.T) {
	for _, target := range []float64{0.7, 0.9, 0.95} {
		_, _, p := setup(t, 600, target)
		if p.Utilization < target-0.1 || p.Utilization > 1.0 {
			t.Errorf("target %.2f achieved %.3f", target, p.Utilization)
		}
	}
}

func TestHigherUtilSmallerDie(t *testing.T) {
	_, _, p90 := setup(t, 500, 0.90)
	_, _, p70 := setup(t, 500, 0.70)
	area90 := p90.Rows * p90.Sites
	area70 := p70.Rows * p70.Sites
	if area90 >= area70 {
		t.Errorf("higher utilization should shrink the core: %d vs %d", area90, area70)
	}
}

func TestPinAPsOnDie(t *testing.T) {
	_, nl, p := setup(t, 300, 0.85)
	nx, ny := p.DieTracks()
	for i := range nl.Nets {
		n := &nl.Nets[i]
		aps := p.PinAPs(n.Driver)
		if len(aps) == 0 {
			t.Fatalf("net %s: driver has no APs", n.Name)
		}
		for _, ap := range aps {
			if ap.X < 0 || ap.X >= nx || ap.Y < 0 || ap.Y >= ny {
				t.Fatalf("net %s: AP %v outside die %dx%d", n.Name, ap, nx, ny)
			}
		}
	}
}

func TestLocalityPreserved(t *testing.T) {
	// Placement should keep average net HPWL far below the die diameter.
	_, nl, p := setup(t, 1000, 0.9)
	nx, ny := p.DieTracks()
	avg := float64(p.HPWL()) / float64(len(nl.Nets))
	if avg > float64(nx+ny)/2 {
		t.Errorf("average HPWL %.1f too close to die size %d+%d", avg, nx, ny)
	}
}

func TestPlaceErrors(t *testing.T) {
	lib := cells.Generate(tech.N28T12())
	nl, _ := netlist.Generate(lib, netlist.M0Class(50, 1))
	if _, err := Place(lib, nl, Options{TargetUtil: 0}); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := Place(lib, nl, Options{TargetUtil: 1.5}); err == nil {
		t.Error("impossible utilization accepted")
	}
}

func TestCellRect(t *testing.T) {
	lib, nl, p := setup(t, 100, 0.8)
	tt := lib.Tech
	for i := range nl.Instances {
		r := p.CellRect(i)
		if r.H() != tt.RowHeightNM {
			t.Fatalf("cell %d height %d != row height", i, r.H())
		}
		if r.W()%tt.SiteWidthNM != 0 {
			t.Fatalf("cell %d width %d not site-aligned", i, r.W())
		}
	}
}
