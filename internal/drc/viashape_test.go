package drc

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// shapeGraph builds a clip with two nets and bar vias enabled.
func shapeGraph(t *testing.T) *rgraph.Graph {
	t.Helper()
	c := &clip.Clip{
		Name: "vs", Tech: "t",
		NX: 4, NY: 4, NZ: 3, MinLayer: 1,
		Nets: []clip.Net{
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 3, Y: 3, Z: 1}}},
			}},
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 3, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 0, Y: 3, Z: 1}}},
			}},
		},
	}
	g, err := rgraph.Build(c, rgraph.Options{
		ViaShapes: []tech.ViaShape{tech.SingleVia, tech.VBarVia},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// findShapedSite returns a bar-via site anchored at (x, y) on cut zc.
func findShapedSite(t *testing.T, g *rgraph.Graph, x, y, zc int) int32 {
	t.Helper()
	for i := range g.Sites {
		s := &g.Sites[i]
		if s.Rep >= 0 && s.X == x && s.Y == y && s.ZCut == zc {
			return int32(i)
		}
	}
	t.Fatalf("no shaped site at (%d,%d,%d)", x, y, zc)
	return -1
}

func TestViaShapeBlockDetected(t *testing.T) {
	g := shapeGraph(t)
	// Net a uses the bar via anchored at (1,1) cut 1 (covers (1,1) and
	// (1,2) on M2 and M3): pick its arcs entering from (1,1,z1) and leaving
	// to (1,2,z2).
	site := findShapedSite(t, g, 1, 1, 1)
	s := &g.Sites[site]
	var inArc, outArc int32 = -1, -1
	for _, aid := range s.Arcs {
		arc := g.Arcs[aid]
		if arc.Kind == rgraph.ViaShapeIn && arc.From == g.GridID(1, 1, 1) {
			inArc = aid
		}
		if arc.Kind == rgraph.ViaShapeOut && arc.To == g.GridID(1, 2, 2) {
			outArc = aid
		}
	}
	if inArc < 0 || outArc < 0 {
		t.Fatal("bar via arcs not found")
	}
	aArcs := []int32{inArc, outArc}

	// Net b walks through footprint vertex (1,2,z1) with plain wires.
	bArcs := []int32{}
	from := g.GridID(1, 1, 1)
	to := g.GridID(1, 2, 1)
	for _, aid := range g.Out[from] {
		if g.Arcs[aid].To == to && g.Arcs[aid].Kind == rgraph.Wire {
			bArcs = append(bArcs, aid)
		}
	}
	if len(bArcs) == 0 {
		t.Fatal("wire arc through footprint not found")
	}

	kinds := map[Kind]bool{}
	for _, v := range Check(g, [][]int32{aArcs, bArcs}) {
		kinds[v.Kind] = true
	}
	if !kinds[ViaShapeBlock] && !kinds[VertexConflict] {
		t.Fatalf("footprint intrusion undetected; kinds=%v", kinds)
	}
}

func TestViaShapeOwnNetMayTouchFootprint(t *testing.T) {
	g := shapeGraph(t)
	site := findShapedSite(t, g, 1, 1, 1)
	s := &g.Sites[site]
	// Net a approaches (1,1,z1) by wire, enters the bar via, exits at
	// (1,2,z2): its own footprint contact must NOT be a via-shape-block.
	var inArc, outArc int32 = -1, -1
	for _, aid := range s.Arcs {
		arc := g.Arcs[aid]
		if arc.Kind == rgraph.ViaShapeIn && arc.From == g.GridID(1, 1, 1) {
			inArc = aid
		}
		if arc.Kind == rgraph.ViaShapeOut && arc.To == g.GridID(1, 2, 2) {
			outArc = aid
		}
	}
	var approach int32 = -1
	for _, aid := range g.In[g.GridID(1, 1, 1)] {
		if g.Arcs[aid].Kind == rgraph.Wire {
			approach = aid
			break
		}
	}
	if approach < 0 {
		t.Fatal("no wire approach")
	}
	for _, v := range CheckSADP(g, [][]int32{{approach, inArc, outArc}, nil}) {
		t.Fatalf("unexpected SADP violation: %v", v)
	}
	for _, v := range checkViaShapes(g, [][]int32{{approach, inArc, outArc}, nil}) {
		t.Fatalf("own-net footprint touch flagged: %v", v)
	}
}

func TestUsedSites(t *testing.T) {
	g := shapeGraph(t)
	site := findShapedSite(t, g, 0, 0, 1)
	s := &g.Sites[site]
	used := UsedSites(g, [][]int32{{s.Arcs[0]}, nil})
	if len(used) != 1 {
		t.Fatalf("used sites = %d, want 1", len(used))
	}
	if nets, ok := used[site]; !ok || len(nets) != 1 || nets[0] != 0 {
		t.Fatalf("site attribution wrong: %v", used)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: ArcConflict, Msg: "x"}
	if v.String() != "arc-conflict: x" {
		t.Fatalf("String = %q", v.String())
	}
}
