// Package drc is an independent design-rule checker for clip routing
// solutions. It re-derives violations directly from the used arcs, without
// trusting the solver's constraint bookkeeping, and is used both by tests
// (to validate OptRouter outputs) and by the negotiated-congestion heuristic
// router (to find conflicts to penalize).
//
// Checked rules: arc capacity (one net per track segment), vertex
// exclusivity (no shorts), per-net connectivity, via adjacency (4/8 blocked
// neighbor sites), via-shape footprint blocking, and SADP end-of-line
// spacing per the paper's Fig. 5.
package drc

import (
	"fmt"
	"sort"

	"optrouter/internal/rgraph"
)

// Kind classifies a violation.
type Kind int

const (
	// ArcConflict: an undirected arc resource used by more than one net.
	ArcConflict Kind = iota
	// VertexConflict: a grid or via vertex touched by more than one net.
	VertexConflict
	// Disconnected: a net's used arcs do not connect source to all sinks.
	Disconnected
	// ViaAdjacency: two occupied via sites conflict under the rule config.
	ViaAdjacency
	// ViaShapeBlock: a net enters the footprint of another net's shaped via.
	ViaShapeBlock
	// SADPEOL: two end-of-line features violate the SADP spacing rules.
	SADPEOL
)

func (k Kind) String() string {
	switch k {
	case ArcConflict:
		return "arc-conflict"
	case VertexConflict:
		return "vertex-conflict"
	case Disconnected:
		return "disconnected"
	case ViaAdjacency:
		return "via-adjacency"
	case ViaShapeBlock:
		return "via-shape-block"
	case SADPEOL:
		return "sadp-eol"
	}
	return "?"
}

// Violation describes one design-rule violation.
type Violation struct {
	Kind  Kind
	Nets  []int   // involved net indices
	Verts []int32 // involved vertices (graph ids)
	Arcs  []int32 // involved arcs
	Sites []int32 // involved via sites
	// EOLs carries the two conflicting end-of-line features for SADPEOL
	// violations (with product witness arcs for branching).
	EOLs []EOL
	Msg  string
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Kind, v.Msg) }

// EOL is a realized end-of-line feature of one net: a wire on `side`
// terminating at vertex V with a via (the paper's p variables; side 0 = lo
// i.e. p_l, side 1 = hi i.e. p_r). WitnessWire and WitnessVia are the
// directed arcs realizing the product (6)/(7); conflict-driven branching
// uses them to derive forbiddances.
type EOL struct {
	Net  int
	V    int32
	Side int // 0: wire on lo side (p_l), 1: wire on hi side (p_r)

	WitnessWire int32
	WitnessVia  int32
}

// Check validates a per-net arc assignment against all rules and returns
// every violation found (empty means DRC-clean).
func Check(g *rgraph.Graph, netArcs [][]int32) []Violation {
	var out []Violation
	out = append(out, checkArcCapacity(g, netArcs)...)
	out = append(out, checkVertexExclusivity(g, netArcs)...)
	out = append(out, checkConnectivity(g, netArcs)...)
	out = append(out, checkViaAdjacency(g, netArcs)...)
	out = append(out, checkViaShapes(g, netArcs)...)
	out = append(out, CheckSADP(g, netArcs)...)
	sortViolations(out)
	return out
}

// sortViolations puts violations in a canonical total order. Several
// checkers discover violations by iterating maps, so without this the
// output order varies run to run — and the solver's strong branching is
// order-sensitive, which would make search traces (node counts, bans)
// nondeterministic even for serial solves.
func sortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if c := cmpInts(a.Nets, b.Nets); c != 0 {
			return c < 0
		}
		if c := cmpInt32s(a.Verts, b.Verts); c != 0 {
			return c < 0
		}
		if c := cmpInt32s(a.Arcs, b.Arcs); c != 0 {
			return c < 0
		}
		if c := cmpInt32s(a.Sites, b.Sites); c != 0 {
			return c < 0
		}
		return a.Msg < b.Msg
	})
}

func cmpInts(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

func cmpInt32s(a, b []int32) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

func checkArcCapacity(g *rgraph.Graph, netArcs [][]int32) []Violation {
	var out []Violation
	owner := map[int32]int{} // canonical (min of pair) arc id -> net
	for k, arcs := range netArcs {
		seenByNet := map[int32]bool{}
		for _, a := range arcs {
			c := a
			if p := g.Pair[a]; p < c {
				c = p
			}
			if prev, ok := owner[c]; ok && prev != k && !seenByNet[c] {
				out = append(out, Violation{
					Kind: ArcConflict, Nets: []int{prev, k}, Arcs: []int32{a},
					Msg: fmt.Sprintf("arc %d shared by nets %d and %d", a, prev, k),
				})
			}
			owner[c] = k
			seenByNet[c] = true
		}
	}
	return out
}

// usedVerts returns the grid/rep vertices each net touches.
func usedVerts(g *rgraph.Graph, netArcs [][]int32) []map[int32]bool {
	out := make([]map[int32]bool, len(netArcs))
	for k, arcs := range netArcs {
		out[k] = map[int32]bool{}
		for _, a := range arcs {
			arc := g.Arcs[a]
			for _, v := range []int32{arc.From, arc.To} {
				if g.IsGrid(v) || isRep(g, v) {
					out[k][v] = true
				}
			}
		}
	}
	return out
}

func isRep(g *rgraph.Graph, v int32) bool {
	if g.IsGrid(v) {
		return false
	}
	for k := range g.Source {
		if g.Source[k] == v {
			return false
		}
		for _, t := range g.SinkVerts[k] {
			if t == v {
				return false
			}
		}
	}
	return true
}

func checkVertexExclusivity(g *rgraph.Graph, netArcs [][]int32) []Violation {
	var out []Violation
	uv := usedVerts(g, netArcs)
	owner := map[int32]int{}
	for k := range uv {
		for v := range uv[k] {
			if prev, ok := owner[v]; ok && prev != k {
				out = append(out, Violation{
					Kind: VertexConflict, Nets: []int{prev, k}, Verts: []int32{v},
					Msg: fmt.Sprintf("vertex %d shared by nets %d and %d", v, prev, k),
				})
				continue
			}
			owner[v] = k
		}
	}
	// Single-entry discipline: the ILP's vertex capacity (and the
	// Lagrangian bound's validity) require each grid vertex to be entered
	// at most once through *costed* arcs, even by its owning net. A second
	// costed entry is never needed by an optimum (reroute both flows
	// through the cheaper entry and save the other arc), while zero-cost
	// entries (via-shape fan-out, virtual terminals) can legitimately
	// coincide with one and are excluded.
	for k, arcs := range netArcs {
		entries := map[int32][]int32{}
		for _, a := range arcs {
			arc := g.Arcs[a]
			if arc.Kind == rgraph.Virtual || arc.Kind == rgraph.ViaShapeOut {
				continue
			}
			to := arc.To
			if g.IsGrid(to) {
				entries[to] = append(entries[to], a)
			}
		}
		for v, ins := range entries {
			if len(ins) >= 2 {
				out = append(out, Violation{
					Kind: VertexConflict, Nets: []int{k, k}, Verts: []int32{v},
					Arcs: ins[:2],
					Msg:  fmt.Sprintf("net %d enters vertex %d twice", k, v),
				})
			}
		}
	}
	return out
}

func checkConnectivity(g *rgraph.Graph, netArcs [][]int32) []Violation {
	var out []Violation
	for k, arcs := range netArcs {
		adj := map[int32][]int32{}
		for _, a := range arcs {
			arc := g.Arcs[a]
			// Treat used arcs as undirected for reachability.
			adj[arc.From] = append(adj[arc.From], arc.To)
			adj[arc.To] = append(adj[arc.To], arc.From)
		}
		reach := map[int32]bool{}
		stack := []int32{g.Source[k]}
		reach[g.Source[k]] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range adj[v] {
				if !reach[u] {
					reach[u] = true
					stack = append(stack, u)
				}
			}
		}
		for _, t := range g.SinkVerts[k] {
			if !reach[t] {
				out = append(out, Violation{
					Kind: Disconnected, Nets: []int{k}, Verts: []int32{t},
					Msg: fmt.Sprintf("net %d: sink vertex %d unreachable from source", k, t),
				})
			}
		}
	}
	return out
}

// UsedSites returns occupied via sites with the nets occupying them.
func UsedSites(g *rgraph.Graph, netArcs [][]int32) map[int32][]int {
	used := map[int32]map[int]bool{}
	for k, arcs := range netArcs {
		for _, a := range arcs {
			if s := g.Arcs[a].Site; s >= 0 {
				if used[s] == nil {
					used[s] = map[int]bool{}
				}
				used[s][k] = true
			}
		}
	}
	out := map[int32][]int{}
	for s, nets := range used {
		for k := range nets {
			out[s] = append(out[s], k)
		}
		sort.Ints(out[s]) // map-iteration order would leak into Violation.Nets
	}
	return out
}

func checkViaAdjacency(g *rgraph.Graph, netArcs [][]int32) []Violation {
	var out []Violation
	used := UsedSites(g, netArcs)
	for s, netsA := range used {
		for _, o := range g.SiteAdj[s] {
			if o <= s {
				continue
			}
			if netsB, ok := used[o]; ok {
				out = append(out, Violation{
					Kind: ViaAdjacency, Nets: append(append([]int{}, netsA...), netsB...),
					Sites: []int32{s, o},
					Msg:   fmt.Sprintf("via sites %d and %d are adjacent", s, o),
				})
			}
		}
	}
	return out
}

func checkViaShapes(g *rgraph.Graph, netArcs [][]int32) []Violation {
	var out []Violation
	used := UsedSites(g, netArcs)
	uv := usedVerts(g, netArcs)
	for s, nets := range used {
		site := &g.Sites[s]
		if site.Rep < 0 {
			continue
		}
		siteArc := map[int32]bool{}
		for _, a := range site.Arcs {
			siteArc[a] = true
		}
		for _, fv := range site.Footprint {
			for k := range uv {
				if containsInt(nets, k) {
					continue
				}
				if !uv[k][fv] {
					continue
				}
				// Net k touches a footprint vertex through non-site arcs.
				touch := false
				for _, a := range netArcs[k] {
					if siteArc[a] {
						continue
					}
					arc := g.Arcs[a]
					if arc.From == fv || arc.To == fv {
						touch = true
						break
					}
				}
				if touch {
					out = append(out, Violation{
						Kind: ViaShapeBlock, Nets: append(append([]int{}, nets...), k),
						Verts: []int32{fv}, Sites: []int32{s},
						Msg: fmt.Sprintf("net %d enters footprint vertex %d of used via site %d", k, fv, s),
					})
				}
			}
		}
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// EOLs extracts every realized end-of-line feature (the paper's p
// semantics: wire on one side of a vertex combined with a via at the vertex,
// consistent with flow direction) on SADP layers.
func EOLs(g *rgraph.Graph, netArcs [][]int32) []EOL {
	var out []EOL
	for k, arcs := range netArcs {
		used := map[int32]bool{}
		for _, a := range arcs {
			used[a] = true
		}
		emit := map[[2]int32]bool{} // (v, side) dedupe
		for _, a := range arcs {
			arc := g.Arcs[a]
			if arc.Kind != rgraph.Wire {
				continue
			}
			for _, v := range []int32{arc.From, arc.To} {
				_, _, z := g.XYZ(v)
				if !g.IsSADPLayer(z) {
					continue
				}
				sa := g.Side[v]
				for side := int32(0); side < 2; side++ {
					wireIn, wireOut := sa.LoIn, sa.LoOut
					if side == 1 {
						wireIn, wireOut = sa.HiIn, sa.HiOut
					}
					wWire, wVia := int32(-1), int32(-1)
					for _, va := range g.ViaArcsAt(v) {
						if !used[va] {
							continue
						}
						if g.Arcs[va].From == v && wireIn >= 0 && used[wireIn] {
							wWire, wVia = wireIn, va
						}
						if g.Arcs[va].To == v && wireOut >= 0 && used[wireOut] {
							wWire, wVia = wireOut, va
						}
					}
					if wVia >= 0 && !emit[[2]int32{v, side}] {
						emit[[2]int32{v, side}] = true
						out = append(out, EOL{Net: k, V: v, Side: int(side), WitnessWire: wWire, WitnessVia: wVia})
					}
				}
			}
		}
	}
	return out
}

// CheckSADP validates SADP EOL spacing (constraints (11)-(12), Fig. 5).
func CheckSADP(g *rgraph.Graph, netArcs [][]int32) []Violation {
	if !g.Opt.Rule.HasSADP() {
		return nil
	}
	eols := EOLs(g, netArcs)
	bySpot := map[[2]int32][]EOL{}
	for _, e := range eols {
		key := [2]int32{e.V, int32(e.Side)}
		bySpot[key] = append(bySpot[key], e)
	}
	var out []Violation
	seen := map[[4]int32]bool{}
	report := func(a, b EOL) {
		k := [4]int32{a.V, int32(a.Side), b.V, int32(b.Side)}
		if a.V > b.V || (a.V == b.V && a.Side > b.Side) {
			k = [4]int32{b.V, int32(b.Side), a.V, int32(a.Side)}
		}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, Violation{
			Kind: SADPEOL, Nets: []int{a.Net, b.Net}, Verts: []int32{a.V, b.V},
			EOLs: []EOL{a, b},
			Msg:  fmt.Sprintf("EOL at v%d/side%d conflicts with EOL at v%d/side%d", a.V, a.Side, b.V, b.Side),
		})
	}
	for _, e := range eols {
		facing, sameDir := g.EOLNeighborSets(e.V, e.Side == 1)
		opp := int32(1 - e.Side)
		for _, j := range facing {
			for _, o := range bySpot[[2]int32{j, opp}] {
				report(e, o)
			}
		}
		for _, j := range sameDir {
			for _, o := range bySpot[[2]int32{j, int32(e.Side)}] {
				report(e, o)
			}
		}
	}
	return out
}
