package drc

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// grid builds a bare clip with two vertically-stacked nets for hand-made
// violation scenarios.
func grid(t *testing.T, rule tech.RuleConfig) *rgraph.Graph {
	t.Helper()
	c := &clip.Clip{
		Name: "drc", Tech: "t",
		NX: 4, NY: 5, NZ: 4, MinLayer: 1,
		Nets: []clip.Net{
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 0, Y: 3, Z: 1}}},
			}},
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 2, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 2, Y: 3, Z: 1}}},
			}},
		},
	}
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// findArc locates a directed arc between two grid vertices.
func findArc(t *testing.T, g *rgraph.Graph, fx, fy, fz, tx, ty, tz int) int32 {
	t.Helper()
	from := g.GridID(fx, fy, fz)
	to := g.GridID(tx, ty, tz)
	for _, aid := range g.Out[from] {
		if g.Arcs[aid].To == to {
			return aid
		}
	}
	t.Fatalf("no arc (%d,%d,%d)->(%d,%d,%d)", fx, fy, fz, tx, ty, tz)
	return -1
}

// path builds the arc list for consecutive vertices.
func path(t *testing.T, g *rgraph.Graph, pts ...[3]int) []int32 {
	t.Helper()
	var arcs []int32
	for i := 0; i+1 < len(pts); i++ {
		arcs = append(arcs, findArc(t, g,
			pts[i][0], pts[i][1], pts[i][2],
			pts[i+1][0], pts[i+1][1], pts[i+1][2]))
	}
	return arcs
}

// withTerminals prepends/appends the virtual arcs for net k's source and one
// sink so connectivity holds.
func withTerminals(t *testing.T, g *rgraph.Graph, k int, arcs []int32) []int32 {
	t.Helper()
	src := g.Source[k]
	var out []int32
	out = append(out, g.Out[src][0]) // supersource -> first AP
	out = append(out, arcs...)
	sink := g.SinkVerts[k][0]
	out = append(out, g.In[sink][0]) // last AP -> supersink
	return out
}

func TestCleanSolutionPasses(t *testing.T) {
	g := grid(t, tech.RuleConfig{})
	a := withTerminals(t, g, 0, path(t, g, [3]int{0, 0, 1}, [3]int{0, 1, 1}, [3]int{0, 2, 1}, [3]int{0, 3, 1}))
	b := withTerminals(t, g, 1, path(t, g, [3]int{2, 0, 1}, [3]int{2, 1, 1}, [3]int{2, 2, 1}, [3]int{2, 3, 1}))
	if v := Check(g, [][]int32{a, b}); len(v) != 0 {
		t.Fatalf("clean solution flagged: %v", v)
	}
}

func TestArcConflictDetected(t *testing.T) {
	g := grid(t, tech.RuleConfig{})
	shared := path(t, g, [3]int{1, 1, 1}, [3]int{1, 2, 1})
	a := append(withTerminals(t, g, 0, path(t, g, [3]int{0, 0, 1}, [3]int{0, 1, 1}, [3]int{0, 2, 1}, [3]int{0, 3, 1})), shared...)
	b := append(withTerminals(t, g, 1, path(t, g, [3]int{2, 0, 1}, [3]int{2, 1, 1}, [3]int{2, 2, 1}, [3]int{2, 3, 1})), shared...)
	found := false
	for _, v := range Check(g, [][]int32{a, b}) {
		if v.Kind == ArcConflict {
			found = true
		}
	}
	if !found {
		t.Fatal("shared arc not detected")
	}
}

func TestVertexConflictDetected(t *testing.T) {
	g := grid(t, tech.RuleConfig{})
	// Net a passes vertically through (1,1,1)..(1,2,1); net b uses a via at
	// (1,2,1)->(1,2,2): they share vertex (1,2,1) without sharing an arc.
	a := append(withTerminals(t, g, 0,
		path(t, g, [3]int{0, 0, 1}, [3]int{0, 1, 1}, [3]int{0, 2, 1}, [3]int{0, 3, 1})),
		path(t, g, [3]int{1, 1, 1}, [3]int{1, 2, 1})...)
	b := append(withTerminals(t, g, 1,
		path(t, g, [3]int{2, 0, 1}, [3]int{2, 1, 1}, [3]int{2, 2, 1}, [3]int{2, 3, 1})),
		path(t, g, [3]int{1, 2, 1}, [3]int{1, 2, 2})...)
	kinds := map[Kind]bool{}
	for _, v := range Check(g, [][]int32{a, b}) {
		kinds[v.Kind] = true
	}
	if !kinds[VertexConflict] {
		t.Fatal("vertex sharing not detected")
	}
}

func TestDisconnectedDetected(t *testing.T) {
	g := grid(t, tech.RuleConfig{})
	// Net a misses its path entirely.
	a := []int32{g.Out[g.Source[0]][0]}
	b := withTerminals(t, g, 1, path(t, g, [3]int{2, 0, 1}, [3]int{2, 1, 1}, [3]int{2, 2, 1}, [3]int{2, 3, 1}))
	found := false
	for _, v := range Check(g, [][]int32{a, b}) {
		if v.Kind == Disconnected {
			found = true
		}
	}
	if !found {
		t.Fatal("disconnection not detected")
	}
}

func TestViaAdjacencyDetected(t *testing.T) {
	rule6, _ := tech.RuleByName("RULE6")
	g := grid(t, rule6)
	// Net a: via at (0,1); net b: via at (1,1) — orthogonal neighbors on
	// the same cut layer.
	a := append(withTerminals(t, g, 0,
		path(t, g, [3]int{0, 0, 1}, [3]int{0, 1, 1}, [3]int{0, 2, 1}, [3]int{0, 3, 1})),
		path(t, g, [3]int{0, 1, 1}, [3]int{0, 1, 2})...)
	b := append(withTerminals(t, g, 1,
		path(t, g, [3]int{2, 0, 1}, [3]int{2, 1, 1}, [3]int{2, 2, 1}, [3]int{2, 3, 1})),
		path(t, g, [3]int{2, 1, 1}, [3]int{2, 1, 2}, [3]int{1, 1, 2}, [3]int{1, 1, 1})...)
	kinds := map[Kind]bool{}
	for _, v := range Check(g, [][]int32{a, b}) {
		kinds[v.Kind] = true
	}
	if !kinds[ViaAdjacency] {
		t.Fatalf("adjacent vias not detected; kinds=%v", kinds)
	}
	// Without the rule, the same layout is legal.
	g0 := grid(t, tech.RuleConfig{})
	a0 := append(withTerminals(t, g0, 0,
		path(t, g0, [3]int{0, 0, 1}, [3]int{0, 1, 1}, [3]int{0, 2, 1}, [3]int{0, 3, 1})),
		path(t, g0, [3]int{0, 1, 1}, [3]int{0, 1, 2})...)
	b0 := append(withTerminals(t, g0, 1,
		path(t, g0, [3]int{2, 0, 1}, [3]int{2, 1, 1}, [3]int{2, 2, 1}, [3]int{2, 3, 1})),
		path(t, g0, [3]int{2, 1, 1}, [3]int{2, 1, 2}, [3]int{1, 1, 2}, [3]int{1, 1, 1})...)
	for _, v := range Check(g0, [][]int32{a0, b0}) {
		if v.Kind == ViaAdjacency {
			t.Fatal("via adjacency flagged under RULE1")
		}
	}
}

func TestEOLExtraction(t *testing.T) {
	rule2 := tech.RuleConfig{SADPMinLayer: 2} // M2+ SADP
	g := grid(t, rule2)
	// Net a route with an EOL: wire along M3 (z=2, horizontal) ending at
	// (1,1,2) with a via down to (1,1,1).
	arcs := path(t, g, [3]int{0, 1, 2}, [3]int{1, 1, 2}, [3]int{1, 1, 1})
	eols := EOLs(g, [][]int32{arcs, nil})
	// Expect a lo-side EOL at (1,1,2): the wire comes from the lo (west)
	// side and terminates with a via.
	found := false
	for _, e := range eols {
		x, y, z := g.XYZ(e.V)
		if x == 1 && y == 1 && z == 2 && e.Side == 0 {
			found = true
			if e.WitnessVia < 0 || e.WitnessWire < 0 {
				t.Fatal("EOL witnesses missing")
			}
		}
	}
	if !found {
		t.Fatalf("expected EOL at (1,1,2) lo side; got %v", eols)
	}
}

func TestSADPConflictDetected(t *testing.T) {
	rule2 := tech.RuleConfig{SADPMinLayer: 2}
	g := grid(t, rule2)
	// Net a: EOL at (1,1,2) wire from west (lo), via down.
	a := path(t, g, [3]int{0, 1, 2}, [3]int{1, 1, 2}, [3]int{1, 1, 1})
	// Net b: facing EOL at (2,1,2): wire from east (hi side), via down.
	// Facing pair across one track: (1,1) hi-opening-lo at (2,1)... EOL at
	// (2,1,2) with wire on hi side, forbidden sites include (1,1,2) lo EOL.
	b := path(t, g, [3]int{3, 1, 2}, [3]int{2, 1, 2}, [3]int{2, 1, 1})
	viols := CheckSADP(g, [][]int32{a, b})
	if len(viols) == 0 {
		t.Fatal("facing EOL pair not detected")
	}
	// Same geometry under RULE1 is silent.
	g1 := grid(t, tech.RuleConfig{})
	a1 := path(t, g1, [3]int{0, 1, 2}, [3]int{1, 1, 2}, [3]int{1, 1, 1})
	b1 := path(t, g1, [3]int{3, 1, 2}, [3]int{2, 1, 2}, [3]int{2, 1, 1})
	if v := CheckSADP(g1, [][]int32{a1, b1}); len(v) != 0 {
		t.Fatalf("SADP flagged without SADP layers: %v", v)
	}
}

func TestSADPDistantEOLsLegal(t *testing.T) {
	rule2 := tech.RuleConfig{SADPMinLayer: 2}
	g := grid(t, rule2)
	// EOLs far apart (different rows, >1 track apart in y): legal.
	a := path(t, g, [3]int{0, 0, 2}, [3]int{1, 0, 2}, [3]int{1, 0, 1})
	b := path(t, g, [3]int{3, 3, 2}, [3]int{2, 3, 2}, [3]int{2, 3, 1})
	if v := CheckSADP(g, [][]int32{a, b}); len(v) != 0 {
		t.Fatalf("distant EOLs flagged: %v", v)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{ArcConflict, VertexConflict, Disconnected, ViaAdjacency, ViaShapeBlock, SADPEOL}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Errorf("Kind %d string %q", k, s)
		}
		seen[s] = true
	}
}
