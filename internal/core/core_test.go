package core

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/drc"
	"optrouter/internal/ilp"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// twoNetClip is a tiny instance with a known optimal routing.
func twoNetClip() *clip.Clip {
	return &clip.Clip{
		Name: "tiny", Tech: "t",
		NX: 3, NY: 3, NZ: 3, MinLayer: 1,
		Nets: []clip.Net{
			// Net a: (0,0) -> (0,2) on M2 (vertical layer z=1): cost 2.
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 0, Y: 2, Z: 1}}},
			}},
			// Net b: (2,0) -> (2,2): cost 2.
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 2, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 2, Y: 2, Z: 1}}},
			}},
		},
	}
}

// crossingClip forces two nets to compete: one must detour via M3.
func crossingClip() *clip.Clip {
	return &clip.Clip{
		Name: "cross", Tech: "t",
		NX: 3, NY: 3, NZ: 3, MinLayer: 1,
		Nets: []clip.Net{
			// Net a: (1,0) -> (1,2) straight up the middle column.
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 1, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 1, Y: 2, Z: 1}}},
			}},
			// Net b: (0,1) -> (2,1) straight across the middle row; on the
			// vertical layer M2 it cannot go sideways, so it must use M3.
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 1, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 2, Y: 1, Z: 1}}},
			}},
		},
	}
}

func mustGraph(t *testing.T, c *clip.Clip, opt rgraph.Options) *rgraph.Graph {
	t.Helper()
	g, err := rgraph.Build(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBnBTrivialTwoNets(t *testing.T) {
	g := mustGraph(t, twoNetClip(), rgraph.Options{})
	sol, err := SolveBnB(g, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || !sol.Proven {
		t.Fatalf("expected proven-feasible, got %+v", sol)
	}
	if sol.Cost != 4 || sol.Wirelength != 4 || sol.Vias != 0 {
		t.Fatalf("cost=%d wl=%d vias=%d, want 4/4/0", sol.Cost, sol.Wirelength, sol.Vias)
	}
	if v := drc.Check(g, sol.NetArcs); len(v) != 0 {
		t.Fatalf("solution has violations: %v", v)
	}
}

func TestBnBCrossingNets(t *testing.T) {
	g := mustGraph(t, crossingClip(), rgraph.Options{})
	sol, err := SolveBnB(g, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || !sol.Proven {
		t.Fatalf("expected proven-feasible, got %+v", sol)
	}
	// Net a: 2 wire. Net b: must rise to M3 (via), cross 2, drop (via):
	// 2 vias * 4 + 2 wire = 10. Total = 12.
	if sol.Cost != 12 {
		t.Fatalf("cost = %d, want 12", sol.Cost)
	}
	if sol.Vias != 2 {
		t.Fatalf("vias = %d, want 2", sol.Vias)
	}
	if v := drc.Check(g, sol.NetArcs); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestILPTrivialTwoNets(t *testing.T) {
	g := mustGraph(t, twoNetClip(), rgraph.Options{})
	sol, err := SolveILP(g, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || !sol.Proven {
		t.Fatalf("expected proven-feasible, got %+v", sol)
	}
	if sol.Cost != 4 {
		t.Fatalf("cost = %d, want 4", sol.Cost)
	}
	if v := drc.Check(g, sol.NetArcs); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestILPCrossingNets(t *testing.T) {
	g := mustGraph(t, crossingClip(), rgraph.Options{})
	sol, err := SolveILP(g, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.Cost != 12 {
		t.Fatalf("got %+v, want cost 12", sol)
	}
	if v := drc.Check(g, sol.NetArcs); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestHeuristicCrossingNets(t *testing.T) {
	g := mustGraph(t, crossingClip(), rgraph.Options{})
	sol := SolveHeuristic(g, HeuristicOptions{})
	if !sol.Feasible {
		t.Fatal("heuristic failed on easy instance")
	}
	if v := drc.Check(g, sol.NetArcs); len(v) != 0 {
		t.Fatalf("heuristic solution has violations: %v", v)
	}
	if sol.Cost < 12 {
		t.Fatalf("heuristic cost %d below proven optimum 12", sol.Cost)
	}
}

func TestMultiPinSteinerNet(t *testing.T) {
	c := &clip.Clip{
		Name: "steiner", Tech: "t",
		NX: 3, NY: 4, NZ: 2, MinLayer: 1,
		Nets: []clip.Net{
			// One 3-pin net on the vertical layer M2: source mid-bottom,
			// sinks at top of two columns. Optimal Steiner uses M2 only if
			// horizontal movement is impossible... on a single vertical
			// layer column moves only: needs source column = sink column.
			// Instead: source (1,0), sinks (1,3) and (1,2): a single path
			// covers both (cost 3).
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 1, Y: 0, Z: 1}}},
				{Name: "t1", APs: []clip.AccessPoint{{X: 1, Y: 3, Z: 1}}},
				{Name: "t2", APs: []clip.AccessPoint{{X: 1, Y: 2, Z: 1}}},
			}},
		},
	}
	g := mustGraph(t, c, rgraph.Options{})
	sol, err := SolveBnB(g, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.Cost != 3 {
		t.Fatalf("steiner net: %+v, want cost 3", sol)
	}
	isol, err := SolveILP(g, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if isol.Cost != 3 {
		t.Fatalf("ILP steiner cost = %d, want 3", isol.Cost)
	}
}

func TestInfeasibleClip(t *testing.T) {
	// Two nets whose only terminals sit on the same single column of a
	// vertical layer, forced to overlap: net a spans (0,0)-(0,2), net b
	// spans (0,1)-(0,3) in a 1-column clip with one layer: overlap on the
	// (0,1)-(0,2) segment is unavoidable.
	c := &clip.Clip{
		Name: "infeas", Tech: "t",
		NX: 1, NY: 4, NZ: 2, MinLayer: 1,
		Nets: []clip.Net{
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 0, Y: 2, Z: 1}}},
			}},
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 1, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 0, Y: 3, Z: 1}}},
			}},
		},
	}
	g := mustGraph(t, c, rgraph.Options{})
	sol, err := SolveBnB(g, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible || !sol.Proven {
		t.Fatalf("expected proven infeasible, got %+v", sol)
	}
	isol, err := SolveILP(g, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if isol.Feasible {
		t.Fatalf("ILP should agree infeasible, got %+v", isol)
	}
}

// The central cross-validation: on random clips, both exact solvers agree on
// feasibility and cost, and all solutions are DRC-clean.
func TestSolversAgreeOnRandomClips(t *testing.T) {
	rules := []string{"RULE1", "RULE6", "RULE3", "RULE8"}
	for seed := int64(0); seed < 12; seed++ {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 4, 4, 3
		opt.NumNets = 3
		opt.MaxSinks = 2
		c := clip.Synthesize(opt)
		for _, rn := range rules {
			rule, _ := tech.RuleByName(rn)
			g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
			if err != nil {
				t.Fatal(err)
			}
			bs, err := SolveBnB(g, BnBOptions{})
			if err != nil {
				t.Fatalf("seed %d %s: bnb: %v", seed, rn, err)
			}
			is, err := SolveILP(g, ilp.Options{})
			if err != nil {
				t.Fatalf("seed %d %s: ilp: %v", seed, rn, err)
			}
			if bs.Feasible != is.Feasible {
				t.Fatalf("seed %d %s: feasibility disagreement: bnb=%v ilp=%v",
					seed, rn, bs.Feasible, is.Feasible)
			}
			if !bs.Feasible {
				continue
			}
			if !bs.Proven || !is.Proven {
				t.Fatalf("seed %d %s: not proven: bnb=%v ilp=%v", seed, rn, bs.Proven, is.Proven)
			}
			if bs.Cost != is.Cost {
				t.Fatalf("seed %d %s: cost disagreement: bnb=%d ilp=%d",
					seed, rn, bs.Cost, is.Cost)
			}
			if v := drc.Check(g, bs.NetArcs); len(v) != 0 {
				t.Fatalf("seed %d %s: bnb violations: %v", seed, rn, v)
			}
			if v := drc.Check(g, is.NetArcs); len(v) != 0 {
				t.Fatalf("seed %d %s: ilp violations: %v", seed, rn, v)
			}
		}
	}
}

// Heuristic solutions are never better than the proven optimum (sanity for
// the paper's validation experiment).
func TestHeuristicNeverBeatsOptimal(t *testing.T) {
	for seed := int64(20); seed < 32; seed++ {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 5, 5, 3
		opt.NumNets = 4
		c := clip.Synthesize(opt)
		g, err := rgraph.Build(c, rgraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := SolveHeuristic(g, HeuristicOptions{})
		b, err := SolveBnB(g, BnBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if h.Feasible && b.Feasible && h.Cost < b.Cost {
			t.Fatalf("seed %d: heuristic %d beat optimum %d", seed, h.Cost, b.Cost)
		}
		if h.Feasible && !b.Feasible {
			t.Fatalf("seed %d: heuristic routed an instance the exact solver proved infeasible", seed)
		}
	}
}

func TestSolutionString(t *testing.T) {
	s := &Solution{Feasible: false}
	if s.String() != "infeasible" {
		t.Error("infeasible String broken")
	}
	s = &Solution{Feasible: true, Cost: 10, Wirelength: 6, Vias: 1}
	if got := s.String(); got == "" || got == "infeasible" {
		t.Errorf("String = %q", got)
	}
}

func TestModelSizeCounts(t *testing.T) {
	g := mustGraph(t, twoNetClip(), rgraph.Options{})
	m := BuildILP(g)
	if m.NumEVars == 0 {
		t.Fatal("no e variables built")
	}
	// Two-pin nets only: no f variables.
	if m.NumFVars != 0 {
		t.Fatalf("two-pin nets must not allocate f vars, got %d", m.NumFVars)
	}
	// No SADP under RULE1: no p variables.
	if m.NumPVars != 0 || m.NumProductVars != 0 {
		t.Fatal("RULE1 must not create SADP variables")
	}
	rule3, _ := tech.RuleByName("RULE3")
	g3 := mustGraph(t, twoNetClip(), rgraph.Options{Rule: rule3})
	m3 := BuildILP(g3)
	if m3.NumPVars == 0 || m3.NumProductVars == 0 {
		t.Fatal("SADP rule must create p and product variables")
	}
}
