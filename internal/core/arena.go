package core

// SteinerArena is the reusable backing storage for the exact Steiner
// arborescence kernel. One solve of steinerTree needs (2^t)x|V| dynamic
// programming matrices, a priority queue, ban vectors and reconstruction
// scratch; a branch-and-bound search performs thousands of such solves on
// the same graph, and a rule sweep repeats the search eleven times per clip.
// The arena amortizes all of that storage: matrices are flat arrays tagged
// with an epoch stamp per cell (bumping the epoch invalidates every cell in
// O(1), so no per-solve clearing), the Dijkstra queue keeps its buckets, and
// ban slices come from a cursor-reset pool.
//
// An arena is NOT safe for concurrent use: share it only across solves that
// run sequentially (the per-net solves inside one SolveBnB, or the eleven
// rule configurations of one clip in a sweep worker).
type SteinerArena struct {
	// Dreyfus-Wagner tables, flat (mask*nV + v) layout. A cell is valid only
	// when stamp[cell] == epoch; everything else reads as +infinity.
	dp    []int64
	par   []parentAction
	stamp []uint32
	epoch uint32

	// rowCnt[mask] counts valid cells of a mask row, letting subset merges
	// skip rows that cannot contribute.
	rowCnt []int32

	// Monotone bucket (Dial's) queue for the per-mask Dijkstra relaxation,
	// plus a pooled binary heap fallback for solves whose (penalized) arc
	// costs are too large for bucketing.
	buckets [][]int32
	heap    []pqItem

	// Reconstruction scratch: the produced arc list (returned to the caller,
	// valid until the next solve on this arena), the DFS stack, and per-arc
	// dedup stamps.
	arcBuf    []int32
	stack     []dwFrame
	seen      []uint32
	seenEpoch uint32

	// Ban-vector pool: getBans hands out slices; resetBans makes every
	// slice reusable again (callers must have dropped them first).
	bans    [][]bool
	banUsed int
}

// NewSteinerArena returns an empty arena; storage grows on first use and is
// retained across solves.
func NewSteinerArena() *SteinerArena { return &SteinerArena{} }

// dwFrame is one (mask, vertex) pair of the reconstruction walk.
type dwFrame struct {
	mask int
	v    int32
}

// prepare sizes the tables for a solve with `rows` mask rows over nV
// vertices and opens a fresh epoch, invalidating all cells.
func (a *SteinerArena) prepare(rows, nV int) {
	cells := rows * nV
	if cap(a.dp) < cells {
		a.dp = make([]int64, cells)
		a.par = make([]parentAction, cells)
		a.stamp = make([]uint32, cells)
		a.epoch = 0
	}
	a.dp = a.dp[:cells]
	a.par = a.par[:cells]
	a.stamp = a.stamp[:cells]
	if cap(a.rowCnt) < rows {
		a.rowCnt = make([]int32, rows)
	}
	a.rowCnt = a.rowCnt[:rows]
	for i := range a.rowCnt {
		a.rowCnt[i] = 0
	}
	a.epoch++
	if a.epoch == 0 { // wrapped: stamps may alias, clear them once
		for i := range a.stamp {
			a.stamp[i] = 0
		}
		a.epoch = 1
	}
}

// prepareSeen opens a fresh dedup epoch over nArcs arcs.
func (a *SteinerArena) prepareSeen(nArcs int) {
	if cap(a.seen) < nArcs {
		a.seen = make([]uint32, nArcs)
		a.seenEpoch = 0
	}
	a.seen = a.seen[:nArcs]
	a.seenEpoch++
	if a.seenEpoch == 0 {
		for i := range a.seen {
			a.seen[i] = 0
		}
		a.seenEpoch = 1
	}
}

// bucketFor returns bucket idx, growing the bucket list as needed.
func (a *SteinerArena) bucketFor(idx int) *[]int32 {
	for len(a.buckets) <= idx {
		a.buckets = append(a.buckets, nil)
	}
	return &a.buckets[idx]
}

// getBans returns an n-length all-false ban vector from the pool.
func (a *SteinerArena) getBans(n int) []bool {
	if a.banUsed < len(a.bans) && cap(a.bans[a.banUsed]) >= n {
		b := a.bans[a.banUsed][:n]
		a.banUsed++
		for i := range b {
			b[i] = false
		}
		return b
	}
	b := make([]bool, n)
	if a.banUsed < len(a.bans) {
		a.bans[a.banUsed] = b
	} else {
		a.bans = append(a.bans, b)
	}
	a.banUsed++
	return b
}

// resetBans returns every pooled ban vector to the free list. Callers must
// no longer hold slices handed out before the reset.
func (a *SteinerArena) resetBans() { a.banUsed = 0 }
