package core_test

import (
	"fmt"

	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/drc"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// Example routes a two-net switchbox under a via-adjacency rule and prints
// the proven-optimal cost breakdown.
func Example() {
	c := &clip.Clip{
		Name: "example", Tech: "N28-12T",
		NX: 3, NY: 3, NZ: 3, MinLayer: 1,
		Nets: []clip.Net{
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 1, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 1, Y: 2, Z: 1}}},
			}},
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 1, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 2, Y: 1, Z: 1}}},
			}},
		},
	}
	rule, _ := tech.RuleByName("RULE6")
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		panic(err)
	}
	sol, err := core.SolveBnB(g, core.BnBOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("feasible=%v proven=%v wirelength=%d vias=%d cost=%d\n",
		sol.Feasible, sol.Proven, sol.Wirelength, sol.Vias, sol.Cost)
	fmt.Printf("violations=%d\n", len(drc.Check(g, sol.NetArcs)))
	// Output:
	// feasible=true proven=true wirelength=4 vias=2 cost=12
	// violations=0
}

// ExampleSolveHeuristic shows the fast non-optimal router used as the
// commercial-tool stand-in.
func ExampleSolveHeuristic() {
	opt := clip.DefaultSynth(42)
	c := clip.Synthesize(opt)
	g, err := rgraph.Build(c, rgraph.Options{})
	if err != nil {
		panic(err)
	}
	h := core.SolveHeuristic(g, core.HeuristicOptions{})
	o, err := core.SolveBnB(g, core.BnBOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("heuristic feasible=%v, optimal feasible=%v, heuristic >= optimal: %v\n",
		h.Feasible, o.Feasible, !h.Feasible || h.Cost >= o.Cost)
	// Output:
	// heuristic feasible=true, optimal feasible=true, heuristic >= optimal: true
}
