package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/ilp"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// TestDifferentialILPvsBnB is the cross-solver differential harness: the
// repository has two independent exact engines — the monolithic MILP
// (SolveILP over package ilp) and the conflict-driven combinatorial
// branch-and-bound (SolveBnB) — so on any instance where both terminate
// with a proof they must agree on feasibility and, when feasible, on the
// optimal cost. A corpus of randomized small clips crossed with
// representative rule configurations exercises both engines over SADP,
// via-adjacency and plain instances; any disagreement writes the clip as a
// JSON reproducer file and fails with its path.
func TestDifferentialILPvsBnB(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	// One rule per constraint family: unconstrained baseline, via-adjacency
	// (4 and 8 blocked neighbors), SADP everywhere, and the paper's
	// "aggressive" combination.
	ruleNames := []string{"RULE1", "RULE6", "RULE7", "RULE2", "RULE8"}

	for _, seed := range seeds {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 4, 5, 3
		opt.NumNets = 3
		opt.MaxSinks = 2
		c := clip.Synthesize(opt)
		c.Tech = "N28-12T"

		for _, rn := range ruleNames {
			rule, ok := tech.RuleByName(rn)
			if !ok {
				t.Fatalf("unknown rule %s", rn)
			}
			t.Run(fmt.Sprintf("seed%d-%s", seed, rn), func(t *testing.T) {
				g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
				if err != nil {
					t.Fatal(err)
				}
				bnb, err := SolveBnB(g, BnBOptions{TimeLimit: 30 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				milp, err := SolveILP(g, ilp.Options{TimeLimit: 60 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				if !bnb.Proven || !milp.Proven {
					t.Skipf("no proof within budget (bnb=%v milp=%v)", bnb.Proven, milp.Proven)
				}
				if bnb.Feasible != milp.Feasible {
					t.Errorf("feasibility disagreement: bnb=%v milp=%v; reproducer: %s",
						bnb.Feasible, milp.Feasible, dumpReproducer(t, c, rn))
					return
				}
				if bnb.Feasible && bnb.Cost != milp.Cost {
					t.Errorf("optimal cost disagreement: bnb=%d milp=%d; reproducer: %s",
						bnb.Cost, milp.Cost, dumpReproducer(t, c, rn))
				}
			})
		}
	}
}

// TestDifferentialFourWay extends the cross-solver battery to the parallel
// and portfolio paths: on every corpus instance, four independent solve
// modes — serial CDC-BnB, serial MILP, the deterministic parallel BnB and
// the portfolio race — must agree on feasibility and optimal cost whenever
// they all carry proofs. A disagreement writes the clip as a JSON
// reproducer and fails with its path.
func TestDifferentialFourWay(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	ruleNames := []string{"RULE1", "RULE7", "RULE8"}

	for _, seed := range seeds {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 4, 5, 3
		opt.NumNets = 3
		opt.MaxSinks = 2
		c := clip.Synthesize(opt)
		c.Tech = "N28-12T"

		for _, rn := range ruleNames {
			rule, ok := tech.RuleByName(rn)
			if !ok {
				t.Fatalf("unknown rule %s", rn)
			}
			t.Run(fmt.Sprintf("seed%d-%s", seed, rn), func(t *testing.T) {
				g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
				if err != nil {
					t.Fatal(err)
				}
				type mode struct {
					name  string
					solve func() (*Solution, error)
				}
				modes := []mode{
					{"bnb", func() (*Solution, error) {
						return SolveBnB(g, BnBOptions{TimeLimit: 30 * time.Second})
					}},
					{"ilp", func() (*Solution, error) {
						return SolveILP(g, ilp.Options{TimeLimit: 60 * time.Second})
					}},
					{"par4", func() (*Solution, error) {
						return SolveBnB(g, BnBOptions{Par: 4, TimeLimit: 30 * time.Second})
					}},
					{"portfolio", func() (*Solution, error) {
						return SolvePortfolio(g, BnBOptions{TimeLimit: 60 * time.Second})
					}},
				}
				var ref *Solution
				refName := ""
				for _, md := range modes {
					sol, err := md.solve()
					if err != nil {
						t.Fatalf("%s: %v", md.name, err)
					}
					if !sol.Proven {
						t.Logf("%s: no proof within budget, skipping mode", md.name)
						continue
					}
					if ref == nil {
						ref, refName = sol, md.name
						continue
					}
					if sol.Feasible != ref.Feasible {
						t.Errorf("feasibility disagreement: %s=%v %s=%v; reproducer: %s",
							md.name, sol.Feasible, refName, ref.Feasible, dumpReproducer(t, c, rn))
						return
					}
					if sol.Feasible && sol.Cost != ref.Cost {
						t.Errorf("optimal cost disagreement: %s=%d %s=%d; reproducer: %s",
							md.name, sol.Cost, refName, ref.Cost, dumpReproducer(t, c, rn))
						return
					}
				}
				if ref == nil {
					t.Skip("no mode produced a proof within budget")
				}
			})
		}
	}
}

// dumpReproducer writes the disagreeing clip as JSON (loadable with
// `optroute -clip`) and returns its path so the failure is replayable.
func dumpReproducer(t *testing.T, c *clip.Clip, rule string) string {
	t.Helper()
	dir := os.Getenv("DIFF_REPRO_DIR")
	if dir == "" {
		dir = os.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("diff-repro-%s-%s.json", c.Name, rule))
	f, err := os.Create(path)
	if err != nil {
		t.Logf("reproducer dump failed: %v", err)
		return "(dump failed)"
	}
	defer f.Close()
	if err := c.WriteJSON(f); err != nil {
		t.Logf("reproducer dump failed: %v", err)
		return "(dump failed)"
	}
	return path
}
